// Fleet orchestrator tests: deterministic sharding (thread-count-invariant
// seeds, aggregates and JSONL), crash isolation of throwing trials, and
// separation of timeouts from the time-to-failure sample.  All suites are
// named Fleet* so the TSan CI leg can select them with `ctest -R '^Fleet'`.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>

#include "fleet/aggregator.hpp"
#include "fleet/executor.hpp"
#include "fleet/jsonl.hpp"
#include "fleet/worlds.hpp"
#include "util/log.hpp"

namespace acf::fleet {
namespace {

// ---------------------------------------------------------- TrialPlan -----

TEST(FleetTrialPlan, RoundRobinLayoutAndDerivedSeeds) {
  TrialPlan plan({"a", "b", "c"}, 4, 0xBA5E, std::chrono::seconds(30));
  EXPECT_EQ(plan.trial_count(), 12u);
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < plan.trial_count(); ++i) {
    const TrialSpec spec = plan.spec(i);
    EXPECT_EQ(spec.trial_index, i);
    EXPECT_EQ(spec.arm, i % 3);
    EXPECT_EQ(spec.replica, i / 3);
    EXPECT_EQ(spec.seed, TrialPlan::seed_for(0xBA5E, i));
    EXPECT_EQ(spec.sim_budget, std::chrono::seconds(30));
    seeds.insert(spec.seed);
  }
  EXPECT_EQ(seeds.size(), plan.trial_count());  // no seed collisions
  EXPECT_THROW(plan.spec(12), std::out_of_range);
  EXPECT_THROW(TrialPlan({}, 1, 0), std::invalid_argument);
}

TEST(FleetTrialPlan, SeedForIsPureFunctionOfBaseAndIndex) {
  EXPECT_EQ(TrialPlan::seed_for(1, 7), TrialPlan::seed_for(1, 7));
  EXPECT_NE(TrialPlan::seed_for(1, 7), TrialPlan::seed_for(1, 8));
  EXPECT_NE(TrialPlan::seed_for(1, 7), TrialPlan::seed_for(2, 7));
}

// ------------------------------------------------- executor + worlds ------

/// Fast unlock fleet: reduced id window at 4 kHz hits in simulated seconds,
/// so a 12-trial fleet finishes in well under a second of wall time.
WorldFactory fast_unlock_factory() {
  fuzzer::FuzzConfig fast = fuzzer::FuzzConfig::around_id(0x215, 3);
  fast.tx_period = std::chrono::microseconds(250);
  return unlock_world_factory(
      {{vehicle::UnlockPredicate::single_id_and_byte(), fast, std::chrono::minutes(5)},
       {vehicle::UnlockPredicate::id_byte_and_length(), fast, std::chrono::minutes(5)}});
}

TrialPlan fast_plan(std::size_t replicas = 6) {
  return TrialPlan({"weak", "hardened"}, replicas, 0xACF17EE7ULL);
}

std::string jsonl_of(const TrialPlan& plan, const std::vector<TrialOutcome>& outcomes) {
  std::ostringstream out;
  JsonlExporter(out).write_all(plan, outcomes);
  return out.str();
}

TEST(FleetDeterminism, ThreadCountInvariant) {
  const TrialPlan plan = fast_plan();
  std::string reference_jsonl;
  FleetReport reference;
  for (const unsigned threads : {1u, 4u, 8u}) {
    ExecutorConfig config;
    config.threads = threads;
    config.progress_period = std::chrono::milliseconds(0);  // silent
    Executor executor(config);
    const auto outcomes = executor.run(plan, fast_unlock_factory());
    ASSERT_EQ(outcomes.size(), plan.trial_count());
    const FleetReport report = aggregate(plan, outcomes);
    const std::string jsonl = jsonl_of(plan, outcomes);
    if (threads == 1) {
      reference = report;
      reference_jsonl = jsonl;
      // The fast window must actually detect unlocks for the test to bite.
      EXPECT_GT(report.arms[0].detected, 0u);
      continue;
    }
    // Byte-identical trajectory regardless of scheduling order...
    EXPECT_EQ(jsonl, reference_jsonl) << "threads=" << threads;
    // ...and identical aggregate statistics.
    ASSERT_EQ(report.arms.size(), reference.arms.size());
    for (std::size_t arm = 0; arm < report.arms.size(); ++arm) {
      const ArmReport& a = report.arms[arm];
      const ArmReport& b = reference.arms[arm];
      EXPECT_EQ(a.detected, b.detected);
      EXPECT_EQ(a.timeouts, b.timeouts);
      EXPECT_EQ(a.frames_sent, b.frames_sent);
      EXPECT_EQ(a.time_to_failure.count(), b.time_to_failure.count());
      EXPECT_DOUBLE_EQ(a.time_to_failure.mean(), b.time_to_failure.mean());
      EXPECT_DOUBLE_EQ(a.time_to_failure.variance(), b.time_to_failure.variance());
      EXPECT_DOUBLE_EQ(a.median(), b.median());
      EXPECT_DOUBLE_EQ(a.ci95().lo, b.ci95().lo);
      EXPECT_DOUBLE_EQ(a.ci95().hi, b.ci95().hi);
      EXPECT_EQ(a.findings, b.findings);
    }
  }
}

TEST(FleetExecutor, SurvivesThrowingTrials) {
  const TrialPlan plan({"arm"}, 8, 42);
  // Every odd replica throws; even replicas complete a tiny frame-limited
  // campaign via the callable-world adapter.
  WorldFactory factory = world_from([](const TrialSpec& spec) -> fuzzer::CampaignResult {
    if (spec.replica % 2 == 1) throw std::runtime_error("diverged world");
    fuzzer::CampaignResult result;
    result.reason = fuzzer::StopReason::kFrameLimit;
    result.frames_sent = 10;
    return result;
  });
  ExecutorConfig config;
  config.threads = 4;
  config.progress_period = std::chrono::milliseconds(0);
  Executor executor(config);
  ProgressReporter progress;
  const auto outcomes = executor.run(plan, factory, &progress);
  ASSERT_EQ(outcomes.size(), 8u);
  for (const TrialOutcome& outcome : outcomes) {
    if (outcome.spec.replica % 2 == 1) {
      EXPECT_EQ(outcome.status, TrialStatus::kFailed);
      EXPECT_EQ(outcome.error, "diverged world");
    } else {
      EXPECT_EQ(outcome.status, TrialStatus::kCompleted);
      EXPECT_EQ(outcome.stop_reason, fuzzer::StopReason::kFrameLimit);
      EXPECT_EQ(outcome.frames_sent, 10u);
    }
  }
  EXPECT_EQ(progress.completed(), 8u);
  EXPECT_EQ(progress.errors(), 4u);
  const FleetReport report = aggregate(plan, outcomes);
  EXPECT_EQ(report.errors, 4u);
  EXPECT_EQ(report.arms[0].timeouts, 4u);  // completed, oracle never fired
}

TEST(FleetExecutor, CancelBeforeRunSkipsEverything) {
  const TrialPlan plan({"arm"}, 4, 7);
  Executor executor({.threads = 2, .progress_period = std::chrono::milliseconds(0)});
  executor.cancel();
  std::atomic<int> built{0};
  WorldFactory factory = world_from([&](const TrialSpec&) -> fuzzer::CampaignResult {
    ++built;
    return {};
  });
  const auto outcomes = executor.run(plan, factory);
  EXPECT_EQ(built.load(), 0);
  ASSERT_EQ(outcomes.size(), 4u);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].status, TrialStatus::kSkipped);
    EXPECT_EQ(outcomes[i].spec.trial_index, i);  // specs still resolved
  }
  const FleetReport report = aggregate(plan, outcomes);
  EXPECT_EQ(report.skipped, 4u);
}

// Concurrent trials may log (and even retune the level); the atomic
// threshold + serialised sink must hold up under TSan.
TEST(FleetExecutor, WorkersCanLogConcurrently) {
  const util::LogLevel before = util::log_level();
  const TrialPlan plan({"arm"}, 16, 3);
  WorldFactory factory = world_from([](const TrialSpec& spec) -> fuzzer::CampaignResult {
    util::set_log_level(spec.replica % 2 ? util::LogLevel::kWarn : util::LogLevel::kError);
    ACF_LOG(kDebug, "fleet-test") << "trial " << spec.trial_index;  // below threshold
    util::log_line(util::LogLevel::kTrace, "fleet-test", "suppressed");
    fuzzer::CampaignResult result;
    result.reason = fuzzer::StopReason::kFrameLimit;
    return result;
  });
  Executor executor({.threads = 4, .progress_period = std::chrono::milliseconds(0)});
  const auto outcomes = executor.run(plan, factory);
  for (const TrialOutcome& outcome : outcomes) {
    EXPECT_EQ(outcome.status, TrialStatus::kCompleted);
  }
  util::set_log_level(before);
}

// --------------------------------------------------------- aggregator -----

TrialOutcome synthetic(std::size_t index, std::size_t arm_count, double ttf,
                       std::uint64_t frames) {
  TrialOutcome outcome;
  outcome.spec.trial_index = index;
  outcome.spec.arm = index % arm_count;
  outcome.status = TrialStatus::kCompleted;
  outcome.frames_sent = frames;
  outcome.time_to_failure = ttf;
  outcome.stop_reason = ttf >= 0 ? fuzzer::StopReason::kFailureDetected
                                 : fuzzer::StopReason::kDurationElapsed;
  return outcome;
}

TEST(FleetAggregator, TimeoutsNeverEnterTheSample) {
  const TrialPlan plan({"only"}, 4, 0);
  std::vector<TrialOutcome> outcomes = {
      synthetic(0, 1, 10.0, 100), synthetic(1, 1, -1.0, 500),  // timeout
      synthetic(2, 1, 30.0, 100), synthetic(3, 1, -1.0, 500)};
  const FleetReport report = aggregate(plan, outcomes);
  const ArmReport& arm = report.arms[0];
  EXPECT_EQ(arm.detected, 2u);
  EXPECT_EQ(arm.timeouts, 2u);
  EXPECT_EQ(arm.time_to_failure.count(), 2u);
  EXPECT_DOUBLE_EQ(arm.time_to_failure.mean(), 20.0);  // not (10-1+30-1)/4
  EXPECT_DOUBLE_EQ(arm.median(), 20.0);
  EXPECT_EQ(arm.frames_sent, 1200u);
}

TEST(FleetAggregator, DeduplicatesFindingsPerArm) {
  const TrialPlan plan({"only"}, 3, 0);
  std::vector<TrialOutcome> outcomes = {synthetic(0, 1, 1.0, 1), synthetic(1, 1, 2.0, 1),
                                        synthetic(2, 1, 3.0, 1)};
  outcomes[0].findings = {"unlock fired", "bus warning"};
  outcomes[1].findings = {"unlock fired"};
  outcomes[2].findings = {"unlock fired", "bus warning"};
  const FleetReport report = aggregate(plan, outcomes);
  const auto& findings = report.arms[0].findings;
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].first, "unlock fired");
  EXPECT_EQ(findings[0].second, 3u);
  EXPECT_EQ(findings[1].first, "bus warning");
  EXPECT_EQ(findings[1].second, 2u);
}

// -------------------------------------------------------------- jsonl -----

TEST(FleetJsonl, GoldenLineAndEscaping) {
  const TrialPlan plan({"weak \"arm\""}, 1, 0xBA5E);
  TrialOutcome outcome = synthetic(0, 1, 1.5, 321);
  outcome.spec.seed = 99;
  outcome.sim_seconds = 2.25;
  outcome.findings = {"line1\nline2"};
  std::ostringstream out;
  JsonlExporter(out).write(plan, outcome);
  EXPECT_EQ(out.str(),
            "{\"trial\":0,\"arm\":\"weak \\\"arm\\\"\",\"replica\":0,\"seed\":99,"
            "\"status\":\"completed\",\"stop\":\"failure-detected\",\"frames_sent\":321,"
            "\"sim_seconds\":2.25,\"time_to_failure\":1.5,"
            "\"findings\":[\"line1\\nline2\"]}\n");
}

TEST(FleetJsonl, EscapesControlAndNonAsciiBytes) {
  // Arm labels and findings can carry arbitrary bytes (detector names,
  // frame dumps); every emitted line must stay pure-ASCII JSON.  Covers the
  // signed-char regression where bytes >= 0x80 printed as "ffffffXX".
  const TrialPlan plan({std::string("arm\x01\x7F\x80\xFF", 7)}, 1, 0);
  TrialOutcome outcome = synthetic(0, 1, 1.0, 1);
  outcome.sim_seconds = 1.0;
  std::ostringstream out;
  JsonlExporter(out).write(plan, outcome);
  EXPECT_EQ(out.str(),
            "{\"trial\":0,\"arm\":\"arm\\u0001\\u007f\\u0080\\u00ff\",\"replica\":0,"
            "\"seed\":0,\"status\":\"completed\",\"stop\":\"failure-detected\","
            "\"frames_sent\":1,\"sim_seconds\":1,\"time_to_failure\":1,"
            "\"findings\":[]}\n");
  for (const char c : out.str()) {
    EXPECT_TRUE(static_cast<unsigned char>(c) < 0x7F) << "non-ASCII byte escaped the line";
  }
}

TEST(FleetJsonl, TimeoutAndErrorRecords) {
  const TrialPlan plan({"a"}, 2, 0);
  TrialOutcome timeout = synthetic(0, 1, -1.0, 7);
  TrialOutcome errored;
  errored.spec = plan.spec(1);
  errored.status = TrialStatus::kFailed;
  errored.error = "boom";
  std::ostringstream out;
  JsonlExporter(out).write_all(plan, std::vector<TrialOutcome>{timeout, errored});
  const std::string text = out.str();
  EXPECT_NE(text.find("\"time_to_failure\":null"), std::string::npos);
  EXPECT_NE(text.find("\"status\":\"failed\""), std::string::npos);
  EXPECT_NE(text.find("\"error\":\"boom\""), std::string::npos);
}

}  // namespace
}  // namespace acf::fleet
