#include <gtest/gtest.h>

#include "sim/scheduler.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "uds/uds_client.hpp"
#include "uds/uds_server.hpp"

namespace acf::uds {
namespace {

/// Drives the server directly (no bus) for protocol-level tests.
class UdsServerTest : public ::testing::Test {
 protected:
  std::vector<std::uint8_t> request(std::initializer_list<std::uint8_t> bytes) {
    std::vector<std::uint8_t> response;
    server.handle_request(std::vector<std::uint8_t>(bytes),
                          [&response](std::vector<std::uint8_t> r) { response = std::move(r); });
    return response;
  }

  void enter_extended_session() {
    const auto response = request({kSidDiagnosticSessionControl, 0x03});
    ASSERT_EQ(response[0], 0x50);
  }

  Seed unlock_seed() {
    const auto response = request({kSidSecurityAccess, 0x01});
    Seed seed{};
    for (std::size_t i = 0; i < seed.size(); ++i) seed[i] = response.at(2 + i);
    return seed;
  }

  sim::Scheduler scheduler;
  UdsServer server{scheduler, UdsServerConfig{}};
  XorRotateAlgorithm algorithm;
};

TEST_F(UdsServerTest, UnknownServiceRejected) {
  const auto response = request({0x84, 0x01});
  EXPECT_EQ(response, (std::vector<std::uint8_t>{0x7F, 0x84, kNrcServiceNotSupported}));
}

TEST_F(UdsServerTest, SessionControlPositive) {
  const auto response = request({kSidDiagnosticSessionControl, 0x03});
  ASSERT_GE(response.size(), 2u);
  EXPECT_EQ(response[0], 0x50);
  EXPECT_EQ(response[1], 0x03);
  EXPECT_EQ(server.session(), Session::kExtended);
}

TEST_F(UdsServerTest, SessionControlBadSubFunction) {
  const auto response = request({kSidDiagnosticSessionControl, 0x42});
  EXPECT_EQ(response[2], kNrcSubFunctionNotSupported);
}

TEST_F(UdsServerTest, SessionControlBadLength) {
  const auto response = request({kSidDiagnosticSessionControl});
  EXPECT_TRUE(response.empty() || response[2] == kNrcIncorrectLength);
  const auto response2 = request({kSidDiagnosticSessionControl, 0x03, 0x00});
  EXPECT_EQ(response2[2], kNrcIncorrectLength);
}

TEST_F(UdsServerTest, ReadDidKnownAndUnknown) {
  server.set_did(0xF190, {'V', 'I', 'N'});
  auto response = request({kSidReadDataByIdentifier, 0xF1, 0x90});
  ASSERT_EQ(response.size(), 6u);
  EXPECT_EQ(response[0], 0x62);
  EXPECT_EQ(response[3], 'V');
  response = request({kSidReadDataByIdentifier, 0x12, 0x34});
  EXPECT_EQ(response[2], kNrcRequestOutOfRange);
}

TEST_F(UdsServerTest, WriteDidRequiresSessionAndSecurity) {
  server.set_did(0x0200, {0x00}, /*writable=*/true, /*write_needs_unlock=*/true);
  // Default session: conditions not correct.
  auto response = request({kSidWriteDataByIdentifier, 0x02, 0x00, 0xAA});
  EXPECT_EQ(response[2], kNrcConditionsNotCorrect);
  enter_extended_session();
  // Locked: security access denied.
  response = request({kSidWriteDataByIdentifier, 0x02, 0x00, 0xAA});
  EXPECT_EQ(response[2], kNrcSecurityAccessDenied);
  // Unlock, then the write succeeds.
  const Seed seed = unlock_seed();
  const Key key = algorithm.compute_key(seed);
  std::vector<std::uint8_t> send_key = {kSidSecurityAccess, 0x02};
  send_key.insert(send_key.end(), key.begin(), key.end());
  std::vector<std::uint8_t> unlock_response;
  server.handle_request(send_key, [&](std::vector<std::uint8_t> r) {
    unlock_response = std::move(r);
  });
  ASSERT_EQ(unlock_response[0], 0x67);
  EXPECT_EQ(server.security_state(), SecurityState::kUnlocked);
  response = request({kSidWriteDataByIdentifier, 0x02, 0x00, 0xAA});
  EXPECT_EQ(response[0], 0x6E);
  EXPECT_EQ((*server.did_value(0x0200))[0], 0xAA);
}

TEST_F(UdsServerTest, WriteUnwritableDidRejected) {
  server.set_did(0xF190, {'V'}, /*writable=*/false);
  enter_extended_session();
  const auto response = request({kSidWriteDataByIdentifier, 0xF1, 0x90, 0x00});
  EXPECT_EQ(response[2], kNrcRequestOutOfRange);
}

TEST_F(UdsServerTest, SecurityAccessNeedsNonDefaultSession) {
  const auto response = request({kSidSecurityAccess, 0x01});
  EXPECT_EQ(response[2], kNrcConditionsNotCorrect);
}

TEST_F(UdsServerTest, SeedThenCorrectKeyUnlocks) {
  enter_extended_session();
  const Seed seed = unlock_seed();
  EXPECT_EQ(server.security_state(), SecurityState::kSeedIssued);
  const Key key = algorithm.compute_key(seed);
  std::vector<std::uint8_t> message = {kSidSecurityAccess, 0x02};
  message.insert(message.end(), key.begin(), key.end());
  std::vector<std::uint8_t> response;
  server.handle_request(message, [&](std::vector<std::uint8_t> r) { response = std::move(r); });
  EXPECT_EQ(response[0], 0x67);
  EXPECT_EQ(server.security_state(), SecurityState::kUnlocked);
  EXPECT_EQ(server.stats().unlocks, 1u);
}

TEST_F(UdsServerTest, KeyWithoutSeedIsSequenceError) {
  enter_extended_session();
  const auto response = request({kSidSecurityAccess, 0x02, 1, 2, 3, 4});
  EXPECT_EQ(response[2], kNrcRequestSequenceError);
}

TEST_F(UdsServerTest, WrongKeyThreeTimesLocksOut) {
  enter_extended_session();
  for (int attempt = 0; attempt < 2; ++attempt) {
    unlock_seed();
    const auto response = request({kSidSecurityAccess, 0x02, 0xDE, 0xAD, 0xBE, 0xEF});
    EXPECT_EQ(response[2], kNrcInvalidKey) << attempt;
  }
  unlock_seed();
  const auto final_response = request({kSidSecurityAccess, 0x02, 0xDE, 0xAD, 0xBE, 0xEF});
  EXPECT_EQ(final_response[2], kNrcExceededAttempts);
  // During the penalty window, no new seed is issued.
  const auto during = request({kSidSecurityAccess, 0x01});
  EXPECT_EQ(during[2], kNrcTimeDelayNotExpired);
  // After the delay the handshake works again.
  scheduler.run_for(std::chrono::seconds(11));
  request({kSidDiagnosticSessionControl, 0x03});  // s3 dropped us to default
  const auto after = request({kSidSecurityAccess, 0x01});
  EXPECT_EQ(after[0], 0x67);
  EXPECT_EQ(server.stats().failed_key_attempts, 3u);
}

TEST_F(UdsServerTest, SeedWhileUnlockedIsAllZero) {
  enter_extended_session();
  const Seed seed = unlock_seed();
  const Key key = algorithm.compute_key(seed);
  std::vector<std::uint8_t> message = {kSidSecurityAccess, 0x02};
  message.insert(message.end(), key.begin(), key.end());
  server.handle_request(message, [](std::vector<std::uint8_t>) {});
  const auto response = request({kSidSecurityAccess, 0x01});
  EXPECT_EQ(response, (std::vector<std::uint8_t>{0x67, 0x01, 0, 0, 0, 0}));
}

TEST_F(UdsServerTest, SessionTimeoutRelocks) {
  enter_extended_session();
  unlock_seed();
  scheduler.run_for(std::chrono::seconds(6));  // S3 = 5 s
  EXPECT_EQ(server.session(), Session::kDefault);
  EXPECT_EQ(server.security_state(), SecurityState::kLocked);
}

TEST_F(UdsServerTest, TesterPresentKeepsSessionAlive) {
  enter_extended_session();
  for (int i = 0; i < 5; ++i) {
    scheduler.run_for(std::chrono::seconds(3));
    const auto response = request({kSidTesterPresent, 0x00});
    EXPECT_EQ(response[0], 0x7E);
  }
  EXPECT_EQ(server.session(), Session::kExtended);
  // Suppress-response bit: no reply, still refreshes.
  const auto silent = request({kSidTesterPresent, 0x80});
  EXPECT_TRUE(silent.empty());
}

TEST_F(UdsServerTest, EcuResetDropsEverything) {
  enter_extended_session();
  bool reset_called = false;
  server.set_reset_handler([&] { reset_called = true; });
  const auto response = request({kSidEcuReset, 0x01});
  EXPECT_EQ(response[0], 0x51);
  EXPECT_TRUE(reset_called);
  EXPECT_EQ(server.session(), Session::kDefault);
  EXPECT_EQ(server.security_state(), SecurityState::kLocked);
}

TEST_F(UdsServerTest, ReadDtcReportsProviderData) {
  server.set_dtc_provider([] {
    return std::vector<std::uint8_t>{0x9A, 0x02, 0x00, 0x09};
  });
  const auto response = request({kSidReadDtcInformation, 0x02, 0xFF});
  ASSERT_EQ(response.size(), 7u);
  EXPECT_EQ(response[0], 0x59);
  EXPECT_EQ(response[3], 0x9A);
  const auto bad = request({kSidReadDtcInformation, 0x42});
  EXPECT_EQ(bad[2], kNrcSubFunctionNotSupported);
}

TEST_F(UdsServerTest, StatsCountResponses) {
  request({kSidDiagnosticSessionControl, 0x03});
  request({0x84, 0x00});
  EXPECT_EQ(server.stats().requests, 2u);
  EXPECT_EQ(server.stats().positive_responses, 1u);
  EXPECT_EQ(server.stats().negative_responses, 1u);
}

// ------------------------------------------------------------ security ----

TEST(SeedKey, DeterministicAndSeedSensitive) {
  const XorRotateAlgorithm algorithm;
  const Seed a{1, 2, 3, 4};
  const Seed b{1, 2, 3, 5};
  EXPECT_EQ(algorithm.compute_key(a), algorithm.compute_key(a));
  EXPECT_NE(algorithm.compute_key(a), algorithm.compute_key(b));
}

TEST(SeedKey, SecretSensitive) {
  const XorRotateAlgorithm alg1(0x11111111);
  const XorRotateAlgorithm alg2(0x22222222);
  const Seed seed{9, 8, 7, 6};
  EXPECT_NE(alg1.compute_key(seed), alg2.compute_key(seed));
}

TEST(SeedKey, VerifyKeyChecksLengthAndContent) {
  const XorRotateAlgorithm algorithm;
  const Seed seed{1, 2, 3, 4};
  const Key key = algorithm.compute_key(seed);
  EXPECT_TRUE(verify_key(algorithm, seed, key));
  std::vector<std::uint8_t> wrong(key.begin(), key.end());
  wrong[0] ^= 1;
  EXPECT_FALSE(verify_key(algorithm, seed, wrong));
  wrong.pop_back();
  EXPECT_FALSE(verify_key(algorithm, seed, wrong));
}

// ----------------------------------------------------------- end-to-end ---

TEST(UdsClientServer, FullHandshakeOverBus) {
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);

  // Server side: ISO-TP channel + UDS server wired manually.
  transport::VirtualBusTransport server_port(bus, "ecu");
  UdsServer server(scheduler, UdsServerConfig{});
  server.set_did(0xF190, {'A', 'B', 'C'});
  isotp::IsoTpConfig server_isotp;
  server_isotp.rx_id = 0x7E0;
  server_isotp.tx_id = 0x7E8;
  isotp::IsoTpChannel server_channel(
      scheduler, [&](const can::CanFrame& f) { return server_port.send(f); }, server_isotp);
  server_channel.set_on_message([&](const std::vector<std::uint8_t>& req, sim::SimTime) {
    server.handle_request(req, [&](std::vector<std::uint8_t> resp) {
      server_channel.send(std::move(resp));
    });
  });
  server_port.set_rx_callback([&](const can::CanFrame& f, sim::SimTime t) {
    server_channel.handle_frame(f, t);
  });

  // Client side.
  transport::VirtualBusTransport tester_port(bus, "tester");
  isotp::IsoTpConfig client_isotp;
  client_isotp.tx_id = 0x7E0;
  client_isotp.rx_id = 0x7E8;
  UdsClient client(scheduler,
                   [&](const can::CanFrame& f) { return tester_port.send(f); }, client_isotp);
  tester_port.set_rx_callback([&](const can::CanFrame& f, sim::SimTime t) {
    client.handle_frame(f, t);
  });

  client.read_did(0xF190);
  scheduler.run_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(client.last_response().has_value());
  EXPECT_TRUE(client.last_response()->positive());
  EXPECT_EQ(client.last_response()->payload.back(), 'C');

  client.start_session(0x03);
  scheduler.run_for(std::chrono::milliseconds(100));
  client.request_seed();
  scheduler.run_for(std::chrono::milliseconds(100));
  const auto seed = UdsClient::seed_from_response(*client.last_response());
  ASSERT_TRUE(seed.has_value());
  const XorRotateAlgorithm algorithm;
  client.send_key(0x01, algorithm.compute_key(*seed));
  scheduler.run_for(std::chrono::milliseconds(100));
  EXPECT_TRUE(client.last_response()->positive());
  EXPECT_EQ(server.security_state(), SecurityState::kUnlocked);
  EXPECT_EQ(client.requests_sent(), 4u);
  EXPECT_EQ(client.responses_received(), 4u);
}

TEST(UdsClient, NrcExtraction) {
  UdsResponse negative{{0x7F, 0x27, 0x35}};
  EXPECT_FALSE(negative.positive());
  EXPECT_EQ(negative.nrc().value(), 0x35);
  UdsResponse positive{{0x67, 0x01, 1, 2, 3, 4}};
  EXPECT_TRUE(positive.positive());
  EXPECT_FALSE(positive.nrc().has_value());
  const auto seed = UdsClient::seed_from_response(positive);
  ASSERT_TRUE(seed.has_value());
  EXPECT_EQ((*seed)[0], 1);
}

}  // namespace
}  // namespace acf::uds
