// End-to-end scenarios: the paper's experiments run as tests with
// statistically robust (but CI-sized) assertions.  The benches run the
// full-sized versions.
#include <gtest/gtest.h>

#include "analysis/byte_stats.hpp"
#include "fuzzer/campaign.hpp"
#include "fuzzer/generator.hpp"
#include "oracle/bus_oracles.hpp"
#include "oracle/vehicle_oracles.hpp"
#include "trace/capture.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "vehicle/vehicle.hpp"

namespace acf {
namespace {

/// One Table V trial: blind full-space fuzz of the unlock testbench; returns
/// seconds of simulated time until the unlock oracle fires.
double time_to_unlock(vehicle::UnlockPredicate predicate, std::uint64_t seed) {
  sim::Scheduler scheduler;
  vehicle::UnlockTestbench bench(scheduler, predicate);
  transport::VirtualBusTransport attacker(bench.bus(), "attacker");
  oracle::CompositeOracle oracles;
  oracles.add(std::make_unique<oracle::UnlockOracle>(bench.bus(), &bench.bcm()));
  fuzzer::RandomGenerator generator(fuzzer::FuzzConfig::full_random(seed));
  fuzzer::CampaignConfig config;
  config.max_duration = std::chrono::hours(12);
  config.oracle_period = std::chrono::milliseconds(10);
  fuzzer::FuzzCampaign campaign(scheduler, attacker, generator, &oracles, config);
  const auto& result = campaign.run();
  if (!result.any_failure()) return -1.0;
  return sim::to_seconds(result.first_failure()->observation.time);
}

TEST(UnlockExperiment, BlindFuzzActivatesUnlockInMinutes) {
  // Paper: "the unlock (or lock) functionality was activated after a few
  // minutes of randomly generated CAN data."
  const double seconds = time_to_unlock(vehicle::UnlockPredicate::single_id_and_byte(), 2024);
  ASSERT_GT(seconds, 0.0);
  EXPECT_LT(seconds, 3600.0);  // well under an hour for one draw
}

TEST(UnlockExperiment, DlcCheckMultipliesTimeToUnlock) {
  // Table V shape test over a small batch: the hardened predicate's mean
  // must exceed the weak predicate's (asymptotic ratio 8x; paper saw 4.5x
  // on 12 runs).  Five trials per arm keeps CI time modest while the means
  // separate with overwhelming probability (the bench runs the full batch).
  util::RunningStats weak;
  util::RunningStats hard;
  for (std::uint64_t trial = 0; trial < 3; ++trial) {
    const double tw =
        time_to_unlock(vehicle::UnlockPredicate::single_id_and_byte(), 100 + trial);
    const double th =
        time_to_unlock(vehicle::UnlockPredicate::id_byte_and_length(), 200 + trial);
    ASSERT_GT(tw, 0.0);
    ASSERT_GT(th, 0.0);
    weak.add(tw);
    hard.add(th);
  }
  EXPECT_GT(hard.mean(), weak.mean());
}

TEST(UnlockExperiment, LegitimatePathUnaffectedByPredicate) {
  for (const auto predicate : {vehicle::UnlockPredicate::single_id_and_byte(),
                               vehicle::UnlockPredicate::id_byte_and_length(),
                               vehicle::UnlockPredicate{4, true}}) {
    sim::Scheduler scheduler;
    vehicle::UnlockTestbench bench(scheduler, predicate);
    bench.head_unit().request_unlock();
    scheduler.run_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(bench.bcm().unlocked());
  }
}

TEST(ClusterExperiment, FuzzingBricksTheCluster) {
  // Fig. 9: fuzz until the crash latch; verify persistence across a power
  // cycle and reproducibility from the finding window.
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  vehicle::InstrumentCluster cluster(scheduler, bus);
  transport::VirtualBusTransport port(bus, "fuzzer");
  oracle::CompositeOracle oracles;
  auto crash_oracle = std::make_unique<oracle::ComponentCrashOracle>();
  crash_oracle->watch(cluster);
  oracles.add(std::move(crash_oracle));
  fuzzer::RandomGenerator generator(fuzzer::FuzzConfig::full_random(7));
  fuzzer::CampaignConfig config;
  config.max_duration = std::chrono::hours(2);
  fuzzer::FuzzCampaign campaign(scheduler, port, generator, &oracles, config);
  const auto& result = campaign.run();
  ASSERT_EQ(result.reason, fuzzer::StopReason::kFailureDetected);
  ASSERT_TRUE(cluster.crash_latched());

  cluster.power_cycle(std::chrono::milliseconds(50));
  scheduler.run_for(std::chrono::seconds(1));
  EXPECT_TRUE(cluster.crash_latched());
  EXPECT_EQ(cluster.display_text(), "CrAsH");

  // Replay the recorded window against a fresh cluster: reproduces.
  const fuzzer::Finding* failure = result.first_failure();
  ASSERT_NE(failure, nullptr);
  sim::Scheduler fresh_scheduler;
  can::VirtualBus fresh_bus(fresh_scheduler);
  vehicle::InstrumentCluster fresh(fresh_scheduler, fresh_bus);
  transport::VirtualBusTransport injector(fresh_bus, "replay");
  for (const auto& entry : failure->recent_frames) {
    injector.send(entry.frame);
    fresh_scheduler.run_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(fresh.crash_latched());
}

TEST(VehicleExperiment, FuzzingDisturbsClusterAndIdle) {
  // §VI on the real car: MILs, warnings, fluctuating gauges, erratic idle.
  sim::Scheduler scheduler;
  vehicle::VehicleConfig vehicle_config;
  vehicle_config.gateway_filtering = false;  // legacy vehicle, as the target
  vehicle::Vehicle car(scheduler, vehicle_config);
  scheduler.run_for(std::chrono::seconds(3));
  const double calm_travel = car.cluster().needle_travel();

  transport::VirtualBusTransport obd(car.body_bus(), "obd");
  fuzzer::RandomGenerator generator(
      fuzzer::FuzzConfig::targeted(dbc::target_vehicle_database().ids(), 15));
  fuzzer::CampaignConfig config;
  config.max_duration = std::chrono::seconds(10);
  config.stop_on_failure = false;
  fuzzer::FuzzCampaign campaign(scheduler, obd, generator, nullptr, config);
  campaign.run();

  EXPECT_TRUE(car.cluster().any_warning_lit());
  EXPECT_GT(car.cluster().warning_sounds(), 0u);
  EXPECT_GT(car.cluster().implausible_values_seen(), 0u);
  // Needle travel explodes relative to calm driving.
  EXPECT_GT(car.cluster().needle_travel() - calm_travel, calm_travel * 5);
}

TEST(ByteMeansExperiment, CapturedVsFuzzedDistributions) {
  // Figs. 4 & 5 property: vehicle traffic is non-uniform per byte position;
  // fuzzer output is flat at ~127.5.
  sim::Scheduler scheduler;
  vehicle::Vehicle car(scheduler);
  trace::CaptureTap tap(car.powertrain_bus(), "tap");
  scheduler.run_for(std::chrono::seconds(30));
  analysis::BytePositionStats captured;
  captured.add_all(tap.frames());
  ASSERT_GT(captured.frames(), 1000u);
  EXPECT_GT(captured.flatness(), 20.0);

  fuzzer::RandomGenerator generator(fuzzer::FuzzConfig::full_random(5));
  analysis::BytePositionStats fuzzed;
  for (int i = 0; i < 66144; ++i) fuzzed.add(*generator.next());
  EXPECT_LT(fuzzed.flatness(), 3.5);  // ~4 sigma for the sparsest position
  EXPECT_NEAR(fuzzed.overall_mean(), 127.5, 1.0);
}

TEST(GatewayExperiment, FilteringBlocksCrossBusFuzz) {
  // Ablation A2 in miniature: fuzz the body bus; the engine's inputs stay
  // clean when the gateway filters, and are disturbed when it does not.
  for (const bool filtering : {true, false}) {
    sim::Scheduler scheduler;
    vehicle::VehicleConfig vehicle_config;
    vehicle_config.gateway_filtering = filtering;
    vehicle::Vehicle car(scheduler, vehicle_config);
    scheduler.run_for(std::chrono::seconds(2));
    transport::VirtualBusTransport obd(car.body_bus(), "obd");
    fuzzer::RandomGenerator generator(
        fuzzer::FuzzConfig::targeted({dbc::kMsgWheelSpeeds}, 99));
    fuzzer::CampaignConfig config;
    config.max_duration = std::chrono::seconds(5);
    fuzzer::FuzzCampaign campaign(scheduler, obd, generator, nullptr, config);
    campaign.run();
    if (filtering) {
      EXPECT_EQ(car.engine().implausible_inputs_seen(), 0u);
    } else {
      EXPECT_GT(car.engine().implausible_inputs_seen(), 0u);
    }
  }
}

TEST(DisruptionExperiment, HighRateFuzzRaisesBusLoad) {
  // "Disruption of a vehicle's communication network is not difficult":
  // flat-out 1 kHz injection of max-length frames adds ~20+ % bus load.
  sim::Scheduler scheduler;
  vehicle::Vehicle car(scheduler);
  scheduler.run_for(std::chrono::seconds(1));
  const double base_load = car.body_bus().stats().load(scheduler.now());
  transport::VirtualBusTransport obd(car.body_bus(), "obd");
  fuzzer::FuzzConfig fuzz_config = fuzzer::FuzzConfig::full_random(3);
  fuzz_config.dlc_min = 8;  // maximum-length frames
  fuzzer::RandomGenerator generator(fuzz_config);
  fuzzer::CampaignConfig config;
  config.max_duration = std::chrono::seconds(5);
  fuzzer::FuzzCampaign campaign(scheduler, obd, generator, nullptr, config);
  campaign.run();
  const double load = car.body_bus().stats().load(scheduler.now());
  EXPECT_GT(load, base_load + 0.15);
}

}  // namespace
}  // namespace acf
