// Golden determinism gate for the simulation core.
//
// Records canonical candump traces of two fixed-seed worlds — the Table V
// unlock testbench under 1 kHz fuzz and the full two-bus vehicle under a
// body-bus fuzz — and asserts the core reproduces them BYTE-identically.
// These files were captured from the pre-optimisation scheduler/bus, so any
// refactor of the event core that changes frame content, order or timing by
// a single nanosecond fails here.  Regenerate deliberately with
// ACF_REGEN_GOLDEN=1 (only when a semantic change is intended and reviewed).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "attacks/attack_world.hpp"
#include "dbc/target_vehicle_db.hpp"
#include "fuzzer/campaign.hpp"
#include "fuzzer/generator.hpp"
#include "ids/detectors.hpp"
#include "oracle/vehicle_oracles.hpp"
#include "sim/scheduler.hpp"
#include "trace/candump_log.hpp"
#include "trace/capture.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "vehicle/vehicle.hpp"

#ifndef ACF_GOLDEN_DIR
#error "ACF_GOLDEN_DIR must point at tests/golden"
#endif

namespace acf {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(ACF_GOLDEN_DIR) + "/" + name;
}

/// Byte-compares `actual` against the committed golden file.  With
/// ACF_REGEN_GOLDEN=1 in the environment the file is (re)written instead.
void expect_matches_golden(const std::string& name, const std::string& actual) {
  const std::string path = golden_path(name);
  if (std::getenv("ACF_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path << " (" << actual.size() << " bytes)";
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run once with ACF_REGEN_GOLDEN=1";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string expected = buffer.str();

  if (expected == actual) return;
  // Locate the first divergent line for a readable failure message instead
  // of dumping two multi-kilobyte strings.
  std::istringstream exp_lines(expected), act_lines(actual);
  std::string exp_line, act_line;
  std::size_t line_no = 0;
  while (true) {
    const bool has_exp = static_cast<bool>(std::getline(exp_lines, exp_line));
    const bool has_act = static_cast<bool>(std::getline(act_lines, act_line));
    ++line_no;
    if (!has_exp && !has_act) break;
    if (!has_exp || !has_act || exp_line != act_line) {
      FAIL() << "trace diverges from " << name << " at line " << line_no << "\n  golden: "
             << (has_exp ? exp_line : std::string("<eof>")) << "\n  actual: "
             << (has_act ? act_line : std::string("<eof>"))
             << "\n  (golden " << expected.size() << " bytes, actual " << actual.size()
             << " bytes)";
    }
  }
  FAIL() << "traces differ in byte content but not line content (line endings?)";
}

/// The canonical unlock world: bench-top rig + attacker running blind random
/// fuzz at the paper's 1 ms period, with a trickle of seeded bus corruption
/// so the error-frame / retransmission paths are inside the gate too.
std::string record_unlock_world() {
  sim::Scheduler scheduler;
  can::BusConfig bus_config;
  bus_config.corruption_probability = 0.002;
  bus_config.seed = 0x601D;  // "GOLD"
  vehicle::UnlockTestbench bench(scheduler, vehicle::UnlockPredicate::single_id_and_byte(),
                                 bus_config);
  trace::CaptureTap tap(bench.bus(), "golden-tap");
  transport::VirtualBusTransport attacker(bench.bus(), "attacker");

  oracle::CompositeOracle oracles;
  oracles.add(std::make_unique<oracle::UnlockOracle>(bench.bus(), &bench.bcm()));

  fuzzer::FuzzConfig fuzz = fuzzer::FuzzConfig::full_random(0x5EED0001);
  fuzzer::RandomGenerator generator(fuzz);
  fuzzer::CampaignConfig config;
  config.tx_period = std::chrono::milliseconds(1);
  config.max_duration = std::chrono::seconds(2);
  config.oracle_period = std::chrono::milliseconds(10);
  config.stop_on_failure = false;  // fixed-length trace regardless of findings
  config.record_suspicious = false;
  fuzzer::FuzzCampaign campaign(scheduler, attacker, generator, &oracles, config);
  campaign.run();

  std::ostringstream out;
  trace::write_candump(out, tap.frames(), "can0");
  return out.str();
}

/// The canonical whole-vehicle world: two buses joined by the gateway, every
/// stock ECU ticking, fuzz on the body bus, plus a mid-run power cycle of
/// the instrument cluster to exercise set_power / pending-event paths.
std::string record_vehicle_world() {
  sim::Scheduler scheduler;
  vehicle::VehicleConfig config;
  config.powertrain_bus.corruption_probability = 0.001;
  config.powertrain_bus.seed = 0xBEEF01;
  config.body_bus.corruption_probability = 0.001;
  config.body_bus.seed = 0xBEEF02;
  vehicle::Vehicle car(scheduler, config);
  trace::CaptureTap powertrain_tap(car.powertrain_bus(), "golden-pt");
  trace::CaptureTap body_tap(car.body_bus(), "golden-body");
  transport::VirtualBusTransport attacker(car.body_bus(), "attacker");

  fuzzer::FuzzConfig fuzz = fuzzer::FuzzConfig::full_random(0x5EED0002);
  fuzzer::RandomGenerator generator(fuzz);
  fuzzer::CampaignConfig campaign_config;
  campaign_config.tx_period = std::chrono::milliseconds(1);
  campaign_config.max_duration = std::chrono::milliseconds(1500);
  campaign_config.oracle_period = std::chrono::milliseconds(10);
  campaign_config.stop_on_failure = false;
  campaign_config.record_suspicious = false;
  fuzzer::FuzzCampaign campaign(scheduler, attacker, generator, nullptr, campaign_config);

  scheduler.schedule_at(std::chrono::milliseconds(700), [&car] { car.cluster().power_cycle(); });
  campaign.run();

  std::ostringstream out;
  trace::write_candump(out, powertrain_tap.frames(), "can0");
  trace::write_candump(out, body_tap.frames(), "can1");
  return out.str();
}

TEST(GoldenTrace, UnlockWorldReproducesByteIdentically) {
  expect_matches_golden("unlock_world.candump", record_unlock_world());
}

TEST(GoldenTrace, VehicleWorldReproducesByteIdentically) {
  expect_matches_golden("vehicle_world.candump", record_vehicle_world());
}

TEST(GoldenTrace, UnlockWorldIsRunToRunDeterministic) {
  // Independent of the committed files: two in-process runs must agree,
  // which catches nondeterminism even right after a deliberate regen.
  EXPECT_EQ(record_unlock_world(), record_unlock_world());
}

// ------------------------------------------------- attack scenarios -------

/// Catalog arms shrunk to golden scale: a 1 s benign/training window and a
/// 300 ms attack window keep each pinned trace small while every family
/// still lands its effect.  These windows are part of the golden contract —
/// changing them is a deliberate regen.
std::vector<attacks::AttackArm> golden_attack_arms() {
  std::vector<attacks::AttackArm> arms = attacks::standard_attack_arms();
  for (attacks::AttackArm& arm : arms) {
    arm.train_window = std::chrono::seconds(1);
    arm.attack_window = std::chrono::milliseconds(300);
  }
  return arms;
}

attacks::AttackTrialResult record_attack_trial(const attacks::AttackArm& arm) {
  fleet::TrialSpec spec;
  spec.seed = 0x601D;  // same fixed seed as the other golden worlds
  return attacks::run_attack_trial(arm, spec, nullptr, /*capture_observed=*/true);
}

TEST(GoldenTrace, EveryAttackFamilyReproducesByteIdentically) {
  // One pinned candump per attack family: the observed bus under the
  // benign window plus the armed scenario.  Any change to vehicle traffic,
  // scenario cadence or labeling order shows up as a one-line diff here.
  for (const attacks::AttackArm& arm : golden_attack_arms()) {
    const attacks::AttackTrialResult trial = record_attack_trial(arm);
    ASSERT_FALSE(trial.observed.empty()) << arm.label;
    std::ostringstream out;
    trace::write_candump(out, trial.observed, "can0");
    expect_matches_golden("attacks/" + arm.label + ".candump", out.str());
  }
}

TEST(GoldenTrace, AttackTrialIsRunToRunDeterministic) {
  const std::vector<attacks::AttackArm> arms = golden_attack_arms();
  for (const attacks::AttackArm& arm : {arms[0], arms[5], arms[9]}) {
    const attacks::AttackTrialResult first = record_attack_trial(arm);
    const attacks::AttackTrialResult second = record_attack_trial(arm);
    std::ostringstream a, b;
    trace::write_candump(a, first.observed, "can0");
    trace::write_candump(b, second.observed, "can0");
    EXPECT_EQ(a.str(), b.str()) << arm.label;
  }
}

TEST(GoldenTrace, BenignSegmentsStayZeroFalsePositive) {
  // The training-window traffic of every attack trace is attack-free by
  // construction; the deterministic detectors (allowlist, DLC) trained on
  // its first half must not flag its second half.  A false positive here
  // means the benign script itself drifted into something anomalous, which
  // would silently poison every per-attack FPR in the matrix.
  const dbc::Database db = dbc::target_vehicle_database();
  for (const attacks::AttackArm& arm : golden_attack_arms()) {
    const attacks::AttackTrialResult trial = record_attack_trial(arm);
    std::vector<trace::TimestampedFrame> benign;
    for (const trace::TimestampedFrame& entry : trial.observed) {
      if (entry.time < trial.attack_start) benign.push_back(entry);
    }
    ASSERT_GT(benign.size(), 10u) << arm.label;

    ids::AllowlistDetector allowlist(db);
    ids::DlcConsistencyDetector dlc(db);
    const std::size_t half = benign.size() / 2;
    for (std::size_t i = 0; i < half; ++i) {
      allowlist.train(benign[i].frame, benign[i].time);
      dlc.train(benign[i].frame, benign[i].time);
    }
    allowlist.finalize_training();
    dlc.finalize_training();
    for (std::size_t i = half; i < benign.size(); ++i) {
      EXPECT_LT(allowlist.score(benign[i].frame, benign[i].time), allowlist.threshold())
          << arm.label << " frame id 0x" << std::hex << benign[i].frame.id();
      EXPECT_LT(dlc.score(benign[i].frame, benign[i].time), dlc.threshold())
          << arm.label << " frame id 0x" << std::hex << benign[i].frame.id();
    }
  }
}

}  // namespace
}  // namespace acf
