#include <gtest/gtest.h>

#include "can/crc.hpp"
#include "can/frame.hpp"

namespace acf::can {
namespace {

TEST(CanFrame, DefaultIsEmptyStandardData) {
  const CanFrame frame;
  EXPECT_EQ(frame.id(), 0u);
  EXPECT_EQ(frame.length(), 0u);
  EXPECT_FALSE(frame.is_extended());
  EXPECT_FALSE(frame.is_remote());
  EXPECT_FALSE(frame.is_fd());
}

TEST(CanFrame, DataFrameConstruction) {
  const std::uint8_t payload[] = {0x1C, 0x21, 0x17};
  const auto frame = CanFrame::data(0x43A, payload);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->id(), 0x43Au);
  EXPECT_EQ(frame->length(), 3u);
  EXPECT_EQ(frame->dlc(), 3u);
  EXPECT_EQ(frame->payload()[1], 0x21);
}

TEST(CanFrame, RejectsOversizedStandardId) {
  EXPECT_FALSE(CanFrame::data(0x800, {}).has_value());
  EXPECT_TRUE(CanFrame::data(0x7FF, {}).has_value());
}

TEST(CanFrame, RejectsOversizedExtendedId) {
  EXPECT_FALSE(CanFrame::data(0x2000'0000, {}, IdFormat::kExtended).has_value());
  EXPECT_TRUE(CanFrame::data(0x1FFF'FFFF, {}, IdFormat::kExtended).has_value());
}

TEST(CanFrame, RejectsOversizedClassicPayload) {
  const std::uint8_t nine[9] = {};
  EXPECT_FALSE(CanFrame::data(1, nine).has_value());
  const std::uint8_t eight[8] = {};
  EXPECT_TRUE(CanFrame::data(1, eight).has_value());
}

TEST(CanFrame, RemoteFrameCarriesDlcNoData) {
  const auto frame = CanFrame::remote(0x123, 5);
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(frame->is_remote());
  EXPECT_EQ(frame->dlc(), 5u);
  EXPECT_TRUE(frame->payload().empty());
  EXPECT_FALSE(CanFrame::remote(0x123, 9).has_value());
}

TEST(CanFrame, EqualityComparesContent) {
  const auto a = CanFrame::data_std(0x100, {1, 2, 3});
  const auto b = CanFrame::data_std(0x100, {1, 2, 3});
  const auto c = CanFrame::data_std(0x100, {1, 2, 4});
  const auto d = CanFrame::data_std(0x101, {1, 2, 3});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
}

TEST(CanFrame, ToStringCandumpStyle) {
  EXPECT_EQ(CanFrame::data_std(0x43A, {0x1C, 0x21}).to_string(), "43A#1C21");
  EXPECT_EQ(CanFrame::remote(0x123, 4)->to_string(), "123#R4");
}

// ------------------------------------------------------------ FD DLC ------

TEST(FdDlc, CodeToLengthTable) {
  EXPECT_EQ(fd_dlc_to_length(0), 0u);
  EXPECT_EQ(fd_dlc_to_length(8), 8u);
  EXPECT_EQ(fd_dlc_to_length(9), 12u);
  EXPECT_EQ(fd_dlc_to_length(10), 16u);
  EXPECT_EQ(fd_dlc_to_length(13), 32u);
  EXPECT_EQ(fd_dlc_to_length(15), 64u);
}

TEST(FdDlc, LengthToCodeRoundsUp) {
  EXPECT_EQ(fd_length_to_dlc(0).value(), 0u);
  EXPECT_EQ(fd_length_to_dlc(8).value(), 8u);
  EXPECT_EQ(fd_length_to_dlc(9).value(), 9u);   // rounds up to 12
  EXPECT_EQ(fd_length_to_dlc(12).value(), 9u);
  EXPECT_EQ(fd_length_to_dlc(33).value(), 14u); // rounds up to 48
  EXPECT_EQ(fd_length_to_dlc(64).value(), 15u);
  EXPECT_FALSE(fd_length_to_dlc(65).has_value());
}

TEST(FdDlc, ValidLengths) {
  for (std::size_t len : {0u, 8u, 12u, 16u, 20u, 24u, 32u, 48u, 64u}) {
    EXPECT_TRUE(is_valid_fd_length(len)) << len;
  }
  for (std::size_t len : {9u, 13u, 31u, 63u, 65u}) {
    EXPECT_FALSE(is_valid_fd_length(len)) << len;
  }
}

TEST(CanFrame, FdFrameConstruction) {
  std::vector<std::uint8_t> payload(48, 0xAB);
  const auto frame = CanFrame::fd_data(0x123, payload);
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(frame->is_fd());
  EXPECT_TRUE(frame->brs());
  EXPECT_EQ(frame->length(), 48u);
  EXPECT_EQ(frame->dlc(), 14u);
  // Invalid FD length rejected.
  payload.resize(47);
  EXPECT_FALSE(CanFrame::fd_data(0x123, payload).has_value());
}

// ------------------------------------------------------- arbitration ------

TEST(ArbitrationRank, LowerIdWins) {
  const auto low = CanFrame::data_std(0x100, {});
  const auto high = CanFrame::data_std(0x101, {});
  EXPECT_LT(low.arbitration_rank(), high.arbitration_rank());
}

TEST(ArbitrationRank, DataBeatsRemoteAtSameId) {
  const auto data = CanFrame::data_std(0x100, {1});
  const auto remote = *CanFrame::remote(0x100, 1);
  EXPECT_LT(data.arbitration_rank(), remote.arbitration_rank());
}

TEST(ArbitrationRank, BaseBeatsExtendedSharingPrefix) {
  // A standard frame with base id B wins against any extended frame whose
  // 11-bit prefix is also B (the SRR/IDE recessive bits lose arbitration).
  const auto base = CanFrame::data_std(0x100, {});
  const auto extended = *CanFrame::data(0x100u << 18, {}, IdFormat::kExtended);
  EXPECT_LT(base.arbitration_rank(), extended.arbitration_rank());
}

TEST(ArbitrationRank, ExtendedOrderedByFullId) {
  const auto a = *CanFrame::data(0x04000001, {}, IdFormat::kExtended);
  const auto b = *CanFrame::data(0x04000002, {}, IdFormat::kExtended);
  EXPECT_LT(a.arbitration_rank(), b.arbitration_rank());
}

// --------------------------------------------------------------- CRC ------

TEST(Crc15, KnownStability) {
  // Reference self-consistency: fixed pattern yields a stable value and it
  // differs from a one-bit variant.
  const std::uint8_t bits[] = {0, 1, 0, 1, 1, 1, 0, 0, 1, 0, 1};
  const std::uint16_t crc = crc15_bits(bits);
  EXPECT_LT(crc, 0x8000);  // 15-bit value
  std::uint8_t flipped[std::size(bits)];
  std::copy(std::begin(bits), std::end(bits), flipped);
  flipped[3] ^= 1;
  EXPECT_NE(crc15_bits(flipped), crc);
}

TEST(Crc15, DetectsEverySingleBitFlip) {
  std::vector<std::uint8_t> bits;
  for (int i = 0; i < 64; ++i) bits.push_back((i * 7 + 3) % 3 == 0 ? 1 : 0);
  const std::uint16_t reference = crc15_bits(bits);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bits[i] ^= 1;
    EXPECT_NE(crc15_bits(bits), reference) << "flip at " << i;
    bits[i] ^= 1;
  }
}

TEST(Crc15, ByteAndBitVersionsAgree) {
  const std::uint8_t bytes[] = {0xDE, 0xAD, 0xBE, 0xEF};
  std::vector<std::uint8_t> bits;
  for (std::uint8_t byte : bytes) {
    for (int i = 7; i >= 0; --i) bits.push_back(static_cast<std::uint8_t>((byte >> i) & 1));
  }
  EXPECT_EQ(crc15_bytes(bytes), crc15_bits(bits));
}

TEST(CrcFd, WidthsRespected) {
  std::vector<std::uint8_t> bits(100, 1);
  EXPECT_LT(crc17_bits(bits), 1u << 17);
  EXPECT_LT(crc21_bits(bits), 1u << 21);
  EXPECT_NE(crc17_bits(bits), crc21_bits(bits));
}

TEST(CrcFd, SensitiveToInput) {
  std::vector<std::uint8_t> a(40, 0);
  std::vector<std::uint8_t> b = a;
  b[20] = 1;
  EXPECT_NE(crc17_bits(a), crc17_bits(b));
  EXPECT_NE(crc21_bits(a), crc21_bits(b));
}

}  // namespace
}  // namespace acf::can
