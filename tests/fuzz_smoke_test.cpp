// FuzzSmoke: the self-fuzz harness as a ctest leg.  Every registered target
// replays its committed corpus (one deterministic reproducer per fixed bug)
// and then runs a fixed generated-input budget.  The budget is sized so the
// whole suite stays in the fast label; CI additionally runs this leg under
// ASan/UBSan and TSan, where "no invariant failures" also means "no UB".
#include <gtest/gtest.h>

#include "selftest/harness.hpp"
#include "selftest/targets.hpp"

namespace acf::selftest {
namespace {

#ifndef ACF_CORPUS_DIR
#define ACF_CORPUS_DIR ""
#endif

class FuzzSmoke : public ::testing::TestWithParam<std::string> {};

TEST_P(FuzzSmoke, CorpusAndBudgetClean) {
  const FuzzTarget* target = find_target(GetParam());
  ASSERT_NE(target, nullptr);

  const auto corpus = load_corpus_dir(std::string(ACF_CORPUS_DIR) + "/" + target->name);
  EXPECT_FALSE(corpus.empty()) << "no committed seeds for " << target->name;

  HarnessOptions options;
  options.iterations = 1500;
  // Failing inputs land next to the test binary for CI artifact upload.
  options.failure_dir = "fuzz_failures";
  const HarnessResult result = run_harness(*target, corpus, options);

  EXPECT_EQ(result.corpus_inputs, corpus.size());
  for (const FuzzFailure& failure : result.failures) {
    ADD_FAILURE() << target->name << " [" << (failure.from_corpus ? "corpus" : "generated")
                  << " #" << failure.ordinal << "] " << failure.message
                  << "\n  input: " << hex_preview(failure.input);
  }
}

std::vector<std::string> target_names() {
  std::vector<std::string> names;
  for (const FuzzTarget& target : all_targets()) names.push_back(target.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllTargets, FuzzSmoke, ::testing::ValuesIn(target_names()),
                         [](const auto& param_info) { return param_info.param; });

// The harness itself must be deterministic: same corpus + options => same
// inputs, so a CI failure is reproducible locally from the printed ordinal.
TEST(FuzzHarness, DeterministicForFixedSeed) {
  std::uint64_t runs[2] = {0, 0};
  std::vector<std::vector<std::uint8_t>> inputs[2];
  for (int round = 0; round < 2; ++round) {
    FuzzTarget probe{"probe", "records inputs",
                     [&, round](std::span<const std::uint8_t> input) -> std::optional<std::string> {
                       ++runs[round];
                       inputs[round].emplace_back(input.begin(), input.end());
                       return std::nullopt;
                     }};
    HarnessOptions options;
    options.iterations = 64;
    const auto result = run_harness(probe, {}, options);
    EXPECT_TRUE(result.ok());
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(inputs[0], inputs[1]);
}

TEST(FuzzHarness, FailingInputIsReportedWithOrdinal) {
  FuzzTarget probe{"probe", "fails on inputs starting with 0xAB",
                   [](std::span<const std::uint8_t> input) -> std::optional<std::string> {
                     if (!input.empty() && input[0] == 0xAB) return "tripped";
                     return std::nullopt;
                   }};
  const std::vector<std::vector<std::uint8_t>> corpus = {{0xAB, 0xCD}};
  HarnessOptions options;
  options.iterations = 0;
  const auto result = run_harness(probe, corpus, options);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_TRUE(result.failures[0].from_corpus);
  EXPECT_EQ(result.failures[0].ordinal, 0u);
  EXPECT_EQ(result.failures[0].message, "tripped");
  EXPECT_EQ(result.failures[0].input, corpus[0]);
}

TEST(FuzzHarness, EveryTargetHasUniqueName) {
  const auto& targets = all_targets();
  for (std::size_t i = 0; i < targets.size(); ++i) {
    EXPECT_NE(find_target(targets[i].name), nullptr);
    for (std::size_t j = i + 1; j < targets.size(); ++j) {
      EXPECT_NE(targets[i].name, targets[j].name);
    }
  }
  EXPECT_EQ(find_target("no-such-target"), nullptr);
}

}  // namespace
}  // namespace acf::selftest
