#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <vector>

#include "util/hex.hpp"
#include "util/ring_buffer.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace acf::util {
namespace {

// ---------------------------------------------------------------- Rng -----

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 255ULL, 1000003ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroBoundReturnsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextInInclusiveRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
  }
}

TEST(Rng, NextInDegenerateRange) {
  Rng rng(9);
  EXPECT_EQ(rng.next_in(42, 42), 42u);
  EXPECT_EQ(rng.next_in(42, 10), 42u);  // inverted -> lo
}

TEST(Rng, NextInCoversFullRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_in(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoolProbabilityEdges) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, BoolProbabilityApproximatelyHonoured) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ByteUniformityChiSquare) {
  Rng rng(23);
  std::array<std::uint64_t, 256> counts{};
  for (int i = 0; i < 256 * 200; ++i) ++counts[rng.next_byte()];
  const double stat = chi_square_uniform(counts);
  EXPECT_TRUE(chi_square_accepts_uniform(stat, 255));
}

TEST(Rng, FillProducesRandomBytes) {
  Rng rng(29);
  std::array<std::uint8_t, 37> buffer{};  // odd size exercises the tail path
  rng.fill(buffer);
  std::set<std::uint8_t> distinct(buffer.begin(), buffer.end());
  EXPECT_GT(distinct.size(), 10u);
}

TEST(Rng, SplitIndependence) {
  Rng parent(31);
  Rng child = parent.split();
  // The child stream must differ from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, PickCoversAllElements) {
  Rng rng(37);
  const std::vector<int> items = {1, 2, 3, 4};
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.pick(items));
  EXPECT_EQ(seen.size(), items.size());
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.shuffle(std::span<int>(shuffled));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

// ---------------------------------------------------------------- hex -----

TEST(Hex, BytesRendering) {
  const std::uint8_t bytes[] = {0x1C, 0x21, 0x17, 0x71};
  EXPECT_EQ(hex_bytes(bytes), "1C 21 17 71");
  EXPECT_EQ(hex_bytes(bytes, '\0'), "1C211771");
  EXPECT_EQ(hex_bytes({}), "");
}

TEST(Hex, FixedWidthInteger) {
  EXPECT_EQ(hex_u32(0x43A, 4), "043A");
  EXPECT_EQ(hex_u32(0x43A, 3), "43A");
  EXPECT_EQ(hex_u32(0, 2), "00");
}

TEST(Hex, ParseByte) {
  EXPECT_EQ(parse_hex_byte("1C").value(), 0x1C);
  EXPECT_EQ(parse_hex_byte("0x1c").value(), 0x1C);
  EXPECT_EQ(parse_hex_byte("F").value(), 0x0F);
  EXPECT_FALSE(parse_hex_byte("1C2").has_value());
  EXPECT_FALSE(parse_hex_byte("").has_value());
  EXPECT_FALSE(parse_hex_byte("zz").has_value());
}

TEST(Hex, ParseBytesSpaced) {
  const auto bytes = parse_hex_bytes("1C 21 17 71");
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(*bytes, (std::vector<std::uint8_t>{0x1C, 0x21, 0x17, 0x71}));
}

TEST(Hex, ParseBytesContiguous) {
  const auto bytes = parse_hex_bytes("1C211771");
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(bytes->size(), 4u);
}

TEST(Hex, ParseBytesRejectsOddNibbles) {
  EXPECT_FALSE(parse_hex_bytes("1C2").has_value());
  EXPECT_FALSE(parse_hex_bytes("1 C2").has_value());
}

TEST(Hex, ParseBytesEmptyIsEmpty) {
  const auto bytes = parse_hex_bytes("");
  ASSERT_TRUE(bytes.has_value());
  EXPECT_TRUE(bytes->empty());
}

TEST(Hex, ParseU32) {
  EXPECT_EQ(parse_hex_u32("43A").value(), 0x43Au);
  EXPECT_EQ(parse_hex_u32("0x7FF").value(), 0x7FFu);
  EXPECT_EQ(parse_hex_u32("1FFFFFFF").value(), 0x1FFFFFFFu);
  EXPECT_FALSE(parse_hex_u32("123456789").has_value());  // > 8 digits
  EXPECT_FALSE(parse_hex_u32("").has_value());
  EXPECT_FALSE(parse_hex_u32("g1").has_value());
}

// --------------------------------------------------------------- stats ----

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  const RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.7) * 10 + i * 0.1;
    whole.add(x);
    (i < 40 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats stats;
  stats.add(3.0);
  RunningStats empty;
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 1u);
  empty.merge(stats);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> sample = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(sample, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(sample, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(sample, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Median, OddAndEvenSamples) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{7}), 7.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(ConfidenceInterval95, MatchesStudentTSmallSample) {
  // {1..5}: mean 3, s = sqrt(2.5); t(4, .975) = 2.776 => half-width 1.9630.
  RunningStats stats;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) stats.add(x);
  const Interval ci = confidence_interval_95(stats);
  EXPECT_NEAR(ci.half_width(), 2.776 * std::sqrt(2.5) / std::sqrt(5.0), 1e-9);
  EXPECT_NEAR(ci.lo, 3.0 - 1.96297, 1e-4);
  EXPECT_NEAR(ci.hi, 3.0 + 1.96297, 1e-4);
}

TEST(ConfidenceInterval95, TwoSamplesUseWidestQuantile) {
  // n=2: dof 1, t = 12.706; s = |a-b|/sqrt(2).
  RunningStats stats;
  stats.add(0.0);
  stats.add(2.0);
  const Interval ci = confidence_interval_95(stats);
  EXPECT_NEAR(ci.half_width(), 12.706 * std::sqrt(2.0) / std::sqrt(2.0), 1e-9);
}

TEST(ConfidenceInterval95, DegeneratesBelowTwoSamples) {
  RunningStats stats;
  EXPECT_DOUBLE_EQ(confidence_interval_95(stats).width(), 0.0);
  stats.add(42.0);
  const Interval ci = confidence_interval_95(stats);
  EXPECT_DOUBLE_EQ(ci.lo, 42.0);
  EXPECT_DOUBLE_EQ(ci.hi, 42.0);
}

TEST(ConfidenceInterval95, LargeSampleApproachesNormal) {
  RunningStats stats;
  Rng rng(99);
  for (int i = 0; i < 500; ++i) stats.add(rng.next_double());
  const Interval ci = confidence_interval_95(stats);
  const double expected =
      1.96 * stats.stddev() / std::sqrt(static_cast<double>(stats.count()));
  EXPECT_NEAR(ci.half_width(), expected, 1e-9);
  EXPECT_LT(ci.lo, stats.mean());
  EXPECT_GT(ci.hi, stats.mean());
}

TEST(WilsonInterval95, MatchesHandComputedValues) {
  // 8/10: center (0.8 + z^2/20)/(1 + z^2/10), z = 1.959964.
  const Interval ci = wilson_interval_95(8, 10);
  EXPECT_NEAR(ci.lo, 0.4902, 5e-4);
  EXPECT_NEAR(ci.hi, 0.9433, 5e-4);
}

TEST(WilsonInterval95, StaysInsideUnitIntervalAtTheEdges) {
  // A Wald/Student-t interval collapses to zero width at p = 0 and p = 1;
  // Wilson keeps coverage (this is why detection rates use it).
  const Interval none = wilson_interval_95(0, 20);
  EXPECT_NEAR(none.lo, 0.0, 1e-12);
  EXPECT_GT(none.hi, 0.0);
  EXPECT_NEAR(none.hi, 0.1611, 5e-4);

  const Interval all = wilson_interval_95(20, 20);
  EXPECT_NEAR(all.lo, 0.8389, 5e-4);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
}

TEST(WilsonInterval95, WidthShrinksWithSampleSize) {
  const double w10 = wilson_interval_95(5, 10).width();
  const double w100 = wilson_interval_95(50, 100).width();
  const double w1000 = wilson_interval_95(500, 1000).width();
  EXPECT_GT(w10, w100);
  EXPECT_GT(w100, w1000);
  // Interval is symmetric around 0.5 for p = 0.5.
  const Interval half = wilson_interval_95(50, 100);
  EXPECT_NEAR(half.lo + half.hi, 1.0, 1e-12);
}

TEST(WilsonInterval95, DegenerateInputs) {
  // Zero trials: no information, the whole unit interval.
  const Interval empty = wilson_interval_95(0, 0);
  EXPECT_DOUBLE_EQ(empty.lo, 0.0);
  EXPECT_DOUBLE_EQ(empty.hi, 1.0);
  // Successes clamp to trials (defensive against caller bugs).
  const Interval clamped = wilson_interval_95(5, 3);
  EXPECT_DOUBLE_EQ(clamped.hi, 1.0);
  EXPECT_GT(clamped.lo, 0.3);
}

// Property: merging accumulators over arbitrary partitions of a sample is
// equivalent to single-pass accumulation — the invariant the fleet
// aggregator's sharded reduction rests on.
TEST(RunningStats, MergeOverRandomSplitsMatchesSinglePass) {
  Rng rng(0xFEE7);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.next_below(400));
    std::vector<double> sample(n);
    for (double& x : sample) x = (rng.next_double() - 0.5) * 1e4;

    RunningStats single;
    for (double x : sample) single.add(x);

    RunningStats merged;
    std::size_t i = 0;
    while (i < n) {
      const std::size_t chunk = 1 + static_cast<std::size_t>(rng.next_below(50));
      RunningStats shard;
      for (std::size_t j = i; j < std::min(n, i + chunk); ++j) shard.add(sample[j]);
      merged.merge(shard);
      i += chunk;
    }

    EXPECT_EQ(merged.count(), single.count());
    EXPECT_NEAR(merged.mean(), single.mean(), 1e-9 * (1.0 + std::abs(single.mean())));
    EXPECT_NEAR(merged.variance(), single.variance(), 1e-7 * (1.0 + single.variance()));
    EXPECT_DOUBLE_EQ(merged.min(), single.min());
    EXPECT_DOUBLE_EQ(merged.max(), single.max());
  }
}

TEST(ChiSquare, UniformCountsAccepted) {
  std::vector<std::uint64_t> counts(100, 1000);
  EXPECT_DOUBLE_EQ(chi_square_uniform(counts), 0.0);
  EXPECT_TRUE(chi_square_accepts_uniform(0.0, 99));
}

TEST(ChiSquare, SkewedCountsRejected) {
  std::vector<std::uint64_t> counts(100, 10);
  counts[0] = 100000;
  const double stat = chi_square_uniform(counts);
  EXPECT_FALSE(chi_square_accepts_uniform(stat, 99));
}

TEST(ChiSquare, EmptyAndZeroTotals) {
  EXPECT_DOUBLE_EQ(chi_square_uniform({}), 0.0);
  const std::vector<std::uint64_t> zeros(10, 0);
  EXPECT_DOUBLE_EQ(chi_square_uniform(zeros), 0.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram hist(0.0, 10.0, 10);
  hist.add(0.5);    // bin 0
  hist.add(9.99);   // bin 9
  hist.add(-5.0);   // clamps to bin 0
  hist.add(50.0);   // clamps to bin 9
  hist.add(5.0);    // bin 5
  EXPECT_EQ(hist.total(), 5u);
  EXPECT_EQ(hist.counts()[0], 2u);
  EXPECT_EQ(hist.counts()[9], 2u);
  EXPECT_EQ(hist.counts()[5], 1u);
  EXPECT_DOUBLE_EQ(hist.bin_low(5), 5.0);
  EXPECT_DOUBLE_EQ(hist.bin_width(), 1.0);
}

// ---------------------------------------------------------- ring buffer ---

TEST(RingBuffer, FillsThenEvictsOldest) {
  RingBuffer<int> ring(3);
  EXPECT_TRUE(ring.empty());
  ring.push(1);
  ring.push(2);
  ring.push(3);
  EXPECT_TRUE(ring.full());
  ring.push(4);
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.oldest(), 2);
  EXPECT_EQ(ring.newest(), 4);
  EXPECT_EQ(ring.snapshot(), (std::vector<int>{2, 3, 4}));
}

TEST(RingBuffer, AtIndexesFromOldest) {
  RingBuffer<int> ring(4);
  for (int i = 1; i <= 6; ++i) ring.push(i);
  EXPECT_EQ(ring.at(0), 3);
  EXPECT_EQ(ring.at(3), 6);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> ring(2);
  ring.push(1);
  ring.clear();
  EXPECT_TRUE(ring.empty());
  ring.push(9);
  EXPECT_EQ(ring.newest(), 9);
}

TEST(RingBuffer, ZeroCapacityClampsToOne) {
  RingBuffer<int> ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  ring.push(1);
  ring.push(2);
  EXPECT_EQ(ring.newest(), 2);
  EXPECT_EQ(ring.size(), 1u);
}

}  // namespace
}  // namespace acf::util
