#include <gtest/gtest.h>

#include "lin/lin.hpp"
#include "sim/scheduler.hpp"
#include "vehicle/door_module.hpp"
#include "vehicle/vehicle.hpp"

namespace acf::lin {
namespace {

// ----------------------------------------------------------- protocol -----

TEST(LinProtocol, ProtectedIdParity) {
  // Known values: id 0x00 -> PID 0x80, id 0x3C (diag master req) -> 0x3C,
  // id 0x23 -> 0xE3 (computed per the LIN 2.x parity equations).
  EXPECT_EQ(protected_id(0x00), 0x80);
  EXPECT_EQ(protected_id(0x3C), 0x3C);
  for (std::uint8_t id = 0; id <= kMaxLinId; ++id) {
    const std::uint8_t pid = protected_id(id);
    EXPECT_EQ((pid & kMaxLinId), id);
    const auto checked = check_protected_id(pid);
    ASSERT_TRUE(checked.has_value()) << int(id);
    EXPECT_EQ(*checked, id);
  }
}

TEST(LinProtocol, ParityDetectsCorruptedIdBits) {
  int undetected = 0;
  for (std::uint8_t id = 0; id <= kMaxLinId; ++id) {
    const std::uint8_t pid = protected_id(id);
    for (int bit = 0; bit < 8; ++bit) {
      const auto corrupted = static_cast<std::uint8_t>(pid ^ (1u << bit));
      const auto decoded = check_protected_id(corrupted);
      if (decoded.has_value()) ++undetected;
    }
  }
  // Two parity bits cannot catch everything, but single-bit flips of the id
  // field must never produce another *valid* PID.
  EXPECT_EQ(undetected, 0);
}

TEST(LinProtocol, ClassicChecksumCarryWrap) {
  // 0xFF + 0xFF = 0x1FE -> wrap to 0xFF -> inverted 0x00.
  const std::uint8_t data[] = {0xFF, 0xFF};
  EXPECT_EQ(classic_checksum(data), 0x00);
  const std::uint8_t zero[] = {0x00};
  EXPECT_EQ(classic_checksum(zero), 0xFF);
}

TEST(LinProtocol, EnhancedChecksumIncludesPid) {
  const std::uint8_t data[] = {0x12, 0x34};
  EXPECT_NE(enhanced_checksum(protected_id(0x23), data),
            enhanced_checksum(protected_id(0x24), data));
  EXPECT_NE(enhanced_checksum(protected_id(0x23), data), classic_checksum(data));
}

// ---------------------------------------------------------------- bus -----

/// Scripted slave publishing one id.
class ScriptedSlave : public LinSlave {
 public:
  explicit ScriptedSlave(std::uint8_t publish_id) : id_(publish_id) {}

  std::optional<std::vector<std::uint8_t>> on_header(std::uint8_t id) override {
    if (id != id_) return std::nullopt;
    ++polled;
    return response;
  }
  void on_frame(const LinFrame& frame, sim::SimTime) override { seen.push_back(frame); }

  std::uint8_t id_;
  std::vector<std::uint8_t> response = {0x42};
  int polled = 0;
  std::vector<LinFrame> seen;
};

TEST(LinBusTest, SchedulePollsPublishersAndBroadcasts) {
  sim::Scheduler scheduler;
  LinBus bus(scheduler, {{0x10, std::chrono::milliseconds(10)},
                         {0x11, std::chrono::milliseconds(10)}});
  ScriptedSlave a(0x10), b(0x11);
  a.response = {0xAA, 0xBB};
  b.response = {0xCC};
  bus.attach(a);
  bus.attach(b);
  bus.start();
  scheduler.run_for(std::chrono::milliseconds(105));
  // 10 slots: 5 polls each, every completed frame seen by both slaves.
  EXPECT_EQ(a.polled, 5);
  EXPECT_EQ(b.polled, 5);
  EXPECT_EQ(a.seen.size(), 10u);
  EXPECT_EQ(bus.stats().responses, 10u);
  EXPECT_EQ(bus.stats().no_response, 0u);
  bool saw_b = false;
  for (const auto& frame : a.seen) {
    if (frame.id == 0x11) {
      saw_b = true;
      EXPECT_EQ(frame.data, (std::vector<std::uint8_t>{0xCC}));
    }
  }
  EXPECT_TRUE(saw_b);
}

TEST(LinBusTest, UnansweredIdsCounted) {
  sim::Scheduler scheduler;
  LinBus bus(scheduler, {{0x2A, std::chrono::milliseconds(10)}});
  bus.start();
  scheduler.run_for(std::chrono::milliseconds(50));
  EXPECT_EQ(bus.stats().no_response, 5u);
  EXPECT_EQ(bus.stats().responses, 0u);
}

TEST(LinBusTest, MasterResponsePublishes) {
  sim::Scheduler scheduler;
  LinBus bus(scheduler, {{0x23, std::chrono::milliseconds(10)}});
  ScriptedSlave listener(0x3F);  // publishes nothing relevant
  bus.attach(listener);
  int provided = 0;
  bus.set_master_response(0x23, [&provided] {
    ++provided;
    return std::vector<std::uint8_t>{0x02};
  });
  bus.start();
  scheduler.run_for(std::chrono::milliseconds(35));
  EXPECT_EQ(provided, 3);
  ASSERT_EQ(listener.seen.size(), 3u);
  EXPECT_EQ(listener.seen[0].data[0], 0x02);
}

TEST(LinBusTest, KickRunsUnscheduledSlot) {
  sim::Scheduler scheduler;
  LinBus bus(scheduler, {{0x01, std::chrono::milliseconds(10)}});
  ScriptedSlave slave(0x23);
  bus.attach(slave);
  bus.kick(0x23);
  scheduler.run_for(std::chrono::milliseconds(20));
  EXPECT_EQ(slave.polled, 1);
  EXPECT_EQ(slave.seen.size(), 1u);
}

TEST(LinBusTest, CorruptionDetectedByChecksum) {
  sim::Scheduler scheduler;
  LinBusConfig config;
  config.corruption_probability = 1.0;
  LinBus bus(scheduler, {{0x10, std::chrono::milliseconds(10)}}, config);
  ScriptedSlave slave(0x10);
  slave.response = {1, 2, 3, 4};
  bus.attach(slave);
  bus.start();
  // 5 slots fire at 10..50 ms; each error lands one frame-time (~6 ms)
  // after its slot, so run just past the last one.
  scheduler.run_for(std::chrono::milliseconds(58));
  EXPECT_EQ(bus.stats().checksum_errors, 5u);
  EXPECT_TRUE(slave.seen.empty());  // corrupted frames never delivered
}

TEST(LinBusTest, StopHaltsSchedule) {
  sim::Scheduler scheduler;
  LinBus bus(scheduler, {{0x10, std::chrono::milliseconds(10)}});
  ScriptedSlave slave(0x10);
  bus.attach(slave);
  bus.start();
  scheduler.run_for(std::chrono::milliseconds(25));
  bus.stop();
  const int polled = slave.polled;
  scheduler.run_for(std::chrono::milliseconds(50));
  EXPECT_EQ(slave.polled, polled);
}

// ---------------------------------------------------- door-lock module ----

TEST(DoorLockModule, ActsOnCommandFramesAndPublishesStatus) {
  vehicle::DoorLockModule door;
  EXPECT_FALSE(door.unlocked());
  door.on_frame({vehicle::DoorLockModule::kCommandFrameId,
                 {vehicle::DoorLockModule::kLinCmdUnlock}},
                sim::SimTime{0});
  EXPECT_TRUE(door.unlocked());
  EXPECT_EQ(door.actuations(), 1u);
  // Idempotent: repeating the same command does not re-actuate.
  door.on_frame({vehicle::DoorLockModule::kCommandFrameId,
                 {vehicle::DoorLockModule::kLinCmdUnlock}},
                sim::SimTime{0});
  EXPECT_EQ(door.actuations(), 1u);
  const auto status = door.on_header(vehicle::DoorLockModule::kStatusFrameId);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ((*status)[0], 1u);
  EXPECT_FALSE(door.on_header(0x10).has_value());
}

TEST(DoorLockModule, CanToLinUnlockChain) {
  // The full production-style chain: app -> head unit -> CAN BODY_COMMAND
  // -> BCM -> LIN command frame -> door actuator.
  sim::Scheduler scheduler;
  vehicle::UnlockTestbench bench(scheduler);

  LinBus lin_bus(scheduler, {{vehicle::DoorLockModule::kStatusFrameId,
                              std::chrono::milliseconds(10)}});
  vehicle::DoorLockModule door;
  lin_bus.attach(door);
  std::uint8_t pending_command = vehicle::DoorLockModule::kLinCmdLock;
  lin_bus.set_master_response(vehicle::DoorLockModule::kCommandFrameId,
                              [&pending_command] {
                                return std::vector<std::uint8_t>{pending_command};
                              });
  // The BCM's actuator hook drives the LIN segment.
  bench.bcm().set_actuator_listener([&](bool unlocked) {
    pending_command = unlocked ? vehicle::DoorLockModule::kLinCmdUnlock
                               : vehicle::DoorLockModule::kLinCmdLock;
    lin_bus.kick(vehicle::DoorLockModule::kCommandFrameId);
  });
  lin_bus.start();

  bench.head_unit().request_unlock();
  scheduler.run_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(bench.bcm().unlocked());
  EXPECT_TRUE(door.unlocked());  // the physical actuator moved

  bench.head_unit().request_lock();
  scheduler.run_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(door.unlocked());
  EXPECT_EQ(door.actuations(), 2u);
}

}  // namespace
}  // namespace acf::lin
