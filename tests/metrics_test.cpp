// util::metrics subsystem: instrument semantics, the CKMS ε-accuracy
// guarantee (the load-bearing claim behind constant-memory p99s), snapshot
// merging — including the `*_max` watermark convention — the acf-metrics-v1
// JSONL codec, and the end-to-end acceptance check that an IDS fleet's
// reported detection-latency quantiles sit within the CKMS rank-error bound
// of the exact sorted answer.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fleet/executor.hpp"
#include "fleet/trial_plan.hpp"
#include "fuzzer/config.hpp"
#include "ids/ids_world.hpp"
#include "metrics/ckms.hpp"
#include "metrics/metrics.hpp"
#include "metrics/snapshot.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "vehicle/vehicle.hpp"

namespace acf::metrics {
namespace {

using namespace std::chrono_literals;

// --------------------------------------------------------- instruments -----

TEST(MetricsCounter, AddsAndBumpsMonotonically) {
  Counter counter;
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.bump_to(100);
  EXPECT_EQ(counter.value(), 100u);
  counter.bump_to(100);  // re-publishing the same total is a no-op
  counter.bump_to(7);    // and the CAS-max never goes backwards
  EXPECT_EQ(counter.value(), 100u);
}

TEST(MetricsGauge, TracksLevels) {
  Gauge gauge;
  gauge.set(5);
  gauge.add(-2);
  EXPECT_EQ(gauge.value(), 3);
  gauge.set(-10);
  EXPECT_EQ(gauge.value(), -10);
}

TEST(MetricsMeter, RatesConvergeUnderASteadyClock) {
  Meter meter;
  meter.tick_to(0.0);
  // 10 events/s for 300 "seconds" of the caller's clock.
  for (int s = 1; s <= 300; ++s) {
    meter.mark(10);
    meter.tick_to(static_cast<double>(s));
  }
  EXPECT_EQ(meter.count(), 3000u);
  EXPECT_NEAR(meter.mean_rate(), 10.0, 0.1);
  EXPECT_NEAR(meter.rate1(), 10.0, 1.0);  // EWMA has had 5 time constants
  // The clock is monotonic per meter: a backwards tick is ignored.
  meter.tick_to(0.0);
  EXPECT_NEAR(meter.mean_rate(), 10.0, 0.1);
}

TEST(MetricsTimer, TracksCountSumMinMax) {
  Timer timer;
  EXPECT_EQ(timer.count(), 0u);
  EXPECT_EQ(timer.min(), 0.0);
  EXPECT_EQ(timer.max(), 0.0);
  for (const double v : {3.0, 1.0, 2.0}) timer.record(v);
  EXPECT_EQ(timer.count(), 3u);
  EXPECT_DOUBLE_EQ(timer.sum(), 6.0);
  EXPECT_DOUBLE_EQ(timer.min(), 1.0);
  EXPECT_DOUBLE_EQ(timer.max(), 3.0);
  EXPECT_DOUBLE_EQ(timer.quantile(0.5), 2.0);
}

TEST(MetricsRegistry, HandsOutStableReferences) {
  Registry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(registry.counter("x").value(), 3u);
  EXPECT_NE(&registry.counter("x"), &registry.counter("y"));
}

// ------------------------------------------------------- CKMS accuracy -----

/// Exact-rank check of one reported quantile: within ±(εn + 1) ranks of the
/// sorted answer.  The +1 absorbs the floor/ceil ambiguity at tiny n, where
/// ±εn alone would demand sub-sample precision no summary can promise.
void expect_within_rank_error(const std::vector<double>& sorted, double reported,
                              double phi, double eps, const std::string& what) {
  const double n = static_cast<double>(sorted.size());
  const double below =
      static_cast<double>(std::lower_bound(sorted.begin(), sorted.end(), reported) -
                          sorted.begin());
  const double at_or_below =
      static_cast<double>(std::upper_bound(sorted.begin(), sorted.end(), reported) -
                          sorted.begin());
  const double slack = eps * n + 1.0;
  EXPECT_LE(below, phi * n + slack) << what << ": reported " << reported
                                    << " sits too high (rank " << below << "/" << n << ")";
  EXPECT_GE(at_or_below, phi * n - slack)
      << what << ": reported " << reported << " sits too low (rank " << at_or_below << "/"
      << n << ")";
}

std::vector<double> make_stream(const std::string& shape, std::size_t n, util::Rng& rng) {
  std::vector<double> values;
  values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (shape == "uniform") {
      values.push_back(rng.next_double());
    } else if (shape == "heavy-tail") {
      // Pareto-ish: the shape of time-to-unlock distributions this summary
      // actually digests (a few enormous outliers dominating the sum).
      values.push_back(std::pow(1.0 - rng.next_double(), -1.0 / 1.5));
    } else {
      values.push_back(42.0);  // constant: every quantile is the same sample
    }
  }
  return values;
}

TEST(MetricsCkms, QuantilesStayWithinEpsilonAcrossDistributions) {
  util::Rng rng(0xC0FFEEULL);
  for (const std::string shape : {"uniform", "heavy-tail", "constant"}) {
    for (const std::size_t n : {std::size_t{50}, std::size_t{2'000}, std::size_t{20'000}}) {
      std::vector<double> values = make_stream(shape, n, rng);
      CkmsQuantiles ckms;
      for (const double v : values) ckms.insert(v);
      std::sort(values.begin(), values.end());
      for (const CkmsTarget& target : ckms.targets()) {
        expect_within_rank_error(values, ckms.query(target.quantile), target.quantile,
                                 target.error,
                                 shape + " n=" + std::to_string(n) + " phi=" +
                                     std::to_string(target.quantile));
      }
      // Constant memory: the summary must not grow linearly with the stream.
      EXPECT_LT(ckms.sample_count(), std::size_t{4'000}) << shape << " n=" << n;
    }
  }
}

TEST(MetricsCkms, MergedSummariesKeepTheBoundOverTheCombinedStream) {
  util::Rng rng(0xACFULL);
  std::vector<double> all;
  std::vector<CkmsQuantiles> parts(3);
  for (std::size_t p = 0; p < parts.size(); ++p) {
    // Disjoint shapes per source — the merge must not assume homogeneity.
    const std::vector<double> part =
        make_stream(p == 0 ? "uniform" : p == 1 ? "heavy-tail" : "constant", 4'000, rng);
    for (const double v : part) parts[p].insert(v);
    all.insert(all.end(), part.begin(), part.end());
  }
  CkmsQuantiles merged;
  for (CkmsQuantiles& part : parts) {
    const std::vector<CkmsQuantiles::Sample> samples = part.export_samples();
    merged.absorb(samples, part.count());
  }
  EXPECT_EQ(merged.count(), all.size());
  std::sort(all.begin(), all.end());
  for (const CkmsTarget& target : merged.targets()) {
    // Source error budgets are preserved through the weighted-sample
    // concatenation; allow 2ε for the cross-source compress.
    expect_within_rank_error(all, merged.query(target.quantile), target.quantile,
                             2.0 * target.error,
                             "merged phi=" + std::to_string(target.quantile));
  }
}

// ------------------------------------------------------------- merging -----

TEST(MetricsMerge, CountersSumAndWatermarksTakeTheMax) {
  Registry a, b;
  a.counter("fleet.trial.detected").add(3);
  b.counter("fleet.trial.detected").add(4);
  a.counter("sim.scheduler.heap_capacity_max").bump_to(256);
  b.counter("sim.scheduler.heap_capacity_max").bump_to(512);
  a.gauge("fleet.leases.outstanding").set(2);
  b.gauge("fleet.leases.outstanding").set(1);
  a.counter("only.in.a").add(7);

  const std::vector<RegistrySnapshot> parts = {a.snapshot(), b.snapshot()};
  const RegistrySnapshot merged = merge_snapshots(parts);

  const auto counter_of = [&](const std::string& name) -> std::uint64_t {
    for (const CounterSnap& c : merged.counters)
      if (c.name == name) return c.value;
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  EXPECT_EQ(counter_of("fleet.trial.detected"), 7u);
  // A fleet-wide watermark is the largest single process's, not the sum —
  // two workers peaking at 256 and 512 never held 768 slots anywhere.
  EXPECT_EQ(counter_of("sim.scheduler.heap_capacity_max"), 512u);
  EXPECT_EQ(counter_of("only.in.a"), 7u);
  ASSERT_EQ(merged.gauges.size(), 1u);
  EXPECT_EQ(merged.gauges[0].value, 3);
  // Sorted by name within each family (the JSONL canonical order).
  EXPECT_TRUE(std::is_sorted(merged.counters.begin(), merged.counters.end(),
                             [](const auto& x, const auto& y) { return x.name < y.name; }));
}

TEST(MetricsMerge, AbsorbFoldsASnapshotIntoALiveRegistry) {
  Registry worker;
  worker.counter("fleet.trial.completed").add(5);
  worker.counter("sim.scheduler.slab_capacity_max").bump_to(256);
  for (const double v : {0.1, 0.2, 0.3}) worker.timer("fleet.trial.sim_seconds").record(v);

  Registry merged;
  merged.counter("fleet.trial.completed").add(2);
  merged.counter("sim.scheduler.slab_capacity_max").bump_to(512);
  merged.timer("fleet.trial.sim_seconds").record(0.4);
  merged.absorb(worker.snapshot());

  EXPECT_EQ(merged.counter("fleet.trial.completed").value(), 7u);
  EXPECT_EQ(merged.counter("sim.scheduler.slab_capacity_max").value(), 512u);
  Timer& timer = merged.timer("fleet.trial.sim_seconds");
  EXPECT_EQ(timer.count(), 4u);
  EXPECT_NEAR(timer.sum(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(timer.min(), 0.1);
  EXPECT_DOUBLE_EQ(timer.max(), 0.4);
}

TEST(MetricsMerge, TimerMergePreservesCountSumMinMax) {
  Registry a, b;
  for (int i = 1; i <= 100; ++i) a.timer("t").record(i);
  for (int i = 101; i <= 200; ++i) b.timer("t").record(i);
  const std::vector<RegistrySnapshot> parts = {a.snapshot(), b.snapshot()};
  const RegistrySnapshot merged = merge_snapshots(parts);
  ASSERT_EQ(merged.timers.size(), 1u);
  const TimerSnap& t = merged.timers[0];
  EXPECT_EQ(t.count, 200u);
  EXPECT_NEAR(t.sum, 20'100.0, 1e-9);
  EXPECT_DOUBLE_EQ(t.min, 1.0);
  EXPECT_DOUBLE_EQ(t.max, 200.0);
  // Median of 1..200 within the p50 rank budget (ε=0.01 → ±3 ranks at n=200).
  EXPECT_NEAR(t.p50, 100.0, 4.0);
}

// ------------------------------------------------------ snapshot codec -----

SnapshotLine sample_line() {
  Registry registry;
  registry.counter("fleet.trial.completed").add(24);
  registry.counter("sim.scheduler.heap_capacity_max").bump_to(256);
  registry.gauge("fleet.leases.outstanding").set(-2);
  Meter& meter = registry.meter("fleet.progress.trials");
  meter.tick_to(0.0);
  meter.mark(24);
  meter.tick_to(16.0);
  for (int i = 0; i < 32; ++i) registry.timer("ids.latency.timing").record(0.001 * i);
  SnapshotLine line;
  line.seq = 3;
  line.source = "coordinator";
  line.sim_seconds = 120.5;
  line.registry = registry.snapshot();
  for (TimerSnap& timer : line.registry.timers) timer.samples.clear();
  return line;
}

TEST(MetricsSnapshot, EncodeParseIsAFixedPoint) {
  const SnapshotLine line = sample_line();
  const std::string text = encode_snapshot_line(line);
  EXPECT_EQ(text.find('\n'), std::string::npos);
  EXPECT_NE(text.find("\"schema\":\"acf-metrics-v1\""), std::string::npos);

  const std::optional<SnapshotLine> parsed = parse_snapshot_line(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seq, 3u);
  EXPECT_EQ(parsed->source, "coordinator");
  EXPECT_DOUBLE_EQ(parsed->sim_seconds, 120.5);
  ASSERT_EQ(parsed->registry.counters.size(), 2u);
  EXPECT_EQ(parsed->registry.counters[0].value, 24u);
  EXPECT_EQ(encode_snapshot_line(*parsed), text);  // fixed point
}

TEST(MetricsSnapshot, StrictParserRejectsHostileLines) {
  const std::string good = encode_snapshot_line(sample_line());
  ASSERT_TRUE(parse_snapshot_line(good).has_value());

  EXPECT_FALSE(parse_snapshot_line("").has_value());
  EXPECT_FALSE(parse_snapshot_line("{}").has_value());
  EXPECT_FALSE(parse_snapshot_line(good + "garbage").has_value());
  EXPECT_FALSE(parse_snapshot_line(good.substr(0, good.size() / 2)).has_value());

  std::string wrong_schema = good;
  wrong_schema.replace(wrong_schema.find("acf-metrics-v1"), 14, "acf-metrics-v2");
  EXPECT_FALSE(parse_snapshot_line(wrong_schema).has_value());

  std::string non_finite = good;
  non_finite.replace(non_finite.find("120.5"), 5, "1e999");
  EXPECT_FALSE(parse_snapshot_line(non_finite).has_value());
}

TEST(MetricsSnapshot, WriterStampsMonotonicSequenceNumbers) {
  Registry registry;
  registry.counter("n").add(1);
  std::ostringstream out;
  SnapshotWriter writer(out, "local");
  writer.write(registry.snapshot(), 1.0);
  registry.counter("n").add(1);
  writer.write(registry.snapshot(), 2.0);
  EXPECT_EQ(writer.lines_written(), 2u);

  std::istringstream lines(out.str());
  std::string line;
  std::uint64_t expected_seq = 1;
  while (std::getline(lines, line)) {
    const std::optional<SnapshotLine> parsed = parse_snapshot_line(line);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->seq, expected_seq);
    EXPECT_EQ(parsed->source, "local");
    EXPECT_EQ(parsed->registry.counters[0].value, expected_seq);
    ++expected_seq;
  }
  EXPECT_EQ(expected_seq, 3u);
}

TEST(MetricsSnapshot, RenderTableShowsEveryInstrumentFamily) {
  const std::string table = render_table(sample_line().registry);
  EXPECT_NE(table.find("fleet.trial.completed"), std::string::npos);
  EXPECT_NE(table.find("fleet.leases.outstanding"), std::string::npos);
  EXPECT_NE(table.find("fleet.progress.trials"), std::string::npos);
  EXPECT_NE(table.find("ids.latency.timing"), std::string::npos);
}

// --------------------------------------------- in-place stats satellite -----

TEST(MetricsStats, InPlacePercentileMatchesTheCopyingVersion) {
  util::Rng rng(0x57A75ULL);
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{17},
                              std::size_t{1'000}}) {
    std::vector<double> sample;
    sample.reserve(n);
    for (std::size_t i = 0; i < n; ++i) sample.push_back(rng.next_double() * 1e4);
    for (const double p : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
      const double expected = util::percentile(sample, p);
      std::vector<double> scratch = sample;  // the in-place variant reorders
      EXPECT_DOUBLE_EQ(util::percentile_in_place(scratch, p), expected)
          << "n=" << n << " p=" << p;
    }
    std::vector<double> scratch = sample;
    EXPECT_DOUBLE_EQ(util::median_in_place(scratch), util::median(sample)) << "n=" << n;
  }
}

// ------------------------------------------- fleet latency acceptance -----

/// The ISSUE acceptance check: after an IDS fleet campaign, the registry's
/// `ids.latency.<detector>` p99 must sit within the CKMS rank-error bound of
/// the exact sorted per-trial detection latencies held by the EvalSink.
TEST(MetricsAcceptance, ReportedDetectionLatencyQuantilesMatchExactSortWithinEpsilon) {
  fuzzer::FuzzConfig fast = fuzzer::FuzzConfig::around_id(0x215, 3);
  fast.tx_period = std::chrono::microseconds(250);
  ids::IdsArm arm;
  arm.fuzz = fast;
  arm.train_window = 5s;
  const fleet::TrialPlan plan({"weak"}, 6, 0xACF17EE7ULL, std::chrono::minutes(5));

  Registry registry;
  ids::EvalSink sink = ids::make_eval_sink(plan);
  fleet::ExecutorConfig config;
  config.threads = 2;
  config.progress_period = std::chrono::milliseconds(0);
  config.registry = &registry;
  fleet::Executor executor(config);
  executor.run(plan, ids::ids_unlock_world_factory({arm}, sink, &registry));

  // Exact per-detector latency lists straight from the evaluation slots.
  std::map<std::string, std::vector<double>> exact;
  for (const ids::TrialEval& eval : *sink) {
    for (const ids::DetectorEval& det : eval.detectors) {
      if (det.detection_latency >= 0.0) exact[det.name].push_back(det.detection_latency);
    }
  }
  ASSERT_FALSE(exact.empty()) << "no detector ever fired — the fixture is broken";

  std::size_t checked = 0;
  for (auto& [name, latencies] : exact) {
    std::sort(latencies.begin(), latencies.end());
    Timer& timer = registry.timer("ids.latency." + name);
    ASSERT_EQ(timer.count(), latencies.size()) << name;
    for (const CkmsTarget& target :
         {CkmsTarget{0.5, 0.010}, CkmsTarget{0.99, 0.001}}) {
      expect_within_rank_error(latencies, timer.quantile(target.quantile),
                               target.quantile, target.error,
                               "ids.latency." + name);
      ++checked;
    }
    // And min/max are exact, not estimates.
    EXPECT_DOUBLE_EQ(timer.min(), latencies.front()) << name;
    EXPECT_DOUBLE_EQ(timer.max(), latencies.back()) << name;
  }
  EXPECT_GE(checked, 2u);
}

}  // namespace
}  // namespace acf::metrics
