#include <gtest/gtest.h>

#include <vector>

#include "can/bus.hpp"
#include "sim/scheduler.hpp"

namespace acf::can {
namespace {

/// Test listener recording everything it sees.
class Recorder : public BusListener {
 public:
  void on_frame(const CanFrame& frame, sim::SimTime time) override {
    frames.push_back(frame);
    times.push_back(time);
  }
  void on_error_frame(sim::SimTime) override { ++error_frames; }
  void on_tx_complete(const CanFrame& frame, sim::SimTime) override {
    tx_completed.push_back(frame);
  }

  std::vector<CanFrame> frames;
  std::vector<sim::SimTime> times;
  std::vector<CanFrame> tx_completed;
  int error_frames = 0;
};

class BusTest : public ::testing::Test {
 protected:
  sim::Scheduler scheduler;
  can::VirtualBus bus{scheduler};
};

TEST_F(BusTest, DeliversToAllOtherNodes) {
  Recorder a, b, c;
  const NodeId na = bus.attach(a, "a");
  bus.attach(b, "b");
  bus.attach(c, "c");
  const auto frame = CanFrame::data_std(0x100, {1, 2});
  EXPECT_TRUE(bus.submit(na, frame));
  scheduler.run_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(a.frames.empty());  // no self-reception
  ASSERT_EQ(b.frames.size(), 1u);
  ASSERT_EQ(c.frames.size(), 1u);
  EXPECT_EQ(b.frames[0], frame);
  ASSERT_EQ(a.tx_completed.size(), 1u);
  EXPECT_EQ(a.tx_completed[0], frame);
}

TEST_F(BusTest, DeliveryTakesWireTime) {
  Recorder a, b;
  const NodeId na = bus.attach(a, "a");
  bus.attach(b, "b");
  bus.submit(na, CanFrame::data_std(0x100, {1, 2, 3, 4, 5, 6, 7, 8}));
  scheduler.run_for(std::chrono::microseconds(100));
  EXPECT_TRUE(b.frames.empty());  // ~111+ bits at 2 us/bit is > 200 us
  scheduler.run_for(std::chrono::microseconds(300));
  EXPECT_EQ(b.frames.size(), 1u);
}

TEST_F(BusTest, SimultaneousSubmitsArbitrateByPriority) {
  Recorder a, b, tap;
  const NodeId na = bus.attach(a, "a");
  const NodeId nb = bus.attach(b, "b");
  bus.attach(tap, "tap", {}, /*listen_only=*/true);
  const auto high = CanFrame::data_std(0x100, {1});
  const auto low = CanFrame::data_std(0x200, {2});
  // Same simulated instant: both are pending when the contest runs.
  scheduler.schedule_at(sim::SimTime{1000}, [&] { bus.submit(nb, low); });
  scheduler.schedule_at(sim::SimTime{1000}, [&] { bus.submit(na, high); });
  scheduler.run_for(std::chrono::milliseconds(2));
  ASSERT_EQ(tap.frames.size(), 2u);
  EXPECT_EQ(tap.frames[0].id(), 0x100u);  // lower id transmitted first
  EXPECT_EQ(tap.frames[1].id(), 0x200u);
  EXPECT_EQ(bus.stats().arbitration_contests, 1u);
}

TEST_F(BusTest, QueuedFramesFromOneNodeStayFifo) {
  Recorder a, tap;
  const NodeId na = bus.attach(a, "a");
  bus.attach(tap, "tap", {}, true);
  bus.submit(na, CanFrame::data_std(0x300, {3}));
  bus.submit(na, CanFrame::data_std(0x100, {1}));
  scheduler.run_for(std::chrono::milliseconds(2));
  ASSERT_EQ(tap.frames.size(), 2u);
  // FIFO per node: the first submitted frame goes first even though the
  // second has higher priority (real controllers transmit mailbox order
  // for a single queue).
  EXPECT_EQ(tap.frames[0].id(), 0x300u);
}

TEST_F(BusTest, AcceptanceFiltersApplied) {
  Recorder a, filtered;
  const NodeId na = bus.attach(a, "a");
  bus.attach(filtered, "f", FilterBank{IdMaskFilter::exact(0x215)});
  bus.submit(na, CanFrame::data_std(0x215, {1}));
  bus.submit(na, CanFrame::data_std(0x216, {2}));
  scheduler.run_for(std::chrono::milliseconds(2));
  ASSERT_EQ(filtered.frames.size(), 1u);
  EXPECT_EQ(filtered.frames[0].id(), 0x215u);
}

TEST_F(BusTest, ListenOnlyNodesCannotTransmit) {
  Recorder tap;
  const NodeId nt = bus.attach(tap, "tap", {}, true);
  EXPECT_FALSE(bus.submit(nt, CanFrame::data_std(0x100, {})));
}

TEST_F(BusTest, PoweredOffNodesNeitherSendNorReceive) {
  Recorder a, b;
  const NodeId na = bus.attach(a, "a");
  const NodeId nb = bus.attach(b, "b");
  bus.set_power(nb, false);
  EXPECT_FALSE(bus.powered(nb));
  bus.submit(na, CanFrame::data_std(0x100, {}));
  scheduler.run_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(b.frames.empty());
  EXPECT_FALSE(bus.submit(nb, CanFrame::data_std(0x101, {})));
  // Power back on: participates again.
  bus.set_power(nb, true);
  bus.submit(na, CanFrame::data_std(0x102, {}));
  scheduler.run_for(std::chrono::milliseconds(1));
  EXPECT_EQ(b.frames.size(), 1u);
}

TEST_F(BusTest, DetachedNodeStopsReceiving) {
  Recorder a, b;
  const NodeId na = bus.attach(a, "a");
  const NodeId nb = bus.attach(b, "b");
  bus.detach(nb);
  bus.submit(na, CanFrame::data_std(0x100, {}));
  scheduler.run_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(b.frames.empty());
  EXPECT_EQ(bus.node_count(), 1u);
}

TEST_F(BusTest, TxQueueLimitDropsExcess) {
  BusConfig config;
  config.tx_queue_limit = 4;
  can::VirtualBus small(scheduler, config);
  Recorder a;
  const NodeId na = small.attach(a, "a");
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (small.submit(na, CanFrame::data_std(0x100, {static_cast<std::uint8_t>(i)}))) {
      ++accepted;
    }
  }
  // One frame may have started transmitting; the queue holds 4 more.
  EXPECT_LE(accepted, 6);
  EXPECT_GT(small.stats().drops_queue_full, 0u);
}

TEST_F(BusTest, StatsTrackLoadAndCounts) {
  Recorder a, b;
  const NodeId na = bus.attach(a, "a");
  bus.attach(b, "b");
  for (int i = 0; i < 50; ++i) bus.submit(na, CanFrame::data_std(0x100, {1, 2, 3, 4}));
  scheduler.run_for(std::chrono::milliseconds(50));
  EXPECT_EQ(bus.stats().frames_delivered, 50u);
  EXPECT_EQ(bus.stats().deliveries, 50u);
  const double load = bus.stats().load(scheduler.now());
  EXPECT_GT(load, 0.1);  // 50 frames of ~170 us in 50 ms ≈ 17 %
  EXPECT_LT(load, 0.5);
}

TEST_F(BusTest, CorruptionRaisesErrorFramesAndRetransmits) {
  // Kept low enough that TEC (+8/error, -1/success) stays under the bus-off
  // threshold for the whole batch; the PersistentCorruption test covers the
  // fault-confinement path.
  BusConfig config;
  config.corruption_probability = 0.2;
  config.seed = 77;
  can::VirtualBus lossy(scheduler, config);
  Recorder a, b;
  const NodeId na = lossy.attach(a, "a");
  lossy.attach(b, "b");
  for (int i = 0; i < 40; ++i) {
    lossy.submit(na, CanFrame::data_std(0x123, {static_cast<std::uint8_t>(i)}));
  }
  scheduler.run_for(std::chrono::seconds(1));
  // Every frame eventually delivers (automatic retransmission)...
  EXPECT_EQ(b.frames.size(), 40u);
  // ...but error frames were observed and the TEC moved.
  EXPECT_GT(lossy.stats().error_frames, 0u);
  EXPECT_GT(b.error_frames, 0);
}

TEST_F(BusTest, PersistentCorruptionDrivesTransmitterBusOff) {
  BusConfig config;
  config.corruption_probability = 1.0;  // every transmission fails
  config.auto_bus_off_recovery = false;
  can::VirtualBus broken(scheduler, config);
  Recorder a, b;
  const NodeId na = broken.attach(a, "a");
  broken.attach(b, "b");
  // TEC +8 per attempt; bus-off above 255 -> 32 attempts needed.
  for (int i = 0; i < 40; ++i) broken.submit(na, CanFrame::data_std(0x111, {1}));
  scheduler.run_for(std::chrono::seconds(2));
  EXPECT_TRUE(broken.error_state(na).bus_off());
  EXPECT_TRUE(b.frames.empty());
  // Further submits rejected while bus-off.
  EXPECT_FALSE(broken.submit(na, CanFrame::data_std(0x111, {1})));
  EXPECT_GT(broken.stats().drops_bus_off, 0u);
}

TEST_F(BusTest, BusOffAutoRecoveryRestoresTransmission) {
  BusConfig config;
  config.corruption_probability = 1.0;
  config.seed = 5;
  can::VirtualBus flaky(scheduler, config);
  Recorder a, b;
  const NodeId na = flaky.attach(a, "a");
  flaky.attach(b, "b");
  for (int i = 0; i < 40; ++i) flaky.submit(na, CanFrame::data_std(0x111, {1}));
  // Drive until the transmitter has been thrown off the bus (its queue is
  // dropped at that point)...
  scheduler.run_until_condition([&] { return flaky.stats().drops_bus_off > 0; },
                                scheduler.now() + std::chrono::seconds(1));
  EXPECT_GT(flaky.stats().drops_bus_off, 0u);
  // ...then wait out the 128x11-bit recovery window: the node rejoins.
  scheduler.run_for(std::chrono::seconds(1));
  EXPECT_FALSE(flaky.error_state(na).bus_off());
  EXPECT_TRUE(flaky.submit(na, CanFrame::data_std(0x111, {1})));
}

TEST_F(BusTest, FlushedQueueAbortsDelivery) {
  Recorder a, b;
  const NodeId na = bus.attach(a, "a");
  bus.attach(b, "b");
  bus.submit(na, CanFrame::data_std(0x100, {1, 2, 3, 4, 5, 6, 7, 8}));
  bus.flush_tx_queue(na);  // flushed while "on the wire"
  scheduler.run_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(b.frames.empty());
}

TEST_F(BusTest, NodeNamesAndErrorStateAccessors) {
  Recorder a;
  const NodeId na = bus.attach(a, "engine");
  EXPECT_EQ(bus.node_name(na), "engine");
  EXPECT_EQ(bus.node_name(999), "<detached>");
  EXPECT_EQ(bus.error_state(na).mode(), ErrorMode::kErrorActive);
  EXPECT_EQ(bus.error_state(999).tec(), 0u);
}

// -------------------------------------------------------- error state -----

TEST(ErrorState, ThresholdTransitions) {
  ErrorState state;
  EXPECT_EQ(state.mode(), ErrorMode::kErrorActive);
  for (int i = 0; i < 16; ++i) state.on_tx_error();  // TEC = 128
  EXPECT_EQ(state.mode(), ErrorMode::kErrorPassive);
  for (int i = 0; i < 16; ++i) state.on_tx_error();  // TEC = 256
  EXPECT_EQ(state.mode(), ErrorMode::kBusOff);
  state.reset();
  EXPECT_EQ(state.mode(), ErrorMode::kErrorActive);
}

TEST(ErrorState, SuccessDecrements) {
  ErrorState state;
  state.on_tx_error();  // 8
  for (int i = 0; i < 8; ++i) state.on_tx_success();
  EXPECT_EQ(state.tec(), 0u);
  state.on_tx_success();  // floor at 0
  EXPECT_EQ(state.tec(), 0u);
}

TEST(ErrorState, ReceiverCounters) {
  ErrorState state;
  for (int i = 0; i < 130; ++i) state.on_rx_error();
  EXPECT_EQ(state.mode(), ErrorMode::kErrorPassive);
  state.on_rx_success();  // >127 resets into the 119..127 band (we use 127)
  EXPECT_EQ(state.rec(), 127u);
  state.on_rx_success();
  EXPECT_EQ(state.rec(), 126u);
}

TEST(ErrorState, PrimaryDetectorPenalty) {
  ErrorState state;
  state.on_rx_error_primary();
  EXPECT_EQ(state.rec(), 8u);
}

}  // namespace
}  // namespace acf::can
