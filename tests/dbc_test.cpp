#include <gtest/gtest.h>

#include <tuple>

#include "dbc/database.hpp"
#include "dbc/parser.hpp"
#include "dbc/signal.hpp"
#include "dbc/target_vehicle_db.hpp"
#include "util/rng.hpp"

namespace acf::dbc {
namespace {

SignalDef make_signal(std::uint16_t start, std::uint16_t length, ByteOrder order,
                      bool is_signed = false, double scale = 1.0, double offset = 0.0) {
  SignalDef sig;
  sig.name = "S";
  sig.start_bit = start;
  sig.bit_length = length;
  sig.byte_order = order;
  sig.is_signed = is_signed;
  sig.scale = scale;
  sig.offset = offset;
  return sig;
}

// ----------------------------------------------------------- raw pack -----

TEST(Signal, LittleEndianByteAligned) {
  const auto sig = make_signal(8, 16, ByteOrder::kLittleEndian);
  std::uint8_t payload[4] = {};
  ASSERT_TRUE(insert_raw(sig, 0xBEEF, payload));
  EXPECT_EQ(payload[1], 0xEF);  // LSB first
  EXPECT_EQ(payload[2], 0xBE);
  EXPECT_EQ(extract_raw(sig, payload).value(), 0xBEEFu);
}

TEST(Signal, LittleEndianUnaligned) {
  const auto sig = make_signal(4, 8, ByteOrder::kLittleEndian);
  std::uint8_t payload[2] = {};
  ASSERT_TRUE(insert_raw(sig, 0xA5, payload));
  EXPECT_EQ(payload[0], 0x50);
  EXPECT_EQ(payload[1], 0x0A);
  EXPECT_EQ(extract_raw(sig, payload).value(), 0xA5u);
}

TEST(Signal, BigEndianByteAligned) {
  // Motorola start bit 7, 16 bits: occupies bytes 0..1 MSB-first.
  const auto sig = make_signal(7, 16, ByteOrder::kBigEndian);
  std::uint8_t payload[2] = {};
  ASSERT_TRUE(insert_raw(sig, 0xBEEF, payload));
  EXPECT_EQ(payload[0], 0xBE);
  EXPECT_EQ(payload[1], 0xEF);
  EXPECT_EQ(extract_raw(sig, payload).value(), 0xBEEFu);
}

TEST(Signal, InsertDoesNotClobberNeighbours) {
  const auto low = make_signal(0, 4, ByteOrder::kLittleEndian);
  const auto high = make_signal(4, 4, ByteOrder::kLittleEndian);
  std::uint8_t payload[1] = {};
  insert_raw(low, 0xF, payload);
  insert_raw(high, 0x3, payload);
  EXPECT_EQ(payload[0], 0x3F);
  insert_raw(low, 0x0, payload);
  EXPECT_EQ(payload[0], 0x30);  // high nibble untouched
}

TEST(Signal, FitsBoundaryChecks) {
  EXPECT_TRUE(make_signal(56, 8, ByteOrder::kLittleEndian).fits(8));
  EXPECT_FALSE(make_signal(57, 8, ByteOrder::kLittleEndian).fits(8));
  EXPECT_FALSE(make_signal(0, 8, ByteOrder::kLittleEndian).fits(0));
  EXPECT_TRUE(make_signal(7, 16, ByteOrder::kBigEndian).fits(2));
  EXPECT_FALSE(make_signal(7, 17, ByteOrder::kBigEndian).fits(2));
}

TEST(Signal, ExtractFromShortPayloadReturnsNullopt) {
  const auto sig = make_signal(16, 8, ByteOrder::kLittleEndian);
  const std::uint8_t payload[2] = {1, 2};
  EXPECT_FALSE(extract_raw(sig, payload).has_value());
  EXPECT_FALSE(decode(sig, payload).has_value());
}

// Property: roundtrip over a grid of widths, starts and byte orders.
class SignalRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, ByteOrder, bool>> {};

TEST_P(SignalRoundTrip, RawRoundTripsThroughPayload) {
  const auto [start, length, order, is_signed] = GetParam();
  const auto sig = make_signal(static_cast<std::uint16_t>(start),
                               static_cast<std::uint16_t>(length), order, is_signed);
  if (!sig.fits(8)) GTEST_SKIP();
  util::Rng rng(static_cast<std::uint64_t>(start * 131 + length));
  for (int trial = 0; trial < 50; ++trial) {
    std::uint8_t payload[8] = {};
    rng.fill(payload);
    const std::uint64_t mask = length >= 64 ? ~0ULL : (1ULL << length) - 1;
    const std::uint64_t raw = rng.next_u64() & mask;
    ASSERT_TRUE(insert_raw(sig, raw, payload));
    EXPECT_EQ(extract_raw(sig, payload).value(), raw);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SignalRoundTrip,
    ::testing::Combine(::testing::Values(0, 3, 7, 8, 12, 16, 23, 32, 40),
                       ::testing::Values(1, 3, 8, 12, 16, 24, 32),
                       ::testing::Values(ByteOrder::kLittleEndian, ByteOrder::kBigEndian),
                       ::testing::Bool()));

// ----------------------------------------------------------- scaling ------

TEST(Signal, SignExtension) {
  EXPECT_EQ(sign_extend(0xFF, 8), -1);
  EXPECT_EQ(sign_extend(0x7F, 8), 127);
  EXPECT_EQ(sign_extend(0x8000, 16), -32768);
  EXPECT_EQ(sign_extend(1, 1), -1);
  EXPECT_EQ(sign_extend(0xFFFFFFFFFFFFFFFFULL, 64), -1);
}

TEST(Signal, PhysicalConversionUnsigned) {
  auto sig = make_signal(0, 16, ByteOrder::kLittleEndian, false, 0.25, 0.0);
  EXPECT_DOUBLE_EQ(sig.raw_to_physical(3200), 800.0);
  EXPECT_EQ(sig.physical_to_raw(800.0), 3200u);
}

TEST(Signal, PhysicalConversionSignedNegative) {
  auto sig = make_signal(0, 16, ByteOrder::kLittleEndian, true, 0.25, 0.0);
  // Raw 0xF000 = -4096 -> -1024 rpm: the Fig. 8 negative-RPM mechanism.
  EXPECT_DOUBLE_EQ(sig.raw_to_physical(0xF000), -1024.0);
  EXPECT_EQ(sig.physical_to_raw(-1024.0), 0xF000u);
}

TEST(Signal, PhysicalConversionWithOffset) {
  auto sig = make_signal(0, 8, ByteOrder::kLittleEndian, false, 1.0, -40.0);
  EXPECT_DOUBLE_EQ(sig.raw_to_physical(0), -40.0);
  EXPECT_DOUBLE_EQ(sig.raw_to_physical(255), 215.0);
  EXPECT_EQ(sig.physical_to_raw(20.0), 60u);
}

TEST(Signal, PhysicalToRawClampsAtLimits) {
  auto sig = make_signal(0, 8, ByteOrder::kLittleEndian, false, 1.0, 0.0);
  EXPECT_EQ(sig.physical_to_raw(1000.0), 255u);
  EXPECT_EQ(sig.physical_to_raw(-5.0), 0u);
  auto sgn = make_signal(0, 8, ByteOrder::kLittleEndian, true, 1.0, 0.0);
  EXPECT_EQ(sgn.physical_to_raw(200.0), 127u);
  EXPECT_EQ(sgn.physical_to_raw(-200.0), 0x80u);
}

TEST(Signal, DeclaredRangeCheck) {
  auto sig = make_signal(0, 16, ByteOrder::kLittleEndian);
  sig.min = 0;
  sig.max = 8000;
  EXPECT_TRUE(sig.in_declared_range(0));
  EXPECT_TRUE(sig.in_declared_range(8000));
  EXPECT_FALSE(sig.in_declared_range(-1));
  EXPECT_FALSE(sig.in_declared_range(8001));
  sig.min = sig.max = 0;  // undeclared: everything plausible
  EXPECT_TRUE(sig.in_declared_range(1e9));
}

// ------------------------------------------------------- message defs -----

TEST(MessageDef, EncodeDecodeRoundTrip) {
  const Database db = target_vehicle_database();
  const MessageDef* engine = db.by_id(kMsgEngineData);
  ASSERT_NE(engine, nullptr);
  const auto frame = engine->encode(
      {{"EngineRPM", 2400.0}, {"ThrottlePct", 40.0}, {"CoolantTempC", 92.0}});
  ASSERT_TRUE(frame.has_value());
  const auto values = engine->decode(*frame);
  EXPECT_DOUBLE_EQ(values.at("EngineRPM"), 2400.0);
  EXPECT_DOUBLE_EQ(values.at("ThrottlePct"), 40.0);
  EXPECT_DOUBLE_EQ(values.at("CoolantTempC"), 92.0);
  EXPECT_DOUBLE_EQ(values.at("FuelRate"), 0.0);  // unset encodes as raw zero
}

TEST(MessageDef, EncodeUnknownSignalFails) {
  const Database db = target_vehicle_database();
  const MessageDef* engine = db.by_id(kMsgEngineData);
  EXPECT_FALSE(engine->encode({{"NoSuchSignal", 1.0}}).has_value());
}

TEST(MessageDef, DecodeShortFrameOmitsUnfittingSignals) {
  const Database db = target_vehicle_database();
  const MessageDef* engine = db.by_id(kMsgEngineData);
  const auto short_frame = can::CanFrame::data_std(kMsgEngineData, {0x10, 0x20});
  const auto values = engine->decode(short_frame);
  EXPECT_TRUE(values.contains("EngineRPM"));      // bits 0..15 fit
  EXPECT_FALSE(values.contains("CoolantTempC"));  // bits 24..31 do not
}

TEST(Database, LookupByIdAndName) {
  const Database db = target_vehicle_database();
  EXPECT_NE(db.by_id(kMsgBodyCommand), nullptr);
  EXPECT_EQ(db.by_id(0x7DF), nullptr);
  EXPECT_NE(db.by_name("BODY_COMMAND"), nullptr);
  EXPECT_EQ(db.by_name("NOPE"), nullptr);
  EXPECT_EQ(db.by_name("BODY_COMMAND")->id, kMsgBodyCommand);
}

TEST(Database, AddReplacesSameId) {
  Database db;
  MessageDef m;
  m.id = 0x100;
  m.name = "A";
  db.add(m);
  m.name = "B";
  db.add(m);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.by_id(0x100)->name, "B");
}

TEST(Database, IdsSortedAscending) {
  const Database db = target_vehicle_database();
  const auto ids = db.ids();
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  EXPECT_EQ(ids.size(), db.size());
}

TEST(TargetVehicleDb, SignalsFitTheirMessages) {
  const Database db = target_vehicle_database();
  ASSERT_GE(db.size(), 9u);
  for (const auto& message : db.messages()) {
    for (const auto& sig : message.signals) {
      EXPECT_TRUE(sig.fits(message.dlc)) << message.name << "." << sig.name;
    }
  }
}

TEST(TargetVehicleDb, BodyCommandMatchesPaperShape) {
  const Database db = target_vehicle_database();
  const MessageDef* cmd = db.by_id(kMsgBodyCommand);
  ASSERT_NE(cmd, nullptr);
  EXPECT_EQ(cmd->id, 0x215u);  // the paper's lock/unlock id (533 decimal)
  EXPECT_EQ(cmd->dlc, 7u);     // DLC 7 as in Fig. 13
}

// ------------------------------------------------------------ parser ------

TEST(Parser, ParsesMessageAndSignals) {
  const auto result = parse_dbc(R"(VERSION ""
BU_: ECM CLUSTER

BO_ 165 ENGINE_DATA: 8 ECM
 SG_ EngineRPM : 0|16@1- (0.25,0) [0|8000] "rpm" CLUSTER
 SG_ Throttle : 16|8@1+ (0.4,0) [0|100] "%" CLUSTER

BA_ "GenMsgCycleTime" BO_ 165 10;
)");
  EXPECT_TRUE(result.ok()) << (result.errors.empty() ? "" : result.errors[0]);
  EXPECT_EQ(result.nodes, (std::vector<std::string>{"ECM", "CLUSTER"}));
  const MessageDef* msg = result.database.by_id(165);
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(msg->name, "ENGINE_DATA");
  EXPECT_EQ(msg->dlc, 8u);
  EXPECT_EQ(msg->sender, "ECM");
  EXPECT_EQ(msg->cycle_time_ms, 10u);
  ASSERT_EQ(msg->signals.size(), 2u);
  const SignalDef& rpm = msg->signals[0];
  EXPECT_EQ(rpm.name, "EngineRPM");
  EXPECT_EQ(rpm.bit_length, 16u);
  EXPECT_TRUE(rpm.is_signed);
  EXPECT_EQ(rpm.byte_order, ByteOrder::kLittleEndian);
  EXPECT_DOUBLE_EQ(rpm.scale, 0.25);
  EXPECT_DOUBLE_EQ(rpm.max, 8000.0);
  EXPECT_EQ(rpm.unit, "rpm");
}

TEST(Parser, ExtendedIdBit31) {
  const auto result = parse_dbc("BO_ 2164261121 EXT_MSG: 8 X\n");
  const MessageDef* msg = result.database.by_id(2164261121u & 0x1FFFFFFFu);
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(msg->format, can::IdFormat::kExtended);
}

TEST(Parser, BigEndianAndMultiplexedSignals) {
  const auto result = parse_dbc(R"(BO_ 291 M: 8 X
 SG_ Mode M : 7|8@0+ (1,0) [0|255] "" X
 SG_ Value m0 : 15|16@0- (1,0) [-100|100] "u" X
)");
  const MessageDef* msg = result.database.by_id(291);
  ASSERT_NE(msg, nullptr);
  ASSERT_EQ(msg->signals.size(), 2u);
  EXPECT_EQ(msg->signals[0].byte_order, ByteOrder::kBigEndian);
  EXPECT_TRUE(msg->signals[1].is_signed);
}

TEST(Parser, MalformedLinesReportedAndSkipped) {
  const auto result = parse_dbc(R"(BO_ nonsense NAME: 8 X
BO_ 100 GOOD: 8 X
 SG_ Bad : brokenlayout (1,0) [0|1] "" X
 SG_ Good : 0|8@1+ (1,0) [0|255] "" X
 SG_ TooBig : 32|64@1+ (1,0) [0|1] "" X
)");
  EXPECT_EQ(result.errors.size(), 3u);
  const MessageDef* msg = result.database.by_id(100);
  ASSERT_NE(msg, nullptr);
  ASSERT_EQ(msg->signals.size(), 1u);
  EXPECT_EQ(msg->signals[0].name, "Good");
}

TEST(Parser, SignalOutsideMessageIsError) {
  const auto result = parse_dbc(" SG_ Orphan : 0|8@1+ (1,0) [0|1] \"\" X\n");
  EXPECT_EQ(result.errors.size(), 1u);
  EXPECT_EQ(result.database.size(), 0u);
}

TEST(Parser, RoundTripThroughText) {
  const Database original = target_vehicle_database();
  const auto result = parse_dbc(target_vehicle_dbc_text());
  EXPECT_TRUE(result.ok()) << (result.errors.empty() ? "" : result.errors[0]);
  ASSERT_EQ(result.database.size(), original.size());
  for (const auto& message : original.messages()) {
    const MessageDef* loaded = result.database.by_id(message.id);
    ASSERT_NE(loaded, nullptr) << message.name;
    EXPECT_EQ(loaded->name, message.name);
    EXPECT_EQ(loaded->dlc, message.dlc);
    EXPECT_EQ(loaded->cycle_time_ms, message.cycle_time_ms);
    ASSERT_EQ(loaded->signals.size(), message.signals.size());
    for (std::size_t i = 0; i < message.signals.size(); ++i) {
      const SignalDef& a = message.signals[i];
      const SignalDef& b = loaded->signals[i];
      EXPECT_EQ(a.name, b.name);
      EXPECT_EQ(a.start_bit, b.start_bit);
      EXPECT_EQ(a.bit_length, b.bit_length);
      EXPECT_EQ(a.is_signed, b.is_signed);
      EXPECT_DOUBLE_EQ(a.scale, b.scale);
      EXPECT_DOUBLE_EQ(a.offset, b.offset);
    }
  }
}

}  // namespace
}  // namespace acf::dbc
