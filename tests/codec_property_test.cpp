// Property tests for the classic-CAN wire codec: randomized round trips
// (logical and wire images reproduce id / DLC / payload / flags exactly) and
// a cross-check of the table-driven wire-length fast path against the
// bitwise reference (encode_logical + stuff), which the frame-timing model
// and therefore every Table V result depend on.
#include <gtest/gtest.h>

#include <vector>

#include "can/bitstream.hpp"
#include "can/wire_codec.hpp"
#include "util/rng.hpp"

namespace acf::can {
namespace {

/// Uniformly random classic frame: standard/extended id, data/remote,
/// payload length 0..8 with random bytes.
CanFrame random_classic_frame(util::Rng& rng) {
  const bool extended = rng.next_bool(0.3);
  const IdFormat format = extended ? IdFormat::kExtended : IdFormat::kStandard;
  const auto id = static_cast<std::uint32_t>(
      rng.next_below(extended ? kMaxExtendedId + 1ULL : kMaxStandardId + 1ULL));
  if (rng.next_bool(0.15)) {
    return *CanFrame::remote(id, static_cast<std::uint8_t>(rng.next_below(9)), format);
  }
  std::vector<std::uint8_t> payload(rng.next_below(9));
  rng.fill(payload);
  return *CanFrame::data(id, payload, format);
}

TEST(CodecProperty, LogicalRoundTripPreservesEveryField) {
  util::Rng rng(0x10D1C);
  for (int i = 0; i < 2000; ++i) {
    const CanFrame frame = random_classic_frame(rng);
    const BitVec logical = encode_logical(frame);
    ASSERT_FALSE(logical.empty()) << frame.to_string();
    const auto decoded = decode_logical(logical);
    ASSERT_TRUE(decoded.has_value()) << frame.to_string();
    EXPECT_EQ(decoded->id(), frame.id());
    EXPECT_EQ(decoded->dlc(), frame.dlc());
    EXPECT_EQ(decoded->is_extended(), frame.is_extended());
    EXPECT_EQ(decoded->is_remote(), frame.is_remote());
    EXPECT_TRUE(*decoded == frame) << frame.to_string();
  }
}

TEST(CodecProperty, WireRoundTripPreservesEveryField) {
  util::Rng rng(0x20D2C);
  for (int i = 0; i < 2000; ++i) {
    const CanFrame frame = random_classic_frame(rng);
    const BitVec wire = encode_wire(frame);
    ASSERT_FALSE(wire.empty()) << frame.to_string();
    const auto decoded = decode_wire(wire);
    ASSERT_TRUE(decoded.has_value()) << frame.to_string();
    EXPECT_EQ(decoded->id(), frame.id());
    EXPECT_EQ(decoded->dlc(), frame.dlc());
    EXPECT_EQ(decoded->is_extended(), frame.is_extended());
    EXPECT_EQ(decoded->is_remote(), frame.is_remote());
    EXPECT_TRUE(*decoded == frame) << frame.to_string();
  }
}

TEST(CodecProperty, CorruptedWireImageNeverDecodesToADifferentFrame) {
  // Flipping any single bit in the stuffed region must either be rejected
  // (stuffing/CRC/form violation) or — never — decode to the wrong frame.
  util::Rng rng(0x30D3C);
  for (int i = 0; i < 200; ++i) {
    const CanFrame frame = random_classic_frame(rng);
    BitVec wire = encode_wire(frame);
    const std::size_t flip = static_cast<std::size_t>(rng.next_below(wire.size()));
    wire[flip] ^= 1;
    const auto decoded = decode_wire(wire);
    if (decoded.has_value()) {
      EXPECT_TRUE(*decoded == frame) << frame.to_string() << " flip@" << flip;
    }
  }
}

TEST(CodecProperty, TableDrivenWireLengthMatchesBitwiseReference) {
  // wire_bit_count's classic path runs byte-step CRC15 and stuffing tables;
  // the reference length is the materialised image: stuffed SOF..CRC bits
  // plus the 10-bit fixed tail plus the 3-bit interframe space.
  util::Rng rng(0x40D4C);
  constexpr std::size_t kTailBits = 10;        // CRC delim + ACK slot + delim + EOF
  constexpr std::size_t kInterframeSpace = 3;  // intermission
  for (int i = 0; i < 5000; ++i) {
    const CanFrame frame = random_classic_frame(rng);
    const BitVec logical = encode_logical(frame);
    const std::size_t reference =
        logical.size() + count_stuff_bits(logical) + kTailBits + kInterframeSpace;
    EXPECT_EQ(wire_bit_count(frame), reference) << frame.to_string();
    // And the fully materialised image agrees with the counter.
    EXPECT_EQ(wire_bit_count(frame), encode_wire(frame).size() + kInterframeSpace)
        << frame.to_string();
  }
}

TEST(CodecProperty, WorstCaseBoundsEveryRandomFrame) {
  util::Rng rng(0x50D5C);
  for (int i = 0; i < 2000; ++i) {
    const CanFrame frame = random_classic_frame(rng);
    EXPECT_LE(wire_bit_count(frame),
              worst_case_bit_count(frame.payload().size(), frame.format()))
        << frame.to_string();
  }
}

}  // namespace
}  // namespace acf::can
