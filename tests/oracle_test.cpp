#include <gtest/gtest.h>

#include "oracle/bus_oracles.hpp"
#include "oracle/vehicle_oracles.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "vehicle/vehicle.hpp"

namespace acf::oracle {
namespace {

using sim::SimTime;

TEST(Verdict, Names) {
  EXPECT_STREQ(to_string(Verdict::kNominal), "nominal");
  EXPECT_STREQ(to_string(Verdict::kSuspicious), "suspicious");
  EXPECT_STREQ(to_string(Verdict::kFailure), "failure");
}

/// Scriptable oracle for composite tests.
class FakeOracle final : public Oracle {
 public:
  explicit FakeOracle(std::string oracle_name) : name_(std::move(oracle_name)) {}
  std::string_view name() const override { return name_; }
  std::optional<Observation> poll(SimTime now) override {
    ++polls;
    if (!pending.has_value()) return std::nullopt;
    auto out = *pending;
    out.time = now;
    pending.reset();
    return out;
  }
  void reset() override { ++resets; }

  std::string name_;
  std::optional<Observation> pending;
  int polls = 0;
  int resets = 0;
};

TEST(CompositeOracle, ReportsMostSevere) {
  CompositeOracle composite;
  auto a = std::make_unique<FakeOracle>("a");
  auto b = std::make_unique<FakeOracle>("b");
  a->pending = Observation{Verdict::kSuspicious, "meh", {}};
  b->pending = Observation{Verdict::kFailure, "boom", {}};
  composite.add(std::move(a));
  composite.add(std::move(b));
  const auto obs = composite.poll(SimTime{5});
  ASSERT_TRUE(obs.has_value());
  EXPECT_EQ(obs->verdict, Verdict::kFailure);
  EXPECT_EQ(obs->detail, "boom");
}

TEST(CompositeOracle, NominalWhenAllQuiet) {
  CompositeOracle composite;
  composite.add(std::make_unique<FakeOracle>("a"));
  EXPECT_FALSE(composite.poll(SimTime{1}).has_value());
}

TEST(CompositeOracle, BorrowedOraclesPolledAndReset) {
  CompositeOracle composite;
  FakeOracle borrowed("borrowed");
  composite.add(borrowed);
  composite.poll(SimTime{1});
  composite.reset();
  EXPECT_EQ(borrowed.polls, 1);
  EXPECT_EQ(borrowed.resets, 1);
  EXPECT_EQ(composite.size(), 1u);
}

// ------------------------------------------------------- bus oracles ------

class BusOracleTest : public ::testing::Test {
 protected:
  sim::Scheduler scheduler;
  can::VirtualBus bus{scheduler};
};

TEST_F(BusOracleTest, SilenceOracleFiresAfterWindow) {
  BusSilenceOracle oracle(bus, std::chrono::milliseconds(100));
  transport::VirtualBusTransport tx(bus, "tx");
  tx.send(can::CanFrame::data_std(0x1, {}));
  scheduler.run_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(oracle.poll(scheduler.now()).has_value());
  scheduler.run_for(std::chrono::milliseconds(100));
  const auto obs = oracle.poll(scheduler.now());
  ASSERT_TRUE(obs.has_value());
  EXPECT_EQ(obs->verdict, Verdict::kFailure);
  // Reported once, not repeatedly.
  EXPECT_FALSE(oracle.poll(scheduler.now()).has_value());
  oracle.reset();
  scheduler.run_for(std::chrono::milliseconds(200));
  EXPECT_TRUE(oracle.poll(scheduler.now()).has_value());
}

TEST_F(BusOracleTest, SilenceOracleStaysQuietWithTraffic) {
  BusSilenceOracle oracle(bus, std::chrono::milliseconds(100));
  transport::VirtualBusTransport tx(bus, "tx");
  for (int i = 0; i < 20; ++i) {
    tx.send(can::CanFrame::data_std(0x1, {}));
    scheduler.run_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(oracle.poll(scheduler.now()).has_value()) << i;
  }
}

TEST_F(BusOracleTest, ErrorRateOracleThresholds) {
  can::BusConfig config;
  config.corruption_probability = 0.9;
  config.seed = 3;
  can::VirtualBus lossy(scheduler, config);
  ErrorFrameRateOracle oracle(lossy, 5.0, 1e9);
  transport::VirtualBusTransport tx(lossy, "tx");
  // Keep the transmitter busy for > 1 s of bucket time.
  for (int burst = 0; burst < 50; ++burst) {
    for (int i = 0; i < 20; ++i) tx.send(can::CanFrame::data_std(0x1, {1}));
    scheduler.run_for(std::chrono::milliseconds(25));
  }
  scheduler.run_for(std::chrono::milliseconds(1100));
  const auto obs = oracle.poll(scheduler.now());
  ASSERT_TRUE(obs.has_value());
  EXPECT_EQ(obs->verdict, Verdict::kSuspicious);
  EXPECT_GT(oracle.total_error_frames(), 0u);
}

TEST_F(BusOracleTest, NodeErrorStateOracleDetectsBusOff) {
  can::BusConfig config;
  config.corruption_probability = 1.0;
  config.auto_bus_off_recovery = false;
  can::VirtualBus broken(scheduler, config);
  transport::VirtualBusTransport victim(broken, "victim");
  NodeErrorStateOracle oracle(broken, victim.node_id());
  EXPECT_FALSE(oracle.poll(scheduler.now()).has_value());
  for (int i = 0; i < 40; ++i) victim.send(can::CanFrame::data_std(0x1, {}));
  scheduler.run_for(std::chrono::seconds(1));
  const auto obs = oracle.poll(scheduler.now());
  ASSERT_TRUE(obs.has_value());
  EXPECT_EQ(obs->verdict, Verdict::kFailure);
  EXPECT_NE(obs->detail.find("bus-off"), std::string::npos);
}

// ---------------------------------------------------- vehicle oracles -----

TEST(UnlockOracle, DetectsAckFrame) {
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  UnlockOracle oracle(bus);
  transport::VirtualBusTransport bcm(bus, "bcm");
  EXPECT_FALSE(oracle.poll(scheduler.now()).has_value());
  bcm.send(*can::CanFrame::data(dbc::kMsgBodyAck, {dbc::kCmdUnlock, 0x01}));
  scheduler.run_for(std::chrono::milliseconds(2));
  const auto obs = oracle.poll(scheduler.now());
  ASSERT_TRUE(obs.has_value());
  EXPECT_EQ(obs->verdict, Verdict::kFailure);
  EXPECT_TRUE(oracle.unlock_detected());
  EXPECT_GT(oracle.unlock_time().count(), 0);
}

TEST(UnlockOracle, IgnoresLockAckAndFailedAck) {
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  UnlockOracle oracle(bus);
  transport::VirtualBusTransport bcm(bus, "bcm");
  bcm.send(*can::CanFrame::data(dbc::kMsgBodyAck, {dbc::kCmdLock, 0x01}));
  bcm.send(*can::CanFrame::data(dbc::kMsgBodyAck, {dbc::kCmdUnlock, 0x00}));  // result=fail
  scheduler.run_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(oracle.poll(scheduler.now()).has_value());
}

TEST(UnlockOracle, DetectsActuatorDirectly) {
  // The "sensor on the door lock" channel: no ack frame needed.
  sim::Scheduler scheduler;
  vehicle::UnlockTestbench bench(scheduler);
  UnlockOracle oracle(bench.bus(), &bench.bcm());
  bench.head_unit().request_unlock();
  scheduler.run_for(std::chrono::milliseconds(10));
  const auto obs = oracle.poll(scheduler.now());
  ASSERT_TRUE(obs.has_value());
  EXPECT_EQ(obs->verdict, Verdict::kFailure);
}

TEST(ComponentCrashOracle, FiresOncePerCrash) {
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  vehicle::InstrumentCluster cluster(scheduler, bus);
  ComponentCrashOracle oracle;
  oracle.watch(cluster);
  EXPECT_FALSE(oracle.poll(scheduler.now()).has_value());
  transport::VirtualBusTransport tx(bus, "tx");
  tx.send(*can::CanFrame::data(dbc::kMsgClusterDisplay, {0xF0, 0x1F}));
  scheduler.run_for(std::chrono::milliseconds(5));
  const auto obs = oracle.poll(scheduler.now());
  ASSERT_TRUE(obs.has_value());
  EXPECT_EQ(obs->verdict, Verdict::kFailure);
  EXPECT_NE(obs->detail.find("CLUSTER"), std::string::npos);
  EXPECT_FALSE(oracle.poll(scheduler.now()).has_value());  // latched
}

TEST(ClusterStateOracle, WarningThenCrashEscalation) {
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  vehicle::InstrumentCluster cluster(scheduler, bus);
  ClusterStateOracle oracle(cluster);
  transport::VirtualBusTransport tx(bus, "tx");
  const dbc::Database db = dbc::target_vehicle_database();
  tx.send(*db.by_id(dbc::kMsgTelltales)->encode({{"MilOn", 1.0}}));
  scheduler.run_for(std::chrono::milliseconds(5));
  auto obs = oracle.poll(scheduler.now());
  ASSERT_TRUE(obs.has_value());
  EXPECT_EQ(obs->verdict, Verdict::kSuspicious);
  tx.send(*can::CanFrame::data(dbc::kMsgClusterDisplay, {0xF0, 0x10}));
  scheduler.run_for(std::chrono::milliseconds(5));
  obs = oracle.poll(scheduler.now());
  ASSERT_TRUE(obs.has_value());
  EXPECT_EQ(obs->verdict, Verdict::kFailure);
  EXPECT_NE(obs->detail.find("CrAsH"), std::string::npos);
}

TEST(SignalPlausibilityOracle, FlagsOutOfRangeSignals) {
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  SignalPlausibilityOracle oracle(bus, dbc::target_vehicle_database());
  transport::VirtualBusTransport tx(bus, "tx");
  const dbc::Database db = dbc::target_vehicle_database();
  tx.send(*db.by_id(dbc::kMsgEngineData)->encode({{"EngineRPM", 1500.0}}));
  scheduler.run_for(std::chrono::milliseconds(2));
  EXPECT_FALSE(oracle.poll(scheduler.now()).has_value());
  // Raw 0xFFFF decodes to -0.25 rpm: out of [0, 8000].
  tx.send(*can::CanFrame::data(dbc::kMsgEngineData, {0xFF, 0xFF, 0, 0, 0, 0, 0, 0}));
  scheduler.run_for(std::chrono::milliseconds(2));
  const auto obs = oracle.poll(scheduler.now());
  ASSERT_TRUE(obs.has_value());
  EXPECT_EQ(obs->verdict, Verdict::kSuspicious);
  EXPECT_NE(obs->detail.find("EngineRPM"), std::string::npos);
  EXPECT_GT(oracle.violations(), 0u);
}

TEST(SignalPlausibilityOracle, UnknownIdsIgnored) {
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  SignalPlausibilityOracle oracle(bus, dbc::target_vehicle_database());
  transport::VirtualBusTransport tx(bus, "tx");
  tx.send(can::CanFrame::data_std(0x6FF, {0xFF, 0xFF, 0xFF}));
  scheduler.run_for(std::chrono::milliseconds(2));
  EXPECT_FALSE(oracle.poll(scheduler.now()).has_value());
  EXPECT_EQ(oracle.violations(), 0u);
}

}  // namespace
}  // namespace acf::oracle
