#include <gtest/gtest.h>

#include <tuple>

#include "can/bitstream.hpp"
#include "can/wire_codec.hpp"
#include "util/rng.hpp"

namespace acf::can {
namespace {

// ----------------------------------------------------------- bitstream ----

TEST(Bitstream, AppendAndReadRoundTrip) {
  BitVec bits;
  append_bits(bits, 0x5A3, 11);
  append_bits(bits, 0x3, 2);
  std::size_t pos = 0;
  EXPECT_EQ(read_bits(bits, pos, 11).value(), 0x5A3u);
  EXPECT_EQ(read_bits(bits, pos, 2).value(), 0x3u);
  EXPECT_FALSE(read_bits(bits, pos, 1).has_value());  // exhausted
}

TEST(Bitstream, StuffInsertsAfterFiveEqualBits) {
  const BitVec input = {0, 0, 0, 0, 0, 1};
  const BitVec stuffed = stuff(input);
  // After five dominant bits a recessive stuff bit is inserted.
  EXPECT_EQ(stuffed, (BitVec{0, 0, 0, 0, 0, 1, 1}));
}

TEST(Bitstream, StuffBitCountsTowardNextRun) {
  // 0 x5 -> stuff 1; then the five 1s (stuff + 4 input) -> stuff 0.
  const BitVec input = {0, 0, 0, 0, 0, 1, 1, 1, 1};
  const BitVec stuffed = stuff(input);
  EXPECT_EQ(stuffed, (BitVec{0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 0}));
}

TEST(Bitstream, UnstuffInvertsStuff) {
  util::Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    BitVec input;
    const auto len = 1 + rng.next_below(120);
    for (std::uint64_t i = 0; i < len; ++i) {
      input.push_back(static_cast<std::uint8_t>(rng.next_bool(0.5)));
    }
    const auto unstuffed = unstuff(stuff(input));
    ASSERT_TRUE(unstuffed.has_value());
    EXPECT_EQ(*unstuffed, input);
  }
}

TEST(Bitstream, UnstuffDetectsViolation) {
  const BitVec six_zeros = {0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(unstuff(six_zeros).has_value());
  const BitVec six_ones = {1, 0, 1, 1, 1, 1, 1, 1};
  EXPECT_FALSE(unstuff(six_ones).has_value());
}

TEST(Bitstream, CountMatchesMaterialisedStuffing) {
  util::Rng rng(6);
  for (int trial = 0; trial < 100; ++trial) {
    BitVec input;
    for (int i = 0; i < 90; ++i) {
      input.push_back(static_cast<std::uint8_t>(rng.next_bool(0.8)));  // runs likely
    }
    EXPECT_EQ(stuff(input).size(), input.size() + count_stuff_bits(input));
  }
}

// ------------------------------------------------------------ codec -------

class WireCodecRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int, IdFormat>> {};

TEST_P(WireCodecRoundTrip, LogicalRoundTrip) {
  const auto [id, dlc, format] = GetParam();
  std::vector<std::uint8_t> payload;
  for (int i = 0; i < dlc; ++i) {
    payload.push_back(static_cast<std::uint8_t>(static_cast<std::uint32_t>(i) * 37 + id));
  }
  const auto frame = CanFrame::data(id, payload, format);
  ASSERT_TRUE(frame.has_value());
  const BitVec bits = encode_logical(*frame);
  const auto decoded = decode_logical(bits);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, *frame);
}

TEST_P(WireCodecRoundTrip, WireRoundTrip) {
  const auto [id, dlc, format] = GetParam();
  std::vector<std::uint8_t> payload;
  for (int i = 0; i < dlc; ++i) payload.push_back(static_cast<std::uint8_t>(0xFF - i));
  const auto frame = CanFrame::data(id, payload, format);
  ASSERT_TRUE(frame.has_value());
  const auto decoded = decode_wire(encode_wire(*frame));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, *frame);
}

INSTANTIATE_TEST_SUITE_P(
    IdDlcFormatGrid, WireCodecRoundTrip,
    ::testing::Combine(::testing::Values(0u, 1u, 0x215u, 0x43Au, 0x7FFu),
                       ::testing::Values(0, 1, 4, 7, 8),
                       ::testing::Values(IdFormat::kStandard, IdFormat::kExtended)));

TEST(WireCodec, ExtendedIdFullWidthRoundTrip) {
  const auto frame = CanFrame::data(0x1ABCDEF3, {0x42}, IdFormat::kExtended);
  ASSERT_TRUE(frame.has_value());
  const auto decoded = decode_wire(encode_wire(*frame));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->id(), 0x1ABCDEF3u);
  EXPECT_TRUE(decoded->is_extended());
}

TEST(WireCodec, RemoteFrameRoundTrip) {
  for (std::uint8_t dlc = 0; dlc <= 8; ++dlc) {
    const auto frame = CanFrame::remote(0x321, dlc);
    ASSERT_TRUE(frame.has_value());
    const auto decoded = decode_wire(encode_wire(*frame));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, *frame) << unsigned(dlc);
  }
}

TEST(WireCodec, PropertyRandomFramesRoundTrip) {
  util::Rng rng(0xC0DEC);
  for (int trial = 0; trial < 500; ++trial) {
    const bool extended = rng.next_bool(0.3);
    const std::uint32_t id = static_cast<std::uint32_t>(
        rng.next_below(extended ? kMaxExtendedId + 1ULL : kMaxStandardId + 1ULL));
    std::vector<std::uint8_t> payload(rng.next_below(9));
    rng.fill(payload);
    const auto frame = CanFrame::data(
        id, payload, extended ? IdFormat::kExtended : IdFormat::kStandard);
    ASSERT_TRUE(frame.has_value());
    const auto decoded = decode_wire(encode_wire(*frame));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, *frame);
  }
}

TEST(WireCodec, CorruptedCrcRejected) {
  const auto frame = CanFrame::data_std(0x2A5, {1, 2, 3, 4});
  BitVec bits = encode_logical(frame);
  bits[20] ^= 1;  // flip a payload/header bit without re-CRC
  EXPECT_FALSE(decode_logical(bits).has_value());
}

TEST(WireCodec, MalformedTailRejected) {
  const auto frame = CanFrame::data_std(0x2A5, {1});
  BitVec wire = encode_wire(frame);
  wire.back() = 0;  // EOF must be recessive
  EXPECT_FALSE(decode_wire(wire).has_value());
}

TEST(WireCodec, TruncatedStreamRejected) {
  const auto frame = CanFrame::data_std(0x2A5, {1, 2});
  BitVec wire = encode_wire(frame);
  wire.resize(wire.size() / 2);
  EXPECT_FALSE(decode_wire(wire).has_value());
}

// ----------------------------------------------------------- timing -------

TEST(WireTiming, BaselinePlusStuffBits) {
  // 8-byte standard data frame: 108 bits + IFS(3) + exactly the stuff bits
  // of its logical image (alternating payload keeps the data region free of
  // stuffing; only header/CRC runs can add bits).
  const auto std8 = CanFrame::data_std(0x555, {0x55, 0x55, 0x55, 0x55, 0x55, 0x55, 0x55, 0x55});
  const BitVec logical = encode_logical(std8);
  EXPECT_EQ(logical.size(), 98u);
  EXPECT_EQ(wire_bit_count(std8), 98u + count_stuff_bits(logical) + 10u + 3u);
  EXPECT_GE(wire_bit_count(std8), 111u);
  EXPECT_LE(wire_bit_count(std8), 135u);
}

TEST(WireTiming, StuffingIncreasesLength) {
  const auto zeros = CanFrame::data_std(0x000, {0, 0, 0, 0, 0, 0, 0, 0});
  const auto alternating =
      CanFrame::data_std(0x555, {0x55, 0x55, 0x55, 0x55, 0x55, 0x55, 0x55, 0x55});
  EXPECT_GT(wire_bit_count(zeros), wire_bit_count(alternating));
  EXPECT_LE(wire_bit_count(zeros), worst_case_bit_count(8, IdFormat::kStandard));
}

TEST(WireTiming, WorstCaseBoundHoldsForRandomFrames) {
  util::Rng rng(0xBEEF);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> payload(rng.next_below(9));
    rng.fill(payload);
    const auto frame =
        CanFrame::data(static_cast<std::uint32_t>(rng.next_below(2048)), payload);
    ASSERT_TRUE(frame.has_value());
    EXPECT_LE(wire_bit_count(*frame),
              worst_case_bit_count(frame->length(), IdFormat::kStandard));
  }
}

TEST(WireTiming, FrameTimeAt500k) {
  // An ~111-bit frame at 500 kb/s takes ~222 us — under a quarter of the
  // fuzzer's 1 ms period, which is why 1 kHz injection is sustainable.
  const auto frame = CanFrame::data_std(0x123, {1, 2, 3, 4, 5, 6, 7, 8});
  const auto t = frame_time(frame, 500'000);
  EXPECT_GT(t, std::chrono::microseconds(180));
  EXPECT_LT(t, std::chrono::microseconds(280));
}

TEST(WireTiming, BitTimeComputation) {
  EXPECT_EQ(bit_time(500'000), std::chrono::nanoseconds(2000));
  EXPECT_EQ(bit_time(1'000'000), std::chrono::nanoseconds(1000));
}

TEST(WireTiming, FdBrsFasterThanClassicPerByte) {
  std::vector<std::uint8_t> payload(64, 0xA5);
  const auto fd = CanFrame::fd_data(0x123, payload, /*brs=*/true);
  ASSERT_TRUE(fd.has_value());
  const auto fd_time = frame_time(*fd, 500'000, 2'000'000);
  // 64 bytes over classic CAN would need 8 frames of ~222 us each.
  const auto classic8 =
      frame_time(CanFrame::data_std(0x123, {1, 2, 3, 4, 5, 6, 7, 8})) * 8;
  EXPECT_LT(fd_time, classic8);
}

TEST(WireTiming, FdNoBrsSlowerThanBrs) {
  std::vector<std::uint8_t> payload(32, 0x3C);
  const auto brs = CanFrame::fd_data(0x123, payload, true);
  const auto no_brs = CanFrame::fd_data(0x123, payload, false);
  EXPECT_LT(frame_time(*brs, 500'000, 2'000'000), frame_time(*no_brs, 500'000, 2'000'000));
}

TEST(WireTiming, WorstCaseKnownValues) {
  // Standard 8-byte frame: 98 logical bits + 24 worst-case stuff bits +
  // 10 tail + 3 IFS = 135 (the textbook classic-CAN worst case).
  EXPECT_EQ(worst_case_bit_count(8, IdFormat::kStandard), 135u);
  // Extended: 118 logical + 29 stuff + 10 + 3 = 160.
  EXPECT_EQ(worst_case_bit_count(8, IdFormat::kExtended), 160u);
}

}  // namespace
}  // namespace acf::can
