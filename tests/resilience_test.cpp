// Resilience layer: transport retry/backoff + circuit breaker, node
// supervision, richer fault injection, and campaign checkpoint/resume.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "can/bus.hpp"
#include "fuzzer/campaign.hpp"
#include "fuzzer/checkpoint.hpp"
#include "fuzzer/generator.hpp"
#include "oracle/supervision_oracle.hpp"
#include "resilience/supervisor.hpp"
#include "sim/scheduler.hpp"
#include "transport/fault_injector.hpp"
#include "transport/resilient_transport.hpp"
#include "transport/virtual_bus_transport.hpp"

namespace acf {
namespace {

using namespace std::chrono_literals;

/// In-memory transport with programmable failures; records what got through.
class ScriptedTransport final : public transport::CanTransport {
 public:
  bool send(const can::CanFrame& frame) override {
    ++attempts;
    const bool fail = fail_all || fail_next > 0;
    if (fail_next > 0) --fail_next;
    if (fail) {
      ++stats_.send_failures;
      return false;
    }
    ++stats_.frames_sent;
    sent.push_back(frame);
    return true;
  }
  void set_rx_callback(transport::RxCallback callback) override { rx_ = std::move(callback); }
  std::string name() const override { return "scripted"; }
  const transport::TransportStats& stats() const override { return stats_; }

  void inject_rx(const can::CanFrame& frame, sim::SimTime time) {
    if (rx_) rx_(frame, time);
  }

  int fail_next = 0;     // fail this many upcoming sends
  bool fail_all = false; // fail every send
  std::uint64_t attempts = 0;
  std::vector<can::CanFrame> sent;

 private:
  transport::TransportStats stats_;
  transport::RxCallback rx_;
};

/// Oracle that reports a suspicious observation on every poll (stateless, so
/// a resumed campaign reproduces the same findings without oracle state).
class EveryPollOracle final : public oracle::Oracle {
 public:
  std::string_view name() const override { return "every-poll"; }
  std::optional<oracle::Observation> poll(sim::SimTime now) override {
    return oracle::Observation{oracle::Verdict::kSuspicious, "tick", now};
  }
};

// ===================================================== ResilientTransport ==

class ResilientTransportTest : public ::testing::Test {
 protected:
  sim::Scheduler scheduler;
  ScriptedTransport inner;
};

TEST_F(ResilientTransportTest, ImmediateSuccessPassesThrough) {
  transport::ResilientTransport resilient(inner, scheduler);
  EXPECT_TRUE(resilient.send(can::CanFrame::data_std(0x100, {1})));
  EXPECT_EQ(resilient.resilience_stats().immediate_successes, 1u);
  EXPECT_EQ(resilient.stats().frames_sent, 1u);
  EXPECT_EQ(resilient.pending_retries(), 0u);
  ASSERT_EQ(inner.sent.size(), 1u);
}

TEST_F(ResilientTransportTest, RetriesTransientFailureWithBackoff) {
  inner.fail_next = 2;  // first try and first retry fail, second retry works
  transport::ResilientTransport resilient(inner, scheduler);
  EXPECT_TRUE(resilient.send(can::CanFrame::data_std(0x200, {0xAB})));
  EXPECT_EQ(resilient.pending_retries(), 1u);
  EXPECT_TRUE(inner.sent.empty());
  scheduler.run_for(100ms);
  ASSERT_EQ(inner.sent.size(), 1u);
  EXPECT_EQ(resilient.pending_retries(), 0u);
  const auto& stats = resilient.resilience_stats();
  EXPECT_EQ(stats.retried_successes, 1u);
  EXPECT_EQ(stats.retry_attempts, 2u);
  EXPECT_EQ(stats.frames_abandoned, 0u);
  EXPECT_EQ(resilient.stats().frames_sent, 1u);
  EXPECT_EQ(resilient.stats().send_failures, 0u);
}

TEST_F(ResilientTransportTest, AbandonsFrameAfterRetryBudget) {
  inner.fail_all = true;
  transport::RetryPolicy retry;
  retry.max_attempts = 3;
  transport::CircuitBreakerPolicy breaker;
  breaker.failure_threshold = 100;  // keep the breaker out of this test
  transport::ResilientTransport resilient(inner, scheduler, retry, breaker);
  EXPECT_TRUE(resilient.send(can::CanFrame::data_std(0x300, {})));  // queued
  scheduler.run_for(1s);
  EXPECT_EQ(resilient.pending_retries(), 0u);
  EXPECT_EQ(resilient.resilience_stats().frames_abandoned, 1u);
  EXPECT_EQ(resilient.resilience_stats().retry_attempts, 2u);  // attempts 2 and 3
  EXPECT_EQ(resilient.stats().send_failures, 1u);
  EXPECT_EQ(inner.attempts, 3u);
}

TEST_F(ResilientTransportTest, BreakerTripsFailsFastAndRecovers) {
  inner.fail_all = true;
  transport::RetryPolicy retry;
  retry.max_attempts = 1;  // no retries: each send is one attempt
  transport::CircuitBreakerPolicy breaker;
  breaker.failure_threshold = 3;
  breaker.open_duration = 10ms;
  transport::ResilientTransport resilient(inner, scheduler, retry, breaker);

  const auto frame = can::CanFrame::data_std(0x1, {});
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(resilient.send(frame));
  EXPECT_EQ(resilient.breaker_state(), transport::BreakerState::kOpen);
  EXPECT_EQ(resilient.resilience_stats().breaker_trips, 1u);
  EXPECT_EQ(inner.attempts, 3u);

  // While open, sends are rejected without touching the inner transport.
  EXPECT_FALSE(resilient.send(frame));
  EXPECT_EQ(resilient.resilience_stats().breaker_rejections, 1u);
  EXPECT_EQ(inner.attempts, 3u);

  // The link heals; after the open window the breaker half-opens and the
  // next send is the probe that closes it again.
  inner.fail_all = false;
  scheduler.run_for(11ms);
  EXPECT_EQ(resilient.breaker_state(), transport::BreakerState::kHalfOpen);
  EXPECT_TRUE(resilient.send(frame));
  EXPECT_EQ(resilient.breaker_state(), transport::BreakerState::kClosed);
  EXPECT_EQ(resilient.resilience_stats().breaker_recoveries, 1u);
  EXPECT_EQ(resilient.consecutive_failures(), 0u);
}

TEST_F(ResilientTransportTest, FailedProbeReopensWithEscalatedWindow) {
  inner.fail_all = true;
  transport::RetryPolicy retry;
  retry.max_attempts = 1;
  transport::CircuitBreakerPolicy breaker;
  breaker.failure_threshold = 2;
  breaker.open_duration = 10ms;
  breaker.open_backoff_multiplier = 2.0;
  transport::ResilientTransport resilient(inner, scheduler, retry, breaker);

  const auto frame = can::CanFrame::data_std(0x1, {});
  resilient.send(frame);
  resilient.send(frame);
  EXPECT_EQ(resilient.breaker_state(), transport::BreakerState::kOpen);

  scheduler.run_for(11ms);  // half-open
  EXPECT_FALSE(resilient.send(frame));  // probe fails: re-open, window now 20ms
  EXPECT_EQ(resilient.breaker_state(), transport::BreakerState::kOpen);
  EXPECT_EQ(resilient.resilience_stats().breaker_trips, 2u);
  scheduler.run_for(11ms);
  EXPECT_EQ(resilient.breaker_state(), transport::BreakerState::kOpen);  // still cooling
  scheduler.run_for(10ms);
  EXPECT_EQ(resilient.breaker_state(), transport::BreakerState::kHalfOpen);
}

TEST_F(ResilientTransportTest, RetryQueueBoundRejectsOverflow) {
  inner.fail_all = true;
  transport::RetryPolicy retry;
  retry.max_attempts = 10;
  retry.max_pending = 1;
  transport::CircuitBreakerPolicy breaker;
  breaker.failure_threshold = 100;
  transport::ResilientTransport resilient(inner, scheduler, retry, breaker);
  EXPECT_TRUE(resilient.send(can::CanFrame::data_std(0x1, {})));   // queued
  EXPECT_FALSE(resilient.send(can::CanFrame::data_std(0x2, {})));  // queue full
  EXPECT_EQ(resilient.resilience_stats().queue_rejections, 1u);
}

TEST_F(ResilientTransportTest, RxPassthroughCountsFrames) {
  transport::ResilientTransport resilient(inner, scheduler);
  int received = 0;
  resilient.set_rx_callback([&](const can::CanFrame&, sim::SimTime) { ++received; });
  inner.inject_rx(can::CanFrame::data_std(0x42, {7}), sim::SimTime{0});
  EXPECT_EQ(received, 1);
  EXPECT_EQ(resilient.stats().frames_received, 1u);
  EXPECT_EQ(resilient.name(), "resilient:scripted");
}

// ===================================================== fault injection =====

class FaultInjectionTest : public ::testing::Test {
 protected:
  sim::Scheduler scheduler;
  can::VirtualBus bus{scheduler};
};

TEST_F(FaultInjectionTest, GilbertElliottBurstDropsEverythingInBadState) {
  transport::VirtualBusTransport a(bus, "a");
  transport::VirtualBusTransport b(bus, "b");
  transport::FaultPlan plan;
  plan.burst_loss = true;
  plan.burst_p = 1.0;   // first frame transitions good -> bad
  plan.burst_r = 0.0;   // and the channel never recovers
  plan.loss_bad = 1.0;
  transport::FaultInjector faulty(b, plan);
  int received = 0;
  faulty.set_rx_callback([&](const can::CanFrame&, sim::SimTime) { ++received; });
  for (int i = 0; i < 10; ++i) a.send(can::CanFrame::data_std(0x50, {1}));
  scheduler.run_for(10ms);
  EXPECT_EQ(received, 0);
  EXPECT_TRUE(faulty.in_burst());
  EXPECT_EQ(faulty.fault_stats().rx_burst_dropped, 10u);
  EXPECT_EQ(faulty.fault_stats().rx_dropped, 10u);
}

TEST_F(FaultInjectionTest, GilbertElliottGoodStateIsLossless) {
  transport::VirtualBusTransport a(bus, "a");
  transport::VirtualBusTransport b(bus, "b");
  transport::FaultPlan plan;
  plan.burst_loss = true;
  plan.burst_p = 0.0;  // never leaves the good state
  plan.loss_good = 0.0;
  transport::FaultInjector faulty(b, plan);
  int received = 0;
  faulty.set_rx_callback([&](const can::CanFrame&, sim::SimTime) { ++received; });
  for (int i = 0; i < 10; ++i) a.send(can::CanFrame::data_std(0x51, {1}));
  scheduler.run_for(10ms);
  EXPECT_EQ(received, 10);
  EXPECT_FALSE(faulty.in_burst());
  EXPECT_EQ(faulty.fault_stats().rx_burst_dropped, 0u);
}

TEST_F(FaultInjectionTest, RxDelayDefersDeliveryOnScheduler) {
  transport::VirtualBusTransport a(bus, "a");
  transport::VirtualBusTransport b(bus, "b");
  transport::FaultPlan plan;
  plan.rx_delay = 5ms;
  transport::FaultInjector faulty(b, plan, scheduler);
  std::vector<sim::SimTime> arrivals;
  faulty.set_rx_callback([&](const can::CanFrame&, sim::SimTime t) { arrivals.push_back(t); });
  a.send(can::CanFrame::data_std(0x60, {1, 2}));
  scheduler.run_for(2ms);
  EXPECT_TRUE(arrivals.empty());  // on the wire already, but held by the fault
  scheduler.run_for(10ms);
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_GE(arrivals[0], sim::SimTime{5ms});
  EXPECT_EQ(faulty.fault_stats().rx_delayed, 1u);
}

TEST_F(FaultInjectionTest, RxReorderSwapsAdjacentDeliveries) {
  transport::VirtualBusTransport a(bus, "a");
  transport::VirtualBusTransport b(bus, "b");
  transport::FaultPlan plan;
  plan.rx_reorder = 1.0;
  transport::FaultInjector faulty(b, plan);
  std::vector<std::uint32_t> order;
  faulty.set_rx_callback([&](const can::CanFrame& f, sim::SimTime) { order.push_back(f.id()); });
  a.send(can::CanFrame::data_std(0x1, {}));
  a.send(can::CanFrame::data_std(0x2, {}));
  scheduler.run_for(10ms);
  // Frame 1 is held back; frame 2's arrival releases it after itself.
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0x2u);
  EXPECT_EQ(order[1], 0x1u);
  EXPECT_EQ(faulty.fault_stats().rx_reordered, 1u);
}

TEST_F(FaultInjectionTest, InjectorTracksItsOwnStats) {
  transport::VirtualBusTransport a(bus, "a");
  transport::VirtualBusTransport b(bus, "b");
  transport::FaultPlan plan;
  plan.tx_drop = 1.0;
  plan.rx_duplicate = 1.0;
  transport::FaultInjector faulty(b, plan);
  int received = 0;
  faulty.set_rx_callback([&](const can::CanFrame&, sim::SimTime) { ++received; });

  // A swallowed tx still looks sent from above, but never reaches the bus.
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(faulty.send(can::CanFrame::data_std(0x70, {1})));
  EXPECT_EQ(faulty.stats().frames_sent, 5u);
  EXPECT_EQ(b.stats().frames_sent, 0u);

  // A duplicated rx counts both deliveries at this layer, one below.
  a.send(can::CanFrame::data_std(0x71, {2}));
  scheduler.run_for(5ms);
  EXPECT_EQ(received, 2);
  EXPECT_EQ(faulty.stats().frames_received, 2u);
  EXPECT_EQ(b.stats().frames_received, 1u);
}

// =============================================== error frames / bus-off ====

TEST_F(FaultInjectionTest, InjectedErrorFrameHitsEveryPoweredNode) {
  transport::VirtualBusTransport a(bus, "a");
  transport::VirtualBusTransport b(bus, "b");
  bus.inject_error_frame();
  EXPECT_EQ(bus.error_state(a.node_id()).rec(), 1u);
  EXPECT_EQ(bus.error_state(b.node_id()).rec(), 1u);
  EXPECT_EQ(bus.stats().error_frames, 1u);
}

TEST(BusOffRecoveryTest, NodeRejoinsAfterStandardRecoveryTime) {
  sim::Scheduler scheduler;
  can::VirtualBus bus{scheduler};  // auto_bus_off_recovery = true (default)
  transport::VirtualBusTransport tx(bus, "victim");
  transport::VirtualBusTransport rx(bus, "peer");

  // 32 forced bus errors at TEC += 8 each drive the transmitter past 255.
  bus.force_tx_errors(tx.node_id(), 32);
  ASSERT_TRUE(tx.send(can::CanFrame::data_std(0x123, {0xAA})));
  ASSERT_TRUE(scheduler.run_until_condition(
      [&] { return bus.bus_off_recovering(tx.node_id()); }, sim::SimTime{1s}));
  const sim::SimTime went_off = scheduler.now();

  // Recovery takes 128 x 11 bit times: 2.816 ms at 500 kb/s.
  scheduler.run_until(went_off + 2ms);
  EXPECT_TRUE(bus.bus_off_recovering(tx.node_id()));
  scheduler.run_until(went_off + 3ms);
  EXPECT_FALSE(bus.bus_off_recovering(tx.node_id()));
  EXPECT_EQ(bus.error_state(tx.node_id()).tec(), 0u);

  // And it can transmit again.
  int received = 0;
  rx.set_rx_callback([&](const can::CanFrame&, sim::SimTime) { ++received; });
  EXPECT_TRUE(tx.send(can::CanFrame::data_std(0x124, {0xBB})));
  scheduler.run_for(5ms);
  EXPECT_EQ(received, 1);
}

TEST(BusOffRecoveryTest, NodeStaysOffWithoutAutoRecovery) {
  sim::Scheduler scheduler;
  can::BusConfig config;
  config.auto_bus_off_recovery = false;
  can::VirtualBus bus{scheduler, config};
  transport::VirtualBusTransport tx(bus, "victim");
  transport::VirtualBusTransport rx(bus, "peer");

  bus.force_tx_errors(tx.node_id(), 32);
  ASSERT_TRUE(tx.send(can::CanFrame::data_std(0x123, {0xAA})));
  ASSERT_TRUE(scheduler.run_until_condition(
      [&] { return bus.error_state(tx.node_id()).bus_off(); }, sim::SimTime{1s}));

  scheduler.run_for(100ms);  // far beyond the 2.816 ms recovery window
  EXPECT_TRUE(bus.error_state(tx.node_id()).bus_off());
  EXPECT_FALSE(bus.bus_off_recovering(tx.node_id()));
  EXPECT_FALSE(tx.send(can::CanFrame::data_std(0x124, {})));
}

// ========================================================== supervision ====

TEST(NodeSupervisorTest, RestoresBusOffNodeWithinBackoffWindow) {
  sim::Scheduler scheduler;
  can::BusConfig bus_config;
  bus_config.auto_bus_off_recovery = false;  // only the supervisor can heal it
  can::VirtualBus bus{scheduler, bus_config};
  transport::VirtualBusTransport victim(bus, "victim");
  transport::VirtualBusTransport peer(bus, "peer");

  resilience::SupervisorConfig config;
  config.poll_period = 1ms;
  config.heartbeat_window = 500ms;  // silence detection out of the way
  config.restart_off_time = 2ms;
  config.restart_backoff = 5ms;
  resilience::NodeSupervisor supervisor(scheduler, bus, config);
  supervisor.watch(victim.node_id(), {0x100});
  supervisor.start();

  // The victim heartbeats every 1 ms (failed submits while off are dropped).
  scheduler.schedule_every(1ms, [&] { victim.send(can::CanFrame::data_std(0x100, {0x01})); });

  bus.force_tx_errors(victim.node_id(), 32);
  ASSERT_TRUE(scheduler.run_until_condition(
      [&] { return supervisor.stats().bus_off_detections > 0; }, sim::SimTime{1s}));
  const sim::SimTime detected = scheduler.now();

  ASSERT_TRUE(scheduler.run_until_condition(
      [&] { return supervisor.stats().recoveries > 0; }, sim::SimTime{1s}));
  // Restored within the configured off-time + backoff (plus poll slack).
  EXPECT_LE(scheduler.now() - detected,
            config.restart_off_time + config.restart_backoff + 5ms);

  EXPECT_GE(supervisor.stats().restarts, 1u);
  EXPECT_EQ(supervisor.restarts(victim.node_id()), supervisor.stats().restarts);
  EXPECT_FALSE(supervisor.abandoned(victim.node_id()));
  EXPECT_EQ(bus.error_state(victim.node_id()).mode(), can::ErrorMode::kErrorActive);

  // The event stream tells the whole story: bus-off, restart, recovered.
  bool saw_bus_off = false, saw_restart = false, saw_recovered = false;
  for (const auto& event : supervisor.events()) {
    saw_bus_off |= event.type == resilience::SupervisionEventType::kBusOff;
    saw_restart |= event.type == resilience::SupervisionEventType::kRestart;
    saw_recovered |= event.type == resilience::SupervisionEventType::kRecovered;
    EXPECT_FALSE(event.summary().empty());
  }
  EXPECT_TRUE(saw_bus_off);
  EXPECT_TRUE(saw_restart);
  EXPECT_TRUE(saw_recovered);
}

TEST(NodeSupervisorTest, DetectsSilentNodeAndRestartsIt) {
  sim::Scheduler scheduler;
  can::VirtualBus bus{scheduler};
  transport::VirtualBusTransport node(bus, "ecu");
  transport::VirtualBusTransport peer(bus, "peer");

  resilience::SupervisorConfig config;
  config.poll_period = 1ms;
  config.heartbeat_window = 10ms;
  config.restart_off_time = 2ms;
  config.restart_backoff = 5ms;
  resilience::NodeSupervisor supervisor(scheduler, bus, config);
  supervisor.watch(node.node_id(), {0x200});
  supervisor.start();

  // Heartbeats until t = 20 ms, then the "firmware" hangs; the supervisor's
  // restart action un-hangs it.
  bool hung = false;
  scheduler.schedule_every(2ms, [&] {
    if (!hung) node.send(can::CanFrame::data_std(0x200, {0x5A}));
  });
  scheduler.schedule_at(sim::SimTime{20ms}, [&] { hung = true; });
  supervisor.set_restart_action([&](can::NodeId) { hung = false; });

  ASSERT_TRUE(scheduler.run_until_condition(
      [&] { return supervisor.stats().recoveries > 0; }, sim::SimTime{1s}));
  EXPECT_EQ(supervisor.stats().silent_detections, 1u);
  EXPECT_EQ(supervisor.stats().restarts, 1u);
  EXPECT_EQ(supervisor.restarts(node.node_id()), 1u);
}

TEST(NodeSupervisorTest, AbandonsNodeAfterRestartBudget) {
  sim::Scheduler scheduler;
  can::VirtualBus bus{scheduler};
  transport::VirtualBusTransport node(bus, "dead-ecu");

  resilience::SupervisorConfig config;
  config.poll_period = 1ms;
  config.heartbeat_window = 5ms;
  config.restart_off_time = 1ms;
  config.restart_budget = 2;
  config.restart_backoff = 2ms;
  resilience::NodeSupervisor supervisor(scheduler, bus, config);
  supervisor.watch(node.node_id(), {0x300});
  supervisor.set_restart_action([](can::NodeId) { /* node never comes back */ });
  supervisor.start();

  scheduler.run_for(2s);
  EXPECT_TRUE(supervisor.abandoned(node.node_id()));
  EXPECT_EQ(supervisor.restarts(node.node_id()), 2u);
  EXPECT_EQ(supervisor.stats().budget_exhaustions, 1u);
  ASSERT_FALSE(supervisor.events().empty());
  EXPECT_EQ(supervisor.events().back().type,
            resilience::SupervisionEventType::kBudgetExhausted);

  // No further restarts after abandonment.
  const auto restarts = supervisor.stats().restarts;
  scheduler.run_for(1s);
  EXPECT_EQ(supervisor.stats().restarts, restarts);
}

TEST(SupervisionOracleTest, FoldsEventsIntoVerdicts) {
  sim::Scheduler scheduler;
  can::VirtualBus bus{scheduler};
  transport::VirtualBusTransport node(bus, "dead-ecu");

  resilience::SupervisorConfig config;
  config.poll_period = 1ms;
  config.heartbeat_window = 5ms;
  config.restart_off_time = 1ms;
  config.restart_budget = 1;
  config.restart_backoff = 2ms;
  resilience::NodeSupervisor supervisor(scheduler, bus, config);
  oracle::SupervisionOracle sup_oracle(supervisor);
  supervisor.watch(node.node_id(), {0x300});
  supervisor.set_restart_action([](can::NodeId) {});
  supervisor.start();

  // After the silence detection + restart, the worst news is suspicious.
  ASSERT_TRUE(scheduler.run_until_condition(
      [&] { return supervisor.stats().restarts > 0; }, sim::SimTime{1s}));
  auto observation = sup_oracle.poll(scheduler.now());
  ASSERT_TRUE(observation.has_value());
  EXPECT_EQ(observation->verdict, oracle::Verdict::kSuspicious);

  // Once the budget is exhausted the oracle escalates to a failure verdict.
  ASSERT_TRUE(scheduler.run_until_condition(
      [&] { return supervisor.stats().budget_exhaustions > 0; }, sim::SimTime{2s}));
  observation = sup_oracle.poll(scheduler.now());
  ASSERT_TRUE(observation.has_value());
  EXPECT_EQ(observation->verdict, oracle::Verdict::kFailure);

  // Nothing new: no observation; reset() fast-forwards the cursor.
  EXPECT_FALSE(sup_oracle.poll(scheduler.now()).has_value());
  sup_oracle.reset();
  EXPECT_FALSE(sup_oracle.poll(scheduler.now()).has_value());
}

// ================================================== campaign hardening =====

TEST(CampaignResilienceTest, StopsWhenTransportDeclaredDead) {
  sim::Scheduler scheduler;
  ScriptedTransport transport;
  transport.fail_all = true;
  fuzzer::RandomGenerator generator(fuzzer::FuzzConfig::full_random(7));
  fuzzer::CampaignConfig config;
  config.tx_period = 1ms;
  config.max_duration = 1s;
  config.max_consecutive_send_failures = 5;
  fuzzer::FuzzCampaign campaign(scheduler, transport, generator, nullptr, config);
  const auto& result = campaign.run();
  EXPECT_EQ(result.reason, fuzzer::StopReason::kTransportDead);
  EXPECT_EQ(result.send_failures, 5u);
  EXPECT_EQ(result.frames_sent, 0u);
}

TEST(CampaignResilienceTest, TransientFailuresDoNotKillTheCampaign) {
  sim::Scheduler scheduler;
  ScriptedTransport transport;
  transport.fail_next = 3;  // a burst of failures, then healthy again
  fuzzer::RandomGenerator generator(fuzzer::FuzzConfig::full_random(7));
  fuzzer::CampaignConfig config;
  config.tx_period = 1ms;
  config.max_duration = 1s;
  config.max_frames = 20;
  config.max_consecutive_send_failures = 5;
  fuzzer::FuzzCampaign campaign(scheduler, transport, generator, nullptr, config);
  const auto& result = campaign.run();
  EXPECT_EQ(result.reason, fuzzer::StopReason::kFrameLimit);
  EXPECT_EQ(result.send_failures, 3u);
  EXPECT_EQ(result.frames_sent, 20u);
}

// ================================================== checkpoint / resume ====

TEST(CheckpointTest, RandomGeneratorStateRestoresInO1) {
  fuzzer::RandomGenerator a(fuzzer::FuzzConfig::full_random(0xBEEF));
  for (int i = 0; i < 37; ++i) a.next();
  const auto state = a.save_state();
  ASSERT_EQ(state.size(), 5u);  // counter + 4 xoshiro words

  fuzzer::RandomGenerator b(fuzzer::FuzzConfig::full_random(0xBEEF));
  ASSERT_TRUE(b.restore_state(state));
  EXPECT_EQ(b.generated(), 37u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(*a.next(), *b.next());
}

TEST(CheckpointTest, ReplayRestoreWorksForAnyDeterministicGenerator) {
  fuzzer::FuzzConfig config;
  config.id_min = 0x10;
  config.id_max = 0x12;
  config.dlc_min = 0;
  config.dlc_max = 1;
  fuzzer::SweepGenerator a(config);
  for (int i = 0; i < 5; ++i) a.next();
  const auto state = a.save_state();
  ASSERT_EQ(state.size(), 1u);  // base-class form: frame counter only

  fuzzer::SweepGenerator b(config);
  ASSERT_TRUE(b.restore_state(state));
  for (int i = 0; i < 10; ++i) {
    const auto fa = a.next();
    const auto fb = b.next();
    ASSERT_EQ(fa.has_value(), fb.has_value());
    if (fa) {
      EXPECT_EQ(*fa, *fb);
    }
  }
}

TEST(CheckpointTest, RejectsCorruptAndMismatchedInput) {
  EXPECT_FALSE(fuzzer::CampaignCheckpoint::from_string("garbage").has_value());
  EXPECT_FALSE(fuzzer::CampaignCheckpoint::from_string("ACF-CHECKPOINT 999\n").has_value());
  EXPECT_FALSE(fuzzer::CampaignCheckpoint::load("/nonexistent/path").has_value());

  // Restoring a random-generator checkpoint into a sweep campaign refuses.
  sim::Scheduler scheduler;
  ScriptedTransport transport;
  fuzzer::SweepGenerator generator(fuzzer::FuzzConfig::full_random(1));
  fuzzer::FuzzCampaign campaign(scheduler, transport, generator, nullptr, {});
  fuzzer::CampaignCheckpoint checkpoint;
  checkpoint.generator_name = "random";
  checkpoint.generator_state = {0, 1, 2, 3, 4};
  EXPECT_FALSE(campaign.restore(checkpoint));
}

TEST(CheckpointTest, HostileGeneratorNamesRoundTrip) {
  // Regression: names are tokens in a line-oriented stream, and a name with
  // whitespace ("mutation v2") used to shift every following field by one
  // token, corrupting the checkpoint on load.  v2 percent-escapes them.
  for (const std::string name :
       {"mutation v2", "smart%gen", "tab\tand\nnewline", "-", "%2D", " ", ""}) {
    fuzzer::CampaignCheckpoint checkpoint;
    checkpoint.generator_name = name;
    checkpoint.generator_state = {1, 2, 3, 4};
    fuzzer::Finding finding;
    finding.generator = name;
    checkpoint.findings.push_back(finding);
    const auto restored = fuzzer::CampaignCheckpoint::from_string(checkpoint.to_string());
    ASSERT_TRUE(restored.has_value()) << "name: '" << name << "'";
    EXPECT_EQ(restored->generator_name, name);
    EXPECT_EQ(restored->findings.at(0).generator, name);
  }
}

TEST(CheckpointTest, RejectsAbsurdDeclaredCounts) {
  // Regression: deserialize used to reserve() whatever counts the stream
  // declared, so a one-line hostile file could demand a multi-gigabyte
  // allocation before any content validated it.
  const std::string huge_state =
      "ACF-CHECKPOINT 2\nframes_sent 1\nsend_failures 0\nelapsed_ns 0\n"
      "generator g\nstate 18446744073709551615 1 2 3 4\nfindings 0\nwindow 0\nend\n";
  EXPECT_FALSE(fuzzer::CampaignCheckpoint::from_string(huge_state).has_value());

  const std::string huge_findings =
      "ACF-CHECKPOINT 2\nframes_sent 1\nsend_failures 0\nelapsed_ns 0\n"
      "generator g\nstate 0\nfindings 18446744073709551615\nwindow 0\nend\n";
  EXPECT_FALSE(fuzzer::CampaignCheckpoint::from_string(huge_findings).has_value());

  const std::string huge_window =
      "ACF-CHECKPOINT 2\nframes_sent 1\nsend_failures 0\nelapsed_ns 0\n"
      "generator g\nstate 0\nfindings 0\nwindow 18446744073709551615\nend\n";
  EXPECT_FALSE(fuzzer::CampaignCheckpoint::from_string(huge_window).has_value());

  // An oversized DLC on a stored remote frame must not narrow into range.
  const std::string bad_dlc =
      "ACF-CHECKPOINT 2\nframes_sent 1\nsend_failures 0\nelapsed_ns 0\n"
      "generator g\nstate 0\nfindings 0\nwindow 1\nframe 0 R S 123 260\nend\n";
  EXPECT_FALSE(fuzzer::CampaignCheckpoint::from_string(bad_dlc).has_value());
}

TEST(CheckpointTest, SaveAndLoadRoundTripIsByteIdentical) {
  sim::Scheduler scheduler;
  ScriptedTransport transport;
  fuzzer::RandomGenerator generator(fuzzer::FuzzConfig::full_random(0xC0FFEE));
  EveryPollOracle oracle;
  fuzzer::CampaignConfig config;
  config.tx_period = 1ms;
  config.oracle_period = 10ms;
  config.max_frames = 50;
  config.max_duration = 1s;
  config.stop_on_failure = false;
  fuzzer::FuzzCampaign campaign(scheduler, transport, generator, &oracle, config);
  campaign.run();

  const auto checkpoint = campaign.checkpoint();
  EXPECT_EQ(checkpoint.frames_sent, 50u);
  EXPECT_FALSE(checkpoint.findings.empty());
  EXPECT_FALSE(checkpoint.recent_frames.empty());

  const std::string path = ::testing::TempDir() + "/acf_checkpoint_test.txt";
  ASSERT_TRUE(checkpoint.save(path));
  const auto loaded = fuzzer::CampaignCheckpoint::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->to_string(), checkpoint.to_string());
}

TEST(CheckpointTest, ResumedCampaignIsByteIdenticalToUninterrupted) {
  fuzzer::CampaignConfig config;
  config.tx_period = 1ms;
  config.oracle_period = 10ms;
  config.max_duration = 1s;
  config.stop_on_failure = false;
  const auto fuzz = fuzzer::FuzzConfig::full_random(0xD15EA5E);

  // Reference: one uninterrupted 200-frame campaign.
  sim::Scheduler sched_a;
  ScriptedTransport transport_a;
  fuzzer::RandomGenerator generator_a(fuzz);
  EveryPollOracle oracle_a;
  auto config_a = config;
  config_a.max_frames = 200;
  fuzzer::FuzzCampaign campaign_a(sched_a, transport_a, generator_a, &oracle_a, config_a);
  ASSERT_EQ(campaign_a.run().reason, fuzzer::StopReason::kFrameLimit);

  // Interrupted: stop at frame 100 and checkpoint through the text format.
  sim::Scheduler sched_b1;
  ScriptedTransport transport_b1;
  fuzzer::RandomGenerator generator_b1(fuzz);
  EveryPollOracle oracle_b1;
  auto config_b1 = config;
  config_b1.max_frames = 100;
  fuzzer::FuzzCampaign campaign_b1(sched_b1, transport_b1, generator_b1, &oracle_b1,
                                   config_b1);
  ASSERT_EQ(campaign_b1.run().reason, fuzzer::StopReason::kFrameLimit);
  const auto restored =
      fuzzer::CampaignCheckpoint::from_string(campaign_b1.checkpoint().to_string());
  ASSERT_TRUE(restored.has_value());

  // Resume in a fresh process-worth of objects, clock pre-advanced to where
  // the interrupted run left off.
  sim::Scheduler sched_b2;
  sched_b2.run_until(sim::SimTime{100ms});
  ScriptedTransport transport_b2;
  fuzzer::RandomGenerator generator_b2(fuzz);
  EveryPollOracle oracle_b2;
  auto config_b2 = config;
  config_b2.max_frames = 200;
  fuzzer::FuzzCampaign campaign_b2(sched_b2, transport_b2, generator_b2, &oracle_b2,
                                   config_b2);
  ASSERT_TRUE(campaign_b2.restore(*restored));
  ASSERT_EQ(campaign_b2.run().reason, fuzzer::StopReason::kFrameLimit);

  // Byte-identical frame sequence: first 100 + resumed 100 == reference 200.
  ASSERT_EQ(transport_a.sent.size(), 200u);
  ASSERT_EQ(transport_b1.sent.size(), 100u);
  ASSERT_EQ(transport_b2.sent.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(transport_a.sent[i], transport_b1.sent[i]);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(transport_a.sent[100 + i], transport_b2.sent[i]);
  }

  // Byte-identical end state: counters, findings, window, generator state.
  EXPECT_EQ(campaign_b2.result().frames_sent, 200u);
  EXPECT_EQ(campaign_b2.result().findings.size(), campaign_a.result().findings.size());
  EXPECT_EQ(campaign_a.checkpoint().to_string(), campaign_b2.checkpoint().to_string());
}

TEST(CheckpointTest, PeriodicCheckpointCallbackFires) {
  sim::Scheduler scheduler;
  ScriptedTransport transport;
  fuzzer::RandomGenerator generator(fuzzer::FuzzConfig::full_random(3));
  fuzzer::CampaignConfig config;
  config.tx_period = 1ms;
  config.max_frames = 90;
  config.max_duration = 1s;
  config.checkpoint_period = 25ms;
  fuzzer::FuzzCampaign campaign(scheduler, transport, generator, nullptr, config);
  std::vector<std::uint64_t> snapshots;
  campaign.set_on_checkpoint([&](const fuzzer::CampaignCheckpoint& checkpoint) {
    snapshots.push_back(checkpoint.frames_sent);
  });
  campaign.run();
  // t = 25, 50, 75 ms (each checkpoint fires before that instant's tx tick);
  // the campaign finished at frame 90 before the 100 ms checkpoint.
  ASSERT_EQ(snapshots.size(), 3u);
  EXPECT_EQ(snapshots[0], 24u);
  EXPECT_EQ(snapshots[1], 49u);
  EXPECT_EQ(snapshots[2], 74u);
}

}  // namespace
}  // namespace acf
