#include <gtest/gtest.h>

#include "sim/scheduler.hpp"
#include "transport/fault_injector.hpp"
#include "transport/socketcan_transport.hpp"
#include "transport/virtual_bus_transport.hpp"

namespace acf::transport {
namespace {

class TransportTest : public ::testing::Test {
 protected:
  sim::Scheduler scheduler;
  can::VirtualBus bus{scheduler};
};

TEST_F(TransportTest, SendAndReceiveThroughBus) {
  VirtualBusTransport a(bus, "a");
  VirtualBusTransport b(bus, "b");
  std::vector<can::CanFrame> received;
  b.set_rx_callback([&](const can::CanFrame& frame, sim::SimTime) {
    received.push_back(frame);
  });
  const auto frame = can::CanFrame::data_std(0x215, {0x20, 0x5F});
  EXPECT_TRUE(a.send(frame));
  scheduler.run_for(std::chrono::milliseconds(1));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], frame);
  EXPECT_EQ(a.stats().frames_sent, 1u);
  EXPECT_EQ(b.stats().frames_received, 1u);
}

TEST_F(TransportTest, NamePrefixed) {
  VirtualBusTransport t(bus, "fuzzer");
  EXPECT_EQ(t.name(), "vbus:fuzzer");
}

TEST_F(TransportTest, ListenOnlyTransportCannotSend) {
  VirtualBusTransport tap(bus, "tap", {}, /*listen_only=*/true);
  EXPECT_FALSE(tap.send(can::CanFrame::data_std(0x100, {})));
  EXPECT_EQ(tap.stats().send_failures, 1u);
}

TEST_F(TransportTest, FiltersRestrictReception) {
  VirtualBusTransport a(bus, "a");
  VirtualBusTransport b(bus, "b", can::FilterBank{can::IdMaskFilter::exact(0x300)});
  int count = 0;
  b.set_rx_callback([&](const can::CanFrame&, sim::SimTime) { ++count; });
  a.send(can::CanFrame::data_std(0x300, {}));
  a.send(can::CanFrame::data_std(0x301, {}));
  scheduler.run_for(std::chrono::milliseconds(1));
  EXPECT_EQ(count, 1);
}

TEST_F(TransportTest, DetachOnDestruction) {
  {
    VirtualBusTransport temp(bus, "temp");
    EXPECT_EQ(bus.node_count(), 1u);
  }
  EXPECT_EQ(bus.node_count(), 0u);
}

// ------------------------------------------------------ fault injector ----

TEST_F(TransportTest, FaultInjectorDropsTxDeterministically) {
  VirtualBusTransport a(bus, "a");
  VirtualBusTransport b(bus, "b");
  FaultPlan plan;
  plan.tx_drop = 1.0;
  FaultInjector faulty(a, plan);
  int received = 0;
  b.set_rx_callback([&](const can::CanFrame&, sim::SimTime) { ++received; });
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(faulty.send(can::CanFrame::data_std(0x1, {})));
  scheduler.run_for(std::chrono::milliseconds(5));
  EXPECT_EQ(received, 0);
  EXPECT_EQ(faulty.fault_stats().tx_dropped, 10u);
}

TEST_F(TransportTest, FaultInjectorCorruptsPayloadBits) {
  VirtualBusTransport a(bus, "a");
  VirtualBusTransport b(bus, "b");
  FaultPlan plan;
  plan.tx_corrupt = 1.0;
  FaultInjector faulty(a, plan);
  std::vector<can::CanFrame> received;
  b.set_rx_callback([&](const can::CanFrame& f, sim::SimTime) { received.push_back(f); });
  const auto original = can::CanFrame::data_std(0x10, {0xAA, 0xBB, 0xCC});
  faulty.send(original);
  scheduler.run_for(std::chrono::milliseconds(1));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_NE(received[0], original);          // exactly one bit flipped
  EXPECT_EQ(received[0].id(), original.id());
  EXPECT_EQ(received[0].length(), original.length());
  EXPECT_EQ(faulty.fault_stats().tx_corrupted, 1u);
}

TEST_F(TransportTest, FaultInjectorRxDropAndDuplicate) {
  VirtualBusTransport a(bus, "a");
  VirtualBusTransport b(bus, "b");
  FaultPlan plan;
  plan.rx_duplicate = 1.0;
  FaultInjector faulty(b, plan);
  int count = 0;
  faulty.set_rx_callback([&](const can::CanFrame&, sim::SimTime) { ++count; });
  a.send(can::CanFrame::data_std(0x99, {1}));
  scheduler.run_for(std::chrono::milliseconds(1));
  EXPECT_EQ(count, 2);  // delivered twice
  EXPECT_EQ(faulty.fault_stats().rx_duplicated, 1u);
}

TEST_F(TransportTest, FaultInjectorPassThroughWhenCleanPlan) {
  VirtualBusTransport a(bus, "a");
  VirtualBusTransport b(bus, "b");
  FaultInjector clean(a, FaultPlan{});
  int received = 0;
  b.set_rx_callback([&](const can::CanFrame&, sim::SimTime) { ++received; });
  for (int i = 0; i < 20; ++i) clean.send(can::CanFrame::data_std(0x1, {1}));
  scheduler.run_for(std::chrono::milliseconds(10));
  EXPECT_EQ(received, 20);
}

// ---------------------------------------------------------- SocketCAN ----

TEST(SocketCanTransport, OpenNonexistentInterfaceFailsGracefully) {
  SocketCanTransport transport;
  EXPECT_FALSE(transport.open("acf-does-not-exist-0"));
  EXPECT_FALSE(transport.is_open());
  EXPECT_FALSE(transport.last_error().empty());
  EXPECT_FALSE(transport.send(can::CanFrame::data_std(0x1, {})));
  EXPECT_EQ(transport.pump(0), 0u);
}

TEST(SocketCanTransport, LoopbackWhenInterfaceAvailable) {
  // Runs for real only where a vcan/can interface exists (not creatable in
  // this sandbox); otherwise verifies the graceful-skip path.
  SocketCanTransport tx;
  if (!tx.open("vcan0")) {
    GTEST_SKIP() << "no vcan0 interface: " << tx.last_error();
  }
  SocketCanTransport rx;
  ASSERT_TRUE(rx.open("vcan0"));
  std::vector<can::CanFrame> received;
  rx.set_rx_callback([&](const can::CanFrame& f, sim::SimTime) { received.push_back(f); });
  const auto frame = can::CanFrame::data_std(0x123, {0xDE, 0xAD});
  ASSERT_TRUE(tx.send(frame));
  rx.pump(500);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], frame);
}

}  // namespace
}  // namespace acf::transport
