// Robustness suite: the framework's own parsers and servers fuzzed with
// hostile random input.  A fuzz-testing framework whose parsers crash on
// malformed input would fail its own lesson (§III-B3: untested code paths
// are the attack surface).
#include <gtest/gtest.h>

#include <sstream>

#include "can/wire_codec.hpp"
#include "dbc/parser.hpp"
#include "sim/scheduler.hpp"
#include "trace/asc_log.hpp"
#include "trace/candump_log.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "uds/uds_server.hpp"
#include "util/rng.hpp"
#include "vehicle/vehicle.hpp"

namespace acf {
namespace {

std::string random_text(util::Rng& rng, std::size_t length) {
  static constexpr char kAlphabet[] =
      "BO_ SG_ BU_: BA_ 0123456789ABCDEFabcdef @+-|[](),.\"; \n\t_xX";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(kAlphabet[rng.next_below(sizeof kAlphabet - 1)]);
  }
  return out;
}

TEST(Robustness, DbcParserSurvivesRandomText) {
  util::Rng rng(0xDBC);
  for (int trial = 0; trial < 300; ++trial) {
    const auto result = dbc::parse_dbc(random_text(rng, 400));
    // Whatever loaded must be structurally sound.
    for (const auto& message : result.database.messages()) {
      EXPECT_LE(message.dlc, can::kMaxClassicPayload);
      for (const auto& sig : message.signals) {
        EXPECT_TRUE(sig.fits(message.dlc)) << message.name << "." << sig.name;
      }
    }
  }
}

TEST(Robustness, DbcParserSurvivesMutatedValidText) {
  // Mutate a valid DBC file byte-by-byte: the parser must never accept a
  // signal that does not fit its message.
  const std::string valid = dbc::target_vehicle_dbc_text();
  util::Rng rng(0xDBD);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = valid;
    for (int i = 0; i < 5; ++i) {
      mutated[static_cast<std::size_t>(rng.next_below(mutated.size()))] =
          static_cast<char>(rng.next_in(32, 126));
    }
    const auto result = dbc::parse_dbc(mutated);
    for (const auto& message : result.database.messages()) {
      for (const auto& sig : message.signals) {
        EXPECT_TRUE(sig.fits(message.dlc));
      }
    }
  }
}

TEST(Robustness, WireDecoderSurvivesRandomBitStreams) {
  // Random bit soup: the decoder must reject or return a valid frame —
  // and any frame it does return must re-encode to a decodable image.
  util::Rng rng(0xB175);
  int accepted = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    can::BitVec bits(20 + rng.next_below(140));
    for (auto& bit : bits) bit = static_cast<std::uint8_t>(rng.next_bool(0.5));
    const auto frame = can::decode_wire(bits);
    if (!frame) continue;
    ++accepted;
    EXPECT_LE(frame->length(), can::kMaxClassicPayload);
    const auto round = can::decode_wire(can::encode_wire(*frame));
    ASSERT_TRUE(round.has_value());
    EXPECT_EQ(*round, *frame);
  }
  // The CRC-15 makes random acceptance astronomically unlikely.
  EXPECT_EQ(accepted, 0);
}

TEST(Robustness, LogParsersSurviveRandomLines) {
  util::Rng rng(0x106);
  for (int trial = 0; trial < 500; ++trial) {
    const std::string line = random_text(rng, 80);
    (void)trace::parse_candump_line(line);  // must not crash / UB
    (void)trace::parse_asc_line(line);
  }
  // And random bytes through the stream readers.
  std::stringstream stream(random_text(rng, 5000));
  std::vector<std::string> errors;
  (void)trace::read_candump(stream, &errors);
}

TEST(Robustness, UdsServerAnswersAreAlwaysWellFormed) {
  // Random requests: the server must answer with a well-formed positive
  // (request SID + 0x40) or negative (7F, SID, NRC) — nothing else — and
  // its state machine must stay sound.
  sim::Scheduler scheduler;
  uds::UdsServer server(scheduler, uds::UdsServerConfig{});
  server.set_did(0xF190, {'X'});
  util::Rng rng(0x0D5);
  for (int trial = 0; trial < 5000; ++trial) {
    std::vector<std::uint8_t> request(1 + rng.next_below(10));
    rng.fill(request);
    const std::uint8_t sid = request[0];
    server.handle_request(request, [&](std::vector<std::uint8_t> response) {
      ASSERT_FALSE(response.empty());
      if (response[0] == 0x7F) {
        ASSERT_EQ(response.size(), 3u);
        EXPECT_EQ(response[1], sid);
      } else {
        EXPECT_EQ(response[0], static_cast<std::uint8_t>(sid + 0x40));
      }
    });
    scheduler.run_for(std::chrono::milliseconds(1));
  }
  // Still sane afterwards: a legitimate transaction works.
  std::vector<std::uint8_t> response;
  const std::vector<std::uint8_t> read_did = {uds::kSidReadDataByIdentifier, 0xF1, 0x90};
  server.handle_request(read_did,
                        [&](std::vector<std::uint8_t> r) { response = std::move(r); });
  ASSERT_EQ(response.size(), 4u);
  EXPECT_EQ(response[0], 0x62);
}

TEST(Robustness, VehicleSurvivesSustainedChaos) {
  // An hour of full-space fuzz plus bus corruption: no ECU (other than the
  // cluster's intentional defect) may crash, and the simulation must stay
  // internally consistent.
  sim::Scheduler scheduler;
  vehicle::VehicleConfig config;
  config.powertrain_bus.corruption_probability = 0.01;
  config.body_bus.corruption_probability = 0.01;
  config.gateway_filtering = false;
  vehicle::Vehicle car(scheduler, config);
  transport::VirtualBusTransport obd(car.body_bus(), "chaos");
  util::Rng rng(0xC405);
  scheduler.schedule_every(std::chrono::milliseconds(1), [&] {
    std::vector<std::uint8_t> payload(rng.next_below(9));
    rng.fill(payload);
    obd.send(*can::CanFrame::data(static_cast<std::uint32_t>(rng.next_below(2048)), payload));
  });
  scheduler.run_for(std::chrono::hours(1));

  EXPECT_FALSE(car.engine().crashed());
  EXPECT_FALSE(car.bcm().crashed());
  EXPECT_FALSE(car.head_unit().crashed());
  // The cluster's injected defect is expected to have tripped by now.
  EXPECT_TRUE(car.cluster().crash_latched());
  // The engine still runs its cycle.
  EXPECT_GT(car.engine().rpm(), 100.0);
  // Conservation still holds on the body bus.
  const auto& stats = car.body_bus().stats();
  EXPECT_GT(stats.frames_delivered, 100'000u);
  EXPECT_LE(stats.busy_time.count(), scheduler.now().count());
}

TEST(Robustness, IsoTpChannelsSurviveFuzzedProtocolFrames) {
  // Random frames on the ISO-TP rx id must never wedge the channel.
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  transport::VirtualBusTransport server_port(bus, "server");
  isotp::IsoTpConfig config;
  config.rx_id = 0x7E0;
  config.tx_id = 0x7E8;
  isotp::IsoTpChannel channel(
      scheduler, [&](const can::CanFrame& f) { return server_port.send(f); }, config);
  int messages = 0;
  channel.set_on_message([&](const std::vector<std::uint8_t>&, sim::SimTime) { ++messages; });
  server_port.set_rx_callback(
      [&](const can::CanFrame& f, sim::SimTime t) { channel.handle_frame(f, t); });

  transport::VirtualBusTransport fuzzer_port(bus, "fuzzer");
  util::Rng rng(0x150);
  for (int i = 0; i < 5000; ++i) {
    std::vector<std::uint8_t> payload(rng.next_below(9));
    rng.fill(payload);
    fuzzer_port.send(*can::CanFrame::data(0x7E0, payload));
    scheduler.run_for(std::chrono::microseconds(500));
  }
  scheduler.run_for(std::chrono::seconds(2));
  // After the storm a clean single-frame message still gets through.
  fuzzer_port.send(*can::CanFrame::data(0x7E0, {0x02, 0x10, 0x01}));
  scheduler.run_for(std::chrono::milliseconds(10));
  EXPECT_GT(messages, 0);
}

}  // namespace
}  // namespace acf
