#include <gtest/gtest.h>

#include "sim/scheduler.hpp"
#include "trace/capture.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "vehicle/vehicle.hpp"

namespace acf::vehicle {
namespace {

using dbc::kCmdLock;
using dbc::kCmdUnlock;
using dbc::kMsgBodyAck;
using dbc::kMsgBodyCommand;
using dbc::kMsgEngineData;

// --------------------------------------------------------------- Ecu ------

class ProbeEcu final : public ecu::Ecu {
 public:
  ProbeEcu(sim::Scheduler& scheduler, can::VirtualBus& bus) : Ecu(scheduler, bus, "probe") {
    add_periodic(std::chrono::milliseconds(10),
                 [this]() -> std::optional<can::CanFrame> {
                   ++produced;
                   return can::CanFrame::data_std(0x111, {0x42});
                 });
  }
  void trigger_crash() { crash("test-induced"); }
  using Ecu::send;

  int produced = 0;
  int received = 0;

 private:
  void handle_frame(const can::CanFrame&, sim::SimTime) override { ++received; }
};

class EcuTest : public ::testing::Test {
 protected:
  sim::Scheduler scheduler;
  can::VirtualBus bus{scheduler};
};

TEST_F(EcuTest, PeriodicTransmissionWhilePowered) {
  ProbeEcu ecu(scheduler, bus);
  trace::CaptureTap tap(bus, "tap");
  scheduler.run_for(std::chrono::milliseconds(105));
  EXPECT_EQ(tap.size(), 10u);
}

TEST_F(EcuTest, PowerOffSilencesAndPowerOnRestores) {
  ProbeEcu ecu(scheduler, bus);
  trace::CaptureTap tap(bus, "tap");
  ecu.power_off();
  scheduler.run_for(std::chrono::milliseconds(100));
  EXPECT_EQ(tap.size(), 0u);
  EXPECT_FALSE(ecu.powered());
  ecu.power_on();
  scheduler.run_for(std::chrono::milliseconds(105));
  EXPECT_EQ(tap.size(), 10u);
}

TEST_F(EcuTest, CrashSilencesUntilPowerCycle) {
  ProbeEcu ecu(scheduler, bus);
  trace::CaptureTap tap(bus, "tap");
  transport::VirtualBusTransport other(bus, "other");
  ecu.trigger_crash();
  EXPECT_TRUE(ecu.crashed());
  EXPECT_EQ(ecu.crash_reason(), "test-induced");
  EXPECT_EQ(ecu.crash_count(), 1u);
  scheduler.run_for(std::chrono::milliseconds(50));
  EXPECT_EQ(tap.size(), 0u);  // no heartbeat: the crash-oracle observable
  other.send(can::CanFrame::data_std(0x222, {}));
  scheduler.run_for(std::chrono::milliseconds(10));
  EXPECT_EQ(ecu.received, 0);  // no reception either
  ecu.power_cycle(std::chrono::milliseconds(20));
  scheduler.run_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(ecu.crashed());
  EXPECT_GT(tap.size(), 0u);
}

TEST_F(EcuTest, SendRejectedWhenCrashedOrOff) {
  ProbeEcu ecu(scheduler, bus);
  EXPECT_TRUE(ecu.send(can::CanFrame::data_std(0x1, {})));
  ecu.trigger_crash();
  EXPECT_FALSE(ecu.send(can::CanFrame::data_std(0x1, {})));
  ecu.power_off();
  EXPECT_FALSE(ecu.send(can::CanFrame::data_std(0x1, {})));
}

TEST(DtcStore, RaiseQueryAndMil) {
  ecu::DtcStore store;
  EXPECT_FALSE(store.mil_requested());
  store.raise(0x9A0200, "display fault");
  EXPECT_TRUE(store.has(0x9A0200));
  EXPECT_TRUE(store.mil_requested());
  EXPECT_EQ(store.count(), 1u);
  store.raise(0x9A0200, "again");  // refresh, not duplicate
  EXPECT_EQ(store.count(), 1u);
  store.raise(0x123456, "pending only", /*confirmed=*/false);
  EXPECT_EQ(store.count(), 2u);
  const auto bytes = store.to_uds_bytes();
  ASSERT_EQ(bytes.size(), 8u);
  EXPECT_EQ(bytes[0], 0x9A);
  EXPECT_EQ(bytes[1], 0x02);
  EXPECT_EQ(bytes[2], 0x00);
  store.clear_all();
  EXPECT_FALSE(store.mil_requested());
}

// ------------------------------------------------------------ engine ------

TEST(EngineEcu, IdlesAroundTargetRpm) {
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  EngineEcu engine(scheduler, bus);
  scheduler.run_for(std::chrono::seconds(5));
  EXPECT_GT(engine.rpm(), 600.0);
  EXPECT_LT(engine.rpm(), 1100.0);
  EXPECT_LT(engine.speed_kph(), 1.0);
}

TEST(EngineEcu, DriveCycleReachesCruise) {
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  EngineEcu engine(scheduler, bus);
  scheduler.run_for(std::chrono::seconds(45));  // into the cruise phase
  EXPECT_GT(engine.rpm(), 1500.0);
  EXPECT_GT(engine.speed_kph(), 30.0);
}

TEST(EngineEcu, BroadcastsDecodableSignals) {
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  EngineEcu engine(scheduler, bus);
  trace::CaptureTap tap(bus, "tap");
  scheduler.run_for(std::chrono::seconds(1));
  const dbc::Database db = dbc::target_vehicle_database();
  int engine_frames = 0;
  for (const auto& entry : tap.frames()) {
    if (entry.frame.id() != kMsgEngineData) continue;
    ++engine_frames;
    const auto values = db.by_id(kMsgEngineData)->decode(entry.frame);
    EXPECT_GT(values.at("EngineRPM"), 0.0);
    EXPECT_EQ(values.at("EngineRunning"), 1.0);
  }
  EXPECT_NEAR(engine_frames, 100, 5);  // 10 ms period over 1 s
}

TEST(EngineEcu, ImplausibleWheelSpeedDisturbsIdle) {
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  EngineEcu engine(scheduler, bus);
  transport::VirtualBusTransport attacker(bus, "attacker");
  scheduler.run_for(std::chrono::seconds(5));
  const double calm = engine.idle_roughness();
  // Spoof wheel speeds of ~160 km/h into an idling car, repeatedly.
  const dbc::Database db = dbc::target_vehicle_database();
  const auto spoof = db.by_id(dbc::kMsgWheelSpeeds)
                         ->encode({{"WheelFL", 160.0}, {"WheelFR", 160.0}});
  for (int i = 0; i < 50; ++i) {
    attacker.send(*spoof);
    scheduler.run_for(std::chrono::milliseconds(20));
  }
  EXPECT_GT(engine.implausible_inputs_seen(), 0u);
  EXPECT_GT(engine.idle_roughness(), calm * 3);  // erratic idle
  EXPECT_TRUE(engine.dtcs().mil_requested());
}

// ----------------------------------------------------------- cluster ------

class ClusterTest : public ::testing::Test {
 protected:
  sim::Scheduler scheduler;
  can::VirtualBus bus{scheduler};
  InstrumentCluster cluster{scheduler, bus};
  transport::VirtualBusTransport sender{bus, "sender"};
  dbc::Database db = dbc::target_vehicle_database();

  void send_and_run(const can::CanFrame& frame) {
    sender.send(frame);
    scheduler.run_for(std::chrono::milliseconds(2));
  }
};

TEST_F(ClusterTest, DisplaysRpmFromEngineData) {
  send_and_run(*db.by_id(kMsgEngineData)->encode({{"EngineRPM", 2500.0}}));
  EXPECT_DOUBLE_EQ(cluster.rpm_gauge(), 2500.0);
  EXPECT_FALSE(cluster.mil_on());
}

TEST_F(ClusterTest, DisplaysNegativeRpmUnfiltered) {
  // Fig. 8: the gauge renders physically invalid values as-is.
  send_and_run(*db.by_id(kMsgEngineData)->encode({{"EngineRPM", -1234.0}}));
  EXPECT_DOUBLE_EQ(cluster.rpm_gauge(), -1234.0);
  EXPECT_TRUE(cluster.mil_on());  // but the plausibility DTC fires
  EXPECT_GT(cluster.implausible_values_seen(), 0u);
  EXPECT_GT(cluster.warning_sounds(), 0u);
}

TEST_F(ClusterTest, NeedleTravelAccumulates) {
  send_and_run(*db.by_id(kMsgEngineData)->encode({{"EngineRPM", 1000.0}}));
  send_and_run(*db.by_id(kMsgEngineData)->encode({{"EngineRPM", 3000.0}}));
  send_and_run(*db.by_id(kMsgEngineData)->encode({{"EngineRPM", 500.0}}));
  EXPECT_GE(cluster.needle_travel(), 1000.0 + 2000.0 + 2500.0);
}

TEST_F(ClusterTest, TelltalesDriveWarnings) {
  send_and_run(*db.by_id(dbc::kMsgTelltales)->encode({{"MilOn", 1.0}, {"DtcCount", 2.0}}));
  EXPECT_TRUE(cluster.mil_on());
  EXPECT_TRUE(cluster.any_warning_lit());
  EXPECT_EQ(cluster.warning_sounds(), 1u);
}

TEST_F(ClusterTest, OdometerDisplay) {
  send_and_run(*db.by_id(dbc::kMsgClusterDisplay)
                    ->encode({{"DisplayMode", 0.0}, {"OdometerKm", 18204.0}}));
  EXPECT_EQ(cluster.display_text(), "18204");
}

TEST_F(ClusterTest, FactoryTestModeInBoundsIsHarmless) {
  send_and_run(*can::CanFrame::data(dbc::kMsgClusterDisplay, {0xF2, 0x0A}));
  EXPECT_EQ(cluster.display_text(), "test10");
  EXPECT_FALSE(cluster.crash_latched());
}

TEST_F(ClusterTest, FactoryTestOverrunLatchesCrash) {
  // mode >= 0xF0 with (arg & 0x1F) >= 16: the injected defect.
  send_and_run(*can::CanFrame::data(dbc::kMsgClusterDisplay, {0xF7, 0x1A}));
  EXPECT_TRUE(cluster.crash_latched());
  EXPECT_TRUE(cluster.crashed());
  EXPECT_EQ(cluster.display_text(), "CrAsH");
  EXPECT_TRUE(cluster.dtcs().has(0x9A0200));
}

TEST_F(ClusterTest, CrashLatchSurvivesPowerCycleMilsClear) {
  send_and_run(*db.by_id(dbc::kMsgTelltales)->encode({{"MilOn", 1.0}}));
  send_and_run(*can::CanFrame::data(dbc::kMsgClusterDisplay, {0xFF, 0x1F}));
  ASSERT_TRUE(cluster.crash_latched());
  cluster.power_cycle(std::chrono::milliseconds(10));
  scheduler.run_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(cluster.mil_on());              // MILs clear on power cycle...
  EXPECT_TRUE(cluster.crash_latched());        // ...the crash does not (Fig. 9)
  EXPECT_EQ(cluster.display_text(), "CrAsH");
  // And display commands no longer change the text.
  send_and_run(*db.by_id(dbc::kMsgClusterDisplay)
                    ->encode({{"DisplayMode", 0.0}, {"OdometerKm", 1.0}}));
  EXPECT_EQ(cluster.display_text(), "CrAsH");
}

TEST_F(ClusterTest, ShortDisplayFrameIgnoredByFactoryHandler) {
  send_and_run(*can::CanFrame::data(dbc::kMsgClusterDisplay, {0xF7}));
  EXPECT_FALSE(cluster.crash_latched());
}

// -------------------------------------------------------------- BCM -------

class BcmTest : public ::testing::Test {
 protected:
  sim::Scheduler scheduler;
  can::VirtualBus bus{scheduler};
};

TEST_F(BcmTest, LegitimateUnlockFrameActuates) {
  BodyControlModule bcm(scheduler, bus, UnlockPredicate::single_id_and_byte());
  transport::VirtualBusTransport app(bus, "app");
  std::vector<can::CanFrame> acks;
  app.set_rx_callback([&](const can::CanFrame& f, sim::SimTime) {
    if (f.id() == kMsgBodyAck) acks.push_back(f);
  });
  EXPECT_FALSE(bcm.unlocked());
  app.send(*can::CanFrame::data(kMsgBodyCommand, {kCmdUnlock, 0x5F, 0x01, 0x00, 1, 0x20, 0}));
  scheduler.run_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(bcm.unlocked());
  EXPECT_TRUE(bcm.lock_led_on());
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].payload()[0], kCmdUnlock);
  app.send(*can::CanFrame::data(kMsgBodyCommand, {kCmdLock, 0x5F, 0x01, 0x00, 2, 0x20, 0}));
  scheduler.run_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(bcm.unlocked());
  EXPECT_EQ(bcm.unlock_events(), 1u);
  EXPECT_EQ(bcm.lock_events(), 1u);
}

TEST_F(BcmTest, WeakPredicateAcceptsAnyLengthAndTail) {
  BodyControlModule bcm(scheduler, bus, UnlockPredicate::single_id_and_byte());
  transport::VirtualBusTransport attacker(bus, "attacker");
  // A 1-byte frame with just the command byte is enough.
  attacker.send(*can::CanFrame::data(kMsgBodyCommand, {kCmdUnlock}));
  scheduler.run_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(bcm.unlocked());
}

TEST_F(BcmTest, LengthCheckedPredicateRejectsWrongDlc) {
  BodyControlModule bcm(scheduler, bus, UnlockPredicate::id_byte_and_length());
  transport::VirtualBusTransport attacker(bus, "attacker");
  attacker.send(*can::CanFrame::data(kMsgBodyCommand, {kCmdUnlock}));  // dlc 1
  attacker.send(*can::CanFrame::data(kMsgBodyCommand,
                                     {kCmdUnlock, 1, 2, 3, 4, 5, 6, 7}));  // dlc 8
  scheduler.run_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(bcm.unlocked());
  EXPECT_EQ(bcm.rejected_commands(), 2u);
  attacker.send(*can::CanFrame::data(kMsgBodyCommand, {kCmdUnlock, 9, 9, 9, 9, 9, 9}));  // dlc 7
  scheduler.run_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(bcm.unlocked());  // only byte 0 checked beyond the DLC
}

TEST_F(BcmTest, MultiBytePredicateChecksPrefix) {
  BodyControlModule bcm(scheduler, bus, UnlockPredicate{3, true});
  transport::VirtualBusTransport attacker(bus, "attacker");
  attacker.send(*can::CanFrame::data(kMsgBodyCommand, {kCmdUnlock, 0x5F, 0x02, 0, 0, 0, 0}));
  scheduler.run_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(bcm.unlocked());  // byte 2 wrong
  attacker.send(*can::CanFrame::data(kMsgBodyCommand, {kCmdUnlock, 0x5F, 0x01, 0, 0, 0, 0}));
  scheduler.run_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(bcm.unlocked());
}

TEST_F(BcmTest, OtherIdsIgnored) {
  BodyControlModule bcm(scheduler, bus);
  transport::VirtualBusTransport attacker(bus, "attacker");
  attacker.send(*can::CanFrame::data(0x214, {kCmdUnlock}));
  attacker.send(*can::CanFrame::data(0x216, {kCmdUnlock}));
  scheduler.run_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(bcm.unlocked());
  EXPECT_EQ(bcm.rejected_commands(), 0u);  // not even treated as commands
}

TEST_F(BcmTest, BroadcastsDoorStatus) {
  BodyControlModule bcm(scheduler, bus);
  trace::CaptureTap tap(bus, "tap");
  scheduler.run_for(std::chrono::milliseconds(500));
  int door_status = 0;
  for (const auto& entry : tap.frames()) {
    if (entry.frame.id() == dbc::kMsgDoorStatus) ++door_status;
  }
  EXPECT_NEAR(door_status, 5, 1);
}

// -------------------------------------------------------- head unit -------

TEST(HeadUnit, AppCommandsActuateBcm) {
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  UnlockTestbench bench(scheduler, UnlockPredicate{4, true});
  bench.head_unit().request_unlock();
  scheduler.run_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(bench.bcm().unlocked());
  EXPECT_EQ(bench.head_unit().acks_seen(), 1u);
  EXPECT_EQ(bench.head_unit().last_acked_command(), kCmdUnlock);
  bench.head_unit().request_lock();
  scheduler.run_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(bench.bcm().unlocked());
  EXPECT_EQ(bench.head_unit().acks_seen(), 2u);
}

// ----------------------------------------------------------- gateway ------

TEST(Gateway, WhitelistForwardsClusterFeedOnly) {
  sim::Scheduler scheduler;
  can::VirtualBus powertrain(scheduler);
  can::VirtualBus body(scheduler);
  GatewayEcu gateway(powertrain, body, GatewayEcu::default_powertrain_to_body(),
                     GatewayEcu::default_body_to_powertrain());
  trace::CaptureTap body_tap(body, "body-tap");
  trace::CaptureTap pt_tap(powertrain, "pt-tap");
  transport::VirtualBusTransport pt_node(powertrain, "ecm");
  transport::VirtualBusTransport body_node(body, "ivi");

  pt_node.send(*can::CanFrame::data(kMsgEngineData, {1, 2}));   // whitelisted
  pt_node.send(*can::CanFrame::data(0x666, {3}));               // not whitelisted
  body_node.send(*can::CanFrame::data(kMsgBodyCommand, {kCmdUnlock}));  // body-local
  body_node.send(*can::CanFrame::data(dbc::kUdsEngineRequest, {0x02, 0x10, 0x01}));
  scheduler.run_for(std::chrono::milliseconds(10));

  // Body bus sees: forwarded engine data + its own two local frames.
  ASSERT_EQ(body_tap.size(), 3u);
  bool engine_seen = false;
  for (const auto& e : body_tap.frames()) {
    if (e.frame.id() == kMsgEngineData) engine_seen = true;
    EXPECT_NE(e.frame.id(), 0x666u);
  }
  EXPECT_TRUE(engine_seen);
  // Powertrain sees its own two frames + the forwarded UDS request only.
  ASSERT_EQ(pt_tap.size(), 3u);
  EXPECT_EQ(gateway.stats().forwarded_p_to_b, 1u);
  EXPECT_EQ(gateway.stats().blocked_p_to_b, 1u);
  EXPECT_EQ(gateway.stats().forwarded_b_to_p, 1u);
  EXPECT_EQ(gateway.stats().blocked_b_to_p, 1u);
}

TEST(Gateway, ForwardAllMode) {
  sim::Scheduler scheduler;
  can::VirtualBus powertrain(scheduler);
  can::VirtualBus body(scheduler);
  GatewayEcu gateway(powertrain, body, ForwardRule{true, {}}, ForwardRule{true, {}});
  trace::CaptureTap pt_tap(powertrain, "pt-tap");
  transport::VirtualBusTransport body_node(body, "attacker");
  body_node.send(*can::CanFrame::data(0x666, {0xEE}));
  scheduler.run_for(std::chrono::milliseconds(10));
  ASSERT_EQ(pt_tap.size(), 1u);
  EXPECT_EQ(pt_tap.frames()[0].frame.id(), 0x666u);
}

TEST(Gateway, EmptyWhitelistBlocksEverything) {
  sim::Scheduler scheduler;
  can::VirtualBus powertrain(scheduler);
  can::VirtualBus body(scheduler);
  GatewayEcu gateway(powertrain, body, ForwardRule{}, ForwardRule{});
  trace::CaptureTap body_tap(body, "tap");
  transport::VirtualBusTransport pt_node(powertrain, "ecm");
  pt_node.send(*can::CanFrame::data(kMsgEngineData, {1}));
  scheduler.run_for(std::chrono::milliseconds(10));
  EXPECT_EQ(body_tap.size(), 0u);
  EXPECT_EQ(gateway.stats().blocked_p_to_b, 1u);
}

// ------------------------------------------------------------ vehicle -----

TEST(Vehicle, ClusterTracksEngineThroughGateway) {
  sim::Scheduler scheduler;
  Vehicle car(scheduler);
  scheduler.run_for(std::chrono::seconds(45));  // cruise phase
  EXPECT_GT(car.engine().rpm(), 1500.0);
  // The cluster (body bus) tracks the engine (powertrain bus) via the
  // gateway within one broadcast period.
  EXPECT_NEAR(car.cluster().rpm_gauge(), car.engine().rpm(), 150.0);
  EXPECT_NEAR(car.cluster().speed_gauge(), car.engine().speed_kph(), 5.0);
  EXPECT_FALSE(car.cluster().mil_on());
}

TEST(Vehicle, UnfilteredGatewayExposesPowertrain) {
  sim::Scheduler scheduler;
  VehicleConfig config;
  config.gateway_filtering = false;
  Vehicle car(scheduler, config);
  transport::VirtualBusTransport obd(car.body_bus(), "obd");
  scheduler.run_for(std::chrono::seconds(3));
  const double calm = car.engine().idle_roughness();
  const dbc::Database db = dbc::target_vehicle_database();
  const auto spoof = db.by_id(dbc::kMsgWheelSpeeds)
                         ->encode({{"WheelFL", 200.0}, {"WheelFR", 200.0}});
  for (int i = 0; i < 50; ++i) {
    obd.send(*spoof);
    scheduler.run_for(std::chrono::milliseconds(20));
  }
  // Without filtering, body-bus injection reaches the engine.
  EXPECT_GT(car.engine().implausible_inputs_seen(), 0u);
  EXPECT_GT(car.engine().idle_roughness(), calm);
}

TEST(Vehicle, FilteredGatewayShieldsPowertrain) {
  sim::Scheduler scheduler;
  Vehicle car(scheduler);  // filtering on by default
  transport::VirtualBusTransport obd(car.body_bus(), "obd");
  scheduler.run_for(std::chrono::seconds(3));
  const dbc::Database db = dbc::target_vehicle_database();
  const auto spoof = db.by_id(dbc::kMsgWheelSpeeds)
                         ->encode({{"WheelFL", 200.0}, {"WheelFR", 200.0}});
  for (int i = 0; i < 50; ++i) {
    obd.send(*spoof);
    scheduler.run_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(car.engine().implausible_inputs_seen(), 0u);
}

}  // namespace
}  // namespace acf::vehicle
