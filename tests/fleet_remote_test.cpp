// Distributed campaign service: wire protocol, lease table, campaign
// checkpoint, reconnect gate, progress counters, and the crash-tolerance
// end-to-end contract — a fleet served over sockets (including one whose
// worker dies mid-batch, and one whose coordinator restarts from its
// checkpoint) produces byte-identical JSONL to the in-process executor.
#include <sys/wait.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "fleet/executor.hpp"
#include "fleet/jsonl.hpp"
#include "fleet/remote/checkpoint.hpp"
#include "fleet/remote/coordinator.hpp"
#include "fleet/remote/lease.hpp"
#include "fleet/remote/wire.hpp"
#include "fleet/remote/worker.hpp"
#include "fleet/worlds.hpp"
#include "fuzzer/config.hpp"
#include "metrics/metrics.hpp"
#include "resilience/reconnect.hpp"
#include "util/socket.hpp"
#include "vehicle/vehicle.hpp"

namespace acf::fleet::remote {
namespace {

using namespace std::chrono_literals;

// ----------------------------------------------------------- fixtures -----

/// Same reduced-window unlock world the fleet tests use: detections in
/// simulated seconds, trials in milliseconds of wall time.  A non-null
/// registry arms the sim/bus metrics seam the observability tests compare.
WorldFactory fast_unlock_factory(metrics::Registry* registry = nullptr) {
  fuzzer::FuzzConfig fast = fuzzer::FuzzConfig::around_id(0x215, 3);
  fast.tx_period = std::chrono::microseconds(250);
  return unlock_world_factory(
      {{vehicle::UnlockPredicate::single_id_and_byte(), fast, std::chrono::minutes(5)},
       {vehicle::UnlockPredicate::id_byte_and_length(), fast, std::chrono::minutes(5)}},
      registry);
}

TrialPlan fast_plan(std::size_t replicas) {
  return TrialPlan({"weak", "hardened"}, replicas, 0xACF17EE7ULL);
}

std::string jsonl_of(const TrialPlan& plan, const std::vector<TrialOutcome>& outcomes) {
  std::ostringstream out;
  JsonlExporter(out).write_all(plan, outcomes);
  return out.str();
}

std::vector<TrialOutcome> reference_outcomes(const TrialPlan& plan) {
  ExecutorConfig config;
  config.threads = 2;
  config.progress_period = std::chrono::milliseconds(0);
  Executor executor(config);
  return executor.run(plan, fast_unlock_factory());
}

bool outcomes_equal(const TrialOutcome& a, const TrialOutcome& b) {
  // Value equality through the canonical wire encoding: every field crosses.
  LeaseResultMsg ma, mb;
  ma.outcome = a;
  mb.outcome = b;
  return encode(Message{ma}) == encode(Message{mb});
}

// --------------------------------------------------------------- wire -----

TEST(FleetRemoteWire, EveryMessageTypeRoundTrips) {
  HelloMsg hello;
  hello.fingerprint = 0xDEADBEEF;
  hello.capacity = 8;
  hello.worker_name = "w-1";
  hello.instance_id = 0x1DB01DB0CAFEF00Dull;
  WelcomeMsg welcome;
  welcome.fingerprint = 0xDEADBEEF;
  welcome.trial_count = 400;
  welcome.session = 7;
  LeaseGrantMsg grant;
  grant.lease_id = 42;
  grant.deadline_ms = 10'000;
  grant.trials = {10, 11, 12};
  LeaseResultMsg result;
  result.lease_id = 42;
  result.outcome.spec = {17, 1, 8, 0x1234, sim::Duration{5'000'000'000}};
  result.outcome.status = TrialStatus::kCompleted;
  result.outcome.stop_reason = fuzzer::StopReason::kFailureDetected;
  result.outcome.frames_sent = 812;
  result.outcome.sim_seconds = 4.75;
  result.outcome.time_to_failure = 1.25;
  result.outcome.findings = {"unlock without auth", "line with \"quotes\" and \n newline"};

  HeartbeatMsg beat_with_metrics{42, 2, std::nullopt};
  beat_with_metrics.metrics.emplace();
  beat_with_metrics.metrics->counters = {{"fleet.trial.completed", 7},
                                         {"sim.scheduler.heap_capacity_max", 256}};
  beat_with_metrics.metrics->gauges = {{"fleet.leases.outstanding", -1}};
  beat_with_metrics.metrics->timers = {
      {"fleet.trial.sim_seconds", 3, 6.5, 0.5, 4.0, {{0.5, 1, 0}, {2.0, 1, 0}, {4.0, 1, 0}}}};

  const std::vector<Message> messages = {
      Message{hello},         Message{welcome},
      Message{LeaseRequestMsg{4}}, Message{grant},
      Message{result},        Message{HeartbeatMsg{42, 2, std::nullopt}},
      Message{beat_with_metrics},
      Message{ShutdownMsg{ShutdownReason::kCoordinatorPausing}},
      Message{RejectedMsg{"fingerprint mismatch"}},
  };
  for (const Message& message : messages) {
    const std::vector<std::uint8_t> payload = encode(message);
    const std::optional<Message> decoded = decode(payload);
    ASSERT_TRUE(decoded.has_value()) << "payload type " << int(payload[0]);
    EXPECT_EQ(encode(*decoded), payload);
  }
}

TEST(FleetRemoteWire, TruncatedAndPaddedPayloadsAreRejected) {
  LeaseGrantMsg grant;
  grant.lease_id = 9;
  grant.trials = {1, 2, 3};
  std::vector<std::uint8_t> payload = encode(Message{grant});
  for (std::size_t cut = 1; cut < payload.size(); ++cut) {
    const std::span<const std::uint8_t> truncated(payload.data(), payload.size() - cut);
    EXPECT_FALSE(decode(truncated).has_value()) << "cut " << cut;
  }
  payload.push_back(0x00);  // strict: trailing garbage is not tolerated
  EXPECT_FALSE(decode(payload).has_value());
  EXPECT_FALSE(decode(std::span<const std::uint8_t>{}).has_value());
}

TEST(FleetRemoteWire, UnknownMessageTypeIsPreservedVerbatim) {
  const std::vector<std::uint8_t> payload = {0x7F, 0x01, 0x02, 0x03};
  const std::optional<Message> decoded = decode(payload);
  ASSERT_TRUE(decoded.has_value());
  const auto* unknown = std::get_if<UnknownMsg>(&*decoded);
  ASSERT_NE(unknown, nullptr);
  EXPECT_EQ(unknown->type, 0x7F);
  EXPECT_EQ(encode(*decoded), payload);
}

TEST(FleetRemoteWire, HostileDeclaredCountsAreRejectedNotAllocated) {
  // A LeaseGrant declaring 4 billion trials in a 16-byte payload.
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kLeaseGrant));
  w.u64(1);
  w.u32(0);
  w.u32(0xFFFFFFFFu);
  EXPECT_FALSE(decode(w.bytes()).has_value());
}

TEST(FleetRemoteWire, FrameReaderReassemblesByteByByte) {
  std::vector<std::uint8_t> stream = frame_message(Message{HeartbeatMsg{1, 2, std::nullopt}});
  const std::vector<std::uint8_t> second = frame_message(Message{LeaseRequestMsg{3}});
  stream.insert(stream.end(), second.begin(), second.end());

  FrameReader reader;
  std::vector<std::vector<std::uint8_t>> frames;
  for (const std::uint8_t byte : stream) {
    ASSERT_TRUE(reader.feed(std::span<const std::uint8_t>(&byte, 1)));
    while (auto payload = reader.next()) frames.push_back(std::move(*payload));
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_TRUE(std::holds_alternative<HeartbeatMsg>(*decode(frames[0])));
  EXPECT_TRUE(std::holds_alternative<LeaseRequestMsg>(*decode(frames[1])));
  EXPECT_FALSE(reader.poisoned());
}

TEST(FleetRemoteWire, ZeroAndOversizedLengthPrefixesPoison) {
  for (const std::uint32_t declared : {0u, static_cast<std::uint32_t>(kMaxFramePayload) + 1}) {
    FrameReader reader;
    ByteWriter w;
    w.u32(declared);
    EXPECT_FALSE(reader.feed(w.bytes()));
    EXPECT_TRUE(reader.poisoned());
    EXPECT_FALSE(reader.next().has_value());
    // Poison is terminal: further bytes are refused, never resynced.
    const std::uint8_t more[] = {1, 2, 3};
    EXPECT_FALSE(reader.feed(more));
  }
}

TEST(FleetRemoteWire, FingerprintSeparatesCampaigns) {
  const TrialPlan a({"x", "y"}, 3, 1);
  const TrialPlan b({"x", "y"}, 3, 2);   // different seed
  const TrialPlan c({"xy"}, 3, 1);       // arm-boundary shift
  const TrialPlan d({"x", "y"}, 4, 1);   // different replicas
  EXPECT_EQ(campaign_fingerprint(a, "tag"), campaign_fingerprint(a, "tag"));
  EXPECT_NE(campaign_fingerprint(a, "tag"), campaign_fingerprint(b, "tag"));
  EXPECT_NE(campaign_fingerprint(a, "tag"), campaign_fingerprint(c, "tag"));
  EXPECT_NE(campaign_fingerprint(a, "tag"), campaign_fingerprint(d, "tag"));
  EXPECT_NE(campaign_fingerprint(a, "tag"), campaign_fingerprint(a, "other"));
}

// -------------------------------------------------------------- lease -----

TEST(FleetRemoteLease, GrantsInIndexOrderAndCompletes) {
  LeaseTable table(5);
  const auto now = WallClock::now();
  const auto lease = table.grant(1, 3, now, 1000ms);
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->trials, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(table.outstanding(), 1u);

  EXPECT_EQ(table.complete(lease->lease_id, 0), CompletionResult::kAccepted);
  EXPECT_EQ(table.complete(lease->lease_id, 0), CompletionResult::kDuplicate);
  EXPECT_EQ(table.complete(lease->lease_id, 99), CompletionResult::kBadIndex);
  EXPECT_EQ(table.done_count(), 1u);
  EXPECT_EQ(table.stats().duplicate_completions, 1u);

  // Remaining two trials still leased; the other two grant to worker 2.
  const auto rest = table.grant(2, 8, now, 1000ms);
  ASSERT_TRUE(rest.has_value());
  EXPECT_EQ(rest->trials, (std::vector<std::size_t>{3, 4}));
  EXPECT_FALSE(table.grant(3, 8, now, 1000ms).has_value());  // all leased/done
}

TEST(FleetRemoteLease, ExpiredLeaseHandsTrialsToTheNextWorkerInOrder) {
  LeaseTable table(4);
  const auto now = WallClock::now();
  const auto lease = table.grant(1, 4, now, 100ms);
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(table.complete(lease->lease_id, 1), CompletionResult::kAccepted);

  EXPECT_EQ(table.expire(now + 50ms), 0u);   // renewed deadline not yet due
  table.renew(lease->lease_id, now + 60ms);
  EXPECT_EQ(table.expire(now + 120ms), 0u);  // renewal pushed it out
  EXPECT_EQ(table.expire(now + 200ms), 1u);  // silence past TTL: reclaimed

  const auto stolen = table.grant(2, 8, now + 200ms, 100ms);
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(stolen->trials, (std::vector<std::size_t>{0, 2, 3}));  // ascending
  EXPECT_EQ(table.stats().leases_expired, 1u);
  EXPECT_EQ(table.stats().trials_stolen, 3u);
  // The dead worker's late completion is a duplicate once the thief lands it.
  EXPECT_EQ(table.complete(stolen->lease_id, 0), CompletionResult::kAccepted);
  EXPECT_EQ(table.complete(lease->lease_id, 0), CompletionResult::kDuplicate);
}

TEST(FleetRemoteLease, ReleaseWorkerReclaimsAllItsLeases) {
  LeaseTable table(6);
  const auto now = WallClock::now();
  const auto first = table.grant(7, 2, now, 1000ms);
  const auto second = table.grant(7, 2, now, 1000ms);
  const auto other = table.grant(8, 2, now, 1000ms);
  ASSERT_TRUE(first && second && other);
  EXPECT_EQ(table.release_worker(7), 2u);
  EXPECT_EQ(table.outstanding(), 1u);  // worker 8's lease untouched
  const auto stolen = table.grant(9, 8, now, 1000ms);
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(stolen->trials, (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(table.stats().leases_released, 2u);
  EXPECT_EQ(table.stats().trials_stolen, 4u);
}

TEST(FleetRemoteLease, CheckpointRestorePrioritisesInFlightTrials) {
  LeaseTable table(6);
  table.mark_done(0);
  table.mark_done(3);
  // Resume path: trials 4 and 5 were leased at save time; re-issue first.
  table.prioritise(5);
  table.prioritise(4);
  const auto lease = table.grant(1, 3, WallClock::now(), 1000ms);
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->trials, (std::vector<std::size_t>{4, 5, 1}));
  EXPECT_EQ(table.leased_indices(), (std::vector<std::size_t>{1, 4, 5}));
  EXPECT_EQ(table.done_count(), 2u);
}

TEST(FleetRemoteLease, AllDoneOnlyWhenEveryTrialCompleted) {
  LeaseTable table(2);
  EXPECT_FALSE(table.all_done());
  table.mark_done(0);
  table.mark_done(0);  // idempotent
  EXPECT_EQ(table.done_count(), 1u);
  table.mark_done(1);
  EXPECT_TRUE(table.all_done());
  EXPECT_FALSE(table.work_available() &&
               table.grant(1, 1, WallClock::now(), 1000ms).has_value());
}

// ---------------------------------------------------------- checkpoint ----

FleetCheckpoint sample_checkpoint() {
  FleetCheckpoint checkpoint;
  checkpoint.fingerprint = 0xFEEDFACE;
  checkpoint.trial_count = 8;
  TrialOutcome done;
  done.spec = {2, 0, 2, 0xABCD, sim::Duration{1'000}};
  done.status = TrialStatus::kCompleted;
  done.stop_reason = fuzzer::StopReason::kFailureDetected;
  done.frames_sent = 55;
  done.sim_seconds = 2.5;
  done.time_to_failure = 0.5;
  done.findings = {"unlock \"quoted\"\nnewline", ""};
  TrialOutcome failed;
  failed.spec = {5, 1, 2, 0x1111, sim::Duration{1'000}};
  failed.status = TrialStatus::kFailed;
  failed.error = "world threw: % weird % text";
  checkpoint.completed = {{2, done}, {5, failed}};
  checkpoint.leased = {3, 6, 7};
  return checkpoint;
}

TEST(FleetRemoteCheckpoint, RoundTripsThroughText) {
  const FleetCheckpoint original = sample_checkpoint();
  const std::string text = original.to_string();
  const std::optional<FleetCheckpoint> restored = FleetCheckpoint::from_string(text);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->fingerprint, original.fingerprint);
  EXPECT_EQ(restored->trial_count, original.trial_count);
  EXPECT_EQ(restored->leased, original.leased);
  ASSERT_EQ(restored->completed.size(), original.completed.size());
  for (std::size_t i = 0; i < original.completed.size(); ++i) {
    EXPECT_EQ(restored->completed[i].first, original.completed[i].first);
    // Specs are never stored — a resuming coordinator takes them from the
    // plan — so the round-trip contract covers every other field.
    TrialOutcome expected = original.completed[i].second;
    expected.spec = {};
    EXPECT_TRUE(outcomes_equal(restored->completed[i].second, expected))
        << "trial " << original.completed[i].first;
  }
  EXPECT_EQ(restored->to_string(), text);  // fixed point
}

TEST(FleetRemoteCheckpoint, RejectsMalformedText) {
  const std::string good = sample_checkpoint().to_string();
  EXPECT_TRUE(FleetCheckpoint::from_string(good).has_value());
  EXPECT_FALSE(FleetCheckpoint::from_string("").has_value());
  EXPECT_FALSE(FleetCheckpoint::from_string("ACF-FLEET-CAMPAIGN 999\nend\n").has_value());
  std::string wrong_magic = good;
  wrong_magic[0] = 'X';
  EXPECT_FALSE(FleetCheckpoint::from_string(wrong_magic).has_value());
  std::string truncated = good.substr(0, good.size() / 2);
  EXPECT_FALSE(FleetCheckpoint::from_string(truncated).has_value());
}

TEST(FleetRemoteCheckpoint, RejectsLeasedOverlappingCompleted) {
  FleetCheckpoint checkpoint = sample_checkpoint();
  checkpoint.leased = {2, 6};  // trial 2 is also recorded completed
  EXPECT_FALSE(FleetCheckpoint::from_string(checkpoint.to_string()).has_value());
}

TEST(FleetRemoteCheckpoint, SaveIsAtomicAndLoadRestores) {
  const std::string path =
      testing::TempDir() + "fleet_ck_" + std::to_string(::getpid()) + ".txt";
  const FleetCheckpoint original = sample_checkpoint();
  ASSERT_TRUE(original.save(path));
  const std::optional<FleetCheckpoint> loaded = FleetCheckpoint::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->to_string(), original.to_string());
  EXPECT_FALSE(FleetCheckpoint::load(path + ".missing").has_value());
  std::remove(path.c_str());
}

// ----------------------------------------------------------- reconnect ----

TEST(FleetRemoteReconnect, FirstAttemptIsImmediateAndGiveUpBounds) {
  resilience::ReconnectGate gate({}, {}, /*give_up_after=*/2);
  EXPECT_EQ(gate.next_delay(), std::chrono::milliseconds(0));
  gate.note_failure();
  const auto backoff = gate.next_delay();
  ASSERT_TRUE(backoff.has_value());
  EXPECT_GE(*backoff, std::chrono::milliseconds(1));
  gate.note_failure();
  EXPECT_FALSE(gate.next_delay().has_value());  // exhausted
  EXPECT_EQ(gate.stats().failures, 2u);
}

TEST(FleetRemoteReconnect, SuccessResetsTheGate) {
  resilience::ReconnectGate gate({}, {}, /*give_up_after=*/2);
  (void)gate.next_delay();
  gate.note_failure();
  gate.note_success();
  EXPECT_EQ(gate.next_delay(), std::chrono::milliseconds(0));
  EXPECT_EQ(gate.consecutive_failures(), 0u);
}

TEST(FleetRemoteReconnect, BreakerTripsEscalatesAndRecovers) {
  transport::CircuitBreakerPolicy breaker;
  breaker.failure_threshold = 2;
  breaker.open_duration = std::chrono::milliseconds(40);
  breaker.max_open_duration = std::chrono::milliseconds(100);
  resilience::ReconnectGate gate({}, breaker, 0);
  gate.note_failure();
  EXPECT_EQ(gate.state(), transport::BreakerState::kClosed);
  gate.note_failure();
  EXPECT_EQ(gate.state(), transport::BreakerState::kOpen);
  // Open window: wait it out, half-open for the probe.
  const auto open_wait = gate.next_delay();
  ASSERT_TRUE(open_wait.has_value());
  EXPECT_GE(*open_wait, std::chrono::milliseconds(40));
  EXPECT_EQ(gate.state(), transport::BreakerState::kHalfOpen);
  gate.note_failure();  // probe failed: re-open, escalated window
  EXPECT_EQ(gate.state(), transport::BreakerState::kOpen);
  const auto escalated = gate.next_delay();
  ASSERT_TRUE(escalated.has_value());
  EXPECT_GT(*escalated, *open_wait);
  EXPECT_LE(*escalated, std::chrono::milliseconds(100));
  gate.note_success();
  EXPECT_EQ(gate.state(), transport::BreakerState::kClosed);
  EXPECT_EQ(gate.stats().breaker_trips, 2u);
  EXPECT_EQ(gate.stats().breaker_recoveries, 1u);
}

// ------------------------------------------------------------ progress ----

TEST(FleetRemoteProgress, ToleratesOutOfOrderAndDuplicateCompletions) {
  ProgressReporter progress;
  progress.begin(10, /*already_done=*/4);
  EXPECT_EQ(progress.completed(), 4u);
  TrialOutcome late;
  late.spec.trial_index = 9;  // completion order is not index order
  late.status = TrialStatus::kCompleted;
  TrialOutcome early;
  early.spec.trial_index = 0;
  early.status = TrialStatus::kFailed;
  progress.record(late);
  progress.record(early);
  progress.record_duplicate();
  EXPECT_EQ(progress.completed(), 6u);  // duplicates never advance
  EXPECT_EQ(progress.duplicates(), 1u);
  EXPECT_EQ(progress.errors(), 1u);
  EXPECT_FALSE(progress.finished());
}

TEST(FleetRemoteProgress, LeaseCountersAreFirstClassInTheStatusLine) {
  ProgressReporter progress;
  progress.begin(8);
  EXPECT_EQ(progress.line().find("leases"), std::string::npos);  // local fleet: absent
  progress.set_lease_counters(3, 2, 1);
  EXPECT_EQ(progress.leases_outstanding(), 3u);
  EXPECT_EQ(progress.trials_stolen(), 2u);
  EXPECT_EQ(progress.leases_expired(), 1u);
  const std::string line = progress.line();
  EXPECT_NE(line.find("leases out 3"), std::string::npos) << line;
  EXPECT_NE(line.find("stolen 2"), std::string::npos) << line;
  EXPECT_NE(line.find("expired 1"), std::string::npos) << line;
}

// ---------------------------------------------------------- end-to-end ----

TEST(FleetRemoteEndToEnd, TwoWorkersMatchTheExecutorByteForByte) {
  const TrialPlan plan = fast_plan(4);  // 8 trials
  const std::string reference = jsonl_of(plan, reference_outcomes(plan));

  CoordinatorConfig config;
  config.world_tag = "fast";
  config.progress_period = std::chrono::milliseconds(0);
  config.max_batch = 2;
  Coordinator coordinator(plan, config);

  std::vector<TrialOutcome> outcomes;
  std::thread server([&] { outcomes = coordinator.serve(); });
  auto run_worker = [&](WorkerResult& result) {
    WorkerConfig wc;
    wc.port = coordinator.port();
    wc.threads = 2;
    wc.world_tag = "fast";
    wc.heartbeat_period = std::chrono::milliseconds(200);
    Worker worker(plan, fast_unlock_factory(), wc);
    result = worker.run();
  };
  WorkerResult r1, r2;
  std::thread w1(run_worker, std::ref(r1));
  std::thread w2(run_worker, std::ref(r2));
  w1.join();
  w2.join();
  server.join();

  EXPECT_EQ(r1.exit, WorkerExit::kCampaignComplete);
  EXPECT_EQ(r2.exit, WorkerExit::kCampaignComplete);
  EXPECT_GE(r1.trials_run + r2.trials_run, plan.trial_count());
  EXPECT_EQ(jsonl_of(plan, outcomes), reference);
  EXPECT_EQ(coordinator.stats().workers_connected, 2u);
}

/// The metrics half of the determinism contract: the coordinator's merged
/// fleet-wide view (its own registry + the workers' heartbeat totals) must
/// carry exactly the counters an in-process run produces — same names, same
/// values — and timers must agree on count/sum/min/max.  Quantile accuracy
/// is covered separately (metrics_test); CKMS layouts are order-dependent.
TEST(FleetRemoteEndToEnd, MergedMetricsMatchTheInProcessRegistryExactly) {
  const TrialPlan plan = fast_plan(4);  // 8 trials

  metrics::Registry local;
  ExecutorConfig reference_config;
  reference_config.threads = 2;
  reference_config.progress_period = std::chrono::milliseconds(0);
  reference_config.registry = &local;
  Executor executor(reference_config);
  executor.run(plan, fast_unlock_factory(&local));
  const metrics::RegistrySnapshot reference = local.snapshot();
  ASSERT_FALSE(reference.counters.empty());

  CoordinatorConfig config;
  config.world_tag = "fast";
  config.progress_period = std::chrono::milliseconds(0);
  config.max_batch = 2;
  Coordinator coordinator(plan, config);
  std::thread server([&] { coordinator.serve(); });
  metrics::Registry worker_registries[2];
  auto run_worker = [&](metrics::Registry& registry) {
    WorkerConfig wc;
    wc.port = coordinator.port();
    wc.threads = 2;
    wc.world_tag = "fast";
    wc.heartbeat_period = std::chrono::milliseconds(100);
    wc.registry = &registry;
    Worker worker(plan, fast_unlock_factory(&registry), wc);
    const WorkerResult result = worker.run();
    EXPECT_EQ(result.exit, WorkerExit::kCampaignComplete);
  };
  std::thread w1(run_worker, std::ref(worker_registries[0]));
  std::thread w2(run_worker, std::ref(worker_registries[1]));
  w1.join();
  w2.join();
  server.join();

  const metrics::RegistrySnapshot merged = coordinator.merged_metrics();
  ASSERT_EQ(merged.counters.size(), reference.counters.size());
  for (std::size_t i = 0; i < reference.counters.size(); ++i) {
    EXPECT_EQ(merged.counters[i].name, reference.counters[i].name);
    EXPECT_EQ(merged.counters[i].value, reference.counters[i].value)
        << merged.counters[i].name;
  }
  ASSERT_EQ(merged.timers.size(), reference.timers.size());
  for (std::size_t i = 0; i < reference.timers.size(); ++i) {
    const metrics::TimerSnap& m = merged.timers[i];
    const metrics::TimerSnap& r = reference.timers[i];
    EXPECT_EQ(m.name, r.name);
    EXPECT_EQ(m.count, r.count) << m.name;
    EXPECT_NEAR(m.sum, r.sum, 1e-9 * std::max(1.0, std::abs(r.sum))) << m.name;
    EXPECT_DOUBLE_EQ(m.min, r.min) << m.name;
    EXPECT_DOUBLE_EQ(m.max, r.max) << m.name;
  }
}

/// Raw protocol client: takes a lease, never finishes it, hangs up.
void take_lease_and_vanish(const TrialPlan& plan, std::uint16_t port,
                           const std::string& world_tag) {
  std::optional<util::Fd> fd = util::tcp_connect("127.0.0.1", port);
  ASSERT_TRUE(fd.has_value());
  HelloMsg hello;
  hello.fingerprint = campaign_fingerprint(plan, world_tag);
  hello.capacity = 2;
  hello.worker_name = "vanishing";
  const std::vector<std::uint8_t> frame = frame_message(Message{hello});
  ASSERT_EQ(util::socket_write(fd->get(), frame).bytes, frame.size());
  const std::vector<std::uint8_t> request = frame_message(Message{LeaseRequestMsg{2}});
  ASSERT_EQ(util::socket_write(fd->get(), request).bytes, request.size());

  // Read (blocking socket) until Welcome then LeaseGrant arrive.
  FrameReader reader;
  bool granted = false;
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (!granted && std::chrono::steady_clock::now() < deadline) {
    std::uint8_t chunk[512];
    const auto read = util::socket_read(fd->get(), chunk);
    ASSERT_EQ(read.status, util::IoStatus::kOk);
    ASSERT_TRUE(reader.feed(std::span<const std::uint8_t>(chunk, read.bytes)));
    while (auto payload = reader.next()) {
      const auto message = decode(*payload);
      ASSERT_TRUE(message.has_value());
      if (std::holds_alternative<LeaseGrantMsg>(*message)) granted = true;
    }
  }
  ASSERT_TRUE(granted);
  fd.reset();  // abrupt close: two trials die with this connection
}

TEST(FleetRemoteEndToEnd, DisconnectedWorkersTrialsAreStolenAndCampaignCompletes) {
  const TrialPlan plan = fast_plan(2);  // 4 trials
  const std::string reference = jsonl_of(plan, reference_outcomes(plan));

  CoordinatorConfig config;
  config.world_tag = "fast";
  config.progress_period = std::chrono::milliseconds(0);
  config.max_batch = 2;
  Coordinator coordinator(plan, config);
  std::vector<TrialOutcome> outcomes;
  ProgressReporter progress;
  std::thread server([&] { outcomes = coordinator.serve(&progress); });

  take_lease_and_vanish(plan, coordinator.port(), "fast");

  WorkerConfig wc;
  wc.port = coordinator.port();
  wc.threads = 2;
  wc.world_tag = "fast";
  Worker worker(plan, fast_unlock_factory(), wc);
  const WorkerResult result = worker.run();
  server.join();

  EXPECT_EQ(result.exit, WorkerExit::kCampaignComplete);
  EXPECT_EQ(jsonl_of(plan, outcomes), reference);
  const CoordinatorStats& stats = coordinator.stats();
  EXPECT_EQ(stats.leases.leases_released, 1u);   // the vanished connection
  EXPECT_EQ(stats.leases.trials_stolen, 2u);     // its batch, re-issued
  EXPECT_EQ(progress.trials_stolen(), 2u);       // surfaced as a counter
  EXPECT_EQ(progress.completed(), plan.trial_count());
}

TEST(FleetRemoteEndToEnd, WorkerWithWrongCampaignIsRejected) {
  const TrialPlan plan = fast_plan(1);
  CoordinatorConfig config;
  config.world_tag = "fast";
  config.progress_period = std::chrono::milliseconds(0);
  Coordinator coordinator(plan, config);
  std::vector<TrialOutcome> outcomes;
  std::thread server([&] { outcomes = coordinator.serve(); });

  const TrialPlan other({"weak", "hardened"}, 1, 0xD1FFULL);  // different seed
  WorkerConfig wc;
  wc.port = coordinator.port();
  wc.world_tag = "fast";
  Worker mismatched(other, fast_unlock_factory(), wc);
  const WorkerResult rejected = mismatched.run();
  EXPECT_EQ(rejected.exit, WorkerExit::kRejected);

  WorkerConfig ok = wc;
  Worker good(plan, fast_unlock_factory(), ok);
  EXPECT_EQ(good.run().exit, WorkerExit::kCampaignComplete);
  server.join();
  EXPECT_EQ(coordinator.stats().workers_rejected, 1u);
}

TEST(FleetRemoteEndToEnd, WorkerGivesUpWhenNoCoordinatorExists) {
  const TrialPlan plan = fast_plan(1);
  WorkerConfig wc;
  wc.port = 1;  // privileged port nobody binds in the test environment
  wc.world_tag = "fast";
  wc.give_up_after = 3;
  Worker worker(plan, fast_unlock_factory(), wc);
  const WorkerResult result = worker.run();
  EXPECT_EQ(result.exit, WorkerExit::kGaveUp);
  EXPECT_EQ(result.reconnect.failures, 3u);
  EXPECT_EQ(result.trials_run, 0u);
}

// ------------------------------------------------- process-level crash ----

std::string temp_path(const std::string& stem) {
  return testing::TempDir() + stem + "_" + std::to_string(::getpid());
}

int run_fleet_bin(const std::string& args) {
  const std::string command = std::string(ACF_FLEET_RUN_BIN) + " " + args +
                              " > /dev/null 2> /dev/null";
  const int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// The acceptance contract: a campaign whose worker process is SIGKILLed
/// mid-run completes with byte-identical JSONL to an uninterrupted fleet.
TEST(FleetRemoteProcess, SigkilledWorkerDoesNotChangeTheCampaignOutput) {
  const TrialPlan plan = fast_plan(4);
  const std::string reference = jsonl_of(plan, reference_outcomes(plan));
  const std::string jsonl = temp_path("kill") + ".jsonl";
  const int exit_code = run_fleet_bin(
      "--fast-world --runs 4 --threads 2 --serve 0 --workers 3 "
      "--kill-worker-after 1 --jsonl " + jsonl);
  EXPECT_EQ(exit_code, 0);
  EXPECT_EQ(slurp(jsonl), reference);
  std::remove(jsonl.c_str());
}

/// And the coordinator side: pause after N trials (checkpoint), restart,
/// resume — still byte-identical, without recomputing finished trials.
TEST(FleetRemoteProcess, CoordinatorRestartResumesFromCheckpoint) {
  const TrialPlan plan = fast_plan(4);
  const std::string reference = jsonl_of(plan, reference_outcomes(plan));
  const std::string checkpoint = temp_path("resume") + ".ck";
  const std::string jsonl = temp_path("resume") + ".jsonl";

  const int pause_exit = run_fleet_bin(
      "--fast-world --runs 4 --threads 2 --serve 0 --workers 2 --stop-after 3 "
      "--checkpoint " + checkpoint);
  EXPECT_EQ(pause_exit, 0);
  const std::optional<FleetCheckpoint> saved = FleetCheckpoint::load(checkpoint);
  ASSERT_TRUE(saved.has_value());
  EXPECT_GE(saved->completed.size(), 3u);
  EXPECT_LT(saved->completed.size(), plan.trial_count());

  const int resume_exit = run_fleet_bin(
      "--fast-world --runs 4 --threads 2 --serve 0 --workers 2 "
      "--checkpoint " + checkpoint + " --jsonl " + jsonl);
  EXPECT_EQ(resume_exit, 0);
  EXPECT_EQ(slurp(jsonl), reference);
  std::remove(checkpoint.c_str());
  std::remove(jsonl.c_str());
}

}  // namespace
}  // namespace acf::fleet::remote
