#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "analysis/byte_stats.hpp"
#include "fuzzer/campaign.hpp"
#include "fuzzer/generator.hpp"
#include "fuzzer/mutator.hpp"
#include "oracle/vehicle_oracles.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "vehicle/vehicle.hpp"

namespace acf::fuzzer {
namespace {

// ------------------------------------------------------------- config -----

TEST(FuzzConfig, PaperCombinatorics) {
  // §V: "A standard CAN packet with a 11-bit id and a one byte payload has
  // half a million packet combinations (2^19)."
  FuzzConfig one_byte;
  one_byte.dlc_min = 1;
  one_byte.dlc_max = 1;
  EXPECT_EQ(one_byte.frame_space(), 1ULL << 19);
  // "At a 1ms transmission frequency ... over eight minutes."
  const double minutes = sim::to_seconds(one_byte.exhaust_time()) / 60.0;
  EXPECT_NEAR(minutes, 8.7, 0.1);
  // "Add another data byte and all combinations transmit over 1.5 days."
  FuzzConfig two_bytes;
  two_bytes.dlc_min = 2;
  two_bytes.dlc_max = 2;
  EXPECT_EQ(two_bytes.frame_space(), 2048ULL * 65536);
  EXPECT_NEAR(sim::to_seconds(two_bytes.exhaust_time()) / 86400.0, 1.55, 0.05);
}

TEST(FuzzConfig, FullSpaceSaturates) {
  const FuzzConfig full = FuzzConfig::full_random();
  EXPECT_EQ(full.id_space(), 2048u);
  EXPECT_EQ(full.frame_space(), std::numeric_limits<std::uint64_t>::max());
}

TEST(FuzzConfig, TargetedIdSet) {
  const FuzzConfig targeted = FuzzConfig::targeted({0x215, 0x216, 0x217});
  EXPECT_EQ(targeted.id_space(), 3u);
  EXPECT_TRUE(targeted.contains(can::CanFrame::data_std(0x215, {1})));
  EXPECT_FALSE(targeted.contains(can::CanFrame::data_std(0x218, {1})));
}

TEST(FuzzConfig, AroundIdClampsToStandardRange) {
  const FuzzConfig low = FuzzConfig::around_id(0x002, 8);
  EXPECT_EQ(low.id_min, 0u);
  EXPECT_EQ(low.id_max, 0x00Au);
  const FuzzConfig high = FuzzConfig::around_id(0x7FE, 8);
  EXPECT_EQ(high.id_max, can::kMaxStandardId);
}

TEST(FuzzConfig, ContainsChecksEveryDimension) {
  FuzzConfig config;
  config.id_min = 0x100;
  config.id_max = 0x1FF;
  config.dlc_min = 2;
  config.dlc_max = 4;
  config.byte_ranges[0] = {0x10, 0x20};
  EXPECT_TRUE(config.contains(can::CanFrame::data_std(0x150, {0x15, 0x00})));
  EXPECT_FALSE(config.contains(can::CanFrame::data_std(0x099, {0x15, 0x00})));  // id
  EXPECT_FALSE(config.contains(can::CanFrame::data_std(0x150, {0x15})));        // dlc
  EXPECT_FALSE(config.contains(can::CanFrame::data_std(0x150, {0x30, 0x00})));  // byte 0
}

TEST(FuzzConfig, DescribeMentionsKeyKnobs) {
  FuzzConfig config = FuzzConfig::targeted({1, 2});
  const std::string text = config.describe();
  EXPECT_NE(text.find("2 explicit ids"), std::string::npos);
  EXPECT_NE(text.find("1 ms"), std::string::npos);
}

// ------------------------------------------------------------ random ------

TEST(RandomGenerator, DeterministicInSeed) {
  const FuzzConfig config = FuzzConfig::full_random(1234);
  RandomGenerator a(config);
  RandomGenerator b(config);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(*a.next(), *b.next()) << i;
}

TEST(RandomGenerator, RewindRestartsStream) {
  RandomGenerator gen(FuzzConfig::full_random(9));
  std::vector<can::CanFrame> first;
  for (int i = 0; i < 50; ++i) first.push_back(*gen.next());
  gen.rewind();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(*gen.next(), first[static_cast<std::size_t>(i)]);
}

TEST(RandomGenerator, EveryFrameInsideConfigSpace) {
  FuzzConfig config;
  config.id_set = {0x100, 0x215};
  config.dlc_min = 1;
  config.dlc_max = 4;
  config.byte_ranges[0] = {0x40, 0x4F};
  config.seed = 31;
  RandomGenerator gen(config);
  for (int i = 0; i < 2000; ++i) {
    const auto frame = gen.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_TRUE(config.contains(*frame)) << frame->to_string();
  }
  EXPECT_EQ(gen.generated(), 2000u);
}

TEST(RandomGenerator, ByteValuesUniformMeanNear127) {
  // The Fig. 5 property: uniform generation has a flat per-position mean of
  // ~127.5 (the paper quotes "overall mean value of 127").
  RandomGenerator gen(FuzzConfig::full_random(0xF165));
  analysis::BytePositionStats stats;
  for (int i = 0; i < 66144; ++i) stats.add(*gen.next());
  EXPECT_NEAR(stats.overall_mean(), 127.5, 1.0);
  // Byte position 7 only appears in dlc==8 frames (~7.3k samples), so its
  // mean has stderr ~0.9; 3.5 is ~4 sigma across the eight positions.
  EXPECT_LT(stats.flatness(), 3.5);
}

TEST(RandomGenerator, IdsCoverTheSpace) {
  FuzzConfig config;
  config.id_min = 0;
  config.id_max = 15;
  RandomGenerator gen(config);
  std::set<std::uint32_t> ids;
  for (int i = 0; i < 2000; ++i) ids.insert(gen.next()->id());
  EXPECT_EQ(ids.size(), 16u);
}

TEST(RandomGenerator, FrameAtReplaysExactIndex) {
  const FuzzConfig config = FuzzConfig::full_random(555);
  RandomGenerator gen(config);
  std::vector<can::CanFrame> stream;
  for (int i = 0; i < 100; ++i) stream.push_back(*gen.next());
  EXPECT_EQ(RandomGenerator::frame_at(config, 0), stream[0]);
  EXPECT_EQ(RandomGenerator::frame_at(config, 42), stream[42]);
  EXPECT_EQ(RandomGenerator::frame_at(config, 99), stream[99]);
}

TEST(RandomGenerator, FdModeProducesValidFdFrames) {
  FuzzConfig config;
  config.fd_mode = true;
  config.dlc_min = 0;
  config.dlc_max = 15;
  RandomGenerator gen(config);
  bool saw_long_payload = false;
  for (int i = 0; i < 500; ++i) {
    const auto frame = gen.next();
    ASSERT_TRUE(frame->is_fd());
    EXPECT_TRUE(can::is_valid_fd_length(frame->length()));
    if (frame->length() > 8) saw_long_payload = true;
  }
  EXPECT_TRUE(saw_long_payload);
}

// ------------------------------------------------------------- sweep ------

TEST(SweepGenerator, EnumeratesExactlyTheSpace) {
  FuzzConfig config;
  config.id_min = 0x10;
  config.id_max = 0x12;           // 3 ids
  config.dlc_min = 0;
  config.dlc_max = 1;             // dlc 0 (1 combo) + dlc 1 (4 combos)
  config.byte_ranges[0] = {0, 3};
  SweepGenerator gen(config);
  EXPECT_EQ(gen.space(), 3u * (1 + 4));
  std::set<std::string> seen;
  while (const auto frame = gen.next()) seen.insert(frame->to_string());
  EXPECT_EQ(seen.size(), 15u);          // all distinct
  EXPECT_EQ(gen.generated(), 15u);
  EXPECT_FALSE(gen.next().has_value());  // stays exhausted
  gen.rewind();
  EXPECT_TRUE(gen.next().has_value());
}

TEST(SweepGenerator, CoversPaperExampleSpaceSize) {
  FuzzConfig config;
  config.id_min = 0;
  config.id_max = 7;  // 8 ids as a scaled-down 2^19 check
  config.dlc_min = 1;
  config.dlc_max = 1;
  SweepGenerator gen(config);
  std::uint64_t count = 0;
  while (gen.next()) ++count;
  EXPECT_EQ(count, 8u * 256u);
}

TEST(SweepGenerator, HonoursByteRangesPerPosition) {
  FuzzConfig config;
  config.id_min = config.id_max = 0x100;
  config.dlc_min = config.dlc_max = 2;
  config.byte_ranges[0] = {0xA0, 0xA1};
  config.byte_ranges[1] = {0x00, 0x02};
  SweepGenerator gen(config);
  std::uint64_t count = 0;
  while (const auto frame = gen.next()) {
    EXPECT_TRUE(config.contains(*frame));
    ++count;
  }
  EXPECT_EQ(count, 2u * 3u);
}

// ----------------------------------------------------------- bit flip -----

TEST(BitFlipGenerator, SingleBitVariations) {
  const auto base = can::CanFrame::data_std(0x215, {0x20, 0x5F});
  BitFlipGenerator gen(base, {0xFF, 0xFF});
  EXPECT_EQ(gen.positions(), 16u);
  int count = 0;
  while (const auto frame = gen.next()) {
    ++count;
    EXPECT_EQ(frame->id(), base.id());
    // Exactly one bit differs from the base payload.
    int diff_bits = 0;
    for (std::size_t i = 0; i < 2; ++i) {
      diff_bits += std::popcount(
          static_cast<unsigned>(frame->payload()[i] ^ base.payload()[i]));
    }
    EXPECT_EQ(diff_bits, 1);
  }
  EXPECT_EQ(count, 16);
}

TEST(BitFlipGenerator, MaskRestrictsPositions) {
  const auto base = can::CanFrame::data_std(0x100, {0x00, 0x00});
  BitFlipGenerator gen(base, {0x01, 0x80});  // one bit per byte
  EXPECT_EQ(gen.positions(), 2u);
}

TEST(BitFlipGenerator, IdBitsIncluded) {
  const auto base = can::CanFrame::data_std(0x100, {0xAA});
  BitFlipGenerator gen(base, {0xFF}, /*include_id_bits=*/true);
  EXPECT_EQ(gen.positions(), 11u + 8u);
  std::set<std::uint32_t> ids;
  while (const auto frame = gen.next()) ids.insert(frame->id());
  EXPECT_EQ(ids.size(), 12u);  // 11 one-bit id variants + the base id
}

// ----------------------------------------------------------- mutation -----

TEST(MutationGenerator, StaysNearCorpus) {
  std::vector<can::CanFrame> corpus = {can::CanFrame::data_std(0x215, {0x10, 0x5F, 1, 0, 0, 1, 0x20})};
  MutationPlan plan;
  plan.min_mutations = 1;
  plan.max_mutations = 1;
  plan.id_radius = 4;
  MutationGenerator gen(corpus, plan);
  for (int i = 0; i < 1000; ++i) {
    const auto frame = gen.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_GE(frame->id() + 4, 0x215u);
    EXPECT_LE(frame->id(), 0x215u + 4);
  }
}

TEST(MutationGenerator, DeterministicAndRewindable) {
  std::vector<can::CanFrame> corpus = {can::CanFrame::data_std(0x100, {1, 2, 3, 4})};
  MutationGenerator a(corpus);
  MutationGenerator b(corpus);
  std::vector<can::CanFrame> first;
  for (int i = 0; i < 100; ++i) {
    const auto frame = *a.next();
    EXPECT_EQ(frame, *b.next());
    first.push_back(frame);
  }
  a.rewind();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(*a.next(), first[static_cast<std::size_t>(i)]);
}

TEST(MutationGenerator, EmptyCorpusSafe) {
  MutationGenerator gen({});
  EXPECT_TRUE(gen.next().has_value());
}

TEST(Mutations, OperatorsPreserveFrameValidity) {
  util::Rng rng(8);
  const auto base = can::CanFrame::data_std(0x3AB, {9, 8, 7});
  for (int i = 0; i < 200; ++i) {
    EXPECT_LE(mutations::flip_random_bit(base, rng).id(), can::kMaxStandardId);
    EXPECT_LE(mutations::jitter_id(base, rng, 100).id(), can::kMaxStandardId);
    EXPECT_LE(mutations::resize_payload(base, rng).length(), can::kMaxClassicPayload);
    const auto randomized = mutations::randomize_byte(base, rng);
    EXPECT_EQ(randomized.length(), base.length());
  }
}

TEST(Mutations, EmptyPayloadHandled) {
  util::Rng rng(8);
  const auto empty = can::CanFrame::data_std(0x1, {});
  EXPECT_EQ(mutations::flip_random_bit(empty, rng), empty);
  EXPECT_EQ(mutations::randomize_byte(empty, rng), empty);
}

// ----------------------------------------------------------- campaign -----

class CampaignTest : public ::testing::Test {
 protected:
  sim::Scheduler scheduler;
  can::VirtualBus bus{scheduler};
  transport::VirtualBusTransport port{bus, "fuzzer"};
};

TEST_F(CampaignTest, StopsAtDurationLimit) {
  RandomGenerator gen(FuzzConfig::full_random(1));
  CampaignConfig config;
  config.max_duration = std::chrono::seconds(2);
  FuzzCampaign campaign(scheduler, port, gen, nullptr, config);
  const auto& result = campaign.run();
  EXPECT_EQ(result.reason, StopReason::kDurationElapsed);
  // One frame per millisecond for two seconds.
  EXPECT_NEAR(static_cast<double>(result.frames_sent), 2000.0, 5.0);
  EXPECT_TRUE(campaign.finished());
}

TEST_F(CampaignTest, StopsAtFrameLimit) {
  RandomGenerator gen(FuzzConfig::full_random(2));
  CampaignConfig config;
  config.max_frames = 100;
  FuzzCampaign campaign(scheduler, port, gen, nullptr, config);
  const auto& result = campaign.run();
  EXPECT_EQ(result.reason, StopReason::kFrameLimit);
  EXPECT_EQ(result.frames_sent, 100u);
}

TEST_F(CampaignTest, StopsWhenGeneratorExhausted) {
  FuzzConfig config;
  config.id_min = config.id_max = 0x10;
  config.dlc_min = config.dlc_max = 0;
  SweepGenerator gen(config);  // a single frame
  FuzzCampaign campaign(scheduler, port, gen, nullptr, CampaignConfig{});
  const auto& result = campaign.run();
  EXPECT_EQ(result.reason, StopReason::kGeneratorExhausted);
  EXPECT_EQ(result.frames_sent, 1u);
}

TEST_F(CampaignTest, UserStop) {
  RandomGenerator gen(FuzzConfig::full_random(3));
  FuzzCampaign campaign(scheduler, port, gen, nullptr, CampaignConfig{});
  campaign.start();
  scheduler.run_for(std::chrono::milliseconds(50));
  campaign.stop();
  EXPECT_EQ(campaign.result().reason, StopReason::kStoppedByUser);
  const auto sent = campaign.result().frames_sent;
  scheduler.run_for(std::chrono::milliseconds(50));
  EXPECT_EQ(campaign.result().frames_sent, sent);  // tx really stopped
}

TEST_F(CampaignTest, RespectsTxPeriod) {
  RandomGenerator gen(FuzzConfig::full_random(4));
  CampaignConfig config;
  config.tx_period = std::chrono::milliseconds(10);
  config.max_duration = std::chrono::seconds(1);
  FuzzCampaign campaign(scheduler, port, gen, nullptr, config);
  const auto& result = campaign.run();
  EXPECT_NEAR(static_cast<double>(result.frames_sent), 100.0, 2.0);
}

TEST_F(CampaignTest, StopsOnOracleFailure) {
  vehicle::BodyControlModule bcm(scheduler, bus,
                                 vehicle::UnlockPredicate::single_id_and_byte());
  oracle::CompositeOracle oracles;
  oracles.add(std::make_unique<oracle::UnlockOracle>(bus, &bcm));

  // Target exactly the command id so the hit lands fast.
  FuzzConfig fuzz_config = FuzzConfig::targeted({dbc::kMsgBodyCommand}, 77);
  RandomGenerator gen(fuzz_config);
  CampaignConfig config;
  config.max_duration = std::chrono::hours(2);
  config.oracle_period = std::chrono::milliseconds(1);
  FuzzCampaign campaign(scheduler, port, gen, &oracles, config);
  const auto& result = campaign.run();
  EXPECT_EQ(result.reason, StopReason::kFailureDetected);
  ASSERT_TRUE(result.any_failure());
  const Finding* failure = result.first_failure();
  EXPECT_EQ(failure->observation.verdict, oracle::Verdict::kFailure);
  EXPECT_FALSE(failure->recent_frames.empty());
  EXPECT_EQ(failure->generator, "random");
  // The unlock frame is inside the recorded window.
  bool unlock_in_window = false;
  for (const auto& entry : failure->recent_frames) {
    if (entry.frame.id() == dbc::kMsgBodyCommand && entry.frame.length() >= 1 &&
        entry.frame.payload()[0] == dbc::kCmdUnlock) {
      unlock_in_window = true;
    }
  }
  EXPECT_TRUE(unlock_in_window);
  EXPECT_TRUE(bcm.unlocked());
}

TEST_F(CampaignTest, ContinuesPastFailureWhenConfigured) {
  vehicle::BodyControlModule bcm(scheduler, bus,
                                 vehicle::UnlockPredicate::single_id_and_byte());
  oracle::CompositeOracle oracles;
  oracles.add(std::make_unique<oracle::UnlockOracle>(bus, &bcm));
  RandomGenerator gen(FuzzConfig::targeted({dbc::kMsgBodyCommand}, 78));
  CampaignConfig config;
  config.max_duration = std::chrono::seconds(30);
  config.stop_on_failure = false;
  FuzzCampaign campaign(scheduler, port, gen, &oracles, config);
  const auto& result = campaign.run();
  EXPECT_EQ(result.reason, StopReason::kDurationElapsed);
}

TEST_F(CampaignTest, FindingCallbackInvoked) {
  vehicle::BodyControlModule bcm(scheduler, bus,
                                 vehicle::UnlockPredicate::single_id_and_byte());
  oracle::CompositeOracle oracles;
  oracles.add(std::make_unique<oracle::UnlockOracle>(bus, &bcm));
  RandomGenerator gen(FuzzConfig::targeted({dbc::kMsgBodyCommand}, 79));
  CampaignConfig config;
  config.max_duration = std::chrono::hours(1);
  FuzzCampaign campaign(scheduler, port, gen, &oracles, config);
  int callbacks = 0;
  campaign.set_on_finding([&](const Finding& finding) {
    ++callbacks;
    EXPECT_FALSE(finding.summary().empty());
  });
  campaign.run();
  EXPECT_GE(callbacks, 1);
}

TEST_F(CampaignTest, SendFailuresCounted) {
  // A listen-only endpoint cannot transmit; every send fails.
  transport::VirtualBusTransport tap(bus, "tap", {}, /*listen_only=*/true);
  RandomGenerator gen(FuzzConfig::full_random(5));
  CampaignConfig config;
  config.max_duration = std::chrono::milliseconds(100);
  FuzzCampaign campaign(scheduler, tap, gen, nullptr, config);
  const auto& result = campaign.run();
  EXPECT_EQ(result.frames_sent, 0u);
  EXPECT_NEAR(static_cast<double>(result.send_failures), 100.0, 2.0);
}

TEST(Finding, SummaryIsInformative) {
  Finding finding;
  finding.observation = {oracle::Verdict::kFailure, "unlock activated",
                         std::chrono::milliseconds(431'000)};
  finding.frames_sent = 431'000;
  finding.recent_frames.push_back({can::CanFrame::data_std(0x215, {0x20}), {}});
  const std::string summary = finding.summary();
  EXPECT_NE(summary.find("failure"), std::string::npos);
  EXPECT_NE(summary.find("431000"), std::string::npos);
  EXPECT_NE(summary.find("215#20"), std::string::npos);
}

}  // namespace
}  // namespace acf::fuzzer
