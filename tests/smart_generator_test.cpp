#include <gtest/gtest.h>

#include <map>

#include "fuzzer/campaign.hpp"
#include "fuzzer/smart_generator.hpp"
#include "oracle/vehicle_oracles.hpp"
#include "sim/scheduler.hpp"
#include "trace/asc_log.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "util/rng.hpp"
#include "vehicle/vehicle.hpp"

namespace acf::fuzzer {
namespace {

// ------------------------------------------------------------ boundary ----

TEST(BoundaryGenerator, BiasesTowardBoundaryValues) {
  BoundaryPlan plan;
  plan.boundary_bias = 0.8;
  BoundaryGenerator gen(FuzzConfig::full_random(), plan);
  std::map<std::uint8_t, int> histogram;
  int bytes_seen = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto frame = gen.next();
    for (std::uint8_t byte : frame->payload()) {
      ++histogram[byte];
      ++bytes_seen;
    }
  }
  int boundary_hits = 0;
  for (int b : {0x00, 0x01, 0x7F, 0x80, 0xFE, 0xFF}) {
    boundary_hits += histogram[static_cast<std::uint8_t>(b)];
  }
  // ~80 % boundary + uniform leakage; far above the uniform 6/256 = 2.3 %.
  EXPECT_GT(static_cast<double>(boundary_hits) / bytes_seen, 0.5);
}

TEST(BoundaryGenerator, DictionaryValuesAppear) {
  BoundaryPlan plan;
  plan.dictionary = {0x20, 0x10};  // the harvested lock/unlock command bytes
  BoundaryGenerator gen(FuzzConfig::full_random(), plan);
  int dictionary_hits = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto frame = gen.next();
    for (std::uint8_t byte : frame->payload()) {
      if (byte == 0x20 || byte == 0x10) ++dictionary_hits;
    }
  }
  EXPECT_GT(dictionary_hits, 500);
}

TEST(BoundaryGenerator, RespectsConfigSpace) {
  FuzzConfig config;
  config.id_set = {0x215};
  config.dlc_min = 2;
  config.dlc_max = 4;
  config.byte_ranges[0] = {0x10, 0x30};
  BoundaryGenerator gen(config, {});
  for (int i = 0; i < 2000; ++i) {
    const auto frame = gen.next();
    EXPECT_TRUE(config.contains(*frame)) << frame->to_string();
  }
}

TEST(BoundaryGenerator, DeterministicAndRewindable) {
  BoundaryGenerator a(FuzzConfig::full_random(), {});
  BoundaryGenerator b(FuzzConfig::full_random(), {});
  std::vector<can::CanFrame> first;
  for (int i = 0; i < 100; ++i) {
    const auto frame = *a.next();
    EXPECT_EQ(frame, *b.next());
    first.push_back(frame);
  }
  a.rewind();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(*a.next(), first[static_cast<std::size_t>(i)]);
}

TEST(BoundaryGenerator, FindsUnlockFasterThanUniform) {
  // The harvested dictionary (command byte 0x20) turns the 1/256 byte-0
  // factor into ~1/10: boundary fuzzing reaches the unlock far sooner.
  auto time_to_unlock = [](FrameGenerator& gen) {
    sim::Scheduler scheduler;
    vehicle::UnlockTestbench bench(scheduler);
    transport::VirtualBusTransport attacker(bench.bus(), "attacker");
    oracle::CompositeOracle oracles;
    oracles.add(std::make_unique<oracle::UnlockOracle>(bench.bus(), &bench.bcm()));
    CampaignConfig config;
    config.max_duration = std::chrono::hours(4);
    config.oracle_period = std::chrono::milliseconds(10);
    FuzzCampaign campaign(scheduler, attacker, gen, &oracles, config);
    const auto& result = campaign.run();
    return result.any_failure()
               ? sim::to_seconds(result.first_failure()->observation.time)
               : 1e18;
  };
  double uniform_total = 0.0;
  double boundary_total = 0.0;
  for (std::uint64_t trial = 0; trial < 3; ++trial) {
    RandomGenerator uniform(FuzzConfig::full_random(40 + trial));
    BoundaryPlan plan;
    plan.dictionary = {0x20, 0x10};
    plan.seed = 50 + trial;
    BoundaryGenerator boundary(FuzzConfig::full_random(), plan);
    uniform_total += time_to_unlock(uniform);
    boundary_total += time_to_unlock(boundary);
  }
  EXPECT_LT(boundary_total, uniform_total);
}

// ------------------------------------------------------------ feedback ----

TEST(FeedbackGenerator, RewardShiftsIdDistribution) {
  FuzzConfig config;
  config.id_min = 0;
  config.id_max = 63;
  FeedbackPlan plan;
  plan.explore_fraction = 0.1;
  FeedbackGenerator gen(config, plan);
  // Before reward: roughly uniform.
  std::map<std::uint32_t, int> before;
  for (int i = 0; i < 6400; ++i) ++before[gen.next()->id()];
  EXPECT_LT(before[0x20], 6400 / 64 * 4);

  for (int i = 0; i < 3; ++i) gen.reward(0x20);
  EXPECT_GT(gen.weight_of(0x20), 100.0);
  std::map<std::uint32_t, int> after;
  for (int i = 0; i < 6400; ++i) ++after[gen.next()->id()];
  // 512/(63+512) ≈ 89 % of exploit draws hit the hot id.
  EXPECT_GT(after[0x20], 3000);
  const auto hot = gen.hot_ids();
  ASSERT_EQ(hot.size(), 1u);
  EXPECT_EQ(hot[0], 0x20u);
}

TEST(FeedbackGenerator, WeightClampAndOutOfSpaceRewardIgnored) {
  FuzzConfig config;
  config.id_min = 0x100;
  config.id_max = 0x10F;
  FeedbackPlan plan;
  FeedbackGenerator gen(config, plan);
  for (int i = 0; i < 100; ++i) gen.reward(0x100);
  EXPECT_DOUBLE_EQ(gen.weight_of(0x100), plan.max_weight);
  gen.reward(0x500);  // outside: no effect, no crash
  EXPECT_DOUBLE_EQ(gen.weight_of(0x500), 0.0);
}

TEST(FeedbackGenerator, RewindResetsWeights) {
  FeedbackGenerator gen(FuzzConfig::full_random(), {});
  gen.reward(0x215);
  EXPECT_GT(gen.weight_of(0x215), 1.0);
  gen.rewind();
  EXPECT_DOUBLE_EQ(gen.weight_of(0x215), 1.0);
  EXPECT_TRUE(gen.hot_ids().empty());
}

TEST(FeedbackGenerator, ConvergesOntoReactiveIdInClosedLoop) {
  // Closed loop: reward the ids in the finding window each time the
  // plausibility oracle fires; the generator should converge onto the
  // signal-carrying ids.
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  vehicle::InstrumentCluster cluster(scheduler, bus);
  transport::VirtualBusTransport port(bus, "fuzzer");

  oracle::CompositeOracle oracles;
  oracles.add(std::make_unique<oracle::SignalPlausibilityOracle>(
      bus, dbc::target_vehicle_database()));

  FeedbackGenerator gen(FuzzConfig::full_random(0xFB));
  CampaignConfig config;
  config.max_duration = std::chrono::seconds(120);
  config.stop_on_failure = false;
  config.oracle_period = std::chrono::milliseconds(2);
  FuzzCampaign campaign(scheduler, port, gen, &oracles, config);
  campaign.set_on_finding([&gen](const Finding& finding) {
    for (const auto& entry : finding.recent_frames) gen.reward(entry.frame.id());
  });
  campaign.run();

  const auto hot = gen.hot_ids(20);
  ASSERT_FALSE(hot.empty());
  // The hottest ids should include real signal-carrying message ids.
  const auto db_ids = dbc::target_vehicle_database().ids();
  int db_hits = 0;
  for (std::uint32_t id : hot) {
    if (std::find(db_ids.begin(), db_ids.end(), id) != db_ids.end()) ++db_hits;
  }
  EXPECT_GT(db_hits, 0);
}

// --------------------------------------------------------------- ASC ------

TEST(AscLog, LineRoundTrip) {
  const trace::TimestampedFrame entry{can::CanFrame::data_std(0x43A, {0x1C, 0x21}),
                                      sim::SimTime{5'328'009'000}};
  const std::string line = trace::to_asc_line(entry);
  EXPECT_NE(line.find("43A"), std::string::npos);
  EXPECT_NE(line.find("d 2 1C 21"), std::string::npos);
  const auto parsed = trace::parse_asc_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->frame, entry.frame);
  EXPECT_NEAR(sim::to_seconds(parsed->time), 5.328009, 1e-6);
}

TEST(AscLog, ExtendedAndRemoteFrames) {
  const trace::TimestampedFrame ext{
      *can::CanFrame::data(0x1ABCDEF3, {0xDE}, can::IdFormat::kExtended), sim::SimTime{0}};
  auto parsed = trace::parse_asc_line(trace::to_asc_line(ext));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->frame, ext.frame);

  const trace::TimestampedFrame remote{*can::CanFrame::remote(0x321, 4), sim::SimTime{0}};
  parsed = trace::parse_asc_line(trace::to_asc_line(remote));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->frame, remote.frame);
}

TEST(AscLog, FileRoundTripSkipsHeaders) {
  util::Rng rng(0xA5C);
  std::vector<trace::TimestampedFrame> frames;
  for (int i = 0; i < 100; ++i) {
    std::vector<std::uint8_t> payload(rng.next_below(9));
    rng.fill(payload);
    frames.push_back({*can::CanFrame::data(
                          static_cast<std::uint32_t>(rng.next_below(2048)), payload),
                      sim::SimTime{i * 1'000'000}});
  }
  std::stringstream stream;
  trace::write_asc(stream, frames);
  std::vector<std::string> errors;
  const auto loaded = trace::read_asc(stream, &errors);
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(loaded.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) EXPECT_EQ(loaded[i].frame, frames[i].frame);
}

TEST(AscLog, MalformedLinesRejected) {
  EXPECT_FALSE(trace::parse_asc_line("").has_value());
  EXPECT_FALSE(trace::parse_asc_line("date Sat Jan 1").has_value());
  EXPECT_FALSE(trace::parse_asc_line("0.1 1 43A Rx d 9 00").has_value());   // dlc > 8
  EXPECT_FALSE(trace::parse_asc_line("0.1 1 43A Rx d 2 00").has_value());   // short data
  EXPECT_FALSE(trace::parse_asc_line("0.1 1 ZZZ Rx d 1 00").has_value());   // bad id
  EXPECT_FALSE(trace::parse_asc_line("0.1 1 43A Qx d 1 00").has_value());   // bad dir
}

TEST(AscLog, HostileTimestampsRejectedNotMisread) {
  // Regression: the stamp was read as a double and cast to int64 nanoseconds,
  // so "inf" / 1e308 / 20-digit seconds invoked UB instead of failing.
  EXPECT_FALSE(trace::parse_asc_line("inf 1 43A Rx d 1 00").has_value());
  EXPECT_FALSE(trace::parse_asc_line("1e308 1 43A Rx d 1 00").has_value());
  EXPECT_FALSE(trace::parse_asc_line("nan 1 43A Rx d 1 00").has_value());
  EXPECT_FALSE(trace::parse_asc_line("-0.5 1 43A Rx d 1 00").has_value());
  EXPECT_FALSE(
      trace::parse_asc_line("99999999999999999999.0 1 43A Rx d 1 00").has_value());
  const auto last = trace::parse_asc_line("9223372034.999999 1 43A Rx d 1 00");
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->time.count(), 9'223'372'034'999'999'000LL);
}

TEST(AscLog, InteroperatesWithCandumpCapture) {
  // Capture -> ASC -> read: the Vector-tooling interchange path.
  sim::Scheduler scheduler;
  vehicle::Vehicle car(scheduler);
  trace::CaptureTap tap(car.powertrain_bus(), "tap");
  scheduler.run_for(std::chrono::milliseconds(500));
  ASSERT_GT(tap.size(), 50u);
  std::stringstream stream;
  trace::write_asc(stream, tap.frames());
  const auto loaded = trace::read_asc(stream);
  EXPECT_EQ(loaded.size(), tap.size());
}

}  // namespace
}  // namespace acf::fuzzer
