#include <gtest/gtest.h>

#include <tuple>

#include "isotp/isotp.hpp"
#include "sim/scheduler.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "util/rng.hpp"

namespace acf::isotp {
namespace {

/// Two ISO-TP endpoints wired across a virtual bus.
class IsoTpPair : public ::testing::Test {
 protected:
  IsoTpPair() { wire(); }

  void wire(IsoTpConfig client_config = {}, IsoTpConfig server_config = {}) {
    client_config.tx_id = 0x7E0;
    client_config.rx_id = 0x7E8;
    server_config.tx_id = 0x7E8;
    server_config.rx_id = 0x7E0;
    client = std::make_unique<IsoTpChannel>(
        scheduler, [this](const can::CanFrame& f) { return client_port.send(f); },
        client_config);
    server = std::make_unique<IsoTpChannel>(
        scheduler, [this](const can::CanFrame& f) { return server_port.send(f); },
        server_config);
    client_port.set_rx_callback([this](const can::CanFrame& f, sim::SimTime t) {
      client->handle_frame(f, t);
    });
    server_port.set_rx_callback([this](const can::CanFrame& f, sim::SimTime t) {
      server->handle_frame(f, t);
    });
    server->set_on_message([this](const std::vector<std::uint8_t>& payload, sim::SimTime) {
      received.push_back(payload);
    });
  }

  sim::Scheduler scheduler;
  can::VirtualBus bus{scheduler};
  transport::VirtualBusTransport client_port{bus, "client"};
  transport::VirtualBusTransport server_port{bus, "server"};
  std::unique_ptr<IsoTpChannel> client;
  std::unique_ptr<IsoTpChannel> server;
  std::vector<std::vector<std::uint8_t>> received;
};

TEST_F(IsoTpPair, SingleFrameDelivery) {
  EXPECT_TRUE(client->send({1, 2, 3}));
  scheduler.run_for(std::chrono::milliseconds(10));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(client->stats().messages_sent, 1u);
  EXPECT_EQ(server->stats().messages_received, 1u);
}

TEST_F(IsoTpPair, SevenBytesIsStillSingleFrame) {
  client->send(std::vector<std::uint8_t>(7, 0xAA));
  scheduler.run_for(std::chrono::milliseconds(10));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(client->stats().frames_sent, 1u);
}

TEST_F(IsoTpPair, MultiFrameDelivery) {
  std::vector<std::uint8_t> payload(100);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i);
  }
  EXPECT_TRUE(client->send(payload));
  scheduler.run_for(std::chrono::seconds(1));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], payload);
  // FF + 14 CFs (6 + 14*7 = 104 >= 100).
  EXPECT_EQ(client->stats().frames_sent, 1u + 14u);
}

TEST_F(IsoTpPair, RejectsOversizedAndConcurrentSends) {
  EXPECT_FALSE(client->send(std::vector<std::uint8_t>(kMaxPayload + 1, 0)));
  EXPECT_TRUE(client->send(std::vector<std::uint8_t>(100, 0)));
  EXPECT_TRUE(client->tx_busy());
  EXPECT_FALSE(client->send({1}));  // transfer already in flight
  scheduler.run_for(std::chrono::seconds(1));
  EXPECT_FALSE(client->tx_busy());
}

TEST_F(IsoTpPair, TxDoneCallbackOnSuccess) {
  bool ok = false;
  int calls = 0;
  client->set_on_tx_done([&](bool success) {
    ok = success;
    ++calls;
  });
  client->send(std::vector<std::uint8_t>(50, 1));
  scheduler.run_for(std::chrono::seconds(1));
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(ok);
}

TEST_F(IsoTpPair, NoFlowControlTimesOutAndAborts) {
  // Cut the server->client direction so FC never arrives.
  client_port.set_rx_callback({});
  bool ok = true;
  client->set_on_tx_done([&](bool success) { ok = success; });
  client->send(std::vector<std::uint8_t>(100, 1));
  scheduler.run_for(std::chrono::seconds(3));
  EXPECT_FALSE(ok);
  EXPECT_EQ(client->stats().tx_aborts, 1u);
  EXPECT_FALSE(client->tx_busy());  // channel usable again
  EXPECT_TRUE(client->send({1}));
}

class IsoTpSizeSweep : public IsoTpPair,
                       public ::testing::WithParamInterface<std::size_t> {};

TEST_P(IsoTpSizeSweep, PayloadRoundTrip) {
  std::vector<std::uint8_t> payload(GetParam());
  util::Rng rng(GetParam() + 1);
  rng.fill(payload);
  ASSERT_TRUE(client->send(payload));
  scheduler.run_for(std::chrono::seconds(30));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, IsoTpSizeSweep,
                         ::testing::Values(1, 6, 7, 8, 12, 13, 62, 63, 64, 100, 500, 4095));

class IsoTpFlowControlGrid
    : public ::testing::TestWithParam<std::tuple<std::uint8_t, std::uint8_t>> {};

TEST_P(IsoTpFlowControlGrid, BlockSizeAndStMinHonoured) {
  const auto [block_size, st_min] = GetParam();
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  transport::VirtualBusTransport client_port(bus, "client");
  transport::VirtualBusTransport server_port(bus, "server");

  IsoTpConfig client_config;
  client_config.tx_id = 0x7E0;
  client_config.rx_id = 0x7E8;
  IsoTpConfig server_config;
  server_config.tx_id = 0x7E8;
  server_config.rx_id = 0x7E0;
  server_config.block_size = block_size;
  server_config.st_min_ms = st_min;

  IsoTpChannel client(scheduler,
                      [&](const can::CanFrame& f) { return client_port.send(f); },
                      client_config);
  IsoTpChannel server(scheduler,
                      [&](const can::CanFrame& f) { return server_port.send(f); },
                      server_config);
  client_port.set_rx_callback(
      [&](const can::CanFrame& f, sim::SimTime t) { client.handle_frame(f, t); });
  server_port.set_rx_callback(
      [&](const can::CanFrame& f, sim::SimTime t) { server.handle_frame(f, t); });

  std::vector<std::vector<std::uint8_t>> received;
  server.set_on_message([&](const std::vector<std::uint8_t>& payload, sim::SimTime) {
    received.push_back(payload);
  });

  std::vector<std::uint8_t> payload(300);
  util::Rng rng(42);
  rng.fill(payload);
  ASSERT_TRUE(client.send(payload));
  scheduler.run_for(std::chrono::seconds(60));
  ASSERT_EQ(received.size(), 1u) << "BS=" << unsigned(block_size)
                                 << " STmin=" << unsigned(st_min);
  EXPECT_EQ(received[0], payload);
}

INSTANTIATE_TEST_SUITE_P(Grid, IsoTpFlowControlGrid,
                         ::testing::Combine(::testing::Values(0, 1, 2, 8, 15),
                                            ::testing::Values(0, 1, 5, 20)));

TEST_F(IsoTpPair, SequenceErrorAborts) {
  // Speak raw protocol at the server: FF announcing 20 bytes, then a CF
  // with the wrong sequence number.
  transport::VirtualBusTransport raw(bus, "raw");
  raw.send(*can::CanFrame::data(0x7E0, {0x10, 20, 1, 2, 3, 4, 5, 6}));
  scheduler.run_for(std::chrono::milliseconds(5));
  raw.send(*can::CanFrame::data(0x7E0, {0x23, 7, 8, 9, 10, 11, 12, 13}));  // seq 3, not 1
  scheduler.run_for(std::chrono::milliseconds(5));
  EXPECT_EQ(server->stats().rx_aborts, 1u);
  EXPECT_TRUE(received.empty());
}

TEST_F(IsoTpPair, MalformedPciCounted) {
  transport::VirtualBusTransport raw(bus, "raw");
  raw.send(*can::CanFrame::data(0x7E0, {0x40, 1, 2}));  // PCI type 4: undefined
  raw.send(*can::CanFrame::data(0x7E0, {0x00}));        // SF with length 0
  scheduler.run_for(std::chrono::milliseconds(5));
  EXPECT_EQ(server->stats().malformed_frames, 2u);
}

TEST_F(IsoTpPair, PaddingAppliedToProtocolFrames) {
  std::vector<can::CanFrame> seen;
  transport::VirtualBusTransport tap(bus, "tap", can::FilterBank{can::IdMaskFilter::exact(0x7E0)},
                                     true);
  tap.set_rx_callback([&](const can::CanFrame& f, sim::SimTime) { seen.push_back(f); });
  client->send({1, 2, 3});
  scheduler.run_for(std::chrono::milliseconds(5));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].length(), 8u);  // padded to full DLC
  EXPECT_EQ(seen[0].payload()[7], client->config().pad_byte);
}

TEST_F(IsoTpPair, NewFirstFramePreemptsStalledReception) {
  transport::VirtualBusTransport raw(bus, "raw");
  raw.send(*can::CanFrame::data(0x7E0, {0x10, 50, 1, 2, 3, 4, 5, 6}));
  scheduler.run_for(std::chrono::milliseconds(5));
  // A second FF starts a fresh transfer; the first is abandoned.
  raw.send(*can::CanFrame::data(0x7E0, {0x10, 9, 9, 9, 9, 9, 9, 9}));
  scheduler.run_for(std::chrono::milliseconds(5));
  raw.send(*can::CanFrame::data(0x7E0, {0x21, 9, 9, 9}));
  scheduler.run_for(std::chrono::milliseconds(5));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].size(), 9u);
  EXPECT_EQ(server->stats().rx_aborts, 1u);
}

TEST_F(IsoTpPair, ShortConsecutiveFrameDoesNotConsumeSequence) {
  // A CF with no data bytes used to be accepted: it consumed nothing but
  // also stalled nothing, and a CF whose PCI promises data it doesn't carry
  // must not advance the sequence window.
  transport::VirtualBusTransport raw(bus, "raw");
  raw.send(*can::CanFrame::data(0x7E0, {0x10, 20, 1, 2, 3, 4, 5, 6}));
  scheduler.run_for(std::chrono::milliseconds(5));
  raw.send(*can::CanFrame::data(0x7E0, {0x21}));  // CF with zero data bytes
  scheduler.run_for(std::chrono::milliseconds(5));
  EXPECT_EQ(server->stats().malformed_frames, 1u);
  EXPECT_TRUE(received.empty());
  // The real seq-1 and seq-2 CFs still complete the transfer.
  raw.send(*can::CanFrame::data(0x7E0, {0x21, 7, 8, 9, 10, 11, 12, 13}));
  scheduler.run_for(std::chrono::milliseconds(5));
  raw.send(*can::CanFrame::data(0x7E0, {0x22, 14, 15, 16, 17, 18, 19, 20}));
  scheduler.run_for(std::chrono::milliseconds(5));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].size(), 20u);
  EXPECT_EQ(server->stats().rx_aborts, 0u);
}

/// A lone channel fed raw frames directly: the peer is the test, so it can
/// misbehave in ways the well-formed IsoTpPair endpoints never would.
class IsoTpHostilePeer : public ::testing::Test {
 protected:
  IsoTpHostilePeer()
      : channel(scheduler, [this](const can::CanFrame& f) {
          sent.push_back(f);
          return true;
        }, config) {}

  void inject(std::initializer_list<std::uint8_t> payload) {
    channel.handle_frame(*can::CanFrame::data(config.rx_id, payload), scheduler.now());
  }

  sim::Scheduler scheduler;
  IsoTpConfig config;
  std::vector<can::CanFrame> sent;
  IsoTpChannel channel;
};

TEST_F(IsoTpHostilePeer, FcWaitFloodAbortsAtNwftMax) {
  // Regression: a peer answering every pause with FlowControl-Wait used to
  // re-arm the tx timeout forever, pinning the transmitter in
  // kAwaitingFlowControl for as long as the flood lasted (livelock).
  ASSERT_TRUE(channel.send(std::vector<std::uint8_t>(100, 0x11)));
  EXPECT_TRUE(channel.tx_busy());
  int waits_sent = 0;
  for (; waits_sent < 50 && channel.tx_busy(); ++waits_sent) {
    inject({0x31, 0x00, 0x00});  // FC Wait
    scheduler.run_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(channel.tx_busy());
  EXPECT_EQ(waits_sent, config.max_fc_waits + 1);  // N_WFTmax tolerated, next aborts
  EXPECT_EQ(channel.stats().fc_wait_aborts, 1u);
  EXPECT_EQ(channel.stats().tx_aborts, 1u);
  EXPECT_EQ(sent.size(), 1u);  // only the FF ever went out
}

TEST_F(IsoTpHostilePeer, FcContinueResetsTheWaitBudget) {
  ASSERT_TRUE(channel.send(std::vector<std::uint8_t>(100, 0x22)));
  for (int round = 0; round < 3; ++round) {
    // Stay just under N_WFTmax, then continue with a block size of 1 so the
    // transfer pauses for flow control again.
    for (int i = 0; i < config.max_fc_waits; ++i) inject({0x31, 0x00, 0x00});
    ASSERT_TRUE(channel.tx_busy());
    inject({0x30, 0x01, 0x00});
    scheduler.run_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(channel.stats().fc_wait_aborts, 0u);  // budget is per pause, not per transfer
  EXPECT_TRUE(channel.tx_busy());
  inject({0x30, 0x00, 0x00});  // unlimited block: let it finish
  scheduler.run_for(std::chrono::seconds(1));
  EXPECT_FALSE(channel.tx_busy());
  EXPECT_EQ(channel.stats().messages_sent, 1u);
}

TEST_F(IsoTpHostilePeer, TruncatedFlowControlCountedNotTrusted) {
  ASSERT_TRUE(channel.send(std::vector<std::uint8_t>(100, 0x33)));
  inject({0x30});        // FC whose PCI promises BS and STmin it doesn't carry
  inject({0x31, 0x00});  // Wait missing its STmin byte
  EXPECT_EQ(channel.stats().malformed_frames, 2u);
  EXPECT_TRUE(channel.tx_busy());  // neither moved the state machine
  scheduler.run_for(config.timeout + std::chrono::milliseconds(10));
  EXPECT_FALSE(channel.tx_busy());  // N_Bs timeout cleaned up
  EXPECT_EQ(channel.stats().tx_aborts, 1u);
}

TEST_F(IsoTpHostilePeer, ReservedStMinFallsBackToMaximumPacing) {
  // STmin 0x80..0xF0 and 0xFA..0xFF are reserved; ISO 15765-2 says treat
  // them as the longest valid separation time (127 ms), not as garbage.
  ASSERT_TRUE(channel.send(std::vector<std::uint8_t>(20, 0x44)));
  ASSERT_EQ(sent.size(), 1u);                       // FF
  inject({0x30, 0x00, 0x80});                       // reserved STmin
  EXPECT_EQ(sent.size(), 2u);                       // first CF goes out at once
  scheduler.run_for(std::chrono::milliseconds(126));
  EXPECT_EQ(sent.size(), 2u);                       // still pacing
  scheduler.run_for(std::chrono::milliseconds(2));
  EXPECT_EQ(sent.size(), 3u);                       // second CF after 127 ms
  EXPECT_FALSE(channel.tx_busy());
}

TEST_F(IsoTpPair, OtherIdsIgnored) {
  transport::VirtualBusTransport raw(bus, "raw");
  raw.send(*can::CanFrame::data(0x7E1, {0x02, 1, 2}));  // not our rx id
  scheduler.run_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(server->stats().malformed_frames, 0u);
}

}  // namespace
}  // namespace acf::isotp
