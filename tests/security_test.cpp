#include <gtest/gtest.h>

#include "security/mac.hpp"
#include "sim/scheduler.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "util/rng.hpp"
#include "vehicle/vehicle.hpp"

namespace acf::security {
namespace {

const Key128 kTestKey = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                         0x08, 0x09, 0x0A, 0x0B, 0x0C, 0x0D, 0x0E, 0x0F};

// --------------------------------------------------------------- SipHash --

TEST(SipHash, ReferenceVector) {
  // The official SipHash-2-4 test vector: key 000102...0F over the sequence
  // 00 01 02 ... and expected outputs from the reference implementation.
  // First entry: empty input -> 0x726fdb47dd0e0e31.
  EXPECT_EQ(siphash24(kTestKey, {}), 0x726fdb47dd0e0e31ULL);
  const std::uint8_t one[] = {0x00};
  EXPECT_EQ(siphash24(kTestKey, one), 0x74f839c593dc67fdULL);
  const std::uint8_t eight[] = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07};
  EXPECT_EQ(siphash24(kTestKey, eight), 0x93f5f5799a932462ULL);
}

TEST(SipHash, KeySensitivity) {
  Key128 other = kTestKey;
  other[0] ^= 1;
  const std::uint8_t data[] = {1, 2, 3};
  EXPECT_NE(siphash24(kTestKey, data), siphash24(other, data));
}

TEST(SipHash, MessageSensitivity) {
  const std::uint8_t a[] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::uint8_t b[std::size(a)];
  std::copy(std::begin(a), std::end(a), b);
  b[8] ^= 0x80;
  EXPECT_NE(siphash24(kTestKey, a), siphash24(kTestKey, b));
}

// --------------------------------------------------------- authenticator --

TEST(FrameAuthenticator, SignVerifyRoundTrip) {
  FrameAuthenticator sender(kTestKey);
  FrameAuthenticator receiver(kTestKey);
  for (int i = 0; i < 50; ++i) {
    const auto frame = sender.sign_command(0x215, dbc::kCmdUnlock);
    EXPECT_EQ(frame.length(), 7u);
    EXPECT_EQ(receiver.verify_command(frame), VerifyResult::kOk) << i;
    EXPECT_EQ(receiver.last_command(), dbc::kCmdUnlock);
  }
  EXPECT_EQ(receiver.stats().accepted, 50u);
}

TEST(FrameAuthenticator, ReplayRejected) {
  FrameAuthenticator sender(kTestKey);
  FrameAuthenticator receiver(kTestKey);
  const auto frame = sender.sign_command(0x215, dbc::kCmdUnlock);
  EXPECT_EQ(receiver.verify_command(frame), VerifyResult::kOk);
  EXPECT_EQ(receiver.verify_command(frame), VerifyResult::kReplayed);
  EXPECT_EQ(receiver.stats().replayed, 1u);
}

TEST(FrameAuthenticator, LostFramesToleratedWithinWindow) {
  FrameAuthenticator sender(kTestKey, /*counter_window=*/16);
  FrameAuthenticator receiver(kTestKey, 16);
  for (int i = 0; i < 10; ++i) sender.sign_command(0x215, dbc::kCmdLock);  // lost
  const auto frame = sender.sign_command(0x215, dbc::kCmdUnlock);  // counter 11
  EXPECT_EQ(receiver.verify_command(frame), VerifyResult::kOk);
  EXPECT_EQ(receiver.rx_counter(), 11u);
}

TEST(FrameAuthenticator, GapBeyondWindowRejected) {
  FrameAuthenticator sender(kTestKey, 16);
  FrameAuthenticator receiver(kTestKey, 16);
  for (int i = 0; i < 20; ++i) sender.sign_command(0x215, dbc::kCmdLock);  // lost
  const auto frame = sender.sign_command(0x215, dbc::kCmdUnlock);  // counter 21 > window
  EXPECT_NE(receiver.verify_command(frame), VerifyResult::kOk);
}

TEST(FrameAuthenticator, TamperedFieldsRejected) {
  FrameAuthenticator sender(kTestKey);
  FrameAuthenticator receiver(kTestKey);
  const auto genuine = sender.sign_command(0x215, dbc::kCmdLock);
  // Flip the command byte (turn LOCK into UNLOCK) keeping the MAC.
  std::vector<std::uint8_t> bytes(genuine.payload().begin(), genuine.payload().end());
  bytes[0] = dbc::kCmdUnlock;
  EXPECT_EQ(receiver.verify_command(*can::CanFrame::data(0x215, bytes)),
            VerifyResult::kBadMac);
  // Wrong DLC.
  bytes.resize(5);
  EXPECT_EQ(receiver.verify_command(*can::CanFrame::data(0x215, bytes)),
            VerifyResult::kBadLength);
}

TEST(FrameAuthenticator, WrongKeyNeverVerifies) {
  FrameAuthenticator sender(kTestKey);
  Key128 wrong = kTestKey;
  wrong[15] ^= 0xFF;
  FrameAuthenticator receiver(wrong);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(receiver.verify_command(sender.sign_command(0x215, dbc::kCmdUnlock)),
              VerifyResult::kOk);
  }
}

TEST(FrameAuthenticator, RandomForgeriesRejected) {
  // The Table V attack against the authenticated predicate, distilled:
  // correctly-shaped frames with random counter/MAC bytes never verify.
  FrameAuthenticator receiver(kTestKey);
  util::Rng rng(0x5EC);
  for (int i = 0; i < 100000; ++i) {
    std::uint8_t bytes[7];
    rng.fill(bytes);
    bytes[0] = dbc::kCmdUnlock;  // the attacker knows the command byte
    const auto frame = can::CanFrame::data(0x215, bytes);
    EXPECT_NE(receiver.verify_command(*frame), VerifyResult::kOk);
  }
  EXPECT_EQ(receiver.stats().accepted, 0u);
}

// ----------------------------------------------------------- end-to-end ---

TEST(AuthenticatedUnlock, LegitimatePathWorks) {
  sim::Scheduler scheduler;
  vehicle::UnlockTestbench bench(scheduler, vehicle::UnlockPredicate::authenticated());
  bench.head_unit().request_unlock();
  scheduler.run_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(bench.bcm().unlocked());
  bench.head_unit().request_lock();
  scheduler.run_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(bench.bcm().unlocked());
  EXPECT_EQ(bench.head_unit().acks_seen(), 2u);
}

TEST(AuthenticatedUnlock, PaperStyleCommandRejected) {
  // The frame that unlocks every unauthenticated predicate bounces off.
  sim::Scheduler scheduler;
  vehicle::UnlockTestbench bench(scheduler, vehicle::UnlockPredicate::authenticated());
  transport::VirtualBusTransport attacker(bench.bus(), "attacker");
  attacker.send(*can::CanFrame::data(dbc::kMsgBodyCommand,
                                     {dbc::kCmdUnlock, 0x5F, 0x01, 0x00, 1, 0x20, 0}));
  scheduler.run_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(bench.bcm().unlocked());
  EXPECT_EQ(bench.bcm().rejected_commands(), 1u);
}

TEST(AuthenticatedUnlock, ReplayedGenuineUnlockRejected) {
  sim::Scheduler scheduler;
  vehicle::UnlockTestbench bench(scheduler, vehicle::UnlockPredicate::authenticated());
  // Record the genuine unlock frame off the bus.
  std::optional<can::CanFrame> recorded;
  transport::VirtualBusTransport tap(bench.bus(), "tap", {}, /*listen_only=*/true);
  tap.set_rx_callback([&](const can::CanFrame& frame, sim::SimTime) {
    if (frame.id() == dbc::kMsgBodyCommand) recorded = frame;
  });
  bench.head_unit().request_unlock();
  scheduler.run_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(recorded.has_value());
  ASSERT_TRUE(bench.bcm().unlocked());

  // Lock again, then replay the recorded unlock.
  bench.head_unit().request_lock();
  scheduler.run_for(std::chrono::milliseconds(10));
  ASSERT_FALSE(bench.bcm().unlocked());
  transport::VirtualBusTransport attacker(bench.bus(), "attacker");
  attacker.send(*recorded);
  scheduler.run_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(bench.bcm().unlocked());  // rolling counter blocks the replay
  EXPECT_EQ(bench.bcm().verifier()->stats().replayed, 1u);
}

}  // namespace
}  // namespace acf::security
