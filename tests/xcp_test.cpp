#include <gtest/gtest.h>

#include <array>

#include "sim/scheduler.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "vehicle/instrument_cluster.hpp"
#include "xcp/xcp.hpp"

namespace acf::xcp {
namespace {

/// Master + slave over a bus with a small scripted memory.
class XcpPair : public ::testing::Test {
 protected:
  XcpPair() {
    XcpMemoryMap map;
    map.read_byte = [this](std::uint32_t address) -> std::optional<std::uint8_t> {
      if (address >= 0x100 && address < 0x100 + memory.size()) {
        return memory[address - 0x100];
      }
      return std::nullopt;
    };
    map.write_byte = [this](std::uint32_t address, std::uint8_t value) {
      if (address >= 0x100 && address < 0x100 + memory.size()) {
        memory[address - 0x100] = value;
        return true;
      }
      return false;
    };
    slave = std::make_unique<XcpSlave>(
        0x6C0, 0x6C1, std::move(map),
        [this](const can::CanFrame& f) { return slave_port.send(f); });
    slave_port.set_rx_callback(
        [this](const can::CanFrame& f, sim::SimTime t) { slave->handle_frame(f, t); });
    master = std::make_unique<XcpMaster>(
        0x6C0, 0x6C1, [this](const can::CanFrame& f) { return master_port.send(f); });
    master_port.set_rx_callback(
        [this](const can::CanFrame& f, sim::SimTime t) { master->handle_frame(f, t); });
  }

  void settle() { scheduler.run_for(std::chrono::milliseconds(5)); }

  sim::Scheduler scheduler;
  can::VirtualBus bus{scheduler};
  transport::VirtualBusTransport slave_port{bus, "ecu"};
  transport::VirtualBusTransport master_port{bus, "tool"};
  std::unique_ptr<XcpSlave> slave;
  std::unique_ptr<XcpMaster> master;
  std::array<std::uint8_t, 16> memory = {0xDE, 0xAD, 0xBE, 0xEF, 4, 5, 6, 7,
                                         8,    9,    10,   11,   12, 13, 14, 15};
};

TEST_F(XcpPair, ConnectDisconnect) {
  EXPECT_FALSE(slave->connected());
  master->connect();
  settle();
  EXPECT_TRUE(slave->connected());
  ASSERT_TRUE(master->last_data().has_value());
  master->disconnect();
  settle();
  EXPECT_FALSE(slave->connected());
}

TEST_F(XcpPair, CommandsBeforeConnectRejected) {
  master->short_upload(0x100, 4);
  settle();
  ASSERT_TRUE(master->last_error().has_value());
  EXPECT_EQ(*master->last_error(), kErrNotConnected);
}

TEST_F(XcpPair, ShortUploadReadsMemory) {
  master->connect();
  settle();
  master->short_upload(0x100, 4);
  settle();
  ASSERT_TRUE(master->last_data().has_value());
  EXPECT_EQ(*master->last_data(), (std::vector<std::uint8_t>{0xDE, 0xAD, 0xBE, 0xEF}));
  EXPECT_EQ(XcpMaster::as_u32(master->last_data()).value(), 0xEFBEADDEu);
}

TEST_F(XcpPair, SetMtaUploadWalksMemory) {
  master->connect();
  settle();
  master->set_mta(0x104);
  settle();
  master->upload(3);
  settle();
  ASSERT_TRUE(master->last_data().has_value());
  EXPECT_EQ(*master->last_data(), (std::vector<std::uint8_t>{4, 5, 6}));
  master->upload(2);  // MTA auto-advanced
  settle();
  EXPECT_EQ(*master->last_data(), (std::vector<std::uint8_t>{7, 8}));
}

TEST_F(XcpPair, UnmappedAddressErrors) {
  master->connect();
  settle();
  master->short_upload(0x9000, 2);
  settle();
  ASSERT_TRUE(master->last_error().has_value());
  EXPECT_EQ(*master->last_error(), kErrOutOfRange);
}

TEST_F(XcpPair, DownloadWritesMemory) {
  master->connect();
  settle();
  master->set_mta(0x102);
  settle();
  const std::uint8_t patch[2] = {0x11, 0x22};
  master->download(0x102, patch);
  settle();
  ASSERT_TRUE(master->last_data().has_value());
  EXPECT_EQ(memory[2], 0x11);
  EXPECT_EQ(memory[3], 0x22);
  EXPECT_EQ(slave->bytes_written(), 2u);
}

TEST_F(XcpPair, MalformedCommandsGetSyntaxErrors) {
  master->connect();
  settle();
  // Raw frames with bad shapes.
  master_port.send(*can::CanFrame::data(0x6C0, {kCmdShortUpload, 0}));  // n = 0
  settle();
  master_port.send(*can::CanFrame::data(0x6C0, {kCmdUpload, 9}));  // n > 7
  settle();
  master_port.send(*can::CanFrame::data(0x6C0, {0x42}));  // unknown command
  settle();
  EXPECT_GE(slave->errors_sent(), 3u);
}

TEST(XcpCluster, InstrumentClusterMemoryMap) {
  // Read the cluster's live gauges through its XCP endpoint — the
  // simulator-internal monitoring channel from the paper's oracle list.
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  vehicle::InstrumentCluster cluster(scheduler, bus);
  transport::VirtualBusTransport sender(bus, "sender");
  const dbc::Database db = dbc::target_vehicle_database();
  sender.send(*db.by_id(dbc::kMsgEngineData)->encode({{"EngineRPM", 2500.0}}));
  scheduler.run_for(std::chrono::milliseconds(5));

  transport::VirtualBusTransport tool(bus, "xcp-tool");
  XcpMaster master(vehicle::InstrumentCluster::kXcpRxId,
                   vehicle::InstrumentCluster::kXcpTxId,
                   [&tool](const can::CanFrame& f) { return tool.send(f); });
  tool.set_rx_callback(
      [&master](const can::CanFrame& f, sim::SimTime t) { master.handle_frame(f, t); });

  master.connect();
  scheduler.run_for(std::chrono::milliseconds(5));
  master.short_upload(vehicle::InstrumentCluster::kXcpAddrRpm, 4);
  scheduler.run_for(std::chrono::milliseconds(5));
  const auto rpm = XcpMaster::as_u32(master.last_data());
  ASSERT_TRUE(rpm.has_value());
  EXPECT_EQ(*rpm, 2500u);

  // Status flags: MIL off, no crash.
  master.short_upload(vehicle::InstrumentCluster::kXcpAddrFlags, 1);
  scheduler.run_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(master.last_data().has_value());
  EXPECT_EQ((*master.last_data())[0], 0u);
}

}  // namespace
}  // namespace acf::xcp
