// Property and regression tests for the slab-pooled scheduler: randomized
// schedule/cancel interleavings checked against a reference model, FIFO
// ordering at equal timestamps, cancel-from-inside-a-running-action safety
// (including the schedule_every self-cancel regression), stale-id
// generation guards, run_until_condition overshoot bounds, and the
// allocation-free steady state the perf harness relies on.  Runs under the
// ASan/UBSan and TSan CI legs, where a double release or use-after-free in
// the slot recycler would trip immediately.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace acf::sim {
namespace {

TEST(SchedulerProperty, EqualTimesFireInInsertionOrderUnderRandomLoad) {
  // Random batches drawn from a tiny time pool force heavy timestamp
  // collisions; execution order must equal a stable sort of insertion order
  // by time (the FIFO seq tie-break every golden trace depends on).
  util::Rng rng(0xF1F0);
  for (int round = 0; round < 60; ++round) {
    Scheduler scheduler;
    std::vector<std::pair<SimTime, int>> model;
    std::vector<int> fired;
    const int count = static_cast<int>(rng.next_in(1, 80));
    for (int i = 0; i < count; ++i) {
      const SimTime when{static_cast<std::int64_t>(rng.next_below(6)) * 1000};
      model.emplace_back(when, i);
      scheduler.schedule_at(when, [i, &fired] { fired.push_back(i); });
    }
    std::stable_sort(model.begin(), model.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    while (scheduler.step()) {
    }
    ASSERT_EQ(fired.size(), model.size()) << "round " << round;
    for (std::size_t i = 0; i < fired.size(); ++i) {
      EXPECT_EQ(fired[i], model[i].second) << "round " << round << " pos " << i;
    }
  }
}

TEST(SchedulerProperty, RandomScheduleCancelInterleavingsMatchModel) {
  // Drive the scheduler with a random mix of schedule / cancel / step /
  // run_for and check it against the trivially-correct model: a one-shot
  // fires exactly once unless cancelled while still pending, in which case
  // it never fires.  Cancelling an already-fired id must be a no-op (the
  // generation guard — the slot may already host an unrelated event).
  struct Tracked {
    EventId id;
    int fires = 0;
    bool cancelled_while_pending = false;
  };
  util::Rng rng(0xCA9CE1);
  for (int round = 0; round < 20; ++round) {
    Scheduler scheduler;
    std::vector<Tracked> tracked;
    tracked.reserve(512);
    for (int op = 0; op < 400; ++op) {
      switch (rng.next_below(4)) {
        case 0: {  // schedule a one-shot
          const std::size_t index = tracked.size();
          tracked.push_back({});
          const Duration delay{static_cast<std::int64_t>(rng.next_below(2000)) * 1000};
          tracked[index].id = scheduler.schedule_after(
              delay, [&tracked, index] { ++tracked[index].fires; });
          break;
        }
        case 1: {  // cancel a random tracked event (live or stale id)
          if (tracked.empty()) break;
          Tracked& victim = tracked[static_cast<std::size_t>(rng.next_below(tracked.size()))];
          const bool was_pending = victim.fires == 0 && !victim.cancelled_while_pending;
          scheduler.cancel(victim.id);
          if (was_pending) victim.cancelled_while_pending = true;
          break;
        }
        case 2:
          scheduler.step();
          break;
        default:
          scheduler.run_for(Duration{static_cast<std::int64_t>(rng.next_below(500)) * 1000});
          break;
      }
      // The live count must always equal the model's pending population.
      std::size_t expected_pending = 0;
      for (const Tracked& t : tracked) {
        if (t.fires == 0 && !t.cancelled_while_pending) ++expected_pending;
      }
      ASSERT_EQ(scheduler.pending_events(), expected_pending)
          << "round " << round << " op " << op;
    }
    while (scheduler.step()) {
    }
    std::uint64_t fired_total = 0;
    for (const Tracked& t : tracked) {
      EXPECT_EQ(t.fires, t.cancelled_while_pending ? 0 : 1) << "round " << round;
      fired_total += static_cast<std::uint64_t>(t.fires);
    }
    EXPECT_EQ(scheduler.executed_events(), fired_total) << "round " << round;
    EXPECT_EQ(scheduler.pending_events(), 0u) << "round " << round;
  }
}

TEST(SchedulerProperty, OneShotCancellingItselfFromItsOwnHandlerIsSafe) {
  // Regression: a handler holding its own id may cancel it mid-dispatch.
  // The event is already off the queue, so this must be a no-op — not a
  // double release that corrupts the free list or the live count.
  Scheduler scheduler;
  EventId self{};
  int fires = 0;
  self = scheduler.schedule_after(Duration{1000}, [&] {
    ++fires;
    scheduler.cancel(self);
  });
  scheduler.run_for(Duration{10'000});
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(scheduler.pending_events(), 0u);
  // The slot recycles cleanly: a fresh event still schedules and fires.
  int later = 0;
  scheduler.schedule_after(Duration{1000}, [&later] { ++later; });
  scheduler.run_for(Duration{10'000});
  EXPECT_EQ(later, 1);
}

TEST(SchedulerProperty, PeriodicCancellingItselfMidDispatchNeverRearms) {
  // Regression pinning schedule_every's cancel-during-own-dispatch
  // semantics: the re-arm is reserved before the handler runs, so the
  // handler cancelling its own id must retract that re-arm — the event
  // fires this period and then never again.
  Scheduler scheduler;
  EventId periodic{};
  int fires = 0;
  periodic = scheduler.schedule_every(Duration{1000}, [&] {
    ++fires;
    if (fires == 3) scheduler.cancel(periodic);
  });
  scheduler.run_for(Duration{50'000});
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(scheduler.pending_events(), 0u);
  EXPECT_FALSE(scheduler.step());
}

TEST(SchedulerProperty, PeriodicCancelSelfThenRescheduleInSameDispatch) {
  // A handler may replace itself: cancel the periodic, then schedule a new
  // one at a different period, all inside one dispatch.  The retired slot
  // must not bleed state into its replacement.
  Scheduler scheduler;
  EventId current{};
  int fast_fires = 0;
  int slow_fires = 0;
  current = scheduler.schedule_every(Duration{1000}, [&] {
    ++fast_fires;
    if (fast_fires == 2) {
      scheduler.cancel(current);
      current = scheduler.schedule_every(Duration{5000}, [&] { ++slow_fires; });
    }
  });
  scheduler.run_for(Duration{22'000});
  EXPECT_EQ(fast_fires, 2);   // 1ms, 2ms — then replaced
  EXPECT_EQ(slow_fires, 4);   // 7ms, 12ms, 17ms, 22ms
  EXPECT_EQ(scheduler.pending_events(), 1u);
  scheduler.cancel(current);
  EXPECT_EQ(scheduler.pending_events(), 0u);
}

TEST(SchedulerProperty, HandlerCancellingAnotherPendingEventIsExact) {
  // Indexed-heap removal from inside a running handler: the victim never
  // fires, every bystander does, and order is preserved.
  Scheduler scheduler;
  std::vector<int> fired;
  EventId victim = scheduler.schedule_at(SimTime{2000}, [&] { fired.push_back(99); });
  for (int i = 0; i < 10; ++i) {
    scheduler.schedule_at(SimTime{3000 + i}, [&fired, i] { fired.push_back(i); });
  }
  scheduler.schedule_at(SimTime{1000}, [&] { scheduler.cancel(victim); });
  scheduler.run_for(Duration{10'000});
  ASSERT_EQ(fired.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(SchedulerProperty, StaleIdAfterSlotReuseCannotCancelNewEvent) {
  // Generation guard: an id kept past its event's death refers to a slot
  // that may have been recycled; cancelling it must not kill the tenant.
  Scheduler scheduler;
  int first = 0;
  const EventId stale = scheduler.schedule_after(Duration{1000}, [&first] { ++first; });
  scheduler.run_for(Duration{5000});
  ASSERT_EQ(first, 1);
  int second = 0;
  scheduler.schedule_after(Duration{1000}, [&second] { ++second; });  // reuses the slot
  EXPECT_GE(scheduler.stats().slot_reuses, 1u);
  scheduler.cancel(stale);  // must be a no-op
  EXPECT_EQ(scheduler.pending_events(), 1u);
  scheduler.run_for(Duration{5000});
  EXPECT_EQ(second, 1);
}

TEST(SchedulerProperty, RunUntilConditionNeverOvershoots) {
  // Randomized: whatever the event population and wherever the predicate
  // flips, run_until_condition must never advance the clock past the
  // deadline, never run an event scheduled after it, and report the
  // predicate's state truthfully.
  util::Rng rng(0xDEAD11);
  for (int round = 0; round < 40; ++round) {
    Scheduler scheduler;
    int counter = 0;
    std::vector<SimTime> fire_times;
    const int count = 30;
    for (int i = 0; i < count; ++i) {
      const SimTime when{static_cast<std::int64_t>(rng.next_in(1, 5000)) * 1000};
      scheduler.schedule_at(when, [&counter, &fire_times, when] {
        ++counter;
        fire_times.push_back(when);
      });
    }
    const int threshold = static_cast<int>(rng.next_in(1, 2 * count));  // may be unreachable
    const SimTime deadline{static_cast<std::int64_t>(rng.next_in(1, 5000)) * 1000};
    const bool stopped = scheduler.run_until_condition(
        [&counter, threshold] { return counter >= threshold; }, deadline);
    EXPECT_LE(scheduler.now().count(), deadline.count()) << "round " << round;
    for (const SimTime t : fire_times) {
      EXPECT_LE(t.count(), deadline.count()) << "round " << round;
    }
    if (stopped) {
      EXPECT_GE(counter, threshold) << "round " << round;
    } else {
      EXPECT_EQ(scheduler.now().count(), deadline.count()) << "round " << round;
      EXPECT_LT(counter, threshold) << "round " << round;
    }
  }
}

TEST(SchedulerProperty, SteadyStateIsAllocationFree) {
  // The tentpole claim: once a world is warm, neither the event slab nor
  // the ready queue grows, and recycled slots serve all further traffic.
  Scheduler scheduler{256};
  util::Rng rng(0x51AB);
  for (int i = 0; i < 100; ++i) {
    scheduler.schedule_every(Duration{static_cast<std::int64_t>(rng.next_in(1, 50)) * 1000},
                             [] {});
  }
  scheduler.run_for(std::chrono::milliseconds(200));  // warm up
  const SchedulerStats warm = scheduler.stats();
  const std::uint64_t executed_warm = scheduler.executed_events();
  scheduler.run_for(std::chrono::seconds(2));
  const SchedulerStats after = scheduler.stats();
  EXPECT_GT(scheduler.executed_events(), executed_warm);
  EXPECT_EQ(after.slab_chunks, warm.slab_chunks);
  EXPECT_EQ(after.slab_capacity, warm.slab_capacity);
  EXPECT_EQ(after.heap_capacity, warm.heap_capacity);
}

}  // namespace
}  // namespace acf::sim
