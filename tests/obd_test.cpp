#include <gtest/gtest.h>

#include "obd/obd.hpp"
#include "uds/uds_client.hpp"
#include "sim/scheduler.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "vehicle/vehicle.hpp"

namespace acf::obd {
namespace {

TEST(ObdScaling, RpmQuarterResolution) {
  EXPECT_EQ(encode_rpm(800.0), 3200u);
  EXPECT_DOUBLE_EQ(decode_rpm(3200), 800.0);
  EXPECT_DOUBLE_EQ(decode_rpm(encode_rpm(6543.25)), 6543.25);
  EXPECT_EQ(encode_rpm(-5.0), 0u);           // clamps
  EXPECT_EQ(encode_rpm(1e9), 65535u);
}

TEST(ObdScaling, TemperatureOffset) {
  EXPECT_EQ(encode_temp(-40.0), 0u);
  EXPECT_EQ(encode_temp(90.0), 130u);
  EXPECT_DOUBLE_EQ(decode_temp(130), 90.0);
  EXPECT_EQ(encode_temp(500.0), 255u);
}

TEST(ObdScaling, Percent) {
  EXPECT_EQ(encode_percent(100.0), 255u);
  EXPECT_EQ(encode_percent(0.0), 0u);
  EXPECT_NEAR(decode_percent(encode_percent(40.0)), 40.0, 0.3);
}

/// Server + client wired across a bus, with a scripted data source.
class ObdPair : public ::testing::Test {
 protected:
  ObdPair() {
    ObdDataSource source;
    source.rpm = [this] { return rpm; };
    source.speed_kph = [this] { return speed; };
    source.coolant_c = [this] { return coolant; };
    source.throttle_pct = [this] { return throttle; };
    source.dtcs = [this] { return dtcs; };
    source.clear_dtcs = [this] { dtcs.clear(); };
    server = std::make_unique<ObdServer>(
        scheduler, [this](const can::CanFrame& f) { return ecu_port.send(f); }, 0x7E0,
        std::move(source));
    ecu_port.set_rx_callback([this](const can::CanFrame& f, sim::SimTime t) {
      server->handle_frame(f, t);
    });
    client = std::make_unique<ObdClient>(
        scheduler, [this](const can::CanFrame& f) { return tool_port.send(f); });
    tool_port.set_rx_callback([this](const can::CanFrame& f, sim::SimTime t) {
      client->handle_frame(f, t);
    });
  }

  void settle() { scheduler.run_for(std::chrono::milliseconds(50)); }

  sim::Scheduler scheduler;
  can::VirtualBus bus{scheduler};
  transport::VirtualBusTransport ecu_port{bus, "ecm"};
  transport::VirtualBusTransport tool_port{bus, "scantool"};
  std::unique_ptr<ObdServer> server;
  std::unique_ptr<ObdClient> client;

  double rpm = 812.5;
  double speed = 57.0;
  double coolant = 91.0;
  double throttle = 18.0;
  std::vector<std::uint16_t> dtcs;
};

TEST_F(ObdPair, Mode01Rpm) {
  client->request_pid(kModeCurrentData, kPidEngineRpm);
  settle();
  ASSERT_TRUE(client->last_rpm().has_value());
  EXPECT_NEAR(*client->last_rpm(), 812.5, 0.25);
}

TEST_F(ObdPair, Mode01Speed) {
  client->request_pid(kModeCurrentData, kPidVehicleSpeed);
  settle();
  ASSERT_TRUE(client->last_speed().has_value());
  EXPECT_DOUBLE_EQ(*client->last_speed(), 57.0);
}

TEST_F(ObdPair, Mode01SupportBitmapAdvertisesImplementedPids) {
  client->request_pid(kModeCurrentData, kPidSupported01To20);
  settle();
  const auto& response = client->last_response();
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->size(), 6u);
  const std::uint32_t bits = (static_cast<std::uint32_t>((*response)[2]) << 24) |
                             (static_cast<std::uint32_t>((*response)[3]) << 16) |
                             (static_cast<std::uint32_t>((*response)[4]) << 8) |
                             static_cast<std::uint32_t>((*response)[5]);
  for (std::uint8_t pid : {kPidCoolantTemp, kPidEngineRpm, kPidVehicleSpeed, kPidThrottle}) {
    EXPECT_TRUE((bits >> (32 - pid)) & 1u) << "pid " << int(pid);
  }
  EXPECT_FALSE((bits >> (32 - 0x02)) & 1u);  // freeze frame not implemented
}

TEST_F(ObdPair, UnsupportedPidYieldsSilence) {
  client->request_pid(kModeCurrentData, 0x42);
  settle();
  EXPECT_FALSE(client->last_response().has_value());
}

TEST_F(ObdPair, Mode03DtcsAndMode04Clear) {
  dtcs = {0x0104, 0x0300};  // P0104, P0300
  client->request_mode(kModeStoredDtcs);
  settle();
  EXPECT_EQ(client->last_dtcs(), (std::vector<std::uint16_t>{0x0104, 0x0300}));
  client->request_mode(kModeClearDtcs);
  settle();
  EXPECT_TRUE(dtcs.empty());
  client->request_mode(kModeStoredDtcs);
  settle();
  EXPECT_TRUE(client->last_dtcs().empty());
}

TEST_F(ObdPair, Mode09Vin) {
  client->request_pid(kModeVehicleInfo, kInfoVin);
  settle();
  ASSERT_TRUE(client->last_vin().has_value());
  EXPECT_EQ(*client->last_vin(), "WVWZZZ1KZAW000017");
}

TEST_F(ObdPair, UdsSidsIgnoredSilently) {
  // A UDS session-control request on the shared id must not draw an OBD
  // response (the UDS stack owns it).
  const auto before = server->malformed_requests();
  client->request_pid(0x10, 0x03);
  settle();
  EXPECT_EQ(server->malformed_requests(), before);
  EXPECT_FALSE(client->last_response().has_value());
}

TEST(ObdOnVehicle, ScanToolReadsLiveEngineData) {
  // Full integration: scan tool on the body bus reaches the ECM through the
  // gateway (0x7DF functional broadcast is whitelisted).
  sim::Scheduler scheduler;
  vehicle::Vehicle car(scheduler);
  scheduler.run_for(std::chrono::seconds(45));  // cruise phase

  transport::VirtualBusTransport tool(car.body_bus(), "scantool");
  ObdClient client(scheduler, [&tool](const can::CanFrame& f) { return tool.send(f); });
  tool.set_rx_callback(
      [&client](const can::CanFrame& f, sim::SimTime t) { client.handle_frame(f, t); });

  client.request_pid(kModeCurrentData, kPidEngineRpm);
  scheduler.run_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(client.last_rpm().has_value());
  EXPECT_NEAR(*client.last_rpm(), car.engine().rpm(), 100.0);

  client.request_pid(kModeVehicleInfo, kInfoVin);
  scheduler.run_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(client.last_vin().has_value());
}

TEST(ObdOnVehicle, UdsAndObdCoexistOnTheSharedIds) {
  sim::Scheduler scheduler;
  vehicle::Vehicle car(scheduler);
  scheduler.run_for(std::chrono::seconds(1));

  transport::VirtualBusTransport tool(car.powertrain_bus(), "tester");
  isotp::IsoTpConfig isotp_config;
  isotp_config.tx_id = dbc::kUdsEngineRequest;
  isotp_config.rx_id = dbc::kUdsEngineResponse;
  uds::UdsClient uds_client(
      scheduler, [&tool](const can::CanFrame& f) { return tool.send(f); }, isotp_config);
  tool.set_rx_callback([&uds_client](const can::CanFrame& f, sim::SimTime t) {
    uds_client.handle_frame(f, t);
  });
  uds_client.start_session(0x03);
  scheduler.run_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(uds_client.last_response().has_value());
  EXPECT_TRUE(uds_client.last_response()->positive());
  EXPECT_EQ(car.engine().uds_server()->session(), uds::Session::kExtended);
}

}  // namespace
}  // namespace acf::obd
