#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.hpp"

namespace acf::sim {
namespace {

TEST(Scheduler, StartsAtZero) {
  Scheduler scheduler;
  EXPECT_EQ(scheduler.now(), SimTime{0});
  EXPECT_FALSE(scheduler.step());
}

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler scheduler;
  std::vector<int> order;
  scheduler.schedule_at(SimTime{300}, [&] { order.push_back(3); });
  scheduler.schedule_at(SimTime{100}, [&] { order.push_back(1); });
  scheduler.schedule_at(SimTime{200}, [&] { order.push_back(2); });
  scheduler.run_until(SimTime{1000});
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(scheduler.now(), SimTime{1000});
}

TEST(Scheduler, EqualTimesFireFifo) {
  Scheduler scheduler;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    scheduler.schedule_at(SimTime{50}, [&order, i] { order.push_back(i); });
  }
  scheduler.run_until(SimTime{50});
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, ClockMatchesEventTime) {
  Scheduler scheduler;
  SimTime seen{};
  scheduler.schedule_after(Duration{250}, [&] { seen = scheduler.now(); });
  scheduler.run_until(SimTime{1000});
  EXPECT_EQ(seen, SimTime{250});
}

TEST(Scheduler, PastDeadlinesClampToNow) {
  Scheduler scheduler;
  scheduler.schedule_at(SimTime{100}, [] {});
  scheduler.run_until(SimTime{100});
  bool fired = false;
  scheduler.schedule_at(SimTime{50}, [&] { fired = true; });  // in the past
  scheduler.run_until(SimTime{100});
  EXPECT_TRUE(fired);
  EXPECT_EQ(scheduler.now(), SimTime{100});
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler scheduler;
  bool fired = false;
  const EventId id = scheduler.schedule_at(SimTime{10}, [&] { fired = true; });
  scheduler.cancel(id);
  scheduler.run_until(SimTime{100});
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelInvalidIdIsNoop) {
  Scheduler scheduler;
  scheduler.cancel(EventId{});
  scheduler.cancel(EventId{9999});
  EXPECT_FALSE(scheduler.step());
}

TEST(Scheduler, RepeatingEventFiresEveryPeriod) {
  Scheduler scheduler;
  int count = 0;
  scheduler.schedule_every(Duration{100}, [&] { ++count; });
  scheduler.run_until(SimTime{1000});
  EXPECT_EQ(count, 10);  // t=100..1000
}

TEST(Scheduler, RepeatingEventCancelledFromHandler) {
  Scheduler scheduler;
  int count = 0;
  EventId id{};
  id = scheduler.schedule_every(Duration{10}, [&] {
    if (++count == 3) scheduler.cancel(id);
  });
  scheduler.run_until(SimTime{1000});
  EXPECT_EQ(count, 3);
}

TEST(Scheduler, ZeroPeriodClampedToOne) {
  Scheduler scheduler;
  int count = 0;
  const EventId id = scheduler.schedule_every(Duration{0}, [&] { ++count; });
  scheduler.run_until(SimTime{5});
  scheduler.cancel(id);
  EXPECT_EQ(count, 5);
}

TEST(Scheduler, EventsScheduledDuringEventsRun) {
  Scheduler scheduler;
  bool inner = false;
  scheduler.schedule_at(SimTime{10}, [&] {
    scheduler.schedule_after(Duration{5}, [&] { inner = true; });
  });
  scheduler.run_until(SimTime{20});
  EXPECT_TRUE(inner);
}

TEST(Scheduler, ZeroDelayEventFromHandlerRunsAtSameTime) {
  Scheduler scheduler;
  SimTime inner_time{-1};
  scheduler.schedule_at(SimTime{10}, [&] {
    scheduler.schedule_at(scheduler.now(), [&] { inner_time = scheduler.now(); });
  });
  scheduler.run_until(SimTime{10});
  EXPECT_EQ(inner_time, SimTime{10});
}

TEST(Scheduler, RunUntilConditionStopsEarly) {
  Scheduler scheduler;
  int count = 0;
  scheduler.schedule_every(Duration{10}, [&] { ++count; });
  const bool hit = scheduler.run_until_condition([&] { return count >= 5; }, SimTime{10000});
  EXPECT_TRUE(hit);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(scheduler.now(), SimTime{50});
}

TEST(Scheduler, RunUntilConditionDeadline) {
  Scheduler scheduler;
  const bool hit = scheduler.run_until_condition([] { return false; }, SimTime{500});
  EXPECT_FALSE(hit);
  EXPECT_EQ(scheduler.now(), SimTime{500});
}

TEST(Scheduler, CancelledEventsDoNotMaskTheDeadline) {
  // Regression: a cancelled entry inside the run window must not cause the
  // next live event beyond the deadline to execute.
  Scheduler scheduler;
  bool late_fired = false;
  const EventId cancelled = scheduler.schedule_at(SimTime{50}, [] {});
  scheduler.schedule_at(SimTime{200}, [&] { late_fired = true; });
  scheduler.cancel(cancelled);
  scheduler.run_until(SimTime{100});
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(scheduler.now(), SimTime{100});
  scheduler.run_until(SimTime{300});
  EXPECT_TRUE(late_fired);
}

TEST(Scheduler, CancelledRepeatingEventStopsMaskingToo) {
  Scheduler scheduler;
  int count = 0;
  const EventId id = scheduler.schedule_every(Duration{10}, [&] { ++count; });
  scheduler.run_until(SimTime{35});
  EXPECT_EQ(count, 3);
  scheduler.cancel(id);
  bool fired = false;
  scheduler.schedule_at(SimTime{500}, [&] { fired = true; });
  scheduler.run_until(SimTime{100});
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(fired);
}

TEST(Scheduler, ExecutedEventsCounter) {
  Scheduler scheduler;
  for (int i = 0; i < 7; ++i) scheduler.schedule_at(SimTime{i}, [] {});
  scheduler.run_until(SimTime{100});
  EXPECT_EQ(scheduler.executed_events(), 7u);
}

TEST(Scheduler, RunForAdvancesRelative) {
  Scheduler scheduler;
  scheduler.run_for(Duration{100});
  scheduler.run_for(Duration{50});
  EXPECT_EQ(scheduler.now(), SimTime{150});
}

TEST(FormatMillis, PaperStyleTimestamps) {
  EXPECT_EQ(format_millis(SimTime{5'328'009'000}), "5328.009");
  EXPECT_EQ(format_millis(SimTime{0}), "0.000");
}

TEST(TimeHelpers, Conversions) {
  EXPECT_DOUBLE_EQ(to_seconds(std::chrono::milliseconds(1500)), 1.5);
  EXPECT_DOUBLE_EQ(to_millis(std::chrono::microseconds(2500)), 2.5);
}

}  // namespace
}  // namespace acf::sim
