// Feedback-driven fuzzing tests: novelty-map semantics, corpus scheduling /
// minimisation / codec hardening, sequence-mutator bounds, and the
// campaign-level determinism contracts — byte-identical re-runs, checkpoint
// resume equal to the uninterrupted run, and thread-count-invariant fleet
// outcomes.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "feedback/campaign.hpp"
#include "feedback/worlds.hpp"
#include "fleet/executor.hpp"
#include "metrics/metrics.hpp"

namespace acf::feedback {
namespace {

// --------------------------------------------------------- NoveltyMap ----

TEST(FeedbackNovelty, BucketsFollowAflClasses) {
  EXPECT_EQ(count_bucket(0), 0);
  EXPECT_EQ(count_bucket(1), 0);
  EXPECT_EQ(count_bucket(2), 1);
  EXPECT_EQ(count_bucket(3), 2);
  EXPECT_EQ(count_bucket(4), 3);
  EXPECT_EQ(count_bucket(7), 3);
  EXPECT_EQ(count_bucket(8), 4);
  EXPECT_EQ(count_bucket(15), 4);
  EXPECT_EQ(count_bucket(16), 5);
  EXPECT_EQ(count_bucket(31), 5);
  EXPECT_EQ(count_bucket(32), 6);
  EXPECT_EQ(count_bucket(127), 6);
  EXPECT_EQ(count_bucket(128), 7);
  EXPECT_EQ(count_bucket(1'000'000), 7);
  // Same (domain, key) with counts in different buckets -> different cells.
  EXPECT_NE(make_feature(Domain::kEcuState, 3, 1), make_feature(Domain::kEcuState, 3, 2));
  // ... and counts within one bucket collapse to the same feature.
  EXPECT_EQ(make_feature(Domain::kEcuState, 3, 9), make_feature(Domain::kEcuState, 3, 10));
  // Domains separate identical keys.
  EXPECT_NE(make_feature(Domain::kEcuState, 3, 1), make_feature(Domain::kOracle, 3, 1));
}

TEST(FeedbackNovelty, FirstHitIsNovelLaterHitsAreNot) {
  NoveltyMap map(1 << 10);
  const Feature f = make_feature(Domain::kFrameCell, 0x215, 1);
  EXPECT_FALSE(map.seen(f));
  EXPECT_TRUE(map.observe(f));
  EXPECT_TRUE(map.seen(f));
  EXPECT_FALSE(map.observe(f));
  EXPECT_EQ(map.occupied(), 1u);
  EXPECT_GT(map.density(), 0.0);
  map.reset();
  EXPECT_EQ(map.occupied(), 0u);
  EXPECT_TRUE(map.observe(f));
}

TEST(FeedbackNovelty, RestoreWordsRoundTripsOccupancy) {
  NoveltyMap map(1 << 8);
  for (std::uint64_t key = 0; key < 40; ++key) {
    map.observe(make_feature(Domain::kFrameCell, key, 1));
  }
  NoveltyMap restored(1 << 8);
  ASSERT_TRUE(restored.restore_words(map.words()));
  EXPECT_EQ(restored.occupied(), map.occupied());
  EXPECT_TRUE(restored.seen(make_feature(Domain::kFrameCell, 7, 1)));
  NoveltyMap wrong_size(1 << 9);
  EXPECT_FALSE(wrong_size.restore_words(map.words()));
}

// -------------------------------------------------------------- Corpus ----

Seed make_seed(std::vector<Feature> features, bool hot) {
  Seed seed;
  seed.frames = {can::CanFrame::data_std(0x215, {0x20, 0x5F})};
  seed.features = std::move(features);
  seed.hot = hot;
  return seed;
}

TEST(FeedbackCorpus, PickIsEnergyWeightedAndDeterministic) {
  Corpus corpus;
  ASSERT_TRUE(corpus.add(make_seed({1, 2}, /*hot=*/false)));
  ASSERT_TRUE(corpus.add(make_seed({3, 4}, /*hot=*/true)));
  EXPECT_EQ(corpus.energy(0), 1u);
  EXPECT_EQ(corpus.energy(1), 32u);
  util::Rng rng(42);
  std::size_t hot_picks = 0;
  for (int i = 0; i < 330; ++i) hot_picks += corpus.pick(rng);
  // Expected ~320 of 330 draws land on the hot seed.
  EXPECT_GT(hot_picks, 280u);
  // Same rng seed -> the identical draw sequence.
  util::Rng a(7), b(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(corpus.pick(a), corpus.pick(b));
}

TEST(FeedbackCorpus, MinimizeDropsSubsumedSeedsAndKeepsUnion) {
  Corpus corpus;
  ASSERT_TRUE(corpus.add(make_seed({1, 2, 3}, false)));
  ASSERT_TRUE(corpus.add(make_seed({1, 2}, false)));      // subsumed
  ASSERT_TRUE(corpus.add(make_seed({4}, false)));
  ASSERT_TRUE(corpus.add(make_seed({2, 3, 4}, false)));   // subsumed by 0+2
  const std::size_t before = corpus.distinct_features();
  EXPECT_EQ(corpus.minimize(), 2u);
  EXPECT_EQ(corpus.size(), 2u);
  EXPECT_EQ(corpus.distinct_features(), before);
}

TEST(FeedbackCorpus, EncodeDecodeIsIdentity) {
  Corpus corpus;
  Seed seed = make_seed({5, 9, 11}, true);
  seed.found_at_exec = 123;
  seed.exec_cost_ns = 456789;
  seed.frames.push_back(can::CanFrame::data_std(0x7FF, {}));
  ASSERT_TRUE(corpus.add(std::move(seed)));
  ASSERT_TRUE(corpus.add(make_seed({1}, false)));
  const auto bytes = corpus.encode();
  const auto decoded = Corpus::decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->size(), 2u);
  EXPECT_EQ(decoded->at(0).found_at_exec, 123u);
  EXPECT_EQ(decoded->at(0).exec_cost_ns, 456789u);
  EXPECT_TRUE(decoded->at(0).hot);
  EXPECT_EQ(decoded->at(0).frames.size(), 2u);
  EXPECT_EQ(decoded->at(0).frames[0].id(), 0x215u);
  EXPECT_EQ(decoded->encode(), bytes);  // decode∘encode identity
}

TEST(FeedbackCorpus, DecodeFailsClosedOnHostileInputs) {
  Corpus corpus;
  ASSERT_TRUE(corpus.add(make_seed({1, 2}, true)));
  auto bytes = corpus.encode();
  // Every truncation is rejected.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(Corpus::decode(std::span(bytes.data(), len)).has_value()) << len;
  }
  // Trailing garbage is rejected (strict full consumption).
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(Corpus::decode(padded).has_value());
  // A hostile seed count far beyond the bytes present is rejected before
  // any allocation.
  auto hostile = bytes;
  hostile[8] = 0xFF;
  hostile[9] = 0xFF;
  hostile[10] = 0xFF;
  hostile[11] = 0x7F;
  EXPECT_FALSE(Corpus::decode(hostile).has_value());
  // Wrong magic.
  auto wrong = bytes;
  wrong[0] ^= 0xFF;
  EXPECT_FALSE(Corpus::decode(wrong).has_value());
}

// ----------------------------------------------------- SequenceMutator ----

TEST(FeedbackSequenceMutator, StaysWithinBoundsAndIsDeterministic) {
  SequenceMutator mutator({.max_frames = 6});
  util::Rng a(99), b(99);
  std::vector<can::CanFrame> seq_a = mutator.fresh(a);
  std::vector<can::CanFrame> seq_b = mutator.fresh(b);
  ASSERT_EQ(seq_a.size(), seq_b.size());
  const std::vector<can::CanFrame> donor = {can::CanFrame::data_std(0x123, {1, 2, 3})};
  for (int round = 0; round < 500; ++round) {
    mutator.mutate(a, seq_a, round % 3 == 0 ? &donor : nullptr);
    mutator.mutate(b, seq_b, round % 3 == 0 ? &donor : nullptr);
    ASSERT_GE(seq_a.size(), 1u);
    ASSERT_LE(seq_a.size(), 6u);
    ASSERT_EQ(seq_a.size(), seq_b.size());
    for (std::size_t i = 0; i < seq_a.size(); ++i) {
      ASSERT_EQ(seq_a[i], seq_b[i]) << "diverged at round " << round;
      ASSERT_LE(seq_a[i].id(), can::kMaxStandardId);
      ASSERT_LE(seq_a[i].length(), can::kMaxClassicPayload);
    }
  }
}

// ---------------------------------------------------- FeedbackCampaign ----

FeedbackConfig fast_config(std::uint64_t seed) {
  FeedbackConfig config;
  config.seed = seed;
  config.max_total_sim = std::chrono::seconds(120);
  return config;
}

TEST(FeedbackCampaign, FindsUnlockOnWeakPredicate) {
  FeedbackCampaign campaign(fast_config(0xACF0));
  const fuzzer::CampaignResult& result = campaign.run();
  EXPECT_EQ(result.reason, fuzzer::StopReason::kFailureDetected);
  ASSERT_FALSE(result.findings.empty());
  EXPECT_LT(result.findings.front().observation.time, std::chrono::seconds(120));
  EXPECT_GT(campaign.stats().novel_inputs, 0u);
  EXPECT_GT(campaign.corpus().size(), 0u);
  EXPECT_GT(campaign.map().occupied(), 0u);
}

TEST(FeedbackCampaign, ReRunIsByteIdentical) {
  FeedbackCampaign first(fast_config(0xBEEF));
  FeedbackCampaign second(fast_config(0xBEEF));
  const auto& ra = first.run();
  const auto& rb = second.run();
  EXPECT_EQ(ra.frames_sent, rb.frames_sent);
  EXPECT_EQ(ra.elapsed, rb.elapsed);
  EXPECT_EQ(ra.reason, rb.reason);
  ASSERT_EQ(ra.findings.size(), rb.findings.size());
  for (std::size_t i = 0; i < ra.findings.size(); ++i) {
    EXPECT_EQ(ra.findings[i].observation.detail, rb.findings[i].observation.detail);
    EXPECT_EQ(ra.findings[i].observation.time, rb.findings[i].observation.time);
  }
  EXPECT_EQ(first.corpus().encode(), second.corpus().encode());
  EXPECT_EQ(first.stats().executions, second.stats().executions);
}

FeedbackConfig hardened_config(std::uint64_t seed, std::uint64_t max_executions) {
  FeedbackConfig config;
  config.seed = seed;
  config.max_executions = max_executions;
  config.max_total_sim = std::chrono::hours(1);
  // A predicate the loop will not crack in a handful of executions, so the
  // campaign runs its full execution budget deterministically.
  config.predicate = vehicle::UnlockPredicate{4, true, false};
  return config;
}

TEST(FeedbackCampaign, CheckpointResumeEqualsUninterrupted) {
  // Uninterrupted: 90 executions.
  FeedbackCampaign uninterrupted(hardened_config(0x5EED, 90));
  uninterrupted.run();

  // Interrupted at 45, checkpointed, restored into a fresh campaign with
  // the full budget, then run to completion.
  FeedbackCampaign first_half(hardened_config(0x5EED, 45));
  first_half.run();
  const fuzzer::CampaignCheckpoint cp = first_half.checkpoint();

  FeedbackCampaign resumed(hardened_config(0x5EED, 90));
  ASSERT_TRUE(resumed.restore(cp));
  resumed.run();

  EXPECT_EQ(resumed.stats().executions, uninterrupted.stats().executions);
  EXPECT_EQ(resumed.stats().novel_inputs, uninterrupted.stats().novel_inputs);
  EXPECT_EQ(resumed.result().frames_sent, uninterrupted.result().frames_sent);
  EXPECT_EQ(resumed.result().elapsed, uninterrupted.result().elapsed);
  EXPECT_EQ(resumed.map().occupied(), uninterrupted.map().occupied());
  // The corpus round-trips byte-identically through the checkpoint path.
  EXPECT_EQ(resumed.corpus().encode(), uninterrupted.corpus().encode());
}

TEST(FeedbackCampaign, RestoreRejectsForeignCheckpoints) {
  fuzzer::CampaignCheckpoint cp;
  cp.generator_name = "random";
  FeedbackCampaign campaign(fast_config(1));
  EXPECT_FALSE(campaign.restore(cp));
  cp.generator_name = "feedback";
  cp.generator_state = {999};  // wrong version
  EXPECT_FALSE(campaign.restore(cp));
}

// ------------------------------------------------------------- fleet ------

std::vector<fleet::TrialOutcome> run_fleet(unsigned threads, const std::string& corpus_dir) {
  FeedbackArm arm;
  arm.config.predicate = vehicle::UnlockPredicate{4, true, false};
  arm.config.max_executions = 40;
  arm.default_budget = std::chrono::hours(1);
  fleet::TrialPlan plan({"feedback"}, 4, 0xF1EE7);
  fleet::Executor executor({.threads = threads});
  return executor.run(plan, feedback_world_factory({arm}, nullptr, corpus_dir));
}

TEST(FleetFeedback, OutcomesIdenticalAcrossThreadCounts) {
  const auto one = run_fleet(1, "");
  const auto four = run_fleet(4, "");
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].spec.seed, four[i].spec.seed);
    EXPECT_EQ(one[i].status, four[i].status);
    EXPECT_EQ(one[i].frames_sent, four[i].frames_sent);
    EXPECT_EQ(one[i].sim_seconds, four[i].sim_seconds);
    EXPECT_EQ(one[i].time_to_failure, four[i].time_to_failure);
    EXPECT_EQ(one[i].findings, four[i].findings);
  }
}

TEST(FleetFeedback, CorpusDirPersistsByteIdenticalCorpora) {
  const std::string dir = testing::TempDir() + "acf_feedback_corpus";
  const auto first = run_fleet(2, dir);
  ASSERT_EQ(first.size(), 4u);
  auto trial0 = Corpus::load(dir + "/trial-0.corpus");
  ASSERT_TRUE(trial0.has_value());
  const auto bytes_before = trial0->encode();
  // Re-running the identical plan rewrites the identical bytes.
  const auto second = run_fleet(2, dir);
  auto again = Corpus::load(dir + "/trial-0.corpus");
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->encode(), bytes_before);
  for (std::size_t i = 0; i < 4; ++i) {
    std::remove((dir + "/trial-" + std::to_string(i) + ".corpus").c_str());
  }
}

}  // namespace
}  // namespace acf::feedback
