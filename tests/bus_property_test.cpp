// System-level property tests for the virtual bus: conservation (every
// accepted frame delivered exactly once to every other node), global
// priority ordering, timing consistency and run-to-run determinism — the
// invariants the Table V timing results rest on.
#include <gtest/gtest.h>

#include <map>

#include "sim/scheduler.hpp"
#include "trace/capture.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "util/rng.hpp"

namespace acf::can {
namespace {

struct TrafficNode : BusListener {
  void on_frame(const CanFrame& frame, sim::SimTime) override {
    ++received[frame.to_string()];
    ++total_received;
  }
  void on_tx_complete(const CanFrame& frame, sim::SimTime) override {
    ++tx_confirmed[frame.to_string()];
  }
  std::map<std::string, int> received;
  std::map<std::string, int> tx_confirmed;
  int total_received = 0;
};

TEST(BusProperty, ConservationUnderRandomLoad) {
  // 4 nodes submit random unique frames at random times; afterwards every
  // accepted frame must have been confirmed once at its sender and received
  // exactly once at each of the other 3 nodes.
  sim::Scheduler scheduler;
  VirtualBus bus(scheduler);
  constexpr int kNodes = 4;
  TrafficNode nodes[kNodes];
  NodeId ids[kNodes];
  for (int i = 0; i < kNodes; ++i) {
    ids[i] = bus.attach(nodes[i], "n" + std::to_string(i));
  }
  util::Rng rng(0xC0145);
  std::map<std::string, int> accepted;  // frame -> submissions accepted
  int submitted_ok = 0;
  for (int burst = 0; burst < 100; ++burst) {
    scheduler.run_for(std::chrono::microseconds(rng.next_in(50, 2000)));
    const int node = static_cast<int>(rng.next_below(kNodes));
    // Unique payload per submission so deliveries are distinguishable.
    const std::uint8_t payload[4] = {static_cast<std::uint8_t>(burst),
                                     static_cast<std::uint8_t>(node),
                                     rng.next_byte(), rng.next_byte()};
    const auto frame = *CanFrame::data(static_cast<std::uint32_t>(rng.next_below(2048)),
                                       payload);
    if (bus.submit(ids[node], frame)) {
      ++accepted[frame.to_string()];
      ++submitted_ok;
    }
  }
  scheduler.run_for(std::chrono::seconds(1));  // drain

  EXPECT_EQ(bus.stats().frames_delivered, static_cast<std::uint64_t>(submitted_ok));
  for (const auto& [key, count] : accepted) {
    int receivers_with_it = 0;
    for (const auto& node : nodes) {
      const auto it = node.received.find(key);
      if (it != node.received.end()) {
        EXPECT_EQ(it->second, count) << key;  // exactly once per submission
        ++receivers_with_it;
      }
    }
    EXPECT_EQ(receivers_with_it, kNodes - 1) << key;
  }
  // Total deliveries = accepted frames x (kNodes - 1).
  int total = 0;
  for (const auto& node : nodes) total += node.total_received;
  EXPECT_EQ(total, submitted_ok * (kNodes - 1));
}

TEST(BusProperty, PendingFramesAlwaysDrainInPriorityOrder) {
  // Queue frames on many nodes while the bus is busy; once it drains, the
  // observed order must be globally non-decreasing in arbitration rank
  // (per contest, the lowest pending rank wins).
  sim::Scheduler scheduler;
  VirtualBus bus(scheduler);
  trace::CaptureTap tap(bus, "tap");
  constexpr int kNodes = 8;
  std::vector<std::unique_ptr<transport::VirtualBusTransport>> nodes;
  for (int i = 0; i < kNodes; ++i) {
    nodes.push_back(std::make_unique<transport::VirtualBusTransport>(
        bus, "n" + std::to_string(i)));
  }
  util::Rng rng(7);
  // One frame per node, all submitted at the same instant.
  for (int i = 0; i < kNodes; ++i) {
    const auto id = static_cast<std::uint32_t>(rng.next_below(2048));
    nodes[static_cast<std::size_t>(i)]->send(*CanFrame::data(id, {}));
  }
  scheduler.run_for(std::chrono::milliseconds(10));
  ASSERT_EQ(tap.size(), static_cast<std::size_t>(kNodes));
  for (std::size_t i = 1; i < tap.size(); ++i) {
    EXPECT_LE(tap.frames()[i - 1].frame.arbitration_rank(),
              tap.frames()[i].frame.arbitration_rank())
        << "frame " << i;
  }
}

TEST(BusProperty, InterFrameSpacingRespectsWireTime) {
  // Back-to-back frames from one node: consecutive delivery times must be
  // separated by at least the wire time of the later frame.
  sim::Scheduler scheduler;
  VirtualBus bus(scheduler);
  trace::CaptureTap tap(bus, "tap");
  transport::VirtualBusTransport tx(bus, "tx");
  util::Rng rng(9);
  std::vector<CanFrame> sent;
  for (int i = 0; i < 40; ++i) {
    std::vector<std::uint8_t> payload(rng.next_below(9));
    rng.fill(payload);
    const auto frame = *CanFrame::data(static_cast<std::uint32_t>(rng.next_below(2048)),
                                       payload);
    if (tx.send(frame)) sent.push_back(frame);
    scheduler.run_for(std::chrono::microseconds(300));
  }
  scheduler.run_for(std::chrono::milliseconds(100));
  ASSERT_EQ(tap.size(), sent.size());
  for (std::size_t i = 1; i < tap.size(); ++i) {
    const auto gap = tap.frames()[i].time - tap.frames()[i - 1].time;
    const auto wire = frame_time(tap.frames()[i].frame);
    EXPECT_GE(gap.count(), wire.count()) << i;
  }
}

TEST(BusProperty, DeterministicAcrossRuns) {
  // Two identical runs (same seeds everywhere) must produce bit-identical
  // captures with identical timestamps — the foundation of finding replay.
  auto run = [] {
    sim::Scheduler scheduler;
    BusConfig config;
    config.corruption_probability = 0.05;
    config.seed = 0xD371;
    VirtualBus bus(scheduler, config);
    trace::CaptureTap tap(bus, "tap");
    transport::VirtualBusTransport a(bus, "a");
    transport::VirtualBusTransport b(bus, "b");
    util::Rng rng(0xD372);
    for (int i = 0; i < 300; ++i) {
      std::vector<std::uint8_t> payload(rng.next_below(9));
      rng.fill(payload);
      const auto frame = *CanFrame::data(static_cast<std::uint32_t>(rng.next_below(2048)),
                                         payload);
      (rng.next_bool(0.5) ? a : b).send(frame);
      scheduler.run_for(std::chrono::microseconds(rng.next_in(100, 500)));
    }
    scheduler.run_for(std::chrono::seconds(1));
    std::string digest;
    for (const auto& entry : tap.frames()) {
      digest += sim::format_millis(entry.time);
      digest += entry.frame.to_string();
      digest += '|';
    }
    return digest;
  };
  EXPECT_EQ(run(), run());
}

TEST(BusProperty, BatchedTapSeesExactlyWhatImmediateListenerSees) {
  // The slab-batched delivery path (CaptureTap's default) must be
  // observation-equivalent to per-frame delivery: same frames, same order,
  // same timestamps — batching only changes *when the callback runs*, never
  // what it reports.
  struct ImmediateLog final : BusListener {
    void on_frame(const CanFrame& frame, sim::SimTime time) override {
      log.push_back({frame, time});
    }
    std::vector<trace::TimestampedFrame> log;
  };
  sim::Scheduler scheduler;
  VirtualBus bus(scheduler);
  trace::CaptureTap tap(bus, "batched-tap");  // batched slab delivery
  ImmediateLog immediate;
  bus.attach(immediate, "immediate-tap", {}, /*listen_only=*/true);
  transport::VirtualBusTransport a(bus, "a");
  transport::VirtualBusTransport b(bus, "b");
  util::Rng rng(0xBA7C4);
  for (int i = 0; i < 400; ++i) {
    std::vector<std::uint8_t> payload(rng.next_below(9));
    rng.fill(payload);
    const bool extended = rng.next_bool(0.25);
    const auto id = static_cast<std::uint32_t>(
        rng.next_below(extended ? kMaxExtendedId + 1ULL : kMaxStandardId + 1ULL));
    const auto frame = *CanFrame::data(
        id, payload, extended ? IdFormat::kExtended : IdFormat::kStandard);
    (rng.next_bool(0.5) ? a : b).send(frame);
    scheduler.run_for(std::chrono::microseconds(rng.next_in(50, 400)));
  }
  scheduler.run_for(std::chrono::milliseconds(50));  // drain the bus
  const auto& batched = tap.frames();  // drains the delivery slab first
  ASSERT_EQ(batched.size(), immediate.log.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_TRUE(batched[i].frame == immediate.log[i].frame) << "frame " << i;
    EXPECT_EQ(batched[i].time.count(), immediate.log[i].time.count()) << "frame " << i;
  }
}

TEST(BusProperty, SwitchingTapToLiveCallbackMidRunLosesNothing) {
  // set_on_frame flips a tap from slab to immediate delivery mid-campaign
  // (the attack layer does this); the transition must not drop or duplicate
  // frames sitting in the slab.
  sim::Scheduler scheduler;
  VirtualBus bus(scheduler);
  trace::CaptureTap tap(bus, "tap");
  transport::VirtualBusTransport tx(bus, "tx");
  int live_seen = 0;
  for (int i = 0; i < 60; ++i) {
    tx.send(CanFrame::data_std(0x100 + static_cast<std::uint32_t>(i % 8),
                               {static_cast<std::uint8_t>(i)}));
    scheduler.run_for(std::chrono::microseconds(400));
    if (i == 30) {
      tap.set_on_frame([&live_seen](const trace::TimestampedFrame&) { ++live_seen; });
    }
  }
  scheduler.run_for(std::chrono::milliseconds(20));
  EXPECT_EQ(tap.size(), 60u);
  EXPECT_EQ(tap.total_seen(), 60u);
  EXPECT_GT(live_seen, 0);  // the live callback ran for the post-switch frames
}

TEST(BusProperty, BusyTimeNeverExceedsElapsed) {
  sim::Scheduler scheduler;
  VirtualBus bus(scheduler);
  transport::VirtualBusTransport tx(bus, "tx");
  for (int i = 0; i < 200; ++i) tx.send(CanFrame::data_std(0x100, {1, 2, 3, 4, 5, 6, 7, 8}));
  scheduler.run_for(std::chrono::milliseconds(100));
  EXPECT_LE(bus.stats().busy_time.count(), scheduler.now().count());
  EXPECT_LE(bus.stats().load(scheduler.now()), 1.0 + 1e-9);
}

}  // namespace
}  // namespace acf::can
