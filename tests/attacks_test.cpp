#include <gtest/gtest.h>

#include "attacks/attacks.hpp"
#include "resilience/supervisor.hpp"
#include "sim/scheduler.hpp"
#include "trace/capture.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "vehicle/vehicle.hpp"

namespace acf::attacks {
namespace {

TEST(DosFlood, StarvesLowerPriorityTraffic) {
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  // Victim: periodic sender at 10 ms.
  transport::VirtualBusTransport victim(bus, "victim");
  int victim_sent = 0;
  scheduler.schedule_every(std::chrono::milliseconds(10), [&] {
    if (victim.send(can::CanFrame::data_std(0x400, {1, 2, 3, 4}))) ++victim_sent;
  });
  trace::CaptureTap tap(bus, "tap");
  scheduler.run_for(std::chrono::seconds(1));
  const std::size_t baseline = tap.size();
  EXPECT_NEAR(static_cast<double>(baseline), 100.0, 3.0);

  transport::VirtualBusTransport attacker(bus, "attacker");
  DosFlood flood(scheduler, attacker);
  const sim::Duration busy_before = bus.stats().busy_time;
  flood.start();
  scheduler.run_for(std::chrono::seconds(1));
  flood.stop();

  // The flood dominates the bus: load near 100 % *during the flood window*,
  // victim frames delayed or dropped from its small queue.
  const double flood_load = sim::to_seconds(bus.stats().busy_time - busy_before);
  EXPECT_GT(flood_load, 0.8);
  std::size_t victim_delivered = 0;
  for (const auto& entry : tap.frames()) {
    if (entry.time > std::chrono::seconds(1) && entry.frame.id() == 0x400) {
      ++victim_delivered;
    }
  }
  // With id 0x000 frames saturating arbitration, the victim gets at most a
  // trickle (its queue drains only in flood gaps).
  EXPECT_LT(victim_delivered, 100u);
  EXPECT_GT(flood.frames_sent(), 3000u);
}

TEST(DosFlood, StartStopIdempotent) {
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  transport::VirtualBusTransport attacker(bus, "attacker");
  DosFlood flood(scheduler, attacker);
  flood.start();
  flood.start();  // no double-arm
  EXPECT_TRUE(flood.running());
  scheduler.run_for(std::chrono::milliseconds(10));
  flood.stop();
  const auto sent = flood.frames_sent();
  scheduler.run_for(std::chrono::milliseconds(50));
  EXPECT_EQ(flood.frames_sent(), sent);
}

TEST(SpoofAttack, OutpacesLegitimateSender) {
  // Spoof RPM=0 at 2 ms against the ECM's 10 ms cadence: the cluster gauge
  // spends most of its time on the forged value.
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  vehicle::EngineEcu engine(scheduler, bus);
  vehicle::InstrumentCluster cluster(scheduler, bus);
  scheduler.run_for(std::chrono::seconds(2));
  EXPECT_GT(cluster.rpm_gauge(), 500.0);

  transport::VirtualBusTransport attacker(bus, "attacker");
  const dbc::Database db = dbc::target_vehicle_database();
  const auto forged = db.by_id(dbc::kMsgEngineData)->encode({{"EngineRPM", 0.0}});
  SpoofAttack spoof(scheduler, attacker, *forged, std::chrono::milliseconds(2));
  spoof.start();

  // Sample the gauge between legit frames: mostly the forged zero.
  int zero_samples = 0;
  const int samples = 100;
  for (int i = 0; i < samples; ++i) {
    scheduler.run_for(std::chrono::milliseconds(2));
    if (cluster.rpm_gauge() < 100.0) ++zero_samples;
  }
  spoof.stop();
  EXPECT_GT(zero_samples, samples / 2);
  EXPECT_GT(spoof.frames_sent(), 90u);
}

TEST(ReplayAttack, CapturedUnlockReplaysAgainstWeakBcm) {
  // Hoppe & Dittman's replay (paper ref [10]) against the testbench: record
  // the legitimate unlock, re-inject it later.
  sim::Scheduler scheduler;
  vehicle::UnlockTestbench bench(scheduler);  // weak predicate, no auth
  transport::VirtualBusTransport attacker(bench.bus(), "attacker");
  ReplayAttack replay(scheduler, bench.bus(), attacker,
                      can::FilterBank{can::IdMaskFilter::exact(dbc::kMsgBodyCommand)});

  replay.record_for(std::chrono::milliseconds(100));
  bench.head_unit().request_unlock();
  scheduler.run_for(std::chrono::milliseconds(200));
  EXPECT_FALSE(replay.recording());
  ASSERT_EQ(replay.recorded_frames(), 1u);

  bench.bcm().force_lock();
  ASSERT_FALSE(bench.bcm().unlocked());
  ASSERT_TRUE(replay.replay());
  scheduler.run_for(std::chrono::milliseconds(100));
  EXPECT_TRUE(bench.bcm().unlocked());
  EXPECT_EQ(replay.frames_replayed(), 1u);
}

TEST(ReplayAttack, NothingRecordedNothingReplayed) {
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  transport::VirtualBusTransport attacker(bus, "attacker");
  ReplayAttack replay(scheduler, bus, attacker);
  EXPECT_FALSE(replay.replay());
}

TEST(DosFlood, BusOffSilencesTheFloodForGood) {
  // Regression: the flood used to ignore its controller's error state and
  // kept hammering send() while bus-off, inflating frames_sent with frames
  // fault confinement could never put on the wire.  A babbling attacker
  // whose TEC passes 255 must fall silent.
  sim::Scheduler scheduler;
  can::BusConfig config;
  config.auto_bus_off_recovery = false;  // stay off: the flood must never resume
  can::VirtualBus bus(scheduler, config);
  transport::VirtualBusTransport attacker(bus, "attacker");
  DosFlood flood(scheduler, attacker);
  flood.start();
  scheduler.run_for(std::chrono::milliseconds(100));
  EXPECT_GT(flood.frames_sent(), 0u);
  EXPECT_EQ(flood.ticks_silenced(), 0u);

  // Fault confinement catches up with the babbler: the next 32 transmission
  // attempts fail at +8 TEC each, pushing it past the 255 bus-off
  // threshold within ~8 ms of flooding.
  bus.force_tx_errors(attacker.node_id(), 32);
  scheduler.run_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(attacker.error_state().bus_off());
  const std::uint64_t sent_at_bus_off = flood.frames_sent();

  scheduler.run_for(std::chrono::milliseconds(100));
  EXPECT_EQ(flood.frames_sent(), sent_at_bus_off);  // not one more frame
  // ~434 ticks elapsed at the 230 us default period, all skipped.
  EXPECT_GT(flood.ticks_silenced(), 300u);
  flood.stop();
}

TEST(DosFlood, FloodResumesAfterBusOffRecovery) {
  // With standard auto-recovery (128 x 11 recessive bit times) the attacker
  // re-joins and the flood picks back up — silenced ticks bound the gap.
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);  // auto_bus_off_recovery = true
  transport::VirtualBusTransport attacker(bus, "attacker");
  DosFlood flood(scheduler, attacker);
  flood.start();
  scheduler.run_for(std::chrono::milliseconds(50));
  bus.force_tx_errors(attacker.node_id(), 32);
  // The recovery window (128 x 11 recessive bit times, ~2.8 ms at 500 kb/s)
  // is shorter than the error burn-down, so sample in 1 ms steps to catch
  // the off state before the node re-joins.
  bool went_bus_off = false;
  for (int step = 0; step < 20 && !went_bus_off; ++step) {
    scheduler.run_for(std::chrono::milliseconds(1));
    went_bus_off = attacker.error_state().bus_off();
  }
  ASSERT_TRUE(went_bus_off);
  const std::uint64_t sent_at_bus_off = flood.frames_sent();

  scheduler.run_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(attacker.error_state().bus_off());
  EXPECT_GT(flood.frames_sent(), sent_at_bus_off);
  EXPECT_GT(flood.ticks_silenced(), 0u);
  flood.stop();
}

TEST(DosFlood, SupervisionOracleSeesTheBabblerGoBusOff) {
  // The PR 1 supervision layer observes the same story from outside: the
  // flooding node trips the babbling ceiling, then fault confinement takes
  // it off the bus and the supervisor records the kBusOff event.
  sim::Scheduler scheduler;
  can::BusConfig config;
  config.auto_bus_off_recovery = false;
  can::VirtualBus bus(scheduler, config);
  transport::VirtualBusTransport attacker(bus, "attacker");
  resilience::SupervisorConfig watch_config;
  watch_config.restart_budget = 1;
  resilience::NodeSupervisor supervisor(scheduler, bus, watch_config);
  supervisor.watch(attacker.node_id());
  supervisor.start();

  DosFlood flood(scheduler, attacker);
  flood.start();
  scheduler.run_for(std::chrono::milliseconds(50));
  bus.force_tx_errors(attacker.node_id(), 32);
  scheduler.run_for(std::chrono::milliseconds(200));
  flood.stop();

  bool saw_bus_off = false;
  for (const resilience::SupervisionEvent& event : supervisor.events()) {
    if (event.type == resilience::SupervisionEventType::kBusOff &&
        event.node == attacker.node_id()) {
      saw_bus_off = true;
    }
  }
  EXPECT_TRUE(saw_bus_off);
}

TEST(XcpTamper, ExtinguishesTheMilRemotely) {
  // The paper's warning made concrete: the XCP channel added for test
  // monitoring lets an attacker clear the warning lamp that fuzzing lit.
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  vehicle::InstrumentCluster cluster(scheduler, bus);
  transport::VirtualBusTransport sender(bus, "sender");
  const dbc::Database db = dbc::target_vehicle_database();
  sender.send(*db.by_id(dbc::kMsgEngineData)->encode({{"EngineRPM", -500.0}}));
  scheduler.run_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(cluster.mil_on());

  transport::VirtualBusTransport attacker(bus, "attacker");
  XcpTamper tamper(scheduler, attacker, vehicle::InstrumentCluster::kXcpRxId,
                   vehicle::InstrumentCluster::kXcpTxId);
  const std::uint8_t douse[1] = {0x00};
  EXPECT_TRUE(tamper.overwrite(vehicle::InstrumentCluster::kXcpAddrFlags, douse));
  EXPECT_FALSE(cluster.mil_on());
}

TEST(XcpTamper, PeeksInternalState) {
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  vehicle::InstrumentCluster cluster(scheduler, bus);
  transport::VirtualBusTransport sender(bus, "sender");
  const dbc::Database db = dbc::target_vehicle_database();
  sender.send(*db.by_id(dbc::kMsgEngineData)->encode({{"EngineRPM", 3123.0}}));
  scheduler.run_for(std::chrono::milliseconds(5));

  transport::VirtualBusTransport attacker(bus, "attacker");
  XcpTamper tamper(scheduler, attacker, vehicle::InstrumentCluster::kXcpRxId,
                   vehicle::InstrumentCluster::kXcpTxId);
  const auto bytes = tamper.peek(vehicle::InstrumentCluster::kXcpAddrRpm, 4);
  ASSERT_TRUE(bytes.has_value());
  const auto value = xcp::XcpMaster::as_u32(bytes);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, 3123u);
  EXPECT_TRUE(tamper.peek(0xFFFF0000, 4) == std::nullopt);
}

TEST(XcpTamper, ReadOnlyAddressesRejectWrites) {
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  vehicle::InstrumentCluster cluster(scheduler, bus);
  transport::VirtualBusTransport attacker(bus, "attacker");
  XcpTamper tamper(scheduler, attacker, vehicle::InstrumentCluster::kXcpRxId,
                   vehicle::InstrumentCluster::kXcpTxId);
  const std::uint8_t data[2] = {0xAA, 0xBB};
  EXPECT_FALSE(tamper.overwrite(vehicle::InstrumentCluster::kXcpAddrRpm, data));
}

}  // namespace
}  // namespace acf::attacks
