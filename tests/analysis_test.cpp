#include <gtest/gtest.h>

#include "analysis/byte_stats.hpp"
#include "analysis/combinatorics.hpp"
#include "analysis/report.hpp"
#include "analysis/survey.hpp"
#include "util/rng.hpp"

namespace acf::analysis {
namespace {

// ---------------------------------------------------------- byte stats ----

TEST(BytePositionStats, PerPositionMeans) {
  BytePositionStats stats;
  stats.add(can::CanFrame::data_std(0x1, {0, 100}));
  stats.add(can::CanFrame::data_std(0x1, {50, 200}));
  EXPECT_EQ(stats.frames(), 2u);
  EXPECT_DOUBLE_EQ(stats.mean(0), 25.0);
  EXPECT_DOUBLE_EQ(stats.mean(1), 150.0);
  EXPECT_EQ(stats.count(0), 2u);
  EXPECT_EQ(stats.count(7), 0u);
  EXPECT_DOUBLE_EQ(stats.overall_mean(), 87.5);
}

TEST(BytePositionStats, ShortFramesOnlyCountPresentPositions) {
  BytePositionStats stats;
  stats.add(can::CanFrame::data_std(0x1, {10}));
  stats.add(can::CanFrame::data_std(0x1, {20, 30}));
  EXPECT_EQ(stats.count(0), 2u);
  EXPECT_EQ(stats.count(1), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(1), 30.0);
}

TEST(BytePositionStats, RemoteFramesIgnored) {
  BytePositionStats stats;
  stats.add(*can::CanFrame::remote(0x1, 8));
  EXPECT_EQ(stats.frames(), 0u);
}

TEST(BytePositionStats, UniformInputIsFlat) {
  util::Rng rng(0x5747);
  BytePositionStats stats;
  for (int i = 0; i < 50000; ++i) {
    std::uint8_t payload[8];
    rng.fill(payload);
    stats.add(*can::CanFrame::data(0x100, payload));
  }
  EXPECT_NEAR(stats.overall_mean(), 127.5, 1.0);
  EXPECT_LT(stats.flatness(), 2.0);
  const double chi = util::chi_square_uniform(stats.value_histogram(3));
  EXPECT_TRUE(util::chi_square_accepts_uniform(chi, 255));
}

TEST(BytePositionStats, StructuredInputIsNotFlat) {
  // Vehicle-like traffic: constants, zeros and 0xFF padding per position.
  BytePositionStats stats;
  for (int i = 0; i < 1000; ++i) {
    stats.add(can::CanFrame::data_std(0x43A, {0x1C, 0x21, 0x17, 0x71, 0x17, 0x71, 0xFF, 0xFF}));
    stats.add(can::CanFrame::data_std(0x4B0, {0, 0, 0, 0, 0, 0, 0, 0}));
  }
  EXPECT_GT(stats.flatness(), 30.0);
  const double chi = util::chi_square_uniform(stats.value_histogram(0));
  EXPECT_FALSE(util::chi_square_accepts_uniform(chi, 255));
}

// ------------------------------------------------------- combinatorics ----

TEST(Combinatorics, PaperWorkedExample) {
  EXPECT_EQ(fixed_length_space(1), 524288u);  // 2^19
  EXPECT_EQ(fixed_length_space(0), 2048u);
  EXPECT_EQ(fixed_length_space(2), 2048ULL * 65536);
  EXPECT_EQ(fixed_length_space(8), std::numeric_limits<std::uint64_t>::max());  // saturates
}

TEST(Combinatorics, SpaceReportForRestrictedConfig) {
  fuzzer::FuzzConfig config;
  config.id_min = 0;
  config.id_max = 1;
  config.dlc_min = 1;
  config.dlc_max = 1;
  config.byte_ranges[0] = {0, 15};
  const SpaceReport report = analyze_space(config);
  EXPECT_EQ(report.id_space, 2u);
  EXPECT_EQ(report.frame_space, 32u);
  EXPECT_FALSE(report.saturated);
  EXPECT_EQ(report.exhaust_time, std::chrono::milliseconds(32));
}

TEST(Combinatorics, HumanizeDurations) {
  EXPECT_EQ(humanize_duration(30.0), "30.0 s");
  EXPECT_EQ(humanize_duration(524.0), "8.7 min");
  EXPECT_EQ(humanize_duration(86400.0 * 1.55), "1.55 days");
  EXPECT_NE(humanize_duration(3.2e13).find("years"), std::string::npos);
}

// ------------------------------------------------------------- report -----

TEST(TextTable, AlignsColumns) {
  TextTable table({"Id", "Data"});
  table.add_row({"043A", "1C 21"});
  table.add_row({"5", "x"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("| Id   | Data  |"), std::string::npos);
  EXPECT_NE(text.find("| 043A | 1C 21 |"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable table({"A", "B", "C"});
  table.add_row({"1"});
  EXPECT_NE(table.to_string().find("| 1 |"), std::string::npos);
}

TEST(BarChart, ScalesToMax) {
  const std::string labels[] = {"a", "bb"};
  const double values[] = {50.0, 100.0};
  const std::string chart = bar_chart(labels, values, 100.0, 10);
  EXPECT_NE(chart.find("bb |##########"), std::string::npos);
  EXPECT_NE(chart.find("a  |#####"), std::string::npos);
}

TEST(SeriesChart, RendersOneRowPerSample) {
  const double times[] = {0.0, 1.0, 2.0};
  const double values[] = {0.0, 50.0, 100.0};
  const std::string chart = series_chart(times, values, "rpm", 0.0, 100.0, 11);
  EXPECT_EQ(std::count(chart.begin(), chart.end(), '\n'), 4);  // header + 3 rows
  EXPECT_NE(chart.find("rpm"), std::string::npos);
}

TEST(FormatNumber, Decimals) {
  EXPECT_EQ(format_number(431.4), "431");
  EXPECT_EQ(format_number(1959.46, 1), "1959.5");
}

// ------------------------------------------------------------- survey -----

TEST(Survey, FuzzTestingNearTheBottom) {
  const auto survey = testing_method_survey();
  ASSERT_GT(survey.size(), 5u);
  // Descending order, functional testing dominant, fuzzing marginal.
  for (std::size_t i = 1; i < survey.size(); ++i) {
    EXPECT_GE(survey[i - 1].usage_pct, survey[i].usage_pct);
  }
  EXPECT_EQ(survey.front().method, "Functional testing");
  double fuzz_pct = -1.0;
  for (const auto& entry : survey) {
    if (entry.method == "Fuzz testing") fuzz_pct = entry.usage_pct;
  }
  ASSERT_GE(fuzz_pct, 0.0);
  EXPECT_LT(fuzz_pct, 15.0);
  EXPECT_LT(fuzz_pct, survey.front().usage_pct / 5);
}

TEST(Survey, ChartRendersAllMethods) {
  const std::string chart = render_survey_chart();
  EXPECT_NE(chart.find("Fuzz testing"), std::string::npos);
  EXPECT_NE(chart.find("Functional testing"), std::string::npos);
}

}  // namespace
}  // namespace acf::analysis
