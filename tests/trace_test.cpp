#include <gtest/gtest.h>

#include <sstream>

#include "sim/scheduler.hpp"
#include "trace/candump_log.hpp"
#include "trace/replay.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "util/rng.hpp"

namespace acf::trace {
namespace {

TimestampedFrame entry(std::uint32_t id, std::initializer_list<std::uint8_t> payload,
                       std::int64_t ns) {
  return {can::CanFrame::data_std(id, payload), sim::SimTime{ns}};
}

// ------------------------------------------------------------ capture -----

TEST(CaptureTap, RecordsBusTraffic) {
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  CaptureTap tap(bus, "tap");
  transport::VirtualBusTransport tx(bus, "tx");
  tx.send(can::CanFrame::data_std(0x43A, {0x1C}));
  tx.send(can::CanFrame::data_std(0x296, {}));
  scheduler.run_for(std::chrono::milliseconds(2));
  ASSERT_EQ(tap.size(), 2u);
  EXPECT_EQ(tap.frames()[0].frame.id(), 0x43Au);
  EXPECT_LT(tap.frames()[0].time, tap.frames()[1].time);
  EXPECT_EQ(tap.total_seen(), 2u);
}

TEST(CaptureTap, LimitStopsGrowthButKeepsCounting) {
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  CaptureTap tap(bus, "tap", /*limit=*/3);
  transport::VirtualBusTransport tx(bus, "tx");
  for (int i = 0; i < 10; ++i) {
    tx.send(can::CanFrame::data_std(0x100, {static_cast<std::uint8_t>(i)}));
    scheduler.run_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(tap.size(), 3u);
  EXPECT_EQ(tap.total_seen(), 10u);
  EXPECT_EQ(tap.frames()[0].frame.payload()[0], 0u);  // first 3, not last 3
}

TEST(CaptureTap, LiveCallbackFires) {
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  CaptureTap tap(bus, "tap");
  int live = 0;
  tap.set_on_frame([&](const TimestampedFrame&) { ++live; });
  transport::VirtualBusTransport tx(bus, "tx");
  tx.send(can::CanFrame::data_std(0x1, {}));
  scheduler.run_for(std::chrono::milliseconds(1));
  EXPECT_EQ(live, 1);
}

// ------------------------------------------------------------ candump -----

TEST(Candump, LineRendering) {
  const auto line = to_candump_line(entry(0x43A, {0x1C, 0x21, 0x17, 0x71}, 5'328'009'000));
  EXPECT_EQ(line, "(5.328009) can0 43A#1C211771");
}

TEST(Candump, RemoteAndEmptyFrames) {
  EXPECT_EQ(to_candump_line({*can::CanFrame::remote(0x123, 4), sim::SimTime{0}}),
            "(0.000000) can0 123#R4");
  EXPECT_EQ(to_candump_line(entry(0x68, {}, 0)), "(0.000000) can0 068#");
}

TEST(Candump, ParseDataLine) {
  const auto parsed = parse_candump_line("(5.328009) can0 43A#1C211771");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->frame.id(), 0x43Au);
  EXPECT_EQ(parsed->frame.length(), 4u);
  EXPECT_EQ(parsed->time, sim::SimTime{5'328'009'000});
}

TEST(Candump, ParseExtendedId) {
  const auto parsed = parse_candump_line("(1.000000) can0 1ABCDEF3#42");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->frame.is_extended());
  EXPECT_EQ(parsed->frame.id(), 0x1ABCDEF3u);
}

TEST(Candump, ParseMalformedReturnsNullopt) {
  EXPECT_FALSE(parse_candump_line("").has_value());
  EXPECT_FALSE(parse_candump_line("garbage").has_value());
  EXPECT_FALSE(parse_candump_line("(1.0) can0").has_value());          // no hash
  EXPECT_FALSE(parse_candump_line("(1.x) can0 123#11").has_value());   // bad stamp
  EXPECT_FALSE(parse_candump_line("(1.0) can0 XYZ#11").has_value());   // bad id
  EXPECT_FALSE(parse_candump_line("(1.0) can0 123#1").has_value());    // odd nibble
  EXPECT_FALSE(parse_candump_line("(1.0) can0 123#R9").has_value());   // dlc > 8
}

TEST(Candump, HostileTimestampsRejectedNotMisread) {
  // Regression: stamps used to be parsed as double and multiplied into an
  // int64 nanosecond count — "inf" or 20-digit seconds overflowed the cast
  // (UB) instead of failing.  Timestamps are now integer-parsed and bounded.
  EXPECT_FALSE(parse_candump_line("(inf.000000) can0 123#AA").has_value());
  EXPECT_FALSE(parse_candump_line("(1e308.000000) can0 123#AA").has_value());
  EXPECT_FALSE(parse_candump_line("(nan.nan) can0 123#AA").has_value());
  EXPECT_FALSE(parse_candump_line("(-5.000000) can0 123#AA").has_value());
  EXPECT_FALSE(
      parse_candump_line("(99999999999999999999.000000) can0 123#AA").has_value());
  EXPECT_FALSE(
      parse_candump_line("(18446744073709551615.999999) can0 123#AA").has_value());
  // The largest representable stamp still parses.
  const auto last = parse_candump_line("(9223372034.999999) can0 123#AA");
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->time.count(), 9'223'372'034'999'999'000LL);
}

TEST(Candump, StreamRoundTripPreservesEverything) {
  util::Rng rng(0x72);
  std::vector<TimestampedFrame> frames;
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> payload(rng.next_below(9));
    rng.fill(payload);
    const bool extended = rng.next_bool(0.2);
    const std::uint32_t id = static_cast<std::uint32_t>(rng.next_below(
        extended ? can::kMaxExtendedId + 1ULL : can::kMaxStandardId + 1ULL));
    const auto frame = can::CanFrame::data(
        id, payload, extended ? can::IdFormat::kExtended : can::IdFormat::kStandard);
    frames.push_back({*frame, sim::SimTime{static_cast<std::int64_t>(i) * 1'000'000}});
  }
  std::stringstream stream;
  write_candump(stream, frames);
  std::vector<std::string> errors;
  const auto loaded = read_candump(stream, &errors);
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(loaded.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(loaded[i].frame, frames[i].frame) << i;
    EXPECT_EQ(loaded[i].time, frames[i].time) << i;
  }
}

TEST(Candump, ReadCollectsErrorsAndContinues) {
  std::stringstream stream("(1.000000) can0 100#11\nnot a line\n(2.000000) can0 200#22\n");
  std::vector<std::string> errors;
  const auto loaded = read_candump(stream, &errors);
  EXPECT_EQ(loaded.size(), 2u);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("line 2"), std::string::npos);
}

TEST(Candump, FdFrameRoundTrip) {
  std::vector<std::uint8_t> payload(16, 0x5A);
  const TimestampedFrame fd{*can::CanFrame::fd_data(0x123, payload, true),
                            sim::SimTime{1'500'000}};
  const auto line = to_candump_line(fd);
  const auto parsed = parse_candump_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->frame, fd.frame);
}

// ------------------------------------------------------------- replay -----

TEST(Replayer, PreservesRelativeTiming) {
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  CaptureTap tap(bus, "tap");
  transport::VirtualBusTransport injector(bus, "replayer");

  const std::vector<TimestampedFrame> trace = {
      entry(0x100, {1}, 1'000'000'000),  // t=1s in the original capture
      entry(0x200, {2}, 1'010'000'000),  // +10 ms
      entry(0x300, {3}, 1'050'000'000),  // +50 ms
  };
  Replayer replayer(scheduler, injector, trace);
  scheduler.run_for(std::chrono::milliseconds(5));  // start offset
  replayer.start();
  scheduler.run_for(std::chrono::milliseconds(100));
  ASSERT_EQ(tap.size(), 3u);
  // Relative gaps preserved (within one frame-time of bus serialisation).
  const auto gap1 = tap.frames()[1].time - tap.frames()[0].time;
  const auto gap2 = tap.frames()[2].time - tap.frames()[1].time;
  EXPECT_NEAR(sim::to_millis(gap1), 10.0, 1.0);
  EXPECT_NEAR(sim::to_millis(gap2), 40.0, 1.0);
  EXPECT_EQ(replayer.frames_sent(), 3u);
  EXPECT_FALSE(replayer.running());
}

TEST(Replayer, TimeScaleStretchesGaps) {
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  CaptureTap tap(bus, "tap");
  transport::VirtualBusTransport injector(bus, "replayer");
  const std::vector<TimestampedFrame> trace = {entry(0x1, {}, 0),
                                               entry(0x2, {}, 10'000'000)};
  ReplayOptions options;
  options.time_scale = 3.0;
  Replayer replayer(scheduler, injector, trace, options);
  replayer.start();
  scheduler.run_for(std::chrono::milliseconds(100));
  ASSERT_EQ(tap.size(), 2u);
  EXPECT_NEAR(sim::to_millis(tap.frames()[1].time - tap.frames()[0].time), 30.0, 1.0);
}

TEST(Replayer, RepeatsAndReportsCompletion) {
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  CaptureTap tap(bus, "tap");
  transport::VirtualBusTransport injector(bus, "replayer");
  const std::vector<TimestampedFrame> trace = {entry(0x1, {}, 0), entry(0x2, {}, 1'000'000)};
  ReplayOptions options;
  options.repeat = 3;
  Replayer replayer(scheduler, injector, trace, options);
  bool done = false;
  replayer.set_on_done([&] { done = true; });
  replayer.start();
  scheduler.run_for(std::chrono::seconds(1));
  EXPECT_EQ(replayer.frames_sent(), 6u);
  EXPECT_EQ(replayer.repetitions_completed(), 3u);
  EXPECT_TRUE(done);
  EXPECT_EQ(tap.size(), 6u);
}

TEST(Replayer, StopHaltsMidway) {
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  CaptureTap tap(bus, "tap");
  transport::VirtualBusTransport injector(bus, "replayer");
  std::vector<TimestampedFrame> trace;
  for (int i = 0; i < 10; ++i) trace.push_back(entry(0x1, {}, i * 10'000'000));
  Replayer replayer(scheduler, injector, trace);
  replayer.start();
  scheduler.run_for(std::chrono::milliseconds(25));
  replayer.stop();
  scheduler.run_for(std::chrono::milliseconds(200));
  EXPECT_LT(tap.size(), 10u);
  EXPECT_FALSE(replayer.running());
}

TEST(Replayer, EmptyTraceIsNoop) {
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  transport::VirtualBusTransport injector(bus, "replayer");
  Replayer replayer(scheduler, injector, {});
  replayer.start();
  EXPECT_FALSE(replayer.running());
}

}  // namespace
}  // namespace acf::trace
