// Intrusion-detection subsystem tests: detector models, pipeline alert
// merging, the alert->finding oracle bridge, ground-truth evaluation, clean
// candump replay (zero false positives) and fleet-scale determinism.  All
// suites are named Ids* so the TSan CI leg can select them together with the
// fleet suites via `ctest -R '^(Fleet|Ids)'`.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dbc/target_vehicle_db.hpp"
#include "fleet/executor.hpp"
#include "fuzzer/generator.hpp"
#include "ids/alert_oracle.hpp"
#include "ids/detectors.hpp"
#include "ids/evaluation.hpp"
#include "ids/ids_world.hpp"
#include "ids/pipeline.hpp"
#include "sim/scheduler.hpp"
#include "trace/candump_log.hpp"
#include "trace/capture.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "util/stats.hpp"
#include "vehicle/vehicle.hpp"

namespace acf::ids {
namespace {

using can::CanFrame;
using sim::SimTime;
using namespace std::chrono_literals;

/// Minimal database: one 4-byte message carrying one ranged signal.
dbc::Database tiny_db() {
  dbc::Database db;
  dbc::MessageDef m;
  m.id = 0x100;
  m.name = "TINY";
  m.dlc = 4;
  dbc::SignalDef s;
  s.name = "Value";
  s.start_bit = 0;
  s.bit_length = 8;
  s.min = 0.0;
  s.max = 100.0;
  m.signals.push_back(s);
  db.add(std::move(m));
  return db;
}

// ----------------------------------------------------------- detectors -----

TEST(IdsAllowlist, DbSeededThenExtendedByTraining) {
  AllowlistDetector detector(tiny_db());
  EXPECT_EQ(detector.known_ids(), 1u);
  // Declared id at the declared DLC is clean.
  EXPECT_DOUBLE_EQ(detector.score(CanFrame::data_std(0x100, {1, 2, 3, 4}), 0ns), 0.0);
  // Declared id at an unseen DLC is suspicious, unknown id is maximal.
  EXPECT_DOUBLE_EQ(detector.score(CanFrame::data_std(0x100, {1, 2}), 0ns), 0.75);
  EXPECT_DOUBLE_EQ(detector.score(CanFrame::data_std(0x200, {0}), 0ns), 1.0);
  // Training extends the allowlist with observed traffic.
  detector.train(CanFrame::data_std(0x200, {0}), 0ns);
  EXPECT_DOUBLE_EQ(detector.score(CanFrame::data_std(0x200, {0}), 0ns), 0.0);
}

TEST(IdsDlcConsistency, FlagsOnlyDeclaredIdMismatches) {
  DlcConsistencyDetector detector(tiny_db());
  EXPECT_DOUBLE_EQ(detector.score(CanFrame::data_std(0x100, {1, 2, 3, 4}), 0ns), 0.0);
  EXPECT_DOUBLE_EQ(detector.score(CanFrame::data_std(0x100, {1, 2, 3}), 0ns), 1.0);
  EXPECT_DOUBLE_EQ(detector.score(*CanFrame::remote(0x100, 4), 0ns), 1.0);
  // Undeclared ids are the allowlist's job, not this detector's.
  EXPECT_DOUBLE_EQ(detector.score(CanFrame::data_std(0x7AB, {1}), 0ns), 0.0);
}

// The detector and the hardened BCM predicate must share one DLC check
// (MessageDef::dlc_matches): a short command the BCM rejects is exactly a
// frame the detector flags.
TEST(IdsDlcConsistency, AgreesWithHardenedBcmPredicate) {
  sim::Scheduler scheduler;
  vehicle::UnlockTestbench bench(scheduler, vehicle::UnlockPredicate::id_byte_and_length());
  DlcConsistencyDetector detector(dbc::target_vehicle_database());
  transport::VirtualBusTransport attacker(bench.bus(), "attacker");

  // DLC 1 unlock command: detector flags it AND the hardened BCM rejects it.
  const CanFrame short_cmd = CanFrame::data_std(dbc::kMsgBodyCommand, {dbc::kCmdUnlock});
  EXPECT_DOUBLE_EQ(detector.score(short_cmd, 0ns), 1.0);
  attacker.send(short_cmd);
  scheduler.run_for(10ms);
  EXPECT_EQ(bench.bcm().unlock_events(), 0u);

  // The legitimate DLC-7 command passes both.
  const CanFrame good_cmd = CanFrame::data_std(
      dbc::kMsgBodyCommand, {dbc::kCmdUnlock, 0x5F, 0x01, 0x00, 0x01, 0x20, 0x00});
  EXPECT_DOUBLE_EQ(detector.score(good_cmd, 0ns), 0.0);
  attacker.send(good_cmd);
  scheduler.run_for(10ms);
  EXPECT_EQ(bench.bcm().unlock_events(), 1u);
}

TEST(IdsTiming, LearnsPeriodAndFlagsMidCycleInjection) {
  TimingDetector detector;
  const CanFrame frame = CanFrame::data_std(0x21A, {0, 0, 0, 0});
  for (int i = 0; i < 50; ++i) {
    detector.train(frame, SimTime(i * 100ms));
  }
  detector.finalize_training();
  ASSERT_EQ(detector.modeled_ids(), 1u);
  const double lo = detector.lower_bound_s(0x21A);
  EXPECT_GT(lo, 0.0);
  EXPECT_LT(lo, 0.1);
  // The first detection frame only seeds the arrival clock.
  EXPECT_DOUBLE_EQ(detector.score(frame, 5000ms), 0.0);
  // On-schedule frames stay clean; a frame 1 ms later is flagrant.
  EXPECT_DOUBLE_EQ(detector.score(frame, 5100ms), 0.0);
  EXPECT_GT(detector.score(frame, 5101ms), 0.9);
  // Unmodeled ids (too few training frames) never score.
  EXPECT_DOUBLE_EQ(detector.lower_bound_s(0x599), -1.0);
  EXPECT_DOUBLE_EQ(detector.score(CanFrame::data_std(0x599, {1}), 5102ms), 0.0);
}

TEST(IdsRange, ScoresOutOfRangeSignalFraction) {
  RangeDetector detector(tiny_db());
  // Value 50 is inside [0,100]; raw 0xFF decodes to 255, outside.
  EXPECT_DOUBLE_EQ(detector.score(CanFrame::data_std(0x100, {50, 0, 0, 0}), 0ns), 0.0);
  EXPECT_DOUBLE_EQ(detector.score(CanFrame::data_std(0x100, {0xFF, 0, 0, 0}), 0ns), 1.0);
  // Undeclared id and too-short frames (signal absent) score 0.
  EXPECT_DOUBLE_EQ(detector.score(CanFrame::data_std(0x300, {0xFF}), 0ns), 0.0);
}

TEST(IdsRange, FlagsNegativeRpmFromFuzzedBits) {
  // Paper Fig. 8: random bits in ENGINE_DATA decode as negative RPM.
  RangeDetector detector(dbc::target_vehicle_database());
  const CanFrame fuzzed = CanFrame::data_std(
      dbc::kMsgEngineData, {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF});
  EXPECT_GT(detector.score(fuzzed, 0ns), 0.5);
}

TEST(IdsEntropy, SeparatesConstantTrafficFromRandomPayloads) {
  EntropyDetector detector;
  const CanFrame constant = CanFrame::data_std(0x300, {0x10, 0x20, 0x30, 0x40});
  for (int i = 0; i < 64; ++i) detector.train(constant, SimTime(i * 1ms));
  detector.finalize_training();
  EXPECT_LT(detector.window_entropy(0x300), 0.4);

  // Clean traffic keeps scoring at its baseline.
  EXPECT_LT(detector.score(constant, 100ms), 0.1);

  // Random payloads on the same id drive the window toward uniform.
  fuzzer::FuzzConfig fuzz = fuzzer::FuzzConfig::targeted({0x300});
  fuzzer::RandomGenerator generator(fuzz);
  double last = 0.0;
  for (int i = 0; i < 64; ++i) {
    last = detector.score(*generator.next(), SimTime(200ms + i * 1ms));
  }
  EXPECT_GT(last, 0.6);
}

TEST(IdsDetectors, StandardSetCarriesFourDetectors) {
  const auto detectors = standard_detectors(dbc::target_vehicle_database());
  ASSERT_EQ(detectors.size(), 4u);
  EXPECT_EQ(detectors[0]->name(), "allowlist");
  EXPECT_EQ(detectors[1]->name(), "timing");
  EXPECT_EQ(detectors[2]->name(), "range");
  EXPECT_EQ(detectors[3]->name(), "entropy");
}

// ------------------------------------------------------------- pipeline -----

TEST(IdsPipeline, CooldownMergesRepeatAlerts) {
  Pipeline pipeline;
  const std::size_t idx = pipeline.add(std::make_unique<DlcConsistencyDetector>(tiny_db()));
  pipeline.begin_training();
  pipeline.observe(CanFrame::data_std(0x100, {1, 2, 3, 4}), 0ns);
  pipeline.begin_detection();

  const CanFrame bad = CanFrame::data_std(0x100, {1});
  pipeline.observe(bad, 1000ms);   // alert
  pipeline.observe(bad, 1100ms);   // inside the 1 s cooldown: suppressed
  pipeline.observe(bad, 2500ms);   // past the cooldown: second alert
  const PipelineCounters counters = pipeline.counters();
  EXPECT_EQ(counters.frames_trained, 1u);
  EXPECT_EQ(counters.frames_scored, 3u);
  EXPECT_EQ(counters.alerts_raised, 2u);
  EXPECT_EQ(counters.alerts_suppressed, 1u);
  EXPECT_EQ(pipeline.alerts_for(idx), 2u);

  const std::vector<Alert> alerts = pipeline.drain_alerts();
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].detector_name, "dlc-consistency");
  EXPECT_EQ(alerts[0].can_id, 0x100u);
  EXPECT_DOUBLE_EQ(alerts[0].score, 1.0);
  EXPECT_EQ(alerts[0].time, SimTime(1000ms));
  EXPECT_NE(alerts[0].to_string().find("dlc-consistency id=0x100"), std::string::npos);
  EXPECT_TRUE(pipeline.drain_alerts().empty());
}

TEST(IdsPipeline, BoundedAlertQueueCountsDrops) {
  PipelineConfig config;
  config.max_pending_alerts = 2;
  Pipeline pipeline(config);
  pipeline.add(std::make_unique<AllowlistDetector>(tiny_db()));
  pipeline.begin_detection();
  // Four distinct unknown ids: no cooldown merging, queue bounded at 2.
  for (std::uint32_t id = 0x400; id < 0x404; ++id) {
    pipeline.observe(CanFrame::data_std(id, {0}), 0ns);
  }
  EXPECT_EQ(pipeline.counters().alerts_raised, 4u);
  EXPECT_EQ(pipeline.counters().alerts_dropped, 2u);
  EXPECT_EQ(pipeline.drain_alerts().size(), 2u);
}

TEST(IdsPipeline, ScoreHookSeesEveryDetectorInOrder) {
  Pipeline pipeline;
  pipeline.add(std::make_unique<AllowlistDetector>(tiny_db()));
  pipeline.add(std::make_unique<DlcConsistencyDetector>(tiny_db()));
  std::vector<std::vector<double>> rows;
  pipeline.set_score_hook(
      [&rows](const CanFrame&, SimTime, std::span<const double> scores) {
        rows.emplace_back(scores.begin(), scores.end());
      });
  pipeline.begin_detection();
  pipeline.observe(CanFrame::data_std(0x100, {1, 2}), 0ns);  // known id, wrong dlc
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0][0], 0.75);  // allowlist: unseen DLC
  EXPECT_DOUBLE_EQ(rows[0][1], 1.0);   // dlc-consistency: mismatch
}

TEST(IdsPipeline, BusTapObservesEcuTrafficInvisibly) {
  sim::Scheduler scheduler;
  vehicle::UnlockTestbench bench(scheduler);
  Pipeline pipeline;
  pipeline.add(std::make_unique<AllowlistDetector>(dbc::target_vehicle_database()));
  pipeline.attach(bench.bus(), "ids-tap");
  pipeline.begin_training();
  scheduler.run_for(1s);
  // The BCM's two 100 ms periodics alone give ~20 frames.
  EXPECT_GE(pipeline.counters().frames_trained, 18u);
  pipeline.begin_detection();
  scheduler.run_for(1s);
  EXPECT_GE(pipeline.counters().frames_scored, 18u);
  EXPECT_EQ(pipeline.counters().alerts_raised, 0u);  // clean bench traffic
  pipeline.detach();
}

TEST(IdsPipeline, DetectionIsAPureFunctionOfTheStream) {
  auto run = [](std::vector<std::string>& out) {
    Pipeline pipeline;
    pipeline.add(std::make_unique<AllowlistDetector>(tiny_db()));
    pipeline.add(std::make_unique<TimingDetector>());
    pipeline.begin_training();
    for (int i = 0; i < 20; ++i) {
      pipeline.observe(CanFrame::data_std(0x100, {1, 2, 3, 4}), SimTime(i * 100ms));
    }
    pipeline.begin_detection();
    for (int i = 0; i < 20; ++i) {
      pipeline.observe(CanFrame::data_std(0x100, {1, 2, 3, 4}), SimTime(2s + i * 100ms));
      pipeline.observe(CanFrame::data_std(0x5A5, {9}), SimTime(2s + i * 100ms + 1ms));
    }
    for (const Alert& alert : pipeline.drain_alerts()) out.push_back(alert.to_string());
  };
  std::vector<std::string> first, second;
  run(first);
  run(second);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// --------------------------------------------------------- alert oracle -----

TEST(IdsAlertOracle, BridgesAlertBatchesToObservations) {
  Pipeline pipeline;
  pipeline.add(std::make_unique<AllowlistDetector>(tiny_db()));
  AlertOracle oracle(pipeline);
  pipeline.begin_detection();
  EXPECT_FALSE(oracle.poll(0ns).has_value());

  pipeline.observe(CanFrame::data_std(0x400, {0}), 500ms);
  pipeline.observe(CanFrame::data_std(0x401, {0}), 600ms);
  const auto observation = oracle.poll(1000ms);
  ASSERT_TRUE(observation.has_value());
  EXPECT_EQ(observation->verdict, oracle::Verdict::kSuspicious);
  EXPECT_EQ(observation->time, SimTime(500ms));  // first alert of the batch
  EXPECT_NE(observation->detail.find("ids: 2 alert(s)"), std::string::npos);
  EXPECT_EQ(oracle.alerts_reported(), 2u);
  // Drained: the next poll is quiet.
  EXPECT_FALSE(oracle.poll(2000ms).has_value());
}

// ----------------------------------------------------------- evaluation -----

TEST(IdsEvaluation, FrameLabelerMatchesFifoByContent) {
  FrameLabeler labeler;
  const CanFrame frame = CanFrame::data_std(0x123, {0xAB, 0xCD});
  labeler.note_injected(frame);
  labeler.note_injected(frame);
  EXPECT_EQ(labeler.injected(), 2u);
  EXPECT_TRUE(labeler.consume_if_attack(frame));
  EXPECT_TRUE(labeler.consume_if_attack(frame));
  EXPECT_FALSE(labeler.consume_if_attack(frame));  // both notes consumed
  EXPECT_FALSE(labeler.consume_if_attack(CanFrame::data_std(0x123, {0xAB})));
  EXPECT_EQ(labeler.matched(), 2u);
  EXPECT_EQ(labeler.outstanding(), 0u);
}

TEST(IdsEvaluation, ConfusionCountsAndRocFromHistograms) {
  DetectorEval eval;
  eval.threshold = 0.5;
  // Perfectly separated scores: attacks at 0.9, legitimate at 0.1.
  eval.attack_bins[DetectorEval::bin_of(0.9)] = 90;
  eval.fn = 10;
  eval.attack_bins[DetectorEval::bin_of(0.2)] = 10;
  eval.tp = 90;
  eval.legit_bins[DetectorEval::bin_of(0.1)] = 200;
  eval.tn = 200;
  EXPECT_DOUBLE_EQ(eval.precision(), 1.0);
  EXPECT_DOUBLE_EQ(eval.recall(), 0.9);
  EXPECT_NEAR(eval.f1(), 2.0 * 0.9 / 1.9, 1e-12);
  EXPECT_DOUBLE_EQ(eval.false_positive_rate(), 0.0);
  EXPECT_GT(eval.auc(), 0.94);

  const std::vector<RocPoint> roc = eval.roc(11);
  ASSERT_EQ(roc.size(), 11u);
  EXPECT_DOUBLE_EQ(roc.front().tpr, 1.0);  // threshold 0: everything alerts
  EXPECT_DOUBLE_EQ(roc.front().fpr, 1.0);
  EXPECT_DOUBLE_EQ(roc.back().tpr, 0.0);  // threshold 1: nothing reaches it
  EXPECT_DOUBLE_EQ(roc.back().fpr, 0.0);
  // TPR/FPR are monotone non-increasing in the threshold.
  for (std::size_t i = 1; i < roc.size(); ++i) {
    EXPECT_LE(roc[i].tpr, roc[i - 1].tpr);
    EXPECT_LE(roc[i].fpr, roc[i - 1].fpr);
  }

  DetectorEval other;
  other.tp = 10;
  other.attack_bins[DetectorEval::bin_of(0.9)] = 10;
  eval.merge_counts(other);
  EXPECT_EQ(eval.tp, 100u);
  EXPECT_EQ(eval.attack_bins[DetectorEval::bin_of(0.9)], 100u);
}

TEST(IdsEvaluation, EvaluatorLabelsAndTimesDetections) {
  Pipeline pipeline;
  pipeline.add(std::make_unique<DlcConsistencyDetector>(tiny_db()));
  PipelineEvaluator evaluator(pipeline);
  pipeline.begin_detection();

  // Legitimate frame: clean score, counted as a true negative.
  pipeline.observe(CanFrame::data_std(0x100, {1, 2, 3, 4}), 1000ms);
  // Injected wrong-DLC frame: the labeler marks it, the detector fires.
  const CanFrame attack = CanFrame::data_std(0x100, {1});
  evaluator.labeler().note_injected(attack);
  pipeline.observe(attack, 2000ms);

  const TrialEval& eval = evaluator.eval();
  ASSERT_TRUE(eval.valid());
  EXPECT_EQ(eval.legit_frames, 1u);
  EXPECT_EQ(eval.attack_frames, 1u);
  const DetectorEval& det = eval.detectors[0];
  EXPECT_EQ(det.name, "dlc-consistency");
  EXPECT_EQ(det.tn, 1u);
  EXPECT_EQ(det.tp, 1u);
  EXPECT_EQ(det.fp, 0u);
  EXPECT_EQ(det.fn, 0u);
  // First true positive on the first attack frame: zero latency.
  EXPECT_DOUBLE_EQ(det.detection_latency, 0.0);
}

// Acceptance criterion: the entropy detector separates captured vehicle
// traffic (Fig. 4) from fuzz traffic (Fig. 5) with AUC > 0.9.
TEST(IdsEvaluation, EntropySeparatesCapturedFromFuzzTraffic) {
  sim::Scheduler scheduler;
  vehicle::Vehicle car(scheduler);
  trace::CaptureTap tap(car.powertrain_bus(), "tap");
  scheduler.run_for(20s);
  const auto& frames = tap.frames();
  ASSERT_GT(frames.size(), 400u);

  // Train on the first half of the capture, score the second half as the
  // legitimate class.
  EntropyDetector detector;
  const std::size_t half = frames.size() / 2;
  std::vector<std::uint32_t> seen_ids;
  for (std::size_t i = 0; i < half; ++i) {
    detector.train(frames[i].frame, frames[i].time);
    if (std::find(seen_ids.begin(), seen_ids.end(), frames[i].frame.id()) == seen_ids.end()) {
      seen_ids.push_back(frames[i].frame.id());
    }
  }
  detector.finalize_training();

  DetectorEval eval;
  for (std::size_t i = half; i < frames.size(); ++i) {
    ++eval.legit_bins[DetectorEval::bin_of(detector.score(frames[i].frame, frames[i].time))];
  }
  // The attack class: random payloads over the same id population.
  fuzzer::RandomGenerator generator(fuzzer::FuzzConfig::targeted(seen_ids));
  for (int i = 0; i < 2000; ++i) {
    const CanFrame frame = *generator.next();
    ++eval.attack_bins[DetectorEval::bin_of(detector.score(frame, SimTime(30s + i * 1ms)))];
  }
  EXPECT_GT(eval.auc(), 0.9);
}

// ------------------------------------------------------ candump replay -----

// Satellite requirement: a clean capture replayed through a trained pipeline
// must raise zero false positives on every detector.
TEST(IdsReplay, CleanCandumpReplayRaisesNoAlerts) {
  // Capture 30 s of clean bench traffic.
  std::string log_text;
  {
    sim::Scheduler scheduler;
    vehicle::UnlockTestbench bench(scheduler);
    trace::CaptureTap tap(bench.bus(), "tap");
    scheduler.run_for(30s);
    ASSERT_GT(tap.size(), 100u);
    std::ostringstream out;
    trace::write_candump(out, tap.frames());
    log_text = out.str();
  }

  // Round-trip through the candump text format.
  std::istringstream in(log_text);
  std::vector<std::string> errors;
  const auto frames = trace::read_candump(in, &errors);
  EXPECT_TRUE(errors.empty());
  ASSERT_GT(frames.size(), 100u);

  // Train on the log, freeze, then replay the same clean log in detection.
  Pipeline pipeline;
  for (auto& detector : standard_detectors(dbc::target_vehicle_database())) {
    pipeline.add(std::move(detector));
  }
  pipeline.begin_training();
  for (const auto& entry : frames) pipeline.observe(entry.frame, entry.time);
  pipeline.begin_detection();
  for (const auto& entry : frames) pipeline.observe(entry.frame, entry.time);

  const PipelineCounters counters = pipeline.counters();
  EXPECT_EQ(counters.frames_scored, frames.size());
  EXPECT_EQ(counters.alerts_raised, 0u) << [&] {
    std::string detail;
    for (const Alert& alert : pipeline.drain_alerts()) detail += alert.to_string() + "\n";
    return detail;
  }();
  for (std::size_t i = 0; i < pipeline.detector_count(); ++i) {
    EXPECT_EQ(pipeline.alerts_for(i), 0u) << pipeline.detector(i).name();
  }
}

// ----------------------------------------------------------- fleet eval -----

/// Fast detector-evaluation fleet: reduced id window at 4 kHz so the unlock
/// oracle fires within simulated seconds.
std::vector<IdsArm> fast_ids_arms() {
  fuzzer::FuzzConfig fast = fuzzer::FuzzConfig::around_id(0x215, 3);
  fast.tx_period = std::chrono::microseconds(250);
  IdsArm weak;
  weak.fuzz = fast;
  weak.train_window = 5s;
  IdsArm hardened = weak;
  hardened.predicate = vehicle::UnlockPredicate::id_byte_and_length();
  return {weak, hardened};
}

TEST(IdsFleet, EvaluationIsThreadCountInvariant) {
  const fleet::TrialPlan plan({"weak", "hardened"}, 3, 0xACF17EE7ULL,
                              std::chrono::minutes(5));
  std::vector<ArmIdsReport> reference;
  for (const unsigned threads : {1u, 4u}) {
    fleet::ExecutorConfig config;
    config.threads = threads;
    config.progress_period = std::chrono::milliseconds(0);
    fleet::Executor executor(config);
    EvalSink sink = make_eval_sink(plan);
    const auto outcomes = executor.run(plan, ids_unlock_world_factory(fast_ids_arms(), sink));
    for (const auto& outcome : outcomes) {
      EXPECT_EQ(outcome.status, fleet::TrialStatus::kCompleted);
    }
    const std::vector<ArmIdsReport> reports = merge_evals(plan, *sink);
    ASSERT_EQ(reports.size(), 2u);
    if (threads == 1) {
      reference = reports;
      // The fuzz phase must actually exercise the detectors.
      EXPECT_GT(reports[0].attack_frames, 0u);
      EXPECT_GT(reports[0].legit_frames, 0u);
      ASSERT_EQ(reports[0].detectors.size(), 4u);
      continue;
    }
    for (std::size_t arm = 0; arm < reports.size(); ++arm) {
      const ArmIdsReport& a = reports[arm];
      const ArmIdsReport& b = reference[arm];
      EXPECT_EQ(a.trials, b.trials);
      EXPECT_EQ(a.attack_frames, b.attack_frames);
      EXPECT_EQ(a.legit_frames, b.legit_frames);
      ASSERT_EQ(a.detectors.size(), b.detectors.size());
      for (std::size_t d = 0; d < a.detectors.size(); ++d) {
        const ArmIdsReport::PerDetector& da = a.detectors[d];
        const ArmIdsReport::PerDetector& db = b.detectors[d];
        EXPECT_EQ(da.merged.tp, db.merged.tp);
        EXPECT_EQ(da.merged.fp, db.merged.fp);
        EXPECT_EQ(da.merged.tn, db.merged.tn);
        EXPECT_EQ(da.merged.fn, db.merged.fn);
        EXPECT_EQ(da.merged.attack_bins, db.merged.attack_bins);
        EXPECT_EQ(da.merged.legit_bins, db.merged.legit_bins);
        EXPECT_EQ(da.trials_detected, db.trials_detected);
        EXPECT_EQ(da.latency.count(), db.latency.count());
        EXPECT_DOUBLE_EQ(da.latency.mean(), db.latency.mean());
        EXPECT_DOUBLE_EQ(da.merged.auc(), db.merged.auc());
      }
    }
  }
}

TEST(IdsFleet, AllowlistCatchesBlindFuzzWithHighRecall) {
  const fleet::TrialPlan plan({"weak"}, 2, 0xACF17EE7ULL, std::chrono::minutes(5));
  fleet::Executor executor({.threads = 2, .progress_period = std::chrono::milliseconds(0)});
  EvalSink sink = make_eval_sink(plan);
  std::vector<IdsArm> arms = {fast_ids_arms()[0]};
  executor.run(plan, ids_unlock_world_factory(std::move(arms), sink));
  const std::vector<ArmIdsReport> reports = merge_evals(plan, *sink);
  ASSERT_EQ(reports.size(), 1u);
  ASSERT_EQ(reports[0].detectors.size(), 4u);
  const ArmIdsReport::PerDetector& allowlist = reports[0].detectors[0];
  // The fast fuzz window spans ids 0x212..0x218 of which only 0x215 is
  // declared: ~6/7 of injected frames hit undeclared ids and most 0x215
  // frames carry an unseen DLC, so recall is near one...
  EXPECT_GT(allowlist.merged.recall(), 0.8);
  // ...and clean bench traffic never alerts.
  EXPECT_EQ(allowlist.merged.fp, 0u);
  EXPECT_EQ(allowlist.trials_detected, reports[0].trials);
  const util::Interval ci = allowlist.detection_rate_ci(reports[0].trials);
  EXPECT_GT(ci.lo, 0.2);
  EXPECT_GT(ci.hi, 0.99);
}

}  // namespace
}  // namespace acf::ids
