// Attack scenario catalog: determinism, labeling and evaluation-matrix
// guarantees for the per-family campaign arms.
//
// The contracts under test, in the order the ISSUE states them:
//  - the catalog covers every attack family exactly once, with valid specs;
//  - the spec codec is a strict canonical round-trip (the self-fuzz target
//    enforces the negative space; the positive space is pinned here);
//  - every family labels its injected frames at the source, so the
//    evaluator's ground-truth counts are exact, never heuristic;
//  - the per-trial evaluation survives the digest-findings round-trip that
//    carries it over the remote wire;
//  - the merged per-(attack, detector) matrix is identical at any executor
//    thread count, and the fleet_run binary produces byte-identical trial
//    JSONL in-process and distributed (--serve/--workers).
//
// Suites are named Attack* so the TSan CI leg picks them up by regex.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "attacks/attack_world.hpp"
#include "attacks/config.hpp"
#include "fleet/executor.hpp"
#include "fleet/jsonl.hpp"
#include "ids/eval_codec.hpp"

namespace acf::attacks {
namespace {

/// Catalog arms with CI-scale windows: long enough for the pipeline to
/// train and every family to land its effect, short enough for sanitizer
/// legs.  Same shrink for every test here so expectations compose.
std::vector<AttackArm> fast_arms() {
  std::vector<AttackArm> arms = standard_attack_arms();
  for (AttackArm& arm : arms) {
    arm.train_window = std::chrono::seconds(1);
    arm.attack_window = std::chrono::milliseconds(500);
  }
  return arms;
}

fleet::TrialSpec spec_for(const fleet::TrialPlan& plan, std::size_t trial_index) {
  return plan.spec(trial_index);
}

// ----------------------------------------------------------- catalog ------

TEST(AttackCatalog, CoversEveryFamilyExactlyOnce) {
  const std::vector<AttackArm> arms = standard_attack_arms();
  ASSERT_EQ(arms.size(), kAttackFamilyCount);
  std::set<AttackFamily> families;
  std::set<std::string> labels;
  for (const AttackArm& arm : arms) {
    EXPECT_TRUE(attack_spec_valid(arm.spec)) << arm.label;
    families.insert(arm.spec.family);
    labels.insert(arm.label);
  }
  EXPECT_EQ(families.size(), kAttackFamilyCount) << "a family is missing or duplicated";
  EXPECT_EQ(labels.size(), arms.size()) << "labels must be unique (matrix rows)";
}

TEST(AttackCatalog, FamilyNamesAreStable) {
  // The family string is the JSONL "family" field; renames break consumers.
  EXPECT_STREQ(to_string(AttackFamily::kFlood), "flood");
  EXPECT_STREQ(to_string(AttackFamily::kSpoof), "spoof");
  EXPECT_STREQ(to_string(AttackFamily::kMasquerade), "masquerade");
  EXPECT_STREQ(to_string(AttackFamily::kReplay), "replay");
  EXPECT_STREQ(to_string(AttackFamily::kSuspension), "suspension");
  EXPECT_STREQ(to_string(AttackFamily::kBusOff), "bus-off");
  EXPECT_STREQ(to_string(AttackFamily::kGatewayProbe), "gateway-probe");
  EXPECT_STREQ(to_string(AttackFamily::kUdsSession), "uds-session");
  EXPECT_STREQ(to_string(AttackFamily::kObdScan), "obd-scan");
  EXPECT_STREQ(to_string(AttackFamily::kXcpTamper), "xcp-tamper");
}

// ------------------------------------------------------------- codec ------

TEST(AttackConfigCodec, RoundTripsEveryCatalogSpec) {
  for (const AttackArm& arm : standard_attack_arms()) {
    const std::vector<std::uint8_t> bytes = encode_attack_spec(arm.spec);
    ASSERT_EQ(bytes.size(), kAttackSpecBytes) << arm.label;
    const std::optional<AttackSpec> decoded = decode_attack_spec(bytes);
    ASSERT_TRUE(decoded.has_value()) << arm.label;
    EXPECT_TRUE(*decoded == arm.spec) << arm.label;
    // Canonical: one spec, one byte representation.
    EXPECT_EQ(encode_attack_spec(*decoded), bytes) << arm.label;
  }
}

TEST(AttackConfigCodec, RejectsMalformedEncodings) {
  const std::vector<std::uint8_t> good = encode_attack_spec(standard_attack_arms()[0].spec);

  EXPECT_FALSE(decode_attack_spec({}).has_value());
  std::vector<std::uint8_t> truncated(good.begin(), good.end() - 1);
  EXPECT_FALSE(decode_attack_spec(truncated).has_value());
  std::vector<std::uint8_t> oversized = good;
  oversized.push_back(0);
  EXPECT_FALSE(decode_attack_spec(oversized).has_value());

  std::vector<std::uint8_t> bad_version = good;
  bad_version[0] = 2;
  EXPECT_FALSE(decode_attack_spec(bad_version).has_value());

  std::vector<std::uint8_t> bad_family = good;
  bad_family[1] = kAttackFamilyCount;
  EXPECT_FALSE(decode_attack_spec(bad_family).has_value());

  std::vector<std::uint8_t> bad_bus = good;
  bad_bus[2] = 2;
  EXPECT_FALSE(decode_attack_spec(bad_bus).has_value());

  // payload_len 0 with a nonzero padding byte: non-canonical, rejected.
  std::vector<std::uint8_t> dirty_padding = good;
  dirty_padding[3] = 0;
  dirty_padding[21] = 0xFF;
  EXPECT_FALSE(decode_attack_spec(dirty_padding).has_value());

  AttackSpec out_of_bounds = standard_attack_arms()[0].spec;
  out_of_bounds.period_us = kMinPeriodUs - 1;
  EXPECT_FALSE(attack_spec_valid(out_of_bounds));
  out_of_bounds.period_us = kMaxPeriodUs + 1;
  EXPECT_FALSE(attack_spec_valid(out_of_bounds));
  out_of_bounds = standard_attack_arms()[0].spec;
  out_of_bounds.target_id = kMaxTargetId + 1;
  EXPECT_FALSE(attack_spec_valid(out_of_bounds));
  out_of_bounds = standard_attack_arms()[0].spec;
  out_of_bounds.burst = 0;
  EXPECT_FALSE(attack_spec_valid(out_of_bounds));
}

// ------------------------------------------------------ ground truth ------

TEST(AttackGroundTruth, EveryFamilyLabelsItsInjectedFrames) {
  const std::vector<AttackArm> arms = fast_arms();
  const fleet::TrialPlan plan(
      [&arms] {
        std::vector<std::string> labels;
        for (const AttackArm& arm : arms) labels.push_back(arm.label);
        return labels;
      }(),
      1, 0xACF);
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const AttackTrialResult trial = run_attack_trial(arms[i], spec_for(plan, i));
    ASSERT_TRUE(trial.eval.valid()) << arms[i].label;
    // The scenario injected and the labeler caught every frame at source:
    // the evaluator saw real attack traffic, not heuristically guessed.
    EXPECT_GT(trial.eval.attack_frames, 0u) << arms[i].label;
    EXPECT_GT(trial.eval.legit_frames, 0u) << arms[i].label;
    // Everything the pipeline scored was labeled one way or the other.
    EXPECT_EQ(trial.eval.pipeline.frames_scored,
              trial.eval.attack_frames + trial.eval.legit_frames)
        << arms[i].label;
    // Training happened before the attack started.
    EXPECT_GT(trial.eval.pipeline.frames_trained, 0u) << arms[i].label;
    EXPECT_GT(trial.attack_start.count(), 0) << arms[i].label;
  }
}

TEST(AttackGroundTruth, ImpactVerdictsReachTheOutcome) {
  // The families with a concrete objective report kFailure, which the
  // fleet layer turns into detected=1 + time_to_failure.  Spot-check the
  // clearest three: spoof (gauge split), bus-off (victim silenced),
  // xcp-tamper (MIL forced).
  const std::vector<AttackArm> arms = fast_arms();
  const fleet::TrialPlan plan({"spoof-rpm", "busoff-engine", "xcp-tamper"}, 1, 0xACF);
  std::size_t checked = 0;
  for (const AttackArm& arm : arms) {
    std::size_t plan_index = 0;
    bool in_plan = false;
    for (std::size_t a = 0; a < plan.arm_count(); ++a) {
      if (plan.arm_label(a) == arm.label) {
        plan_index = a;
        in_plan = true;
      }
    }
    if (!in_plan) continue;
    const fleet::TrialSpec trial_spec = spec_for(plan, plan_index);
    const AttackTrialResult trial = run_attack_trial(arm, trial_spec);
    const fleet::TrialOutcome outcome = fleet::outcome_from_result(trial_spec, trial.result);
    EXPECT_TRUE(outcome.failure_detected()) << arm.label;
    EXPECT_GE(outcome.time_to_failure, 0.0) << arm.label;
    ++checked;
  }
  EXPECT_EQ(checked, 3u);
}

// ------------------------------------------------------------ digest ------

TEST(AttackEvalDigest, SurvivesTheFindingsRoundTrip) {
  const std::vector<AttackArm> arms = fast_arms();
  const fleet::TrialPlan plan({arms[1].label}, 1, 0x5EED);  // spoof-rpm
  const AttackTrialResult direct = run_attack_trial(arms[1], spec_for(plan, 0));

  // Re-encode the evaluation the way the world ships it, then decode the
  // way the merge does, and compare every count.
  std::vector<std::string> lines;
  lines.push_back(ids::encode_eval_totals(direct.eval));
  for (const ids::DetectorEval& det : direct.eval.detectors) {
    lines.push_back(ids::encode_detector_eval(det));
  }
  ids::TrialEval decoded;
  for (const std::string& line : lines) ASSERT_TRUE(ids::decode_eval_line(line, decoded));

  EXPECT_EQ(decoded.attack_frames, direct.eval.attack_frames);
  EXPECT_EQ(decoded.legit_frames, direct.eval.legit_frames);
  EXPECT_EQ(decoded.pipeline.frames_trained, direct.eval.pipeline.frames_trained);
  EXPECT_EQ(decoded.pipeline.frames_scored, direct.eval.pipeline.frames_scored);
  EXPECT_EQ(decoded.pipeline.alerts_raised, direct.eval.pipeline.alerts_raised);
  ASSERT_EQ(decoded.detectors.size(), direct.eval.detectors.size());
  for (std::size_t d = 0; d < decoded.detectors.size(); ++d) {
    EXPECT_EQ(decoded.detectors[d].name, direct.eval.detectors[d].name);
    EXPECT_EQ(decoded.detectors[d].tp, direct.eval.detectors[d].tp);
    EXPECT_EQ(decoded.detectors[d].fp, direct.eval.detectors[d].fp);
    EXPECT_EQ(decoded.detectors[d].tn, direct.eval.detectors[d].tn);
    EXPECT_EQ(decoded.detectors[d].fn, direct.eval.detectors[d].fn);
    EXPECT_EQ(decoded.detectors[d].attack_bins, direct.eval.detectors[d].attack_bins);
    EXPECT_EQ(decoded.detectors[d].legit_bins, direct.eval.detectors[d].legit_bins);
  }
}

// ------------------------------------------------------- determinism ------

/// Flattens the pieces of an outcome that cross the wire: status, stop
/// reason, counters and every finding string.
std::string outcome_fingerprint(const std::vector<fleet::TrialOutcome>& outcomes) {
  std::ostringstream out;
  for (const fleet::TrialOutcome& outcome : outcomes) {
    out << outcome.spec.trial_index << '|' << static_cast<int>(outcome.status) << '|'
        << fuzzer::to_string(outcome.stop_reason) << '|' << outcome.frames_sent << '|'
        << outcome.send_failures << '|' << outcome.time_to_failure << '\n';
    for (const std::string& finding : outcome.findings) out << finding << '\n';
  }
  return out.str();
}

TEST(AttackDeterminism, OutcomesAndMatrixIdenticalAcrossThreadCounts) {
  const std::vector<AttackArm> arms = fast_arms();
  std::vector<std::string> labels;
  for (const AttackArm& arm : arms) labels.push_back(arm.label);
  const fleet::TrialPlan plan(labels, 1, 0xACF);

  std::vector<std::string> fingerprints;
  std::vector<std::string> matrices;
  for (const unsigned threads : {1u, 4u, 8u}) {
    fleet::ExecutorConfig config;
    config.threads = threads;
    fleet::Executor executor(config);
    const std::vector<fleet::TrialOutcome> outcomes =
        executor.run(plan, attack_world_factory(arms));
    fingerprints.push_back(outcome_fingerprint(outcomes));

    std::ostringstream matrix;
    for (const ids::ArmIdsReport& report : merge_outcome_evals(plan, outcomes)) {
      matrix << report.label << ' ' << report.attack_frames << ' ' << report.legit_frames;
      for (const ids::ArmIdsReport::PerDetector& det : report.detectors) {
        matrix << ' ' << det.merged.name << ':' << det.merged.tp << '/' << det.merged.fp
               << '/' << det.merged.tn << '/' << det.merged.fn << '@'
               << det.trials_detected;
      }
      matrix << '\n';
    }
    matrices.push_back(matrix.str());
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]) << "threads 1 vs 4";
  EXPECT_EQ(fingerprints[0], fingerprints[2]) << "threads 1 vs 8";
  EXPECT_EQ(matrices[0], matrices[1]);
  EXPECT_EQ(matrices[0], matrices[2]);
  EXPECT_FALSE(matrices[0].empty());
}

// ------------------------------------------- distributed (process) --------

std::string temp_path(const std::string& stem) {
  return testing::TempDir() + stem + "_" + std::to_string(::getpid());
}

int run_fleet_bin(const std::string& args) {
  const std::string command =
      std::string(ACF_FLEET_RUN_BIN) + " " + args + " > /dev/null 2> /dev/null";
  const int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(AttackDistributed, FleetRunJsonlByteIdenticalInProcessAndDistributed) {
  const std::string local = temp_path("attacks_local") + ".jsonl";
  const std::string dist = temp_path("attacks_dist") + ".jsonl";
  ASSERT_EQ(run_fleet_bin("--attacks --runs 1 --threads 2 --seed 0xACF --jsonl " + local),
            0);
  ASSERT_EQ(run_fleet_bin("--attacks --runs 1 --serve 0 --workers 2 --seed 0xACF --jsonl " +
                          dist),
            0);
  const std::string local_bytes = slurp(local);
  ASSERT_FALSE(local_bytes.empty());
  EXPECT_EQ(local_bytes, slurp(dist));
  std::remove(local.c_str());
  std::remove(dist.c_str());
}

}  // namespace
}  // namespace acf::attacks
