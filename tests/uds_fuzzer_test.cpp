#include <gtest/gtest.h>

#include "fuzzer/campaign.hpp"
#include "fuzzer/coverage.hpp"
#include "fuzzer/uds_fuzzer.hpp"
#include "sim/scheduler.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "vehicle/instrument_cluster.hpp"

namespace acf::fuzzer {
namespace {

/// UDS fuzzer pointed at the instrument cluster's diagnostic endpoint.
class UdsFuzzerTest : public ::testing::Test {
 protected:
  UdsFuzzerTest()
      : cluster(scheduler, bus), port(bus, "fuzzer"),
        fuzzer(scheduler, port, dbc::kUdsClusterRequest, dbc::kUdsClusterResponse) {}

  sim::Scheduler scheduler;
  can::VirtualBus bus{scheduler};
  vehicle::InstrumentCluster cluster;
  transport::VirtualBusTransport port;
  UdsFuzzer fuzzer;
};

TEST_F(UdsFuzzerTest, ServiceScanDiscoversImplementedServices) {
  UdsFuzzReport report;
  fuzzer.scan_services(report);
  const auto sids = report.discovered_sids();
  // Everything the cluster's UDS server implements must be discovered.
  for (std::uint8_t expected : {uds::kSidDiagnosticSessionControl, uds::kSidEcuReset,
                                uds::kSidReadDataByIdentifier, uds::kSidSecurityAccess,
                                uds::kSidWriteDataByIdentifier, uds::kSidTesterPresent,
                                uds::kSidReadDtcInformation}) {
    EXPECT_NE(std::find(sids.begin(), sids.end(), expected), sids.end())
        << "SID 0x" << std::hex << int(expected);
  }
  // And nothing invented: SIDs the server rejects outright stay undiscovered.
  EXPECT_EQ(std::find(sids.begin(), sids.end(), 0x23), sids.end());
  EXPECT_GT(report.requests_sent, 2u * 0xC0 - 1);
}

TEST_F(UdsFuzzerTest, DidSweepFindsIdentificationDids) {
  UdsFuzzReport report;
  fuzzer.discover_dids(report, 0xF180, 0xF1A0);
  EXPECT_NE(std::find(report.readable_dids.begin(), report.readable_dids.end(), 0xF190),
            report.readable_dids.end());
  EXPECT_NE(std::find(report.readable_dids.begin(), report.readable_dids.end(), 0xF195),
            report.readable_dids.end());
  EXPECT_EQ(report.readable_dids.size(), 2u);
}

TEST_F(UdsFuzzerTest, RandomFuzzFindsNoProtocolAnomaliesInHealthyServer) {
  UdsFuzzReport report;
  fuzzer.random_fuzz(report, 300);
  EXPECT_TRUE(report.anomalies.empty())
      << (report.anomalies.empty() ? "" : report.anomalies[0]);
  // The server survives: still answers a legitimate request.
  UdsFuzzReport after;
  fuzzer.discover_dids(after, 0xF190, 0xF190);
  EXPECT_EQ(after.readable_dids.size(), 1u);
}

TEST_F(UdsFuzzerTest, FullRunProducesConsistentReport) {
  const UdsFuzzReport report = fuzzer.run();
  EXPECT_GE(report.discovered_sids().size(), 7u);
  EXPECT_GE(report.readable_dids.size(), 2u);
  EXPECT_GT(report.requests_sent, 500u);
}

TEST(UdsServiceInfo, ExistsSemantics) {
  UdsServiceInfo info;
  EXPECT_FALSE(info.exists());
  info.nrcs[uds::kNrcServiceNotSupported] = 5;
  EXPECT_FALSE(info.exists());  // "not supported" is non-existence
  info.nrcs[uds::kNrcIncorrectLength] = 1;
  EXPECT_TRUE(info.exists());   // any other NRC proves the handler exists
  UdsServiceInfo positive;
  positive.positive = 1;
  EXPECT_TRUE(positive.exists());
}

// ----------------------------------------------------------- coverage -----

TEST(CoverageTracker, TracksIdsCellsAndBytes) {
  CoverageTracker tracker;
  tracker.add(can::CanFrame::data_std(0x100, {0x01, 0x02}));
  tracker.add(can::CanFrame::data_std(0x100, {0x03}));
  tracker.add(can::CanFrame::data_std(0x200, {}));
  EXPECT_EQ(tracker.frames(), 3u);
  EXPECT_EQ(tracker.ids_covered(), 2u);
  EXPECT_EQ(tracker.id_dlc_cells_covered(), 3u);  // (100,2) (100,1) (200,0)
  EXPECT_EQ(tracker.byte_values_covered(0), 2u);  // 0x01, 0x03
  EXPECT_EQ(tracker.byte_values_covered(1), 1u);
}

TEST(CoverageTracker, IdCoverageAgainstConfig) {
  CoverageTracker tracker;
  FuzzConfig config;
  config.id_min = 0x100;
  config.id_max = 0x103;  // 4 ids
  tracker.add(can::CanFrame::data_std(0x100, {}));
  tracker.add(can::CanFrame::data_std(0x101, {}));
  tracker.add(can::CanFrame::data_std(0x500, {}));  // outside the space
  EXPECT_DOUBLE_EQ(tracker.id_coverage(config), 0.5);
  const FuzzConfig targeted = FuzzConfig::targeted({0x100, 0x500});
  EXPECT_DOUBLE_EQ(tracker.id_coverage(targeted), 1.0);
}

TEST(CoverageTracker, EventsPerKiloframe) {
  CoverageTracker tracker;
  EXPECT_DOUBLE_EQ(tracker.events_per_kiloframe(), 0.0);
  for (int i = 0; i < 2000; ++i) tracker.add(can::CanFrame::data_std(0x1, {}));
  tracker.add_oracle_event();
  tracker.add_oracle_event();
  tracker.add_oracle_event();
  EXPECT_DOUBLE_EQ(tracker.events_per_kiloframe(), 1.5);
}

TEST(CoverageTracker, RandomCampaignCoversTheSpace) {
  CoverageTracker tracker;
  const FuzzConfig config = FuzzConfig::full_random(0xC043);
  RandomGenerator generator(config);
  for (int i = 0; i < 50'000; ++i) tracker.add(*generator.next());
  // 50k uniform draws over 2048 ids: every id expected ~24 times.
  EXPECT_GT(tracker.id_coverage(config), 0.99);
  EXPECT_GT(tracker.byte_values_covered(0), 250u);
  const std::string report = tracker.report(config);
  EXPECT_NE(report.find("id coverage"), std::string::npos);
}

TEST(CoverageTracker, CampaignIntegration) {
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  transport::VirtualBusTransport port(bus, "fuzzer");
  RandomGenerator generator(FuzzConfig::full_random(3));
  CoverageTracker tracker;
  CampaignConfig config;
  config.max_frames = 500;
  FuzzCampaign campaign(scheduler, port, generator, nullptr, config);
  campaign.set_coverage(&tracker);
  campaign.run();
  EXPECT_EQ(tracker.frames(), 500u);
  EXPECT_GT(tracker.ids_covered(), 150u);
}

}  // namespace
}  // namespace acf::fuzzer
