// Ablation A9: generation strategy shoot-out on the unlock testbench.
// Uniform random (the paper's fuzzer) vs boundary-value + dictionary
// (protocol-informed, Table I's "design based" column) vs feedback-adaptive
// id scheduling — mean time-to-unlock per strategy at the 1 ms period.
#include "analysis/report.hpp"
#include "fuzzer/smart_generator.hpp"
#include "oracle/vehicle_oracles.hpp"
#include "util/stats.hpp"
#include "bench_util.hpp"

namespace {

using namespace acf;

double run_once(fuzzer::FrameGenerator& generator) {
  sim::Scheduler scheduler;
  vehicle::UnlockTestbench bench_rig(scheduler);
  transport::VirtualBusTransport attacker(bench_rig.bus(), "attacker");
  oracle::CompositeOracle oracles;
  oracles.add(std::make_unique<oracle::UnlockOracle>(bench_rig.bus(), &bench_rig.bcm()));
  fuzzer::CampaignConfig config;
  config.max_duration = std::chrono::hours(12);
  config.oracle_period = std::chrono::milliseconds(10);
  config.record_suspicious = false;
  fuzzer::FuzzCampaign campaign(scheduler, attacker, generator, &oracles, config);
  const auto& result = campaign.run();
  return result.any_failure() ? sim::to_seconds(result.first_failure()->observation.time)
                              : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const int runs = argc > 1 ? std::atoi(argv[1]) : 8;
  bench::header("Ablation A9", "Generation strategies vs time-to-unlock (" +
                                   std::to_string(runs) + " runs each)");

  analysis::TextTable table({"Strategy", "Knowledge used", "Mean time-to-unlock"});

  {
    util::RunningStats stats;
    for (int run = 0; run < runs; ++run) {
      fuzzer::RandomGenerator gen(
          fuzzer::FuzzConfig::full_random(0xA900 + static_cast<std::uint64_t>(run)));
      stats.add(run_once(gen));
    }
    table.add_row({"uniform random (paper)", "none",
                   analysis::format_number(stats.mean()) + " s"});
  }
  {
    util::RunningStats stats;
    for (int run = 0; run < runs; ++run) {
      fuzzer::BoundaryPlan plan;
      plan.dictionary = {0x20, 0x10};  // command bytes harvested from capture
      plan.seed = 0xA910 + static_cast<std::uint64_t>(run);
      fuzzer::BoundaryGenerator gen(fuzzer::FuzzConfig::full_random(), plan);
      stats.add(run_once(gen));
    }
    table.add_row({"boundary + dictionary", "captured command bytes",
                   analysis::format_number(stats.mean()) + " s"});
  }
  {
    // Feedback: reward ids that draw *any* bus response (the BCM acks).
    util::RunningStats stats;
    for (int run = 0; run < runs; ++run) {
      sim::Scheduler scheduler;
      vehicle::UnlockTestbench bench_rig(scheduler);
      transport::VirtualBusTransport attacker(bench_rig.bus(), "attacker");
      oracle::CompositeOracle oracles;
      oracles.add(std::make_unique<oracle::UnlockOracle>(bench_rig.bus(), &bench_rig.bcm()));
      fuzzer::FeedbackPlan plan;
      plan.seed = 0xA920 + static_cast<std::uint64_t>(run);
      fuzzer::FeedbackGenerator gen(fuzzer::FuzzConfig::full_random(), plan);
      // Reward loop: any BODY_ACK rewards the recently fuzzed ids.  A lock
      // ack (the fuzzer hitting 0x10) is feedback too — exactly the signal
      // that makes the id converge before the unlock byte lands.
      transport::VirtualBusTransport monitor(bench_rig.bus(), "monitor", {}, true);
      std::vector<std::uint32_t> recent;
      monitor.set_rx_callback([&](const can::CanFrame& frame, sim::SimTime) {
        if (frame.id() == dbc::kMsgBodyCommand) {
          recent.push_back(frame.id());
          if (recent.size() > 8) recent.erase(recent.begin());
        }
        if (frame.id() == dbc::kMsgBodyAck) {
          for (std::uint32_t id : recent) gen.reward(id);
        }
      });
      fuzzer::CampaignConfig config;
      config.max_duration = std::chrono::hours(12);
      config.oracle_period = std::chrono::milliseconds(10);
      config.record_suspicious = false;
      fuzzer::FuzzCampaign campaign(scheduler, attacker, gen, &oracles, config);
      const auto& result = campaign.run();
      stats.add(result.any_failure()
                    ? sim::to_seconds(result.first_failure()->observation.time)
                    : -1.0);
    }
    table.add_row({"feedback-adaptive ids", "bus responses (acks)",
                   analysis::format_number(stats.mean()) + " s"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Shape: each step of target knowledge divides time-to-unlock — the paper's\n"
              "conclusion that automotive fuzzing pays off \"in a specific message space,\n"
              "close to known messages\" holds even when that knowledge is learned online.\n");
  return 0;
}
