// Fig. 9: crashing a vehicle component as a result of fuzzing — a blind
// random campaign against the instrument cluster ends with MILs, warnings,
// erratic needles and a permanently latched "CrAsH" display that survives
// power cycling, exactly the failure sequence the paper hit on the real
// cluster.
#include "bench_util.hpp"

int main() {
  using namespace acf;
  bench::header("Figure 9", "Crashing a vehicle component as a result of fuzzing");

  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  vehicle::InstrumentCluster cluster(scheduler, bus);
  transport::VirtualBusTransport port(bus, "fuzzer");

  oracle::CompositeOracle oracles;
  auto crash_oracle = std::make_unique<oracle::ComponentCrashOracle>();
  crash_oracle->watch(cluster);
  oracles.add(std::move(crash_oracle));
  oracles.add(std::make_unique<oracle::ClusterStateOracle>(cluster));

  fuzzer::RandomGenerator generator(fuzzer::FuzzConfig::full_random(0xC1A54));
  fuzzer::CampaignConfig config;
  config.max_duration = std::chrono::hours(4);
  fuzzer::FuzzCampaign campaign(scheduler, port, generator, &oracles, config);
  const auto& result = campaign.run();

  std::printf("campaign: %llu frames in %.1f s simulated, stop reason: %s\n",
              static_cast<unsigned long long>(result.frames_sent),
              sim::to_seconds(result.elapsed), fuzzer::to_string(result.reason));
  for (const auto& finding : result.findings) {
    std::printf("  finding: %s\n", finding.summary().c_str());
  }
  std::printf("\ncomponent state at detection:\n");
  std::printf("  MIL illuminated:    %s\n", cluster.mil_on() ? "YES" : "no");
  std::printf("  warning sounds:     %llu\n",
              static_cast<unsigned long long>(cluster.warning_sounds()));
  std::printf("  needle travel:      %.0f (erratic gauge needles)\n",
              cluster.needle_travel());
  std::printf("  display:            '%s'\n", cluster.display_text().c_str());
  std::printf("  crash latched:      %s\n", cluster.crash_latched() ? "YES" : "no");

  std::printf("\npower-cycling the cluster (the paper's recovery attempt)...\n");
  cluster.power_cycle(std::chrono::milliseconds(100));
  scheduler.run_for(std::chrono::seconds(1));
  std::printf("  MIL illuminated:    %s  (MILs clear on power cycle)\n",
              cluster.mil_on() ? "YES" : "no");
  std::printf("  display:            '%s'  <-- the crash message would not clear\n",
              cluster.display_text().c_str());
  std::printf("  crash latched:      %s\n", cluster.crash_latched() ? "YES (permanent)" : "no");

  // Reproduce from the recorded finding window on a factory-fresh unit.
  if (const fuzzer::Finding* failure = result.first_failure()) {
    sim::Scheduler fresh_scheduler;
    can::VirtualBus fresh_bus(fresh_scheduler);
    vehicle::InstrumentCluster fresh(fresh_scheduler, fresh_bus);
    transport::VirtualBusTransport injector(fresh_bus, "replay");
    for (const auto& entry : failure->recent_frames) {
      injector.send(entry.frame);
      fresh_scheduler.run_for(std::chrono::milliseconds(1));
    }
    std::printf("\nreplaying the %zu-frame finding window on a fresh cluster: %s\n",
                failure->recent_frames.size(),
                fresh.crash_latched() ? "REPRODUCED" : "not reproduced");
  }
  return 0;
}
