// Ablation A1: targeted vs blind fuzzing.  The paper concludes automotive
// fuzzing is most useful "in a specific message space, close to known
// messages, whether determined from design or data traffic capture".  This
// bench quantifies it: time-to-unlock when the id space shrinks from all
// 2048 ids (blind) to ids observed on the bus, to a +-8 window around the
// command id, to the exact id.
#include "analysis/report.hpp"
#include "util/stats.hpp"
#include "bench_util.hpp"
#include "trace/capture.hpp"

namespace {

double mean_time_to_unlock(const acf::fuzzer::FuzzConfig& base, int runs,
                           std::uint64_t seed_base) {
  acf::util::RunningStats stats;
  for (int run = 0; run < runs; ++run) {
    stats.add(acf::bench::time_to_unlock(
        acf::vehicle::UnlockPredicate::single_id_and_byte(),
        seed_base + static_cast<std::uint64_t>(run), std::chrono::hours(24), base));
  }
  return stats.mean();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace acf;
  const int runs = argc > 1 ? std::atoi(argv[1]) : 8;
  bench::header("Ablation A1", "Targeted vs blind fuzzing: mean time-to-unlock (" +
                                   std::to_string(runs) + " runs each)");

  // "Ids observed on the bus": capture the testbench's own traffic first
  // (the reverse-engineering step the paper describes).
  std::vector<std::uint32_t> observed_ids;
  {
    sim::Scheduler scheduler;
    vehicle::UnlockTestbench bench_rig(scheduler);
    trace::CaptureTap tap(bench_rig.bus(), "tap");
    bench_rig.head_unit().request_unlock();  // one legitimate actuation
    scheduler.run_for(std::chrono::seconds(2));
    for (const auto& entry : tap.frames()) {
      if (std::find(observed_ids.begin(), observed_ids.end(), entry.frame.id()) ==
          observed_ids.end()) {
        observed_ids.push_back(entry.frame.id());
      }
    }
  }
  std::printf("ids observed on the testbench bus: %zu\n\n", observed_ids.size());

  struct Strategy {
    std::string label;
    fuzzer::FuzzConfig config;
  };
  const Strategy strategies[] = {
      {"blind (all 2048 ids)", fuzzer::FuzzConfig::full_random()},
      {"observed ids (traffic capture)", fuzzer::FuzzConfig::targeted(observed_ids)},
      {"around known id (0x215 +- 8)", fuzzer::FuzzConfig::around_id(0x215, 8)},
      {"exact id (design knowledge)", fuzzer::FuzzConfig::targeted({0x215})},
  };

  analysis::TextTable table({"Strategy", "Id space", "Mean time-to-unlock"});
  double blind_mean = 0.0;
  for (const auto& strategy : strategies) {
    const double mean = mean_time_to_unlock(strategy.config, runs, 0xA1000);
    if (blind_mean == 0.0) blind_mean = mean;
    char speedup[32];
    std::snprintf(speedup, sizeof speedup, " (x%.0f faster)", blind_mean / mean);
    table.add_row({strategy.label, std::to_string(strategy.config.id_space()),
                   analysis::format_number(mean, 1) + " s" +
                       (blind_mean == mean ? "" : speedup)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Shape: time-to-unlock scales ~linearly with the id space — the\n"
              "combinatorial argument for targeted fuzzing in the paper's §VIII.\n");
  return 0;
}
