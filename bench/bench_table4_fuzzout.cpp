// Table IV: sample random CAN packet output from the fuzzer — random ids,
// random lengths (including empty frames), random bytes, ~1.7 ms spacing.
#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "trace/capture.hpp"
#include "util/hex.hpp"

int main() {
  using namespace acf;
  bench::header("Table IV", "Sample random CAN packet output from the fuzzer");

  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  trace::CaptureTap tap(bus, "tap");
  transport::VirtualBusTransport port(bus, "fuzzer");
  fuzzer::RandomGenerator generator(fuzzer::FuzzConfig::full_random(0x7AB1E4));
  fuzzer::CampaignConfig config;
  config.max_frames = 8;
  config.tx_period = std::chrono::microseconds(1700);  // paper rows: ~1.7-2.3 ms apart
  fuzzer::FuzzCampaign campaign(scheduler, port, generator, nullptr, config);
  scheduler.run_for(std::chrono::seconds(3));  // offset so timestamps resemble the paper's
  campaign.run();

  analysis::TextTable table({"Time (ms)", "Id", "Length", "Data"});
  for (const auto& entry : tap.frames()) {
    table.add_row({sim::format_millis(entry.time),
                   util::hex_u32(entry.frame.id(), 4),
                   std::to_string(entry.frame.length()),
                   util::hex_bytes(entry.frame.payload())});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Every frame drawn uniformly from the Table III space (seed 0x7AB1E4).\n");
  return 0;
}
