// Feedback vs blind random: the closed loop's headline experiment.  Both
// arms attack the paper's unlock testbench (weak "single id and byte"
// predicate, 1 ms transmit period) under the same simulated-time budget:
//
//   - "blind random": the paper's Table V protocol — uniform frames over
//     the full id/payload space until the unlock oracle fires;
//   - "feedback": the coverage-guided loop — novelty-map features from
//     oracle/ECU/bus behaviour select and energise corpus seeds, so the
//     rejected-command counter's gradient walks the mutator onto the
//     0x215 command frame instead of waiting for a 1-in-590k draw.
//
// Blind random's asymptotic mean time-to-unlock is ~590 s of bus time; the
// feedback loop typically lands in seconds.  The report carries Student-t
// 95% confidence intervals from the fleet aggregator, and `--json` emits an
// acf-feedback-bench-v1 document for CI to schema-validate.  Outcomes are
// byte-identical at any `--threads` and under `--distributed`.
#include <set>

#include "bench_util.hpp"
#include "feedback/worlds.hpp"

namespace {

struct ArmDerived {
  double sim_hours = 0.0;
  std::size_t distinct_findings = 0;
  double findings_per_cpu_hour = 0.0;
};

ArmDerived derive(const acf::fleet::ArmReport& arm,
                  const std::vector<acf::fleet::TrialOutcome>& outcomes,
                  std::size_t arm_index) {
  ArmDerived d;
  double sim_seconds = 0.0;
  for (const acf::fleet::TrialOutcome& outcome : outcomes) {
    if (outcome.spec.arm == arm_index) sim_seconds += outcome.sim_seconds;
  }
  d.sim_hours = sim_seconds / 3600.0;
  d.distinct_findings = arm.findings.size();  // aggregator dedups by summary
  if (d.sim_hours > 0.0) {
    d.findings_per_cpu_hour = static_cast<double>(d.distinct_findings) / d.sim_hours;
  }
  return d;
}

void json_arm(std::FILE* out, const acf::fleet::ArmReport& arm, const ArmDerived& d,
              bool last) {
  const acf::util::Interval ci = arm.ci95();
  const bool detected = arm.detected > 0;
  std::fprintf(out,
               "    {\"label\": \"%s\", \"trials\": %zu, \"detected\": %zu,\n"
               "     \"timeouts\": %zu, \"errors\": %zu,\n"
               "     \"mean_ttf_s\": %s, \"ci95_lo_s\": %s, \"ci95_hi_s\": %s,\n"
               "     \"median_ttf_s\": %s, \"sim_hours\": %.6f,\n"
               "     \"distinct_findings\": %zu, \"findings_per_cpu_hour\": %.3f}%s\n",
               arm.label.c_str(), arm.trials, arm.detected, arm.timeouts, arm.errors,
               detected ? std::to_string(arm.time_to_failure.mean()).c_str() : "null",
               detected ? std::to_string(ci.lo).c_str() : "null",
               detected ? std::to_string(ci.hi).c_str() : "null",
               detected ? std::to_string(arm.median()).c_str() : "null", d.sim_hours,
               d.distinct_findings, d.findings_per_cpu_hour, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace acf;

  // Strip the bench-local flags before the shared fleet parser sees them.
  const char* json_path = nullptr;
  std::string corpus_dir;
  std::vector<char*> filtered = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--corpus-dir") == 0 && i + 1 < argc) {
      corpus_dir = argv[++i];
    } else {
      filtered.push_back(argv[i]);
    }
  }
  const bench::FleetArgs args =
      bench::parse_fleet_args(static_cast<int>(filtered.size()), filtered.data(), 12);
  if (args.worker_host.empty()) {
    bench::header("Feedback loop", "Coverage-guided vs blind random on the unlock "
                                   "testbench (" +
                                       std::to_string(args.runs) + " runs per arm)");
  }

  // Both arms under the identical simulated-time budget; blind random's
  // asymptotic mean is ~590 s, so 1200 s leaves it a fair (~87%) chance per
  // trial while keeping the bench minutes-scale at CI run counts.
  const sim::Duration budget = std::chrono::seconds(1200);
  fleet::TrialPlan plan({"blind random", "feedback"},
                        static_cast<std::size_t>(args.runs), args.seed, budget);

  bench::FleetMetrics metrics;
  // The combined factory dispatches on the trial's arm: each inner factory
  // indexes arms by spec.arm, so both carry an entry per plan arm.
  fleet::UnlockArm random_arm;  // weak predicate, full-random space, 1 ms tx
  feedback::FeedbackArm feedback_arm;
  const fleet::WorldFactory random_factory =
      fleet::unlock_world_factory({random_arm, random_arm}, &metrics.registry);
  const fleet::WorldFactory feedback_factory = feedback::feedback_world_factory(
      {feedback_arm, feedback_arm}, &metrics.registry, corpus_dir);
  const fleet::WorldFactory factory =
      [&random_factory, &feedback_factory](const fleet::TrialSpec& spec) {
        return spec.arm == 0 ? random_factory(spec) : feedback_factory(spec);
      };

  const std::vector<fleet::TrialOutcome> outcomes =
      bench::run_fleet(plan, factory, args, "feedback-vs-random", &metrics);
  const fleet::FleetReport report = fleet::aggregate(plan, outcomes);

  bench::print_fleet_report(report);
  const ArmDerived random_d = derive(report.arms[0], outcomes, 0);
  const ArmDerived feedback_d = derive(report.arms[1], outcomes, 1);
  std::printf("distinct findings / sim-CPU-hour: random %.3f (%zu in %.2f h), "
              "feedback %.3f (%zu in %.2f h)\n",
              random_d.findings_per_cpu_hour, random_d.distinct_findings,
              random_d.sim_hours, feedback_d.findings_per_cpu_hour,
              feedback_d.distinct_findings, feedback_d.sim_hours);
  if (report.arms[0].detected > 0 && report.arms[1].detected > 0) {
    std::printf("mean time-to-unlock speedup: x%.1f (random %.1f s -> feedback %.1f s)\n",
                report.arms[0].time_to_failure.mean() /
                    report.arms[1].time_to_failure.mean(),
                report.arms[0].time_to_failure.mean(),
                report.arms[1].time_to_failure.mean());
  }

  if (json_path != nullptr) {
    std::FILE* out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench: cannot open %s\n", json_path);
      return 2;
    }
    std::fprintf(out,
                 "{\n  \"schema\": \"acf-feedback-bench-v1\",\n"
                 "  \"runs_per_arm\": %d,\n  \"sim_budget_s\": %.0f,\n"
                 "  \"seed\": %llu,\n  \"arms\": [\n",
                 args.runs, sim::to_seconds(budget),
                 static_cast<unsigned long long>(args.seed));
    json_arm(out, report.arms[0], random_d, false);
    json_arm(out, report.arms[1], feedback_d, true);
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
  }
  return 0;
}
