// Fig. 7: the same signals while the fuzzer injects random CAN data — the
// gauges jump erratically between arbitrary values ("the simulator responds
// erratically when the fuzzer is running"), captured over a shorter period
// than Fig. 6 as in the paper.
#include "analysis/report.hpp"
#include "bench_util.hpp"

int main() {
  using namespace acf;
  bench::header("Figure 7", "Effect of fuzzing on signals (20 s, 0.5 s samples)");

  sim::Scheduler scheduler;
  vehicle::VehicleConfig vehicle_config;
  vehicle_config.gateway_filtering = false;  // tap straight onto the signals
  vehicle::Vehicle car(scheduler, vehicle_config);
  scheduler.run_for(std::chrono::seconds(4));  // settle into idle first

  transport::VirtualBusTransport obd(car.body_bus(), "fuzzer");
  // Fuzz the signal-carrying ids.  The display-command id is left out here
  // so the cluster keeps running for the whole window (bench_fig9 covers
  // what happens when it is included: the CrAsH latch).
  std::vector<std::uint32_t> ids = dbc::target_vehicle_database().ids();
  std::erase(ids, dbc::kMsgClusterDisplay);
  fuzzer::RandomGenerator generator(fuzzer::FuzzConfig::targeted(std::move(ids), 0xF197));
  fuzzer::CampaignConfig campaign_config;
  campaign_config.max_duration = std::chrono::seconds(20);
  campaign_config.stop_on_failure = false;
  fuzzer::FuzzCampaign campaign(scheduler, obd, generator, nullptr, campaign_config);
  campaign.start();

  std::vector<double> times, rpm, speed;
  for (int sample = 0; sample <= 40; ++sample) {
    times.push_back(sim::to_seconds(scheduler.now()));
    rpm.push_back(car.cluster().rpm_gauge());
    speed.push_back(car.cluster().speed_gauge());
    scheduler.run_for(std::chrono::milliseconds(500));
  }

  std::printf("Engine RPM (cluster gauge) under fuzzing:\n%s\n",
              analysis::series_chart(times, rpm, "rpm", -8200, 8200).c_str());
  std::printf("Vehicle speed (cluster gauge) under fuzzing:\n%s\n",
              analysis::series_chart(times, speed, "km/h", 0, 660).c_str());
  std::printf("cluster: MIL=%d, warning sounds=%llu, implausible values seen=%llu,\n"
              "needle travel=%.0f (vs a few thousand over a whole calm cycle)\n",
              car.cluster().mil_on() ? 1 : 0,
              static_cast<unsigned long long>(car.cluster().warning_sounds()),
              static_cast<unsigned long long>(car.cluster().implausible_values_seen()),
              car.cluster().needle_travel());
  std::printf("engine idle roughness: %.0f rpm/tick (erratic idling, as on the "
              "target vehicle)\n",
              car.engine().idle_roughness());
  return 0;
}
