// Table V: fuzzer run times to activate the unlock function on the
// bench-top testbench.  The paper's protocol is 12 runs per predicate at
// the 1 ms transmit period; this bench reproduces it on the fleet
// orchestrator, so `--runs 200 --threads 8` replaces the 12-sample mean
// with a 200-replica estimate plus Student-t 95% confidence intervals at
// the same wall-clock cost — output is byte-identical at any thread count.
//
// Expected shape (the paper's own numbers are 12-sample means of a
// heavy-tailed geometric distribution):
//   - "Single id and byte": P(hit/frame) = (8/9)/2048/256 -> mean ~590 s
//     (paper measured 431 s);
//   - "Single id, byte plus data length": P(hit/frame) = (1/9)/2048/256 ->
//     mean ~4.7 ks (paper measured 1959 s, ~2.4x below the asymptotic mean —
//     small-sample variance the CI now quantifies).
// What must hold: minutes-scale unlock for the weak predicate, and a large
// multiplier (asymptotically 8x) from the one-line DLC-check hardening.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace acf;
  const bench::FleetArgs args = bench::parse_fleet_args(argc, argv, 12);
  if (args.worker_host.empty()) {
    bench::header("Table V", "Fuzzer run times to activate unlock (" +
                                 std::to_string(args.runs) +
                                 " runs per predicate, 1 ms tx period)");
  }

  fleet::TrialPlan plan({"Single id and byte", "Single id, byte plus data length"},
                        static_cast<std::size_t>(args.runs), args.seed);
  // Declared before the factory: every trial publishes scheduler/bus totals
  // into this registry, which `--metrics-out` streams as snapshot lines.
  bench::FleetMetrics metrics;
  fleet::WorldFactory factory = fleet::unlock_world_factory(
      {{vehicle::UnlockPredicate::single_id_and_byte(), fuzzer::FuzzConfig::full_random(),
        std::chrono::hours(24)},
       {vehicle::UnlockPredicate::id_byte_and_length(), fuzzer::FuzzConfig::full_random(),
        std::chrono::hours(24)}},
      &metrics.registry);

  // In-process by default; `--distributed K` runs the same plan through the
  // campaign coordinator with K forked worker processes — byte-identical
  // outcomes either way.
  const std::vector<fleet::TrialOutcome> outcomes =
      bench::run_fleet(plan, factory, args, "unlock-table5", &metrics);
  const fleet::FleetReport report = fleet::aggregate(plan, outcomes);

  bench::print_fleet_report(report);
  const double weak = report.arms[0].time_to_failure.mean();
  const double hard = report.arms[1].time_to_failure.mean();
  if (weak > 0.0 && report.arms[1].detected > 0) {
    std::printf("hardening multiplier (this fleet): x%.1f   paper: x4.5 (12 runs), "
                "asymptotic: x8\n",
                hard / weak);
  }
  std::printf("paper means for reference: 431 s and 1959 s (12 runs each)\n");
  return 0;
}
