// Table V: fuzzer run times to activate the unlock function on the
// bench-top testbench — 12 runs per predicate at the 1 ms transmit period,
// exactly the paper's protocol.
//
// Expected shape (the paper's own numbers are 12-sample means of a
// heavy-tailed geometric distribution):
//   - "Single id and byte": P(hit/frame) = (8/9)/2048/256 -> mean ~590 s
//     (paper measured 431 s);
//   - "Single id, byte plus data length": P(hit/frame) = (1/9)/2048/256 ->
//     mean ~4.7 ks (paper measured 1959 s, ~2.4x below the asymptotic mean —
//     small-sample variance).
// What must hold: minutes-scale unlock for the weak predicate, and a large
// multiplier (asymptotically 8x) from the one-line DLC-check hardening.
#include <cstdlib>

#include "analysis/report.hpp"
#include "util/stats.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace acf;
  const int runs = argc > 1 ? std::atoi(argv[1]) : 12;
  bench::header("Table V", "Fuzzer run times to activate unlock (" + std::to_string(runs) +
                               " runs per predicate, 1 ms tx period)");

  struct Arm {
    const char* label;
    vehicle::UnlockPredicate predicate;
    std::uint64_t seed_base;
  };
  const Arm arms[] = {
      {"Single id and byte", vehicle::UnlockPredicate::single_id_and_byte(), 0x1000},
      {"Single id, byte plus data length", vehicle::UnlockPredicate::id_byte_and_length(),
       0x2000},
  };

  analysis::TextTable table({"Message", "Times (s)", "Mean (s)"});
  double means[2] = {0, 0};
  int arm_index = 0;
  for (const Arm& arm : arms) {
    util::RunningStats stats;
    std::string times;
    for (int run = 0; run < runs; ++run) {
      const double seconds =
          bench::time_to_unlock(arm.predicate, arm.seed_base + static_cast<std::uint64_t>(run));
      stats.add(seconds);
      if (!times.empty()) times += ", ";
      times += analysis::format_number(seconds);
    }
    means[arm_index++] = stats.mean();
    table.add_row({arm.label, times, analysis::format_number(stats.mean())});
    std::printf("%-34s mean %7.0f s  (min %5.0f, max %6.0f, stddev %6.0f)\n", arm.label,
                stats.mean(), stats.min(), stats.max(), stats.stddev());
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("hardening multiplier (this batch): x%.1f   paper: x4.5 (12 runs), "
              "asymptotic: x8\n",
              means[1] / means[0]);
  std::printf("paper means for reference: 431 s and 1959 s\n");
  return 0;
}
