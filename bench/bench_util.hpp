// Shared scaffolding for the experiment benches: each bench binary
// regenerates one of the paper's tables or figures on stdout.
#pragma once

#include <cstdio>
#include <string>

#include "fuzzer/campaign.hpp"
#include "fuzzer/generator.hpp"
#include "oracle/vehicle_oracles.hpp"
#include "sim/scheduler.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "vehicle/vehicle.hpp"

namespace acf::bench {

inline void header(const std::string& artefact, const std::string& caption) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", artefact.c_str(), caption.c_str());
  std::printf("(Fowler et al., \"Fuzz Testing for Automotive Cyber-security\", DSN 2018)\n");
  std::printf("================================================================\n");
}

/// One unlock-testbench trial: blind random fuzz until the unlock oracle
/// fires; returns simulated seconds to unlock (-1 on timeout).
inline double time_to_unlock(vehicle::UnlockPredicate predicate, std::uint64_t seed,
                             sim::Duration timeout = std::chrono::hours(24),
                             fuzzer::FuzzConfig fuzz = fuzzer::FuzzConfig::full_random()) {
  sim::Scheduler scheduler;
  vehicle::UnlockTestbench bench(scheduler, predicate);
  transport::VirtualBusTransport attacker(bench.bus(), "attacker");
  oracle::CompositeOracle oracles;
  oracles.add(std::make_unique<oracle::UnlockOracle>(bench.bus(), &bench.bcm()));
  fuzz.seed = seed;
  fuzzer::RandomGenerator generator(fuzz);
  fuzzer::CampaignConfig config;
  config.tx_period = fuzz.tx_period;  // the Table III "Rate" knob
  config.max_duration = timeout;
  config.oracle_period = std::chrono::milliseconds(10);
  config.record_suspicious = false;
  fuzzer::FuzzCampaign campaign(scheduler, attacker, generator, &oracles, config);
  const auto& result = campaign.run();
  if (!result.any_failure()) return -1.0;
  // The oracle records the exact bus time of the acknowledgement frame.
  return sim::to_seconds(result.first_failure()->observation.time);
}

}  // namespace acf::bench
