// Shared scaffolding for the experiment benches: each bench binary
// regenerates one of the paper's tables or figures on stdout.  The
// trial-matrix benches (Table V, rate/hardening ablations) run on the fleet
// orchestrator — `--runs N --threads T` shards N replicas per arm across a
// worker pool with byte-identical results at any thread count.
#pragma once

#include <sys/types.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include <unistd.h>

#include "analysis/report.hpp"
#include "fleet/aggregator.hpp"
#include "fleet/executor.hpp"
#include "fleet/remote/coordinator.hpp"
#include "fleet/remote/worker.hpp"
#include "fleet/worlds.hpp"
#include "metrics/metrics.hpp"
#include "metrics/snapshot.hpp"
#include "fuzzer/campaign.hpp"
#include "fuzzer/generator.hpp"
#include "oracle/vehicle_oracles.hpp"
#include "sim/scheduler.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "vehicle/vehicle.hpp"

namespace acf::bench {

inline void header(const std::string& artefact, const std::string& caption) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", artefact.c_str(), caption.c_str());
  std::printf("(Fowler et al., \"Fuzz Testing for Automotive Cyber-security\", DSN 2018)\n");
  std::printf("================================================================\n");
}

/// One unlock-testbench trial: blind random fuzz until the unlock oracle
/// fires; returns simulated seconds to unlock, or a negative value on
/// timeout.  Callers must branch on the sign — a timeout is a separate
/// count, never a sample (feeding -1 into a mean corrupts it).
inline double time_to_unlock(vehicle::UnlockPredicate predicate, std::uint64_t seed,
                             sim::Duration timeout = std::chrono::hours(24),
                             fuzzer::FuzzConfig fuzz = fuzzer::FuzzConfig::full_random()) {
  sim::Scheduler scheduler;
  vehicle::UnlockTestbench bench(scheduler, predicate);
  transport::VirtualBusTransport attacker(bench.bus(), "attacker");
  oracle::CompositeOracle oracles;
  oracles.add(std::make_unique<oracle::UnlockOracle>(bench.bus(), &bench.bcm()));
  fuzz.seed = seed;
  fuzzer::RandomGenerator generator(fuzz);
  fuzzer::CampaignConfig config;
  config.tx_period = fuzz.tx_period;  // the Table III "Rate" knob
  config.max_duration = timeout;
  config.oracle_period = std::chrono::milliseconds(10);
  config.record_suspicious = false;
  fuzzer::FuzzCampaign campaign(scheduler, attacker, generator, &oracles, config);
  const auto& result = campaign.run();
  if (!result.any_failure()) return -1.0;
  // The oracle records the exact bus time of the acknowledgement frame.
  return sim::to_seconds(result.first_failure()->observation.time);
}

/// Command-line knobs shared by the fleet benches.
struct FleetArgs {
  int runs = 0;          // replicas per arm
  unsigned threads = 0;  // 0 = hardware concurrency
  std::uint64_t seed = 0xACF17EE7ULL;
  /// Worker processes to fork (`--distributed [K]`); 0 = in-process fleet.
  std::size_t distributed = 0;
  /// Hidden `--worker HOST:PORT`: this invocation IS a forked worker.
  std::string worker_host;
  std::uint16_t worker_port = 0;
  /// `--metrics-out PATH` (- = stderr): stream acf-metrics-v1 JSONL
  /// snapshots; the final line carries the campaign totals.
  const char* metrics_out = nullptr;
  /// `--metrics-interval N`: snapshot line cadence in completed trials.
  std::size_t metrics_interval = 10;
};

/// The --metrics-out plumbing for one bench process: the registry every
/// layer publishes into, the output stream and the JSONL writer.  Declare
/// it before the world factory so the registry outlives every world, and
/// pass `&registry` into the factory so trials publish their scheduler /
/// bus totals.
struct FleetMetrics {
  metrics::Registry registry;
  std::ofstream file;
  std::optional<metrics::SnapshotWriter> writer;

  /// Opens `path` ("-" = stderr) and arms the writer; exits on failure (a
  /// bench with an unwritable metrics path has nothing useful to measure).
  void open(const char* path, const std::string& source) {
    if (std::strcmp(path, "-") == 0) {
      writer.emplace(std::cerr, source);
      return;
    }
    file.open(path);
    if (!file) {
      std::fprintf(stderr, "bench: cannot open %s\n", path);
      std::exit(2);
    }
    writer.emplace(file, source);
  }
};

/// Parses `--runs N`, `--threads T`, `--seed S`, `--distributed [K]` and the
/// hidden `--worker HOST:PORT` child mode; a bare leading integer is still
/// accepted as the run count (the benches' historical interface).
inline FleetArgs parse_fleet_args(int argc, char** argv, int default_runs) {
  FleetArgs args;
  args.runs = default_runs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      args.runs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      args.threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      args.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--distributed") == 0) {
      args.distributed = 2;
      if (i + 1 < argc && std::atoi(argv[i + 1]) > 0) {
        args.distributed = static_cast<std::size_t>(std::atoi(argv[++i]));
      }
    } else if (std::strcmp(argv[i], "--worker") == 0 && i + 1 < argc) {
      const char* endpoint = argv[++i];
      const char* colon = std::strrchr(endpoint, ':');
      if (colon == nullptr || colon == endpoint) {
        std::fprintf(stderr, "%s: bad --worker endpoint %s\n", argv[0], endpoint);
        std::exit(2);
      }
      args.worker_host.assign(endpoint, static_cast<std::size_t>(colon - endpoint));
      args.worker_port = static_cast<std::uint16_t>(std::strtoul(colon + 1, nullptr, 0));
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      args.metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-interval") == 0 && i + 1 < argc) {
      args.metrics_interval = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (i == 1 && std::atoi(argv[i]) > 0) {
      args.runs = std::atoi(argv[i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--runs N] [--threads T] [--seed S] [--distributed [K]]\n"
                   "          [--metrics-out PATH] [--metrics-interval N]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (args.runs <= 0) args.runs = default_runs;
  return args;
}

/// Runs the plan and returns index-ordered outcomes — in this process by
/// default, or (with `--distributed K`) through the campaign coordinator
/// with K forked worker processes of this same bench binary.  Both paths
/// return byte-identical outcomes: the coordinator merges completions by
/// trial index and every trial's seed is a pure function of that index.
/// When the args carry the hidden `--worker` mode, this call never returns:
/// it serves the coordinator until shutdown and exits the process.
///
/// A non-null `metrics` arms the observability path: workers always publish
/// into its registry (heartbeats carry the totals), and with
/// `--metrics-out` the parent streams acf-metrics-v1 snapshot lines plus a
/// final operator table on stderr.
inline std::vector<fleet::TrialOutcome> run_fleet(const fleet::TrialPlan& plan,
                                                  const fleet::WorldFactory& factory,
                                                  const FleetArgs& args,
                                                  const std::string& world_tag,
                                                  FleetMetrics* metrics = nullptr) {
  if (!args.worker_host.empty()) {
    fleet::remote::WorkerConfig config;
    config.host = args.worker_host;
    config.port = args.worker_port;
    config.threads = args.threads;
    config.world_tag = world_tag;
    config.name = "bench-pid-" + std::to_string(static_cast<long>(::getpid()));
    if (metrics) config.registry = &metrics->registry;
    fleet::remote::Worker worker(plan, factory, config);
    const fleet::remote::WorkerResult result = worker.run();
    std::exit(result.exit == fleet::remote::WorkerExit::kCampaignComplete ? 0 : 1);
  }

  const bool observing = metrics != nullptr && args.metrics_out != nullptr;
  fleet::ProgressReporter progress;
  if (observing) progress.attach_registry(&metrics->registry);

  if (args.distributed == 0) {
    fleet::ExecutorConfig config;
    config.threads = args.threads;
    if (observing) {
      metrics->open(args.metrics_out, "local");
      config.registry = &metrics->registry;
      config.snapshot_writer = &*metrics->writer;
      config.snapshot_interval = args.metrics_interval;
    }
    fleet::Executor executor(config);
    std::vector<fleet::TrialOutcome> outcomes = executor.run(plan, factory, &progress);
    if (observing) {
      const metrics::RegistrySnapshot snap = metrics->registry.snapshot();
      double sim_seconds = 0.0;
      for (const auto& timer : snap.timers)
        if (timer.name == "fleet.trial.sim_seconds") sim_seconds = timer.sum;
      metrics->writer->write(snap, sim_seconds);
      std::fprintf(stderr, "%s", metrics::render_table(snap).c_str());
    }
    return outcomes;
  }

  fleet::remote::CoordinatorConfig config;
  config.world_tag = world_tag;
  if (observing) {
    metrics->open(args.metrics_out, "coordinator");
    config.registry = &metrics->registry;
    config.snapshot_writer = &*metrics->writer;
    config.snapshot_interval = args.metrics_interval;
  }
  fleet::remote::Coordinator coordinator(plan, config);

  const std::string endpoint = "127.0.0.1:" + std::to_string(coordinator.port());
  const std::string runs = std::to_string(args.runs);
  const std::string threads = std::to_string(args.threads);
  char seed[32];
  std::snprintf(seed, sizeof seed, "0x%llx", static_cast<unsigned long long>(args.seed));
  std::vector<pid_t> children;
  for (std::size_t k = 0; k < args.distributed; ++k) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::execl("/proc/self/exe", "/proc/self/exe", "--worker", endpoint.c_str(), "--runs",
              runs.c_str(), "--threads", threads.c_str(), "--seed", seed,
              static_cast<char*>(nullptr));
      std::_Exit(127);
    }
    if (pid > 0) children.push_back(pid);
  }
  std::fprintf(stderr, "bench: distributed fleet, %zu worker processes on %s\n",
               children.size(), endpoint.c_str());

  std::vector<fleet::TrialOutcome> outcomes = coordinator.serve(&progress);
  for (const pid_t pid : children) {
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
  if (observing) {
    // serve() already wrote the closing merged snapshot line; render the
    // same merged view as the operator table.
    std::fprintf(stderr, "%s", metrics::render_table(coordinator.merged_metrics()).c_str());
  }
  return outcomes;
}

/// Prints the per-arm fleet statistics table: detections, timeouts, errors,
/// mean with Student-t 95% CI, and median (all simulated seconds).
inline void print_fleet_report(const fleet::FleetReport& report) {
  analysis::TextTable table({"Arm", "n", "Detected", "Timeout", "Error", "Mean (s)",
                             "95% CI (s)", "Median (s)"});
  for (const fleet::ArmReport& arm : report.arms) {
    const util::Interval ci = arm.ci95();
    table.add_row({arm.label, std::to_string(arm.trials), std::to_string(arm.detected),
                   std::to_string(arm.timeouts), std::to_string(arm.errors),
                   analysis::format_number(arm.time_to_failure.mean(), 1),
                   "[" + analysis::format_number(ci.lo, 1) + ", " +
                       analysis::format_number(ci.hi, 1) + "]",
                   analysis::format_number(arm.median(), 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace acf::bench
