// Shared scaffolding for the experiment benches: each bench binary
// regenerates one of the paper's tables or figures on stdout.  The
// trial-matrix benches (Table V, rate/hardening ablations) run on the fleet
// orchestrator — `--runs N --threads T` shards N replicas per arm across a
// worker pool with byte-identical results at any thread count.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/report.hpp"
#include "fleet/aggregator.hpp"
#include "fleet/executor.hpp"
#include "fleet/worlds.hpp"
#include "fuzzer/campaign.hpp"
#include "fuzzer/generator.hpp"
#include "oracle/vehicle_oracles.hpp"
#include "sim/scheduler.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "vehicle/vehicle.hpp"

namespace acf::bench {

inline void header(const std::string& artefact, const std::string& caption) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", artefact.c_str(), caption.c_str());
  std::printf("(Fowler et al., \"Fuzz Testing for Automotive Cyber-security\", DSN 2018)\n");
  std::printf("================================================================\n");
}

/// One unlock-testbench trial: blind random fuzz until the unlock oracle
/// fires; returns simulated seconds to unlock, or a negative value on
/// timeout.  Callers must branch on the sign — a timeout is a separate
/// count, never a sample (feeding -1 into a mean corrupts it).
inline double time_to_unlock(vehicle::UnlockPredicate predicate, std::uint64_t seed,
                             sim::Duration timeout = std::chrono::hours(24),
                             fuzzer::FuzzConfig fuzz = fuzzer::FuzzConfig::full_random()) {
  sim::Scheduler scheduler;
  vehicle::UnlockTestbench bench(scheduler, predicate);
  transport::VirtualBusTransport attacker(bench.bus(), "attacker");
  oracle::CompositeOracle oracles;
  oracles.add(std::make_unique<oracle::UnlockOracle>(bench.bus(), &bench.bcm()));
  fuzz.seed = seed;
  fuzzer::RandomGenerator generator(fuzz);
  fuzzer::CampaignConfig config;
  config.tx_period = fuzz.tx_period;  // the Table III "Rate" knob
  config.max_duration = timeout;
  config.oracle_period = std::chrono::milliseconds(10);
  config.record_suspicious = false;
  fuzzer::FuzzCampaign campaign(scheduler, attacker, generator, &oracles, config);
  const auto& result = campaign.run();
  if (!result.any_failure()) return -1.0;
  // The oracle records the exact bus time of the acknowledgement frame.
  return sim::to_seconds(result.first_failure()->observation.time);
}

/// Command-line knobs shared by the fleet benches.
struct FleetArgs {
  int runs;              // replicas per arm
  unsigned threads = 0;  // 0 = hardware concurrency
  std::uint64_t seed = 0xACF17EE7ULL;
};

/// Parses `--runs N`, `--threads T`, `--seed S`; a bare leading integer is
/// still accepted as the run count (the benches' historical interface).
inline FleetArgs parse_fleet_args(int argc, char** argv, int default_runs) {
  FleetArgs args{default_runs};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      args.runs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      args.threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      args.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (i == 1 && std::atoi(argv[i]) > 0) {
      args.runs = std::atoi(argv[i]);
    } else {
      std::fprintf(stderr, "usage: %s [--runs N] [--threads T] [--seed S]\n", argv[0]);
      std::exit(2);
    }
  }
  if (args.runs <= 0) args.runs = default_runs;
  return args;
}

/// Prints the per-arm fleet statistics table: detections, timeouts, errors,
/// mean with Student-t 95% CI, and median (all simulated seconds).
inline void print_fleet_report(const fleet::FleetReport& report) {
  analysis::TextTable table({"Arm", "n", "Detected", "Timeout", "Error", "Mean (s)",
                             "95% CI (s)", "Median (s)"});
  for (const fleet::ArmReport& arm : report.arms) {
    const util::Interval ci = arm.ci95();
    table.add_row({arm.label, std::to_string(arm.trials), std::to_string(arm.detected),
                   std::to_string(arm.timeouts), std::to_string(arm.errors),
                   analysis::format_number(arm.time_to_failure.mean(), 1),
                   "[" + analysis::format_number(ci.lo, 1) + ", " +
                       analysis::format_number(ci.hi, 1) + "]",
                   analysis::format_number(arm.median(), 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace acf::bench
