// Table III: the fuzzable elements of a CAN data packet for the target
// vehicle, plus the §V combinatorial-explosion arithmetic the paper derives
// from them (2^19 combinations for id+1 byte; ~8.7 minutes at 1 ms; +1 byte
// -> ~1.5 days).
#include "analysis/combinatorics.hpp"
#include "analysis/report.hpp"
#include "bench_util.hpp"

int main() {
  using namespace acf;
  bench::header("Table III", "Fuzzing elements of a CAN data packet for the target vehicle");

  analysis::TextTable table({"Item", "Range", "Description"});
  table.add_row({"CAN Id", "{0,1,2,...,2047}", "All standard message ids"});
  table.add_row({"Payload length", "{0,1,2,...,8}", "Vary message length"});
  table.add_row({"Payload byte", "{0,1,2,...,255}", "Vary payload bytes"});
  table.add_row({"Rate", ">= 1 ms", "Vary transmission interval"});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Combinatorial space at 1 ms per frame (paper SecV):\n");
  analysis::TextTable space_table({"Payload bytes", "Frames", "Exhaust time"});
  for (std::size_t bytes = 0; bytes <= 4; ++bytes) {
    fuzzer::FuzzConfig config;
    config.dlc_min = config.dlc_max = static_cast<std::uint8_t>(bytes);
    const auto report = analysis::analyze_space(config);
    space_table.add_row({std::to_string(bytes),
                         report.saturated ? ">1.8e19" : std::to_string(report.frame_space),
                         analysis::humanize_duration(sim::to_seconds(report.exhaust_time))});
  }
  std::printf("%s\n", space_table.to_string().c_str());

  const fuzzer::FuzzConfig full = fuzzer::FuzzConfig::full_random();
  std::printf("Active fuzzer configuration: %s\n", full.describe().c_str());
  std::printf("Check: 1-byte space = %llu (2^19 = %llu)\n",
              static_cast<unsigned long long>(analysis::fixed_length_space(1)),
              1ULL << 19);
  return 0;
}
