// Microbenchmarks (google-benchmark): the framework's hot paths — frame
// wire codec, CRC, bus delivery, generators and signal packing.  These bound
// how much faster than real time the simulator runs (the ratio that makes
// the Table V campaigns tractable on a laptop).
#include <benchmark/benchmark.h>

#include "can/crc.hpp"
#include "can/wire_codec.hpp"
#include "dbc/target_vehicle_db.hpp"
#include "fuzzer/campaign.hpp"
#include "fuzzer/generator.hpp"
#include "fuzzer/mutator.hpp"
#include "sim/scheduler.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "vehicle/vehicle.hpp"

namespace {

using namespace acf;

void BM_WireEncode(benchmark::State& state) {
  const auto frame = can::CanFrame::data_std(0x215, {0x20, 0x5F, 1, 0, 0, 1, 0x20});
  for (auto _ : state) {
    benchmark::DoNotOptimize(can::encode_wire(frame));
  }
}
BENCHMARK(BM_WireEncode);

void BM_WireDecode(benchmark::State& state) {
  const auto wire = can::encode_wire(can::CanFrame::data_std(0x215, {0x20, 0x5F, 1, 0, 0, 1, 0x20}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(can::decode_wire(wire));
  }
}
BENCHMARK(BM_WireDecode);

void BM_Crc15(benchmark::State& state) {
  std::vector<std::uint8_t> bits(98, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = (i * 7 % 3) == 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(can::crc15_bits(bits));
  }
}
BENCHMARK(BM_Crc15);

void BM_FrameTimeComputation(benchmark::State& state) {
  const auto frame = can::CanFrame::data_std(0x123, {1, 2, 3, 4, 5, 6, 7, 8});
  for (auto _ : state) {
    benchmark::DoNotOptimize(can::frame_time(frame));
  }
}
BENCHMARK(BM_FrameTimeComputation);

void BM_RandomGenerator(benchmark::State& state) {
  fuzzer::RandomGenerator generator(fuzzer::FuzzConfig::full_random());
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.next());
  }
}
BENCHMARK(BM_RandomGenerator);

void BM_MutationGenerator(benchmark::State& state) {
  std::vector<can::CanFrame> corpus;
  for (std::uint32_t id = 0x100; id < 0x140; ++id) {
    corpus.push_back(can::CanFrame::data_std(id, {1, 2, 3, 4, 5, 6, 7, 8}));
  }
  fuzzer::MutationGenerator generator(corpus);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.next());
  }
}
BENCHMARK(BM_MutationGenerator);

void BM_SignalEncodeDecode(benchmark::State& state) {
  const dbc::Database db = dbc::target_vehicle_database();
  const dbc::MessageDef* engine = db.by_id(dbc::kMsgEngineData);
  for (auto _ : state) {
    const auto frame = engine->encode({{"EngineRPM", 2400.0}, {"ThrottlePct", 40.0}});
    benchmark::DoNotOptimize(engine->decode(*frame));
  }
}
BENCHMARK(BM_SignalEncodeDecode);

void BM_BusDelivery(benchmark::State& state) {
  // End-to-end: one frame submitted, arbitrated, timed and delivered to
  // three receivers (per-frame cost of the virtual bus).
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  transport::VirtualBusTransport tx(bus, "tx");
  transport::VirtualBusTransport rx1(bus, "rx1");
  transport::VirtualBusTransport rx2(bus, "rx2");
  transport::VirtualBusTransport rx3(bus, "rx3");
  const auto frame = can::CanFrame::data_std(0x100, {1, 2, 3, 4});
  for (auto _ : state) {
    tx.send(frame);
    scheduler.run_for(std::chrono::milliseconds(1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BusDelivery);

void BM_VehicleSimulationSecond(benchmark::State& state) {
  // Whole-vehicle cost: one simulated second of the full two-bus vehicle.
  sim::Scheduler scheduler;
  vehicle::Vehicle car(scheduler);
  for (auto _ : state) {
    scheduler.run_for(std::chrono::seconds(1));
  }
  state.SetLabel("sim-seconds/wall-second = items/s");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_VehicleSimulationSecond)->Unit(benchmark::kMillisecond);

void BM_FuzzCampaignSecond(benchmark::State& state) {
  // One simulated second of 1 kHz fuzz against the unlock testbench.
  sim::Scheduler scheduler;
  vehicle::UnlockTestbench bench(scheduler);
  transport::VirtualBusTransport attacker(bench.bus(), "attacker");
  fuzzer::RandomGenerator generator(fuzzer::FuzzConfig::full_random());
  fuzzer::CampaignConfig config;
  config.max_duration = std::chrono::hours(1000);
  fuzzer::FuzzCampaign campaign(scheduler, attacker, generator, nullptr, config);
  campaign.start();
  for (auto _ : state) {
    scheduler.run_for(std::chrono::seconds(1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FuzzCampaignSecond)->Unit(benchmark::kMillisecond);

}  // namespace
