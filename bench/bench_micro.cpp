// Simulation-core perf harness.
//
// Named microbenches over the discrete-event core — scheduler
// schedule/cancel/dispatch, bus broadcast fan-out, and the end-to-end
// unlock-world frames/sec that bounds every Table V-style campaign — each
// run K times with the median wall time reported, emitted as
// BENCH_simcore.json so future PRs have a trajectory to gate against.
//
//   bench_micro [--json PATH] [--repeats K] [--quick] [--only NAME]
//   bench_micro --gbench [google-benchmark args]   (legacy microbench suite)
//
// The unlock-world bench also computes a trace digest per repeat and the
// harness reports `deterministic: false` (and exits non-zero) if repeats
// disagree — the CI perf-smoke leg gates on crash/nondeterminism only, never
// on wall time, so the leg cannot flake with machine load.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "can/crc.hpp"
#include "can/wire_codec.hpp"
#include "dbc/target_vehicle_db.hpp"
#include "fuzzer/campaign.hpp"
#include "fuzzer/generator.hpp"
#include "fuzzer/mutator.hpp"
#include "sim/scheduler.hpp"
#include "trace/candump_log.hpp"
#include "trace/capture.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "vehicle/vehicle.hpp"

namespace {

using namespace acf;
using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Pre-PR reference: the same harness run against the std::function +
// priority_queue scheduler and per-listener bus delivery, measured on the
// development container immediately before the allocation-free core landed.
// Kept in BENCH_simcore.json so the 3x acceptance gate and future perf PRs
// have a fixed origin to compare against.
struct BaselineRef {
  const char* name;
  double rate;  // items/s on the pre-PR core
};
constexpr BaselineRef kPrePrBaseline[] = {
    {"sched_schedule_dispatch", 1.045e6},  // events/s
    {"sched_cancel", 7.28e5},              // cancels/s
    {"sched_periodic_storm", 7.79e6},      // events/s
    {"bus_broadcast_fanout", 1.176e7},     // deliveries/s
    {"unlock_world_e2e", 902663.0},        // frames/s — the 3x acceptance gate
    {"vehicle_sim", 6.13e5},               // frames/s
};

double pre_pr_rate(const std::string& name) {
  for (const BaselineRef& ref : kPrePrBaseline) {
    if (name == ref.name) return ref.rate;
  }
  return 0.0;
}

// ---------------------------------------------------------------------------
// Harness plumbing.

struct BenchResult {
  std::string name;
  std::string unit;           // what `rate` counts per second
  double median_wall_s = 0;
  double items = 0;           // per repeat
  double rate = 0;            // items / median_wall_s
  double sim_seconds_per_wall_second = 0;  // end-to-end benches only
  std::uint64_t trace_digest = 0;          // 0 = bench has no digest
  bool deterministic = true;
};

struct RepeatOutcome {
  double wall_s = 0;
  double items = 0;
  double sim_seconds = 0;
  std::uint64_t digest = 0;
};

BenchResult run_bench(const std::string& name, const std::string& unit, int repeats,
                      const std::function<RepeatOutcome()>& body) {
  std::vector<RepeatOutcome> outcomes;
  outcomes.reserve(static_cast<std::size_t>(repeats));
  for (int i = 0; i < repeats; ++i) outcomes.push_back(body());

  std::vector<double> walls;
  for (const RepeatOutcome& o : outcomes) walls.push_back(o.wall_s);
  std::sort(walls.begin(), walls.end());
  const double median = walls[walls.size() / 2];

  BenchResult result;
  result.name = name;
  result.unit = unit;
  result.median_wall_s = median;
  result.items = outcomes.front().items;
  result.rate = median > 0 ? result.items / median : 0;
  if (outcomes.front().sim_seconds > 0 && median > 0) {
    result.sim_seconds_per_wall_second = outcomes.front().sim_seconds / median;
  }
  result.trace_digest = outcomes.front().digest;
  for (const RepeatOutcome& o : outcomes) {
    if (o.digest != result.trace_digest || o.items != result.items) {
      result.deterministic = false;
    }
  }
  return result;
}

std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

// ---------------------------------------------------------------------------
// Benches.

/// Scheduler: N one-shots at scattered times, drained in order.
RepeatOutcome bench_sched_schedule_dispatch(std::size_t events) {
  sim::Scheduler scheduler;
  std::uint64_t executed = 0;
  const auto start = Clock::now();
  std::uint64_t state = 0x9E3779B97F4A7C15ULL;
  for (std::size_t i = 0; i < events; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto when = sim::SimTime{static_cast<std::int64_t>(state % 1'000'000'000)};
    scheduler.schedule_at(when, [&executed] { ++executed; });
  }
  scheduler.run_until(sim::SimTime{1'000'000'001});
  const double wall = std::chrono::duration<double>(Clock::now() - start).count();
  return {wall, static_cast<double>(executed), 0, 0};
}

/// Scheduler: schedule N, cancel every other one, drain the rest.
RepeatOutcome bench_sched_cancel(std::size_t events) {
  sim::Scheduler scheduler;
  std::uint64_t executed = 0;
  std::vector<sim::EventId> ids;
  ids.reserve(events);
  const auto start = Clock::now();
  std::uint64_t state = 0xC0FFEE123456789ULL;
  for (std::size_t i = 0; i < events; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto when = sim::SimTime{static_cast<std::int64_t>(state % 1'000'000'000)};
    ids.push_back(scheduler.schedule_at(when, [&executed] { ++executed; }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) scheduler.cancel(ids[i]);
  scheduler.run_until(sim::SimTime{1'000'000'001});
  const double wall = std::chrono::duration<double>(Clock::now() - start).count();
  return {wall, static_cast<double>(events), 0, 0};  // items = schedule+cancel ops
}

/// Scheduler: a storm of periodic events (the ECU tick pattern).
RepeatOutcome bench_sched_periodic_storm(std::size_t timers, sim::Duration horizon) {
  sim::Scheduler scheduler;
  std::uint64_t executed = 0;
  for (std::size_t i = 0; i < timers; ++i) {
    const auto period = std::chrono::microseconds(100 + 37 * (i % 64));
    scheduler.schedule_every(period, [&executed] { ++executed; });
  }
  const auto start = Clock::now();
  scheduler.run_for(horizon);
  const double wall = std::chrono::duration<double>(Clock::now() - start).count();
  return {wall, static_cast<double>(executed), sim::to_seconds(horizon), 0};
}

/// Bus: one transmitter saturating the wire, seven receivers.
RepeatOutcome bench_bus_broadcast_fanout(std::size_t frames) {
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  transport::VirtualBusTransport tx(bus, "tx");
  std::vector<std::unique_ptr<transport::VirtualBusTransport>> receivers;
  for (int i = 0; i < 7; ++i) {
    receivers.push_back(
        std::make_unique<transport::VirtualBusTransport>(bus, "rx" + std::to_string(i)));
  }
  const auto frame = can::CanFrame::data_std(0x100, {1, 2, 3, 4, 5, 6, 7, 8});
  const auto start = Clock::now();
  std::size_t submitted = 0;
  while (submitted < frames) {
    // Keep the queue topped up without overflowing the mailbox limit.
    while (submitted < frames && bus.pending(tx.node_id()) < 32) {
      tx.send(frame);
      ++submitted;
    }
    scheduler.run_for(std::chrono::milliseconds(10));
  }
  scheduler.run_for(std::chrono::milliseconds(100));
  const double wall = std::chrono::duration<double>(Clock::now() - start).count();
  return {wall, static_cast<double>(bus.stats().deliveries), 0, 0};
}

/// End-to-end: the Table V unlock world (bench rig + 1 kHz fuzz + oracle).
/// items = frames delivered on the bus; also reports sim-s/wall-s and an
/// order-and-timing-sensitive digest of the first 2 s of bus traffic.
RepeatOutcome bench_unlock_world(sim::Duration horizon) {
  RepeatOutcome outcome;
  {  // Digest pass (short, with a capture tap): determinism evidence.
    sim::Scheduler scheduler;
    vehicle::UnlockTestbench bench(scheduler);
    trace::CaptureTap tap(bench.bus(), "digest-tap");
    transport::VirtualBusTransport attacker(bench.bus(), "attacker");
    fuzzer::RandomGenerator generator(fuzzer::FuzzConfig::full_random(0xD16E57));
    fuzzer::CampaignConfig config;
    config.max_duration = std::chrono::seconds(2);
    config.stop_on_failure = false;
    config.record_suspicious = false;
    fuzzer::FuzzCampaign campaign(scheduler, attacker, generator, nullptr, config);
    campaign.run();
    std::uint64_t digest = 0xCBF29CE484222325ULL;
    for (const trace::TimestampedFrame& entry : tap.frames()) {
      const std::string line = trace::to_candump_line(entry);
      digest = fnv1a(digest, line.data(), line.size());
    }
    outcome.digest = digest;
  }
  {  // Timed pass (no tap).
    sim::Scheduler scheduler;
    vehicle::UnlockTestbench bench(scheduler);
    transport::VirtualBusTransport attacker(bench.bus(), "attacker");
    fuzzer::RandomGenerator generator(fuzzer::FuzzConfig::full_random(0xD16E57));
    fuzzer::CampaignConfig config;
    config.max_duration = horizon;
    config.stop_on_failure = false;
    config.record_suspicious = false;
    fuzzer::FuzzCampaign campaign(scheduler, attacker, generator, nullptr, config);
    const auto start = Clock::now();
    campaign.run();
    outcome.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
    outcome.items = static_cast<double>(bench.bus().stats().frames_delivered);
    outcome.sim_seconds = sim::to_seconds(horizon);
  }
  return outcome;
}

/// End-to-end: the full two-bus vehicle idling through its drive cycle.
RepeatOutcome bench_vehicle_sim(sim::Duration horizon) {
  sim::Scheduler scheduler;
  vehicle::Vehicle car(scheduler);
  const auto start = Clock::now();
  scheduler.run_for(horizon);
  const double wall = std::chrono::duration<double>(Clock::now() - start).count();
  const double frames = static_cast<double>(car.powertrain_bus().stats().frames_delivered +
                                            car.body_bus().stats().frames_delivered);
  return {wall, frames, sim::to_seconds(horizon), 0};
}

// ---------------------------------------------------------------------------
// JSON emission (no dependency; the schema is consumed by CI and humans).

void append_json_double(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  out += buf;
}

std::string to_json(const std::vector<BenchResult>& results) {
  std::string out = "{\n  \"schema\": \"acf-simcore-bench-v1\",\n  \"benches\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    out += "    {\"name\": \"" + r.name + "\", \"unit\": \"" + r.unit + "\"";
    out += ", \"median_wall_s\": ";
    append_json_double(out, r.median_wall_s);
    out += ", \"items\": ";
    append_json_double(out, r.items);
    out += ", \"rate\": ";
    append_json_double(out, r.rate);
    if (r.sim_seconds_per_wall_second > 0) {
      out += ", \"sim_seconds_per_wall_second\": ";
      append_json_double(out, r.sim_seconds_per_wall_second);
    }
    if (r.trace_digest != 0) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "\"0x%016" PRIx64 "\"", r.trace_digest);
      out += ", \"trace_digest\": ";
      out += buf;
    }
    out += std::string(", \"deterministic\": ") + (r.deterministic ? "true" : "false");
    out += "}";
    if (i + 1 < results.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n";
  const double baseline = pre_pr_rate("unlock_world_e2e");
  out += "  \"pre_pr_baseline\": {\"unlock_world_e2e_rate\": ";
  append_json_double(out, baseline);
  out += ", \"note\": \"pre-refactor core (std::function + priority_queue scheduler), "
         "same harness, same container\"}";
  for (const BenchResult& r : results) {
    if (r.name == "unlock_world_e2e" && baseline > 0) {
      out += ",\n  \"speedup_unlock_world_vs_pre_pr\": ";
      append_json_double(out, r.rate / baseline);
    }
  }
  out += "\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Legacy google-benchmark microbenches (run with --gbench).

void BM_WireEncode(benchmark::State& state) {
  const auto frame = can::CanFrame::data_std(0x215, {0x20, 0x5F, 1, 0, 0, 1, 0x20});
  for (auto _ : state) {
    benchmark::DoNotOptimize(can::encode_wire(frame));
  }
}
BENCHMARK(BM_WireEncode);

void BM_WireDecode(benchmark::State& state) {
  const auto wire = can::encode_wire(can::CanFrame::data_std(0x215, {0x20, 0x5F, 1, 0, 0, 1, 0x20}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(can::decode_wire(wire));
  }
}
BENCHMARK(BM_WireDecode);

void BM_Crc15(benchmark::State& state) {
  std::vector<std::uint8_t> bits(98, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = (i * 7 % 3) == 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(can::crc15_bits(bits));
  }
}
BENCHMARK(BM_Crc15);

void BM_FrameTimeComputation(benchmark::State& state) {
  const auto frame = can::CanFrame::data_std(0x123, {1, 2, 3, 4, 5, 6, 7, 8});
  for (auto _ : state) {
    benchmark::DoNotOptimize(can::frame_time(frame));
  }
}
BENCHMARK(BM_FrameTimeComputation);

void BM_RandomGenerator(benchmark::State& state) {
  fuzzer::RandomGenerator generator(fuzzer::FuzzConfig::full_random());
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.next());
  }
}
BENCHMARK(BM_RandomGenerator);

void BM_MutationGenerator(benchmark::State& state) {
  std::vector<can::CanFrame> corpus;
  for (std::uint32_t id = 0x100; id < 0x140; ++id) {
    corpus.push_back(can::CanFrame::data_std(id, {1, 2, 3, 4, 5, 6, 7, 8}));
  }
  fuzzer::MutationGenerator generator(corpus);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.next());
  }
}
BENCHMARK(BM_MutationGenerator);

void BM_SignalEncodeDecode(benchmark::State& state) {
  const dbc::Database db = dbc::target_vehicle_database();
  const dbc::MessageDef* engine = db.by_id(dbc::kMsgEngineData);
  for (auto _ : state) {
    const auto frame = engine->encode({{"EngineRPM", 2400.0}, {"ThrottlePct", 40.0}});
    benchmark::DoNotOptimize(engine->decode(*frame));
  }
}
BENCHMARK(BM_SignalEncodeDecode);

void BM_BusDelivery(benchmark::State& state) {
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  transport::VirtualBusTransport tx(bus, "tx");
  transport::VirtualBusTransport rx1(bus, "rx1");
  transport::VirtualBusTransport rx2(bus, "rx2");
  transport::VirtualBusTransport rx3(bus, "rx3");
  const auto frame = can::CanFrame::data_std(0x100, {1, 2, 3, 4});
  for (auto _ : state) {
    tx.send(frame);
    scheduler.run_for(std::chrono::milliseconds(1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BusDelivery);

}  // namespace

int main(int argc, char** argv) {
  bool gbench = false;
  std::string json_path = "BENCH_simcore.json";
  std::string only;
  int repeats = 5;
  bool quick = false;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gbench") == 0) {
      gbench = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
      repeats = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc) {
      only = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      repeats = std::min(repeats, 3);
    } else {
      passthrough.push_back(argv[i]);
    }
  }

  if (gbench) {
    int pass_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&pass_argc, passthrough.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }

  const std::size_t sched_events = quick ? 100'000 : 400'000;
  const auto storm_horizon = quick ? std::chrono::seconds(5) : std::chrono::seconds(20);
  const std::size_t fanout_frames = quick ? 20'000 : 60'000;
  const auto unlock_horizon = quick ? std::chrono::seconds(5) : std::chrono::seconds(20);
  const auto vehicle_horizon = quick ? std::chrono::seconds(3) : std::chrono::seconds(10);

  struct Spec {
    const char* name;
    const char* unit;
    std::function<RepeatOutcome()> body;
  };
  const Spec specs[] = {
      {"sched_schedule_dispatch", "events/s",
       [&] { return bench_sched_schedule_dispatch(sched_events); }},
      {"sched_cancel", "ops/s", [&] { return bench_sched_cancel(sched_events); }},
      {"sched_periodic_storm", "events/s",
       [&] { return bench_sched_periodic_storm(200, storm_horizon); }},
      {"bus_broadcast_fanout", "deliveries/s",
       [&] { return bench_bus_broadcast_fanout(fanout_frames); }},
      {"unlock_world_e2e", "frames/s", [&] { return bench_unlock_world(unlock_horizon); }},
      {"vehicle_sim", "frames/s", [&] { return bench_vehicle_sim(vehicle_horizon); }},
  };

  std::vector<BenchResult> results;
  bool all_deterministic = true;
  for (const Spec& spec : specs) {
    if (!only.empty() && only != spec.name) continue;
    BenchResult result = run_bench(spec.name, spec.unit, repeats, spec.body);
    std::printf("%-26s %12.0f %-13s median %8.4fs", result.name.c_str(), result.rate,
                result.unit.c_str(), result.median_wall_s);
    if (result.sim_seconds_per_wall_second > 0) {
      std::printf("  (%.0fx real time)", result.sim_seconds_per_wall_second);
    }
    if (!result.deterministic) {
      std::printf("  NONDETERMINISTIC");
      all_deterministic = false;
    }
    std::printf("\n");
    results.push_back(std::move(result));
  }

  const std::string json = to_json(results);
  if (FILE* f = std::fopen(json_path.c_str(), "wb")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 2;
  }
  return all_deterministic ? 0 : 1;
}
