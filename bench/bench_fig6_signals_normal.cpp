// Fig. 6: normal vehicle signals over time — RPM and speed as the simulated
// vehicle works through its drive cycle, sampled from the instrument
// cluster's gauges (what the Vector tooling displayed).
#include "analysis/report.hpp"
#include "util/stats.hpp"
#include "bench_util.hpp"

int main() {
  using namespace acf;
  bench::header("Figure 6", "Normal vehicle signals (120 s drive cycle, 2 s samples)");

  sim::Scheduler scheduler;
  vehicle::Vehicle car(scheduler);
  std::vector<double> times, rpm, speed;
  for (int sample = 0; sample <= 60; ++sample) {
    times.push_back(sim::to_seconds(scheduler.now()));
    rpm.push_back(car.cluster().rpm_gauge());
    speed.push_back(car.cluster().speed_gauge());
    scheduler.run_for(std::chrono::seconds(2));
  }

  std::printf("Engine RPM (cluster gauge):\n%s\n",
              analysis::series_chart(times, rpm, "rpm", 0, 4000).c_str());
  std::printf("Vehicle speed (cluster gauge):\n%s\n",
              analysis::series_chart(times, speed, "km/h", 0, 120).c_str());
  util::RunningStats rpm_stats;
  for (double value : rpm) rpm_stats.add(value);
  std::printf("RPM range over the cycle: %.0f..%.0f, smooth transitions, "
              "no implausible values (cluster MIL=%d).\n",
              rpm_stats.min(), rpm_stats.max(), car.cluster().mil_on() ? 1 : 0);
  return 0;
}
