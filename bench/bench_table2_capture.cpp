// Table II: examples of CAN packets captured from the (simulated) car —
// timestamped id/length/data rows from a bus tap on the idling vehicle.
#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "trace/capture.hpp"
#include "util/hex.hpp"

int main() {
  using namespace acf;
  bench::header("Table II", "Examples of CAN packets captured from a car");

  sim::Scheduler scheduler;
  vehicle::Vehicle car(scheduler);
  // Let the vehicle idle for a while, then capture a slice mid-stream (the
  // paper's rows carry ~5.3 s timestamps).
  scheduler.run_for(std::chrono::seconds(5));
  trace::CaptureTap tap(car.powertrain_bus(), "obd-tap", 64);
  trace::CaptureTap body_tap(car.body_bus(), "obd-tap2", 64);
  scheduler.run_for(std::chrono::milliseconds(400));

  analysis::TextTable table({"Time (ms)", "Id", "Length", "Data"});
  // Interleave a few rows from each bus, mirroring the mixed capture.
  std::size_t shown = 0;
  for (const auto& entry : tap.frames()) {
    if (shown >= 4) break;
    // Show one frame per distinct id for variety.
    static std::uint32_t last_id = 0xFFFFFFFF;
    if (entry.frame.id() == last_id) continue;
    last_id = entry.frame.id();
    table.add_row({sim::format_millis(entry.time),
                   util::hex_u32(entry.frame.id(), 4),
                   std::to_string(entry.frame.length()),
                   util::hex_bytes(entry.frame.payload())});
    ++shown;
  }
  for (const auto& entry : body_tap.frames()) {
    if (shown >= 6) break;
    if (entry.frame.id() == dbc::kMsgDoorStatus || entry.frame.id() == dbc::kMsgClusterDisplay) {
      table.add_row({sim::format_millis(entry.time),
                     util::hex_u32(entry.frame.id(), 4),
                     std::to_string(entry.frame.length()),
                     util::hex_bytes(entry.frame.payload())});
      ++shown;
      if (entry.frame.id() == dbc::kMsgClusterDisplay) break;
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Captured %llu frames total on the powertrain bus in 400 ms "
              "(bus load %.1f%%).\n",
              static_cast<unsigned long long>(tap.total_seen()),
              car.powertrain_bus().stats().load(scheduler.now()) * 100.0);
  return 0;
}
