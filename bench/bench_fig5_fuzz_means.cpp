// Fig. 5: mean value of each data byte position over 66,144 randomly
// generated fuzzer messages — flat at ~127, the paper's evidence that the
// fuzzer "is correctly generating an even spread of byte values".
#include "analysis/byte_stats.hpp"
#include "analysis/report.hpp"
#include "bench_util.hpp"

int main() {
  using namespace acf;
  bench::header("Figure 5",
                "Mean values per data byte position, 66144 randomly generated CAN messages");

  fuzzer::RandomGenerator generator(fuzzer::FuzzConfig::full_random(0xF165));
  analysis::BytePositionStats stats;
  for (int i = 0; i < 66'144; ++i) stats.add(*generator.next());

  std::vector<std::string> labels;
  std::vector<double> means;
  for (std::size_t position = 0; position < analysis::BytePositionStats::kPositions;
       ++position) {
    labels.push_back("byte " + std::to_string(position));
    means.push_back(stats.mean(position));
  }
  std::printf("%s\n", analysis::bar_chart(labels, means, 255.0).c_str());
  std::printf("frames analysed: %llu\n", static_cast<unsigned long long>(stats.frames()));
  std::printf("overall mean byte value: %.2f (paper: 127; exact uniform: 127.5)\n",
              stats.overall_mean());
  std::printf("flatness: %.2f -> %s\n", stats.flatness(),
              stats.flatness() < 3.5 ? "LINEAR/FLAT, as the paper's Fig. 5"
                                     : "unexpectedly skewed");
  const double chi = util::chi_square_uniform(stats.value_histogram(0));
  std::printf("chi-square(byte 0 values) = %.0f -> uniformity %s (dof=255)\n", chi,
              util::chi_square_accepts_uniform(chi, 255) ? "ACCEPTED" : "rejected");
  return 0;
}
