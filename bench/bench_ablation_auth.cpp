// Ablation A7: message authentication as the end-state defense.  Extends
// Table V with a third predicate — truncated-MAC + rolling counter (the
// Nowdehi-et-al. family the paper cites) — and measures what it does to the
// blind-fuzz attack and to the replay attack, while the legitimate app path
// keeps working.
#include "analysis/report.hpp"
#include "attacks/attacks.hpp"
#include "util/stats.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace acf;
  const int runs = argc > 1 ? std::atoi(argv[1]) : 6;
  bench::header("Ablation A7", "Message authentication vs the Table V attack (" +
                                   std::to_string(runs) + " runs per unauthenticated arm)");

  analysis::TextTable table({"Predicate", "Mean time-to-unlock", "Notes"});

  for (const auto& [label, predicate] :
       {std::pair<const char*, vehicle::UnlockPredicate>{
            "single id and byte", vehicle::UnlockPredicate::single_id_and_byte()},
        {"id, byte plus data length", vehicle::UnlockPredicate::id_byte_and_length()}}) {
    util::RunningStats stats;
    for (int run = 0; run < runs; ++run) {
      stats.add(bench::time_to_unlock(predicate, 0xA700 + static_cast<std::uint64_t>(run)));
    }
    table.add_row({label, analysis::format_number(stats.mean()) + " s", "paper Table V"});
  }

  // Authenticated arm: bounded budget, then report the analytic mean.
  {
    sim::Scheduler scheduler;
    vehicle::UnlockTestbench bench_rig(scheduler, vehicle::UnlockPredicate::authenticated());
    transport::VirtualBusTransport attacker(bench_rig.bus(), "attacker");
    oracle::CompositeOracle oracles;
    oracles.add(std::make_unique<oracle::UnlockOracle>(bench_rig.bus(), &bench_rig.bcm()));
    fuzzer::RandomGenerator generator(fuzzer::FuzzConfig::full_random(0xA7FF));
    fuzzer::CampaignConfig config;
    config.max_duration = std::chrono::hours(2);  // 7.2M frames at 1 kHz
    config.oracle_period = std::chrono::milliseconds(10);
    config.record_suspicious = false;
    fuzzer::FuzzCampaign campaign(scheduler, attacker, generator, &oracles, config);
    const auto& result = campaign.run();
    char note[128];
    std::snprintf(note, sizeof note,
                  "no unlock in %llu fuzzed frames; %llu frames rejected by the BCM",
                  static_cast<unsigned long long>(result.frames_sent),
                  static_cast<unsigned long long>(bench_rig.bcm().rejected_commands()));
    table.add_row({"MAC + rolling counter",
                   result.any_failure() ? "BROKEN?!" : "> 2 h (analytic: ~3e6 years)", note});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Replay resistance and the legitimate path.
  {
    sim::Scheduler scheduler;
    vehicle::UnlockTestbench bench_rig(scheduler, vehicle::UnlockPredicate::authenticated());
    transport::VirtualBusTransport attacker(bench_rig.bus(), "attacker");
    attacks::ReplayAttack replay(scheduler, bench_rig.bus(), attacker,
                                 can::FilterBank{can::IdMaskFilter::exact(0x215)});
    replay.record_for(std::chrono::milliseconds(100));
    bench_rig.head_unit().request_unlock();
    scheduler.run_for(std::chrono::milliseconds(200));
    bench_rig.bcm().force_lock();
    replay.replay(5);
    scheduler.run_for(std::chrono::seconds(1));
    std::printf("replay of the recorded genuine unlock frame (x5): %s "
                "(%llu replays detected by the counter window)\n",
                bench_rig.bcm().unlocked() ? "UNLOCKED — replay works?!"
                                           : "still locked — replay defeated",
                static_cast<unsigned long long>(
                    bench_rig.bcm().verifier()->stats().replayed));
    bench_rig.head_unit().request_unlock();
    scheduler.run_for(std::chrono::milliseconds(50));
    std::printf("legitimate app unlock afterwards: %s\n",
                bench_rig.bcm().unlocked() ? "works" : "BROKEN");
  }
  std::printf("\nShape: attacker cost rises from minutes (Table V row 1) through x8 (row 2)\n"
              "to cryptographic infeasibility (2^-32 per correctly-shaped frame), with no\n"
              "functional cost on the legitimate path — but key management remains the\n"
              "deployment blocker the paper's §IV cites.\n");
  return 0;
}
