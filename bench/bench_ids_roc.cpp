// IDS evaluation: per-detector precision/recall/F1, ROC sweep, AUC and mean
// detection latency for the four standard detectors watching the Table V
// unlock world — the defense-side complement of bench_table5_unlock.  Runs
// on the fleet orchestrator with ground-truth frame labeling at the source
// (every fuzzer-injected frame is noted at send time), so the confusion
// counts are exact, not heuristic.
//
// `--jsonl PATH` exports one line per (arm, detector) with the merged
// metrics and the ROC curve; the export is byte-identical at any --threads
// for a given seed (slot-per-trial evaluation sink, merged in trial-index
// order).
//
// A second section reproduces the Fig. 4 / Fig. 5 contrast as a detector
// property: the entropy detector trained on captured vehicle traffic must
// separate a held-out clean window from fuzz traffic with AUC > 0.9 (the
// bench exits non-zero if it does not).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "attacks/attack_world.hpp"
#include "bench_util.hpp"
#include "ids/detectors.hpp"
#include "ids/ids_world.hpp"
#include "trace/capture.hpp"

namespace {

struct IdsRocArgs {
  acf::bench::FleetArgs fleet;
  std::string jsonl_path;
  /// Evaluate the attack-scenario catalog (one arm per family) instead of
  /// the Table V unlock world.
  bool attacks = false;
};

IdsRocArgs parse_args(int argc, char** argv) {
  IdsRocArgs args;
  args.fleet.runs = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      args.fleet.runs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      args.fleet.threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      args.fleet.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--jsonl") == 0 && i + 1 < argc) {
      args.jsonl_path = argv[++i];
    } else if (std::strcmp(argv[i], "--attacks") == 0) {
      args.attacks = true;
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      args.fleet.metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-interval") == 0 && i + 1 < argc) {
      args.fleet.metrics_interval = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--runs N] [--threads T] [--seed S] [--jsonl PATH]\n"
                   "          [--attacks] [--metrics-out PATH] [--metrics-interval N]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (args.fleet.runs <= 0) args.fleet.runs = 8;
  return args;
}

std::string num(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.9g", value);
  return buffer;
}

/// One line per (arm, detector).  When `families` is non-null (the attack
/// matrix) its entries run parallel to `reports` and each line carries the
/// attack family next to the arm label.
void write_jsonl(std::ostream& out, const std::vector<acf::ids::ArmIdsReport>& reports,
                 const std::vector<std::string>* families = nullptr) {
  using acf::ids::RocPoint;
  for (std::size_t arm_index = 0; arm_index < reports.size(); ++arm_index) {
    const acf::ids::ArmIdsReport& arm = reports[arm_index];
    for (const acf::ids::ArmIdsReport::PerDetector& det : arm.detectors) {
      const acf::util::Interval rate = det.detection_rate_ci(arm.trials);
      out << "{\"arm\":\"" << arm.label << "\",";
      if (families != nullptr) out << "\"family\":\"" << (*families)[arm_index] << "\",";
      out << "\"detector\":\"" << det.merged.name
          << "\",\"threshold\":" << num(det.merged.threshold) << ",\"tp\":" << det.merged.tp
          << ",\"fp\":" << det.merged.fp << ",\"tn\":" << det.merged.tn
          << ",\"fn\":" << det.merged.fn << ",\"precision\":" << num(det.merged.precision())
          << ",\"recall\":" << num(det.merged.recall()) << ",\"f1\":" << num(det.merged.f1())
          << ",\"fpr\":" << num(det.merged.false_positive_rate())
          << ",\"auc\":" << num(det.merged.auc()) << ",\"mean_latency_s\":";
      if (det.latency.count() > 0) {
        out << num(det.latency.mean());
      } else {
        out << "null";
      }
      out << ",\"trials_detected\":" << det.trials_detected << ",\"trials\":" << arm.trials
          << ",\"rate_ci\":[" << num(rate.lo) << ',' << num(rate.hi) << "],\"roc\":[";
      const std::vector<RocPoint> roc = det.merged.roc(11);
      for (std::size_t i = 0; i < roc.size(); ++i) {
        if (i) out << ',';
        out << "{\"t\":" << num(roc[i].threshold) << ",\"tpr\":" << num(roc[i].tpr)
            << ",\"fpr\":" << num(roc[i].fpr) << '}';
      }
      out << "]}\n";
    }
  }
}

void print_reports(const std::vector<acf::ids::ArmIdsReport>& reports) {
  using namespace acf;
  for (const ids::ArmIdsReport& arm : reports) {
    std::printf("Arm \"%s\": %zu trials, %llu attack / %llu legitimate frames scored\n",
                arm.label.c_str(), arm.trials,
                static_cast<unsigned long long>(arm.attack_frames),
                static_cast<unsigned long long>(arm.legit_frames));
    analysis::TextTable table({"Detector", "Thresh", "Prec", "Recall", "F1", "FPR", "AUC",
                               "Latency (s)", "Detected", "Rate 95% CI"});
    for (const ids::ArmIdsReport::PerDetector& det : arm.detectors) {
      const util::Interval rate = det.detection_rate_ci(arm.trials);
      table.add_row(
          {det.merged.name, analysis::format_number(det.merged.threshold, 2),
           analysis::format_number(det.merged.precision(), 3),
           analysis::format_number(det.merged.recall(), 3),
           analysis::format_number(det.merged.f1(), 3),
           analysis::format_number(det.merged.false_positive_rate(), 4),
           analysis::format_number(det.merged.auc(), 3),
           det.latency.count() > 0 ? analysis::format_number(det.latency.mean(), 3) : "-",
           std::to_string(det.trials_detected) + "/" + std::to_string(arm.trials),
           "[" + analysis::format_number(rate.lo, 2) + ", " +
               analysis::format_number(rate.hi, 2) + "]"});
    }
    std::printf("%s\n", table.to_string().c_str());

    std::printf("ROC sweep (threshold: TPR/FPR):\n");
    for (const ids::ArmIdsReport::PerDetector& det : arm.detectors) {
      std::printf("  %-10s", det.merged.name.c_str());
      for (const ids::RocPoint& point : det.merged.roc(6)) {
        std::printf("  %.1f: %.2f/%.3f", point.threshold, point.tpr, point.fpr);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
}

/// Pipeline registry counters vs the evaluator's ground-truth tallies: two
/// independent paths over the same frames, so every scored frame must be
/// labeled and every over-threshold score must raise or suppress an alert.
/// Drift between them means one side miscounted — fail the bench.
bool counters_cross_check(const std::vector<acf::ids::ArmIdsReport>& reports) {
  using namespace acf;
  bool counters_ok = true;
  for (const ids::ArmIdsReport& arm : reports) {
    const std::uint64_t labeled = arm.attack_frames + arm.legit_frames;
    std::uint64_t over_threshold = 0;
    for (const ids::ArmIdsReport::PerDetector& det : arm.detectors) {
      over_threshold += det.merged.tp + det.merged.fp;
    }
    const ids::PipelineCounters& pipe = arm.pipeline;
    if (pipe.frames_scored != labeled ||
        pipe.alerts_raised + pipe.alerts_suppressed != over_threshold) {
      std::fprintf(stderr,
                   "FAIL arm \"%s\": pipeline counters disagree with evaluator "
                   "(scored %llu vs labeled %llu; raised+suppressed %llu vs "
                   "tp+fp %llu)\n",
                   arm.label.c_str(),
                   static_cast<unsigned long long>(pipe.frames_scored),
                   static_cast<unsigned long long>(labeled),
                   static_cast<unsigned long long>(pipe.alerts_raised +
                                                   pipe.alerts_suppressed),
                   static_cast<unsigned long long>(over_threshold));
      counters_ok = false;
    }
  }
  std::printf(
      "pipeline/evaluator cross-check (scored==labeled, raised+suppressed==tp+fp): %s\n",
      counters_ok ? "[ok]" : "[FAIL]");
  return counters_ok;
}

/// --attacks: the per-(attack, detector) evaluation matrix over the full
/// scenario catalog.  Each trial ships its evaluation back as digest
/// findings, so the merged matrix here is the same one a --distributed run
/// reconstructs from the remote outcomes.
int run_attacks(const IdsRocArgs& args) {
  using namespace acf;
  bench::header("IDS evaluation: attack catalog",
                "Per-(attack, detector) matrix over the scenario families (" +
                    std::to_string(args.fleet.runs) + " trials per arm)");

  const std::vector<attacks::AttackArm> arms = attacks::standard_attack_arms();
  std::vector<std::string> labels;
  std::vector<std::string> families;
  for (const attacks::AttackArm& arm : arms) {
    labels.push_back(arm.label);
    families.push_back(attacks::to_string(arm.spec.family));
  }
  fleet::TrialPlan plan(labels, static_cast<std::size_t>(args.fleet.runs), args.fleet.seed);

  bench::FleetMetrics metrics;
  const bool observing = args.fleet.metrics_out != nullptr;
  fleet::ExecutorConfig executor_config;
  executor_config.threads = args.fleet.threads;
  if (observing) {
    metrics.open(args.fleet.metrics_out, "local");
    executor_config.registry = &metrics.registry;
    executor_config.snapshot_writer = &*metrics.writer;
    executor_config.snapshot_interval = args.fleet.metrics_interval;
  }
  fleet::Executor executor(executor_config);
  fleet::ProgressReporter progress;
  if (observing) progress.attach_registry(&metrics.registry);
  const auto outcomes = executor.run(
      plan, attacks::attack_world_factory(arms, observing ? &metrics.registry : nullptr),
      &progress);
  if (observing) {
    const metrics::RegistrySnapshot snap = metrics.registry.snapshot();
    double sim_seconds = 0.0;
    for (const auto& timer : snap.timers)
      if (timer.name == "fleet.trial.sim_seconds") sim_seconds = timer.sum;
    metrics.writer->write(snap, sim_seconds);
    std::fprintf(stderr, "%s", metrics::render_table(snap).c_str());
  }

  const fleet::FleetReport fleet_report = fleet::aggregate(plan, outcomes);
  const std::vector<ids::ArmIdsReport> reports = attacks::merge_outcome_evals(plan, outcomes);

  std::printf("Attack impact (kFailure findings -> detected / time-to-failure):\n");
  bench::print_fleet_report(fleet_report);
  print_reports(reports);

  if (!args.jsonl_path.empty()) {
    std::ofstream out(args.jsonl_path);
    write_jsonl(out, reports, &families);
    std::printf("wrote %s (byte-identical at any --threads for a given --seed)\n\n",
                args.jsonl_path.c_str());
  }

  const bool counters_ok = counters_cross_check(reports);
  return counters_ok && fleet_report.errors == 0 ? 0 : 1;
}

/// Fig. 4 vs Fig. 5 as a detector property: train on the first half of a
/// captured drive, score the held-out half against targeted fuzz frames.
double entropy_capture_vs_fuzz_auc() {
  using namespace acf;
  sim::Scheduler scheduler;
  vehicle::Vehicle car(scheduler);
  trace::CaptureTap tap(car.powertrain_bus(), "tap");
  scheduler.run_for(std::chrono::seconds(30));
  const auto& frames = tap.frames();

  ids::EntropyDetector detector;
  const std::size_t half = frames.size() / 2;
  std::vector<std::uint32_t> seen_ids;
  for (std::size_t i = 0; i < half; ++i) {
    detector.train(frames[i].frame, frames[i].time);
    if (std::find(seen_ids.begin(), seen_ids.end(), frames[i].frame.id()) == seen_ids.end()) {
      seen_ids.push_back(frames[i].frame.id());
    }
  }
  detector.finalize_training();

  ids::DetectorEval eval;
  for (std::size_t i = half; i < frames.size(); ++i) {
    ++eval.legit_bins[ids::DetectorEval::bin_of(
        detector.score(frames[i].frame, frames[i].time))];
  }
  fuzzer::RandomGenerator generator(fuzzer::FuzzConfig::targeted(seen_ids));
  for (int i = 0; i < 4000; ++i) {
    const sim::SimTime when = std::chrono::seconds(60) + i * std::chrono::milliseconds(1);
    ++eval.attack_bins[ids::DetectorEval::bin_of(detector.score(*generator.next(), when))];
  }
  return eval.auc();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace acf;
  const IdsRocArgs args = parse_args(argc, argv);
  if (args.attacks) return run_attacks(args);
  bench::header("IDS evaluation",
                "Detector precision/recall/ROC on the Table V unlock world (" +
                    std::to_string(args.fleet.runs) + " runs per arm, 1 ms tx period)");

  std::vector<ids::IdsArm> arms(2);
  arms[1].predicate = vehicle::UnlockPredicate::id_byte_and_length();
  fleet::TrialPlan plan({"Single id and byte", "Single id, byte plus data length"},
                        static_cast<std::size_t>(args.fleet.runs), args.fleet.seed);
  bench::FleetMetrics metrics;
  const bool observing = args.fleet.metrics_out != nullptr;
  fleet::ExecutorConfig executor_config;
  executor_config.threads = args.fleet.threads;
  if (observing) {
    metrics.open(args.fleet.metrics_out, "local");
    executor_config.registry = &metrics.registry;
    executor_config.snapshot_writer = &*metrics.writer;
    executor_config.snapshot_interval = args.fleet.metrics_interval;
  }
  fleet::Executor executor(executor_config);
  fleet::ProgressReporter progress;
  if (observing) progress.attach_registry(&metrics.registry);
  ids::EvalSink sink = ids::make_eval_sink(plan);
  const auto outcomes = executor.run(
      plan,
      ids::ids_unlock_world_factory(arms, sink, observing ? &metrics.registry : nullptr),
      &progress);
  if (observing) {
    // Final snapshot: the ids.latency.* timers make the per-detector
    // detection-latency quantiles visible next to the fleet totals.
    const metrics::RegistrySnapshot snap = metrics.registry.snapshot();
    double sim_seconds = 0.0;
    for (const auto& timer : snap.timers)
      if (timer.name == "fleet.trial.sim_seconds") sim_seconds = timer.sum;
    metrics.writer->write(snap, sim_seconds);
    std::fprintf(stderr, "%s", metrics::render_table(snap).c_str());
  }
  const fleet::FleetReport fleet_report = fleet::aggregate(plan, outcomes);
  const std::vector<ids::ArmIdsReport> reports = ids::merge_evals(plan, *sink);

  std::printf("Unlock times (the attack these detectors watch):\n");
  bench::print_fleet_report(fleet_report);
  print_reports(reports);

  if (!args.jsonl_path.empty()) {
    std::ofstream out(args.jsonl_path);
    write_jsonl(out, reports);
    std::printf("wrote %s (byte-identical at any --threads for a given --seed)\n\n",
                args.jsonl_path.c_str());
  }

  const bool counters_ok = counters_cross_check(reports);

  const double auc = entropy_capture_vs_fuzz_auc();
  std::printf("Entropy detector, captured (Fig. 4) vs fuzz (Fig. 5) traffic: AUC %.3f  %s\n",
              auc, auc > 0.9 ? "[ok: > 0.9]" : "[FAIL: expected > 0.9]");
  return (auc > 0.9 && counters_ok) ? 0 : 1;
}
