// Ablation A4: CAN FD fuzzing (paper §VII future work: "apply the
// techniques to the Flexible Data-rate version of CAN").  Compares the
// fuzz space, per-frame wire time and achievable fuzz throughput of classic
// CAN vs CAN FD with bit-rate switching.
#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "can/wire_codec.hpp"
#include "trace/capture.hpp"

int main() {
  using namespace acf;
  bench::header("Ablation A4", "CAN FD fuzzing: space, frame times, throughput");

  // Frame-time comparison at 500 kb/s nominal / 2 Mb/s data rate.
  analysis::TextTable times({"Frame", "Payload", "Wire bits", "Bus time (us)"});
  const auto classic8 = can::CanFrame::data_std(0x123, {1, 2, 3, 4, 5, 6, 7, 8});
  std::vector<std::uint8_t> p16(16, 0xA5), p64(64, 0xA5);
  const auto fd16 = *can::CanFrame::fd_data(0x123, p16, true);
  const auto fd64 = *can::CanFrame::fd_data(0x123, p64, true);
  const auto fd64_no_brs = *can::CanFrame::fd_data(0x123, p64, false);
  for (const auto& [label, frame] :
       {std::pair<const char*, const can::CanFrame*>{"classic, 8 B", &classic8},
        {"FD BRS, 16 B", &fd16},
        {"FD BRS, 64 B", &fd64},
        {"FD no BRS, 64 B", &fd64_no_brs}}) {
    times.add_row({label, std::to_string(frame->length()) + " B",
                   std::to_string(can::wire_bit_count(*frame)),
                   analysis::format_number(
                       sim::to_seconds(can::frame_time(*frame)) * 1e6, 1)});
  }
  std::printf("%s\n", times.to_string().c_str());

  // Fuzz-space growth: a 64-byte payload explodes the space far beyond the
  // classic 8-byte case (256^64 vs 256^8).
  std::printf("payload value space: classic 8 B = 2^64; FD 64 B = 2^512 — exhaustive\n"
              "sweeps are hopeless, random/targeted strategies are mandatory.\n\n");

  // Throughput: fuzz an FD bus flat-out for 10 s at period ~= frame time.
  sim::Scheduler scheduler;
  can::BusConfig bus_config;
  can::VirtualBus bus(scheduler, bus_config);
  trace::CaptureTap tap(bus, "tap");
  transport::VirtualBusTransport port(bus, "fuzzer");
  fuzzer::FuzzConfig fd_config;
  fd_config.fd_mode = true;
  fd_config.dlc_min = 0;
  fd_config.dlc_max = 15;
  fd_config.seed = 0xA4;
  fuzzer::RandomGenerator generator(fd_config);
  fuzzer::CampaignConfig campaign_config;
  campaign_config.tx_period = std::chrono::microseconds(500);
  campaign_config.max_duration = std::chrono::seconds(10);
  fuzzer::FuzzCampaign campaign(scheduler, port, generator, nullptr, campaign_config);
  const auto& result = campaign.run();

  std::uint64_t fuzz_bytes = 0;
  std::uint64_t long_frames = 0;
  for (const auto& entry : tap.frames()) {
    fuzz_bytes += entry.frame.length();
    if (entry.frame.length() > 8) ++long_frames;
  }
  std::printf("10 s FD fuzz at 2 kHz: %llu frames sent, %llu delivered, %llu frames >8 B,\n"
              "%.1f kB of fuzz payload, bus load %.1f%%\n",
              static_cast<unsigned long long>(result.frames_sent),
              static_cast<unsigned long long>(tap.size()),
              static_cast<unsigned long long>(long_frames),
              static_cast<double>(fuzz_bytes) / 1000.0,
              bus.stats().load(scheduler.now()) * 100.0);
  std::printf("Shape: FD moves ~4-6x more fuzz payload per bus-second than classic CAN,\n"
              "while arbitration still runs at the nominal rate.\n");
  return 0;
}
