// Fig. 4: mean value of each data byte position over 100,000 CAN packets
// captured from the target vehicle — a strongly non-uniform distribution
// (structured signals, zero padding, 0xFF reserved bytes).
#include "analysis/byte_stats.hpp"
#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "trace/capture.hpp"

int main() {
  using namespace acf;
  bench::header("Figure 4",
                "Mean values per data byte position, 100000 captured vehicle CAN messages");

  sim::Scheduler scheduler;
  vehicle::Vehicle car(scheduler);
  trace::CaptureTap tap(car.powertrain_bus(), "tap", 100'000);
  // ~230 frames/s on the powertrain bus -> ~100k frames in ~440 s of the
  // repeating drive cycle.
  scheduler.run_until_condition([&] { return tap.size() >= 100'000; },
                                std::chrono::seconds(900));

  analysis::BytePositionStats stats;
  stats.add_all(tap.frames());

  std::vector<std::string> labels;
  std::vector<double> means;
  for (std::size_t position = 0; position < analysis::BytePositionStats::kPositions;
       ++position) {
    labels.push_back("byte " + std::to_string(position));
    means.push_back(stats.mean(position));
  }
  std::printf("%s\n", analysis::bar_chart(labels, means, 255.0).c_str());
  std::printf("frames analysed: %llu\n", static_cast<unsigned long long>(stats.frames()));
  std::printf("overall mean byte value: %.1f (uniform would be 127.5)\n",
              stats.overall_mean());
  std::printf("flatness (max |per-position mean - overall|): %.1f -> %s\n", stats.flatness(),
              stats.flatness() > 20.0 ? "NON-UNIFORM, as the paper's Fig. 4"
                                      : "unexpectedly flat");
  const double chi = util::chi_square_uniform(stats.value_histogram(0));
  std::printf("chi-square(byte 0 values) = %.0f -> uniformity %s\n", chi,
              util::chi_square_accepts_uniform(chi, 255) ? "accepted" : "REJECTED");
  return 0;
}
