// Ablation A6: match-predicate hardening sweep.  The paper's §VI closes
// with "If the change had been to check for a two byte value the time
// increase would have been even greater" — this bench runs the whole ladder:
// command byte only, +DLC, +1 further payload byte, reporting measured mean
// time-to-unlock (with a Student-t 95% CI over the fleet's replicas)
// against the analytic geometric mean.  Runs on the fleet orchestrator:
// `--runs N --threads T` shards the rungs' replicas across a worker pool.
//
// The 2-byte rung's asymptotic mean at 1 ms over the full id space is ~14
// days of bus time, so it is measured on a reduced id window and rescaled —
// valid because the id draw is independent of the payload draw, making the
// time-to-hit exactly inversely proportional to id-space size and transmit
// rate (the A1/A5 ablations verify both proportionalities empirically).
#include "analysis/combinatorics.hpp"
#include "bench_util.hpp"
#include "ids/detectors.hpp"
#include "ids/ids_world.hpp"

int main(int argc, char** argv) {
  using namespace acf;
  const bench::FleetArgs args = bench::parse_fleet_args(argc, argv, 6);
  bench::header("Ablation A6", "Unlock-predicate hardening ladder (" +
                                   std::to_string(args.runs) + " runs per rung)");

  struct Rung {
    const char* label;
    vehicle::UnlockPredicate predicate;
    double hit_probability;  // per full-space fuzzed frame at 1 ms
    fuzzer::FuzzConfig fuzz;
    double rescale;  // measured time x rescale = full-space @1ms equivalent
  };
  auto fast_small = [] {
    // 8-id window around the command id at 4 kHz: x(2048/8) x4 = x1024.
    fuzzer::FuzzConfig fuzz = fuzzer::FuzzConfig::around_id(0x215, 3);
    fuzz.tx_period = std::chrono::microseconds(250);
    return fuzz;
  };
  const Rung rungs[] = {
      {"byte0 (paper row 1)", {1, false}, (8.0 / 9.0) / 2048 / 256,
       fuzzer::FuzzConfig::full_random(), 1.0},
      {"byte0 + DLC (paper row 2)", {1, true}, (1.0 / 9.0) / 2048 / 256,
       fuzzer::FuzzConfig::full_random(), 1.0},
      {"2 bytes + DLC (sec.VI projection)", {2, true}, (1.0 / 9.0) / 2048 / 256 / 256,
       fast_small(), 1024.0},
  };

  std::vector<std::string> labels;
  std::vector<fleet::UnlockArm> arms;
  for (const Rung& rung : rungs) {
    labels.push_back(rung.label);
    arms.push_back({rung.predicate, rung.fuzz, std::chrono::hours(24 * 40)});
  }
  fleet::TrialPlan plan(labels, static_cast<std::size_t>(args.runs), args.seed);
  fleet::ExecutorConfig executor_config;
  executor_config.threads = args.threads;
  fleet::Executor executor(executor_config);
  fleet::ProgressReporter progress;
  const auto outcomes = executor.run(plan, fleet::unlock_world_factory(std::move(arms)),
                                     &progress);
  const fleet::FleetReport report = fleet::aggregate(plan, outcomes);

  analysis::TextTable table({"Predicate", "P(hit)/frame", "Analytic mean @1ms",
                             "Measured mean", "95% CI", "Timeouts", "Runs"});
  for (std::size_t i = 0; i < std::size(rungs); ++i) {
    const Rung& rung = rungs[i];
    const fleet::ArmReport& arm = report.arms[i];
    const double analytic_s = 1.0 / rung.hit_probability / 1000.0;
    const util::Interval ci = arm.ci95();
    table.add_row({rung.label,
                   analysis::format_number(rung.hit_probability * 1e6, 3) + "e-6",
                   analysis::humanize_duration(analytic_s),
                   analysis::humanize_duration(arm.time_to_failure.mean() * rung.rescale) +
                       (rung.rescale != 1.0 ? " (rescaled)" : ""),
                   "[" + analysis::humanize_duration(ci.lo * rung.rescale) + ", " +
                       analysis::humanize_duration(ci.hi * rung.rescale) + "]",
                   std::to_string(arm.timeouts), std::to_string(arm.trials)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Beyond two checked bytes the analytic mean at 1 ms is:\n");
  std::printf("  3 bytes + DLC: %s;  4 bytes + DLC: %s\n",
              analysis::humanize_duration(9.0 * 2048 * 256.0 * 256 * 256 / 1000).c_str(),
              analysis::humanize_duration(9.0 * 2048 * 256.0 * 256 * 256 * 256 / 1000).c_str());
  std::printf("Shape: every additional checked byte multiplies attacker cost by 256 —\n"
              "the paper's \"simple modifications to a design improve security\".\n\n");

  // The DLC rung, re-expressed as detection instead of prevention: an
  // ids::DlcConsistencyDetector watching the *unhardened* bench flags
  // exactly the frames the hardened predicate rejects — both sides call
  // MessageDef::dlc_matches, so Table V's one-line hardening and the IDS
  // path share one implementation.
  {
    ids::IdsArm arm;  // weak predicate, detection-side hardening only
    arm.fuzz = fast_small();
    arm.train_window = std::chrono::seconds(10);
    arm.detectors = [] {
      std::vector<std::unique_ptr<ids::Detector>> detectors;
      detectors.push_back(
          std::make_unique<ids::DlcConsistencyDetector>(dbc::target_vehicle_database()));
      return detectors;
    };
    fleet::TrialPlan ids_plan({"DLC check as detector"},
                              static_cast<std::size_t>(args.runs), args.seed,
                              std::chrono::minutes(5));
    ids::EvalSink sink = ids::make_eval_sink(ids_plan);
    fleet::Executor ids_executor(executor_config);
    ids_executor.run(ids_plan, ids::ids_unlock_world_factory({arm}, sink));
    const auto reports = ids::merge_evals(ids_plan, *sink);
    const ids::ArmIdsReport::PerDetector& det = reports[0].detectors.at(0);
    const util::Interval rate = det.detection_rate_ci(reports[0].trials);
    std::printf("Detection-side DLC hardening (same dlc_matches check, weak bench):\n");
    std::printf("  wrong-DLC 0x215 frames flagged: precision %.3f, false positives %llu,\n"
                "  detected in %zu/%zu trials (Wilson 95%% CI [%.2f, %.2f]), "
                "mean latency %s s\n",
                det.merged.precision(), static_cast<unsigned long long>(det.merged.fp),
                det.trials_detected, reports[0].trials, rate.lo, rate.hi,
                det.latency.count() > 0 ? analysis::format_number(det.latency.mean(), 3).c_str()
                                        : "-");
  }
  return 0;
}
