// Ablation A5: transmit-rate sweep (Table III's "Rate" row).  For periods
// from 10 ms down to the paper's 1 ms minimum and beyond, measures bus load,
// achieved injection rate, disruption of the vehicle, and mean
// time-to-unlock — the throughput/effect trade-off behind the "1 ms minimum"
// design choice.
#include "analysis/report.hpp"
#include "util/stats.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace acf;
  const int runs = argc > 1 ? std::atoi(argv[1]) : 4;
  bench::header("Ablation A5", "Fuzzer transmit-rate sweep");

  const sim::Duration periods[] = {
      std::chrono::milliseconds(10), std::chrono::milliseconds(5),
      std::chrono::milliseconds(2), std::chrono::milliseconds(1),
      std::chrono::microseconds(500), std::chrono::microseconds(250)};

  analysis::TextTable table({"Period", "Injected frames/s", "Bus load %",
                             "Cluster needle travel (10 s)", "Mean time-to-unlock (s)"});
  for (const auto period : periods) {
    // Disruption measurement on the full vehicle.
    sim::Scheduler scheduler;
    vehicle::VehicleConfig vehicle_config;
    vehicle_config.gateway_filtering = false;
    vehicle::Vehicle car(scheduler, vehicle_config);
    scheduler.run_for(std::chrono::seconds(2));
    const double travel_before = car.cluster().needle_travel();
    transport::VirtualBusTransport obd(car.body_bus(), "obd");
    std::vector<std::uint32_t> ids = dbc::target_vehicle_database().ids();
    std::erase(ids, dbc::kMsgClusterDisplay);  // keep the cluster alive
    fuzzer::RandomGenerator generator(fuzzer::FuzzConfig::targeted(std::move(ids), 0xA5));
    fuzzer::CampaignConfig config;
    config.tx_period = period;
    config.max_duration = std::chrono::seconds(10);
    config.stop_on_failure = false;
    fuzzer::FuzzCampaign campaign(scheduler, obd, generator, nullptr, config);
    const auto& result = campaign.run();
    const double rate =
        static_cast<double>(result.frames_sent) / sim::to_seconds(result.elapsed);
    const double load = car.body_bus().stats().load(scheduler.now());
    const double travel = car.cluster().needle_travel() - travel_before;

    // Time-to-unlock at this rate (mean of a few runs, scaled arm).
    util::RunningStats unlock_stats;
    for (int run = 0; run < runs; ++run) {
      fuzzer::FuzzConfig fuzz = fuzzer::FuzzConfig::full_random();
      fuzz.tx_period = period;
      // Seed varies with the period too: otherwise every row replays the
      // identical frame stream and the column is exactly proportional.
      unlock_stats.add(bench::time_to_unlock(
          vehicle::UnlockPredicate::single_id_and_byte(),
          0xA500 + static_cast<std::uint64_t>(run) +
              static_cast<std::uint64_t>(period.count()),
          std::chrono::hours(48), fuzz));
    }

    char period_label[32];
    std::snprintf(period_label, sizeof period_label, "%.2f ms", sim::to_millis(period));
    table.add_row({period_label, analysis::format_number(rate),
                   analysis::format_number(load * 100.0, 1),
                   analysis::format_number(travel),
                   analysis::format_number(unlock_stats.mean())});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Shape: time-to-unlock scales ~linearly with the period until the bus\n"
              "saturates (~250 us/frame at 500 kb/s); disruption grows with rate.\n");
  return 0;
}
