// Ablation A5: transmit-rate sweep (Table III's "Rate" row).  For periods
// from 10 ms down to the paper's 1 ms minimum and beyond, measures bus load,
// achieved injection rate, disruption of the vehicle, and mean
// time-to-unlock — the throughput/effect trade-off behind the "1 ms minimum"
// design choice.  The unlock trials run as one fleet (arm = period), so
// `--runs N --threads T` scales the per-rate sample without re-running the
// disruption pass.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace acf;
  const bench::FleetArgs args = bench::parse_fleet_args(argc, argv, 4);
  bench::header("Ablation A5", "Fuzzer transmit-rate sweep");

  const sim::Duration periods[] = {
      std::chrono::milliseconds(10), std::chrono::milliseconds(5),
      std::chrono::milliseconds(2), std::chrono::milliseconds(1),
      std::chrono::microseconds(500), std::chrono::microseconds(250)};

  // Disruption measurement on the full vehicle, one sequential pass per
  // period (a single campaign each; the fleet handles the unlock matrix).
  struct Disruption {
    double rate, load, travel;
  };
  std::vector<Disruption> disruption;
  for (const auto period : periods) {
    sim::Scheduler scheduler;
    vehicle::VehicleConfig vehicle_config;
    vehicle_config.gateway_filtering = false;
    vehicle::Vehicle car(scheduler, vehicle_config);
    scheduler.run_for(std::chrono::seconds(2));
    const double travel_before = car.cluster().needle_travel();
    transport::VirtualBusTransport obd(car.body_bus(), "obd");
    std::vector<std::uint32_t> ids = dbc::target_vehicle_database().ids();
    std::erase(ids, dbc::kMsgClusterDisplay);  // keep the cluster alive
    fuzzer::RandomGenerator generator(fuzzer::FuzzConfig::targeted(std::move(ids), 0xA5));
    fuzzer::CampaignConfig config;
    config.tx_period = period;
    config.max_duration = std::chrono::seconds(10);
    config.stop_on_failure = false;
    fuzzer::FuzzCampaign campaign(scheduler, obd, generator, nullptr, config);
    const auto& result = campaign.run();
    disruption.push_back(
        {static_cast<double>(result.frames_sent) / sim::to_seconds(result.elapsed),
         car.body_bus().stats().load(scheduler.now()),
         car.cluster().needle_travel() - travel_before});
  }

  // Time-to-unlock fleet: one arm per period, args.runs replicas each.
  // Seeds derive from (base seed, trial index), so every period/replica
  // pair fuzzes a distinct stream — no row replays another's frames.
  std::vector<std::string> labels;
  std::vector<fleet::UnlockArm> arms;
  for (const auto period : periods) {
    char label[32];
    std::snprintf(label, sizeof label, "%.2f ms", sim::to_millis(period));
    labels.emplace_back(label);
    fuzzer::FuzzConfig fuzz = fuzzer::FuzzConfig::full_random();
    fuzz.tx_period = period;
    arms.push_back({vehicle::UnlockPredicate::single_id_and_byte(), fuzz,
                    std::chrono::hours(48)});
  }
  fleet::TrialPlan plan(labels, static_cast<std::size_t>(args.runs), args.seed);
  fleet::ExecutorConfig executor_config;
  executor_config.threads = args.threads;
  fleet::Executor executor(executor_config);
  fleet::ProgressReporter progress;
  const auto outcomes = executor.run(plan, fleet::unlock_world_factory(std::move(arms)),
                                     &progress);
  const fleet::FleetReport report = fleet::aggregate(plan, outcomes);

  analysis::TextTable table({"Period", "Injected frames/s", "Bus load %",
                             "Cluster needle travel (10 s)", "Mean time-to-unlock (s)",
                             "95% CI (s)", "Timeouts"});
  for (std::size_t i = 0; i < std::size(periods); ++i) {
    const fleet::ArmReport& arm = report.arms[i];
    const util::Interval ci = arm.ci95();
    table.add_row({arm.label, analysis::format_number(disruption[i].rate),
                   analysis::format_number(disruption[i].load * 100.0, 1),
                   analysis::format_number(disruption[i].travel),
                   analysis::format_number(arm.time_to_failure.mean()),
                   "[" + analysis::format_number(ci.lo) + ", " +
                       analysis::format_number(ci.hi) + "]",
                   std::to_string(arm.timeouts)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Shape: time-to-unlock scales ~linearly with the period until the bus\n"
              "saturates (~250 us/frame at 500 kb/s); disruption grows with rate.\n");
  return 0;
}
