// Ablation A3: data-link-layer (bit-level) fuzzing — paper §VII future
// work: "investigate manipulation of data packets at the bit level to fuzz
// CAN protocol control bits".  Mutates the raw stuffed wire image of a valid
// frame one bit at a time and classifies what a conforming receiver does
// with each mutant: still-valid frame, altered-but-valid frame, CRC error,
// stuffing violation, or form error.
#include <map>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "can/wire_codec.hpp"

int main() {
  using namespace acf;
  bench::header("Ablation A3", "Bit-level fuzzing of the CAN data-link layer");

  const auto base = can::CanFrame::data_std(0x215, {0x20, 0x5F, 0x01, 0x00, 0x07, 0x20, 0x00});
  const can::BitVec wire = can::encode_wire(base);
  std::printf("base frame %s -> %zu wire bits (incl. stuffing + tail)\n\n",
              base.to_string().c_str(), wire.size());

  std::map<std::string, int> outcomes;
  std::vector<std::string> accepted_variants;
  for (std::size_t bit = 0; bit < wire.size(); ++bit) {
    can::BitVec mutant = wire;
    mutant[bit] ^= 1;
    const auto decoded = can::decode_wire(mutant);
    if (!decoded.has_value()) {
      // Distinguish stuffing violations from CRC/form errors.
      const auto unstuffed = can::unstuff(
          std::span<const std::uint8_t>(mutant).subspan(0, mutant.size() - 10));
      if (!unstuffed.has_value()) {
        ++outcomes["stuffing violation (error frame)"];
      } else {
        ++outcomes["CRC or form error (error frame)"];
      }
      continue;
    }
    if (*decoded == base) {
      ++outcomes["accepted, unchanged (ACK-slot bit)"];
    } else {
      ++outcomes["ACCEPTED AS A DIFFERENT FRAME"];
      if (accepted_variants.size() < 5) accepted_variants.push_back(decoded->to_string());
    }
  }

  analysis::TextTable table({"Receiver outcome", "Bit positions"});
  for (const auto& [outcome, count] : outcomes) {
    table.add_row({outcome, std::to_string(count)});
  }
  std::printf("%s\n", table.to_string().c_str());
  if (!accepted_variants.empty()) {
    std::printf("examples decoded as different valid frames:\n");
    for (const auto& variant : accepted_variants) std::printf("  %s\n", variant.c_str());
  }
  std::printf("\nShape: the link layer rejects almost every single-bit corruption (CRC-15\n"
              "plus stuffing), so bit-level attacks degrade into error-frame disruption\n"
              "rather than silent data corruption — but they still consume bus time and\n"
              "drive transmitter error counters toward bus-off.\n");

  // Demonstrate the disruption path on a live bus: high corruption rate.
  sim::Scheduler scheduler;
  can::BusConfig bus_config;
  bus_config.corruption_probability = 0.3;
  can::VirtualBus bus(scheduler, bus_config);
  vehicle::InstrumentCluster cluster(scheduler, bus);
  transport::VirtualBusTransport tx(bus, "victim");
  for (int i = 0; i < 2000; ++i) tx.send(base);
  scheduler.run_for(std::chrono::seconds(10));
  std::printf("\nlive bus with 30%% bit-error injection: %llu error frames, victim TEC=%u (%s)\n",
              static_cast<unsigned long long>(bus.stats().error_frames),
              bus.error_state(tx.node_id()).tec(),
              can::to_string(bus.error_state(tx.node_id()).mode()));
  return 0;
}
