// Fig. 8: an inappropriate value displayed by the vehicle simulator — a
// fuzzed ENGINE_DATA frame decodes to a negative RPM and the cluster renders
// it unfiltered ("the vehicle simulation handles physically invalid values
// in the same way as physically plausible ones").
#include "bench_util.hpp"
#include "util/hex.hpp"

int main() {
  using namespace acf;
  bench::header("Figure 8", "Inappropriate value on the vehicle display via fuzzing");

  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  vehicle::InstrumentCluster cluster(scheduler, bus);
  transport::VirtualBusTransport fuzzer_port(bus, "fuzzer");
  const dbc::Database db = dbc::target_vehicle_database();

  // Normal value first.
  fuzzer_port.send(*db.by_id(dbc::kMsgEngineData)->encode({{"EngineRPM", 820.0}}));
  scheduler.run_for(std::chrono::milliseconds(5));
  std::printf("normal frame     -> RPM gauge reads %7.0f rpm, MIL=%d\n",
              cluster.rpm_gauge(), cluster.mil_on() ? 1 : 0);

  // A fuzzed frame whose raw 16-bit field is two's-complement negative.
  const auto fuzzed = can::CanFrame::data(dbc::kMsgEngineData, {0x18, 0xF0, 0, 0, 0, 0, 0, 0});
  fuzzer_port.send(*fuzzed);
  scheduler.run_for(std::chrono::milliseconds(5));
  std::printf("fuzzed frame %s (raw 0x%04X)\n",
              fuzzed->to_string().c_str(), 0xF018);
  std::printf("                 -> RPM gauge reads %7.0f rpm  <-- NEGATIVE RPM DISPLAYED\n",
              cluster.rpm_gauge());
  std::printf("                    MIL=%d, warning sounds=%llu, implausible values=%llu\n",
              cluster.mil_on() ? 1 : 0,
              static_cast<unsigned long long>(cluster.warning_sounds()),
              static_cast<unsigned long long>(cluster.implausible_values_seen()));
  std::printf("\nDeclared signal range is [0, 8000] rpm; the display applies no\n"
              "plausibility gate (the Fig. 8 observable), while the plausibility\n"
              "oracle flags the violation for the tester.\n");
  return 0;
}
