// Fig. 1: testing methods used in the automotive industry (derived from the
// Altinger et al. survey) — fuzz testing sits near the bottom, which is the
// paper's motivating observation.
#include "analysis/survey.hpp"
#include "bench_util.hpp"

int main() {
  using namespace acf;
  bench::header("Figure 1", "Testing methods in the automotive industry (% of teams)");
  std::printf("%s\n", analysis::render_survey_chart().c_str());
  const auto survey = analysis::testing_method_survey();
  std::printf("Shape check: '%s' dominates (%.0f%%); 'Fuzz testing' is marginal (%.0f%%).\n",
              survey.front().method.c_str(), survey.front().usage_pct,
              survey[survey.size() - 2].usage_pct);
  return 0;
}
