// Ablation A2: the gateway ECU as a protection measure (paper §VII: "use
// the fuzz test to determine the effectiveness of protection measures, for
// example vehicle firewalls and gateways").  The same 60 s OBD-side fuzz
// campaign runs against the vehicle with an unfiltered legacy gateway and
// with whitelist forwarding.
#include "analysis/report.hpp"
#include "bench_util.hpp"

namespace {

struct Outcome {
  std::uint64_t engine_implausible = 0;
  double idle_roughness = 0.0;
  bool engine_mil = false;
  std::uint64_t blocked = 0;
  std::uint64_t forwarded = 0;
};

Outcome fuzz_vehicle(bool filtering) {
  using namespace acf;
  sim::Scheduler scheduler;
  vehicle::VehicleConfig vehicle_config;
  vehicle_config.gateway_filtering = filtering;
  vehicle::Vehicle car(scheduler, vehicle_config);
  scheduler.run_for(std::chrono::seconds(3));

  transport::VirtualBusTransport obd(car.body_bus(), "obd");
  fuzzer::RandomGenerator generator(fuzzer::FuzzConfig::full_random(0xA2));
  fuzzer::CampaignConfig config;
  config.max_duration = std::chrono::seconds(60);
  config.stop_on_failure = false;
  fuzzer::FuzzCampaign campaign(scheduler, obd, generator, nullptr, config);
  campaign.run();

  Outcome out;
  out.engine_implausible = car.engine().implausible_inputs_seen();
  out.idle_roughness = car.engine().idle_roughness();
  out.engine_mil = car.engine().mil_on();
  out.blocked = car.gateway().stats().blocked_b_to_p;
  out.forwarded = car.gateway().stats().forwarded_b_to_p;
  return out;
}

}  // namespace

int main() {
  using namespace acf;
  bench::header("Ablation A2",
                "Gateway whitelist as a protection measure (60 s OBD-side blind fuzz)");

  const Outcome open_gw = fuzz_vehicle(false);
  const Outcome filtered = fuzz_vehicle(true);

  analysis::TextTable table({"Metric", "Unfiltered gateway", "Whitelist gateway"});
  table.add_row({"body->powertrain frames forwarded", std::to_string(open_gw.forwarded),
                 std::to_string(filtered.forwarded)});
  table.add_row({"body->powertrain frames blocked", std::to_string(open_gw.blocked),
                 std::to_string(filtered.blocked)});
  table.add_row({"engine implausible inputs", std::to_string(open_gw.engine_implausible),
                 std::to_string(filtered.engine_implausible)});
  table.add_row({"engine idle roughness (rpm/tick)",
                 analysis::format_number(open_gw.idle_roughness, 1),
                 analysis::format_number(filtered.idle_roughness, 1)});
  table.add_row({"engine MIL lit", open_gw.engine_mil ? "YES" : "no",
                 filtered.engine_mil ? "YES" : "no"});
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Shape: with whitelist forwarding the powertrain segment is untouched by\n"
              "OBD-side fuzz (0 implausible inputs); unfiltered, the attack crosses over.\n");
  return 0;
}
