// Related-work reproduction: protocol-aware UDS fuzzing in the style of
// Bayer & Ptok (paper ref [13]) against the instrument cluster's diagnostic
// endpoint — service discovery, DID sweep, random request fuzz.
#include "analysis/report.hpp"
#include "fuzzer/uds_fuzzer.hpp"
#include "util/hex.hpp"
#include "bench_util.hpp"

int main() {
  using namespace acf;
  bench::header("UDS discovery", "Protocol-aware diagnostic fuzz of the instrument cluster "
                                 "(after Bayer & Ptok, paper ref [13])");

  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  vehicle::InstrumentCluster cluster(scheduler, bus);
  transport::VirtualBusTransport port(bus, "uds-fuzzer");
  fuzzer::UdsFuzzer uds_fuzzer(scheduler, port, dbc::kUdsClusterRequest,
                               dbc::kUdsClusterResponse);
  const fuzzer::UdsFuzzReport report = uds_fuzzer.run();

  analysis::TextTable services({"SID", "Service", "Responses", "NRCs seen"});
  auto sid_name = [](std::uint8_t sid) -> const char* {
    switch (sid) {
      case 0x10: return "DiagnosticSessionControl";
      case 0x11: return "ECUReset";
      case 0x19: return "ReadDTCInformation";
      case 0x22: return "ReadDataByIdentifier";
      case 0x27: return "SecurityAccess";
      case 0x2E: return "WriteDataByIdentifier";
      case 0x3E: return "TesterPresent";
      default: return "?";
    }
  };
  for (const auto& info : report.services) {
    if (!info.exists()) continue;
    std::string nrcs;
    for (const auto& [nrc, count] : info.nrcs) {
      if (!nrcs.empty()) nrcs += ", ";
      nrcs += "0x" + util::hex_u32(nrc, 2) + " x" + std::to_string(count);
    }
    services.add_row({"0x" + util::hex_u32(info.sid, 2), sid_name(info.sid),
                      std::to_string(info.positive) + " pos / " +
                          std::to_string(info.negative) + " neg",
                      nrcs});
  }
  std::printf("discovered services:\n%s\n", services.to_string().c_str());

  std::printf("readable DIDs found in [F180, F1A0]: ");
  for (std::uint16_t did : report.readable_dids) {
    std::printf("0x%s ", util::hex_u32(did, 4).c_str());
  }
  std::printf("\nrandom-request fuzz anomalies: %zu\n", report.anomalies.size());
  for (const auto& anomaly : report.anomalies) std::printf("  ! %s\n", anomaly.c_str());
  std::printf("requests sent in total: %llu\n",
              static_cast<unsigned long long>(report.requests_sent));
  std::printf("\nShape: the fuzzer maps the ECU's diagnostic attack surface blind — the\n"
              "same reverse-engineering value the paper attributes to CAN fuzzing, one\n"
              "protocol layer up.\n");
  return 0;
}
