// Ablation A8: bus-flood DoS vs fuzzing as disruption ("Disruption of a
// vehicle's communication network is not difficult").  Sweeps the flood
// period and measures how much legitimate traffic survives arbitration,
// when the heartbeat oracle notices, and what happens to the cluster.
#include "analysis/report.hpp"
#include "attacks/attacks.hpp"
#include "oracle/bus_oracles.hpp"
#include "bench_util.hpp"

int main() {
  using namespace acf;
  bench::header("Ablation A8", "Bus-flood DoS: arbitration starvation sweep (10 s per row)");

  analysis::TextTable table({"Flood period", "Flood load %", "ENGINE_DATA beats (10 s)",
                             "Heartbeat oracle", "Cluster gauge age"});
  for (const auto period :
       {sim::Duration{std::chrono::milliseconds(10)}, sim::Duration{std::chrono::milliseconds(1)},
        sim::Duration{std::chrono::microseconds(400)},
        sim::Duration{std::chrono::microseconds(230)}}) {
    sim::Scheduler scheduler;
    vehicle::VehicleConfig vehicle_config;
    vehicle_config.gateway_filtering = false;
    vehicle::Vehicle car(scheduler, vehicle_config);
    oracle::HeartbeatOracle heartbeat(car.powertrain_bus(), dbc::kMsgEngineData,
                                      std::chrono::milliseconds(10));
    scheduler.run_for(std::chrono::seconds(2));
    const std::uint64_t beats_before = heartbeat.beats_seen();
    const sim::Duration busy_before = car.powertrain_bus().stats().busy_time;

    transport::VirtualBusTransport attacker(car.powertrain_bus(), "attacker");
    attacks::DosFloodConfig flood_config;
    flood_config.period = period;
    attacks::DosFlood flood(scheduler, attacker, flood_config);
    flood.start();
    bool oracle_fired = false;
    std::string verdict = "quiet";
    for (int i = 0; i < 1000 && !oracle_fired; ++i) {
      scheduler.run_for(std::chrono::milliseconds(10));
      if (const auto obs = heartbeat.poll(scheduler.now())) {
        oracle_fired = true;
        verdict = std::string(oracle::to_string(obs->verdict)) + " at " +
                  analysis::format_number(sim::to_seconds(obs->time) - 2.0, 2) + " s";
      }
    }
    scheduler.run_until(sim::SimTime{std::chrono::seconds(12)});
    flood.stop();

    const double load =
        sim::to_seconds(car.powertrain_bus().stats().busy_time - busy_before) / 10.0;
    char period_label[32];
    std::snprintf(period_label, sizeof period_label, "%.2f ms", sim::to_millis(period));
    // How stale is the cluster's engine feed? (gateway off: direct bus)
    const double gauge_vs_engine = std::abs(car.cluster().rpm_gauge() - car.engine().rpm());
    table.add_row({period_label, analysis::format_number(load * 100.0, 1),
                   std::to_string(heartbeat.beats_seen() - beats_before), verdict,
                   analysis::format_number(gauge_vs_engine) + " rpm behind"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Shape: once the flood period drops under the ~230 us frame time the bus\n"
              "saturates, ENGINE_DATA heartbeats stop entirely and the heartbeat oracle\n"
              "fires within its 5-beat window — a much blunter instrument than fuzzing,\n"
              "but devastating to availability (the A of the paper's CIA triad).\n");
  return 0;
}
