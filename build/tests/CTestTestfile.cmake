# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/can_frame_test[1]_include.cmake")
include("/root/repo/build/tests/can_codec_test[1]_include.cmake")
include("/root/repo/build/tests/can_bus_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/dbc_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/isotp_test[1]_include.cmake")
include("/root/repo/build/tests/uds_test[1]_include.cmake")
include("/root/repo/build/tests/ecu_vehicle_test[1]_include.cmake")
include("/root/repo/build/tests/oracle_test[1]_include.cmake")
include("/root/repo/build/tests/fuzzer_test[1]_include.cmake")
include("/root/repo/build/tests/uds_fuzzer_test[1]_include.cmake")
include("/root/repo/build/tests/smart_generator_test[1]_include.cmake")
include("/root/repo/build/tests/lin_test[1]_include.cmake")
include("/root/repo/build/tests/bus_property_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/obd_test[1]_include.cmake")
include("/root/repo/build/tests/xcp_test[1]_include.cmake")
include("/root/repo/build/tests/security_test[1]_include.cmake")
include("/root/repo/build/tests/attacks_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
