file(REMOVE_RECURSE
  "CMakeFiles/xcp_test.dir/xcp_test.cpp.o"
  "CMakeFiles/xcp_test.dir/xcp_test.cpp.o.d"
  "xcp_test"
  "xcp_test.pdb"
  "xcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
