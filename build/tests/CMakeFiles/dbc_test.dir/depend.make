# Empty dependencies file for dbc_test.
# This may be replaced when dependencies are built.
