file(REMOVE_RECURSE
  "CMakeFiles/ecu_vehicle_test.dir/ecu_vehicle_test.cpp.o"
  "CMakeFiles/ecu_vehicle_test.dir/ecu_vehicle_test.cpp.o.d"
  "ecu_vehicle_test"
  "ecu_vehicle_test.pdb"
  "ecu_vehicle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecu_vehicle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
