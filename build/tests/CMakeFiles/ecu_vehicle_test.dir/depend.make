# Empty dependencies file for ecu_vehicle_test.
# This may be replaced when dependencies are built.
