file(REMOVE_RECURSE
  "CMakeFiles/smart_generator_test.dir/smart_generator_test.cpp.o"
  "CMakeFiles/smart_generator_test.dir/smart_generator_test.cpp.o.d"
  "smart_generator_test"
  "smart_generator_test.pdb"
  "smart_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
