file(REMOVE_RECURSE
  "CMakeFiles/uds_test.dir/uds_test.cpp.o"
  "CMakeFiles/uds_test.dir/uds_test.cpp.o.d"
  "uds_test"
  "uds_test.pdb"
  "uds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
