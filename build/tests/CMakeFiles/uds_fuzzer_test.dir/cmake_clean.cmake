file(REMOVE_RECURSE
  "CMakeFiles/uds_fuzzer_test.dir/uds_fuzzer_test.cpp.o"
  "CMakeFiles/uds_fuzzer_test.dir/uds_fuzzer_test.cpp.o.d"
  "uds_fuzzer_test"
  "uds_fuzzer_test.pdb"
  "uds_fuzzer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uds_fuzzer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
