# Empty compiler generated dependencies file for can_codec_test.
# This may be replaced when dependencies are built.
