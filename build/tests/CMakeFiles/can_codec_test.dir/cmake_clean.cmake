file(REMOVE_RECURSE
  "CMakeFiles/can_codec_test.dir/can_codec_test.cpp.o"
  "CMakeFiles/can_codec_test.dir/can_codec_test.cpp.o.d"
  "can_codec_test"
  "can_codec_test.pdb"
  "can_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/can_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
