# Empty dependencies file for obd_test.
# This may be replaced when dependencies are built.
