
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/isotp_test.cpp" "tests/CMakeFiles/isotp_test.dir/isotp_test.cpp.o" "gcc" "tests/CMakeFiles/isotp_test.dir/isotp_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/acf_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_fuzzer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_oracle.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_vehicle.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_obd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_xcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_security.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_lin.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_ecu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_dbc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_uds.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_isotp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_can.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
