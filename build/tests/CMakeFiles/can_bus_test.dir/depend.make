# Empty dependencies file for can_bus_test.
# This may be replaced when dependencies are built.
