file(REMOVE_RECURSE
  "CMakeFiles/can_bus_test.dir/can_bus_test.cpp.o"
  "CMakeFiles/can_bus_test.dir/can_bus_test.cpp.o.d"
  "can_bus_test"
  "can_bus_test.pdb"
  "can_bus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/can_bus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
