# Empty dependencies file for can_frame_test.
# This may be replaced when dependencies are built.
