# Empty compiler generated dependencies file for bus_property_test.
# This may be replaced when dependencies are built.
