file(REMOVE_RECURSE
  "CMakeFiles/bus_property_test.dir/bus_property_test.cpp.o"
  "CMakeFiles/bus_property_test.dir/bus_property_test.cpp.o.d"
  "bus_property_test"
  "bus_property_test.pdb"
  "bus_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bus_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
