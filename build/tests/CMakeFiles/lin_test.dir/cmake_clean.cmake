file(REMOVE_RECURSE
  "CMakeFiles/lin_test.dir/lin_test.cpp.o"
  "CMakeFiles/lin_test.dir/lin_test.cpp.o.d"
  "lin_test"
  "lin_test.pdb"
  "lin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
