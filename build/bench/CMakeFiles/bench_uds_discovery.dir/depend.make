# Empty dependencies file for bench_uds_discovery.
# This may be replaced when dependencies are built.
