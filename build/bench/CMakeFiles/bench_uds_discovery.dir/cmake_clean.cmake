file(REMOVE_RECURSE
  "CMakeFiles/bench_uds_discovery.dir/bench_uds_discovery.cpp.o"
  "CMakeFiles/bench_uds_discovery.dir/bench_uds_discovery.cpp.o.d"
  "bench_uds_discovery"
  "bench_uds_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_uds_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
