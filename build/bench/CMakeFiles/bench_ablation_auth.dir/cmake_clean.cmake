file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_auth.dir/bench_ablation_auth.cpp.o"
  "CMakeFiles/bench_ablation_auth.dir/bench_ablation_auth.cpp.o.d"
  "bench_ablation_auth"
  "bench_ablation_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
