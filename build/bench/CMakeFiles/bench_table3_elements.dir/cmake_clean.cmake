file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_elements.dir/bench_table3_elements.cpp.o"
  "CMakeFiles/bench_table3_elements.dir/bench_table3_elements.cpp.o.d"
  "bench_table3_elements"
  "bench_table3_elements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_elements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
