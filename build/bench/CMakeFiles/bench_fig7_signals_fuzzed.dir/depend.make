# Empty dependencies file for bench_fig7_signals_fuzzed.
# This may be replaced when dependencies are built.
