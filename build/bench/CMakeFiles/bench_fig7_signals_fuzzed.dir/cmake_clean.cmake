file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_signals_fuzzed.dir/bench_fig7_signals_fuzzed.cpp.o"
  "CMakeFiles/bench_fig7_signals_fuzzed.dir/bench_fig7_signals_fuzzed.cpp.o.d"
  "bench_fig7_signals_fuzzed"
  "bench_fig7_signals_fuzzed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_signals_fuzzed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
