file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_canfd.dir/bench_ablation_canfd.cpp.o"
  "CMakeFiles/bench_ablation_canfd.dir/bench_ablation_canfd.cpp.o.d"
  "bench_ablation_canfd"
  "bench_ablation_canfd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_canfd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
