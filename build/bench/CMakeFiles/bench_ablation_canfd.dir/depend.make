# Empty dependencies file for bench_ablation_canfd.
# This may be replaced when dependencies are built.
