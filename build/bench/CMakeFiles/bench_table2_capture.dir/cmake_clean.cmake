file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_capture.dir/bench_table2_capture.cpp.o"
  "CMakeFiles/bench_table2_capture.dir/bench_table2_capture.cpp.o.d"
  "bench_table2_capture"
  "bench_table2_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
