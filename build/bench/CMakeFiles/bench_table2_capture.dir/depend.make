# Empty dependencies file for bench_table2_capture.
# This may be replaced when dependencies are built.
