# Empty compiler generated dependencies file for bench_fig6_signals_normal.
# This may be replaced when dependencies are built.
