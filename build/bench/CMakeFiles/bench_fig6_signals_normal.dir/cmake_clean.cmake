file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_signals_normal.dir/bench_fig6_signals_normal.cpp.o"
  "CMakeFiles/bench_fig6_signals_normal.dir/bench_fig6_signals_normal.cpp.o.d"
  "bench_fig6_signals_normal"
  "bench_fig6_signals_normal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_signals_normal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
