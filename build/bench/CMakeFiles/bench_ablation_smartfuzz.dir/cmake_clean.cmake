file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_smartfuzz.dir/bench_ablation_smartfuzz.cpp.o"
  "CMakeFiles/bench_ablation_smartfuzz.dir/bench_ablation_smartfuzz.cpp.o.d"
  "bench_ablation_smartfuzz"
  "bench_ablation_smartfuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_smartfuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
