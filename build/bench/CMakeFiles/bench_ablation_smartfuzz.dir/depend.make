# Empty dependencies file for bench_ablation_smartfuzz.
# This may be replaced when dependencies are built.
