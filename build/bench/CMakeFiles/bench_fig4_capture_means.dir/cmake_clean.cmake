file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_capture_means.dir/bench_fig4_capture_means.cpp.o"
  "CMakeFiles/bench_fig4_capture_means.dir/bench_fig4_capture_means.cpp.o.d"
  "bench_fig4_capture_means"
  "bench_fig4_capture_means.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_capture_means.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
