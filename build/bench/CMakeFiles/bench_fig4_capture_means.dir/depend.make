# Empty dependencies file for bench_fig4_capture_means.
# This may be replaced when dependencies are built.
