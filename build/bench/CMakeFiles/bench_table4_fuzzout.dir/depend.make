# Empty dependencies file for bench_table4_fuzzout.
# This may be replaced when dependencies are built.
