file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_fuzzout.dir/bench_table4_fuzzout.cpp.o"
  "CMakeFiles/bench_table4_fuzzout.dir/bench_table4_fuzzout.cpp.o.d"
  "bench_table4_fuzzout"
  "bench_table4_fuzzout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_fuzzout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
