file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_gateway.dir/bench_ablation_gateway.cpp.o"
  "CMakeFiles/bench_ablation_gateway.dir/bench_ablation_gateway.cpp.o.d"
  "bench_ablation_gateway"
  "bench_ablation_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
