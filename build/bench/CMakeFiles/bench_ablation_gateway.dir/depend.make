# Empty dependencies file for bench_ablation_gateway.
# This may be replaced when dependencies are built.
