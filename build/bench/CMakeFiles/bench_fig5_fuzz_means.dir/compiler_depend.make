# Empty compiler generated dependencies file for bench_fig5_fuzz_means.
# This may be replaced when dependencies are built.
