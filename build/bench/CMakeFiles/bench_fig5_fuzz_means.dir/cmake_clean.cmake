file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_fuzz_means.dir/bench_fig5_fuzz_means.cpp.o"
  "CMakeFiles/bench_fig5_fuzz_means.dir/bench_fig5_fuzz_means.cpp.o.d"
  "bench_fig5_fuzz_means"
  "bench_fig5_fuzz_means.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_fuzz_means.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
