# Empty dependencies file for bench_ablation_dos.
# This may be replaced when dependencies are built.
