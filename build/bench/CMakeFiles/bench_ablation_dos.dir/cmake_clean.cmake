file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dos.dir/bench_ablation_dos.cpp.o"
  "CMakeFiles/bench_ablation_dos.dir/bench_ablation_dos.cpp.o.d"
  "bench_ablation_dos"
  "bench_ablation_dos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
