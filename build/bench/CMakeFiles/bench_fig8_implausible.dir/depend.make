# Empty dependencies file for bench_fig8_implausible.
# This may be replaced when dependencies are built.
