file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_implausible.dir/bench_fig8_implausible.cpp.o"
  "CMakeFiles/bench_fig8_implausible.dir/bench_fig8_implausible.cpp.o.d"
  "bench_fig8_implausible"
  "bench_fig8_implausible.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_implausible.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
