file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_targeted.dir/bench_ablation_targeted.cpp.o"
  "CMakeFiles/bench_ablation_targeted.dir/bench_ablation_targeted.cpp.o.d"
  "bench_ablation_targeted"
  "bench_ablation_targeted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_targeted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
