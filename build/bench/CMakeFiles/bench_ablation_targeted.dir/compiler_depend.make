# Empty compiler generated dependencies file for bench_ablation_targeted.
# This may be replaced when dependencies are built.
