file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bitlevel.dir/bench_ablation_bitlevel.cpp.o"
  "CMakeFiles/bench_ablation_bitlevel.dir/bench_ablation_bitlevel.cpp.o.d"
  "bench_ablation_bitlevel"
  "bench_ablation_bitlevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bitlevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
