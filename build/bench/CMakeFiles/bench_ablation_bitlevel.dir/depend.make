# Empty dependencies file for bench_ablation_bitlevel.
# This may be replaced when dependencies are built.
