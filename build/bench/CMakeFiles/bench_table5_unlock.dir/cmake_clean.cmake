file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_unlock.dir/bench_table5_unlock.cpp.o"
  "CMakeFiles/bench_table5_unlock.dir/bench_table5_unlock.cpp.o.d"
  "bench_table5_unlock"
  "bench_table5_unlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_unlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
