file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_cluster_crash.dir/bench_fig9_cluster_crash.cpp.o"
  "CMakeFiles/bench_fig9_cluster_crash.dir/bench_fig9_cluster_crash.cpp.o.d"
  "bench_fig9_cluster_crash"
  "bench_fig9_cluster_crash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_cluster_crash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
