# Empty compiler generated dependencies file for bench_fig9_cluster_crash.
# This may be replaced when dependencies are built.
