file(REMOVE_RECURSE
  "CMakeFiles/unlock_attack.dir/unlock_attack.cpp.o"
  "CMakeFiles/unlock_attack.dir/unlock_attack.cpp.o.d"
  "unlock_attack"
  "unlock_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unlock_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
