# Empty compiler generated dependencies file for unlock_attack.
# This may be replaced when dependencies are built.
