# Empty dependencies file for cluster_fuzz.
# This may be replaced when dependencies are built.
