file(REMOVE_RECURSE
  "CMakeFiles/cluster_fuzz.dir/cluster_fuzz.cpp.o"
  "CMakeFiles/cluster_fuzz.dir/cluster_fuzz.cpp.o.d"
  "cluster_fuzz"
  "cluster_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
