file(REMOVE_RECURSE
  "CMakeFiles/uds_scan.dir/uds_scan.cpp.o"
  "CMakeFiles/uds_scan.dir/uds_scan.cpp.o.d"
  "uds_scan"
  "uds_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uds_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
