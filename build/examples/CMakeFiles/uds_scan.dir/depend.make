# Empty dependencies file for uds_scan.
# This may be replaced when dependencies are built.
