
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fuzzer/campaign.cpp" "src/CMakeFiles/acf_fuzzer.dir/fuzzer/campaign.cpp.o" "gcc" "src/CMakeFiles/acf_fuzzer.dir/fuzzer/campaign.cpp.o.d"
  "/root/repo/src/fuzzer/config.cpp" "src/CMakeFiles/acf_fuzzer.dir/fuzzer/config.cpp.o" "gcc" "src/CMakeFiles/acf_fuzzer.dir/fuzzer/config.cpp.o.d"
  "/root/repo/src/fuzzer/coverage.cpp" "src/CMakeFiles/acf_fuzzer.dir/fuzzer/coverage.cpp.o" "gcc" "src/CMakeFiles/acf_fuzzer.dir/fuzzer/coverage.cpp.o.d"
  "/root/repo/src/fuzzer/finding.cpp" "src/CMakeFiles/acf_fuzzer.dir/fuzzer/finding.cpp.o" "gcc" "src/CMakeFiles/acf_fuzzer.dir/fuzzer/finding.cpp.o.d"
  "/root/repo/src/fuzzer/generator.cpp" "src/CMakeFiles/acf_fuzzer.dir/fuzzer/generator.cpp.o" "gcc" "src/CMakeFiles/acf_fuzzer.dir/fuzzer/generator.cpp.o.d"
  "/root/repo/src/fuzzer/mutator.cpp" "src/CMakeFiles/acf_fuzzer.dir/fuzzer/mutator.cpp.o" "gcc" "src/CMakeFiles/acf_fuzzer.dir/fuzzer/mutator.cpp.o.d"
  "/root/repo/src/fuzzer/smart_generator.cpp" "src/CMakeFiles/acf_fuzzer.dir/fuzzer/smart_generator.cpp.o" "gcc" "src/CMakeFiles/acf_fuzzer.dir/fuzzer/smart_generator.cpp.o.d"
  "/root/repo/src/fuzzer/uds_fuzzer.cpp" "src/CMakeFiles/acf_fuzzer.dir/fuzzer/uds_fuzzer.cpp.o" "gcc" "src/CMakeFiles/acf_fuzzer.dir/fuzzer/uds_fuzzer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/acf_can.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_oracle.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_uds.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_vehicle.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_ecu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_dbc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_obd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_isotp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_xcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_security.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_lin.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
