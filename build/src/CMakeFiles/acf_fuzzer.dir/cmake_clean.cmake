file(REMOVE_RECURSE
  "CMakeFiles/acf_fuzzer.dir/fuzzer/campaign.cpp.o"
  "CMakeFiles/acf_fuzzer.dir/fuzzer/campaign.cpp.o.d"
  "CMakeFiles/acf_fuzzer.dir/fuzzer/config.cpp.o"
  "CMakeFiles/acf_fuzzer.dir/fuzzer/config.cpp.o.d"
  "CMakeFiles/acf_fuzzer.dir/fuzzer/coverage.cpp.o"
  "CMakeFiles/acf_fuzzer.dir/fuzzer/coverage.cpp.o.d"
  "CMakeFiles/acf_fuzzer.dir/fuzzer/finding.cpp.o"
  "CMakeFiles/acf_fuzzer.dir/fuzzer/finding.cpp.o.d"
  "CMakeFiles/acf_fuzzer.dir/fuzzer/generator.cpp.o"
  "CMakeFiles/acf_fuzzer.dir/fuzzer/generator.cpp.o.d"
  "CMakeFiles/acf_fuzzer.dir/fuzzer/mutator.cpp.o"
  "CMakeFiles/acf_fuzzer.dir/fuzzer/mutator.cpp.o.d"
  "CMakeFiles/acf_fuzzer.dir/fuzzer/smart_generator.cpp.o"
  "CMakeFiles/acf_fuzzer.dir/fuzzer/smart_generator.cpp.o.d"
  "CMakeFiles/acf_fuzzer.dir/fuzzer/uds_fuzzer.cpp.o"
  "CMakeFiles/acf_fuzzer.dir/fuzzer/uds_fuzzer.cpp.o.d"
  "libacf_fuzzer.a"
  "libacf_fuzzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acf_fuzzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
