file(REMOVE_RECURSE
  "libacf_fuzzer.a"
)
