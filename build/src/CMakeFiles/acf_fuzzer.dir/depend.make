# Empty dependencies file for acf_fuzzer.
# This may be replaced when dependencies are built.
