file(REMOVE_RECURSE
  "libacf_util.a"
)
