# Empty compiler generated dependencies file for acf_util.
# This may be replaced when dependencies are built.
