file(REMOVE_RECURSE
  "CMakeFiles/acf_util.dir/util/hex.cpp.o"
  "CMakeFiles/acf_util.dir/util/hex.cpp.o.d"
  "CMakeFiles/acf_util.dir/util/log.cpp.o"
  "CMakeFiles/acf_util.dir/util/log.cpp.o.d"
  "CMakeFiles/acf_util.dir/util/rng.cpp.o"
  "CMakeFiles/acf_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/acf_util.dir/util/stats.cpp.o"
  "CMakeFiles/acf_util.dir/util/stats.cpp.o.d"
  "libacf_util.a"
  "libacf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
