file(REMOVE_RECURSE
  "libacf_obd.a"
)
