# Empty compiler generated dependencies file for acf_obd.
# This may be replaced when dependencies are built.
