file(REMOVE_RECURSE
  "CMakeFiles/acf_obd.dir/obd/obd.cpp.o"
  "CMakeFiles/acf_obd.dir/obd/obd.cpp.o.d"
  "libacf_obd.a"
  "libacf_obd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acf_obd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
