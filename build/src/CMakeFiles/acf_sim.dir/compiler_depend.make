# Empty compiler generated dependencies file for acf_sim.
# This may be replaced when dependencies are built.
