file(REMOVE_RECURSE
  "CMakeFiles/acf_sim.dir/sim/scheduler.cpp.o"
  "CMakeFiles/acf_sim.dir/sim/scheduler.cpp.o.d"
  "libacf_sim.a"
  "libacf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
