file(REMOVE_RECURSE
  "libacf_sim.a"
)
