file(REMOVE_RECURSE
  "libacf_security.a"
)
