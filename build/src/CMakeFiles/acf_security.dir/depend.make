# Empty dependencies file for acf_security.
# This may be replaced when dependencies are built.
