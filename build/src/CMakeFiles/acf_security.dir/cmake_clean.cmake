file(REMOVE_RECURSE
  "CMakeFiles/acf_security.dir/security/mac.cpp.o"
  "CMakeFiles/acf_security.dir/security/mac.cpp.o.d"
  "libacf_security.a"
  "libacf_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acf_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
