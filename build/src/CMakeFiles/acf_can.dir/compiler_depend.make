# Empty compiler generated dependencies file for acf_can.
# This may be replaced when dependencies are built.
