file(REMOVE_RECURSE
  "libacf_can.a"
)
