
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/can/bitstream.cpp" "src/CMakeFiles/acf_can.dir/can/bitstream.cpp.o" "gcc" "src/CMakeFiles/acf_can.dir/can/bitstream.cpp.o.d"
  "/root/repo/src/can/bus.cpp" "src/CMakeFiles/acf_can.dir/can/bus.cpp.o" "gcc" "src/CMakeFiles/acf_can.dir/can/bus.cpp.o.d"
  "/root/repo/src/can/crc.cpp" "src/CMakeFiles/acf_can.dir/can/crc.cpp.o" "gcc" "src/CMakeFiles/acf_can.dir/can/crc.cpp.o.d"
  "/root/repo/src/can/error_state.cpp" "src/CMakeFiles/acf_can.dir/can/error_state.cpp.o" "gcc" "src/CMakeFiles/acf_can.dir/can/error_state.cpp.o.d"
  "/root/repo/src/can/filter.cpp" "src/CMakeFiles/acf_can.dir/can/filter.cpp.o" "gcc" "src/CMakeFiles/acf_can.dir/can/filter.cpp.o.d"
  "/root/repo/src/can/frame.cpp" "src/CMakeFiles/acf_can.dir/can/frame.cpp.o" "gcc" "src/CMakeFiles/acf_can.dir/can/frame.cpp.o.d"
  "/root/repo/src/can/wire_codec.cpp" "src/CMakeFiles/acf_can.dir/can/wire_codec.cpp.o" "gcc" "src/CMakeFiles/acf_can.dir/can/wire_codec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/acf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
