file(REMOVE_RECURSE
  "CMakeFiles/acf_can.dir/can/bitstream.cpp.o"
  "CMakeFiles/acf_can.dir/can/bitstream.cpp.o.d"
  "CMakeFiles/acf_can.dir/can/bus.cpp.o"
  "CMakeFiles/acf_can.dir/can/bus.cpp.o.d"
  "CMakeFiles/acf_can.dir/can/crc.cpp.o"
  "CMakeFiles/acf_can.dir/can/crc.cpp.o.d"
  "CMakeFiles/acf_can.dir/can/error_state.cpp.o"
  "CMakeFiles/acf_can.dir/can/error_state.cpp.o.d"
  "CMakeFiles/acf_can.dir/can/filter.cpp.o"
  "CMakeFiles/acf_can.dir/can/filter.cpp.o.d"
  "CMakeFiles/acf_can.dir/can/frame.cpp.o"
  "CMakeFiles/acf_can.dir/can/frame.cpp.o.d"
  "CMakeFiles/acf_can.dir/can/wire_codec.cpp.o"
  "CMakeFiles/acf_can.dir/can/wire_codec.cpp.o.d"
  "libacf_can.a"
  "libacf_can.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acf_can.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
