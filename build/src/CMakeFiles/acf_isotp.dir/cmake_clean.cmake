file(REMOVE_RECURSE
  "CMakeFiles/acf_isotp.dir/isotp/isotp.cpp.o"
  "CMakeFiles/acf_isotp.dir/isotp/isotp.cpp.o.d"
  "libacf_isotp.a"
  "libacf_isotp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acf_isotp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
