file(REMOVE_RECURSE
  "libacf_isotp.a"
)
