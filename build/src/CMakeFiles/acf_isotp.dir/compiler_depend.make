# Empty compiler generated dependencies file for acf_isotp.
# This may be replaced when dependencies are built.
