# Empty dependencies file for acf_ecu.
# This may be replaced when dependencies are built.
