file(REMOVE_RECURSE
  "libacf_ecu.a"
)
