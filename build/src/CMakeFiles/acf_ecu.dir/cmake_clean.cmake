file(REMOVE_RECURSE
  "CMakeFiles/acf_ecu.dir/ecu/dtc.cpp.o"
  "CMakeFiles/acf_ecu.dir/ecu/dtc.cpp.o.d"
  "CMakeFiles/acf_ecu.dir/ecu/ecu.cpp.o"
  "CMakeFiles/acf_ecu.dir/ecu/ecu.cpp.o.d"
  "libacf_ecu.a"
  "libacf_ecu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acf_ecu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
