file(REMOVE_RECURSE
  "CMakeFiles/acf_vehicle.dir/vehicle/body_control.cpp.o"
  "CMakeFiles/acf_vehicle.dir/vehicle/body_control.cpp.o.d"
  "CMakeFiles/acf_vehicle.dir/vehicle/door_module.cpp.o"
  "CMakeFiles/acf_vehicle.dir/vehicle/door_module.cpp.o.d"
  "CMakeFiles/acf_vehicle.dir/vehicle/engine_ecu.cpp.o"
  "CMakeFiles/acf_vehicle.dir/vehicle/engine_ecu.cpp.o.d"
  "CMakeFiles/acf_vehicle.dir/vehicle/gateway.cpp.o"
  "CMakeFiles/acf_vehicle.dir/vehicle/gateway.cpp.o.d"
  "CMakeFiles/acf_vehicle.dir/vehicle/head_unit.cpp.o"
  "CMakeFiles/acf_vehicle.dir/vehicle/head_unit.cpp.o.d"
  "CMakeFiles/acf_vehicle.dir/vehicle/instrument_cluster.cpp.o"
  "CMakeFiles/acf_vehicle.dir/vehicle/instrument_cluster.cpp.o.d"
  "CMakeFiles/acf_vehicle.dir/vehicle/vehicle.cpp.o"
  "CMakeFiles/acf_vehicle.dir/vehicle/vehicle.cpp.o.d"
  "libacf_vehicle.a"
  "libacf_vehicle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acf_vehicle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
