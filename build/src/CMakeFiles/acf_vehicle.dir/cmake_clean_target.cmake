file(REMOVE_RECURSE
  "libacf_vehicle.a"
)
