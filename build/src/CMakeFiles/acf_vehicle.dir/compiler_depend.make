# Empty compiler generated dependencies file for acf_vehicle.
# This may be replaced when dependencies are built.
