
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vehicle/body_control.cpp" "src/CMakeFiles/acf_vehicle.dir/vehicle/body_control.cpp.o" "gcc" "src/CMakeFiles/acf_vehicle.dir/vehicle/body_control.cpp.o.d"
  "/root/repo/src/vehicle/door_module.cpp" "src/CMakeFiles/acf_vehicle.dir/vehicle/door_module.cpp.o" "gcc" "src/CMakeFiles/acf_vehicle.dir/vehicle/door_module.cpp.o.d"
  "/root/repo/src/vehicle/engine_ecu.cpp" "src/CMakeFiles/acf_vehicle.dir/vehicle/engine_ecu.cpp.o" "gcc" "src/CMakeFiles/acf_vehicle.dir/vehicle/engine_ecu.cpp.o.d"
  "/root/repo/src/vehicle/gateway.cpp" "src/CMakeFiles/acf_vehicle.dir/vehicle/gateway.cpp.o" "gcc" "src/CMakeFiles/acf_vehicle.dir/vehicle/gateway.cpp.o.d"
  "/root/repo/src/vehicle/head_unit.cpp" "src/CMakeFiles/acf_vehicle.dir/vehicle/head_unit.cpp.o" "gcc" "src/CMakeFiles/acf_vehicle.dir/vehicle/head_unit.cpp.o.d"
  "/root/repo/src/vehicle/instrument_cluster.cpp" "src/CMakeFiles/acf_vehicle.dir/vehicle/instrument_cluster.cpp.o" "gcc" "src/CMakeFiles/acf_vehicle.dir/vehicle/instrument_cluster.cpp.o.d"
  "/root/repo/src/vehicle/vehicle.cpp" "src/CMakeFiles/acf_vehicle.dir/vehicle/vehicle.cpp.o" "gcc" "src/CMakeFiles/acf_vehicle.dir/vehicle/vehicle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/acf_ecu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_obd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_xcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_security.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_lin.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_dbc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_uds.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_isotp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_can.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
