file(REMOVE_RECURSE
  "libacf_transport.a"
)
