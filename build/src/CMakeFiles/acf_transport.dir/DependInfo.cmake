
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/fault_injector.cpp" "src/CMakeFiles/acf_transport.dir/transport/fault_injector.cpp.o" "gcc" "src/CMakeFiles/acf_transport.dir/transport/fault_injector.cpp.o.d"
  "/root/repo/src/transport/socketcan_transport.cpp" "src/CMakeFiles/acf_transport.dir/transport/socketcan_transport.cpp.o" "gcc" "src/CMakeFiles/acf_transport.dir/transport/socketcan_transport.cpp.o.d"
  "/root/repo/src/transport/transport.cpp" "src/CMakeFiles/acf_transport.dir/transport/transport.cpp.o" "gcc" "src/CMakeFiles/acf_transport.dir/transport/transport.cpp.o.d"
  "/root/repo/src/transport/virtual_bus_transport.cpp" "src/CMakeFiles/acf_transport.dir/transport/virtual_bus_transport.cpp.o" "gcc" "src/CMakeFiles/acf_transport.dir/transport/virtual_bus_transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/acf_can.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
