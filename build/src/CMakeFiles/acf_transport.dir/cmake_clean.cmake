file(REMOVE_RECURSE
  "CMakeFiles/acf_transport.dir/transport/fault_injector.cpp.o"
  "CMakeFiles/acf_transport.dir/transport/fault_injector.cpp.o.d"
  "CMakeFiles/acf_transport.dir/transport/socketcan_transport.cpp.o"
  "CMakeFiles/acf_transport.dir/transport/socketcan_transport.cpp.o.d"
  "CMakeFiles/acf_transport.dir/transport/transport.cpp.o"
  "CMakeFiles/acf_transport.dir/transport/transport.cpp.o.d"
  "CMakeFiles/acf_transport.dir/transport/virtual_bus_transport.cpp.o"
  "CMakeFiles/acf_transport.dir/transport/virtual_bus_transport.cpp.o.d"
  "libacf_transport.a"
  "libacf_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acf_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
