# Empty compiler generated dependencies file for acf_transport.
# This may be replaced when dependencies are built.
