# Empty dependencies file for acf_lin.
# This may be replaced when dependencies are built.
