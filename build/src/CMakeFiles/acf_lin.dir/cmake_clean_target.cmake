file(REMOVE_RECURSE
  "libacf_lin.a"
)
