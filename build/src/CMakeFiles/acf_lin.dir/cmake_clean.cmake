file(REMOVE_RECURSE
  "CMakeFiles/acf_lin.dir/lin/lin.cpp.o"
  "CMakeFiles/acf_lin.dir/lin/lin.cpp.o.d"
  "libacf_lin.a"
  "libacf_lin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acf_lin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
