file(REMOVE_RECURSE
  "libacf_uds.a"
)
