# Empty dependencies file for acf_uds.
# This may be replaced when dependencies are built.
