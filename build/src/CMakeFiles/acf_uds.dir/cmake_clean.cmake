file(REMOVE_RECURSE
  "CMakeFiles/acf_uds.dir/uds/security.cpp.o"
  "CMakeFiles/acf_uds.dir/uds/security.cpp.o.d"
  "CMakeFiles/acf_uds.dir/uds/uds_client.cpp.o"
  "CMakeFiles/acf_uds.dir/uds/uds_client.cpp.o.d"
  "CMakeFiles/acf_uds.dir/uds/uds_server.cpp.o"
  "CMakeFiles/acf_uds.dir/uds/uds_server.cpp.o.d"
  "libacf_uds.a"
  "libacf_uds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acf_uds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
