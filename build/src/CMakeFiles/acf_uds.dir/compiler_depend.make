# Empty compiler generated dependencies file for acf_uds.
# This may be replaced when dependencies are built.
