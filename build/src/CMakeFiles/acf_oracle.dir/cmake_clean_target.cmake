file(REMOVE_RECURSE
  "libacf_oracle.a"
)
