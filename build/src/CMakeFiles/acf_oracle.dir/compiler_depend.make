# Empty compiler generated dependencies file for acf_oracle.
# This may be replaced when dependencies are built.
