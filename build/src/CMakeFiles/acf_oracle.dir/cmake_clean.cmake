file(REMOVE_RECURSE
  "CMakeFiles/acf_oracle.dir/oracle/bus_oracles.cpp.o"
  "CMakeFiles/acf_oracle.dir/oracle/bus_oracles.cpp.o.d"
  "CMakeFiles/acf_oracle.dir/oracle/oracle.cpp.o"
  "CMakeFiles/acf_oracle.dir/oracle/oracle.cpp.o.d"
  "CMakeFiles/acf_oracle.dir/oracle/vehicle_oracles.cpp.o"
  "CMakeFiles/acf_oracle.dir/oracle/vehicle_oracles.cpp.o.d"
  "libacf_oracle.a"
  "libacf_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acf_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
