file(REMOVE_RECURSE
  "CMakeFiles/acf_xcp.dir/xcp/xcp.cpp.o"
  "CMakeFiles/acf_xcp.dir/xcp/xcp.cpp.o.d"
  "libacf_xcp.a"
  "libacf_xcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acf_xcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
