# Empty compiler generated dependencies file for acf_xcp.
# This may be replaced when dependencies are built.
