file(REMOVE_RECURSE
  "libacf_xcp.a"
)
