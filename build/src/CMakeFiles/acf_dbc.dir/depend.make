# Empty dependencies file for acf_dbc.
# This may be replaced when dependencies are built.
