file(REMOVE_RECURSE
  "CMakeFiles/acf_dbc.dir/dbc/database.cpp.o"
  "CMakeFiles/acf_dbc.dir/dbc/database.cpp.o.d"
  "CMakeFiles/acf_dbc.dir/dbc/message_def.cpp.o"
  "CMakeFiles/acf_dbc.dir/dbc/message_def.cpp.o.d"
  "CMakeFiles/acf_dbc.dir/dbc/parser.cpp.o"
  "CMakeFiles/acf_dbc.dir/dbc/parser.cpp.o.d"
  "CMakeFiles/acf_dbc.dir/dbc/signal.cpp.o"
  "CMakeFiles/acf_dbc.dir/dbc/signal.cpp.o.d"
  "CMakeFiles/acf_dbc.dir/dbc/target_vehicle_db.cpp.o"
  "CMakeFiles/acf_dbc.dir/dbc/target_vehicle_db.cpp.o.d"
  "libacf_dbc.a"
  "libacf_dbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acf_dbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
