
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dbc/database.cpp" "src/CMakeFiles/acf_dbc.dir/dbc/database.cpp.o" "gcc" "src/CMakeFiles/acf_dbc.dir/dbc/database.cpp.o.d"
  "/root/repo/src/dbc/message_def.cpp" "src/CMakeFiles/acf_dbc.dir/dbc/message_def.cpp.o" "gcc" "src/CMakeFiles/acf_dbc.dir/dbc/message_def.cpp.o.d"
  "/root/repo/src/dbc/parser.cpp" "src/CMakeFiles/acf_dbc.dir/dbc/parser.cpp.o" "gcc" "src/CMakeFiles/acf_dbc.dir/dbc/parser.cpp.o.d"
  "/root/repo/src/dbc/signal.cpp" "src/CMakeFiles/acf_dbc.dir/dbc/signal.cpp.o" "gcc" "src/CMakeFiles/acf_dbc.dir/dbc/signal.cpp.o.d"
  "/root/repo/src/dbc/target_vehicle_db.cpp" "src/CMakeFiles/acf_dbc.dir/dbc/target_vehicle_db.cpp.o" "gcc" "src/CMakeFiles/acf_dbc.dir/dbc/target_vehicle_db.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/acf_can.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
