file(REMOVE_RECURSE
  "libacf_dbc.a"
)
