file(REMOVE_RECURSE
  "CMakeFiles/acf_attacks.dir/attacks/attacks.cpp.o"
  "CMakeFiles/acf_attacks.dir/attacks/attacks.cpp.o.d"
  "libacf_attacks.a"
  "libacf_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acf_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
