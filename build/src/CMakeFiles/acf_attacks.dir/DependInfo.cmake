
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attacks/attacks.cpp" "src/CMakeFiles/acf_attacks.dir/attacks/attacks.cpp.o" "gcc" "src/CMakeFiles/acf_attacks.dir/attacks/attacks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/acf_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_xcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_can.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
