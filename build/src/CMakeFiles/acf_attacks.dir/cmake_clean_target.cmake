file(REMOVE_RECURSE
  "libacf_attacks.a"
)
