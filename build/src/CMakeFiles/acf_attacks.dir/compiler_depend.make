# Empty compiler generated dependencies file for acf_attacks.
# This may be replaced when dependencies are built.
