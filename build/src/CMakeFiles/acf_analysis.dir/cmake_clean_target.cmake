file(REMOVE_RECURSE
  "libacf_analysis.a"
)
