file(REMOVE_RECURSE
  "CMakeFiles/acf_analysis.dir/analysis/byte_stats.cpp.o"
  "CMakeFiles/acf_analysis.dir/analysis/byte_stats.cpp.o.d"
  "CMakeFiles/acf_analysis.dir/analysis/combinatorics.cpp.o"
  "CMakeFiles/acf_analysis.dir/analysis/combinatorics.cpp.o.d"
  "CMakeFiles/acf_analysis.dir/analysis/report.cpp.o"
  "CMakeFiles/acf_analysis.dir/analysis/report.cpp.o.d"
  "CMakeFiles/acf_analysis.dir/analysis/survey.cpp.o"
  "CMakeFiles/acf_analysis.dir/analysis/survey.cpp.o.d"
  "libacf_analysis.a"
  "libacf_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acf_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
