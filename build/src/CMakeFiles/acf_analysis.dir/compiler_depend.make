# Empty compiler generated dependencies file for acf_analysis.
# This may be replaced when dependencies are built.
