# Empty compiler generated dependencies file for acf_trace.
# This may be replaced when dependencies are built.
