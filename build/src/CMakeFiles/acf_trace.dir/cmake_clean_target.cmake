file(REMOVE_RECURSE
  "libacf_trace.a"
)
