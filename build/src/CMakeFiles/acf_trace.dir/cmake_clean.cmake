file(REMOVE_RECURSE
  "CMakeFiles/acf_trace.dir/trace/asc_log.cpp.o"
  "CMakeFiles/acf_trace.dir/trace/asc_log.cpp.o.d"
  "CMakeFiles/acf_trace.dir/trace/candump_log.cpp.o"
  "CMakeFiles/acf_trace.dir/trace/candump_log.cpp.o.d"
  "CMakeFiles/acf_trace.dir/trace/capture.cpp.o"
  "CMakeFiles/acf_trace.dir/trace/capture.cpp.o.d"
  "CMakeFiles/acf_trace.dir/trace/replay.cpp.o"
  "CMakeFiles/acf_trace.dir/trace/replay.cpp.o.d"
  "libacf_trace.a"
  "libacf_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acf_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
