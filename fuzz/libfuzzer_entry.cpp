// libFuzzer entrypoint: each fuzz_<target> binary is this file compiled with
// ACF_FUZZ_TARGET_NAME set, linked with -fsanitize=fuzzer (ACF_LIBFUZZER=ON,
// Clang only).  The coverage-guided run drives exactly the same FuzzTarget
// the deterministic harness does, so corpora are interchangeable:
//
//   ./fuzz_dbc tests/corpus/dbc            # coverage-guided, seeded
//   ./acf_fuzz --target dbc                # deterministic smoke, no Clang
//
// An invariant violation aborts so libFuzzer records the input.
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "selftest/targets.hpp"

#ifndef ACF_FUZZ_TARGET_NAME
#error "define ACF_FUZZ_TARGET_NAME to a registered target name"
#endif

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  static const acf::selftest::FuzzTarget* target = [] {
    const auto* found = acf::selftest::find_target(ACF_FUZZ_TARGET_NAME);
    if (found == nullptr) {
      std::fprintf(stderr, "unknown fuzz target: %s\n", ACF_FUZZ_TARGET_NAME);
      std::abort();
    }
    return found;
  }();
  if (const auto error = target->run({data, size})) {
    std::fprintf(stderr, "invariant violated: %s\n", error->c_str());
    std::abort();
  }
  return 0;
}
