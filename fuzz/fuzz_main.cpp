// acf_fuzz: command-line driver for the deterministic in-repo fuzz harness.
//
//   acf_fuzz --list
//   acf_fuzz --target dbc --iterations 200000 --seed 42
//   acf_fuzz                                # every target, smoke budget
//   acf_fuzz --target isotp --corpus tests/corpus/isotp --failures out/
//
// Exit status: 0 when every invariant held, 1 on any failure (the failing
// inputs are written to --failures for replay), 2 on usage errors.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "selftest/harness.hpp"
#include "selftest/targets.hpp"

namespace {

#ifndef ACF_DEFAULT_CORPUS_DIR
#define ACF_DEFAULT_CORPUS_DIR ""
#endif

struct CliOptions {
  std::string target;  // empty = all
  std::string corpus_dir = ACF_DEFAULT_CORPUS_DIR;
  acf::selftest::HarnessOptions harness;
  bool list = false;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--target NAME] [--iterations N] [--seed N]\n"
               "          [--max-bytes N] [--corpus DIR] [--failures DIR] [--list]\n"
               "\n"
               "Runs the in-repo fuzz harness over one target (or all of them).\n"
               "--corpus names the PARENT directory holding <target>/ seed dirs;\n"
               "default: %s\n",
               argv0, ACF_DEFAULT_CORPUS_DIR[0] != '\0' ? ACF_DEFAULT_CORPUS_DIR : "(none)");
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (~std::uint64_t{0} - digit) / 10) return false;
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

std::optional<CliOptions> parse_args(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--list") {
      options.list = true;
    } else if (arg == "--target") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.target = v;
    } else if (arg == "--corpus") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.corpus_dir = v;
    } else if (arg == "--failures") {
      const char* v = value();
      if (v == nullptr) return std::nullopt;
      options.harness.failure_dir = v;
    } else if (arg == "--iterations") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, options.harness.iterations)) return std::nullopt;
    } else if (arg == "--seed") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, options.harness.seed)) return std::nullopt;
    } else if (arg == "--max-bytes") {
      const char* v = value();
      std::uint64_t bytes = 0;
      if (v == nullptr || !parse_u64(v, bytes)) return std::nullopt;
      options.harness.max_input_bytes = static_cast<std::size_t>(bytes);
    } else {
      return std::nullopt;
    }
  }
  return options;
}

int run_one(const acf::selftest::FuzzTarget& target, const CliOptions& options) {
  std::vector<std::vector<std::uint8_t>> corpus;
  if (!options.corpus_dir.empty()) {
    corpus = acf::selftest::load_corpus_dir(options.corpus_dir + "/" + target.name);
  }
  const auto result = acf::selftest::run_harness(target, corpus, options.harness);
  std::printf("%-20s corpus=%llu generated=%llu failures=%zu\n", target.name.c_str(),
              static_cast<unsigned long long>(result.corpus_inputs),
              static_cast<unsigned long long>(result.generated_inputs),
              result.failures.size());
  for (const auto& failure : result.failures) {
    std::printf("  [%s #%llu] %s\n    input: %s\n",
                failure.from_corpus ? "corpus" : "generated",
                static_cast<unsigned long long>(failure.ordinal), failure.message.c_str(),
                acf::selftest::hex_preview(failure.input).c_str());
  }
  return result.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = parse_args(argc, argv);
  if (!options) {
    usage(argv[0]);
    return 2;
  }
  if (options->list) {
    for (const auto& target : acf::selftest::all_targets()) {
      std::printf("%-20s %s\n", target.name.c_str(), target.description.c_str());
    }
    return 0;
  }
  if (!options->target.empty()) {
    const auto* target = acf::selftest::find_target(options->target);
    if (target == nullptr) {
      std::fprintf(stderr, "unknown target '%s' (see --list)\n", options->target.c_str());
      return 2;
    }
    return run_one(*target, *options);
  }
  int status = 0;
  for (const auto& target : acf::selftest::all_targets()) {
    status |= run_one(target, *options);
  }
  return status;
}
