// UDS discovery and security-access exercise over ISO-TP.
//
// Demonstrates the diagnostic substrate: scans the cluster's UDS endpoint,
// reads identification DIDs, walks the session / security-access state
// machine (the "ECU operating modes" the paper flags as must-test states),
// and shows the invalid-key lockout an attacker runs into.
//
//   $ uds_scan
#include <cstdio>

#include "sim/scheduler.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "uds/uds_client.hpp"
#include "vehicle/instrument_cluster.hpp"

int main() {
  using namespace acf;
  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  vehicle::InstrumentCluster cluster(scheduler, bus);

  transport::VirtualBusTransport tester(bus, "tester");
  isotp::IsoTpConfig isotp_config;
  isotp_config.tx_id = dbc::kUdsClusterRequest;
  isotp_config.rx_id = dbc::kUdsClusterResponse;
  uds::UdsClient client(scheduler,
                        [&tester](const can::CanFrame& frame) { return tester.send(frame); },
                        isotp_config);
  tester.set_rx_callback([&client](const can::CanFrame& frame, sim::SimTime time) {
    client.handle_frame(frame, time);
  });

  auto transact = [&](const char* label) {
    scheduler.run_for(std::chrono::milliseconds(100));
    const auto& response = client.last_response();
    if (!response) {
      std::printf("%-34s -> (no response)\n", label);
      return;
    }
    std::printf("%-34s -> %s", label, response->positive() ? "positive" : "NEGATIVE");
    if (const auto nrc = response->nrc()) std::printf(" (NRC 0x%02X)", *nrc);
    if (response->positive() && response->payload.size() > 3 &&
        response->payload[0] == 0x62) {
      std::printf("  data: \"");
      for (std::size_t i = 3; i < response->payload.size(); ++i) {
        std::printf("%c", response->payload[i]);
      }
      std::printf("\"");
    }
    std::printf("\n");
  };

  client.read_did(0xF190);
  transact("ReadDID F190 (VIN)");
  client.read_did(0xF195);
  transact("ReadDID F195 (SW version)");
  client.read_did(0x1234);
  transact("ReadDID 1234 (undefined)");

  // Security access requires a non-default session.
  client.request_seed();
  transact("SecurityAccess seed (default sess)");
  client.start_session(0x03);
  transact("DiagnosticSessionControl extended");
  client.request_seed();
  transact("SecurityAccess requestSeed");

  const auto seed = uds::UdsClient::seed_from_response(*client.last_response());
  if (seed) {
    // Wrong key three times -> lockout.
    for (int attempt = 1; attempt <= 3; ++attempt) {
      client.send_key(0x01, uds::Key{0xDE, 0xAD, 0xBE, 0xEF});
      transact("SecurityAccess sendKey (wrong)");
      if (attempt < 3) {
        client.request_seed();
        transact("SecurityAccess requestSeed");
      }
    }
    client.request_seed();
    transact("requestSeed during lockout");

    // The legitimate tester knows the algorithm: unlock properly.
    scheduler.run_for(std::chrono::seconds(11));  // lockout delay expires
    client.start_session(0x03);
    transact("re-enter extended session");
    client.request_seed();
    transact("SecurityAccess requestSeed");
    if (const auto fresh = uds::UdsClient::seed_from_response(*client.last_response())) {
      const uds::XorRotateAlgorithm algorithm;
      client.send_key(0x01, algorithm.compute_key(*fresh));
      transact("SecurityAccess sendKey (correct)");
    }
    std::printf("cluster security state: %s\n",
                cluster.uds_server()->security_state() == uds::SecurityState::kUnlocked
                    ? "UNLOCKED (service mode)"
                    : "locked");
  }
  return 0;
}
