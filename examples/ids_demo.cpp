// ids_demo: train-then-detect intrusion detection on the bench-top unlock
// rig.  A pipeline with the four standard detectors taps the bench bus as an
// invisible listener, trains on 30 s of clean ECU traffic, freezes its
// models, and then watches a blind random fuzz attack (the paper's Table V
// setup).  Alerts flow both to stdout (first few) and — via AlertOracle —
// into the fuzz campaign's own finding records, next to the unlock oracle.
//
//   ./ids_demo [seed]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "dbc/target_vehicle_db.hpp"
#include "fuzzer/campaign.hpp"
#include "fuzzer/generator.hpp"
#include "ids/alert_oracle.hpp"
#include "ids/detectors.hpp"
#include "ids/pipeline.hpp"
#include "oracle/vehicle_oracles.hpp"
#include "sim/scheduler.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "vehicle/vehicle.hpp"

int main(int argc, char** argv) {
  using namespace acf;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 0xACF0;

  sim::Scheduler scheduler;
  vehicle::UnlockTestbench bench(scheduler);

  // The IDS: a listen-only tap, invisible to head unit and BCM.
  ids::Pipeline pipeline;
  for (auto& detector : ids::standard_detectors(dbc::target_vehicle_database())) {
    pipeline.add(std::move(detector));
  }
  pipeline.attach(bench.bus(), "ids-tap");
  int printed = 0;
  pipeline.set_on_alert([&printed](const ids::Alert& alert) {
    if (printed < 8) std::printf("  ALERT %s\n", alert.to_string().c_str());
    if (++printed == 8) std::printf("  ... (further alerts merged/elided)\n");
  });

  std::printf("training on clean bench traffic (30 s simulated)...\n");
  pipeline.begin_training();
  scheduler.run_for(std::chrono::seconds(30));
  pipeline.begin_detection();
  std::printf("models frozen after %llu frames; detection armed\n\n",
              static_cast<unsigned long long>(pipeline.counters().frames_trained));

  // The attack: blind random fuzz over the full Table III space at 1 ms.
  transport::VirtualBusTransport attacker(bench.bus(), "attacker");
  fuzzer::FuzzConfig fuzz = fuzzer::FuzzConfig::full_random(seed);
  fuzzer::RandomGenerator generator(fuzz);
  oracle::CompositeOracle oracles;
  oracles.add(std::make_unique<oracle::UnlockOracle>(bench.bus(), &bench.bcm()));
  oracles.add(std::make_unique<ids::AlertOracle>(pipeline));
  fuzzer::CampaignConfig config;
  config.max_duration = std::chrono::minutes(30);
  fuzzer::FuzzCampaign campaign(scheduler, attacker, generator, &oracles, config);
  std::printf("fuzzing until the unlock fires (or 30 min simulated)...\n");
  const fuzzer::CampaignResult& result = campaign.run();

  const ids::PipelineCounters counters = pipeline.counters();
  std::printf("\ncampaign: %llu frames in %.1f simulated s, %zu findings\n",
              static_cast<unsigned long long>(result.frames_sent),
              sim::to_seconds(result.elapsed), result.findings.size());
  if (const fuzzer::Finding* failure = result.first_failure()) {
    std::printf("unlock detected at t=%.3f s\n",
                sim::to_seconds(failure->observation.time));
  }
  std::printf("pipeline: %llu frames scored, %llu alerts raised "
              "(%llu merged by cooldown)\n",
              static_cast<unsigned long long>(counters.frames_scored),
              static_cast<unsigned long long>(counters.alerts_raised),
              static_cast<unsigned long long>(counters.alerts_suppressed));
  for (std::size_t i = 0; i < pipeline.detector_count(); ++i) {
    std::printf("  %-10s %llu alerts\n",
                std::string(pipeline.detector(i).name()).c_str(),
                static_cast<unsigned long long>(pipeline.alerts_for(i)));
  }
  std::printf("\nthe detectors saw the attack the moment it started — hundreds of\n"
              "seconds before the unlock itself fired (the paper's Table V gap).\n");
  return 0;
}
