// Quickstart: build a virtual CAN bus with a simulated vehicle on it,
// attach the fuzzer through the transport abstraction, arm a composite
// oracle, and run a short campaign — the whole public API in ~80 lines.
//
//   $ quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "analysis/combinatorics.hpp"
#include "fuzzer/campaign.hpp"
#include "fuzzer/generator.hpp"
#include "oracle/vehicle_oracles.hpp"
#include "sim/scheduler.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "vehicle/vehicle.hpp"

int main(int argc, char** argv) {
  using namespace acf;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 42;

  // A simulated clock; one hour of campaign time runs in milliseconds.
  sim::Scheduler scheduler;

  // The full target vehicle: powertrain + body buses joined by a gateway.
  vehicle::Vehicle car(scheduler);

  // Let the vehicle settle into its drive cycle before fuzzing.
  scheduler.run_for(std::chrono::seconds(2));

  // The fuzzer connects like the paper's PC + USB-CAN adaptor: a transport
  // endpoint on the bus — here the body bus, i.e. the OBD-reachable side.
  transport::VirtualBusTransport obd(car.body_bus(), "fuzzer");

  // Table III fuzz space: every standard id, every DLC, every byte value.
  fuzzer::FuzzConfig config = fuzzer::FuzzConfig::full_random(seed);
  const auto space = analysis::analyze_space(config);
  std::printf("fuzz space: %llu ids x payloads = %s%llu frames\n",
              static_cast<unsigned long long>(space.id_space),
              space.saturated ? ">" : "",
              static_cast<unsigned long long>(space.frame_space));

  fuzzer::RandomGenerator generator(config);

  // Oracles: watch the cluster (warnings, crash latch) and signal ranges.
  oracle::CompositeOracle oracles;
  oracles.add(std::make_unique<oracle::ClusterStateOracle>(car.cluster()));
  oracles.add(std::make_unique<oracle::SignalPlausibilityOracle>(
      car.body_bus(), dbc::target_vehicle_database()));

  fuzzer::CampaignConfig campaign_config;
  campaign_config.max_duration = std::chrono::seconds(30);
  campaign_config.stop_on_failure = false;  // keep going, collect everything

  fuzzer::FuzzCampaign campaign(scheduler, obd, generator, &oracles, campaign_config);
  const auto& result = campaign.run();

  std::printf("campaign: %llu frames in %.1f s (sim), stop: %s\n",
              static_cast<unsigned long long>(result.frames_sent),
              sim::to_seconds(result.elapsed), fuzzer::to_string(result.reason));
  std::printf("findings: %zu\n", result.findings.size());
  for (std::size_t i = 0; i < result.findings.size() && i < 8; ++i) {
    std::printf("  %zu. %s\n", i + 1, result.findings[i].summary().c_str());
  }
  std::printf("cluster: MIL=%d warnings_sounded=%llu needle_travel=%.0f display='%s'\n",
              car.cluster().mil_on() ? 1 : 0,
              static_cast<unsigned long long>(car.cluster().warning_sounds()),
              car.cluster().needle_travel(), car.cluster().display_text().c_str());
  return 0;
}
