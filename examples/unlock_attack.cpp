// The bench-top remote-unlock scenario (paper Figs. 10-13 and Table V).
//
// Three nodes on one bus: a head unit (proxy for the manufacturer's
// smartphone app), a BCM driving the lock "LED", and the fuzzer as the
// malicious node.  First the legitimate path is demonstrated, then the
// fuzzer — with no knowledge of the unlock message — activates the lock by
// blind random fuzzing, and the time-to-unlock is reported for both BCM
// hardening levels.
//
//   $ unlock_attack [seed]
#include <cstdio>
#include <cstdlib>

#include "fuzzer/campaign.hpp"
#include "fuzzer/generator.hpp"
#include "oracle/vehicle_oracles.hpp"
#include "sim/scheduler.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "vehicle/vehicle.hpp"

namespace {

double attack_once(acf::vehicle::UnlockPredicate predicate, std::uint64_t seed) {
  using namespace acf;
  sim::Scheduler scheduler;
  vehicle::UnlockTestbench bench(scheduler, predicate);
  transport::VirtualBusTransport attacker(bench.bus(), "attacker");

  oracle::CompositeOracle oracles;
  oracles.add(std::make_unique<oracle::UnlockOracle>(bench.bus(), &bench.bcm()));

  fuzzer::FuzzConfig config = fuzzer::FuzzConfig::full_random(seed);
  fuzzer::RandomGenerator generator(config);

  fuzzer::CampaignConfig campaign_config;
  campaign_config.max_duration = std::chrono::hours(4);
  campaign_config.oracle_period = std::chrono::milliseconds(1);
  fuzzer::FuzzCampaign campaign(scheduler, attacker, generator, &oracles, campaign_config);
  const auto& result = campaign.run();
  if (!result.any_failure()) return -1.0;
  return sim::to_seconds(result.first_failure()->observation.time);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace acf;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 7;

  // --- legitimate path: app -> head unit -> BCM ---------------------------
  {
    sim::Scheduler scheduler;
    vehicle::UnlockTestbench bench(scheduler);
    scheduler.run_for(std::chrono::milliseconds(200));
    std::printf("initial lock LED: %s\n", bench.bcm().lock_led_on() ? "ON (unlocked)"
                                                                    : "off (locked)");
    bench.head_unit().request_unlock();
    scheduler.run_for(std::chrono::milliseconds(50));
    std::printf("after app unlock: %s (acks seen by app: %llu)\n",
                bench.bcm().lock_led_on() ? "ON (unlocked)" : "off (locked)",
                static_cast<unsigned long long>(bench.head_unit().acks_seen()));
    bench.head_unit().request_lock();
    scheduler.run_for(std::chrono::milliseconds(50));
    std::printf("after app lock:   %s\n\n", bench.bcm().lock_led_on() ? "ON (unlocked)"
                                                                      : "off (locked)");
  }

  // --- the attack, against both Table V predicates ------------------------
  const double t_weak =
      attack_once(vehicle::UnlockPredicate::single_id_and_byte(), seed);
  std::printf("blind fuzz vs 'single id and byte' predicate:   unlocked after %.0f s\n",
              t_weak);

  const double t_hard =
      attack_once(vehicle::UnlockPredicate::id_byte_and_length(), seed ^ 0x9e3779b9);
  std::printf("blind fuzz vs 'id, byte plus data length':      unlocked after %.0f s\n",
              t_hard);
  if (t_weak > 0 && t_hard > 0) {
    std::printf("hardening factor on this pair of runs: x%.1f\n", t_hard / t_weak);
  }
  std::puts("(single runs of a heavy-tailed geometric process; bench_table5_unlock"
            " reports means over many trials)");
  return 0;
}
