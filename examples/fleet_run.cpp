// fleet_run: CLI driver for the fleet orchestrator.  Shards N replicas of
// the paper's Table V unlock trial (both predicates) across a worker pool,
// prints per-arm mean / 95% CI / median, and optionally exports the full
// per-trial trajectory as JSONL.  Same seed + same runs => byte-identical
// statistics and JSONL at any --threads value.
//
//   fleet_run --runs 50 --threads 8 --seed 0xACF --jsonl trials.jsonl
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "analysis/report.hpp"
#include "fleet/aggregator.hpp"
#include "fleet/executor.hpp"
#include "fleet/jsonl.hpp"
#include "fleet/worlds.hpp"

using namespace acf;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--runs N] [--threads T] [--seed S] [--budget-hours H]\n"
               "          [--jsonl PATH|-]\n"
               "  --runs N         replicas per arm (default 12)\n"
               "  --threads T      worker threads (default: hardware concurrency)\n"
               "  --seed S         base seed; trial seeds derive via SplitMix64\n"
               "  --budget-hours H per-trial simulated-time budget (default 24)\n"
               "  --jsonl PATH     write one JSON object per trial (- = stdout)\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t runs = 12;
  unsigned threads = 0;
  std::uint64_t seed = 0xACF17EE7ULL;
  long budget_hours = 24;
  const char* jsonl_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const auto take = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) != 0) return nullptr;
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (const char* runs_arg = take("--runs")) {
      runs = static_cast<std::size_t>(std::strtoul(runs_arg, nullptr, 0));
    } else if (const char* threads_arg = take("--threads")) {
      threads = static_cast<unsigned>(std::strtoul(threads_arg, nullptr, 0));
    } else if (const char* seed_arg = take("--seed")) {
      seed = std::strtoull(seed_arg, nullptr, 0);
    } else if (const char* budget_arg = take("--budget-hours")) {
      budget_hours = std::strtol(budget_arg, nullptr, 0);
    } else if (const char* jsonl_arg = take("--jsonl")) {
      jsonl_path = jsonl_arg;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (runs == 0 || budget_hours <= 0) {
    usage(argv[0]);
    return 2;
  }

  fleet::TrialPlan plan({"Single id and byte", "Single id, byte plus data length"}, runs,
                        seed, std::chrono::hours(budget_hours));
  fleet::WorldFactory factory = fleet::unlock_world_factory(
      {{vehicle::UnlockPredicate::single_id_and_byte()},
       {vehicle::UnlockPredicate::id_byte_and_length()}});

  fleet::ExecutorConfig executor_config;
  executor_config.threads = threads;
  fleet::Executor executor(executor_config);
  fleet::ProgressReporter progress;
  std::printf("fleet_run: %zu trials (%zu arms x %zu replicas), %u threads, seed 0x%llx\n",
              plan.trial_count(), plan.arm_count(), plan.replicas(),
              executor.effective_threads(plan.trial_count()),
              static_cast<unsigned long long>(seed));
  const std::vector<fleet::TrialOutcome> outcomes = executor.run(plan, factory, &progress);
  const fleet::FleetReport report = fleet::aggregate(plan, outcomes);

  analysis::TextTable table({"Arm", "n", "Detected", "Timeout", "Error", "Mean (s)",
                             "95% CI (s)", "Median (s)"});
  for (const fleet::ArmReport& arm : report.arms) {
    const util::Interval ci = arm.ci95();
    std::string ci_cell = "[";
    ci_cell += analysis::format_number(ci.lo, 1);
    ci_cell += ", ";
    ci_cell += analysis::format_number(ci.hi, 1);
    ci_cell += "]";
    table.add_row({arm.label, std::to_string(arm.trials), std::to_string(arm.detected),
                   std::to_string(arm.timeouts), std::to_string(arm.errors),
                   analysis::format_number(arm.time_to_failure.mean(), 1), ci_cell,
                   analysis::format_number(arm.median(), 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("total frames sent: %llu across %zu trials (%zu errors)\n",
              static_cast<unsigned long long>(report.frames_sent), report.trials,
              report.errors);

  if (jsonl_path) {
    if (std::strcmp(jsonl_path, "-") == 0) {
      fleet::JsonlExporter(std::cout).write_all(plan, outcomes);
    } else {
      std::ofstream file(jsonl_path);
      if (!file) {
        std::fprintf(stderr, "fleet_run: cannot open %s\n", jsonl_path);
        return 1;
      }
      fleet::JsonlExporter(file).write_all(plan, outcomes);
      std::printf("wrote %zu trial records to %s\n", outcomes.size(), jsonl_path);
    }
  }
  return report.errors == 0 ? 0 : 1;
}
