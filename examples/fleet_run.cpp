// fleet_run: CLI driver for the fleet orchestrator.  Shards N replicas of
// the paper's Table V unlock trial (both predicates) across a worker pool,
// prints per-arm mean / 95% CI / median, and optionally exports the full
// per-trial trajectory as JSONL.  Same seed + same runs => byte-identical
// statistics and JSONL at any --threads value.
//
// In-process:    fleet_run --runs 50 --threads 8 --seed 0xACF --jsonl t.jsonl
// Distributed:   fleet_run --runs 50 --serve 0 --workers 3 --jsonl t.jsonl
//   (the coordinator forks 3 worker processes of this same binary; statistics
//    and JSONL come out byte-identical to the in-process run)
// Hand-rolled:   fleet_run --runs 50 --serve 4710   on one terminal, then
//                fleet_run --runs 50 --connect 127.0.0.1:4710   on others —
//   every process must be given the same campaign flags (--runs/--seed/
//   --budget-hours/--fast-world); the handshake fingerprint rejects drift.
#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include <unistd.h>

#include "analysis/report.hpp"
#include "attacks/attack_world.hpp"
#include "fleet/aggregator.hpp"
#include "fleet/executor.hpp"
#include "fleet/jsonl.hpp"
#include "fleet/remote/coordinator.hpp"
#include "fleet/remote/worker.hpp"
#include "feedback/worlds.hpp"
#include "fleet/worlds.hpp"
#include "metrics/metrics.hpp"
#include "metrics/snapshot.hpp"

using namespace acf;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--runs N] [--threads T] [--seed S] [--budget-hours H]\n"
               "          [--jsonl PATH|-] [--fast-world] [--attacks]\n"
               "          [--feedback [--corpus-dir DIR]]\n"
               "          [--serve PORT [--workers K]] [--connect HOST:PORT]\n"
               "          [--checkpoint PATH] [--stop-after N] [--kill-worker-after N]\n"
               "          [--metrics-out PATH] [--metrics-interval N]\n"
               "  --runs N         replicas per arm (default 12)\n"
               "  --threads T      worker threads (default: hardware concurrency)\n"
               "  --seed S         base seed; trial seeds derive via SplitMix64\n"
               "  --budget-hours H per-trial simulated-time budget (default 24)\n"
               "  --jsonl PATH     write one JSON object per trial (- = stdout)\n"
               "  --fast-world     reduced-window unlock world (CI / smoke scale)\n"
               "  --attacks        attack-scenario catalog: one arm per family, IDS\n"
               "                   pipeline on the observed bus, per-(attack, detector)\n"
               "                   evaluation matrix in the report\n"
               "  --feedback       coverage-guided campaigns: novelty-map feedback\n"
               "                   drives the mutator (weak + hardened predicate arms)\n"
               "  --corpus-dir D   with --feedback: seed every trial from D/seed.corpus\n"
               "                   (if present) and write each trial's final corpus to\n"
               "                   D/trial-<index>.corpus\n"
               "  --serve PORT     run as campaign coordinator (0 = ephemeral port)\n"
               "  --workers K      with --serve: fork K worker processes of this binary\n"
               "  --connect H:P    run as campaign worker against a coordinator\n"
               "  --checkpoint P   coordinator: persist progress; resume if P exists\n"
               "  --stop-after N   coordinator: checkpoint and exit after N trials\n"
               "  --kill-worker-after N  SIGKILL the first forked worker after N\n"
               "                   completions (crash-tolerance smoke)\n"
               "  --metrics-out P  stream acf-metrics-v1 JSONL snapshots to P (- = stderr);\n"
               "                   the final line carries the campaign totals\n"
               "  --metrics-interval N  snapshot line every N completed trials\n"
               "                   (default 10; 0 = final line only)\n",
               argv0);
}

struct Options {
  std::size_t runs = 12;
  unsigned threads = 0;
  std::uint64_t seed = 0xACF17EE7ULL;
  long budget_hours = 24;
  const char* jsonl_path = nullptr;
  bool fast_world = false;
  bool attacks = false;
  bool feedback = false;
  std::string corpus_dir;
  bool serve = false;
  std::uint16_t serve_port = 0;
  std::size_t workers = 0;
  std::string connect_host;
  std::uint16_t connect_port = 0;
  std::string checkpoint;
  std::size_t stop_after = 0;
  std::size_t kill_worker_after = 0;
  const char* metrics_path = nullptr;
  std::size_t metrics_interval = 10;
};

struct Campaign {
  fleet::TrialPlan plan;
  fleet::WorldFactory factory;
  std::string world_tag;
};

/// Both sides of the socket rebuild the identical campaign from their own
/// flags; only the fingerprint crosses the wire.  A non-null registry is
/// threaded into the world factory so every trial publishes its scheduler /
/// bus totals; it must outlive every world the factory builds.
Campaign build_campaign(const Options& options, metrics::Registry* registry = nullptr) {
  if (options.attacks) {
    // The scenario catalog: one arm per attack family against the full
    // vehicle, each trial shipping its IDS evaluation back as digest
    // findings, so the merged matrix is identical in-process and remote.
    std::vector<attacks::AttackArm> arms = attacks::standard_attack_arms();
    std::vector<std::string> labels;
    for (const attacks::AttackArm& arm : arms) labels.push_back(arm.label);
    return {fleet::TrialPlan(labels, options.runs, options.seed),
            attacks::attack_world_factory(std::move(arms), registry), "attacks"};
  }
  if (options.feedback) {
    // Coverage-guided campaigns on the unlock testbench: same two predicate
    // arms as the blind-random default, but each trial is one complete
    // feedback loop (novelty map -> corpus -> sequence mutator).
    feedback::FeedbackArm weak;  // predicate defaults to single_id_and_byte
    feedback::FeedbackArm hardened;
    hardened.config.predicate = vehicle::UnlockPredicate::id_byte_and_length();
    return {fleet::TrialPlan({"feedback weak", "feedback hardened"}, options.runs,
                             options.seed, std::chrono::hours(options.budget_hours)),
            feedback::feedback_world_factory({weak, hardened}, registry,
                                             options.corpus_dir),
            "unlock-feedback"};
  }
  if (options.fast_world) {
    fuzzer::FuzzConfig fast = fuzzer::FuzzConfig::around_id(0x215, 3);
    fast.tx_period = std::chrono::microseconds(250);
    return {fleet::TrialPlan({"weak", "hardened"}, options.runs, options.seed),
            fleet::unlock_world_factory(
                {{vehicle::UnlockPredicate::single_id_and_byte(), fast,
                  std::chrono::minutes(5)},
                 {vehicle::UnlockPredicate::id_byte_and_length(), fast,
                  std::chrono::minutes(5)}},
                registry),
            "unlock-fast"};
  }
  return {fleet::TrialPlan({"Single id and byte", "Single id, byte plus data length"},
                           options.runs, options.seed,
                           std::chrono::hours(options.budget_hours)),
          fleet::unlock_world_factory(
              {{vehicle::UnlockPredicate::single_id_and_byte()},
               {vehicle::UnlockPredicate::id_byte_and_length()}},
              registry),
          "unlock"};
}

/// Owns the --metrics-out plumbing for one process: the registry every layer
/// publishes into, the output stream, and the JSONL writer.  Declared before
/// the Campaign in each driver so the registry outlives the worlds.
struct MetricsSink {
  metrics::Registry registry;
  std::ofstream file;
  std::optional<metrics::SnapshotWriter> writer;

  /// Opens `path` ("-" = stderr) and arms the writer; returns false (with a
  /// message) when the file cannot be created.
  bool open(const char* path, const std::string& source) {
    if (std::strcmp(path, "-") == 0) {
      writer.emplace(std::cerr, source);
      return true;
    }
    file.open(path);
    if (!file) {
      std::fprintf(stderr, "fleet_run: cannot open %s\n", path);
      return false;
    }
    writer.emplace(file, source);
    return true;
  }

  /// Final campaign totals: one closing snapshot line plus an operator table
  /// on stderr.  `snap` is the merged fleet-wide view for the distributed
  /// path, or the local registry's snapshot otherwise.
  void finish(const metrics::RegistrySnapshot& snap) {
    double sim_seconds = 0.0;
    for (const auto& timer : snap.timers)
      if (timer.name == "fleet.trial.sim_seconds") sim_seconds = timer.sum;
    if (writer) writer->write(snap, sim_seconds);
    std::fprintf(stderr, "%s", metrics::render_table(snap).c_str());
  }
};

int report_and_export(const Campaign& campaign, const std::vector<fleet::TrialOutcome>& outcomes,
                      const Options& options) {
  const fleet::FleetReport report = fleet::aggregate(campaign.plan, outcomes);

  analysis::TextTable table({"Arm", "n", "Detected", "Timeout", "Error", "Mean (s)",
                             "95% CI (s)", "Median (s)"});
  for (const fleet::ArmReport& arm : report.arms) {
    const util::Interval ci = arm.ci95();
    std::string ci_cell = "[";
    ci_cell += analysis::format_number(ci.lo, 1);
    ci_cell += ", ";
    ci_cell += analysis::format_number(ci.hi, 1);
    ci_cell += "]";
    table.add_row({arm.label, std::to_string(arm.trials), std::to_string(arm.detected),
                   std::to_string(arm.timeouts), std::to_string(arm.errors),
                   analysis::format_number(arm.time_to_failure.mean(), 1), ci_cell,
                   analysis::format_number(arm.median(), 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("total frames sent: %llu across %zu trials (%zu errors)\n",
              static_cast<unsigned long long>(report.frames_sent), report.trials,
              report.errors);

  if (campaign.world_tag == "attacks") {
    // Per-(attack, detector) matrix, rebuilt from the outcomes' digest
    // findings — the same numbers whether the outcomes came from the local
    // executor or from remote workers.
    const std::vector<ids::ArmIdsReport> evals =
        attacks::merge_outcome_evals(campaign.plan, outcomes);
    for (const ids::ArmIdsReport& arm : evals) {
      std::printf("Attack \"%s\": %zu trials, %llu attack / %llu legitimate frames\n",
                  arm.label.c_str(), arm.trials,
                  static_cast<unsigned long long>(arm.attack_frames),
                  static_cast<unsigned long long>(arm.legit_frames));
      analysis::TextTable matrix(
          {"Detector", "Prec", "Recall", "F1", "FPR", "AUC", "Detected"});
      for (const ids::ArmIdsReport::PerDetector& det : arm.detectors) {
        matrix.add_row({det.merged.name, analysis::format_number(det.merged.precision(), 3),
                        analysis::format_number(det.merged.recall(), 3),
                        analysis::format_number(det.merged.f1(), 3),
                        analysis::format_number(det.merged.false_positive_rate(), 4),
                        analysis::format_number(det.merged.auc(), 3),
                        std::to_string(det.trials_detected) + "/" +
                            std::to_string(arm.trials)});
      }
      std::printf("%s\n", matrix.to_string().c_str());
    }
  }

  if (options.jsonl_path) {
    if (std::strcmp(options.jsonl_path, "-") == 0) {
      fleet::JsonlExporter(std::cout).write_all(campaign.plan, outcomes);
    } else {
      std::ofstream file(options.jsonl_path);
      if (!file) {
        std::fprintf(stderr, "fleet_run: cannot open %s\n", options.jsonl_path);
        return 1;
      }
      fleet::JsonlExporter(file).write_all(campaign.plan, outcomes);
      std::printf("wrote %zu trial records to %s\n", outcomes.size(), options.jsonl_path);
    }
  }
  return report.errors == 0 ? 0 : 1;
}

/// Fork+exec this binary as a worker against 127.0.0.1:port, forwarding the
/// campaign flags so the child rebuilds the identical plan.
pid_t spawn_worker(const Options& options, std::uint16_t port) {
  const std::string endpoint = "127.0.0.1:" + std::to_string(port);
  const std::string runs = std::to_string(options.runs);
  const std::string threads = std::to_string(options.threads);
  char seed[32];
  std::snprintf(seed, sizeof seed, "0x%llx", static_cast<unsigned long long>(options.seed));
  const std::string budget = std::to_string(options.budget_hours);

  std::vector<const char*> args = {"/proc/self/exe", "--connect", endpoint.c_str(),
                                   "--runs",         runs.c_str(), "--threads",
                                   threads.c_str(),  "--seed",     seed,
                                   "--budget-hours", budget.c_str()};
  if (options.fast_world) args.push_back("--fast-world");
  if (options.attacks) args.push_back("--attacks");
  if (options.feedback) args.push_back("--feedback");
  if (!options.corpus_dir.empty()) {
    args.push_back("--corpus-dir");
    args.push_back(options.corpus_dir.c_str());
  }
  args.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv("/proc/self/exe", const_cast<char* const*>(args.data()));
    std::perror("fleet_run: execv");
    std::_Exit(127);
  }
  return pid;
}

int run_coordinator(const Options& options) {
  MetricsSink metrics;
  const Campaign campaign = build_campaign(options);
  fleet::remote::CoordinatorConfig config;
  config.port = options.serve_port;
  config.world_tag = campaign.world_tag;
  config.checkpoint_path = options.checkpoint;
  config.stop_after_completed = options.stop_after;
  if (options.fast_world) {
    // Smoke scale: steal from a SIGKILLed worker within a second.
    config.lease_ttl = std::chrono::milliseconds(1'000);
    config.max_batch = 2;
  }
  if (options.metrics_path) {
    if (!metrics.open(options.metrics_path, "coordinator")) return 1;
    config.registry = &metrics.registry;
    config.snapshot_writer = &*metrics.writer;
    config.snapshot_interval = options.metrics_interval;
  }

  fleet::remote::Coordinator coordinator(campaign.plan, config);
  std::printf("fleet_run: serving %zu trials (%zu arms x %zu replicas) on 127.0.0.1:%u\n",
              campaign.plan.trial_count(), campaign.plan.arm_count(),
              campaign.plan.replicas(), coordinator.port());
  if (coordinator.stats().resumed_done > 0 || coordinator.stats().resumed_leased > 0) {
    std::printf("fleet_run: resumed checkpoint: %zu done, %zu re-queued in-flight\n",
                coordinator.stats().resumed_done, coordinator.stats().resumed_leased);
  }
  std::fflush(stdout);

  std::vector<pid_t> children;
  for (std::size_t i = 0; i < options.workers; ++i) {
    const pid_t pid = spawn_worker(options, coordinator.port());
    if (pid < 0) {
      std::perror("fleet_run: fork");
      return 1;
    }
    children.push_back(pid);
  }

  if (options.kill_worker_after > 0 && !children.empty()) {
    const pid_t victim = children.front();
    const std::size_t after = options.kill_worker_after;
    // `killed` lives in the closure: the coordinator invokes this callback
    // from serve(), long after this block's scope has ended.
    coordinator.set_on_trial_done([victim, after, killed = false](std::size_t done) mutable {
      if (killed || done < after) return;
      killed = true;
      std::fprintf(stderr, "fleet_run: SIGKILL worker pid %d after %zu completions\n",
                   static_cast<int>(victim), done);
      ::kill(victim, SIGKILL);
    });
  }

  fleet::ProgressReporter progress;
  if (options.metrics_path) progress.attach_registry(&metrics.registry);
  const std::vector<fleet::TrialOutcome> outcomes = coordinator.serve(&progress);

  // Campaign over (or paused): reap the children.  Workers exit on the
  // Shutdown frame; anything still alive after that gets escalated.
  for (const pid_t pid : children) {
    int status = 0;
    for (int spins = 0; spins < 100; ++spins) {
      if (::waitpid(pid, &status, WNOHANG) != 0) break;
      ::usleep(20'000);
      if (spins == 50) ::kill(pid, SIGTERM);
    }
    if (::waitpid(pid, &status, WNOHANG) == 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
    }
  }

  const fleet::remote::CoordinatorStats& stats = coordinator.stats();
  std::printf("fleet_run: %zu/%zu trials done | leases issued %llu expired %llu "
              "released %llu | trials stolen %llu | duplicates %llu\n",
              coordinator.done_count(), campaign.plan.trial_count(),
              static_cast<unsigned long long>(stats.leases.leases_issued),
              static_cast<unsigned long long>(stats.leases.leases_expired),
              static_cast<unsigned long long>(stats.leases.leases_released),
              static_cast<unsigned long long>(stats.leases.trials_stolen),
              static_cast<unsigned long long>(stats.leases.duplicate_completions));

  // serve() already wrote the closing merged snapshot line (after the linger
  // window drained the workers' final heartbeats); here we only render the
  // operator table of that same merged view.
  if (options.metrics_path) {
    std::fprintf(stderr, "%s", metrics::render_table(coordinator.merged_metrics()).c_str());
  }

  if (options.stop_after > 0 && coordinator.done_count() < campaign.plan.trial_count()) {
    std::printf("fleet_run: paused after %zu trials; checkpoint at %s\n",
                coordinator.done_count(), options.checkpoint.c_str());
    return 0;  // an orderly pause is a success, not a failed campaign
  }
  return report_and_export(campaign, outcomes, options);
}

int run_worker(const Options& options) {
  // Workers always collect: whether the coordinator wants a merged metrics
  // view is its decision (--metrics-out on the serve side), and the
  // heartbeat totals cost next to nothing to carry.
  metrics::Registry registry;
  const Campaign campaign = build_campaign(options, &registry);
  fleet::remote::WorkerConfig config;
  config.host = options.connect_host;
  config.port = options.connect_port;
  config.threads = options.threads;
  config.world_tag = campaign.world_tag;
  config.name = "pid-" + std::to_string(static_cast<long>(::getpid()));
  config.registry = &registry;
  if (options.fast_world) config.heartbeat_period = std::chrono::milliseconds(200);

  fleet::remote::Worker worker(campaign.plan, campaign.factory, config);
  const fleet::remote::WorkerResult result = worker.run();
  std::fprintf(stderr,
               "fleet_run[%s]: %s after %zu trials, %llu leases "
               "(%llu reconnect attempts)%s%s\n",
               config.name.c_str(),
               result.exit == fleet::remote::WorkerExit::kCampaignComplete ? "complete"
               : result.exit == fleet::remote::WorkerExit::kCoordinatorPaused ? "paused"
               : result.exit == fleet::remote::WorkerExit::kRejected          ? "rejected"
               : result.exit == fleet::remote::WorkerExit::kCancelled        ? "cancelled"
                                                                              : "gave up",
               result.trials_run, static_cast<unsigned long long>(result.leases_served),
               static_cast<unsigned long long>(result.reconnect.attempts),
               result.message.empty() ? "" : ": ", result.message.c_str());
  return (result.exit == fleet::remote::WorkerExit::kCampaignComplete ||
          result.exit == fleet::remote::WorkerExit::kCoordinatorPaused)
             ? 0
             : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const auto take = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) != 0) return nullptr;
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (const char* runs_arg = take("--runs")) {
      options.runs = static_cast<std::size_t>(std::strtoul(runs_arg, nullptr, 0));
    } else if (const char* threads_arg = take("--threads")) {
      options.threads = static_cast<unsigned>(std::strtoul(threads_arg, nullptr, 0));
    } else if (const char* seed_arg = take("--seed")) {
      options.seed = std::strtoull(seed_arg, nullptr, 0);
    } else if (const char* budget_arg = take("--budget-hours")) {
      options.budget_hours = std::strtol(budget_arg, nullptr, 0);
    } else if (const char* jsonl_arg = take("--jsonl")) {
      options.jsonl_path = jsonl_arg;
    } else if (std::strcmp(argv[i], "--fast-world") == 0) {
      options.fast_world = true;
    } else if (std::strcmp(argv[i], "--attacks") == 0) {
      options.attacks = true;
    } else if (std::strcmp(argv[i], "--feedback") == 0) {
      options.feedback = true;
    } else if (const char* corpus_arg = take("--corpus-dir")) {
      options.corpus_dir = corpus_arg;
    } else if (const char* serve_arg = take("--serve")) {
      options.serve = true;
      options.serve_port = static_cast<std::uint16_t>(std::strtoul(serve_arg, nullptr, 0));
    } else if (const char* workers_arg = take("--workers")) {
      options.workers = static_cast<std::size_t>(std::strtoul(workers_arg, nullptr, 0));
    } else if (const char* connect_arg = take("--connect")) {
      const char* colon = std::strrchr(connect_arg, ':');
      if (colon == nullptr || colon == connect_arg) {
        usage(argv[0]);
        return 2;
      }
      options.connect_host.assign(connect_arg, static_cast<std::size_t>(colon - connect_arg));
      options.connect_port = static_cast<std::uint16_t>(std::strtoul(colon + 1, nullptr, 0));
    } else if (const char* checkpoint_arg = take("--checkpoint")) {
      options.checkpoint = checkpoint_arg;
    } else if (const char* stop_arg = take("--stop-after")) {
      options.stop_after = static_cast<std::size_t>(std::strtoul(stop_arg, nullptr, 0));
    } else if (const char* kill_arg = take("--kill-worker-after")) {
      options.kill_worker_after =
          static_cast<std::size_t>(std::strtoul(kill_arg, nullptr, 0));
    } else if (const char* metrics_arg = take("--metrics-out")) {
      options.metrics_path = metrics_arg;
    } else if (const char* metrics_interval_arg = take("--metrics-interval")) {
      options.metrics_interval =
          static_cast<std::size_t>(std::strtoul(metrics_interval_arg, nullptr, 0));
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (options.runs == 0 || options.budget_hours <= 0 ||
      (options.serve && !options.connect_host.empty()) ||
      (!options.corpus_dir.empty() && !options.feedback) ||
      (options.feedback && options.fast_world) ||
      (options.attacks && (options.feedback || options.fast_world))) {
    usage(argv[0]);
    return 2;
  }

  if (options.serve) return run_coordinator(options);
  if (!options.connect_host.empty()) return run_worker(options);

  MetricsSink metrics;
  if (options.metrics_path && !metrics.open(options.metrics_path, "local")) return 1;
  const Campaign campaign =
      build_campaign(options, options.metrics_path ? &metrics.registry : nullptr);
  fleet::ExecutorConfig executor_config;
  executor_config.threads = options.threads;
  if (options.metrics_path) {
    executor_config.registry = &metrics.registry;
    executor_config.snapshot_writer = &*metrics.writer;
    executor_config.snapshot_interval = options.metrics_interval;
  }
  fleet::Executor executor(executor_config);
  fleet::ProgressReporter progress;
  if (options.metrics_path) progress.attach_registry(&metrics.registry);
  std::printf("fleet_run: %zu trials (%zu arms x %zu replicas), %u threads, seed 0x%llx\n",
              campaign.plan.trial_count(), campaign.plan.arm_count(),
              campaign.plan.replicas(), executor.effective_threads(campaign.plan.trial_count()),
              static_cast<unsigned long long>(options.seed));
  const std::vector<fleet::TrialOutcome> outcomes =
      executor.run(campaign.plan, campaign.factory, &progress);
  if (options.metrics_path) metrics.finish(metrics.registry.snapshot());
  return report_and_export(campaign, outcomes, options);
}
