// Capture / log / replay round trip: record the idling target vehicle
// (paper Table II is such a capture), write a candump-compatible log, read
// it back, and replay it onto a fresh bus — the workflow behind both
// reverse engineering and targeted fuzzing.
//
//   $ capture_replay [log-path]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "fuzzer/mutator.hpp"
#include "sim/scheduler.hpp"
#include "trace/candump_log.hpp"
#include "trace/replay.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "vehicle/vehicle.hpp"

int main(int argc, char** argv) {
  using namespace acf;
  const char* path = argc > 1 ? argv[1] : "/tmp/acf_capture.log";

  // --- capture two seconds of the idling vehicle --------------------------
  sim::Scheduler scheduler;
  vehicle::Vehicle car(scheduler);
  trace::CaptureTap tap(car.body_bus(), "obd-tap");
  scheduler.run_for(std::chrono::seconds(2));
  std::printf("captured %zu frames from the body bus in 2 s\n", tap.size());
  for (std::size_t i = 0; i < 5 && i < tap.size(); ++i) {
    std::printf("  %s\n", trace::to_candump_line(tap.frames()[i]).c_str());
  }

  // --- write + read back the candump log ----------------------------------
  {
    std::ofstream out(path);
    trace::write_candump(out, tap.frames());
  }
  std::ifstream in(path);
  std::vector<std::string> errors;
  const auto loaded = trace::read_candump(in, &errors);
  std::printf("log round trip: wrote %zu, read %zu, parse errors %zu -> %s\n", tap.size(),
              loaded.size(), errors.size(),
              (loaded.size() == tap.size() && errors.empty()) ? "OK" : "MISMATCH");

  // --- replay onto a fresh bus at double speed -----------------------------
  sim::Scheduler replay_scheduler;
  can::VirtualBus fresh_bus(replay_scheduler);
  trace::CaptureTap replay_tap(fresh_bus, "verify-tap");
  transport::VirtualBusTransport injector(fresh_bus, "replayer");
  trace::ReplayOptions options;
  options.time_scale = 0.5;  // double speed
  trace::Replayer replayer(replay_scheduler, injector, loaded, options);
  replayer.start();
  replay_scheduler.run_for(std::chrono::seconds(2));
  std::printf("replayed %llu frames at 2x speed; fresh bus observed %zu\n",
              static_cast<unsigned long long>(replayer.frames_sent()), replay_tap.size());

  // --- the capture doubles as a mutation corpus ----------------------------
  auto generator = fuzzer::MutationGenerator::from_capture(loaded);
  std::printf("mutation corpus of %zu frames; first 5 mutants:\n", generator.corpus_size());
  for (int i = 0; i < 5; ++i) {
    std::printf("  %s\n", generator.next()->to_string().c_str());
  }
  std::remove(path);
  return 0;
}
