// Attack tour: the classic CAN attacks next to which the paper positions
// fuzzing — replay, spoofing, DoS flood, and XCP tampering — each run
// against the simulated vehicle with its observable effect reported.
//
//   $ attack_demo
#include <cstdio>

#include "attacks/attacks.hpp"
#include "oracle/bus_oracles.hpp"
#include "sim/scheduler.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "vehicle/vehicle.hpp"

int main() {
  using namespace acf;

  std::puts("=== 1. Replay attack (Hoppe & Dittman, ref [10]) =====================");
  {
    sim::Scheduler scheduler;
    vehicle::UnlockTestbench bench(scheduler);  // unauthenticated BCM
    transport::VirtualBusTransport attacker(bench.bus(), "attacker");
    attacks::ReplayAttack replay(scheduler, bench.bus(), attacker,
                                 can::FilterBank{can::IdMaskFilter::exact(0x215)});
    replay.record_for(std::chrono::seconds(1));
    bench.head_unit().request_unlock();
    scheduler.run_for(std::chrono::seconds(2));
    bench.bcm().force_lock();
    std::printf("recorded %zu command frame(s); doors locked again\n",
                replay.recorded_frames());
    replay.replay();
    scheduler.run_for(std::chrono::milliseconds(100));
    std::printf("after replay: doors %s\n\n",
                bench.bcm().unlocked() ? "UNLOCKED (replay works on plain CAN)" : "locked");
  }

  std::puts("=== 2. Signal spoofing ===============================================");
  {
    sim::Scheduler scheduler;
    can::VirtualBus bus(scheduler);
    vehicle::EngineEcu engine(scheduler, bus);
    vehicle::InstrumentCluster cluster(scheduler, bus);
    scheduler.run_for(std::chrono::seconds(2));
    std::printf("true RPM %.0f, gauge shows %.0f\n", engine.rpm(), cluster.rpm_gauge());
    transport::VirtualBusTransport attacker(bus, "attacker");
    const dbc::Database db = dbc::target_vehicle_database();
    attacks::SpoofAttack spoof(scheduler, attacker,
                               *db.by_id(dbc::kMsgEngineData)->encode({{"EngineRPM", 0.0}}),
                               std::chrono::milliseconds(2));
    spoof.start();
    scheduler.run_for(std::chrono::seconds(1));
    std::printf("spoofing RPM=0 at 5x the ECM rate: true RPM %.0f, gauge shows %.0f\n\n",
                engine.rpm(), cluster.rpm_gauge());
    spoof.stop();
  }

  std::puts("=== 3. DoS flood (highest-priority id) ===============================");
  {
    sim::Scheduler scheduler;
    vehicle::VehicleConfig config;
    config.gateway_filtering = false;
    vehicle::Vehicle car(scheduler, config);
    oracle::HeartbeatOracle heartbeat(car.powertrain_bus(), dbc::kMsgEngineData,
                                      std::chrono::milliseconds(10));
    scheduler.run_for(std::chrono::seconds(2));
    transport::VirtualBusTransport attacker(car.powertrain_bus(), "attacker");
    attacks::DosFlood flood(scheduler, attacker);
    flood.start();
    scheduler.run_for(std::chrono::seconds(2));
    const auto observation = heartbeat.poll(scheduler.now());
    std::printf("flood running: bus load %.0f%%, heartbeat oracle: %s\n\n",
                car.powertrain_bus().stats().load(scheduler.now()) * 100.0,
                observation ? observation->detail.c_str() : "quiet");
    flood.stop();
  }

  std::puts("=== 4. XCP tamper (the monitoring channel as attack surface) =========");
  {
    sim::Scheduler scheduler;
    can::VirtualBus bus(scheduler);
    vehicle::InstrumentCluster cluster(scheduler, bus);
    transport::VirtualBusTransport sender(bus, "ecm");
    const dbc::Database db = dbc::target_vehicle_database();
    sender.send(*db.by_id(dbc::kMsgEngineData)->encode({{"EngineRPM", -2000.0}}));
    scheduler.run_for(std::chrono::milliseconds(5));
    std::printf("implausible frame lit the MIL: %s\n", cluster.mil_on() ? "yes" : "no");

    transport::VirtualBusTransport attacker(bus, "attacker");
    attacks::XcpTamper tamper(scheduler, attacker, vehicle::InstrumentCluster::kXcpRxId,
                              vehicle::InstrumentCluster::kXcpTxId);
    const auto rpm_bytes = tamper.peek(vehicle::InstrumentCluster::kXcpAddrRpm, 4);
    if (rpm_bytes) {
      std::printf("XCP peek of the gauge memory: %d rpm (attacker reads internals)\n",
                  static_cast<std::int32_t>(*xcp::XcpMaster::as_u32(rpm_bytes)));
    }
    const std::uint8_t douse[1] = {0x00};
    tamper.overwrite(vehicle::InstrumentCluster::kXcpAddrFlags, douse);
    std::printf("XCP write to the status flags: MIL now %s (evidence doused)\n",
                cluster.mil_on() ? "on" : "OFF");
  }
  return 0;
}
