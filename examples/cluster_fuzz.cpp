// Fuzzing the instrument cluster until it bricks (paper §VI / Fig. 9).
//
// Runs a targeted campaign against the cluster on the body bus, stops at the
// first component crash, prints the finding, proves it persists across a
// power cycle, then reproduces the failure by replaying the recorded frame
// window against a factory-fresh cluster.
//
//   $ cluster_fuzz [seed]
#include <cstdio>
#include <cstdlib>

#include "fuzzer/campaign.hpp"
#include "fuzzer/generator.hpp"
#include "oracle/vehicle_oracles.hpp"
#include "sim/scheduler.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "vehicle/instrument_cluster.hpp"

int main(int argc, char** argv) {
  using namespace acf;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 99;

  sim::Scheduler scheduler;
  can::VirtualBus bus(scheduler);
  vehicle::InstrumentCluster cluster(scheduler, bus);
  transport::VirtualBusTransport fuzzer_port(bus, "fuzzer");

  oracle::CompositeOracle oracles;
  auto crash_oracle = std::make_unique<oracle::ComponentCrashOracle>();
  crash_oracle->watch(cluster);
  oracles.add(std::move(crash_oracle));
  oracles.add(std::make_unique<oracle::ClusterStateOracle>(cluster));

  fuzzer::FuzzConfig config = fuzzer::FuzzConfig::full_random(seed);
  fuzzer::RandomGenerator generator(config);

  fuzzer::CampaignConfig campaign_config;
  campaign_config.max_duration = std::chrono::hours(1);
  fuzzer::FuzzCampaign campaign(scheduler, fuzzer_port, generator, &oracles, campaign_config);
  const auto& result = campaign.run();

  std::printf("campaign stopped (%s) after %llu frames, %.1f s simulated\n",
              fuzzer::to_string(result.reason),
              static_cast<unsigned long long>(result.frames_sent),
              sim::to_seconds(result.elapsed));
  for (const auto& finding : result.findings) {
    std::printf("  %s\n", finding.summary().c_str());
  }
  std::printf("cluster display: '%s', crash latched: %s\n", cluster.display_text().c_str(),
              cluster.crash_latched() ? "yes" : "no");

  // Power cycle — the MILs clear, the crash text does not (Fig. 9).
  cluster.power_cycle();
  scheduler.run_for(std::chrono::seconds(1));
  std::printf("after power cycle: display='%s', MIL=%d, crash latched: %s\n",
              cluster.display_text().c_str(), cluster.mil_on() ? 1 : 0,
              cluster.crash_latched() ? "yes" : "no");

  // Reproduce on a fresh unit from the recorded window.
  if (const fuzzer::Finding* failure = result.first_failure();
      failure != nullptr && !failure->recent_frames.empty()) {
    sim::Scheduler repro_scheduler;
    can::VirtualBus repro_bus(repro_scheduler);
    vehicle::InstrumentCluster fresh(repro_scheduler, repro_bus);
    transport::VirtualBusTransport injector(repro_bus, "replay");
    for (const auto& entry : failure->recent_frames) {
      injector.send(entry.frame);
      repro_scheduler.run_for(std::chrono::milliseconds(1));
    }
    repro_scheduler.run_for(std::chrono::milliseconds(10));
    std::printf("replay of the %zu-frame finding window on a fresh cluster: %s\n",
                failure->recent_frames.size(),
                fresh.crash_latched() ? "REPRODUCED (crash latched)" : "not reproduced");
  }
  return 0;
}
