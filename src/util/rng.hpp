// Deterministic pseudo-random number generation.
//
// Fuzz campaigns must be reproducible: a finding is only useful if the exact
// frame stream that triggered it can be regenerated from a seed (the paper
// resets the target and repeats runs; we additionally replay them).  All
// randomness in the library flows through Rng so that a single 64-bit seed
// fully determines a campaign.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace acf::util {

/// SplitMix64: used to expand a single 64-bit seed into the xoshiro state.
/// Passes BigCrush when used directly; here it is only the seed expander.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna).  Fast, high quality, tiny state;
/// deterministic across platforms (unlike std::mt19937 distributions).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept;

  /// Raw 64 random bits.
  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  /// bound == 0 is a contract violation; returns 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform in the inclusive range [lo, hi].  Requires lo <= hi.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform byte.
  std::uint8_t next_byte() noexcept { return static_cast<std::uint8_t>(next_u64() >> 56); }

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool next_bool(double p = 0.5) noexcept;

  /// Fills a span with uniform random bytes.
  void fill(std::span<std::uint8_t> out) noexcept;

  /// Uniformly chosen element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) noexcept {
    return items[static_cast<std::size_t>(next_below(items.size()))];
  }
  template <typename T>
  const T& pick(const std::vector<T>& items) noexcept {
    return items[static_cast<std::size_t>(next_below(items.size()))];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Splits off an independent child generator (for sub-components that must
  /// not perturb the parent stream).
  Rng split() noexcept;

  /// Raw generator state, for checkpointing: a generator restored with
  /// set_state emits exactly the stream the saved generator would have.
  const std::array<std::uint64_t, 4>& state() const noexcept { return s_; }
  void set_state(const std::array<std::uint64_t, 4>& state) noexcept {
    s_ = state;
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;  // keep xoshiro alive
  }

  /// UniformRandomBitGenerator interface for <algorithm> interop.
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next_u64(); }

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace acf::util
