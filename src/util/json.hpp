// Minimal JSON string plumbing shared by every JSONL emitter in the repo:
// the fleet trial exporter, the metrics snapshot stream, and the bench
// harnesses all escape with the same rules so their outputs stay pure-ASCII
// and byte-stable.  json_unescape is the strict inverse used by the
// metrics snapshot parser (and fuzzed through it).
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace acf::util {

/// Escapes for a double-quoted JSON string: `"` `\` `\n` `\r` `\t` get
/// two-character escapes; every other control character AND every
/// non-ASCII byte becomes \u00XX, so emitted lines are pure-ASCII JSON
/// whatever bytes the name carried.
std::string json_escape(std::string_view text);

/// Strict inverse of json_escape: accepts the escapes json_escape emits
/// plus any \uXXXX with XXXX <= 0x00FF (decoded to the raw byte).  Returns
/// nullopt on a bare control character, truncated escape, unknown escape,
/// or \u above 0x00FF (this is a byte-transport format, not full Unicode).
std::optional<std::string> json_unescape(std::string_view text);

/// Shortest round-trip decimal for a finite double (std::to_chars): parsing
/// the result recovers the exact bit pattern, so encode∘decode is a fixed
/// point.  Non-finite values render as "0" — JSON has no NaN/Inf and the
/// snapshot writer guards against producing them upstream.
std::string json_double(double value);

}  // namespace acf::util
