// Fixed-capacity ring buffer.  Used for bounded capture windows (e.g. the
// bus-silence oracle keeps only the most recent activity) so long campaigns
// run in constant memory.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace acf::util {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : items_(capacity == 0 ? 1 : capacity) {}

  /// Appends, evicting the oldest element when full.
  void push(T value) {
    items_[head_] = std::move(value);
    head_ = (head_ + 1) % items_.size();
    if (size_ < items_.size()) ++size_;
  }

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return items_.size(); }
  bool empty() const noexcept { return size_ == 0; }
  bool full() const noexcept { return size_ == items_.size(); }

  /// Element i counted from the oldest retained entry (0 = oldest).
  const T& at(std::size_t i) const { return items_[index_of(i)]; }
  T& at(std::size_t i) { return items_[index_of(i)]; }

  const T& newest() const { return at(size_ - 1); }
  const T& oldest() const { return at(0); }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

  /// Copies the retained window, oldest first.
  std::vector<T> snapshot() const {
    std::vector<T> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) out.push_back(at(i));
    return out;
  }

 private:
  std::size_t index_of(std::size_t i) const noexcept {
    return (head_ + items_.size() - size_ + i) % items_.size();
  }

  std::vector<T> items_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace acf::util
