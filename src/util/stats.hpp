// Lightweight statistics used by the analysis layer: running moments,
// percentiles, histograms and a chi-square uniformity test (used to validate
// the fuzzer's byte distribution, Figs 4/5 of the paper).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace acf::util {

/// Welford online mean/variance accumulator.  Numerically stable; O(1) space.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

  /// Merges another accumulator (parallel Welford combine).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Linear-interpolated percentile of an unsorted sample, p in [0,1].
/// Copies and sorts; intended for end-of-campaign reporting, not hot paths.
double percentile(std::span<const double> sample, double p);

/// Sample median (percentile 0.5): robust location for the heavy-tailed
/// geometric time-to-unlock distributions where a 12-sample mean wanders.
double median(std::span<const double> sample);

/// In-place percentile: selects with nth_element instead of copying and
/// fully sorting — O(n) expected, no allocation.  Reorders `sample`; use on
/// hot aggregation paths where the sample buffer is owned and disposable.
/// Same interpolation as percentile(), so results are identical.
double percentile_in_place(std::span<double> sample, double p);

/// In-place median (percentile_in_place at 0.5).
double median_in_place(std::span<double> sample);

/// Closed interval, e.g. a confidence interval around a mean.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  double width() const noexcept { return hi - lo; }
  double half_width() const noexcept { return width() / 2.0; }
};

/// Two-sided 95% confidence interval for the mean of the accumulated
/// sample: mean ± t(n-1, 0.975) · s/√n, with the exact Student-t quantile
/// for small n and the normal 1.96 beyond the table.  Degenerates to
/// {mean, mean} for fewer than two samples.
Interval confidence_interval_95(const RunningStats& stats);

/// Convenience overload: accumulates the span in O(n) with no copy, then
/// applies the Student-t interval above.
Interval confidence_interval_95(std::span<const double> sample);

/// Wilson score 95% interval for a binomial proportion of `successes` out
/// of `trials`.  Unlike the Wald/Student-t interval it stays inside [0,1]
/// and keeps coverage near p = 0 and p = 1 — exactly the regime of
/// detection rates (a detector catching 0/20 or 20/20 trials must not get a
/// degenerate zero-width interval).  Returns {0,1} for zero trials.
Interval wilson_interval_95(std::size_t successes, std::size_t trials);

/// Pearson chi-square statistic for observed counts against a uniform
/// expectation.  Returns the statistic; dof = counts.size() - 1.
double chi_square_uniform(std::span<const std::uint64_t> counts);

/// True if a chi-square statistic is below the critical value at roughly the
/// given significance for the dof.  Supports alpha = 0.01 and 0.001 via the
/// Wilson-Hilferty approximation (adequate for dof >= 10 as used here).
bool chi_square_accepts_uniform(double statistic, std::size_t dof, double alpha = 0.001);

/// Fixed-width histogram over [lo, hi); out-of-range values clamp to the
/// edge bins so no sample is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::span<const std::uint64_t> counts() const noexcept { return counts_; }
  std::uint64_t total() const noexcept { return total_; }
  double bin_low(std::size_t bin) const noexcept;
  double bin_width() const noexcept { return width_; }

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace acf::util
