// Hexadecimal formatting / parsing helpers shared by trace logs, the fuzzer
// output tables and the UDS layer.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace acf::util {

/// "1C 21 17 71" style rendering (upper-case, space separated) as used by the
/// paper's capture tables (Table II / Table IV).
std::string hex_bytes(std::span<const std::uint8_t> bytes, char sep = ' ');

/// Fixed-width upper-case hex of an integer, e.g. hex_u32(0x43a, 4) == "043A".
std::string hex_u32(std::uint32_t value, int width);

/// Parses "1C", "0x1c" etc.  Returns nullopt on any malformed input.
std::optional<std::uint8_t> parse_hex_byte(std::string_view text);

/// Parses a whitespace- or separator-delimited hex byte string
/// ("1C 21 17" or "1C2117").  Returns nullopt on malformed input.
std::optional<std::vector<std::uint8_t>> parse_hex_bytes(std::string_view text);

/// Parses an unsigned hex integer (no 0x prefix required).
std::optional<std::uint32_t> parse_hex_u32(std::string_view text);

}  // namespace acf::util
