#include "util/hex.hpp"

#include <cctype>

namespace acf::util {

namespace {

constexpr char kDigits[] = "0123456789ABCDEF";

int nibble_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string hex_bytes(std::span<const std::uint8_t> bytes, char sep) {
  std::string out;
  if (bytes.empty()) return out;
  out.reserve(bytes.size() * 3);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (i != 0 && sep != '\0') out.push_back(sep);
    out.push_back(kDigits[bytes[i] >> 4]);
    out.push_back(kDigits[bytes[i] & 0xf]);
  }
  return out;
}

std::string hex_u32(std::uint32_t value, int width) {
  std::string out;
  for (int shift = (width - 1) * 4; shift >= 0; shift -= 4) {
    out.push_back(kDigits[(value >> shift) & 0xf]);
  }
  return out;
}

std::optional<std::uint8_t> parse_hex_byte(std::string_view text) {
  if (text.starts_with("0x") || text.starts_with("0X")) text.remove_prefix(2);
  if (text.empty() || text.size() > 2) return std::nullopt;
  std::uint32_t value = 0;
  for (char c : text) {
    const int nib = nibble_value(c);
    if (nib < 0) return std::nullopt;
    value = value * 16 + static_cast<std::uint32_t>(nib);
  }
  return static_cast<std::uint8_t>(value);
}

std::optional<std::vector<std::uint8_t>> parse_hex_bytes(std::string_view text) {
  std::vector<std::uint8_t> out;
  int pending = -1;  // high nibble awaiting its partner
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == ':' || c == ',' || c == '.') {
      if (pending >= 0) return std::nullopt;  // odd nibble before separator
      continue;
    }
    const int nib = nibble_value(c);
    if (nib < 0) return std::nullopt;
    if (pending < 0) {
      pending = nib;
    } else {
      out.push_back(static_cast<std::uint8_t>(pending * 16 + nib));
      pending = -1;
    }
  }
  if (pending >= 0) return std::nullopt;
  return out;
}

std::optional<std::uint32_t> parse_hex_u32(std::string_view text) {
  if (text.starts_with("0x") || text.starts_with("0X")) text.remove_prefix(2);
  if (text.empty() || text.size() > 8) return std::nullopt;
  std::uint32_t value = 0;
  for (char c : text) {
    const int nib = nibble_value(c);
    if (nib < 0) return std::nullopt;
    value = (value << 4) | static_cast<std::uint32_t>(nib);
  }
  return value;
}

}  // namespace acf::util
