#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace acf::util {

void RunningStats::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::span<const double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 1.0);
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> sample) { return percentile(sample, 0.5); }

double percentile_in_place(std::span<double> sample, double p) {
  if (sample.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double rank = p * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  const auto nth = sample.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(sample.begin(), nth, sample.end());
  const double lo_value = sample[lo];
  if (frac == 0.0 || lo + 1 >= sample.size()) return lo_value;
  // After nth_element the tail holds everything >= the lo-th order
  // statistic, so the (lo+1)-th is the tail's minimum — no second select.
  const double hi_value = *std::min_element(nth + 1, sample.end());
  return lo_value * (1.0 - frac) + hi_value * frac;
}

double median_in_place(std::span<double> sample) {
  return percentile_in_place(sample, 0.5);
}

Interval confidence_interval_95(const RunningStats& stats) {
  const double mean = stats.mean();
  if (stats.count() < 2) return {mean, mean};
  // Two-sided 97.5% Student-t quantiles by degrees of freedom 1..30, then
  // coarser breakpoints converging on the normal 1.96.
  static constexpr double kT975[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  const std::size_t dof = stats.count() - 1;
  double t;
  if (dof <= 30) {
    t = kT975[dof - 1];
  } else if (dof <= 40) {
    t = 2.021;
  } else if (dof <= 60) {
    t = 2.000;
  } else if (dof <= 120) {
    t = 1.980;
  } else {
    t = 1.960;
  }
  const double half = t * stats.stddev() / std::sqrt(static_cast<double>(stats.count()));
  return {mean - half, mean + half};
}

Interval confidence_interval_95(std::span<const double> sample) {
  RunningStats stats;
  for (const double x : sample) stats.add(x);
  return confidence_interval_95(stats);
}

Interval wilson_interval_95(std::size_t successes, std::size_t trials) {
  if (trials == 0) return {0.0, 1.0};
  constexpr double z = 1.959964;  // normal 97.5% quantile
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(std::min(successes, trials)) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

double chi_square_uniform(std::span<const std::uint64_t> counts) {
  if (counts.empty()) return 0.0;
  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  if (total == 0) return 0.0;
  const double expected = static_cast<double>(total) / static_cast<double>(counts.size());
  double stat = 0.0;
  for (auto c : counts) {
    const double diff = static_cast<double>(c) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

bool chi_square_accepts_uniform(double statistic, std::size_t dof, double alpha) {
  if (dof == 0) return true;
  // Wilson-Hilferty: chi2_crit ~ dof * (1 - 2/(9 dof) + z * sqrt(2/(9 dof)))^3.
  const double z = (alpha <= 0.001) ? 3.090 : (alpha <= 0.01 ? 2.326 : 1.645);
  const double k = static_cast<double>(dof);
  const double term = 1.0 - 2.0 / (9.0 * k) + z * std::sqrt(2.0 / (9.0 * k));
  const double critical = k * term * term * term;
  return statistic <= critical;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins == 0 ? 1 : bins)),
      counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::add(double x) noexcept {
  double idx = (x - lo_) / width_;
  std::size_t bin = 0;
  if (idx >= static_cast<double>(counts_.size())) {
    bin = counts_.size() - 1;
  } else if (idx > 0.0) {
    bin = static_cast<std::size_t>(idx);
    if (bin >= counts_.size()) bin = counts_.size() - 1;
  }
  ++counts_[bin];
  ++total_;
}

double Histogram::bin_low(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin);
}

}  // namespace acf::util
