#include "util/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace acf::util {

void Fd::reset() noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

IoResult socket_read(int fd, std::span<std::uint8_t> buffer) noexcept {
  if (buffer.empty()) return {IoStatus::kOk, 0};
  for (;;) {
    const ssize_t n = ::recv(fd, buffer.data(), buffer.size(), 0);
    if (n > 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
    if (n == 0) return {IoStatus::kClosed, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return {IoStatus::kWouldBlock, 0};
    return {IoStatus::kError, 0};
  }
}

IoResult socket_write(int fd, std::span<const std::uint8_t> buffer) noexcept {
  if (buffer.empty()) return {IoStatus::kOk, 0};
  for (;;) {
    const ssize_t n = ::send(fd, buffer.data(), buffer.size(), MSG_NOSIGNAL);
    if (n >= 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return {IoStatus::kWouldBlock, 0};
    return {IoStatus::kError, 0};
  }
}

bool set_nonblocking(int fd) noexcept {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::optional<TcpListener> TcpListener::listen_loopback(std::uint16_t port, int backlog) {
  // CLOEXEC everywhere: the coordinator forks worker processes, and a
  // listener leaked into a worker keeps the port alive after the
  // coordinator dies — reconnecting workers then block forever on a socket
  // nobody will ever accept, instead of being refused and giving up.
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return std::nullopt;
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    return std::nullopt;
  }
  if (::listen(fd.get(), backlog) != 0) return std::nullopt;
  if (!set_nonblocking(fd.get())) return std::nullopt;

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return std::nullopt;
  }
  TcpListener listener;
  listener.fd_ = std::move(fd);
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

std::optional<Fd> TcpListener::accept() noexcept {
  for (;;) {
    const int client = ::accept4(fd_.get(), nullptr, nullptr, SOCK_CLOEXEC);
    if (client >= 0) {
      Fd fd(client);
      if (!set_nonblocking(fd.get())) return std::nullopt;
      const int one = 1;
      ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return fd;
    }
    if (errno == EINTR) continue;
    return std::nullopt;  // EAGAIN and hard errors alike: nothing accepted
  }
}

std::optional<Fd> tcp_connect(const std::string& host, std::uint16_t port) noexcept {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return std::nullopt;

  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return std::nullopt;
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0) {
      const int one = 1;
      ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return fd;
    }
    if (errno == EINTR) continue;
    return std::nullopt;
  }
}

std::size_t PollSet::add(int fd, bool want_write) {
  PollEntry entry;
  entry.fd = fd;
  entry.want_write = want_write;
  entries_.push_back(entry);
  return entries_.size() - 1;
}

bool PollSet::wait(int timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(entries_.size());
  for (const PollEntry& entry : entries_) {
    pollfd pfd{};
    pfd.fd = entry.fd;
    pfd.events = POLLIN | (entry.want_write ? POLLOUT : 0);
    fds.push_back(pfd);
  }
  int rc;
  do {
    rc = ::poll(fds.data(), fds.size(), timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return false;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    entries_[i].readable = (fds[i].revents & POLLIN) != 0;
    entries_[i].writable = (fds[i].revents & POLLOUT) != 0;
    entries_[i].error = (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
  }
  return true;
}

}  // namespace acf::util
