// Minimal POSIX TCP helpers for the distributed fleet: an RAII descriptor,
// a loopback-friendly listener, connect, and chunked nonblocking I/O with
// explicit would-block/closed outcomes.  Everything is plain sockets — no
// event library — because the coordinator's poll loop and the worker's
// single connection need nothing more, and a dependency-free transport is
// what lets the campaign service run anywhere the fuzzer builds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace acf::util {

/// Owning file descriptor; closes on destruction, move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// Outcome of one nonblocking read/write step.
enum class IoStatus : std::uint8_t {
  kOk,          // made progress; `bytes` says how much
  kWouldBlock,  // no progress right now; retry after poll
  kClosed,      // orderly shutdown by the peer
  kError,       // hard socket error; connection is dead
};

struct IoResult {
  IoStatus status = IoStatus::kError;
  std::size_t bytes = 0;
};

/// Reads once into `buffer`; never blocks on a nonblocking socket.
IoResult socket_read(int fd, std::span<std::uint8_t> buffer) noexcept;

/// Writes once from `buffer` (MSG_NOSIGNAL: a dead peer yields kError, not
/// SIGPIPE); never blocks on a nonblocking socket.
IoResult socket_write(int fd, std::span<const std::uint8_t> buffer) noexcept;

bool set_nonblocking(int fd) noexcept;

/// TCP listener bound to 127.0.0.1 (the fleet's single-machine default;
/// cross-machine deployments front it with their own tunnel or firewall).
/// `port` 0 picks an ephemeral port, readable via port().
class TcpListener {
 public:
  static std::optional<TcpListener> listen_loopback(std::uint16_t port,
                                                    int backlog = 16);

  std::uint16_t port() const noexcept { return port_; }
  int fd() const noexcept { return fd_.get(); }

  /// Accepts one pending connection (nonblocking, already set nonblocking);
  /// nullopt when none is waiting.
  std::optional<Fd> accept() noexcept;

 private:
  Fd fd_;
  std::uint16_t port_ = 0;
};

/// Blocking connect to host:port; nullopt on failure.  The returned socket
/// is left in blocking mode; callers flip it with set_nonblocking as needed.
std::optional<Fd> tcp_connect(const std::string& host, std::uint16_t port) noexcept;

/// One registered descriptor of a PollSet cycle.
struct PollEntry {
  int fd = -1;
  bool want_write = false;  // always polls for readability
  bool readable = false;
  bool writable = false;
  bool error = false;  // HUP / ERR / NVAL
};

/// Thin wrapper over ::poll for the coordinator loop: register descriptors
/// each cycle, wait, then inspect the flags poll filled in.
class PollSet {
 public:
  void clear() { entries_.clear(); }
  /// Returns the index of the registered entry.
  std::size_t add(int fd, bool want_write);
  /// Waits up to `timeout_ms`; returns false on poll() failure.
  bool wait(int timeout_ms);
  const PollEntry& entry(std::size_t index) const { return entries_.at(index); }

 private:
  std::vector<PollEntry> entries_;
};

}  // namespace acf::util
