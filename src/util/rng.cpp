#include "util/rng.hpp"

#include <bit>

namespace acf::util {

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  // All-zero state would lock xoshiro at zero forever; SplitMix64 cannot
  // produce four zero outputs in a row, but guard against hand-rolled state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::next_in(std::uint64_t lo, std::uint64_t hi) noexcept {
  if (lo >= hi) return lo;
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next_u64();  // full 64-bit range
  return lo + next_below(span);
}

double Rng::next_double() noexcept {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

void Rng::fill(std::span<std::uint8_t> out) noexcept {
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    std::uint64_t word = next_u64();
    for (int b = 0; b < 8; ++b) {
      out[i++] = static_cast<std::uint8_t>(word & 0xff);
      word >>= 8;
    }
  }
  if (i < out.size()) {
    std::uint64_t word = next_u64();
    while (i < out.size()) {
      out[i++] = static_cast<std::uint8_t>(word & 0xff);
      word >>= 8;
    }
  }
}

Rng Rng::split() noexcept {
  Rng child(next_u64());
  return child;
}

}  // namespace acf::util
