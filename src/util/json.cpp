#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace acf::util {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: {
        // Escape control characters AND non-ASCII bytes: names can carry
        // arbitrary bytes, and a raw 0x80..0xFF byte is not valid UTF-8 on
        // its own — \u00XX keeps every emitted line pure-ASCII JSON.
        const auto byte = static_cast<unsigned char>(c);
        if (byte < 0x20 || byte >= 0x7F) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", byte);
          out += buffer;
        } else {
          out += c;
        }
      }
    }
  }
  return out;
}

namespace {

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::optional<std::string> json_unescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (static_cast<unsigned char>(c) < 0x20) return std::nullopt;
    if (c != '\\') {
      out += c;
      continue;
    }
    if (++i >= text.size()) return std::nullopt;
    switch (text[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (i + 4 >= text.size()) return std::nullopt;
        int code = 0;
        for (int k = 1; k <= 4; ++k) {
          const int h = hex_value(text[i + static_cast<std::size_t>(k)]);
          if (h < 0) return std::nullopt;
          code = code * 16 + h;
        }
        // Byte-transport format: only \u00XX round-trips to a raw byte.
        if (code > 0xFF) return std::nullopt;
        out += static_cast<char>(code);
        i += 4;
        break;
      }
      default: return std::nullopt;
    }
  }
  return out;
}

std::string json_double(double value) {
  if (!std::isfinite(value)) return "0";
  char buffer[40];
  const auto result = std::to_chars(buffer, buffer + sizeof buffer, value);
  return std::string(buffer, result.ptr);
}

}  // namespace acf::util
