// Minimal leveled logger.  The library itself is silent by default (a fuzz
// campaign generating a million frames must not drown stdout); examples and
// benches raise the level explicitly.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace acf::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide minimum level.  Thread-safe: the threshold is atomic and
/// may be raised or lowered while fleet workers are logging.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits one line to stderr if `level` passes the threshold.  Sink writes
/// are serialised, so lines from concurrent trials never interleave.
void log_line(LogLevel level, std::string_view component, std::string_view message);

/// Stream-style helper: ACF_LOG(kInfo, "fuzzer") << "sent " << n << " frames";
class LogStream {
 public:
  LogStream(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogStream() { log_line(level_, component_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    if (level_ >= log_level()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace acf::util

#define ACF_LOG(level, component) ::acf::util::LogStream(::acf::util::LogLevel::level, component)
