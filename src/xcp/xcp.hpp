// XCP-on-CAN (ASAM MCD-1 subset): the "Universal Measurement and Calibration
// Protocol that allows remote access to the internals of an ECU".
//
// The paper's oracle discussion cites XCP as a monitoring channel proposed
// in prior work — and immediately warns that "it provides another channel
// that may be exploited".  Both sides are modelled here: XcpPeekOracle (in
// the oracle layer) uses SHORT_UPLOAD to watch internal ECU state, and the
// attack library uses the *same* unauthenticated DOWNLOAD path to overwrite
// it.
//
// Commands (CTO, single CAN frame each):
//   0xFF CONNECT      0xFE DISCONNECT   0xFD GET_STATUS
//   0xF6 SET_MTA      0xF5 UPLOAD       0xF4 SHORT_UPLOAD
//   0xF0 DOWNLOAD
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "can/frame.hpp"
#include "sim/time.hpp"

namespace acf::xcp {

inline constexpr std::uint8_t kCmdConnect = 0xFF;
inline constexpr std::uint8_t kCmdDisconnect = 0xFE;
inline constexpr std::uint8_t kCmdGetStatus = 0xFD;
inline constexpr std::uint8_t kCmdSetMta = 0xF6;
inline constexpr std::uint8_t kCmdUpload = 0xF5;
inline constexpr std::uint8_t kCmdShortUpload = 0xF4;
inline constexpr std::uint8_t kCmdDownload = 0xF0;

inline constexpr std::uint8_t kPidPositive = 0xFF;
inline constexpr std::uint8_t kPidError = 0xFE;

inline constexpr std::uint8_t kErrCmdUnknown = 0x20;
inline constexpr std::uint8_t kErrCmdSyntax = 0x21;
inline constexpr std::uint8_t kErrOutOfRange = 0x22;
inline constexpr std::uint8_t kErrNotConnected = 0x24;  // session not open

/// Virtual address space backed by the ECU's live variables.
struct XcpMemoryMap {
  /// Reads one byte; nullopt for unmapped addresses.
  std::function<std::optional<std::uint8_t>(std::uint32_t)> read_byte =
      [](std::uint32_t) { return std::nullopt; };
  /// Writes one byte; false for unmapped/read-only addresses.
  std::function<bool(std::uint32_t, std::uint8_t)> write_byte =
      [](std::uint32_t, std::uint8_t) { return false; };
};

/// XCP slave endpoint (one per instrumented ECU).  Frames-in, frames-out;
/// the owner wires it to its bus node.
class XcpSlave {
 public:
  using SendFn = std::function<bool(const can::CanFrame&)>;

  /// `rx_id`/`tx_id`: the CTO/DTO id pair.
  XcpSlave(std::uint32_t rx_id, std::uint32_t tx_id, XcpMemoryMap memory, SendFn send);

  void handle_frame(const can::CanFrame& frame, sim::SimTime time);

  bool connected() const noexcept { return connected_; }
  std::uint64_t commands_served() const noexcept { return served_; }
  std::uint64_t errors_sent() const noexcept { return errors_; }
  std::uint64_t bytes_written() const noexcept { return bytes_written_; }

 private:
  void respond(std::vector<std::uint8_t> payload);
  void error(std::uint8_t code);

  std::uint32_t rx_id_;
  std::uint32_t tx_id_;
  XcpMemoryMap memory_;
  SendFn send_;
  bool connected_ = false;
  std::uint32_t mta_ = 0;  // memory transfer address
  std::uint64_t served_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t bytes_written_ = 0;
};

/// XCP master: issues commands and retains the last response.
class XcpMaster {
 public:
  using SendFn = std::function<bool(const can::CanFrame&)>;

  XcpMaster(std::uint32_t tx_id, std::uint32_t rx_id, SendFn send);

  void handle_frame(const can::CanFrame& frame, sim::SimTime time);

  bool connect();
  bool disconnect();
  bool short_upload(std::uint32_t address, std::uint8_t length);  // length <= 7
  bool set_mta(std::uint32_t address);
  bool upload(std::uint8_t length);
  bool download(std::uint32_t address, std::span<const std::uint8_t> data);  // <= 5 bytes

  /// Last response payload (PID byte stripped); nullopt if error/none.
  const std::optional<std::vector<std::uint8_t>>& last_data() const noexcept { return data_; }
  std::optional<std::uint8_t> last_error() const noexcept { return error_; }

  /// Decodes the first 4 bytes of a response as little-endian u32.
  static std::optional<std::uint32_t> as_u32(
      const std::optional<std::vector<std::uint8_t>>& data);

 private:
  bool send_command(std::vector<std::uint8_t> payload);

  std::uint32_t tx_id_;
  std::uint32_t rx_id_;
  SendFn send_;
  std::optional<std::vector<std::uint8_t>> data_;
  std::optional<std::uint8_t> error_;
  std::uint32_t pending_mta_ = 0;
};

}  // namespace acf::xcp
