#include "xcp/xcp.hpp"

namespace acf::xcp {

XcpSlave::XcpSlave(std::uint32_t rx_id, std::uint32_t tx_id, XcpMemoryMap memory, SendFn send)
    : rx_id_(rx_id), tx_id_(tx_id), memory_(std::move(memory)), send_(std::move(send)) {}

void XcpSlave::respond(std::vector<std::uint8_t> payload) {
  ++served_;
  if (const auto frame = can::CanFrame::data(tx_id_, payload)) send_(*frame);
}

void XcpSlave::error(std::uint8_t code) {
  ++errors_;
  if (const auto frame = can::CanFrame::data(tx_id_, {kPidError, code})) send_(*frame);
}

void XcpSlave::handle_frame(const can::CanFrame& frame, sim::SimTime) {
  if (frame.id() != rx_id_ || frame.is_remote() || frame.length() == 0) return;
  const auto payload = frame.payload();
  const std::uint8_t command = payload[0];

  switch (command) {
    case kCmdConnect:
      connected_ = true;
      // resource byte, comm mode, max CTO, max DTO(2), protocol ver, tp ver
      respond({kPidPositive, 0x01, 0x00, 8, 8, 0, 1, 1});
      return;
    case kCmdDisconnect:
      connected_ = false;
      respond({kPidPositive});
      return;
    default:
      break;
  }
  if (!connected_) {
    error(kErrNotConnected);
    return;
  }

  switch (command) {
    case kCmdGetStatus:
      respond({kPidPositive, 0x00, 0x00, 0x00, 0x00, 0x00});
      return;
    case kCmdSetMta: {
      // CMD res res ext addr[4] (little-endian address)
      if (payload.size() < 8) {
        error(kErrCmdSyntax);
        return;
      }
      mta_ = static_cast<std::uint32_t>(payload[4]) |
             (static_cast<std::uint32_t>(payload[5]) << 8) |
             (static_cast<std::uint32_t>(payload[6]) << 16) |
             (static_cast<std::uint32_t>(payload[7]) << 24);
      respond({kPidPositive});
      return;
    }
    case kCmdUpload: {
      if (payload.size() < 2 || payload[1] == 0 || payload[1] > 7) {
        error(kErrCmdSyntax);
        return;
      }
      std::vector<std::uint8_t> out = {kPidPositive};
      for (std::uint8_t i = 0; i < payload[1]; ++i) {
        const auto byte = memory_.read_byte(mta_ + i);
        if (!byte) {
          error(kErrOutOfRange);
          return;
        }
        out.push_back(*byte);
      }
      mta_ += payload[1];
      respond(std::move(out));
      return;
    }
    case kCmdShortUpload: {
      // CMD n res ext addr[4]
      if (payload.size() < 8 || payload[1] == 0 || payload[1] > 7) {
        error(kErrCmdSyntax);
        return;
      }
      const std::uint32_t address = static_cast<std::uint32_t>(payload[4]) |
                                    (static_cast<std::uint32_t>(payload[5]) << 8) |
                                    (static_cast<std::uint32_t>(payload[6]) << 16) |
                                    (static_cast<std::uint32_t>(payload[7]) << 24);
      std::vector<std::uint8_t> out = {kPidPositive};
      for (std::uint8_t i = 0; i < payload[1]; ++i) {
        const auto byte = memory_.read_byte(address + i);
        if (!byte) {
          error(kErrOutOfRange);
          return;
        }
        out.push_back(*byte);
      }
      mta_ = address + payload[1];
      respond(std::move(out));
      return;
    }
    case kCmdDownload: {
      // CMD n data[n]: writes n bytes at the MTA.  Deliberately no
      // authentication — the exploitable channel the paper warns about.
      if (payload.size() < 2 || payload[1] == 0 ||
          payload.size() < static_cast<std::size_t>(payload[1]) + 2) {
        error(kErrCmdSyntax);
        return;
      }
      for (std::uint8_t i = 0; i < payload[1]; ++i) {
        if (!memory_.write_byte(mta_ + i, payload[2 + i])) {
          error(kErrOutOfRange);
          return;
        }
        ++bytes_written_;
      }
      mta_ += payload[1];
      respond({kPidPositive});
      return;
    }
    default:
      error(kErrCmdUnknown);
  }
}

// ---------------------------------------------------------------- master --

XcpMaster::XcpMaster(std::uint32_t tx_id, std::uint32_t rx_id, SendFn send)
    : tx_id_(tx_id), rx_id_(rx_id), send_(std::move(send)) {}

void XcpMaster::handle_frame(const can::CanFrame& frame, sim::SimTime) {
  if (frame.id() != rx_id_ || frame.length() == 0) return;
  const auto payload = frame.payload();
  if (payload[0] == kPidPositive) {
    data_ = std::vector<std::uint8_t>(payload.begin() + 1, payload.end());
    error_.reset();
  } else if (payload[0] == kPidError && payload.size() >= 2) {
    error_ = payload[1];
    data_.reset();
  }
}

bool XcpMaster::send_command(std::vector<std::uint8_t> payload) {
  data_.reset();
  error_.reset();
  const auto frame = can::CanFrame::data(tx_id_, payload);
  return frame && send_(*frame);
}

bool XcpMaster::connect() { return send_command({kCmdConnect, 0x00}); }
bool XcpMaster::disconnect() { return send_command({kCmdDisconnect}); }

bool XcpMaster::short_upload(std::uint32_t address, std::uint8_t length) {
  return send_command({kCmdShortUpload, length, 0, 0,
                       static_cast<std::uint8_t>(address & 0xFF),
                       static_cast<std::uint8_t>((address >> 8) & 0xFF),
                       static_cast<std::uint8_t>((address >> 16) & 0xFF),
                       static_cast<std::uint8_t>((address >> 24) & 0xFF)});
}

bool XcpMaster::set_mta(std::uint32_t address) {
  return send_command({kCmdSetMta, 0, 0, 0, static_cast<std::uint8_t>(address & 0xFF),
                       static_cast<std::uint8_t>((address >> 8) & 0xFF),
                       static_cast<std::uint8_t>((address >> 16) & 0xFF),
                       static_cast<std::uint8_t>((address >> 24) & 0xFF)});
}

bool XcpMaster::upload(std::uint8_t length) { return send_command({kCmdUpload, length}); }

bool XcpMaster::download(std::uint32_t, std::span<const std::uint8_t> data) {
  // Caller must SET_MTA first (kept explicit to mirror the wire protocol).
  if (data.empty() || data.size() > 5) return false;
  std::vector<std::uint8_t> payload = {kCmdDownload,
                                       static_cast<std::uint8_t>(data.size())};
  payload.insert(payload.end(), data.begin(), data.end());
  return send_command(std::move(payload));
}

std::optional<std::uint32_t> XcpMaster::as_u32(
    const std::optional<std::vector<std::uint8_t>>& data) {
  if (!data || data->size() < 4) return std::nullopt;
  return static_cast<std::uint32_t>((*data)[0]) |
         (static_cast<std::uint32_t>((*data)[1]) << 8) |
         (static_cast<std::uint32_t>((*data)[2]) << 16) |
         (static_cast<std::uint32_t>((*data)[3]) << 24);
}

}  // namespace acf::xcp
