#include "security/mac.hpp"

#include <bit>
#include <cstring>

namespace acf::security {

namespace {

inline std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

struct SipState {
  std::uint64_t v0, v1, v2, v3;

  void round() {
    v0 += v1;
    v1 = std::rotl(v1, 13);
    v1 ^= v0;
    v0 = std::rotl(v0, 32);
    v2 += v3;
    v3 = std::rotl(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = std::rotl(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = std::rotl(v1, 17);
    v1 ^= v2;
    v2 = std::rotl(v2, 32);
  }
};

}  // namespace

std::uint64_t siphash24(const Key128& key, std::span<const std::uint8_t> data) {
  const std::uint64_t k0 = load_le64(key.data());
  const std::uint64_t k1 = load_le64(key.data() + 8);
  SipState s{0x736f6d6570736575ULL ^ k0, 0x646f72616e646f6dULL ^ k1,
             0x6c7967656e657261ULL ^ k0, 0x7465646279746573ULL ^ k1};

  const std::size_t full_blocks = data.size() / 8;
  for (std::size_t block = 0; block < full_blocks; ++block) {
    const std::uint64_t m = load_le64(data.data() + block * 8);
    s.v3 ^= m;
    s.round();
    s.round();
    s.v0 ^= m;
  }
  // Final block: remaining bytes plus the length in the top byte.
  std::uint8_t tail[8] = {};
  const std::size_t remaining = data.size() % 8;
  std::memcpy(tail, data.data() + full_blocks * 8, remaining);
  tail[7] = static_cast<std::uint8_t>(data.size() & 0xFF);
  const std::uint64_t m = load_le64(tail);
  s.v3 ^= m;
  s.round();
  s.round();
  s.v0 ^= m;

  s.v2 ^= 0xFF;
  s.round();
  s.round();
  s.round();
  s.round();
  return s.v0 ^ s.v1 ^ s.v2 ^ s.v3;
}

const char* to_string(VerifyResult result) noexcept {
  switch (result) {
    case VerifyResult::kOk: return "ok";
    case VerifyResult::kBadLength: return "bad-length";
    case VerifyResult::kBadMac: return "bad-mac";
    case VerifyResult::kReplayed: return "replayed";
  }
  return "?";
}

std::uint32_t FrameAuthenticator::compute_mac(std::uint32_t id, std::uint32_t counter,
                                              std::uint8_t command) const {
  std::uint8_t material[9];
  material[0] = static_cast<std::uint8_t>(id & 0xFF);
  material[1] = static_cast<std::uint8_t>((id >> 8) & 0xFF);
  material[2] = static_cast<std::uint8_t>((id >> 16) & 0xFF);
  material[3] = static_cast<std::uint8_t>((id >> 24) & 0xFF);
  material[4] = static_cast<std::uint8_t>(counter & 0xFF);
  material[5] = static_cast<std::uint8_t>((counter >> 8) & 0xFF);
  material[6] = static_cast<std::uint8_t>((counter >> 16) & 0xFF);
  material[7] = static_cast<std::uint8_t>((counter >> 24) & 0xFF);
  material[8] = command;
  return static_cast<std::uint32_t>(siphash24(key_, material) & 0xFFFFFFFF);
}

can::CanFrame FrameAuthenticator::sign_command(std::uint32_t id, std::uint8_t command) {
  ++tx_counter_;
  const std::uint32_t mac = compute_mac(id, tx_counter_, command);
  const std::uint8_t bytes[7] = {
      command,
      static_cast<std::uint8_t>(tx_counter_ & 0xFF),
      static_cast<std::uint8_t>(mac & 0xFF),
      static_cast<std::uint8_t>((mac >> 8) & 0xFF),
      static_cast<std::uint8_t>((mac >> 16) & 0xFF),
      static_cast<std::uint8_t>((mac >> 24) & 0xFF),
      0x00,
  };
  ++stats_.signed_frames;
  return can::CanFrame::data(id, bytes).value_or(can::CanFrame{});
}

VerifyResult FrameAuthenticator::verify_command(const can::CanFrame& frame) {
  if (frame.length() != 7) {
    ++stats_.bad_length;
    return VerifyResult::kBadLength;
  }
  const auto payload = frame.payload();
  const std::uint8_t command = payload[0];
  const std::uint8_t counter_low = payload[1];
  const std::uint32_t mac = static_cast<std::uint32_t>(payload[2]) |
                            (static_cast<std::uint32_t>(payload[3]) << 8) |
                            (static_cast<std::uint32_t>(payload[4]) << 16) |
                            (static_cast<std::uint32_t>(payload[5]) << 24);

  // Reconstruct the full 32-bit counter from its low byte within the
  // acceptance window ahead of the last accepted value.
  for (std::uint32_t step = 1; step <= window_; ++step) {
    const std::uint32_t candidate = rx_counter_ + step;
    if (static_cast<std::uint8_t>(candidate & 0xFF) != counter_low) continue;
    if (compute_mac(frame.id(), candidate, command) == mac) {
      rx_counter_ = candidate;
      last_command_ = command;
      ++stats_.accepted;
      return VerifyResult::kOk;
    }
  }
  // Distinguish replay (a previously valid counter) from forgery, for
  // diagnostics: check a window behind as well.
  for (std::uint32_t step = 0; step <= window_ && step <= rx_counter_; ++step) {
    const std::uint32_t candidate = rx_counter_ - step;
    if (static_cast<std::uint8_t>(candidate & 0xFF) != counter_low) continue;
    if (compute_mac(frame.id(), candidate, command) == mac) {
      ++stats_.replayed;
      return VerifyResult::kReplayed;
    }
  }
  ++stats_.bad_mac;
  return VerifyResult::kBadMac;
}

}  // namespace acf::security
