// CAN message authentication: a truncated-MAC + rolling-counter scheme of
// the family surveyed by Nowdehi et al. (cited in the paper §IV as the
// state of the art that "no scheme meets all the criteria for deployment").
//
// Layout of an authenticated command frame (DLC 7, fits classic CAN):
//   byte 0      command
//   byte 1      rolling counter (low 8 bits of a 32-bit session counter)
//   bytes 2..5  32-bit truncated SipHash-2-4 over (id, counter32, command)
//   byte 6      reserved (0)
//
// The defense ablation (bench_ablation_auth) measures what this does to the
// paper's Table V attack: the fuzzer's per-frame success probability drops
// from 2^-19.2 to ~2^-51, i.e. from minutes to geological time.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "can/frame.hpp"

namespace acf::security {

using Key128 = std::array<std::uint8_t, 16>;

/// SipHash-2-4 (Aumasson & Bernstein), the reference short-input PRF.
std::uint64_t siphash24(const Key128& key, std::span<const std::uint8_t> data);

enum class VerifyResult : std::uint8_t {
  kOk,
  kBadLength,   // frame shape wrong
  kBadMac,      // MAC mismatch (forgery / fuzz)
  kReplayed,    // counter not ahead of the last accepted one
};

const char* to_string(VerifyResult result) noexcept;

struct AuthStats {
  std::uint64_t signed_frames = 0;
  std::uint64_t accepted = 0;
  std::uint64_t bad_length = 0;
  std::uint64_t bad_mac = 0;
  std::uint64_t replayed = 0;
};

/// Signs and verifies command frames.  Sender and receiver each hold one,
/// sharing the key; the receiver tracks the highest accepted counter and
/// accepts a bounded look-ahead window (lost frames must not wedge it).
class FrameAuthenticator {
 public:
  explicit FrameAuthenticator(Key128 key, std::uint8_t counter_window = 16)
      : key_(key), window_(counter_window) {}

  /// Builds a signed command frame on `id`, consuming one counter value.
  can::CanFrame sign_command(std::uint32_t id, std::uint8_t command);

  /// Verifies a received frame (shape, MAC, counter freshness) and, on
  /// success, advances the receive counter.
  VerifyResult verify_command(const can::CanFrame& frame);

  /// Command byte of a frame that verified kOk (call after verify).
  std::uint8_t last_command() const noexcept { return last_command_; }

  const AuthStats& stats() const noexcept { return stats_; }
  std::uint32_t tx_counter() const noexcept { return tx_counter_; }
  std::uint32_t rx_counter() const noexcept { return rx_counter_; }

  /// Expected MAC for a given (id, counter, command) — exposed for tests.
  std::uint32_t compute_mac(std::uint32_t id, std::uint32_t counter,
                            std::uint8_t command) const;

 private:
  Key128 key_;
  std::uint8_t window_;
  std::uint32_t tx_counter_ = 0;
  std::uint32_t rx_counter_ = 0;
  std::uint8_t last_command_ = 0;
  AuthStats stats_;
};

}  // namespace acf::security
