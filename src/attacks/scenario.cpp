#include "attacks/scenario.hpp"

#include <algorithm>
#include <array>
#include <sstream>
#include <stdexcept>

#include "dbc/target_vehicle_db.hpp"
#include "obd/obd.hpp"
#include "xcp/xcp.hpp"

namespace acf::attacks {

void AttackScenario::disarm(AttackContext& ctx) {
  for (const sim::EventId event : events_) ctx.scheduler.cancel(event);
  events_.clear();
}

transport::CanTransport& AttackScenario::injection_transport(AttackContext& ctx) const {
  return spec_.bus == AttackBus::kPowertrain ? ctx.powertrain : ctx.body;
}

AttackBus observed_bus(const AttackSpec& spec) noexcept {
  if (spec.family != AttackFamily::kGatewayProbe) return spec.bus;
  return spec.bus == AttackBus::kPowertrain ? AttackBus::kBody : AttackBus::kPowertrain;
}

namespace {

const dbc::Database& target_db() {
  static const dbc::Database db = dbc::target_vehicle_database();
  return db;
}

/// The forged frame a spec describes: its payload bytes when given, else
/// zeros at the id's DBC-declared DLC (8 for undeclared ids).
std::optional<can::CanFrame> forged_frame(const AttackSpec& spec) {
  std::vector<std::uint8_t> payload;
  if (spec.payload_len > 0) {
    payload.assign(spec.payload.begin(), spec.payload.begin() + spec.payload_len);
  } else {
    const dbc::MessageDef* def = target_db().by_id(spec.target_id);
    payload.assign(def ? def->dlc : 8, 0x00);
  }
  return can::CanFrame::data(spec.target_id, payload);
}

std::uint64_t injected(AttackContext& ctx) {
  return ctx.powertrain.stats().frames_sent + ctx.body.stats().frames_sent;
}

// ------------------------------------------------------------- flood ------

/// Arbitration starvation: `burst` maximum-priority frames per period.  The
/// id-0 flood wins every contest, so legitimate traffic only fits in the
/// gaps the attacker leaves.
class FloodScenario final : public AttackScenario {
 public:
  using AttackScenario::AttackScenario;

  void arm(AttackContext& ctx) override {
    const auto frame = forged_frame(spec_);
    if (!frame) return;
    schedule(ctx, period(), [this, ctx, flood = *frame]() mutable {
      for (std::uint16_t i = 0; i < spec_.burst; ++i) injection_transport(ctx).send(flood);
    });
  }

  std::optional<oracle::Observation> impact(AttackContext& ctx) const override {
    std::ostringstream detail;
    detail << "bus flood: " << injected(ctx) << " frames at id 0x" << std::hex
           << spec_.target_id << " on the " << to_string(spec_.bus) << " bus";
    return oracle::Observation{oracle::Verdict::kSuspicious, detail.str(),
                               ctx.scheduler.now()};
  }
};

// ------------------------------------------------------------- spoof ------

/// Out-cadencing a live periodic signal with forged data; last-value-wins
/// consumers follow whichever sender wrote most recently, and the attacker
/// writes more often.
class SpoofScenario final : public AttackScenario {
 public:
  using AttackScenario::AttackScenario;

  void arm(AttackContext& ctx) override {
    const auto frame = forged_frame(spec_);
    if (!frame) return;
    schedule(ctx, period(), [this, ctx, forged = *frame]() mutable {
      injection_transport(ctx).send(forged);
    });
    // Sample the victim gauge against the engine's real state: a sustained
    // split is the attack's observable success.
    schedule(ctx, std::chrono::milliseconds(10), [this, ctx] {
      const double deviation =
          ctx.vehicle.cluster().rpm_gauge() - ctx.vehicle.engine().rpm();
      if (deviation < -500.0 || deviation > 500.0) {
        if (!deceived_) {
          deceived_ = true;
          deceived_at_ = ctx.scheduler.now();
        }
      }
    });
  }

  std::optional<oracle::Observation> impact(AttackContext& ctx) const override {
    if (deceived_) {
      std::ostringstream detail;
      detail << "cluster gauge follows forged id 0x" << std::hex << spec_.target_id
             << std::dec << " (first deceived at " << sim::format_millis(deceived_at_)
             << " ms)";
      return oracle::Observation{oracle::Verdict::kFailure, detail.str(), deceived_at_};
    }
    return oracle::Observation{oracle::Verdict::kSuspicious,
                               "spoof frames injected without observable gauge split",
                               ctx.scheduler.now()};
  }

 private:
  bool deceived_ = false;
  sim::SimTime deceived_at_{0};
};

// -------------------------------------------------------- masquerade ------

/// Period- and payload-matched clone of a live id: the tap remembers the
/// victim's last transmitted payload and re-emits it at the victim's own
/// cadence (optionally overriding the first payload_len bytes), so content
/// detectors see nothing and only timing is left to notice the doubled rate.
class MasqueradeScenario final : public AttackScenario {
 public:
  using AttackScenario::AttackScenario;

  void prepare(AttackContext& ctx) override {
    injection_transport(ctx).set_rx_callback(
        [this](const can::CanFrame& frame, sim::SimTime) {
          if (frame.id() != spec_.target_id) return;
          last_payload_.assign(frame.payload().begin(), frame.payload().end());
        });
  }

  void arm(AttackContext& ctx) override {
    schedule(ctx, period(), [this, ctx]() mutable {
      if (last_payload_.empty()) return;
      std::vector<std::uint8_t> payload = last_payload_;
      for (std::size_t i = 0; i < spec_.payload_len && i < payload.size(); ++i) {
        payload[i] = spec_.payload[i];
      }
      if (const auto clone = can::CanFrame::data(spec_.target_id, payload)) {
        if (injection_transport(ctx).send(*clone)) ++cloned_;
      }
    });
  }

  std::optional<oracle::Observation> impact(AttackContext& ctx) const override {
    std::ostringstream detail;
    detail << "masqueraded " << cloned_ << " payload-matched frames of id 0x" << std::hex
           << spec_.target_id;
    return oracle::Observation{oracle::Verdict::kSuspicious, detail.str(),
                               ctx.scheduler.now()};
  }

 private:
  std::vector<std::uint8_t> last_payload_;
  std::uint64_t cloned_ = 0;
};

// ------------------------------------------------------------ replay ------

/// Hoppe & Dittman's window lift: record the command id during the benign
/// window, replay the recording cyclically later.  Succeeds when a replayed
/// command re-actuates the door lock.
class ReplayScenario final : public AttackScenario {
 public:
  using AttackScenario::AttackScenario;

  void prepare(AttackContext& ctx) override {
    injection_transport(ctx).set_rx_callback(
        [this](const can::CanFrame& frame, sim::SimTime) {
          if (frame.id() != spec_.target_id || recorded_.size() >= 64) return;
          if (armed_) return;  // the window closed when the attack started
          recorded_.push_back(frame);
        });
  }

  void arm(AttackContext& ctx) override {
    armed_ = true;
    unlock_baseline_ = ctx.vehicle.bcm().unlock_events();
    if (recorded_.empty()) return;
    schedule(ctx, period(), [this, ctx]() mutable {
      injection_transport(ctx).send(recorded_[next_++ % recorded_.size()]);
    });
  }

  std::optional<oracle::Observation> impact(AttackContext& ctx) const override {
    const std::uint64_t unlocks = ctx.vehicle.bcm().unlock_events() - unlock_baseline_;
    std::ostringstream detail;
    if (unlocks > 0) {
      detail << "replayed command window re-actuated unlock " << unlocks << " times ("
             << recorded_.size() << " frames captured)";
      return oracle::Observation{oracle::Verdict::kFailure, detail.str(),
                                 ctx.scheduler.now()};
    }
    detail << "replayed " << recorded_.size() << " captured frames without actuation";
    return oracle::Observation{oracle::Verdict::kSuspicious, detail.str(),
                               ctx.scheduler.now()};
  }

 private:
  std::vector<can::CanFrame> recorded_;
  std::size_t next_ = 0;
  std::uint64_t unlock_baseline_ = 0;
  bool armed_ = false;
};

// -------------------------------------------------------- suspension ------

/// ECU suspension: power the victim down, then impersonate its periodic id
/// at the matched cadence — the bus sees an uninterrupted (but forged)
/// stream.  The victim here is the ABS module (kMsgWheelSpeeds sender).
class SuspensionScenario final : public AttackScenario {
 public:
  using AttackScenario::AttackScenario;

  void arm(AttackContext& ctx) override {
    ctx.vehicle.abs().power_off();
    const auto frame = forged_frame(spec_);
    if (!frame) return;
    schedule(ctx, period(), [this, ctx, forged = *frame]() mutable {
      if (injection_transport(ctx).send(forged)) ++impersonated_;
    });
  }

  std::optional<oracle::Observation> impact(AttackContext& ctx) const override {
    std::ostringstream detail;
    detail << "victim ECU suspended; " << impersonated_
           << " impersonation frames of id 0x" << std::hex << spec_.target_id;
    const auto verdict =
        impersonated_ > 0 ? oracle::Verdict::kFailure : oracle::Verdict::kSuspicious;
    return oracle::Observation{verdict, detail.str(), ctx.scheduler.now()};
  }

 private:
  std::uint64_t impersonated_ = 0;
};

// ----------------------------------------------------------- bus-off ------

/// Bus-off forcing: repeated transmit errors charged to the victim push its
/// TEC past 255 (fault confinement silences it); the attacker then owns the
/// victim's id.  Errors are injected through the bus's error-state channel
/// (`force_tx_errors`), the model's stand-in for the bit-level dominant
/// overwrite of Cho & Shin's bus-off attack.
class BusOffScenario final : public AttackScenario {
 public:
  using AttackScenario::AttackScenario;

  void arm(AttackContext& ctx) override {
    const can::NodeId victim = victim_node(ctx);
    const auto frame = forged_frame(spec_);
    schedule(ctx, period(), [this, ctx, victim, frame]() mutable {
      can::VirtualBus& bus = spec_.bus == AttackBus::kPowertrain
                                 ? ctx.vehicle.powertrain_bus()
                                 : ctx.vehicle.body_bus();
      bus.force_tx_errors(victim, spec_.burst);
      // The off state itself can be shorter than the tick (auto-recovery is
      // ~2.8 ms at 500 kb/s), so latch on the cumulative bus-off event
      // count instead of sampling the transient mode.
      if (bus.error_state(victim).bus_off_events() > 0 && !victim_off_) {
        victim_off_ = true;
        victim_off_at_ = ctx.scheduler.now();
      }
      if (frame) injection_transport(ctx).send(*frame);
    });
  }

  std::optional<oracle::Observation> impact(AttackContext& ctx) const override {
    if (victim_off_) {
      std::ostringstream detail;
      detail << "victim driven to bus-off at " << sim::format_millis(victim_off_at_)
             << " ms; attacker owns id 0x" << std::hex << spec_.target_id;
      return oracle::Observation{oracle::Verdict::kFailure, detail.str(), victim_off_at_};
    }
    return oracle::Observation{oracle::Verdict::kSuspicious,
                               "transmit errors charged without reaching bus-off",
                               ctx.scheduler.now()};
  }

 private:
  can::NodeId victim_node(AttackContext& ctx) const {
    return spec_.bus == AttackBus::kPowertrain ? ctx.vehicle.engine().node_id()
                                               : ctx.vehicle.bcm().node_id();
  }

  bool victim_off_ = false;
  sim::SimTime victim_off_at_{0};
};

// ----------------------------------------------------- gateway probe ------

/// Gateway traversal sweep from the exposed bus: alternates ids the
/// diagnostic whitelist is expected to pass with random ids it must block,
/// and counts what actually made it to the far side.
class GatewayProbeScenario final : public AttackScenario {
 public:
  using AttackScenario::AttackScenario;

  void arm(AttackContext& ctx) override {
    baseline_ = traversed(ctx);
    schedule(ctx, period(), [this, ctx]() mutable {
      std::uint32_t id = 0;
      switch (probe_++ % 3) {
        case 0: id = dbc::kUdsEngineRequest; break;
        case 1: id = obd::kObdFunctionalRequest; break;
        default: id = static_cast<std::uint32_t>(ctx.rng.next_below(0x800)); break;
      }
      std::array<std::uint8_t, 8> payload{};
      ctx.rng.fill(payload);
      if (const auto frame = can::CanFrame::data(id, payload)) {
        injection_transport(ctx).send(*frame);
      }
    });
  }

  std::optional<oracle::Observation> impact(AttackContext& ctx) const override {
    const std::uint64_t through = traversed(ctx) - baseline_;
    std::ostringstream detail;
    detail << probe_ << " probes injected, " << through << " traversed the gateway";
    return oracle::Observation{oracle::Verdict::kSuspicious, detail.str(),
                               ctx.scheduler.now()};
  }

 private:
  std::uint64_t traversed(AttackContext& ctx) const {
    const vehicle::GatewayStats& stats = ctx.vehicle.gateway().stats();
    return spec_.bus == AttackBus::kBody ? stats.forwarded_b_to_p
                                         : stats.forwarded_p_to_b;
  }

  std::uint64_t baseline_ = 0;
  std::uint64_t probe_ = 0;
};

// ------------------------------------------------------- uds session ------

/// Diagnostic-session abuse against a UDS server: session escalation, a
/// SecurityAccess seed request followed by RNG-driven wrong keys, tester
/// present, and DID read/write attempts — the scan pattern of an attacker
/// with OBD-port access and no credentials.
class UdsSessionScenario final : public AttackScenario {
 public:
  using AttackScenario::AttackScenario;

  void arm(AttackContext& ctx) override {
    schedule(ctx, period(), [this, ctx]() mutable {
      std::array<std::uint8_t, 8> payload{};
      switch (step_++ % 6) {
        case 0: payload = {0x02, 0x10, 0x03}; break;  // extended session
        case 1: payload = {0x02, 0x27, 0x01}; break;  // request seed
        case 2:                                       // wrong key attempt
          payload = {0x06, 0x27, 0x02,
                     ctx.rng.next_byte(), ctx.rng.next_byte(),
                     ctx.rng.next_byte(), ctx.rng.next_byte()};
          break;
        case 3: payload = {0x02, 0x3E, 0x00}; break;              // tester present
        case 4: payload = {0x03, 0x22, 0xF1, 0x90}; break;        // read DID
        default:                                                  // write DID
          payload = {0x05, 0x2E, 0xF1, 0x90, ctx.rng.next_byte()};
          break;
      }
      if (const auto frame = can::CanFrame::data(spec_.target_id, payload)) {
        injection_transport(ctx).send(*frame);
      }
    });
  }

  std::optional<oracle::Observation> impact(AttackContext& ctx) const override {
    std::ostringstream detail;
    detail << "diagnostic session attack: " << step_ << " requests to id 0x" << std::hex
           << spec_.target_id;
    return oracle::Observation{oracle::Verdict::kSuspicious, detail.str(),
                               ctx.scheduler.now()};
  }

 private:
  std::uint64_t step_ = 0;
};

// ---------------------------------------------------------- OBD scan ------

/// OBD-II reconnaissance on the functional id: mode 01 PID sweep with
/// interleaved DTC and VIN requests — the paper's "diagnostic protocols are
/// a documented, vehicle-independent attack surface" angle.
class ObdScanScenario final : public AttackScenario {
 public:
  using AttackScenario::AttackScenario;

  void arm(AttackContext& ctx) override {
    schedule(ctx, period(), [this, ctx]() mutable {
      std::array<std::uint8_t, 8> payload{};
      switch (step_ % 8) {
        case 6: payload = {0x01, 0x03}; break;        // mode 03: stored DTCs
        case 7: payload = {0x02, 0x09, 0x02}; break;  // mode 09: VIN
        default:
          payload = {0x02, 0x01, static_cast<std::uint8_t>(ctx.rng.next_below(0x60))};
          break;
      }
      ++step_;
      if (const auto frame = can::CanFrame::data(spec_.target_id, payload)) {
        injection_transport(ctx).send(*frame);
      }
    });
  }

  std::optional<oracle::Observation> impact(AttackContext& ctx) const override {
    std::ostringstream detail;
    detail << "OBD scan: " << step_ << " functional requests";
    return oracle::Observation{oracle::Verdict::kSuspicious, detail.str(),
                               ctx.scheduler.now()};
  }

 private:
  std::uint64_t step_ = 0;
};

// -------------------------------------------------------- XCP tamper ------

/// XCP memory tamper as a scripted state machine (CONNECT, SET_MTA,
/// DOWNLOAD, repeat) against the instrument cluster's calibration slave:
/// each write forces the MIL flag on, the "extra monitoring capabilities
/// may be used by the attackers" scenario.
class XcpTamperScenario final : public AttackScenario {
 public:
  using AttackScenario::AttackScenario;

  void prepare(AttackContext& ctx) override {
    transport::CanTransport& transport = injection_transport(ctx);
    master_.emplace(spec_.target_id, spec_.target_id + 1,
                    [&transport](const can::CanFrame& frame) { return transport.send(frame); });
    transport.set_rx_callback([this](const can::CanFrame& frame, sim::SimTime time) {
      master_->handle_frame(frame, time);
    });
  }

  void arm(AttackContext& ctx) override {
    schedule(ctx, period(), [this, ctx]() mutable {
      const std::uint32_t address = vehicle::InstrumentCluster::kXcpAddrFlags;
      switch (step_++ % 3) {
        case 0: master_->connect(); break;
        case 1: master_->set_mta(address); break;
        default: {
          const std::array<std::uint8_t, 1> mil_on = {0x01};
          master_->download(address, mil_on);
          break;
        }
      }
    });
  }

  std::optional<oracle::Observation> impact(AttackContext& ctx) const override {
    if (ctx.vehicle.cluster().mil_on()) {
      return oracle::Observation{oracle::Verdict::kFailure,
                                 "MIL forced on through the XCP calibration channel",
                                 ctx.scheduler.now()};
    }
    std::ostringstream detail;
    detail << "XCP tamper: " << step_ << " commands without acknowledged write";
    return oracle::Observation{oracle::Verdict::kSuspicious, detail.str(),
                               ctx.scheduler.now()};
  }

 private:
  std::optional<xcp::XcpMaster> master_;
  std::uint64_t step_ = 0;
};

}  // namespace

std::unique_ptr<AttackScenario> make_scenario(const AttackSpec& spec) {
  switch (spec.family) {
    case AttackFamily::kFlood: return std::make_unique<FloodScenario>(spec);
    case AttackFamily::kSpoof: return std::make_unique<SpoofScenario>(spec);
    case AttackFamily::kMasquerade: return std::make_unique<MasqueradeScenario>(spec);
    case AttackFamily::kReplay: return std::make_unique<ReplayScenario>(spec);
    case AttackFamily::kSuspension: return std::make_unique<SuspensionScenario>(spec);
    case AttackFamily::kBusOff: return std::make_unique<BusOffScenario>(spec);
    case AttackFamily::kGatewayProbe: return std::make_unique<GatewayProbeScenario>(spec);
    case AttackFamily::kUdsSession: return std::make_unique<UdsSessionScenario>(spec);
    case AttackFamily::kObdScan: return std::make_unique<ObdScanScenario>(spec);
    case AttackFamily::kXcpTamper: return std::make_unique<XcpTamperScenario>(spec);
  }
  throw std::invalid_argument("make_scenario: unknown attack family");
}

}  // namespace acf::attacks
