// Deterministic attack scenarios over the full target vehicle.
//
// An AttackScenario is the scripted adversary of one catalog family: given
// an AttackContext (scheduler, vehicle, one attacker transport per bus and
// the trial's RNG) it arms a set of scheduler events that carry out the
// attack, and afterwards reports its observable impact.  Scenarios never
// touch wall-clock state — every byte they emit is a pure function of the
// spec and the RNG seed, which is what lets attack arms run through
// `run_trial_pool` with byte-identical results at any thread count and on
// remote workers.
//
// Frame labeling is NOT the scenario's job: the world hands it transports
// that stamp every successfully queued frame into the ground-truth labeler
// (see attack_world.cpp), so a scenario just sends.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "attacks/config.hpp"
#include "oracle/oracle.hpp"
#include "sim/scheduler.hpp"
#include "transport/transport.hpp"
#include "util/rng.hpp"
#include "vehicle/vehicle.hpp"

namespace acf::attacks {

/// Everything a scenario may touch.  All references outlive the scenario.
struct AttackContext {
  sim::Scheduler& scheduler;
  vehicle::Vehicle& vehicle;
  /// Attacker nodes, one per bus; sends are stamped into the ground-truth
  /// labeler by the owning world.
  transport::CanTransport& powertrain;
  transport::CanTransport& body;
  util::Rng& rng;
};

class AttackScenario {
 public:
  explicit AttackScenario(const AttackSpec& spec) : spec_(spec) {}
  virtual ~AttackScenario() = default;

  AttackScenario(const AttackScenario&) = delete;
  AttackScenario& operator=(const AttackScenario&) = delete;

  const AttackSpec& spec() const noexcept { return spec_; }

  /// Called once before the benign/training window: install taps, record
  /// baselines.  The scenario must stay passive (no injection) until arm().
  virtual void prepare(AttackContext&) {}

  /// Starts the attack: schedules the injection events.
  virtual void arm(AttackContext& ctx) = 0;

  /// Stops the attack (cancels this scenario's scheduled events).
  virtual void disarm(AttackContext& ctx);

  /// Deterministic post-attack impact assessment, polled once at trial end.
  /// kFailure observations become the trial's time-to-failure finding.
  virtual std::optional<oracle::Observation> impact(AttackContext&) const {
    return std::nullopt;
  }

 protected:
  /// The transport the spec's `bus` field selects.
  transport::CanTransport& injection_transport(AttackContext& ctx) const;

  /// schedule_every wrapper that records the event for disarm().
  template <typename F>
  void schedule(AttackContext& ctx, sim::Duration period, F&& action) {
    events_.push_back(ctx.scheduler.schedule_every(period, std::forward<F>(action)));
  }

  sim::Duration period() const noexcept {
    return std::chrono::microseconds(spec_.period_us);
  }

  AttackSpec spec_;
  std::vector<sim::EventId> events_;
};

/// Builds the scenario for `spec.family`.  Throws std::invalid_argument on
/// an out-of-range family (decode_attack_spec never produces one).
std::unique_ptr<AttackScenario> make_scenario(const AttackSpec& spec);

/// The bus the IDS observes for this spec: the injection bus, except for
/// gateway probes where the interesting traffic is what traverses to the
/// other side.
AttackBus observed_bus(const AttackSpec& spec) noexcept;

}  // namespace acf::attacks
