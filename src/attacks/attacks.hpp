// Scripted CAN attacks.  The paper frames fuzzing as one member of a family
// of bus-level attacks ("for attackers seeking indiscriminate disruption,
// fuzzing is an effective attack by itself" — Koscher et al., quoted in
// §II); this library implements the classic neighbours for comparison and
// for exercising the oracles and defenses:
//
//   DosFlood     highest-priority-id flood: arbitration starvation
//   SpoofAttack  out-cadencing a legitimate periodic signal with forged data
//   ReplayAttack record a command window, replay it later (Hoppe & Dittman)
//   XcpTamper    overwrite ECU-internal state through the XCP channel
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/scheduler.hpp"
#include "trace/capture.hpp"
#include "trace/replay.hpp"
#include "transport/transport.hpp"
#include "xcp/xcp.hpp"

namespace acf::attacks {

/// Floods the bus with id-0 (maximum priority) frames.  Every arbitration
/// contest is lost by legitimate traffic; throughput collapses to whatever
/// fits between flood frames.
struct DosFloodConfig {
  std::uint32_t id = 0x000;
  std::uint8_t dlc = 8;  // longest frames occupy the most bus time
  /// Inter-frame period; ~230 us saturates a 500 kb/s bus.
  sim::Duration period{std::chrono::microseconds(230)};
};

class DosFlood {
 public:
  DosFlood(sim::Scheduler& scheduler, transport::CanTransport& transport,
           DosFloodConfig config = {});

  void start();
  void stop();
  bool running() const noexcept { return event_.valid(); }
  std::uint64_t frames_sent() const noexcept { return sent_; }
  /// Flood ticks skipped because fault confinement had silenced the
  /// attacker's controller (bus-off).  A babbling node cannot keep babbling:
  /// while its TEC is past 255 the flood pauses, and it resumes only if the
  /// controller recovers.
  std::uint64_t ticks_silenced() const noexcept { return ticks_silenced_; }

 private:
  sim::Scheduler& scheduler_;
  transport::CanTransport& transport_;
  DosFloodConfig config_;
  sim::EventId event_{};
  std::uint64_t sent_ = 0;
  std::uint64_t ticks_silenced_ = 0;
};

/// Transmits a forged frame at a multiple of the legitimate sender's rate —
/// consumers that take "last value wins" follow the attacker.
class SpoofAttack {
 public:
  SpoofAttack(sim::Scheduler& scheduler, transport::CanTransport& transport,
              can::CanFrame forged, sim::Duration period);

  void start();
  void stop();
  std::uint64_t frames_sent() const noexcept { return sent_; }

 private:
  sim::Scheduler& scheduler_;
  transport::CanTransport& transport_;
  can::CanFrame forged_;
  sim::Duration period_;
  sim::EventId event_{};
  std::uint64_t sent_ = 0;
};

/// Records frames matching a filter for a window, then replays the recording
/// (the window-lift attack of Hoppe & Dittman, the paper's ref [10]).
class ReplayAttack {
 public:
  ReplayAttack(sim::Scheduler& scheduler, can::VirtualBus& bus,
               transport::CanTransport& transport, can::FilterBank record_filter = {});

  /// Captures matching traffic for `window`, then stops recording.
  void record_for(sim::Duration window);
  bool recording() const noexcept { return recording_; }
  std::size_t recorded_frames() const;

  /// Replays everything recorded, `times` repetitions.  Returns false if
  /// nothing was recorded.
  bool replay(std::uint32_t times = 1);
  std::uint64_t frames_replayed() const;

 private:
  sim::Scheduler& scheduler_;
  transport::CanTransport& transport_;
  trace::CaptureTap tap_;
  can::FilterBank filter_;
  bool recording_ = false;
  std::vector<trace::TimestampedFrame> recording_buffer_;
  std::optional<trace::Replayer> replayer_;
};

/// Connects to an XCP slave and writes attacker-chosen bytes into ECU
/// memory — the "extra monitoring capabilities may be used by the
/// attackers" scenario from the paper's oracle discussion.
class XcpTamper {
 public:
  XcpTamper(sim::Scheduler& scheduler, transport::CanTransport& transport,
            std::uint32_t slave_rx_id, std::uint32_t slave_tx_id);

  /// Runs the full sequence (CONNECT, SET_MTA, DOWNLOAD) synchronously on
  /// the simulated clock; returns true if the slave acknowledged the write.
  bool overwrite(std::uint32_t address, std::span<const std::uint8_t> data);

  /// Reads bytes back (CONNECT + SHORT_UPLOAD); nullopt on error.
  std::optional<std::vector<std::uint8_t>> peek(std::uint32_t address, std::uint8_t length);

 private:
  bool await_response();

  sim::Scheduler& scheduler_;
  xcp::XcpMaster master_;
};

}  // namespace acf::attacks
