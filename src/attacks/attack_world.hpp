// Attack fleet worlds: one fleet trial = one attack scenario against one
// isolated full vehicle, with an IDS pipeline tapped onto the observed bus
// and ground-truth labeling of every injected frame.
//
// The trial script: build vehicle + pipeline, run a benign window (drive
// cycle plus a scripted unlock/lock, the replay family's capture material)
// while the pipeline trains, freeze the models, arm the scenario, run the
// attack window, then assess impact.  The evaluation leaves the world as
// marker-tagged finding strings (ids/eval_codec.hpp), so the per-(attack,
// detector) matrix is a pure function of the TrialOutcome list — identical
// whether the outcomes came from the in-process executor at any thread
// count or from remote workers.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "attacks/config.hpp"
#include "fleet/trial.hpp"
#include "fleet/trial_plan.hpp"
#include "ids/ids_world.hpp"
#include "trace/capture.hpp"

namespace acf::attacks {

/// One attack arm: the scenario spec plus the evaluation windows and the
/// detector set it is scored against.
struct AttackArm {
  std::string label;
  AttackSpec spec;
  /// Benign window the pipeline trains on before the attack starts.
  sim::Duration train_window{std::chrono::seconds(2)};
  /// Attack window when the TrialPlan imposes no sim budget.
  sim::Duration attack_window{std::chrono::seconds(3)};
  ids::PipelineConfig pipeline;
  /// Empty => standard_detectors(target_vehicle_database()).
  ids::DetectorSetFactory detectors;
};

/// The standard catalog: one arm per attack family, parameterised for the
/// target vehicle (live ids, matched periods).  Labels are unique and
/// stable — they are the rows of the evaluation matrix.
std::vector<AttackArm> standard_attack_arms();

/// One fully-run attack trial (the body of the fleet world, exposed so the
/// golden-trace tests replay the exact per-trial script).
struct AttackTrialResult {
  fuzzer::CampaignResult result;
  ids::TrialEval eval;
  /// When the attack was armed (end of the benign window).
  sim::SimTime attack_start{0};
  /// Observed-bus traffic; captured only when `capture_observed` was set.
  std::vector<trace::TimestampedFrame> observed;
};

AttackTrialResult run_attack_trial(const AttackArm& arm, const fleet::TrialSpec& spec,
                                   metrics::Registry* registry = nullptr,
                                   bool capture_observed = false);

/// WorldFactory running attack arms through run_trial_pool.  When
/// `registry` is non-null each world publishes its scheduler/bus totals,
/// the pipeline counters and per-detector `ids.latency.*` samples at trial
/// end, like the IDS unlock worlds.
fleet::WorldFactory attack_world_factory(std::vector<AttackArm> arms,
                                         metrics::Registry* registry = nullptr);

/// Rebuilds per-arm evaluation reports from outcome findings (the digest
/// lines run_attack_trial emitted), folding in trial-index order — the
/// same merged matrix whatever executor, thread count or wire produced the
/// outcomes.
std::vector<ids::ArmIdsReport> merge_outcome_evals(
    const fleet::TrialPlan& plan, std::span<const fleet::TrialOutcome> outcomes);

}  // namespace acf::attacks
