#include "attacks/attack_world.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "attacks/scenario.hpp"
#include "dbc/target_vehicle_db.hpp"
#include "ids/detectors.hpp"
#include "ids/eval_codec.hpp"
#include "metrics/metrics.hpp"
#include "obd/obd.hpp"
#include "sim/scheduler.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "vehicle/instrument_cluster.hpp"
#include "vehicle/vehicle.hpp"

namespace acf::attacks {

namespace {

/// Stamps every successfully queued frame into the ground-truth labeler —
/// the source-side half of the labeling contract.  Scenarios send through
/// this; they never see the labeler.
class LabelingTransport final : public transport::CanTransport {
 public:
  LabelingTransport(transport::CanTransport& inner, ids::FrameLabeler& labeler)
      : inner_(inner), labeler_(labeler) {}

  bool send(const can::CanFrame& frame) override {
    if (!inner_.send(frame)) return false;
    labeler_.note_injected(frame);
    return true;
  }
  void set_rx_callback(transport::RxCallback callback) override {
    inner_.set_rx_callback(std::move(callback));
  }
  std::string name() const override { return inner_.name(); }
  const transport::TransportStats& stats() const override { return inner_.stats(); }
  const can::ErrorState* bus_error_state() const override {
    return inner_.bus_error_state();
  }

 private:
  transport::CanTransport& inner_;
  ids::FrameLabeler& labeler_;
};

}  // namespace

std::vector<AttackArm> standard_attack_arms() {
  std::vector<AttackArm> arms;
  const auto add = [&arms](std::string label, AttackFamily family, AttackBus bus,
                           std::uint32_t target_id, std::uint32_t period_us,
                           std::uint16_t burst = 1) {
    AttackArm arm;
    arm.label = std::move(label);
    arm.spec.family = family;
    arm.spec.bus = bus;
    arm.spec.target_id = target_id;
    arm.spec.period_us = period_us;
    arm.spec.burst = burst;
    arms.push_back(std::move(arm));
  };
  // One arm per family; ids and cadences match the live target vehicle.
  add("flood", AttackFamily::kFlood, AttackBus::kBody, 0x000, 230);
  add("spoof-rpm", AttackFamily::kSpoof, AttackBus::kPowertrain, dbc::kMsgEngineData,
      2'000);
  add("masquerade-speed", AttackFamily::kMasquerade, AttackBus::kPowertrain,
      dbc::kMsgVehicleSpeed, 20'000);
  add("replay-unlock", AttackFamily::kReplay, AttackBus::kBody, dbc::kMsgBodyCommand,
      50'000);
  add("suspend-abs", AttackFamily::kSuspension, AttackBus::kPowertrain,
      dbc::kMsgWheelSpeeds, 20'000);
  add("busoff-engine", AttackFamily::kBusOff, AttackBus::kPowertrain, dbc::kMsgEngineData,
      5'000, 4);
  add("gateway-probe", AttackFamily::kGatewayProbe, AttackBus::kBody, 0x000,
      10'000);
  add("uds-session", AttackFamily::kUdsSession, AttackBus::kBody, dbc::kUdsBcmRequest,
      20'000);
  add("obd-scan", AttackFamily::kObdScan, AttackBus::kPowertrain,
      obd::kObdFunctionalRequest, 20'000);
  add("xcp-tamper", AttackFamily::kXcpTamper, AttackBus::kBody,
      vehicle::InstrumentCluster::kXcpRxId, 10'000);
  return arms;
}

AttackTrialResult run_attack_trial(const AttackArm& arm, const fleet::TrialSpec& spec,
                                   metrics::Registry* registry, bool capture_observed) {
  sim::Scheduler scheduler{256};
  vehicle::Vehicle car(scheduler);

  ids::Pipeline pipeline(arm.pipeline);
  auto detectors = arm.detectors
                       ? arm.detectors()
                       : ids::standard_detectors(dbc::target_vehicle_database());
  for (auto& detector : detectors) pipeline.add(std::move(detector));
  can::VirtualBus& observed = observed_bus(arm.spec) == AttackBus::kPowertrain
                                  ? car.powertrain_bus()
                                  : car.body_bus();
  pipeline.attach(observed, "ids-tap");
  ids::PipelineEvaluator evaluator(pipeline);

  std::unique_ptr<trace::CaptureTap> tap;
  if (capture_observed) tap = std::make_unique<trace::CaptureTap>(observed, "golden-tap");

  transport::VirtualBusTransport powertrain_node(car.powertrain_bus(), "attacker-pt");
  transport::VirtualBusTransport body_node(car.body_bus(), "attacker-body");
  LabelingTransport powertrain(powertrain_node, evaluator.labeler());
  LabelingTransport body(body_node, evaluator.labeler());

  util::Rng rng(spec.seed);
  AttackContext ctx{scheduler, car, powertrain, body, rng};
  std::unique_ptr<AttackScenario> scenario = make_scenario(arm.spec);
  scenario->prepare(ctx);

  // Benign script: a legitimate unlock/lock exchange inside the training
  // window — allowlist material for the event ids, capture material for the
  // replay family.
  scheduler.schedule_after(arm.train_window / 4,
                           [&car] { car.head_unit().request_unlock(); });
  scheduler.schedule_after(arm.train_window * 11 / 20,
                           [&car] { car.head_unit().request_lock(); });

  pipeline.begin_training();
  scheduler.run_for(arm.train_window);
  pipeline.begin_detection();

  const sim::SimTime attack_start = scheduler.now();
  scenario->arm(ctx);
  const sim::Duration attack_window =
      spec.sim_budget.count() > 0 ? spec.sim_budget : arm.attack_window;
  scheduler.run_for(attack_window);
  scenario->disarm(ctx);
  car.powertrain_bus().flush_deliveries();
  car.body_bus().flush_deliveries();

  AttackTrialResult out;
  out.attack_start = attack_start;
  out.result.frames_sent = powertrain.stats().frames_sent + body.stats().frames_sent;
  out.result.send_failures =
      powertrain.stats().send_failures + body.stats().send_failures;
  out.result.elapsed = scheduler.now();
  out.result.reason = fuzzer::StopReason::kDurationElapsed;

  const auto record = [&](oracle::Observation observation) {
    fuzzer::Finding finding;
    finding.observation = std::move(observation);
    finding.frames_sent = out.result.frames_sent;
    finding.generator = std::string("attack:") + to_string(arm.spec.family);
    finding.seed = spec.seed;
    out.result.findings.push_back(std::move(finding));
  };
  if (auto impact = scenario->impact(ctx)) record(std::move(*impact));

  out.eval = evaluator.take();
  out.eval.pipeline = pipeline.counters();

  // The evaluation leaves the trial as digest findings: nominal-verdict
  // lines that survive the JSONL export and the remote wire byte-for-byte.
  record({oracle::Verdict::kNominal, ids::encode_eval_totals(out.eval), scheduler.now()});
  for (const ids::DetectorEval& detector : out.eval.detectors) {
    record({oracle::Verdict::kNominal, ids::encode_detector_eval(detector),
            scheduler.now()});
  }

  if (registry) {
    scheduler.publish_metrics(*registry);
    car.powertrain_bus().publish_metrics(*registry);
    car.body_bus().publish_metrics(*registry);
    registry->absorb(pipeline.registry().snapshot());
    for (const ids::DetectorEval& detector : out.eval.detectors) {
      if (detector.detection_latency >= 0.0) {
        registry->timer("ids.latency." + detector.name).record(detector.detection_latency);
      }
    }
  }
  if (tap) out.observed = tap->frames();
  return out;
}

fleet::WorldFactory attack_world_factory(std::vector<AttackArm> arms,
                                         metrics::Registry* registry) {
  if (arms.empty()) throw std::invalid_argument("attack_world_factory: no arms");
  auto shared = std::make_shared<const std::vector<AttackArm>>(std::move(arms));
  return fleet::world_from([shared, registry](const fleet::TrialSpec& spec) {
    return run_attack_trial(shared->at(spec.arm), spec, registry).result;
  });
}

std::vector<ids::ArmIdsReport> merge_outcome_evals(
    const fleet::TrialPlan& plan, std::span<const fleet::TrialOutcome> outcomes) {
  std::vector<ids::TrialEval> evals(plan.trial_count());
  for (const fleet::TrialOutcome& outcome : outcomes) {
    if (!outcome.completed()) continue;
    if (outcome.spec.trial_index >= evals.size()) continue;
    ids::TrialEval& eval = evals[outcome.spec.trial_index];
    for (const std::string& line : outcome.findings) {
      ids::decode_eval_line(line, eval);
    }
  }
  return ids::merge_evals(plan, evals);
}

}  // namespace acf::attacks
