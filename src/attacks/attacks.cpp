#include "attacks/attacks.hpp"

#include "can/error_state.hpp"

namespace acf::attacks {

// --------------------------------------------------------------- DoS ------

DosFlood::DosFlood(sim::Scheduler& scheduler, transport::CanTransport& transport,
                   DosFloodConfig config)
    : scheduler_(scheduler), transport_(transport), config_(config) {}

void DosFlood::start() {
  if (event_.valid()) return;
  std::vector<std::uint8_t> payload(config_.dlc, 0x00);
  const auto frame = can::CanFrame::data(config_.id, payload);
  if (!frame) return;
  event_ = scheduler_.schedule_every(config_.period, [this, flood_frame = *frame] {
    // Fault confinement applies to attackers too: a bus-off controller
    // cannot transmit, so the flood pauses instead of hammering a dead
    // queue, and resumes only once recovery restores error-active state.
    if (const can::ErrorState* errors = transport_.bus_error_state();
        errors != nullptr && errors->bus_off()) {
      ++ticks_silenced_;
      return;
    }
    if (transport_.send(flood_frame)) ++sent_;
  });
}

void DosFlood::stop() {
  scheduler_.cancel(event_);
  event_ = {};
}

// ------------------------------------------------------------- spoof ------

SpoofAttack::SpoofAttack(sim::Scheduler& scheduler, transport::CanTransport& transport,
                         can::CanFrame forged, sim::Duration period)
    : scheduler_(scheduler), transport_(transport), forged_(forged), period_(period) {}

void SpoofAttack::start() {
  if (event_.valid()) return;
  event_ = scheduler_.schedule_every(period_, [this] {
    if (transport_.send(forged_)) ++sent_;
  });
}

void SpoofAttack::stop() {
  scheduler_.cancel(event_);
  event_ = {};
}

// ------------------------------------------------------------ replay ------

ReplayAttack::ReplayAttack(sim::Scheduler& scheduler, can::VirtualBus& bus,
                           transport::CanTransport& transport, can::FilterBank record_filter)
    : scheduler_(scheduler), transport_(transport), tap_(bus, "attacker-tap"),
      filter_(std::move(record_filter)) {
  tap_.set_on_frame([this](const trace::TimestampedFrame& entry) {
    if (recording_ && filter_.accepts(entry.frame)) recording_buffer_.push_back(entry);
  });
}

void ReplayAttack::record_for(sim::Duration window) {
  recording_ = true;
  scheduler_.schedule_after(window, [this] { recording_ = false; });
}

std::size_t ReplayAttack::recorded_frames() const { return recording_buffer_.size(); }

bool ReplayAttack::replay(std::uint32_t times) {
  if (recording_buffer_.empty()) return false;
  trace::ReplayOptions options;
  options.repeat = times;
  replayer_.emplace(scheduler_, transport_, recording_buffer_, options);
  replayer_->start();
  return true;
}

std::uint64_t ReplayAttack::frames_replayed() const {
  return replayer_ ? replayer_->frames_sent() : 0;
}

// --------------------------------------------------------------- XCP ------

XcpTamper::XcpTamper(sim::Scheduler& scheduler, transport::CanTransport& transport,
                     std::uint32_t slave_rx_id, std::uint32_t slave_tx_id)
    : scheduler_(scheduler),
      master_(slave_rx_id, slave_tx_id,
              [&transport](const can::CanFrame& frame) { return transport.send(frame); }) {
  transport.set_rx_callback([this](const can::CanFrame& frame, sim::SimTime time) {
    master_.handle_frame(frame, time);
  });
}

bool XcpTamper::await_response() {
  return scheduler_.run_until_condition(
      [this] { return master_.last_data().has_value() || master_.last_error().has_value(); },
      scheduler_.now() + std::chrono::milliseconds(100));
}

bool XcpTamper::overwrite(std::uint32_t address, std::span<const std::uint8_t> data) {
  master_.connect();
  if (!await_response() || !master_.last_data()) return false;
  master_.set_mta(address);
  if (!await_response() || !master_.last_data()) return false;
  master_.download(address, data);
  return await_response() && master_.last_data().has_value();
}

std::optional<std::vector<std::uint8_t>> XcpTamper::peek(std::uint32_t address,
                                                         std::uint8_t length) {
  master_.connect();
  if (!await_response() || !master_.last_data()) return std::nullopt;
  master_.short_upload(address, length);
  if (!await_response()) return std::nullopt;
  return master_.last_data();
}

}  // namespace acf::attacks
