// Attack scenario configuration: the taxonomy of structured CAN attacks and
// a strict, bounded wire encoding for their parameters.
//
// The paper's campaigns fuzz blindly; the catalog here adds the classic
// adversaries from the related literature (masquerade, suspension, bus-off
// forcing, replay, gateway probing, diagnostic-session abuse) so every
// detector earns a per-attack row instead of one aggregate number.  A spec
// is deliberately tiny and fully value-typed: the same 22 bytes select the
// scenario family and parameterise it on any worker of a distributed fleet.
//
// The binary codec is a self-fuzz surface (`attack_config` target): decode
// accepts exactly the canonical encodings — fixed length, version-checked,
// every field bounds-checked, padding forced to zero — so decode∘encode and
// encode∘decode are both identities.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace acf::attacks {

/// The scenario families.  Values are wire format; append only.
enum class AttackFamily : std::uint8_t {
  kFlood = 0,         // highest-priority-id flood at arbitration boundaries
  kSpoof = 1,         // out-cadence forged periodic signal
  kMasquerade = 2,    // period- and payload-matched clone of a live id
  kReplay = 3,        // record a command window, replay it later
  kSuspension = 4,    // power off a victim ECU, impersonate its traffic
  kBusOff = 5,        // drive a victim's TEC past 255, then take over its id
  kGatewayProbe = 6,  // sweep ids across the gateway from the exposed bus
  kUdsSession = 7,    // diagnostic session + security-access brute force
  kObdScan = 8,       // OBD-II functional-id PID/DTC sweep
  kXcpTamper = 9,     // XCP CONNECT/SET_MTA/DOWNLOAD memory writes
};

inline constexpr std::uint8_t kAttackFamilyCount = 10;

const char* to_string(AttackFamily family) noexcept;

/// Which of the vehicle's two buses the attacker injects on.
enum class AttackBus : std::uint8_t {
  kPowertrain = 0,
  kBody = 1,
};

const char* to_string(AttackBus bus) noexcept;

/// One attack scenario's parameters.  Field meaning varies slightly per
/// family (documented on each scenario); bounds are uniform and enforced by
/// the codec.
struct AttackSpec {
  AttackFamily family = AttackFamily::kFlood;
  AttackBus bus = AttackBus::kBody;
  /// Victim / forged / probed CAN id (11-bit).
  std::uint32_t target_id = 0;
  /// Injection cadence in microseconds.
  std::uint32_t period_us = 1000;
  /// Repetitions per tick (flood frames, forced errors, replay loops...).
  std::uint16_t burst = 1;
  /// Forged payload; payload_len == 0 means "family default".
  std::uint8_t payload_len = 0;
  std::array<std::uint8_t, 8> payload{};

  bool operator==(const AttackSpec&) const = default;
};

// Codec bounds (documented contract; decode enforces, tests pin).
inline constexpr std::uint32_t kMaxTargetId = 0x7FF;
inline constexpr std::uint32_t kMinPeriodUs = 50;
inline constexpr std::uint32_t kMaxPeriodUs = 10'000'000;
inline constexpr std::uint16_t kMaxBurst = 1024;
inline constexpr std::size_t kAttackSpecBytes = 22;

/// Canonical 22-byte encoding: version, family, bus, payload_len,
/// target_id (LE32), period_us (LE32), burst (LE16), payload (8 bytes,
/// zero-padded past payload_len).
std::vector<std::uint8_t> encode_attack_spec(const AttackSpec& spec);

/// Strict parse: exact length, known version/family/bus, all bounds
/// honoured, padding bytes zero.  Accepts a byte string iff it is the
/// canonical encoding of the returned spec.
std::optional<AttackSpec> decode_attack_spec(std::span<const std::uint8_t> bytes);

/// True iff every field of `spec` lies inside the codec bounds (what decode
/// guarantees and encode expects; encode clamps nothing).
bool attack_spec_valid(const AttackSpec& spec) noexcept;

}  // namespace acf::attacks
