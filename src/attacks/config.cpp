#include "attacks/config.hpp"

namespace acf::attacks {

const char* to_string(AttackFamily family) noexcept {
  switch (family) {
    case AttackFamily::kFlood: return "flood";
    case AttackFamily::kSpoof: return "spoof";
    case AttackFamily::kMasquerade: return "masquerade";
    case AttackFamily::kReplay: return "replay";
    case AttackFamily::kSuspension: return "suspension";
    case AttackFamily::kBusOff: return "bus-off";
    case AttackFamily::kGatewayProbe: return "gateway-probe";
    case AttackFamily::kUdsSession: return "uds-session";
    case AttackFamily::kObdScan: return "obd-scan";
    case AttackFamily::kXcpTamper: return "xcp-tamper";
  }
  return "unknown";
}

const char* to_string(AttackBus bus) noexcept {
  return bus == AttackBus::kPowertrain ? "powertrain" : "body";
}

namespace {

constexpr std::uint8_t kVersion = 1;

void put_le32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 24));
}

std::uint32_t get_le32(std::span<const std::uint8_t> bytes, std::size_t at) {
  return static_cast<std::uint32_t>(bytes[at]) |
         static_cast<std::uint32_t>(bytes[at + 1]) << 8 |
         static_cast<std::uint32_t>(bytes[at + 2]) << 16 |
         static_cast<std::uint32_t>(bytes[at + 3]) << 24;
}

}  // namespace

bool attack_spec_valid(const AttackSpec& spec) noexcept {
  if (static_cast<std::uint8_t>(spec.family) >= kAttackFamilyCount) return false;
  if (static_cast<std::uint8_t>(spec.bus) > 1) return false;
  if (spec.target_id > kMaxTargetId) return false;
  if (spec.period_us < kMinPeriodUs || spec.period_us > kMaxPeriodUs) return false;
  if (spec.burst < 1 || spec.burst > kMaxBurst) return false;
  if (spec.payload_len > 8) return false;
  for (std::size_t i = spec.payload_len; i < spec.payload.size(); ++i) {
    if (spec.payload[i] != 0) return false;  // canonical zero padding
  }
  return true;
}

std::vector<std::uint8_t> encode_attack_spec(const AttackSpec& spec) {
  std::vector<std::uint8_t> out;
  out.reserve(kAttackSpecBytes);
  out.push_back(kVersion);
  out.push_back(static_cast<std::uint8_t>(spec.family));
  out.push_back(static_cast<std::uint8_t>(spec.bus));
  out.push_back(spec.payload_len);
  put_le32(out, spec.target_id);
  put_le32(out, spec.period_us);
  out.push_back(static_cast<std::uint8_t>(spec.burst));
  out.push_back(static_cast<std::uint8_t>(spec.burst >> 8));
  out.insert(out.end(), spec.payload.begin(), spec.payload.end());
  return out;
}

std::optional<AttackSpec> decode_attack_spec(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != kAttackSpecBytes) return std::nullopt;
  if (bytes[0] != kVersion) return std::nullopt;
  AttackSpec spec;
  spec.family = static_cast<AttackFamily>(bytes[1]);
  spec.bus = static_cast<AttackBus>(bytes[2]);
  spec.payload_len = bytes[3];
  spec.target_id = get_le32(bytes, 4);
  spec.period_us = get_le32(bytes, 8);
  spec.burst = static_cast<std::uint16_t>(bytes[12] | bytes[13] << 8);
  for (std::size_t i = 0; i < spec.payload.size(); ++i) spec.payload[i] = bytes[14 + i];
  if (!attack_spec_valid(spec)) return std::nullopt;
  return spec;
}

}  // namespace acf::attacks
