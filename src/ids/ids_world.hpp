// Fleet-scale detector evaluation: detector arms as trial matrices.
//
// An IdsArm describes one experimental condition — which unlock predicate
// guards the bench, what fuzz space the attacker draws from, how long the
// clean training window runs, and which detectors the pipeline carries.
// ids_unlock_world_factory builds one isolated Table V world per trial with
// a pipeline tapped onto the bench bus: the world trains on clean ECU
// traffic, freezes the models, then fuzzes with ground-truth labeling.  Each
// trial's TrialEval lands in the slot of a pre-sized sink vector owned by
// the caller (slot-per-trial, the executor's own outcome pattern — no locks,
// and the merged report is a pure function of the plan).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "fleet/trial.hpp"
#include "fleet/trial_plan.hpp"
#include "fleet/worlds.hpp"
#include "ids/evaluation.hpp"
#include "ids/pipeline.hpp"
#include "util/stats.hpp"

namespace acf::ids {

/// Builds the detector set for one trial world (called on the worker
/// thread; must not capture mutable shared state).  Default: the standard
/// four detectors over the target-vehicle database.
using DetectorSetFactory = std::function<std::vector<std::unique_ptr<Detector>>()>;

struct IdsArm {
  vehicle::UnlockPredicate predicate = vehicle::UnlockPredicate::single_id_and_byte();
  fuzzer::FuzzConfig fuzz = fuzzer::FuzzConfig::full_random();
  /// Clean-traffic training window before the attack starts.
  sim::Duration train_window{std::chrono::seconds(30)};
  /// Fallback fuzz budget when the TrialPlan does not impose one.
  sim::Duration default_budget{std::chrono::hours(24)};
  PipelineConfig pipeline;
  /// Empty => standard_detectors(target_vehicle_database()).
  DetectorSetFactory detectors;
};

/// Per-trial evaluation slots, one per TrialPlan index.  Create with
/// make_eval_sink(plan) and pass to the factory; read after Executor::run
/// returns (the join gives the happens-before edge).
using EvalSink = std::shared_ptr<std::vector<TrialEval>>;

EvalSink make_eval_sink(const fleet::TrialPlan& plan);

/// WorldFactory for the detector-evaluation unlock worlds.  The campaign
/// stops at the first unlock (the Table V endpoint); detector metrics cover
/// every frame scored until then.
///
/// When `registry` is non-null each world publishes, once at trial end:
/// its scheduler/bus totals (`sim.scheduler.*`, `can.bus.*`), the
/// pipeline's counters (`ids.pipeline.*`, `ids.alerts.<detector>`), and one
/// `ids.latency.<detector>` timer sample per detector that fired on attack
/// traffic — so the registry's p99 is the fleet-wide detection-latency
/// quantile.  The registry must outlive every world.
fleet::WorldFactory ids_unlock_world_factory(std::vector<IdsArm> arms, EvalSink sink,
                                             metrics::Registry* registry = nullptr);

/// Merged per-arm, per-detector fleet report.
struct ArmIdsReport {
  struct PerDetector {
    /// Counts and histograms summed over the arm's trials.
    DetectorEval merged;
    /// Per-trial detection latencies (Welford; CI via Student-t).
    util::RunningStats latency;
    /// Trials in which the detector raised at least one true positive.
    std::size_t trials_detected = 0;

    /// Wilson 95% interval for the per-trial detection rate.
    util::Interval detection_rate_ci(std::size_t trials) const {
      return util::wilson_interval_95(trials_detected, trials);
    }
  };

  std::string label;
  std::size_t trials = 0;  // trials with a valid evaluation
  std::uint64_t attack_frames = 0;
  std::uint64_t legit_frames = 0;
  /// Pipeline-side counters summed over the arm's trials; cross-checks the
  /// evaluation-side tallies (see TrialEval).
  PipelineCounters pipeline;
  std::vector<PerDetector> detectors;
};

/// Folds the sink's evaluations in trial-index order — byte-identical
/// whatever thread count produced them.
std::vector<ArmIdsReport> merge_evals(const fleet::TrialPlan& plan,
                                      std::span<const TrialEval> evals);

}  // namespace acf::ids
