#include "ids/eval_codec.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace acf::ids {

namespace {

std::string num(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void append_bins(std::ostringstream& out, const std::vector<std::uint64_t>& bins) {
  bool any = false;
  for (std::size_t i = 0; i < bins.size(); ++i) {
    if (bins[i] == 0) continue;
    if (any) out << ',';
    out << i << ':' << bins[i];
    any = true;
  }
  if (!any) out << '-';
}

/// "key=value" accessor over the line's tokens; empty view when absent.
class Fields {
 public:
  explicit Fields(std::string_view text) {
    while (!text.empty()) {
      const std::size_t space = text.find(' ');
      const std::string_view token = text.substr(0, space);
      if (!token.empty()) tokens_.push_back(token);
      if (space == std::string_view::npos) break;
      text.remove_prefix(space + 1);
    }
  }

  std::size_t size() const { return tokens_.size(); }
  std::string_view token(std::size_t i) const { return tokens_[i]; }

  std::string_view value(std::string_view key) const {
    for (const std::string_view token : tokens_) {
      if (token.size() > key.size() + 1 && token.substr(0, key.size()) == key &&
          token[key.size()] == '=') {
        return token.substr(key.size() + 1);
      }
    }
    return {};
  }

 private:
  std::vector<std::string_view> tokens_;
};

bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = value;
  return true;
}

bool parse_double(std::string_view text, double& out) {
  if (text.empty() || text.size() >= 64) return false;
  char buffer[64];
  text.copy(buffer, text.size());
  buffer[text.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(buffer, &end);
  if (end != buffer + text.size() || errno == ERANGE) return false;
  out = value;
  return true;
}

bool parse_bins(std::string_view text, std::vector<std::uint64_t>& bins) {
  if (text == "-") return true;
  while (!text.empty()) {
    const std::size_t comma = text.find(',');
    const std::string_view pair = text.substr(0, comma);
    const std::size_t colon = pair.find(':');
    if (colon == std::string_view::npos) return false;
    std::uint64_t index = 0, count = 0;
    if (!parse_u64(pair.substr(0, colon), index)) return false;
    if (!parse_u64(pair.substr(colon + 1), count)) return false;
    if (index >= bins.size()) return false;
    bins[index] = count;
    if (comma == std::string_view::npos) break;
    text.remove_prefix(comma + 1);
  }
  return true;
}

}  // namespace

std::string encode_eval_totals(const TrialEval& eval) {
  std::ostringstream out;
  out << kEvalDigestMarker << "totals attack=" << eval.attack_frames
      << " legit=" << eval.legit_frames << " trained=" << eval.pipeline.frames_trained
      << " scored=" << eval.pipeline.frames_scored
      << " raised=" << eval.pipeline.alerts_raised
      << " suppressed=" << eval.pipeline.alerts_suppressed
      << " dropped=" << eval.pipeline.alerts_dropped;
  return out.str();
}

std::string encode_detector_eval(const DetectorEval& detector) {
  std::ostringstream out;
  out << kEvalDigestMarker << "det name=" << detector.name
      << " thr=" << num(detector.threshold) << " tp=" << detector.tp
      << " fp=" << detector.fp << " tn=" << detector.tn << " fn=" << detector.fn
      << " lat=" << num(detector.detection_latency) << " ab=";
  append_bins(out, detector.attack_bins);
  out << " lb=";
  append_bins(out, detector.legit_bins);
  return out.str();
}

bool decode_eval_line(std::string_view line, TrialEval& eval) {
  const std::size_t at = line.find(kEvalDigestMarker);
  if (at == std::string_view::npos) return false;
  const Fields fields(line.substr(at + kEvalDigestMarker.size()));
  if (fields.size() == 0) return false;

  if (fields.token(0) == "totals") {
    TrialEval parsed = eval;  // only commit on a fully valid line
    if (!parse_u64(fields.value("attack"), parsed.attack_frames)) return false;
    if (!parse_u64(fields.value("legit"), parsed.legit_frames)) return false;
    if (!parse_u64(fields.value("trained"), parsed.pipeline.frames_trained)) return false;
    if (!parse_u64(fields.value("scored"), parsed.pipeline.frames_scored)) return false;
    if (!parse_u64(fields.value("raised"), parsed.pipeline.alerts_raised)) return false;
    if (!parse_u64(fields.value("suppressed"), parsed.pipeline.alerts_suppressed)) {
      return false;
    }
    if (!parse_u64(fields.value("dropped"), parsed.pipeline.alerts_dropped)) return false;
    eval = std::move(parsed);
    return true;
  }

  if (fields.token(0) == "det") {
    DetectorEval det;
    const std::string_view name = fields.value("name");
    if (name.empty()) return false;
    det.name = std::string(name);
    if (!parse_double(fields.value("thr"), det.threshold)) return false;
    if (!parse_u64(fields.value("tp"), det.tp)) return false;
    if (!parse_u64(fields.value("fp"), det.fp)) return false;
    if (!parse_u64(fields.value("tn"), det.tn)) return false;
    if (!parse_u64(fields.value("fn"), det.fn)) return false;
    if (!parse_double(fields.value("lat"), det.detection_latency)) return false;
    if (!parse_bins(fields.value("ab"), det.attack_bins)) return false;
    if (!parse_bins(fields.value("lb"), det.legit_bins)) return false;
    eval.detectors.push_back(std::move(det));
    return true;
  }

  return false;
}

}  // namespace acf::ids
