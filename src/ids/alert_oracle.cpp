#include "ids/alert_oracle.hpp"

#include <string>

namespace acf::ids {

std::optional<oracle::Observation> AlertOracle::poll(sim::SimTime now) {
  const std::vector<Alert> alerts = pipeline_.drain_alerts();
  if (alerts.empty()) return std::nullopt;
  reported_ += alerts.size();
  oracle::Observation observation;
  observation.verdict = severity_;
  // The batch is timestamped at its first alert, not the poll tick, so
  // detection latency is measured at alert resolution.
  observation.time = alerts.front().time;
  std::string detail = "ids: " + std::to_string(alerts.size()) + " alert(s), first: " +
                       alerts.front().to_string();
  if (alerts.size() > 1) detail += ", last: " + alerts.back().to_string();
  observation.detail = std::move(detail);
  (void)now;
  return observation;
}

void AlertOracle::reset() {
  pipeline_.drain_alerts();
  reported_ = 0;
}

}  // namespace acf::ids
