// Online CAN intrusion detection: the defense side of the paper's story.
//
// The paper's only quantified defense is the one-line DLC check (Table V:
// 431 s -> 1959 s mean time-to-unlock) — a degenerate intrusion detector
// wired into the BCM.  This subsystem generalizes it: a Detector observes
// every frame on the bus and assigns an anomaly score; an ids::Pipeline fans
// frames to a detector set, thresholds the scores into alerts and merges
// them.  Detectors follow the train-then-detect rule: a training window of
// known-clean traffic fixes the model, then detection never mutates it — so
// a detection run is a pure function of (model, frame stream) and fleet
// trials stay deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "can/frame.hpp"
#include "sim/time.hpp"

namespace acf::ids {

/// One anomaly report, after the pipeline's dedup/cooldown.
struct Alert {
  /// Index of the raising detector within its pipeline.
  std::size_t detector = 0;
  std::string detector_name;
  std::uint32_t can_id = 0;
  /// The detector's anomaly score for the frame (>= its threshold).
  double score = 0.0;
  sim::SimTime time{0};

  /// "timing id=0x215 score=0.93 t=12.045s" one-liner for logs/findings.
  std::string to_string() const;
};

/// Interface all detectors implement.  Scoring must be O(1) per frame
/// (bounded hash lookups / per-message signal counts) — the pipeline sits on
/// the hot delivery path of every bus frame.
class Detector {
 public:
  virtual ~Detector() = default;

  virtual std::string_view name() const = 0;

  /// Training phase: observe one frame of known-clean traffic.
  virtual void train(const can::CanFrame& frame, sim::SimTime time) {
    (void)frame;
    (void)time;
  }

  /// Ends the training phase; the model is frozen after this call.
  virtual void finalize_training() {}

  /// Detection phase: anomaly score in [0,1] for `frame`.  May update
  /// detection-side state (arrival clocks, payload windows) but never the
  /// trained model.
  virtual double score(const can::CanFrame& frame, sim::SimTime time) = 0;

  /// Clears detection-side state between runs; the trained model survives.
  virtual void reset() {}

  /// Scores at or above the threshold raise alerts in a pipeline.
  double threshold() const noexcept { return threshold_; }
  void set_threshold(double threshold) noexcept { threshold_ = threshold; }

 protected:
  Detector() = default;
  explicit Detector(double threshold) : threshold_(threshold) {}

  double threshold_ = 0.5;
};

}  // namespace acf::ids
