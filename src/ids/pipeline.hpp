// ids::Pipeline: fans every observed frame to a detector set, thresholds
// scores into alerts, and merges alerts with per-(detector,id) cooldown so a
// babbling attack does not raise one alert per frame.
//
// Frames arrive either through the existing bus-listener path (attach() adds
// a listen-only tap node, invisible to the system under test, like the
// capture tap) or by direct observe() calls (trace replay, offline logs).
//
// The train-then-detect determinism rule: begin_training() routes frames to
// Detector::train, begin_detection() freezes the models, and from then on a
// detection run is a pure function of the frame stream — two pipelines with
// the same detectors fed the same stream raise byte-identical alerts.
//
// Counters live in a per-pipeline metrics::Registry (relaxed atomics under
// the hood): each fleet world owns its own pipeline (the world-isolation
// rule), but progress reporters and supervisors may read the counters from
// other threads while a campaign runs.  The hot path caches instrument
// pointers at construction/add() time, so scoring pays one relaxed add per
// counter — the same cost as the hand-rolled atomics it replaced.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "can/bus.hpp"
#include "ids/detector.hpp"
#include "metrics/metrics.hpp"

namespace acf::ids {

struct PipelineConfig {
  /// Minimum gap between two alerts from the same (detector, id) pair;
  /// suppressed alerts are counted, not delivered.
  sim::Duration alert_cooldown{std::chrono::seconds(1)};
  /// Bound on the undrained alert queue (oldest kept; overflow counted).
  std::size_t max_pending_alerts = 4096;
};

/// Snapshot of the pipeline counters (plain values, copyable).
struct PipelineCounters {
  std::uint64_t frames_trained = 0;
  std::uint64_t frames_scored = 0;
  std::uint64_t alerts_raised = 0;
  std::uint64_t alerts_suppressed = 0;  // cooldown hits
  std::uint64_t alerts_dropped = 0;     // queue overflow
};

class Pipeline final : private can::BusListener {
 public:
  enum class Mode : std::uint8_t { kIdle, kTraining, kDetecting };

  explicit Pipeline(PipelineConfig config = {});
  ~Pipeline() override;

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Adds a detector (before training starts).  Returns its index.
  std::size_t add(std::unique_ptr<Detector> detector);

  std::size_t detector_count() const noexcept { return detectors_.size(); }
  const Detector& detector(std::size_t index) const { return *detectors_.at(index); }
  Detector& detector(std::size_t index) { return *detectors_.at(index); }

  /// Attaches a listen-only tap node to `bus`; the bus must outlive the
  /// pipeline or detach() must be called first.
  void attach(can::VirtualBus& bus, std::string name = "ids");
  void detach();

  void begin_training();
  /// Freezes every detector's model (finalize_training) and starts scoring.
  void begin_detection();
  Mode mode() const noexcept { return mode_; }

  /// Feeds one frame (the non-bus path: replay, log files, tests).
  void observe(const can::CanFrame& frame, sim::SimTime time);

  /// Invoked on every alert that survives dedup/cooldown.
  void set_on_alert(std::function<void(const Alert&)> callback) {
    on_alert_ = std::move(callback);
  }

  /// Invoked per scored frame with all detector scores, in detector order —
  /// the evaluation harness's raw-score feed for ROC sweeps.
  void set_score_hook(
      std::function<void(const can::CanFrame&, sim::SimTime, std::span<const double>)> hook) {
    score_hook_ = std::move(hook);
  }

  /// Removes and returns the queued alerts (oracle bridge drain point).
  std::vector<Alert> drain_alerts();

  PipelineCounters counters() const noexcept;
  std::uint64_t alerts_for(std::size_t detector_index) const;

  /// The pipeline's own metrics registry: `ids.pipeline.*` totals plus one
  /// `ids.alerts.<detector>` counter per detector.  Snapshot/absorb this
  /// into a campaign-wide registry to merge across worlds.  (Non-const:
  /// snapshotting flushes timer buffers.)
  metrics::Registry& registry() noexcept { return registry_; }

  /// Clears detection-side state (cooldowns, queue, detector clocks) for a
  /// fresh run against the same trained models.
  void reset_detection();

 private:
  void on_frame(const can::CanFrame& frame, sim::SimTime time) override;

  PipelineConfig config_;
  std::vector<std::unique_ptr<Detector>> detectors_;
  Mode mode_ = Mode::kIdle;

  can::VirtualBus* bus_ = nullptr;
  can::NodeId node_ = can::kInvalidNode;

  /// (detector index << 32 | can id) -> last alert time.
  std::unordered_map<std::uint64_t, sim::SimTime> last_alert_;
  std::vector<Alert> pending_;
  std::vector<double> scores_;  // scratch, sized to detector_count

  // Registry-backed counters; the raw pointers cache registry lookups (the
  // registry hands out stable addresses) so observe() never takes the
  // registry lock.  Declared after registry_ so they cannot outlive it.
  metrics::Registry registry_;
  metrics::Counter* frames_trained_ = nullptr;
  metrics::Counter* frames_scored_ = nullptr;
  metrics::Counter* alerts_raised_ = nullptr;
  metrics::Counter* alerts_suppressed_ = nullptr;
  metrics::Counter* alerts_dropped_ = nullptr;
  std::vector<metrics::Counter*> per_detector_alerts_;

  std::function<void(const Alert&)> on_alert_;
  std::function<void(const can::CanFrame&, sim::SimTime, std::span<const double>)> score_hook_;
};

}  // namespace acf::ids
