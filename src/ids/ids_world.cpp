#include "ids/ids_world.hpp"

#include <stdexcept>
#include <utility>

#include "dbc/target_vehicle_db.hpp"
#include "fuzzer/campaign.hpp"
#include "fuzzer/generator.hpp"
#include "ids/detectors.hpp"
#include "metrics/metrics.hpp"
#include "oracle/vehicle_oracles.hpp"
#include "sim/scheduler.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "vehicle/vehicle.hpp"

namespace acf::ids {

EvalSink make_eval_sink(const fleet::TrialPlan& plan) {
  return std::make_shared<std::vector<TrialEval>>(plan.trial_count());
}

namespace {

/// One detector-evaluation trial: the Table V bench plus a tapped pipeline.
/// Train on clean traffic, freeze, fuzz with labeling, deposit the eval.
class IdsUnlockWorld final : public fleet::World {
 public:
  IdsUnlockWorld(const IdsArm& arm, const fleet::TrialSpec& spec, EvalSink sink,
                 metrics::Registry* registry)
      : registry_(registry), bench_(scheduler_, arm.predicate),
        attacker_(bench_.bus(), "attacker"), pipeline_(arm.pipeline),
        sink_(std::move(sink)), spec_(spec), train_window_(arm.train_window) {
    auto detectors = arm.detectors ? arm.detectors()
                                   : standard_detectors(dbc::target_vehicle_database());
    for (auto& detector : detectors) pipeline_.add(std::move(detector));
    pipeline_.attach(bench_.bus(), "ids-tap");
    evaluator_ = std::make_unique<PipelineEvaluator>(pipeline_);

    oracles_.add(std::make_unique<oracle::UnlockOracle>(bench_.bus(), &bench_.bcm()));
    fuzzer::FuzzConfig fuzz = arm.fuzz;
    fuzz.seed = spec.seed;
    generator_ = std::make_unique<fuzzer::RandomGenerator>(fuzz);
    fuzzer::CampaignConfig config;
    config.tx_period = fuzz.tx_period;
    config.max_duration =
        spec.sim_budget.count() > 0 ? spec.sim_budget : arm.default_budget;
    config.oracle_period = std::chrono::milliseconds(10);
    config.record_suspicious = false;
    campaign_ = std::make_unique<fuzzer::FuzzCampaign>(scheduler_, attacker_, *generator_,
                                                       &oracles_, config);
    campaign_->set_on_frame_sent([this](const can::CanFrame& frame, sim::SimTime) {
      evaluator_->labeler().note_injected(frame);
    });
  }

  fuzzer::CampaignResult run() override {
    // Clean training window: only the bench's own ECUs are transmitting.
    pipeline_.begin_training();
    scheduler_.run_for(train_window_);
    pipeline_.begin_detection();
    const fuzzer::CampaignResult result = campaign_->run();
    TrialEval eval = evaluator_->take();
    eval.pipeline = pipeline_.counters();
    if (registry_) {
      // Per-trial totals published exactly once, at trial end, so the
      // shared registry's counters are order-independent sums.
      scheduler_.publish_metrics(*registry_);
      bench_.bus().publish_metrics(*registry_);
      registry_->absorb(pipeline_.registry().snapshot());
      for (const DetectorEval& det : eval.detectors) {
        if (det.detection_latency >= 0.0) {
          registry_->timer("ids.latency." + det.name).record(det.detection_latency);
        }
      }
    }
    if (spec_.trial_index < sink_->size()) {
      (*sink_)[spec_.trial_index] = std::move(eval);
    }
    return result;
  }

 private:
  metrics::Registry* registry_ = nullptr;
  // Pre-sized like fleet::UnlockWorld: per-trial construction stays
  // allocation-flat across a sweep's thousands of worlds.
  sim::Scheduler scheduler_{256};
  vehicle::UnlockTestbench bench_;
  transport::VirtualBusTransport attacker_;
  Pipeline pipeline_;
  EvalSink sink_;
  fleet::TrialSpec spec_;
  sim::Duration train_window_;
  std::unique_ptr<PipelineEvaluator> evaluator_;
  oracle::CompositeOracle oracles_;
  std::unique_ptr<fuzzer::RandomGenerator> generator_;
  std::unique_ptr<fuzzer::FuzzCampaign> campaign_;
};

}  // namespace

fleet::WorldFactory ids_unlock_world_factory(std::vector<IdsArm> arms, EvalSink sink,
                                             metrics::Registry* registry) {
  if (arms.empty()) throw std::invalid_argument("ids_unlock_world_factory: no arms");
  if (!sink) throw std::invalid_argument("ids_unlock_world_factory: null sink");
  auto shared = std::make_shared<const std::vector<IdsArm>>(std::move(arms));
  return [shared, sink, registry](const fleet::TrialSpec& spec)
             -> std::unique_ptr<fleet::World> {
    return std::make_unique<IdsUnlockWorld>(shared->at(spec.arm), spec, sink, registry);
  };
}

std::vector<ArmIdsReport> merge_evals(const fleet::TrialPlan& plan,
                                      std::span<const TrialEval> evals) {
  std::vector<ArmIdsReport> reports(plan.arm_count());
  for (std::size_t arm = 0; arm < plan.arm_count(); ++arm) {
    reports[arm].label = plan.arm_label(arm);
  }
  for (std::size_t index = 0; index < evals.size() && index < plan.trial_count(); ++index) {
    const TrialEval& eval = evals[index];
    if (!eval.valid()) continue;  // failed or skipped trial left its slot empty
    ArmIdsReport& report = reports[plan.spec(index).arm];
    if (report.detectors.empty()) report.detectors.resize(eval.detectors.size());
    ++report.trials;
    report.attack_frames += eval.attack_frames;
    report.legit_frames += eval.legit_frames;
    report.pipeline.frames_trained += eval.pipeline.frames_trained;
    report.pipeline.frames_scored += eval.pipeline.frames_scored;
    report.pipeline.alerts_raised += eval.pipeline.alerts_raised;
    report.pipeline.alerts_suppressed += eval.pipeline.alerts_suppressed;
    report.pipeline.alerts_dropped += eval.pipeline.alerts_dropped;
    for (std::size_t d = 0; d < eval.detectors.size() && d < report.detectors.size(); ++d) {
      ArmIdsReport::PerDetector& per = report.detectors[d];
      per.merged.merge_counts(eval.detectors[d]);
      if (eval.detectors[d].tp > 0) {
        ++per.trials_detected;
        if (eval.detectors[d].detection_latency >= 0.0) {
          per.latency.add(eval.detectors[d].detection_latency);
        }
      }
    }
  }
  return reports;
}

}  // namespace acf::ids
