// Detector evaluation: ground-truth frame labeling, confusion counts,
// threshold-sweep ROC curves and detection latency.
//
// Ground truth is established at the source: the fuzz campaign's
// on_frame_sent hook notes every injected frame, and the labeler matches
// bus-observed frames against that note queue — a frame is an attack frame
// iff the fuzzer put it on the wire.  Everything downstream is pure
// counting: per-detector score histograms (attack / legitimate) from which
// precision, recall, F1, ROC points and AUC all derive, so a trial's
// evaluation is O(1) memory and merges across fleet trials by summation.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "can/frame.hpp"
#include "ids/pipeline.hpp"
#include "sim/time.hpp"

namespace acf::ids {

/// FIFO ground-truth labeler.  note_injected() at send time; a later
/// consume_if_attack() with an identical frame pops one note and labels the
/// observation as attack traffic.  Content matching is exact (id, format,
/// flags, payload); a frame dropped by the bus simply leaves its note
/// unconsumed.
class FrameLabeler {
 public:
  void note_injected(const can::CanFrame& frame);
  bool consume_if_attack(const can::CanFrame& frame);

  std::uint64_t injected() const noexcept { return injected_; }
  std::uint64_t matched() const noexcept { return matched_; }
  /// Injected frames not (yet) observed on the bus.
  std::uint64_t outstanding() const noexcept { return injected_ - matched_; }

 private:
  static std::string fingerprint(const can::CanFrame& frame);

  std::unordered_map<std::string, std::uint32_t> pending_;
  std::uint64_t injected_ = 0;
  std::uint64_t matched_ = 0;
};

/// One point of a ROC sweep.
struct RocPoint {
  double threshold = 0.0;
  double tpr = 0.0;  // recall at this threshold
  double fpr = 0.0;
};

/// Confusion counts and score histograms for one detector.  `tp/fp/tn/fn`
/// are taken at the detector's configured threshold; the histograms support
/// the full threshold sweep.  Merge across trials by summation.
struct DetectorEval {
  static constexpr std::size_t kBins = 256;

  std::string name;
  double threshold = 0.5;
  std::uint64_t tp = 0, fp = 0, tn = 0, fn = 0;
  std::vector<std::uint64_t> attack_bins;  // kBins score-histogram, attack frames
  std::vector<std::uint64_t> legit_bins;   // kBins score-histogram, legitimate frames
  /// Sim seconds from the first attack frame on the bus to this detector's
  /// first true positive; negative when it never fired on attack traffic.
  double detection_latency = -1.0;

  DetectorEval();

  static std::size_t bin_of(double score) noexcept;

  double precision() const noexcept;
  double recall() const noexcept;
  double f1() const noexcept;
  double false_positive_rate() const noexcept;

  /// ROC points at `points` evenly spaced thresholds over [0,1], inclusive.
  std::vector<RocPoint> roc(std::size_t points = 11) const;
  /// Area under the full histogram-resolution ROC curve (trapezoid rule;
  /// 0.5 when either class is empty).
  double auc() const;

  /// Sums counts and histograms; latency is per-trial and NOT merged here
  /// (fleet reports aggregate latencies with Welford stats instead).
  void merge_counts(const DetectorEval& other);
};

/// Per-trial evaluation result: one DetectorEval per pipeline detector,
/// plus the pipeline's own counter snapshot (taken at trial end) so
/// evaluation-side and pipeline-side tallies can be cross-checked: every
/// scored frame is labeled (frames_scored == attack + legit) and every
/// over-threshold score either raises or suppresses an alert
/// (alerts_raised + alerts_suppressed == Σ_det (tp + fp)).
struct TrialEval {
  std::vector<DetectorEval> detectors;
  std::uint64_t attack_frames = 0;
  std::uint64_t legit_frames = 0;
  PipelineCounters pipeline;
  bool valid() const noexcept { return !detectors.empty(); }
};

/// Wires a pipeline's score hook to a labeler and accumulates a TrialEval.
/// Construct after the pipeline's detectors are added; connect the fuzz
/// campaign via `labeler().note_injected` (campaign on_frame_sent hook).
class PipelineEvaluator {
 public:
  explicit PipelineEvaluator(Pipeline& pipeline);

  FrameLabeler& labeler() noexcept { return labeler_; }
  const TrialEval& eval() const noexcept { return eval_; }
  TrialEval take() { return std::move(eval_); }

 private:
  void on_scores(const can::CanFrame& frame, sim::SimTime time, std::span<const double> scores);

  FrameLabeler labeler_;
  TrialEval eval_;
  double first_attack_time_ = -1.0;  // sim seconds; <0 until seen
};

}  // namespace acf::ids
