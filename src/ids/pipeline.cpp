#include "ids/pipeline.hpp"

#include <utility>

namespace acf::ids {

Pipeline::Pipeline(PipelineConfig config) : config_(config) {}

Pipeline::~Pipeline() { detach(); }

std::size_t Pipeline::add(std::unique_ptr<Detector> detector) {
  detectors_.push_back(std::move(detector));
  per_detector_alerts_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  scores_.resize(detectors_.size());
  return detectors_.size() - 1;
}

void Pipeline::attach(can::VirtualBus& bus, std::string name) {
  detach();
  bus_ = &bus;
  node_ = bus.attach(*this, std::move(name), {}, /*listen_only=*/true);
}

void Pipeline::detach() {
  if (bus_ != nullptr) {
    bus_->detach(node_);
    bus_ = nullptr;
    node_ = can::kInvalidNode;
  }
}

void Pipeline::begin_training() { mode_ = Mode::kTraining; }

void Pipeline::begin_detection() {
  if (mode_ != Mode::kDetecting) {
    for (auto& detector : detectors_) detector->finalize_training();
  }
  mode_ = Mode::kDetecting;
}

void Pipeline::on_frame(const can::CanFrame& frame, sim::SimTime time) {
  observe(frame, time);
}

void Pipeline::observe(const can::CanFrame& frame, sim::SimTime time) {
  if (mode_ == Mode::kTraining) {
    for (auto& detector : detectors_) detector->train(frame, time);
    frames_trained_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (mode_ != Mode::kDetecting) return;
  frames_scored_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t i = 0; i < detectors_.size(); ++i) {
    scores_[i] = detectors_[i]->score(frame, time);
  }
  if (score_hook_) score_hook_(frame, time, scores_);
  for (std::size_t i = 0; i < detectors_.size(); ++i) {
    if (scores_[i] < detectors_[i]->threshold()) continue;
    const std::uint64_t key = (static_cast<std::uint64_t>(i) << 32) | frame.id();
    const auto [it, first] = last_alert_.try_emplace(key, time);
    if (!first) {
      if (time - it->second < config_.alert_cooldown) {
        alerts_suppressed_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      it->second = time;
    }
    Alert alert;
    alert.detector = i;
    alert.detector_name = std::string(detectors_[i]->name());
    alert.can_id = frame.id();
    alert.score = scores_[i];
    alert.time = time;
    alerts_raised_.fetch_add(1, std::memory_order_relaxed);
    per_detector_alerts_[i]->fetch_add(1, std::memory_order_relaxed);
    if (pending_.size() < config_.max_pending_alerts) {
      pending_.push_back(alert);
    } else {
      alerts_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    if (on_alert_) on_alert_(alert);
  }
}

std::vector<Alert> Pipeline::drain_alerts() {
  std::vector<Alert> drained;
  drained.swap(pending_);
  return drained;
}

PipelineCounters Pipeline::counters() const noexcept {
  PipelineCounters counters;
  counters.frames_trained = frames_trained_.load(std::memory_order_relaxed);
  counters.frames_scored = frames_scored_.load(std::memory_order_relaxed);
  counters.alerts_raised = alerts_raised_.load(std::memory_order_relaxed);
  counters.alerts_suppressed = alerts_suppressed_.load(std::memory_order_relaxed);
  counters.alerts_dropped = alerts_dropped_.load(std::memory_order_relaxed);
  return counters;
}

std::uint64_t Pipeline::alerts_for(std::size_t detector_index) const {
  return per_detector_alerts_.at(detector_index)->load(std::memory_order_relaxed);
}

void Pipeline::reset_detection() {
  last_alert_.clear();
  pending_.clear();
  for (auto& detector : detectors_) detector->reset();
}

}  // namespace acf::ids
