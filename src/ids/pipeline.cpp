#include "ids/pipeline.hpp"

#include <string>
#include <utility>

namespace acf::ids {

Pipeline::Pipeline(PipelineConfig config) : config_(config) {
  frames_trained_ = &registry_.counter("ids.pipeline.frames_trained");
  frames_scored_ = &registry_.counter("ids.pipeline.frames_scored");
  alerts_raised_ = &registry_.counter("ids.pipeline.alerts_raised");
  alerts_suppressed_ = &registry_.counter("ids.pipeline.alerts_suppressed");
  alerts_dropped_ = &registry_.counter("ids.pipeline.alerts_dropped");
}

Pipeline::~Pipeline() { detach(); }

std::size_t Pipeline::add(std::unique_ptr<Detector> detector) {
  const std::size_t index = detectors_.size();
  // Registry names are per-detector; a duplicate detector name would alias
  // the counter, so disambiguate with the index.
  std::string counter_name = "ids.alerts." + std::string(detector->name());
  metrics::Counter* counter = &registry_.counter(counter_name);
  for (const metrics::Counter* existing : per_detector_alerts_) {
    if (existing == counter) {
      counter = &registry_.counter(counter_name + "#" + std::to_string(index));
      break;
    }
  }
  detectors_.push_back(std::move(detector));
  per_detector_alerts_.push_back(counter);
  scores_.resize(detectors_.size());
  return index;
}

void Pipeline::attach(can::VirtualBus& bus, std::string name) {
  detach();
  bus_ = &bus;
  node_ = bus.attach(*this, std::move(name), {}, /*listen_only=*/true);
}

void Pipeline::detach() {
  if (bus_ != nullptr) {
    bus_->detach(node_);
    bus_ = nullptr;
    node_ = can::kInvalidNode;
  }
}

void Pipeline::begin_training() { mode_ = Mode::kTraining; }

void Pipeline::begin_detection() {
  if (mode_ != Mode::kDetecting) {
    for (auto& detector : detectors_) detector->finalize_training();
  }
  mode_ = Mode::kDetecting;
}

void Pipeline::on_frame(const can::CanFrame& frame, sim::SimTime time) {
  observe(frame, time);
}

void Pipeline::observe(const can::CanFrame& frame, sim::SimTime time) {
  if (mode_ == Mode::kTraining) {
    for (auto& detector : detectors_) detector->train(frame, time);
    frames_trained_->add(1);
    return;
  }
  if (mode_ != Mode::kDetecting) return;
  frames_scored_->add(1);
  for (std::size_t i = 0; i < detectors_.size(); ++i) {
    scores_[i] = detectors_[i]->score(frame, time);
  }
  if (score_hook_) score_hook_(frame, time, scores_);
  for (std::size_t i = 0; i < detectors_.size(); ++i) {
    if (scores_[i] < detectors_[i]->threshold()) continue;
    const std::uint64_t key = (static_cast<std::uint64_t>(i) << 32) | frame.id();
    const auto [it, first] = last_alert_.try_emplace(key, time);
    if (!first) {
      if (time - it->second < config_.alert_cooldown) {
        alerts_suppressed_->add(1);
        continue;
      }
      it->second = time;
    }
    Alert alert;
    alert.detector = i;
    alert.detector_name = std::string(detectors_[i]->name());
    alert.can_id = frame.id();
    alert.score = scores_[i];
    alert.time = time;
    alerts_raised_->add(1);
    per_detector_alerts_[i]->add(1);
    if (pending_.size() < config_.max_pending_alerts) {
      pending_.push_back(alert);
    } else {
      alerts_dropped_->add(1);
    }
    if (on_alert_) on_alert_(alert);
  }
}

std::vector<Alert> Pipeline::drain_alerts() {
  std::vector<Alert> drained;
  drained.swap(pending_);
  return drained;
}

PipelineCounters Pipeline::counters() const noexcept {
  PipelineCounters counters;
  counters.frames_trained = frames_trained_->value();
  counters.frames_scored = frames_scored_->value();
  counters.alerts_raised = alerts_raised_->value();
  counters.alerts_suppressed = alerts_suppressed_->value();
  counters.alerts_dropped = alerts_dropped_->value();
  return counters;
}

std::uint64_t Pipeline::alerts_for(std::size_t detector_index) const {
  return per_detector_alerts_.at(detector_index)->value();
}

void Pipeline::reset_detection() {
  last_alert_.clear();
  pending_.clear();
  for (auto& detector : detectors_) detector->reset();
}

}  // namespace acf::ids
