#include "ids/detectors.hpp"

#include <algorithm>
#include <cmath>

namespace acf::ids {

namespace {

constexpr double kUnknownIdScore = 1.0;
constexpr double kUnseenDlcScore = 0.75;

double clamp01(double x) noexcept { return std::clamp(x, 0.0, 1.0); }

std::uint16_t dlc_bit(const can::CanFrame& frame) noexcept {
  return static_cast<std::uint16_t>(1u << (frame.dlc() & 0x0F));
}

}  // namespace

// ----------------------------------------------------------- allowlist -----

AllowlistDetector::AllowlistDetector() : Detector(0.5) {}

AllowlistDetector::AllowlistDetector(const dbc::Database& database) : Detector(0.5) {
  for (const dbc::MessageDef& message : database.messages()) {
    allowed_[message.id] = static_cast<std::uint16_t>(
        allowed_[message.id] | static_cast<std::uint16_t>(1u << (message.dlc & 0x0F)));
  }
}

void AllowlistDetector::train(const can::CanFrame& frame, sim::SimTime) {
  allowed_[frame.id()] = static_cast<std::uint16_t>(allowed_[frame.id()] | dlc_bit(frame));
}

double AllowlistDetector::score(const can::CanFrame& frame, sim::SimTime) {
  const auto it = allowed_.find(frame.id());
  if (it == allowed_.end()) return kUnknownIdScore;
  if ((it->second & dlc_bit(frame)) == 0) return kUnseenDlcScore;
  return 0.0;
}

// ---------------------------------------------------- dlc consistency -----

DlcConsistencyDetector::DlcConsistencyDetector(const dbc::Database& database)
    : Detector(0.5) {
  for (const dbc::MessageDef& message : database.messages()) {
    declared_dlc_[message.id] = message.dlc;
  }
}

double DlcConsistencyDetector::score(const can::CanFrame& frame, sim::SimTime) {
  const auto it = declared_dlc_.find(frame.id());
  if (it == declared_dlc_.end()) return 0.0;  // undeclared: not this job
  // Same check as MessageDef::dlc_matches — one implementation of the
  // paper's hardening, used here to detect and in the BCM to reject.
  return (frame.is_remote() || frame.dlc() != it->second) ? 1.0 : 0.0;
}

// --------------------------------------------------------------- timing -----

TimingDetector::TimingDetector(TimingConfig config) : Detector(0.5), config_(config) {}

void TimingDetector::train(const can::CanFrame& frame, sim::SimTime time) {
  Training& t = training_[frame.id()];
  if (t.frames++ == 0) {
    t.last = time;
    return;
  }
  const double gap = sim::to_seconds(time - t.last);
  t.last = time;
  if (t.frames == 2) {
    t.mean_gap = gap;
    t.mean_dev = gap * 0.25;
    return;
  }
  const double dev = std::abs(gap - t.mean_gap);
  t.mean_gap += config_.alpha * (gap - t.mean_gap);
  t.mean_dev += config_.alpha * (dev - t.mean_dev);
}

void TimingDetector::finalize_training() {
  bands_.clear();
  for (const auto& [id, t] : training_) {
    if (t.frames < config_.min_train_frames || t.mean_gap <= 0.0) continue;
    const double tolerance =
        std::max(config_.dev_gain * t.mean_dev, config_.floor_fraction * t.mean_gap);
    const double lo = t.mean_gap - tolerance;
    if (lo > 0.0) bands_.emplace(id, lo);
  }
}

double TimingDetector::score(const can::CanFrame& frame, sim::SimTime time) {
  const auto band = bands_.find(frame.id());
  if (band == bands_.end()) return 0.0;
  const auto [it, first] = last_seen_.try_emplace(frame.id(), time);
  if (first) return 0.0;
  const double gap = sim::to_seconds(time - it->second);
  it->second = time;
  if (gap >= band->second) return 0.0;
  return clamp01(1.0 - gap / band->second);
}

void TimingDetector::reset() { last_seen_.clear(); }

double TimingDetector::lower_bound_s(std::uint32_t id) const {
  const auto it = bands_.find(id);
  return it == bands_.end() ? -1.0 : it->second;
}

// ---------------------------------------------------------------- range -----

RangeDetector::RangeDetector(const dbc::Database& database) : Detector(0.5) {
  for (const dbc::MessageDef& message : database.messages()) {
    RangedMessage ranged;
    for (const dbc::SignalDef& signal : message.signals) {
      if (signal.min != signal.max) ranged.signals.push_back(signal);
    }
    if (!ranged.signals.empty()) messages_.emplace(message.id, std::move(ranged));
  }
}

double RangeDetector::score(const can::CanFrame& frame, sim::SimTime) {
  const auto it = messages_.find(frame.id());
  if (it == messages_.end() || frame.is_remote()) return 0.0;
  std::size_t decoded = 0;
  std::size_t violations = 0;
  for (const dbc::SignalDef& signal : it->second.signals) {
    const auto physical = dbc::decode(signal, frame.payload());
    if (!physical) continue;  // short frame: the signal is absent, not wrong
    ++decoded;
    if (!signal.in_declared_range(*physical)) ++violations;
  }
  if (decoded == 0) return 0.0;
  return static_cast<double>(violations) / static_cast<double>(decoded);
}

// -------------------------------------------------------------- entropy -----

EntropyDetector::EntropyDetector(EntropyConfig config) : Detector(0.6), config_(config) {
  if (config_.window_frames == 0) config_.window_frames = 1;
  config_.min_frames = std::max<std::size_t>(1, std::min(config_.min_frames,
                                                         config_.window_frames));
}

EntropyDetector::Window& EntropyDetector::window_for(std::uint32_t id) {
  Window& window = windows_[id];
  if (window.ring.empty()) window.ring.resize(config_.window_frames);
  return window;
}

void EntropyDetector::push(Window& window, const can::CanFrame& frame) {
  auto count_delta = [&window](std::uint8_t value, std::int32_t delta) {
    std::uint32_t& c = window.counts[value];
    if (c > 0) window.sum_c_log_c -= static_cast<double>(c) * std::log2(c);
    c = static_cast<std::uint32_t>(static_cast<std::int64_t>(c) + delta);
    if (c > 0) window.sum_c_log_c += static_cast<double>(c) * std::log2(c);
  };
  if (window.frames == window.ring.size()) {
    Window::Slot& old = window.ring[window.head];
    for (std::size_t i = 0; i < old.length; ++i) count_delta(old.bytes[i], -1);
    window.bytes_total -= old.length;
    --window.frames;
  }
  Window::Slot& slot = window.ring[window.head];
  const auto payload = frame.payload();
  slot.length = static_cast<std::uint8_t>(std::min(payload.size(), slot.bytes.size()));
  for (std::size_t i = 0; i < slot.length; ++i) {
    slot.bytes[i] = payload[i];
    count_delta(payload[i], +1);
  }
  window.bytes_total += slot.length;
  ++window.frames;
  window.head = (window.head + 1) % window.ring.size();
}

double EntropyDetector::normalized_entropy(const Window& window) {
  const double n = static_cast<double>(window.bytes_total);
  if (n <= 1.0) return 0.0;
  const double entropy = std::log2(n) - window.sum_c_log_c / n;
  const double max_entropy = std::min(8.0, std::log2(n));
  if (max_entropy <= 0.0) return 0.0;
  return clamp01(entropy / max_entropy);
}

void EntropyDetector::train(const can::CanFrame& frame, sim::SimTime) {
  push(window_for(frame.id()), frame);
}

void EntropyDetector::finalize_training() {
  baseline_.clear();
  for (const auto& [id, window] : windows_) {
    if (window.frames >= config_.min_frames) baseline_.emplace(id, normalized_entropy(window));
  }
  training_done_ = true;
}

double EntropyDetector::score(const can::CanFrame& frame, sim::SimTime) {
  Window& window = window_for(frame.id());
  push(window, frame);
  if (window.frames < config_.min_frames) return 0.0;
  const double h = normalized_entropy(window);
  const auto base = baseline_.find(frame.id());
  if (base == baseline_.end() || base->second >= 1.0) return h;
  return clamp01((h - base->second) / (1.0 - base->second));
}

void EntropyDetector::reset() {
  // Drop window contents but keep learned baselines.
  for (auto& [id, window] : windows_) {
    window = Window{};
  }
}

double EntropyDetector::window_entropy(std::uint32_t id) const {
  const auto it = windows_.find(id);
  return it == windows_.end() ? 0.0 : normalized_entropy(it->second);
}

// ----------------------------------------------------------------- set -----

std::vector<std::unique_ptr<Detector>> standard_detectors(const dbc::Database& database) {
  std::vector<std::unique_ptr<Detector>> detectors;
  detectors.push_back(std::make_unique<AllowlistDetector>(database));
  detectors.push_back(std::make_unique<TimingDetector>());
  detectors.push_back(std::make_unique<RangeDetector>(database));
  detectors.push_back(std::make_unique<EntropyDetector>());
  return detectors;
}

}  // namespace acf::ids
