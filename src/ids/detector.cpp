#include "ids/detector.hpp"

#include <cstdio>

namespace acf::ids {

std::string Alert::to_string() const {
  char buffer[96];
  std::snprintf(buffer, sizeof buffer, "%s id=0x%03X score=%.3f t=%.3fs",
                detector_name.c_str(), can_id, score, sim::to_seconds(time));
  return buffer;
}

}  // namespace acf::ids
