// The shipped detector set, one per monitoring idea the paper's data
// motivates:
//  - AllowlistDetector: unknown ids / unseen DLCs (Table II shows a vehicle
//    bus carries a small fixed id set; full-random fuzz draws from 2048).
//  - DlcConsistencyDetector: the paper's one-line DLC hardening re-expressed
//    as a detector, sharing the DBC-declared DLC with the BCM's predicate.
//  - TimingDetector: per-id inter-arrival EWMA bands (periodic messages have
//    rigid schedules; injected frames land mid-cycle).
//  - RangeDetector: DBC signal bounds (Fig. 8's "negative RPM": random raw
//    bits decode to implausible physical values).
//  - EntropyDetector: per-id payload entropy over a sliding window (fuzz
//    payloads are near-uniform per Fig. 5; real payloads are not, Fig. 4).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dbc/database.hpp"
#include "ids/detector.hpp"

namespace acf::ids {

/// Flags frames whose id was never seen in training (score 1.0) or whose
/// DLC was never seen for that id (score 0.75).  Can be pre-seeded from a
/// signal database (design knowledge) and extended by training.
class AllowlistDetector final : public Detector {
 public:
  AllowlistDetector();
  /// Pre-seeds the allowlist with every message the database declares.
  explicit AllowlistDetector(const dbc::Database& database);

  std::string_view name() const override { return "allowlist"; }
  void train(const can::CanFrame& frame, sim::SimTime time) override;
  double score(const can::CanFrame& frame, sim::SimTime time) override;

  std::size_t known_ids() const noexcept { return allowed_.size(); }

 private:
  /// id -> bitmask of permitted DLC values (bit d = DLC d allowed).
  std::unordered_map<std::uint32_t, std::uint16_t> allowed_;
};

/// The paper's Table V hardening as a detector: a frame on a declared id
/// whose DLC differs from the DBC declaration scores 1.0.  Uses the same
/// MessageDef::dlc_matches check the hardened BCM predicate uses, so the
/// prevention path (reject in the ECU) and the detection path (alert on the
/// bus) share one implementation.  Undeclared ids are not its job — compose
/// with AllowlistDetector for those.
class DlcConsistencyDetector final : public Detector {
 public:
  explicit DlcConsistencyDetector(const dbc::Database& database);

  std::string_view name() const override { return "dlc-consistency"; }
  double score(const can::CanFrame& frame, sim::SimTime time) override;

 private:
  std::unordered_map<std::uint32_t, std::uint8_t> declared_dlc_;
};

struct TimingConfig {
  /// EWMA smoothing for the per-id mean inter-arrival and its deviation.
  double alpha = 0.125;
  /// Tolerance band half-width in deviations below the learned period.
  double dev_gain = 4.0;
  /// Tolerance floor as a fraction of the learned period (absorbs
  /// arbitration jitter a short training window under-samples).
  double floor_fraction = 0.5;
  /// Ids with fewer training frames learn no band (event-driven traffic).
  std::uint32_t min_train_frames = 4;
};

/// Per-id inter-arrival frequency detector.  Training learns an EWMA mean
/// gap and mean absolute deviation per id; ids that look periodic get a
/// lower tolerance bound lo = mean - max(dev_gain*dev, floor*mean).  In
/// detection a frame arriving a gap g < lo after the previous frame of its
/// id scores 1 - g/lo: an injected frame lands mid-cycle and halves the
/// observed gap, while legitimate schedules never dip below the band.
class TimingDetector final : public Detector {
 public:
  explicit TimingDetector(TimingConfig config = {});

  std::string_view name() const override { return "timing"; }
  void train(const can::CanFrame& frame, sim::SimTime time) override;
  void finalize_training() override;
  double score(const can::CanFrame& frame, sim::SimTime time) override;
  void reset() override;

  /// Ids that learned a band (periodic enough to police).
  std::size_t modeled_ids() const noexcept { return bands_.size(); }
  /// The learned lower gap bound for `id` in seconds; <0 when unmodeled.
  double lower_bound_s(std::uint32_t id) const;

 private:
  struct Training {
    std::uint64_t frames = 0;
    sim::SimTime last{0};
    double mean_gap = 0.0;  // seconds
    double mean_dev = 0.0;  // seconds
  };

  TimingConfig config_;
  std::unordered_map<std::uint32_t, Training> training_;
  std::unordered_map<std::uint32_t, double> bands_;  // id -> lo (seconds)
  std::unordered_map<std::uint32_t, sim::SimTime> last_seen_;
};

/// Signal plausibility detector: decodes every range-declared signal of a
/// declared message and scores the fraction that fall outside [min,max].
/// Stateless after construction; per-frame cost is bounded by the message's
/// signal count.
class RangeDetector final : public Detector {
 public:
  explicit RangeDetector(const dbc::Database& database);

  std::string_view name() const override { return "range"; }
  double score(const can::CanFrame& frame, sim::SimTime time) override;

 private:
  struct RangedMessage {
    std::vector<dbc::SignalDef> signals;  // only signals with declared ranges
  };
  std::unordered_map<std::uint32_t, RangedMessage> messages_;
};

struct EntropyConfig {
  /// Sliding window length per id, in frames.
  std::size_t window_frames = 16;
  /// Minimum frames in the window before the detector scores (a 1-frame
  /// "window" would flag every frame of a fresh id).
  std::size_t min_frames = 8;
};

/// Per-id payload-entropy detector.  Maintains, per id, a sliding window of
/// the last N payloads with incremental byte-value counts, so the Shannon
/// entropy of the window updates in O(payload) per frame (no 256-bin
/// rescan).  The raw score is the window entropy normalized by its maximum
/// (min(8, log2(bytes)) bits); training records a per-id baseline that is
/// subtracted, so naturally high-entropy legitimate signals (counters,
/// CRCs) do not eat the detection margin.  Fuzz payloads are near-uniform
/// (Fig. 5) and score ~1; captured traffic (Fig. 4) scores ~0.
class EntropyDetector final : public Detector {
 public:
  explicit EntropyDetector(EntropyConfig config = {});

  std::string_view name() const override { return "entropy"; }
  void train(const can::CanFrame& frame, sim::SimTime time) override;
  void finalize_training() override;
  double score(const can::CanFrame& frame, sim::SimTime time) override;
  void reset() override;

  /// Normalized window entropy for `id` right now, in [0,1] (pre-baseline).
  double window_entropy(std::uint32_t id) const;

 private:
  struct Window {
    struct Slot {
      std::array<std::uint8_t, can::kMaxClassicPayload> bytes{};
      std::uint8_t length = 0;
    };
    std::vector<Slot> ring;
    std::size_t head = 0;   // next slot to overwrite
    std::size_t frames = 0; // frames currently in the window
    std::array<std::uint32_t, 256> counts{};
    double sum_c_log_c = 0.0;  // sum of c*log2(c) over byte values
    std::uint64_t bytes_total = 0;
  };

  Window& window_for(std::uint32_t id);
  void push(Window& window, const can::CanFrame& frame);
  static double normalized_entropy(const Window& window);

  EntropyConfig config_;
  std::unordered_map<std::uint32_t, Window> windows_;
  std::unordered_map<std::uint32_t, double> baseline_;
  bool training_done_ = false;
};

/// The standard four-detector set over `database` (allowlist seeded from the
/// database, timing, range, entropy with default configs).
std::vector<std::unique_ptr<Detector>> standard_detectors(const dbc::Database& database);

}  // namespace acf::ids
