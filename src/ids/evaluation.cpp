#include "ids/evaluation.hpp"

#include <algorithm>

namespace acf::ids {

// -------------------------------------------------------------- labeler -----

std::string FrameLabeler::fingerprint(const can::CanFrame& frame) {
  std::string key;
  key.reserve(8 + frame.payload().size());
  const std::uint32_t id = frame.id();
  key.push_back(static_cast<char>(id & 0xFF));
  key.push_back(static_cast<char>((id >> 8) & 0xFF));
  key.push_back(static_cast<char>((id >> 16) & 0xFF));
  key.push_back(static_cast<char>((id >> 24) & 0xFF));
  key.push_back(static_cast<char>((frame.is_extended() ? 1 : 0) | (frame.is_remote() ? 2 : 0) |
                                  (frame.is_fd() ? 4 : 0)));
  key.push_back(static_cast<char>(frame.dlc()));
  for (const std::uint8_t byte : frame.payload()) key.push_back(static_cast<char>(byte));
  return key;
}

void FrameLabeler::note_injected(const can::CanFrame& frame) {
  ++pending_[fingerprint(frame)];
  ++injected_;
}

bool FrameLabeler::consume_if_attack(const can::CanFrame& frame) {
  const auto it = pending_.find(fingerprint(frame));
  if (it == pending_.end()) return false;
  if (--it->second == 0) pending_.erase(it);
  ++matched_;
  return true;
}

// -------------------------------------------------------- detector eval -----

DetectorEval::DetectorEval() : attack_bins(kBins, 0), legit_bins(kBins, 0) {}

std::size_t DetectorEval::bin_of(double score) noexcept {
  score = std::clamp(score, 0.0, 1.0);
  const auto bin = static_cast<std::size_t>(score * static_cast<double>(kBins));
  return std::min(bin, kBins - 1);
}

namespace {

double ratio(std::uint64_t num, std::uint64_t den) noexcept {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace

double DetectorEval::precision() const noexcept { return ratio(tp, tp + fp); }
double DetectorEval::recall() const noexcept { return ratio(tp, tp + fn); }

double DetectorEval::f1() const noexcept {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double DetectorEval::false_positive_rate() const noexcept { return ratio(fp, fp + tn); }

std::vector<RocPoint> DetectorEval::roc(std::size_t points) const {
  if (points < 2) points = 2;
  std::uint64_t attack_total = 0, legit_total = 0;
  for (std::size_t b = 0; b < kBins; ++b) {
    attack_total += attack_bins[b];
    legit_total += legit_bins[b];
  }
  std::vector<RocPoint> curve;
  curve.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(points - 1);
    // Scores >= t alert; bin b holds scores in [b/kBins, (b+1)/kBins).
    const std::size_t first_bin = (i + 1 == points) ? kBins - 1 : bin_of(t);
    std::uint64_t attack_hits = 0, legit_hits = 0;
    for (std::size_t b = first_bin; b < kBins; ++b) {
      attack_hits += attack_bins[b];
      legit_hits += legit_bins[b];
    }
    // The top threshold (1.0) only counts the top bin's exact-1.0 scores, an
    // approximation one bin wide — consistent across merges, which is what
    // the sweep needs.
    curve.push_back({t, ratio(attack_hits, attack_total), ratio(legit_hits, legit_total)});
  }
  return curve;
}

double DetectorEval::auc() const {
  std::uint64_t attack_total = 0, legit_total = 0;
  for (std::size_t b = 0; b < kBins; ++b) {
    attack_total += attack_bins[b];
    legit_total += legit_bins[b];
  }
  if (attack_total == 0 || legit_total == 0) return 0.5;
  // Sweep thresholds from above the top bin down to 0, accumulating the
  // trapezoid area in (FPR, TPR) space.  Ties inside one bin contribute a
  // trapezoid, i.e. the standard 0.5 tie credit.
  double area = 0.0;
  double prev_tpr = 0.0, prev_fpr = 0.0;
  std::uint64_t attack_hits = 0, legit_hits = 0;
  for (std::size_t b = kBins; b-- > 0;) {
    attack_hits += attack_bins[b];
    legit_hits += legit_bins[b];
    const double tpr = ratio(attack_hits, attack_total);
    const double fpr = ratio(legit_hits, legit_total);
    area += (fpr - prev_fpr) * (tpr + prev_tpr) / 2.0;
    prev_tpr = tpr;
    prev_fpr = fpr;
  }
  return area;
}

void DetectorEval::merge_counts(const DetectorEval& other) {
  if (name.empty()) {
    name = other.name;
    threshold = other.threshold;
  }
  tp += other.tp;
  fp += other.fp;
  tn += other.tn;
  fn += other.fn;
  for (std::size_t b = 0; b < kBins; ++b) {
    attack_bins[b] += other.attack_bins[b];
    legit_bins[b] += other.legit_bins[b];
  }
}

// ------------------------------------------------------------ evaluator -----

PipelineEvaluator::PipelineEvaluator(Pipeline& pipeline) {
  eval_.detectors.resize(pipeline.detector_count());
  for (std::size_t i = 0; i < pipeline.detector_count(); ++i) {
    eval_.detectors[i].name = std::string(pipeline.detector(i).name());
    eval_.detectors[i].threshold = pipeline.detector(i).threshold();
  }
  pipeline.set_score_hook([this](const can::CanFrame& frame, sim::SimTime time,
                                 std::span<const double> scores) {
    on_scores(frame, time, scores);
  });
}

void PipelineEvaluator::on_scores(const can::CanFrame& frame, sim::SimTime time,
                                  std::span<const double> scores) {
  const bool attack = labeler_.consume_if_attack(frame);
  const double now_s = sim::to_seconds(time);
  if (attack) {
    ++eval_.attack_frames;
    if (first_attack_time_ < 0.0) first_attack_time_ = now_s;
  } else {
    ++eval_.legit_frames;
  }
  for (std::size_t i = 0; i < scores.size() && i < eval_.detectors.size(); ++i) {
    DetectorEval& det = eval_.detectors[i];
    const double score = scores[i];
    const bool alarm = score >= det.threshold;
    if (attack) {
      ++det.attack_bins[DetectorEval::bin_of(score)];
      alarm ? ++det.tp : ++det.fn;
      if (alarm && det.detection_latency < 0.0 && first_attack_time_ >= 0.0) {
        det.detection_latency = now_s - first_attack_time_;
      }
    } else {
      ++det.legit_bins[DetectorEval::bin_of(score)];
      alarm ? ++det.fp : ++det.tn;
    }
  }
}

}  // namespace acf::ids
