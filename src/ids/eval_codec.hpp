// TrialEval <-> text digest codec.
//
// A fleet trial's detector evaluation has to reach the coordinator from a
// remote worker, but the wire protocol only carries TrialOutcome — whose
// findings are plain strings, round-tripped byte-identically (and clamped
// far above these digests' size).  So an attack world encodes its TrialEval
// as marker-tagged finding lines and every consumer (bench, fleet_run,
// tests) decodes outcomes back into evaluations: in-process and distributed
// runs flow through the one codec and produce byte-identical reports.
//
// Line grammar (space-separated tokens after the marker):
//   ids-eval/1 totals attack=N legit=N trained=N scored=N raised=N
//              suppressed=N dropped=N
//   ids-eval/1 det name=<detector> thr=<%.17g> tp=N fp=N tn=N fn=N
//              lat=<%.17g> ab=<i:c,i:c|-> lb=<i:c,i:c|->
// Histograms are sparse bin:count pairs ("-" when empty); doubles use
// %.17g so decode(encode(x)) is value-exact.
#pragma once

#include <string>
#include <string_view>

#include "ids/evaluation.hpp"

namespace acf::ids {

inline constexpr std::string_view kEvalDigestMarker = "ids-eval/1 ";

/// The totals line for one trial evaluation.
std::string encode_eval_totals(const TrialEval& eval);

/// One detector's digest line.
std::string encode_detector_eval(const DetectorEval& detector);

/// Scans `line` for the digest marker (any prefix — e.g. a Finding summary —
/// is skipped) and merges the payload into `eval`: a totals line sets the
/// trial counters, a det line appends to eval.detectors.  Returns false when
/// the line carries no digest or fails to parse (eval is left unchanged).
bool decode_eval_line(std::string_view line, TrialEval& eval);

}  // namespace acf::ids
