// AlertOracle: the bridge from IDS alerts to campaign findings.  A fuzz
// campaign polls its oracles; this one drains the pipeline's alert queue and
// reports the batch as one Observation, so IDS detections flow into the
// same Finding records (stream position, recent-frames window, seed) every
// other oracle produces — a detector firing is just another monitored
// channel in the paper's §II sense.
#pragma once

#include "ids/pipeline.hpp"
#include "oracle/oracle.hpp"

namespace acf::ids {

class AlertOracle final : public oracle::Oracle {
 public:
  /// `severity` is the verdict an alert batch maps to: kSuspicious (default)
  /// records findings without stopping the campaign; kFailure makes the IDS
  /// the stopping oracle (detector-response studies).
  explicit AlertOracle(Pipeline& pipeline,
                       oracle::Verdict severity = oracle::Verdict::kSuspicious)
      : pipeline_(pipeline), severity_(severity) {}

  std::string_view name() const override { return "ids-alerts"; }
  std::optional<oracle::Observation> poll(sim::SimTime now) override;
  void reset() override;

  std::uint64_t alerts_reported() const noexcept { return reported_; }

 private:
  Pipeline& pipeline_;
  oracle::Verdict severity_;
  std::uint64_t reported_ = 0;
};

}  // namespace acf::ids
