// OBD-II (SAE J1979) emissions diagnostics: the service the open in-cabin
// port the paper plugs into actually speaks.  Runs over ISO-TP on the
// standard functional/physical ids (0x7DF broadcast request, 0x7E8+ replies).
//
// Implemented services:
//   Mode 01  current data (PID support bitmaps, RPM, speed, coolant, ...)
//   Mode 03  stored DTCs
//   Mode 04  clear DTCs
//   Mode 09  vehicle information (VIN)
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "isotp/isotp.hpp"
#include "sim/scheduler.hpp"

namespace acf::obd {

/// Functional (broadcast) OBD request id and the first physical response id.
inline constexpr std::uint32_t kObdFunctionalRequest = 0x7DF;
inline constexpr std::uint32_t kObdFirstResponse = 0x7E8;

// Modes.
inline constexpr std::uint8_t kModeCurrentData = 0x01;
inline constexpr std::uint8_t kModeStoredDtcs = 0x03;
inline constexpr std::uint8_t kModeClearDtcs = 0x04;
inline constexpr std::uint8_t kModeVehicleInfo = 0x09;

// Mode 01 PIDs.
inline constexpr std::uint8_t kPidSupported01To20 = 0x00;
inline constexpr std::uint8_t kPidCoolantTemp = 0x05;
inline constexpr std::uint8_t kPidEngineRpm = 0x0C;
inline constexpr std::uint8_t kPidVehicleSpeed = 0x0D;
inline constexpr std::uint8_t kPidThrottle = 0x11;
// Mode 09 info types.
inline constexpr std::uint8_t kInfoVin = 0x02;

/// Live-data source the server queries when answering Mode 01.
struct ObdDataSource {
  std::function<double()> rpm = [] { return 0.0; };
  std::function<double()> speed_kph = [] { return 0.0; };
  std::function<double()> coolant_c = [] { return 0.0; };
  std::function<double()> throttle_pct = [] { return 0.0; };
  /// 2-byte DTC codes for Mode 03 (P0xxx encoding).
  std::function<std::vector<std::uint16_t>()> dtcs = [] {
    return std::vector<std::uint16_t>{};
  };
  std::function<void()> clear_dtcs = [] {};
  std::string vin = "WVWZZZ1KZAW000017";
};

/// Encodes/decodes the standard PID scalings (also used by the client).
std::uint16_t encode_rpm(double rpm) noexcept;           // rpm * 4
double decode_rpm(std::uint16_t raw) noexcept;
std::uint8_t encode_temp(double celsius) noexcept;       // +40 offset
double decode_temp(std::uint8_t raw) noexcept;
std::uint8_t encode_percent(double pct) noexcept;        // *255/100
double decode_percent(std::uint8_t raw) noexcept;

/// OBD server: owns an ISO-TP endpoint answering both the functional id and
/// its physical request id (response id = request id + 8 per J1979).
class ObdServer {
 public:
  ObdServer(sim::Scheduler& scheduler, isotp::IsoTpChannel::SendFn send,
            std::uint32_t physical_request_id, ObdDataSource source);

  /// Feed all received frames (functional and physical requests).
  void handle_frame(const can::CanFrame& frame, sim::SimTime time);

  std::uint64_t requests_served() const noexcept { return served_; }
  std::uint64_t malformed_requests() const noexcept { return malformed_; }

 private:
  void handle_request(const std::vector<std::uint8_t>& request);
  std::vector<std::uint8_t> mode01(std::span<const std::uint8_t> pids);
  std::vector<std::uint8_t> mode03();
  std::vector<std::uint8_t> mode09(std::span<const std::uint8_t> info_types);

  isotp::IsoTpChannel functional_rx_;
  isotp::IsoTpChannel physical_;
  ObdDataSource source_;
  std::uint64_t served_ = 0;
  std::uint64_t malformed_ = 0;
};

/// Minimal scan-tool client.
///
/// Requests go out as single frames on the functional id (0x7DF), like a
/// real generic scan tool; the reassembly channel (and therefore ISO-TP
/// flow control for long responses such as the VIN) uses the physical id
/// pair, which is the J1979 flow-control convention.
class ObdClient {
 public:
  ObdClient(sim::Scheduler& scheduler, isotp::IsoTpChannel::SendFn send,
            std::uint32_t response_id = kObdFirstResponse);

  void handle_frame(const can::CanFrame& frame, sim::SimTime time);

  bool request_pid(std::uint8_t mode, std::uint8_t pid);
  bool request_mode(std::uint8_t mode);  // e.g. Mode 03 has no PID
  /// Address requests to the physical id instead of 0x7DF.
  void set_functional_addressing(bool on) noexcept { functional_ = on; }

  /// Raw last response (mode+0x40, pid, data...); cleared by each request.
  const std::optional<std::vector<std::uint8_t>>& last_response() const noexcept {
    return response_;
  }
  std::optional<double> last_rpm() const;
  std::optional<double> last_speed() const;
  std::optional<std::string> last_vin() const;
  std::vector<std::uint16_t> last_dtcs() const;

 private:
  bool send_request(std::vector<std::uint8_t> request);

  isotp::IsoTpChannel::SendFn send_;
  isotp::IsoTpChannel channel_;  // physical pair: reassembly + flow control
  bool functional_ = true;
  std::optional<std::vector<std::uint8_t>> response_;
};

}  // namespace acf::obd
