#include "obd/obd.hpp"

#include <algorithm>
#include <cmath>

namespace acf::obd {

std::uint16_t encode_rpm(double rpm) noexcept {
  const double raw = std::clamp(rpm * 4.0, 0.0, 65535.0);
  return static_cast<std::uint16_t>(std::lround(raw));
}
double decode_rpm(std::uint16_t raw) noexcept { return raw / 4.0; }

std::uint8_t encode_temp(double celsius) noexcept {
  const double raw = std::clamp(celsius + 40.0, 0.0, 255.0);
  return static_cast<std::uint8_t>(std::lround(raw));
}
double decode_temp(std::uint8_t raw) noexcept { return raw - 40.0; }

std::uint8_t encode_percent(double pct) noexcept {
  const double raw = std::clamp(pct * 255.0 / 100.0, 0.0, 255.0);
  return static_cast<std::uint8_t>(std::lround(raw));
}
double decode_percent(std::uint8_t raw) noexcept { return raw * 100.0 / 255.0; }

namespace {

isotp::IsoTpConfig config_for(std::uint32_t rx, std::uint32_t tx) {
  isotp::IsoTpConfig config;
  config.rx_id = rx;
  config.tx_id = tx;
  return config;
}

/// PID-support bitmap for PIDs 0x01..0x20: bit 31 is PID 0x01.
std::uint32_t supported_bitmap() {
  std::uint32_t bits = 0;
  for (std::uint8_t pid : {kPidCoolantTemp, kPidEngineRpm, kPidVehicleSpeed, kPidThrottle}) {
    bits |= 1u << (32 - pid);
  }
  return bits;
}

}  // namespace

ObdServer::ObdServer(sim::Scheduler& scheduler, isotp::IsoTpChannel::SendFn send,
                     std::uint32_t physical_request_id, ObdDataSource source)
    : functional_rx_(scheduler, send,
                     config_for(kObdFunctionalRequest, physical_request_id + 8)),
      physical_(scheduler, std::move(send),
                config_for(physical_request_id, physical_request_id + 8)),
      source_(std::move(source)) {
  const auto handler = [this](const std::vector<std::uint8_t>& request, sim::SimTime) {
    handle_request(request);
  };
  functional_rx_.set_on_message(handler);
  physical_.set_on_message(handler);
}

void ObdServer::handle_frame(const can::CanFrame& frame, sim::SimTime time) {
  functional_rx_.handle_frame(frame, time);
  physical_.handle_frame(frame, time);
}

void ObdServer::handle_request(const std::vector<std::uint8_t>& request) {
  if (request.empty()) {
    ++malformed_;
    return;
  }
  const std::uint8_t mode = request[0];
  std::vector<std::uint8_t> response;
  switch (mode) {
    case kModeCurrentData:
      if (request.size() < 2) {
        ++malformed_;
        return;
      }
      response = mode01({request.data() + 1, request.size() - 1});
      break;
    case kModeStoredDtcs:
      response = mode03();
      break;
    case kModeClearDtcs:
      source_.clear_dtcs();
      response = {static_cast<std::uint8_t>(mode + 0x40)};
      break;
    case kModeVehicleInfo:
      if (request.size() < 2) {
        ++malformed_;
        return;
      }
      response = mode09({request.data() + 1, request.size() - 1});
      break;
    default:
      // SIDs >= 0x10 belong to a UDS stack sharing the id pair: not ours.
      // Unsupported genuine OBD modes get silence (J1979 ECUs do not NRC);
      // count those for the fuzzing oracle.
      if (mode < 0x10) ++malformed_;
      return;
  }
  if (response.empty()) {
    ++malformed_;
    return;
  }
  ++served_;
  // Responses go out on the physical response id regardless of which
  // request id carried the query.
  physical_.send(std::move(response));
}

std::vector<std::uint8_t> ObdServer::mode01(std::span<const std::uint8_t> pids) {
  std::vector<std::uint8_t> out = {kModeCurrentData + 0x40};
  for (std::uint8_t pid : pids) {
    switch (pid) {
      case kPidSupported01To20: {
        const std::uint32_t bits = supported_bitmap();
        out.push_back(pid);
        out.push_back(static_cast<std::uint8_t>(bits >> 24));
        out.push_back(static_cast<std::uint8_t>(bits >> 16));
        out.push_back(static_cast<std::uint8_t>(bits >> 8));
        out.push_back(static_cast<std::uint8_t>(bits));
        break;
      }
      case kPidCoolantTemp:
        out.push_back(pid);
        out.push_back(encode_temp(source_.coolant_c()));
        break;
      case kPidEngineRpm: {
        const std::uint16_t raw = encode_rpm(source_.rpm());
        out.push_back(pid);
        out.push_back(static_cast<std::uint8_t>(raw >> 8));
        out.push_back(static_cast<std::uint8_t>(raw & 0xFF));
        break;
      }
      case kPidVehicleSpeed:
        out.push_back(pid);
        out.push_back(static_cast<std::uint8_t>(
            std::clamp(source_.speed_kph(), 0.0, 255.0)));
        break;
      case kPidThrottle:
        out.push_back(pid);
        out.push_back(encode_percent(source_.throttle_pct()));
        break;
      default:
        break;  // unsupported PIDs are simply omitted from the reply
    }
  }
  // A query consisting solely of unsupported PIDs yields no data: silent.
  return out.size() > 1 ? out : std::vector<std::uint8_t>{};
}

std::vector<std::uint8_t> ObdServer::mode03() {
  const auto dtcs = source_.dtcs();
  std::vector<std::uint8_t> out = {kModeStoredDtcs + 0x40,
                                   static_cast<std::uint8_t>(std::min<std::size_t>(
                                       dtcs.size(), 0xFF))};
  for (std::uint16_t dtc : dtcs) {
    out.push_back(static_cast<std::uint8_t>(dtc >> 8));
    out.push_back(static_cast<std::uint8_t>(dtc & 0xFF));
  }
  return out;
}

std::vector<std::uint8_t> ObdServer::mode09(std::span<const std::uint8_t> info_types) {
  std::vector<std::uint8_t> out = {kModeVehicleInfo + 0x40};
  for (std::uint8_t info : info_types) {
    if (info != kInfoVin) continue;
    out.push_back(info);
    out.push_back(1);  // record count
    out.insert(out.end(), source_.vin.begin(), source_.vin.end());
  }
  return out.size() > 1 ? out : std::vector<std::uint8_t>{};
}

// ---------------------------------------------------------------- client --

ObdClient::ObdClient(sim::Scheduler& scheduler, isotp::IsoTpChannel::SendFn send,
                     std::uint32_t response_id)
    : send_(send),
      channel_(scheduler, std::move(send), config_for(response_id, response_id - 8)) {
  channel_.set_on_message([this](const std::vector<std::uint8_t>& payload, sim::SimTime) {
    response_ = payload;
  });
}

void ObdClient::handle_frame(const can::CanFrame& frame, sim::SimTime time) {
  channel_.handle_frame(frame, time);
}

bool ObdClient::send_request(std::vector<std::uint8_t> request) {
  response_.reset();
  if (!functional_) return channel_.send(std::move(request));
  // Functional addressing: OBD requests always fit a single frame; build
  // the padded SF by hand so it carries the broadcast id.
  if (request.empty() || request.size() > 7) return false;
  std::vector<std::uint8_t> bytes;
  bytes.reserve(8);
  bytes.push_back(static_cast<std::uint8_t>(request.size()));  // SF PCI
  bytes.insert(bytes.end(), request.begin(), request.end());
  bytes.resize(8, 0xCC);
  const auto frame = can::CanFrame::data(kObdFunctionalRequest, bytes);
  return frame && send_(*frame);
}

bool ObdClient::request_pid(std::uint8_t mode, std::uint8_t pid) {
  return send_request({mode, pid});
}

bool ObdClient::request_mode(std::uint8_t mode) { return send_request({mode}); }

std::optional<double> ObdClient::last_rpm() const {
  if (!response_ || response_->size() < 4 || (*response_)[0] != kModeCurrentData + 0x40 ||
      (*response_)[1] != kPidEngineRpm) {
    return std::nullopt;
  }
  return decode_rpm(static_cast<std::uint16_t>(((*response_)[2] << 8) | (*response_)[3]));
}

std::optional<double> ObdClient::last_speed() const {
  if (!response_ || response_->size() < 3 || (*response_)[0] != kModeCurrentData + 0x40 ||
      (*response_)[1] != kPidVehicleSpeed) {
    return std::nullopt;
  }
  return static_cast<double>((*response_)[2]);
}

std::optional<std::string> ObdClient::last_vin() const {
  if (!response_ || response_->size() < 4 || (*response_)[0] != kModeVehicleInfo + 0x40 ||
      (*response_)[1] != kInfoVin) {
    return std::nullopt;
  }
  return std::string(response_->begin() + 3, response_->end());
}

std::vector<std::uint16_t> ObdClient::last_dtcs() const {
  std::vector<std::uint16_t> out;
  if (!response_ || response_->size() < 2 || (*response_)[0] != kModeStoredDtcs + 0x40) {
    return out;
  }
  for (std::size_t i = 2; i + 1 < response_->size(); i += 2) {
    out.push_back(static_cast<std::uint16_t>(((*response_)[i] << 8) | (*response_)[i + 1]));
  }
  return out;
}

}  // namespace acf::obd
