#include "oracle/oracle.hpp"

namespace acf::oracle {

const char* to_string(Verdict verdict) noexcept {
  switch (verdict) {
    case Verdict::kNominal: return "nominal";
    case Verdict::kSuspicious: return "suspicious";
    case Verdict::kFailure: return "failure";
  }
  return "?";
}

std::optional<Observation> CompositeOracle::poll(sim::SimTime now) {
  std::optional<Observation> worst;
  auto consider = [&worst](std::optional<Observation> obs) {
    if (!obs) return;
    if (!worst || static_cast<int>(obs->verdict) > static_cast<int>(worst->verdict)) {
      worst = std::move(obs);
    }
  };
  for (auto& oracle : oracles_) consider(oracle->poll(now));
  for (Oracle* oracle : borrowed_) consider(oracle->poll(now));
  return worst;
}

void CompositeOracle::reset() {
  for (auto& oracle : oracles_) oracle->reset();
  for (Oracle* oracle : borrowed_) oracle->reset();
}

}  // namespace acf::oracle
