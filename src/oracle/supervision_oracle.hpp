// SupervisionOracle: folds resilience::NodeSupervisor events into the
// campaign's oracle channel.  A supervised restart is the harness healing
// the target — worth recording (suspicious) but not a verdict by itself; a
// node the supervisor had to abandon (restart budget exhausted) is a
// genuine endurance failure of the kind the paper's long runs surface.
#pragma once

#include "oracle/oracle.hpp"
#include "resilience/supervisor.hpp"

namespace acf::oracle {

class SupervisionOracle final : public Oracle {
 public:
  /// The supervisor must outlive the oracle.
  explicit SupervisionOracle(const resilience::NodeSupervisor& supervisor);

  std::string_view name() const override { return "supervision"; }
  std::optional<Observation> poll(sim::SimTime now) override;
  void reset() override;

 private:
  const resilience::NodeSupervisor& supervisor_;
  std::size_t cursor_ = 0;  // events consumed so far
};

}  // namespace acf::oracle
