#include "oracle/bus_oracles.hpp"

#include <cstdio>

namespace acf::oracle {

BusSilenceOracle::BusSilenceOracle(can::VirtualBus& bus, sim::Duration window)
    : bus_(bus), window_(window) {
  node_ = bus_.attach(*this, "oracle.silence", {}, /*listen_only=*/true);
}

BusSilenceOracle::~BusSilenceOracle() { bus_.detach(node_); }

void BusSilenceOracle::on_frame(const can::CanFrame&, sim::SimTime time) {
  last_frame_ = time;
}

std::optional<Observation> BusSilenceOracle::poll(sim::SimTime now) {
  if (reported_ || now - last_frame_ < window_) return std::nullopt;
  reported_ = true;
  char detail[96];
  std::snprintf(detail, sizeof detail, "no bus traffic for %.0f ms",
                sim::to_millis(now - last_frame_));
  return Observation{Verdict::kFailure, detail, now};
}

void BusSilenceOracle::reset() {
  reported_ = false;
  last_frame_ = sim::SimTime{0};
}

ErrorFrameRateOracle::ErrorFrameRateOracle(can::VirtualBus& bus, double suspicious_per_second,
                                           double failure_per_second)
    : bus_(bus), suspicious_rate_(suspicious_per_second), failure_rate_(failure_per_second) {
  node_ = bus_.attach(*this, "oracle.errors", {}, /*listen_only=*/true);
}

ErrorFrameRateOracle::~ErrorFrameRateOracle() { bus_.detach(node_); }

void ErrorFrameRateOracle::on_error_frame(sim::SimTime) {
  ++total_;
  ++bucket_count_;
}

std::optional<Observation> ErrorFrameRateOracle::poll(sim::SimTime now) {
  if (now - bucket_start_ < std::chrono::seconds(1)) return std::nullopt;
  const double seconds = sim::to_seconds(now - bucket_start_);
  last_rate_ = static_cast<double>(bucket_count_) / seconds;
  bucket_start_ = now;
  bucket_count_ = 0;
  if (last_rate_ < suspicious_rate_) return std::nullopt;
  char detail[96];
  std::snprintf(detail, sizeof detail, "%.0f error frames/s on the bus", last_rate_);
  const Verdict verdict =
      last_rate_ >= failure_rate_ ? Verdict::kFailure : Verdict::kSuspicious;
  return Observation{verdict, detail, now};
}

void ErrorFrameRateOracle::reset() {
  total_ = 0;
  bucket_count_ = 0;
  bucket_start_ = sim::SimTime{0};
  last_rate_ = 0.0;
}

HeartbeatOracle::HeartbeatOracle(can::VirtualBus& bus, std::uint32_t id,
                                 sim::Duration expected_period,
                                 std::uint32_t missed_beats_failure)
    : bus_(bus), id_(id), period_(expected_period), missed_failure_(missed_beats_failure) {
  node_ = bus_.attach(*this, "oracle.heartbeat",
                      can::FilterBank{can::IdMaskFilter::exact(id)}, /*listen_only=*/true);
}

HeartbeatOracle::~HeartbeatOracle() { bus_.detach(node_); }

void HeartbeatOracle::on_frame(const can::CanFrame& frame, sim::SimTime time) {
  if (frame.id() != id_) return;
  ++beats_;
  ever_seen_ = true;
  last_beat_ = time;
}

std::optional<Observation> HeartbeatOracle::poll(sim::SimTime now) {
  if (reported_ || !ever_seen_) return std::nullopt;
  const sim::Duration silence = now - last_beat_;
  if (silence < period_ * missed_failure_) return std::nullopt;
  reported_ = true;
  char detail[96];
  std::snprintf(detail, sizeof detail, "heartbeat id 0x%03X missing for %.0f ms (period %.0f ms)",
                id_, sim::to_millis(silence), sim::to_millis(period_));
  return Observation{Verdict::kFailure, detail, now};
}

void HeartbeatOracle::reset() {
  beats_ = 0;
  ever_seen_ = false;
  reported_ = false;
  last_beat_ = sim::SimTime{0};
}

NodeErrorStateOracle::NodeErrorStateOracle(const can::VirtualBus& bus, can::NodeId node)
    : bus_(bus), node_(node) {}

std::optional<Observation> NodeErrorStateOracle::poll(sim::SimTime now) {
  if (reported_) return std::nullopt;
  const auto& errors = bus_.error_state(node_);
  if (errors.mode() == can::ErrorMode::kErrorActive) return std::nullopt;
  reported_ = true;
  char detail[96];
  std::snprintf(detail, sizeof detail, "node '%s' entered %s (TEC=%u REC=%u)",
                bus_.node_name(node_).c_str(), can::to_string(errors.mode()), errors.tec(),
                errors.rec());
  const Verdict verdict = errors.bus_off() ? Verdict::kFailure : Verdict::kSuspicious;
  return Observation{verdict, detail, now};
}

}  // namespace acf::oracle
