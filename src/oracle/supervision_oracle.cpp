#include "oracle/supervision_oracle.hpp"

namespace acf::oracle {

namespace {

Verdict verdict_for(resilience::SupervisionEventType type) noexcept {
  using resilience::SupervisionEventType;
  switch (type) {
    case SupervisionEventType::kBudgetExhausted:
      return Verdict::kFailure;
    case SupervisionEventType::kSilentNode:
    case SupervisionEventType::kBabblingNode:
    case SupervisionEventType::kBusOff:
    case SupervisionEventType::kRestart:
      return Verdict::kSuspicious;
    case SupervisionEventType::kRecovered:
      return Verdict::kNominal;
  }
  return Verdict::kNominal;
}

}  // namespace

SupervisionOracle::SupervisionOracle(const resilience::NodeSupervisor& supervisor)
    : supervisor_(supervisor) {}

std::optional<Observation> SupervisionOracle::poll(sim::SimTime now) {
  // Report the most severe event that arrived since the last poll; the
  // interface allows at most one observation per poll.
  const auto& events = supervisor_.events();
  std::optional<Observation> worst;
  for (; cursor_ < events.size(); ++cursor_) {
    const auto& event = events[cursor_];
    const Verdict verdict = verdict_for(event.type);
    if (verdict == Verdict::kNominal) continue;
    if (!worst || static_cast<int>(verdict) > static_cast<int>(worst->verdict)) {
      worst = Observation{verdict, event.summary(), now};
    }
  }
  return worst;
}

void SupervisionOracle::reset() { cursor_ = supervisor_.events().size(); }

}  // namespace acf::oracle
