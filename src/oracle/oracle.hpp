// Test oracles: the paper devotes §II to the oracle problem — "how to
// determine, or not, the correct responses of a system" — and lists the
// monitoring channels proposed in prior work (network monitoring, debug
// interfaces, simulator-internal signals, XCP, physical sensors).  Each
// oracle here is one such channel; a campaign composes several.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace acf::oracle {

enum class Verdict : std::uint8_t {
  kNominal,     // nothing to report
  kSuspicious,  // anomalous but not conclusively a failure
  kFailure,     // the system under test misbehaved
};

const char* to_string(Verdict verdict) noexcept;

struct Observation {
  Verdict verdict = Verdict::kNominal;
  std::string detail;
  sim::SimTime time{0};
};

class Oracle {
 public:
  virtual ~Oracle() = default;

  virtual std::string_view name() const = 0;

  /// Polled by the campaign at its oracle interval.  Returns an observation
  /// when there is something to report (at most one per poll).
  virtual std::optional<Observation> poll(sim::SimTime now) = 0;

  /// Clears latched state between campaign runs / after a target reset.
  virtual void reset() {}
};

/// Polls a set of oracles; reports the most severe observation per poll.
class CompositeOracle final : public Oracle {
 public:
  void add(std::unique_ptr<Oracle> oracle) { oracles_.push_back(std::move(oracle)); }
  /// Adds a non-owned oracle (must outlive the composite).
  void add(Oracle& oracle) { borrowed_.push_back(&oracle); }

  std::string_view name() const override { return "composite"; }
  std::optional<Observation> poll(sim::SimTime now) override;
  void reset() override;

  std::size_t size() const noexcept { return oracles_.size() + borrowed_.size(); }

 private:
  std::vector<std::unique_ptr<Oracle>> oracles_;
  std::vector<Oracle*> borrowed_;
};

}  // namespace acf::oracle
