#include "oracle/vehicle_oracles.hpp"

#include <cstdio>

namespace acf::oracle {

UnlockOracle::UnlockOracle(can::VirtualBus& bus, const vehicle::BodyControlModule* bcm)
    : bus_(bus), bcm_(bcm) {
  node_ = bus_.attach(*this, "oracle.unlock", {}, /*listen_only=*/true);
}

UnlockOracle::~UnlockOracle() { bus_.detach(node_); }

void UnlockOracle::on_frame(const can::CanFrame& frame, sim::SimTime time) {
  if (frame.id() == dbc::kMsgBodyAck && frame.length() >= 2 &&
      frame.payload()[0] == dbc::kCmdUnlock && frame.payload()[1] != 0) {
    ++ack_count_;
    // Keep the *latest* ack time until a report is made: under physical
    // confirmation the genuine ack is the one immediately preceding the
    // confirming poll (earlier acks on a fuzzed bus may be forged traffic).
    if (!reported_) {
      if (!ack_seen_) ack_seen_ = true;
      ack_time_ = time;
    }
  }
}

std::optional<Observation> UnlockOracle::poll(sim::SimTime now) {
  if (reported_) return std::nullopt;
  if (bcm_ != nullptr) {
    // Physical channel available: the actuator is authoritative (an ack
    // frame alone may be the fuzzer's own forged traffic).
    if (!bcm_->unlocked()) return std::nullopt;
    reported_ = true;
    // The genuine ack precedes the poll tick; use its exact bus time when we
    // have one, otherwise the poll time.
    if (!ack_seen_) ack_time_ = now;
    return Observation{Verdict::kFailure,
                       "unlock security function activated without authorisation", ack_time_};
  }
  // Network-monitoring only: trust the ack frame (spoofable; see header).
  if (!ack_seen_) return std::nullopt;
  reported_ = true;
  return Observation{Verdict::kFailure,
                     "unlock acknowledgement observed on the bus", ack_time_};
}

void UnlockOracle::reset() {
  ack_seen_ = false;
  reported_ = false;
  ack_count_ = 0;
  ack_time_ = sim::SimTime{0};
}

std::optional<Observation> ComponentCrashOracle::poll(sim::SimTime now) {
  if (reported_) return std::nullopt;
  for (const ecu::Ecu* target : targets_) {
    if (target->crashed()) {
      reported_ = true;
      return Observation{Verdict::kFailure,
                         "component '" + target->name() + "' crashed: " +
                             target->crash_reason(),
                         now};
    }
  }
  return std::nullopt;
}

std::optional<Observation> ClusterStateOracle::poll(sim::SimTime now) {
  if (!crash_reported_ && cluster_.crash_latched()) {
    crash_reported_ = true;
    return Observation{Verdict::kFailure,
                       "cluster display latched '" + cluster_.display_text() +
                           "' (persists across power cycles)",
                       now};
  }
  if (!warning_reported_ && cluster_.any_warning_lit()) {
    warning_reported_ = true;
    char detail[128];
    std::snprintf(detail, sizeof detail,
                  "cluster warnings lit (MIL=%d, sounds=%llu, needle travel=%.0f)",
                  cluster_.mil_on() ? 1 : 0,
                  static_cast<unsigned long long>(cluster_.warning_sounds()),
                  cluster_.needle_travel());
    return Observation{Verdict::kSuspicious, detail, now};
  }
  return std::nullopt;
}

void ClusterStateOracle::reset() {
  warning_reported_ = false;
  crash_reported_ = false;
}

SignalPlausibilityOracle::SignalPlausibilityOracle(can::VirtualBus& bus, dbc::Database database)
    : bus_(bus), db_(std::move(database)) {
  node_ = bus_.attach(*this, "oracle.plausibility", {}, /*listen_only=*/true);
}

SignalPlausibilityOracle::~SignalPlausibilityOracle() { bus_.detach(node_); }

void SignalPlausibilityOracle::on_frame(const can::CanFrame& frame, sim::SimTime time) {
  const dbc::MessageDef* def = db_.by_id(frame.id());
  if (def == nullptr || frame.is_remote()) return;
  for (const auto& sig : def->signals) {
    const auto value = dbc::decode(sig, frame.payload());
    if (!value || sig.in_declared_range(*value)) continue;
    ++violations_;
    char detail[128];
    std::snprintf(detail, sizeof detail, "%s.%s = %.1f outside [%g, %g]", def->name.c_str(),
                  sig.name.c_str(), *value, sig.min, sig.max);
    last_detail_ = detail;
    last_time_ = time;
  }
}

std::optional<Observation> SignalPlausibilityOracle::poll(sim::SimTime) {
  if (violations_ == reported_violations_) return std::nullopt;
  reported_violations_ = violations_;
  return Observation{Verdict::kSuspicious, last_detail_, last_time_};
}

void SignalPlausibilityOracle::reset() {
  violations_ = 0;
  reported_violations_ = 0;
  last_detail_.clear();
}

}  // namespace acf::oracle
