// Network-communication-monitoring oracles: verdicts derived purely from
// observing the bus (the least invasive channel in the paper's list — no
// debug port or XCP needed, and therefore also available to an attacker).
#pragma once

#include <cstdint>

#include "can/bus.hpp"
#include "oracle/oracle.hpp"

namespace acf::oracle {

/// Fails when no frame has been delivered on the bus for `window` — a dead
/// bus usually means the babbling fuzzer silenced every ECU or drove the
/// transmitters bus-off.
class BusSilenceOracle final : public Oracle, private can::BusListener {
 public:
  BusSilenceOracle(can::VirtualBus& bus, sim::Duration window);
  ~BusSilenceOracle() override;

  std::string_view name() const override { return "bus-silence"; }
  std::optional<Observation> poll(sim::SimTime now) override;
  void reset() override;

 private:
  void on_frame(const can::CanFrame& frame, sim::SimTime time) override;

  can::VirtualBus& bus_;
  can::NodeId node_;
  sim::Duration window_;
  sim::SimTime last_frame_{0};
  bool reported_ = false;
};

/// Suspicious when error frames exceed `suspicious_per_second`; fails above
/// `failure_per_second` (sliding 1-second buckets).
class ErrorFrameRateOracle final : public Oracle, private can::BusListener {
 public:
  ErrorFrameRateOracle(can::VirtualBus& bus, double suspicious_per_second = 10.0,
                       double failure_per_second = 100.0);
  ~ErrorFrameRateOracle() override;

  std::string_view name() const override { return "error-frame-rate"; }
  std::optional<Observation> poll(sim::SimTime now) override;
  void reset() override;

  std::uint64_t total_error_frames() const noexcept { return total_; }

 private:
  void on_frame(const can::CanFrame&, sim::SimTime) override {}
  void on_error_frame(sim::SimTime time) override;

  can::VirtualBus& bus_;
  can::NodeId node_;
  double suspicious_rate_;
  double failure_rate_;
  std::uint64_t total_ = 0;
  std::uint64_t bucket_count_ = 0;
  sim::SimTime bucket_start_{0};
  double last_rate_ = 0.0;
};

/// Watches one periodic message id (a heartbeat): suspicious when beats jitter
/// beyond tolerance, fails when `missed_beats_failure` consecutive expected
/// beats never arrive — the least invasive way to spot a silently dead ECU.
class HeartbeatOracle final : public Oracle, private can::BusListener {
 public:
  HeartbeatOracle(can::VirtualBus& bus, std::uint32_t id, sim::Duration expected_period,
                  std::uint32_t missed_beats_failure = 5);
  ~HeartbeatOracle() override;

  std::string_view name() const override { return "heartbeat"; }
  std::optional<Observation> poll(sim::SimTime now) override;
  void reset() override;

  std::uint64_t beats_seen() const noexcept { return beats_; }

 private:
  void on_frame(const can::CanFrame& frame, sim::SimTime time) override;

  can::VirtualBus& bus_;
  can::NodeId node_;
  std::uint32_t id_;
  sim::Duration period_;
  std::uint32_t missed_failure_;
  sim::SimTime last_beat_{0};
  std::uint64_t beats_ = 0;
  bool ever_seen_ = false;
  bool reported_ = false;
};

/// Fails when a watched node's fault-confinement state leaves error-active
/// (the fuzzer knocked a controller into error-passive or bus-off).
class NodeErrorStateOracle final : public Oracle {
 public:
  NodeErrorStateOracle(const can::VirtualBus& bus, can::NodeId node);

  std::string_view name() const override { return "node-error-state"; }
  std::optional<Observation> poll(sim::SimTime now) override;
  void reset() override { reported_ = false; }

 private:
  const can::VirtualBus& bus_;
  can::NodeId node_;
  bool reported_ = false;
};

}  // namespace acf::oracle
