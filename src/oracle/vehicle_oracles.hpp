// Vehicle-level oracles: the simulator-internal and physical-response
// monitoring channels from the paper's oracle discussion — watching the
// lock LED / unlock acknowledgement, component heartbeats (crash), the
// cluster's warning state, and signal plausibility.
#pragma once

#include <cstdint>
#include <vector>

#include "can/bus.hpp"
#include "dbc/target_vehicle_db.hpp"
#include "oracle/oracle.hpp"
#include "vehicle/body_control.hpp"
#include "vehicle/instrument_cluster.hpp"

namespace acf::oracle {

/// Detects activation of the unlock security function.
///
/// Two channels, mirroring the paper's oracle discussion:
///  - the BODY_ACK acknowledgement frame on the bus (the paper's testbench
///    augmentation) — pure network monitoring;
///  - the BCM's actuator state (the LED / "a sensor on the door lock") —
///    physical monitoring.
/// When the physical channel is available it is authoritative: a listen-only
/// tap cannot tell who transmitted a frame, so a fuzzer blasting random
/// frames will eventually forge the ack id itself (~1 in 674k full-space
/// frames) and spoof a network-only oracle.  That false-positive mode is a
/// concrete instance of the oracle problem the paper raises; the
/// ack_frames_seen() counter exposes it for study.
class UnlockOracle final : public Oracle, private can::BusListener {
 public:
  UnlockOracle(can::VirtualBus& bus, const vehicle::BodyControlModule* bcm = nullptr);
  ~UnlockOracle() override;

  std::string_view name() const override { return "unlock"; }
  std::optional<Observation> poll(sim::SimTime now) override;
  void reset() override;

  bool unlock_detected() const noexcept { return reported_; }
  sim::SimTime unlock_time() const noexcept { return ack_time_; }
  /// Unlock-ack frames observed on the bus (genuine or forged).
  std::uint64_t ack_frames_seen() const noexcept { return ack_count_; }

 private:
  void on_frame(const can::CanFrame& frame, sim::SimTime time) override;

  can::VirtualBus& bus_;
  can::NodeId node_;
  const vehicle::BodyControlModule* bcm_;
  bool ack_seen_ = false;
  bool reported_ = false;
  std::uint64_t ack_count_ = 0;
  sim::SimTime ack_time_{0};
};

/// Fails when any watched ECU reports crashed() — the heartbeat-loss /
/// debug-interface channel.
class ComponentCrashOracle final : public Oracle {
 public:
  void watch(const ecu::Ecu& target) { targets_.push_back(&target); }

  std::string_view name() const override { return "component-crash"; }
  std::optional<Observation> poll(sim::SimTime now) override;
  void reset() override { reported_ = false; }

 private:
  std::vector<const ecu::Ecu*> targets_;
  bool reported_ = false;
};

/// Watches the instrument cluster: MIL / warning illumination and the
/// latched crash display (the paper's physical observables on the bench).
class ClusterStateOracle final : public Oracle {
 public:
  explicit ClusterStateOracle(const vehicle::InstrumentCluster& cluster)
      : cluster_(cluster) {}

  std::string_view name() const override { return "cluster-state"; }
  std::optional<Observation> poll(sim::SimTime now) override;
  void reset() override;

 private:
  const vehicle::InstrumentCluster& cluster_;
  bool warning_reported_ = false;
  bool crash_reported_ = false;
};

/// Decodes frames against the signal database and reports values outside
/// their declared ranges (the "comparison module" style oracle of [17]).
class SignalPlausibilityOracle final : public Oracle, private can::BusListener {
 public:
  SignalPlausibilityOracle(can::VirtualBus& bus, dbc::Database database);
  ~SignalPlausibilityOracle() override;

  std::string_view name() const override { return "signal-plausibility"; }
  std::optional<Observation> poll(sim::SimTime now) override;
  void reset() override;

  std::uint64_t violations() const noexcept { return violations_; }

 private:
  void on_frame(const can::CanFrame& frame, sim::SimTime time) override;

  can::VirtualBus& bus_;
  can::NodeId node_;
  dbc::Database db_;
  std::uint64_t violations_ = 0;
  std::uint64_t reported_violations_ = 0;
  std::string last_detail_;
  sim::SimTime last_time_{0};
};

}  // namespace acf::oracle
