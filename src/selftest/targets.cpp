// Self-fuzz targets and their invariant catalogue.
//
// Invariant families (referenced per target below):
//   [R] round-trip: decode∘encode = id, deserialize∘serialize = id
//   [F] fixed point: print∘parse is stable after one cycle (for surfaces
//       that normalise, e.g. sub-microsecond timestamps truncate on print)
//   [M] malformed input is rejected cleanly: nullopt / error list /
//       counted stat — never a throw, crash, UB or unbounded allocation
//   [S] structural: whatever a parser accepts satisfies the type's
//       documented invariants (DLC bounds, signals fit, valid verdicts)
//   [L] liveness: protocol state machines return to idle once input stops
//       (plus bounded tolerance of hostile stalling, e.g. N_WFTmax)
#include "selftest/targets.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "attacks/config.hpp"
#include "can/wire_codec.hpp"
#include "dbc/parser.hpp"
#include "feedback/corpus.hpp"
#include "fleet/remote/wire.hpp"
#include "fuzzer/checkpoint.hpp"
#include "isotp/isotp.hpp"
#include "metrics/snapshot.hpp"
#include "sim/scheduler.hpp"
#include "trace/asc_log.hpp"
#include "trace/candump_log.hpp"
#include "trace/replay.hpp"
#include "transport/transport.hpp"
#include "uds/uds_server.hpp"
#include "util/rng.hpp"

namespace acf::selftest {

namespace {

using Bytes = std::span<const std::uint8_t>;
using Verdict = std::optional<std::string>;

std::string_view as_text(Bytes bytes) {
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

std::uint64_t fnv1a(Bytes bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

bool doubles_equal(double a, double b) {
  return a == b || (std::isnan(a) && std::isnan(b));
}

bool frames_equal(const trace::TimestampedFrame& a, const trace::TimestampedFrame& b) {
  return a.frame == b.frame && a.time == b.time;
}

// ---------------------------------------------------------------------------
// checkpoint: CampaignCheckpoint::deserialize on arbitrary text.  [R][M][S]

bool checkpoints_equal(const fuzzer::CampaignCheckpoint& a,
                       const fuzzer::CampaignCheckpoint& b) {
  if (a.frames_sent != b.frames_sent || a.send_failures != b.send_failures ||
      a.elapsed != b.elapsed || a.generator_name != b.generator_name ||
      a.generator_state != b.generator_state || a.findings.size() != b.findings.size() ||
      a.recent_frames.size() != b.recent_frames.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    const fuzzer::Finding& fa = a.findings[i];
    const fuzzer::Finding& fb = b.findings[i];
    if (fa.observation.verdict != fb.observation.verdict ||
        fa.observation.time != fb.observation.time ||
        fa.observation.detail != fb.observation.detail ||
        fa.frames_sent != fb.frames_sent || fa.seed != fb.seed ||
        fa.generator != fb.generator ||
        fa.recent_frames.size() != fb.recent_frames.size()) {
      return false;
    }
    for (std::size_t f = 0; f < fa.recent_frames.size(); ++f) {
      if (!frames_equal(fa.recent_frames[f], fb.recent_frames[f])) return false;
    }
  }
  for (std::size_t f = 0; f < a.recent_frames.size(); ++f) {
    if (!frames_equal(a.recent_frames[f], b.recent_frames[f])) return false;
  }
  return true;
}

Verdict run_checkpoint(Bytes input) {
  const auto parsed = fuzzer::CampaignCheckpoint::from_string(std::string(as_text(input)));
  if (!parsed) return std::nullopt;  // clean rejection is the contract
  const std::string serialized = parsed->to_string();
  const auto reparsed = fuzzer::CampaignCheckpoint::from_string(serialized);
  if (!reparsed) return "accepted checkpoint fails to reparse after serialize";
  if (!checkpoints_equal(*parsed, *reparsed)) {
    return "checkpoint serialize/deserialize round-trip diverges";
  }
  if (reparsed->to_string() != serialized) {
    return "checkpoint serialization is not a fixed point";
  }
  return std::nullopt;
}

// checkpoint_roundtrip: metamorphic — synthesise a checkpoint whose string
// fields come straight from the input bytes (whitespace, '%', control
// characters and all), then require serialize→deserialize identity.  [R]

std::string slice_text(Bytes input, util::Rng& rng, std::size_t max_len) {
  if (input.empty()) return {};
  const auto len = rng.next_below(std::min(input.size(), max_len) + 1);
  const auto start = rng.next_below(input.size() - len + 1);
  return {reinterpret_cast<const char*>(input.data()) + start,
          static_cast<std::size_t>(len)};
}

can::CanFrame random_frame(util::Rng& rng) {
  const auto kind = rng.next_below(4);
  const auto format = rng.next_bool() ? can::IdFormat::kExtended : can::IdFormat::kStandard;
  const std::uint32_t id = static_cast<std::uint32_t>(rng.next_below(
      format == can::IdFormat::kExtended ? can::kMaxExtendedId + 1 : can::kMaxStandardId + 1));
  if (kind == 0) {
    return *can::CanFrame::remote(id, static_cast<std::uint8_t>(rng.next_below(9)), format);
  }
  std::vector<std::uint8_t> payload(kind == 1 ? rng.next_below(9)
                                              : can::fd_dlc_to_length(static_cast<std::uint8_t>(
                                                    rng.next_below(16))));
  rng.fill(payload);
  if (kind == 1) return *can::CanFrame::data(id, payload, format);
  return *can::CanFrame::fd_data(id, payload, rng.next_bool(), format);
}

Verdict run_checkpoint_roundtrip(Bytes input) {
  util::Rng rng(fnv1a(input) ^ 0xC0FFEEULL);
  fuzzer::CampaignCheckpoint original;
  original.frames_sent = rng.next_u64();
  original.send_failures = rng.next_u64();
  original.elapsed = sim::Duration{static_cast<std::int64_t>(
      rng.next_below(9'000'000'000'000'000'000ULL))};
  original.generator_name = slice_text(input, rng, 48);
  original.generator_state.resize(rng.next_below(9));
  for (auto& word : original.generator_state) word = rng.next_u64();
  const auto finding_count = rng.next_below(4);
  for (std::uint64_t i = 0; i < finding_count; ++i) {
    fuzzer::Finding finding;
    finding.observation.verdict = static_cast<oracle::Verdict>(rng.next_below(3));
    finding.observation.time = sim::SimTime{static_cast<std::int64_t>(
        rng.next_below(9'000'000'000'000'000'000ULL))};
    finding.observation.detail = slice_text(input, rng, 64);
    finding.frames_sent = rng.next_u64();
    finding.seed = rng.next_u64();
    finding.generator = slice_text(input, rng, 48);
    const auto recent = rng.next_below(3);
    for (std::uint64_t f = 0; f < recent; ++f) {
      finding.recent_frames.push_back(
          {random_frame(rng),
           sim::SimTime{static_cast<std::int64_t>(rng.next_below(1'000'000'000'000ULL))}});
    }
    original.findings.push_back(std::move(finding));
  }
  const auto window = rng.next_below(4);
  for (std::uint64_t f = 0; f < window; ++f) {
    original.recent_frames.push_back(
        {random_frame(rng),
         sim::SimTime{static_cast<std::int64_t>(rng.next_below(1'000'000'000'000ULL))}});
  }

  const std::string serialized = original.to_string();
  const auto restored = fuzzer::CampaignCheckpoint::from_string(serialized);
  if (!restored) {
    return "serialized checkpoint failed to deserialize (generator name: \"" +
           original.generator_name + "\")";
  }
  if (!checkpoints_equal(original, *restored)) {
    return "checkpoint round-trip lost data (generator name: \"" +
           original.generator_name + "\")";
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// dbc: parse arbitrary text; whatever loads must be structurally sound and
// survive print→parse unchanged.  [R][M][S]

bool signals_equal(const dbc::SignalDef& a, const dbc::SignalDef& b) {
  return a.name == b.name && a.start_bit == b.start_bit && a.bit_length == b.bit_length &&
         a.byte_order == b.byte_order && a.is_signed == b.is_signed &&
         doubles_equal(a.scale, b.scale) && doubles_equal(a.offset, b.offset) &&
         doubles_equal(a.min, b.min) && doubles_equal(a.max, b.max) && a.unit == b.unit;
}

bool databases_equal(const dbc::Database& a, const dbc::Database& b) {
  if (a.size() != b.size()) return false;
  for (const dbc::MessageDef& message : a.messages()) {
    const dbc::MessageDef* other = b.by_id(message.id);
    if (other == nullptr || other->name != message.name || other->dlc != message.dlc ||
        other->format != message.format || other->cycle_time_ms != message.cycle_time_ms ||
        other->signals.size() != message.signals.size()) {
      return false;
    }
    for (std::size_t i = 0; i < message.signals.size(); ++i) {
      if (!signals_equal(message.signals[i], other->signals[i])) return false;
    }
  }
  return true;
}

Verdict run_dbc(Bytes input) {
  const dbc::ParseResult first = dbc::parse_dbc(as_text(input));
  for (const dbc::MessageDef& message : first.database.messages()) {
    if (message.dlc > can::kMaxClassicPayload) {
      return "parser accepted message '" + message.name + "' with DLC " +
             std::to_string(message.dlc);
    }
    for (const dbc::SignalDef& sig : message.signals) {
      if (!sig.fits(message.dlc)) {
        return "parser accepted signal '" + sig.name + "' exceeding DLC of '" +
               message.name + "'";
      }
    }
  }
  const std::string printed = dbc::to_dbc_text(first.database, first.nodes);
  const dbc::ParseResult second = dbc::parse_dbc(printed);
  if (!second.errors.empty()) {
    return "printed DBC no longer parses: " + second.errors.front();
  }
  if (!databases_equal(first.database, second.database)) {
    return "DBC parse→print→parse diverges";
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// candump / asc: per-line log readers.  Accepted lines must reprint and
// reparse to the same frame, and printing must be a fixed point (timestamps
// normalise to microsecond resolution on the first print).  [F][M]

Verdict run_candump(Bytes input) {
  std::istringstream in{std::string(as_text(input))};
  std::string line;
  while (std::getline(in, line)) {
    const auto entry = trace::parse_candump_line(line);
    if (!entry) continue;  // clean rejection
    const std::string printed = trace::to_candump_line(*entry, "can0");
    const auto reparsed = trace::parse_candump_line(printed);
    if (!reparsed) return "accepted candump line fails to reparse: " + printed;
    if (!(reparsed->frame == entry->frame)) {
      return "candump frame changed across print/parse: " + printed;
    }
    if (trace::to_candump_line(*reparsed, "can0") != printed) {
      return "candump print is not a fixed point: " + printed;
    }
  }
  return std::nullopt;
}

Verdict run_asc(Bytes input) {
  std::istringstream in{std::string(as_text(input))};
  std::string line;
  while (std::getline(in, line)) {
    const auto entry = trace::parse_asc_line(line);
    if (!entry) continue;
    const std::string printed = trace::to_asc_line(*entry, 1);
    const auto reparsed = trace::parse_asc_line(printed);
    if (!reparsed) return "accepted ASC line fails to reparse: " + printed;
    if (!(reparsed->frame == entry->frame)) {
      return "ASC frame changed across print/parse: " + printed;
    }
    if (trace::to_asc_line(*reparsed, 1) != printed) {
      return "ASC print is not a fixed point: " + printed;
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// replay: hostile traces (out-of-order, ~292-year gaps, scaled) must replay
// every frame and terminate.  [L][M]

class CountingTransport final : public transport::CanTransport {
 public:
  bool send(const can::CanFrame&) override {
    ++stats_.frames_sent;
    return true;
  }
  void set_rx_callback(transport::RxCallback) override {}
  std::string name() const override { return "selftest:null"; }
  const transport::TransportStats& stats() const override { return stats_; }

 private:
  transport::TransportStats stats_;
};

Verdict run_replay(Bytes input) {
  if (input.empty()) return std::nullopt;
  static constexpr double kScales[] = {0.25, 0.5, 1.0, 2.0, 4.0, 1000.0};
  trace::ReplayOptions options;
  options.time_scale = kScales[input[0] % std::size(kScales)];
  options.repeat = 1 + ((input[0] >> 3) & 1);

  std::istringstream in{std::string(as_text(input.subspan(1)))};
  auto frames = trace::read_candump(in, nullptr);
  if (frames.size() > 128) frames.resize(128);
  const std::size_t count = frames.size();

  sim::Scheduler scheduler;
  CountingTransport transport;
  trace::Replayer replayer(scheduler, transport, std::move(frames), options);
  bool done = count == 0;
  replayer.set_on_done([&done] { done = true; });
  replayer.start();
  // One scheduled event per frame plus the repeat gaps: a generous step
  // bound means "didn't finish" is a liveness bug, not a tight budget.
  const std::size_t max_steps = count * options.repeat + 64;
  for (std::size_t i = 0; i < max_steps && replayer.running(); ++i) {
    if (!scheduler.step()) break;
  }
  if (count == 0) return std::nullopt;
  if (replayer.running() || !done) return "replay did not terminate";
  if (replayer.frames_sent() != count * options.repeat) {
    return "replay sent " + std::to_string(replayer.frames_sent()) + " of " +
           std::to_string(count * options.repeat) + " frames";
  }
  if (transport.stats().frames_sent != replayer.frames_sent()) {
    return "replay frame accounting diverges from transport";
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// isotp: IsoTpChannel::handle_frame driven by a byte script — raw frames on
// the rx id (the mutator controls the PCI byte directly), interleaved with
// time advance and channel sends.  The channel must keep counting stats,
// never deliver an oversized message, and drain back to idle.  [L][M][S]

Verdict run_isotp(Bytes input) {
  sim::Scheduler scheduler;
  isotp::IsoTpConfig config;
  config.timeout = std::chrono::milliseconds(100);
  std::uint64_t raw_sent = 0;
  Verdict verdict;
  isotp::IsoTpChannel channel(
      scheduler,
      [&raw_sent](const can::CanFrame&) {
        ++raw_sent;
        return raw_sent % 7 != 0;  // periodic mailbox-full to exercise retry
      },
      config);
  std::uint64_t delivered = 0;
  channel.set_on_message([&](const std::vector<std::uint8_t>& message, sim::SimTime) {
    ++delivered;
    if (message.empty() || message.size() > isotp::kMaxPayload) {
      verdict = "delivered message of size " + std::to_string(message.size());
    }
  });

  std::uint64_t injected = 0;
  std::size_t pos = 0;
  while (pos < input.size() && !verdict) {
    const std::uint8_t op = input[pos++];
    if (op < 0x40) {
      scheduler.run_for(std::chrono::milliseconds(op));
    } else if (op < 0x80) {
      if (!channel.tx_busy()) {
        const std::size_t size = (static_cast<std::size_t>(op - 0x40) * 33) % 4096 + 1;
        channel.send(std::vector<std::uint8_t>(size, 0xA5));
      }
    } else {
      const std::size_t len = std::min<std::size_t>(op & 0x0F, 8);
      const std::size_t take = std::min(len, input.size() - pos);
      const auto frame =
          can::CanFrame::data(config.rx_id, input.subspan(pos, take));
      pos += take;
      if (frame) {
        channel.handle_frame(*frame, scheduler.now());
        ++injected;
      }
    }
  }
  if (verdict) return verdict;

  // Liveness: with input exhausted, timeouts (and the N_WFTmax bound while
  // input was flowing) must return both state machines to idle.  The window
  // must cover one full legitimate transfer: ~585 consecutive frames at the
  // maximum 127 ms STmin is ~75 s, plus N_WFTmax timeout re-arms.
  scheduler.run_for(std::chrono::seconds(120));
  if (channel.tx_busy()) return "tx state machine stuck after input drained";
  const isotp::IsoTpStats& stats = channel.stats();
  if (stats.malformed_frames > injected) {
    return "malformed_frames exceeds injected frame count";
  }
  if (delivered != stats.messages_received) {
    return "messages_received diverges from delivered callback count";
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// uds: UdsServer::handle_request on length-sliced arbitrary requests.  Every
// response is empty, a well-formed negative (0x7F sid nrc) or a positive
// echoing sid+0x40; the server itself never throws.  [M][S]

Verdict run_uds(Bytes input) {
  sim::Scheduler scheduler;
  uds::UdsServerConfig config;
  uds::UdsServer server(scheduler, config);
  server.set_did(0xF190, {0x41, 0x43, 0x46}, false);
  server.set_did(0xF1A0, {0x00, 0x01}, true, true);
  server.set_dtc_provider([] { return std::vector<std::uint8_t>{0x01, 0x23, 0x45, 0x20}; });

  Verdict verdict;
  std::size_t pos = 0;
  while (pos < input.size() && !verdict) {
    const std::uint8_t control = input[pos++];
    const std::size_t len = std::min<std::size_t>(control % 17, input.size() - pos);
    const auto request = input.subspan(pos, len);
    pos += len;
    server.handle_request(request, [&](std::vector<std::uint8_t> response) {
      if (request.empty()) {
        verdict = "response produced for empty request";
        return;
      }
      const std::uint8_t sid = request[0];
      if (response.empty()) {
        verdict = "empty response passed to respond callback";
      } else if (response[0] == uds::kNegativeResponse) {
        if (response.size() != 3 || response[1] != sid) {
          verdict = "malformed negative response (sid " + std::to_string(sid) + ")";
        }
      } else if (response[0] != static_cast<std::uint8_t>(sid + 0x40)) {
        verdict = "positive response does not echo sid+0x40 (sid " +
                  std::to_string(sid) + ")";
      }
    });
    scheduler.run_for(std::chrono::milliseconds(control >> 4));
  }
  return verdict;
}

// ---------------------------------------------------------------------------
// wire: classic-CAN wire codec.  Structured mode: encode a frame built from
// the input, require decode∘encode = id, then require any single-bit
// corruption to be rejected or decode to the identical frame (CRC-15 +
// form checks).  Raw mode: arbitrary bit soup must decode cleanly or not at
// all, and whatever decodes must re-encode to itself.  [R][M]

Verdict run_wire(Bytes input) {
  if (input.empty()) return std::nullopt;
  const std::uint8_t mode = input[0];
  const Bytes rest = input.subspan(1);

  if ((mode & 1) != 0) {
    // Raw-bit mode.
    std::vector<std::uint8_t> bits;
    bits.reserve(std::min<std::size_t>(rest.size() * 8, 2048));
    for (const std::uint8_t byte : rest) {
      for (int bit = 7; bit >= 0 && bits.size() < 2048; --bit) {
        bits.push_back((byte >> bit) & 1);
      }
    }
    for (const bool wire_form : {true, false}) {
      const auto decoded =
          wire_form ? can::decode_wire(bits) : can::decode_logical(bits);
      if (!decoded) continue;
      const can::BitVec reencoded =
          wire_form ? can::encode_wire(*decoded, true) : can::encode_logical(*decoded);
      const auto redecoded =
          wire_form ? can::decode_wire(reencoded) : can::decode_logical(reencoded);
      if (!redecoded || !(*redecoded == *decoded)) {
        return std::string("decoded frame does not survive re-encode (") +
               (wire_form ? "wire" : "logical") + ")";
      }
    }
    return std::nullopt;
  }

  // Structured mode: header bytes choose the frame, the rest picks flips.
  if (rest.size() < 6) return std::nullopt;
  const bool extended = (mode & 2) != 0;
  const bool remote = (mode & 4) != 0;
  std::uint32_t id = static_cast<std::uint32_t>(rest[0]) |
                     (static_cast<std::uint32_t>(rest[1]) << 8) |
                     (static_cast<std::uint32_t>(rest[2]) << 16);
  id &= extended ? can::kMaxExtendedId : can::kMaxStandardId;
  const auto format = extended ? can::IdFormat::kExtended : can::IdFormat::kStandard;
  const std::size_t payload_len = rest[3] % 9;
  std::optional<can::CanFrame> frame;
  if (remote) {
    frame = can::CanFrame::remote(id, static_cast<std::uint8_t>(payload_len), format);
  } else {
    const std::size_t take = std::min(payload_len, rest.size() - 4);
    frame = can::CanFrame::data(id, rest.subspan(4, take), format);
  }
  if (!frame) return "structured frame constructor rejected in-range inputs";

  can::BitVec wire = can::encode_wire(*frame, true);
  const auto clean = can::decode_wire(wire);
  if (!clean || !(*clean == *frame)) return "decode(encode(frame)) != frame";

  const std::size_t flips = std::min<std::size_t>(mode >> 4, rest.size() - 4);
  for (std::size_t i = 0; i < flips; ++i) {
    wire[rest[4 + i] % wire.size()] ^= 1;
  }
  const auto corrupted = can::decode_wire(wire);
  if (flips == 1 && corrupted && !(*corrupted == *frame)) {
    return "single-bit corruption decoded as a different frame";
  }
  if (corrupted) {
    const auto survived = can::decode_wire(can::encode_wire(*corrupted, true));
    if (!survived || !(*survived == *corrupted)) {
      return "corrupted-but-accepted frame does not survive re-encode";
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// fleet_wire: the distributed-campaign frame protocol.  Raw mode: arbitrary
// bytes through FrameReader (chunked arbitrarily vs fed whole must agree),
// then strict decode — whatever decodes must re-encode to the identical
// payload, unknown types round-trip verbatim, truncated frames yield
// nothing, zero/oversized length prefixes poison the stream.  Structured
// mode: synthesise each message type from the input, frame it, push it
// through a chunked reader and require value identity back out.  [R][M][S]

namespace fr = fleet::remote;

bool messages_equal(const fr::Message& a, const fr::Message& b) {
  // Value equality via the canonical encoding: every field crosses encode().
  return fr::encode(a) == fr::encode(b);
}

/// Drains a stream through FrameReader in `rng`-sized chunks.
struct DrainResult {
  std::vector<std::vector<std::uint8_t>> payloads;
  bool poisoned = false;
};

DrainResult drain_chunked(Bytes stream, util::Rng* rng) {
  DrainResult result;
  fr::FrameReader reader;
  std::size_t pos = 0;
  while (pos < stream.size()) {
    const std::size_t chunk =
        rng ? 1 + rng->next_below(64) : stream.size() - pos;
    const std::size_t take = std::min<std::size_t>(chunk, stream.size() - pos);
    reader.feed(stream.subspan(pos, take));
    pos += take;
    while (auto payload = reader.next()) result.payloads.push_back(std::move(*payload));
  }
  while (auto payload = reader.next()) result.payloads.push_back(std::move(*payload));
  result.poisoned = reader.poisoned();
  return result;
}

/// Arbitrary-magnitude but always-finite double (the wire and the snapshot
/// codec both reject non-finite values, so generators must stay finite).
double finite_double(util::Rng& rng) {
  return std::ldexp(static_cast<double>(rng.next_u64()), -32);
}

fr::MetricsUpdate random_metrics(Bytes input, util::Rng& rng) {
  fr::MetricsUpdate update;
  const auto counters = rng.next_below(4);
  for (std::uint64_t i = 0; i < counters; ++i) {
    update.counters.push_back({slice_text(input, rng, 48), rng.next_u64()});
  }
  const auto gauges = rng.next_below(3);
  for (std::uint64_t i = 0; i < gauges; ++i) {
    update.gauges.push_back(
        {slice_text(input, rng, 48), static_cast<std::int64_t>(rng.next_u64())});
  }
  const auto timers = rng.next_below(3);
  for (std::uint64_t i = 0; i < timers; ++i) {
    fr::WireTimer timer;
    timer.name = slice_text(input, rng, 48);
    timer.count = rng.next_u64();
    timer.sum = finite_double(rng);
    timer.min = finite_double(rng);
    timer.max = finite_double(rng);
    const auto samples = rng.next_below(5);
    for (std::uint64_t s = 0; s < samples; ++s) {
      timer.samples.push_back({finite_double(rng), rng.next_u64(), rng.next_u64()});
    }
    update.timers.push_back(std::move(timer));
  }
  return update;
}

fr::Message random_message(Bytes input, util::Rng& rng) {
  switch (rng.next_below(9)) {
    case 0: {
      fr::HelloMsg msg;
      msg.protocol_version = static_cast<std::uint32_t>(rng.next_u64());
      msg.fingerprint = rng.next_u64();
      msg.capacity = static_cast<std::uint32_t>(rng.next_u64());
      msg.worker_name = slice_text(input, rng, fr::kMaxNameBytes);
      return msg;
    }
    case 1: {
      fr::WelcomeMsg msg;
      msg.fingerprint = rng.next_u64();
      msg.trial_count = rng.next_u64();
      msg.session = rng.next_u64();
      return msg;
    }
    case 2:
      return fr::LeaseRequestMsg{static_cast<std::uint32_t>(rng.next_u64())};
    case 3: {
      fr::LeaseGrantMsg msg;
      msg.lease_id = rng.next_u64();
      msg.deadline_ms = static_cast<std::uint32_t>(rng.next_u64());
      const auto count = rng.next_below(17);
      for (std::uint64_t i = 0; i < count; ++i) msg.trials.push_back(rng.next_u64());
      return msg;
    }
    case 4: {
      fr::LeaseResultMsg msg;
      msg.lease_id = rng.next_u64();
      msg.outcome.spec.trial_index = rng.next_u64();
      msg.outcome.spec.arm = rng.next_below(64);
      msg.outcome.spec.replica = rng.next_below(1024);
      msg.outcome.spec.seed = rng.next_u64();
      msg.outcome.spec.sim_budget =
          sim::Duration{static_cast<std::int64_t>(rng.next_u64())};
      msg.outcome.status = static_cast<fleet::TrialStatus>(rng.next_below(3));
      msg.outcome.stop_reason = static_cast<fuzzer::StopReason>(rng.next_below(7));
      msg.outcome.frames_sent = rng.next_u64();
      msg.outcome.send_failures = rng.next_u64();
      msg.outcome.sim_seconds = std::bit_cast<double>(rng.next_u64());
      msg.outcome.time_to_failure = std::bit_cast<double>(rng.next_u64());
      const auto findings = rng.next_below(4);
      for (std::uint64_t i = 0; i < findings; ++i) {
        msg.outcome.findings.push_back(slice_text(input, rng, 96));
      }
      msg.outcome.error = slice_text(input, rng, 96);
      return msg;
    }
    case 5: {
      fr::HeartbeatMsg msg;
      msg.lease_id = rng.next_u64();
      msg.completed = rng.next_u64();
      if (rng.next_bool()) msg.metrics = random_metrics(input, rng);
      return msg;
    }
    case 6:
      return fr::ShutdownMsg{static_cast<fr::ShutdownReason>(rng.next_below(2))};
    case 7:
      return fr::RejectedMsg{slice_text(input, rng, 128)};
    default: {
      fr::UnknownMsg msg;
      // A type this protocol version does not define: 0 or 9..255.
      msg.type = static_cast<std::uint8_t>(9 + rng.next_below(248)) ;
      if (rng.next_bool()) msg.type = 0;
      const auto len = rng.next_below(65);
      msg.payload.resize(len);
      for (auto& byte : msg.payload) byte = static_cast<std::uint8_t>(rng.next_u64());
      return msg;
    }
  }
}

Verdict run_fleet_wire(Bytes input) {
  if (input.empty()) return std::nullopt;
  util::Rng rng(fnv1a(input) ^ 0xF1EE7ULL);
  const std::uint8_t mode = input[0];
  const Bytes rest = input.subspan(1);

  if ((mode & 1) != 0) {
    // Raw mode: the stream IS the input.  Chunking must not matter.
    DrainResult whole = drain_chunked(rest, nullptr);
    DrainResult chunked = drain_chunked(rest, &rng);
    if (whole.poisoned != chunked.poisoned ||
        whole.payloads != chunked.payloads) {
      return "FrameReader output depends on chunk boundaries";
    }
    for (const std::vector<std::uint8_t>& payload : whole.payloads) {
      if (payload.empty() || payload.size() > fr::kMaxFramePayload) {
        return "FrameReader emitted a payload outside the declared bounds";
      }
      const std::optional<fr::Message> decoded = fr::decode(payload);
      if (!decoded) continue;  // clean rejection is the contract
      if (fr::encode(*decoded) != payload) {
        return "accepted wire payload does not re-encode to itself";
      }
      if (const auto* unknown = std::get_if<fr::UnknownMsg>(&*decoded)) {
        if (unknown->payload.size() + 1 != payload.size()) {
          return "unknown message type did not preserve its payload verbatim";
        }
      }
    }
    return std::nullopt;
  }

  // Structured mode: synthesised messages must cross a chunked stream
  // intact, truncation must starve the reader, and a hostile length prefix
  // must poison it.
  const auto count = 1 + rng.next_below(6);
  std::vector<fr::Message> sent;
  std::vector<std::uint8_t> stream;
  for (std::uint64_t i = 0; i < count; ++i) {
    sent.push_back(random_message(input, rng));
    const std::vector<std::uint8_t> frame = fr::frame_message(sent.back());
    stream.insert(stream.end(), frame.begin(), frame.end());
  }

  DrainResult drained = drain_chunked(stream, &rng);
  if (drained.poisoned) return "well-formed frame stream poisoned the reader";
  if (drained.payloads.size() != sent.size()) {
    return "reader returned " + std::to_string(drained.payloads.size()) + " of " +
           std::to_string(sent.size()) + " frames";
  }
  for (std::size_t i = 0; i < sent.size(); ++i) {
    const std::optional<fr::Message> decoded = fr::decode(drained.payloads[i]);
    if (!decoded) return "well-formed frame failed strict decode";
    if (!messages_equal(*decoded, sent[i])) {
      return "message changed across frame/decode round-trip";
    }
  }

  // Truncation: cutting the stream mid-frame must never yield that frame.
  if (!stream.empty()) {
    const std::size_t cut = 1 + rng.next_below(std::min<std::size_t>(
                                    fr::frame_message(sent.back()).size() - 1, 64));
    DrainResult truncated = drain_chunked(
        Bytes(stream).subspan(0, stream.size() - cut), &rng);
    if (truncated.poisoned) return "truncated well-formed stream poisoned the reader";
    if (truncated.payloads.size() >= sent.size()) {
      return "reader emitted a frame whose bytes were truncated";
    }
  }

  // Hostile length prefixes: zero and oversized both poison before any
  // payload is buffered.
  for (const std::uint32_t hostile :
       {0u, static_cast<std::uint32_t>(fr::kMaxFramePayload) + 1, 0xFFFFFFFFu}) {
    fr::FrameReader reader;
    std::uint8_t prefix[4];
    for (int b = 0; b < 4; ++b) prefix[b] = static_cast<std::uint8_t>(hostile >> (8 * b));
    reader.feed(std::span<const std::uint8_t>(prefix, 4));
    if (!reader.poisoned()) {
      return "length prefix " + std::to_string(hostile) + " did not poison the reader";
    }
    if (reader.feed(rest.subspan(0, std::min<std::size_t>(rest.size(), 8))) ||
        reader.next()) {
      return "poisoned reader accepted further input";
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// metrics_snapshot: the acf-metrics-v1 JSONL codec.  Raw mode: arbitrary
// text through parse_snapshot_line — clean rejection or, when accepted,
// encode∘parse∘encode must be a fixed point (one canonicalizing encode).
// Structured mode: build a registry from the input bytes (names may carry
// quotes, backslashes and control bytes, exercising the shared JSON
// escaper), snapshot it, encode, parse, re-encode byte-identically.  [R][M][S]

Verdict run_metrics_snapshot(Bytes input) {
  if (input.empty()) return std::nullopt;
  util::Rng rng(fnv1a(input) ^ 0x5EEDF00DULL);
  const std::uint8_t mode = input[0];
  const Bytes rest = input.subspan(1);

  if ((mode & 1) != 0) {
    const std::optional<metrics::SnapshotLine> parsed =
        metrics::parse_snapshot_line(as_text(rest));
    if (!parsed) return std::nullopt;  // clean rejection is the contract
    const std::string encoded = metrics::encode_snapshot_line(*parsed);
    const std::optional<metrics::SnapshotLine> reparsed =
        metrics::parse_snapshot_line(encoded);
    if (!reparsed) return "accepted line re-encoded to something the parser rejects";
    if (metrics::encode_snapshot_line(*reparsed) != encoded) {
      return "encode∘parse is not a fixed point on an accepted line";
    }
    return std::nullopt;
  }

  // Structured mode: hostile names through a real registry.
  metrics::Registry registry;
  const auto counters = rng.next_below(5);
  for (std::uint64_t i = 0; i < counters; ++i) {
    registry.counter(slice_text(rest, rng, 48)).add(rng.next_u64());
  }
  const auto gauges = rng.next_below(4);
  for (std::uint64_t i = 0; i < gauges; ++i) {
    registry.gauge(slice_text(rest, rng, 48)).set(static_cast<std::int64_t>(rng.next_u64()));
  }
  const auto meters = rng.next_below(3);
  for (std::uint64_t i = 0; i < meters; ++i) {
    metrics::Meter& meter = registry.meter(slice_text(rest, rng, 48));
    meter.mark(rng.next_below(1000));
    meter.tick_to(std::ldexp(static_cast<double>(rng.next_below(1 << 20)), -4));
  }
  const auto timers = rng.next_below(3);
  for (std::uint64_t i = 0; i < timers; ++i) {
    metrics::Timer& timer = registry.timer(slice_text(rest, rng, 48));
    const auto records = rng.next_below(16);
    for (std::uint64_t s = 0; s < records; ++s) timer.record(finite_double(rng));
  }

  metrics::SnapshotLine line;
  line.seq = rng.next_u64();
  line.source = slice_text(rest, rng, 48);
  line.sim_seconds = finite_double(rng);
  line.registry = registry.snapshot();
  for (metrics::TimerSnap& timer : line.registry.timers) timer.samples.clear();

  const std::string encoded = metrics::encode_snapshot_line(line);
  if (encoded.find('\n') != std::string::npos) {
    return "encoded snapshot line contains a raw newline";
  }
  const std::optional<metrics::SnapshotLine> parsed = metrics::parse_snapshot_line(encoded);
  if (!parsed) return "snapshot of a real registry failed strict parse";
  if (metrics::encode_snapshot_line(*parsed) != encoded) {
    return "snapshot line changed across encode/parse round-trip";
  }
  if (parsed->seq != line.seq || parsed->source != line.source) {
    return "snapshot header fields changed across round-trip";
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// corpus_file: the feedback corpus disk format ("ACFC").  Raw mode: strict
// bounded decode of arbitrary bytes — whatever decodes must satisfy every
// structural bound the format documents (seed/frame/feature caps, strictly
// increasing features, classic-CAN frames) and re-encode byte-identically,
// because the decoder only accepts canonical encodings.  Structured mode:
// synthesise a corpus from the input bytes, require decode∘encode identity,
// and require every truncation and any trailing garbage to be rejected
// before allocation.  [R][M][S]

Verdict run_corpus_file(Bytes input) {
  if (input.empty()) return std::nullopt;
  const std::uint8_t mode = input[0];
  const Bytes rest = input.subspan(1);

  if ((mode & 1) != 0) {
    // Raw mode.
    const auto decoded = feedback::Corpus::decode(rest);
    if (!decoded) return std::nullopt;  // clean rejection is the contract
    if (decoded->size() > feedback::kMaxCorpusSeeds) {
      return "decoded corpus exceeds the seed cap";
    }
    for (std::size_t i = 0; i < decoded->size(); ++i) {
      const feedback::Seed& seed = decoded->at(i);
      if (seed.frames.empty() || seed.frames.size() > feedback::kMaxSeedFrames) {
        return "decoded seed frame count outside bounds";
      }
      if (seed.features.size() > feedback::kMaxSeedFeatures) {
        return "decoded seed feature count outside bounds";
      }
      for (std::size_t f = 1; f < seed.features.size(); ++f) {
        if (seed.features[f] <= seed.features[f - 1]) {
          return "decoded features are not strictly increasing";
        }
      }
      for (const can::CanFrame& frame : seed.frames) {
        if (frame.length() > can::kMaxClassicPayload || frame.is_fd()) {
          return "decoded frame outside classic-CAN bounds";
        }
      }
    }
    const std::vector<std::uint8_t> reencoded = decoded->encode();
    if (!std::equal(reencoded.begin(), reencoded.end(), rest.begin(), rest.end())) {
      return "accepted corpus bytes do not re-encode to themselves";
    }
    return std::nullopt;
  }

  // Structured mode: synthesise, round-trip, then attack the canonical bytes.
  util::Rng rng(fnv1a(input) ^ 0xC0B9A5ULL);
  feedback::Corpus corpus;
  const auto seeds = rng.next_below(6);
  for (std::uint64_t i = 0; i < seeds; ++i) {
    feedback::Seed seed;
    const auto frames = 1 + rng.next_below(5);
    for (std::uint64_t f = 0; f < frames; ++f) {
      const bool extended = rng.next_bool();
      const std::uint32_t id = static_cast<std::uint32_t>(rng.next_below(
          extended ? can::kMaxExtendedId + 1 : can::kMaxStandardId + 1));
      std::vector<std::uint8_t> payload(rng.next_below(9));
      rng.fill(payload);
      seed.frames.push_back(*can::CanFrame::data(
          id, payload, extended ? can::IdFormat::kExtended : can::IdFormat::kStandard));
    }
    const auto features = rng.next_below(9);
    for (std::uint64_t f = 0; f < features; ++f) seed.features.push_back(rng.next_u64());
    seed.hot = rng.next_bool();
    seed.found_at_exec = rng.next_u64();
    seed.exec_cost_ns = rng.next_u64();
    corpus.add(std::move(seed));  // sorts + dedups features
  }

  const std::vector<std::uint8_t> bytes = corpus.encode();
  const auto decoded = feedback::Corpus::decode(bytes);
  if (!decoded) return "canonical corpus bytes failed strict decode";
  if (decoded->size() != corpus.size()) {
    return "corpus seed count changed across encode/decode";
  }
  if (decoded->encode() != bytes) {
    return "corpus changed across encode/decode round-trip";
  }
  // Every truncation must be rejected (strict full consumption + bounded
  // counts checked against remaining bytes before allocation).
  const std::size_t cut = 1 + rng.next_below(std::min<std::size_t>(bytes.size(), 64));
  if (feedback::Corpus::decode(Bytes(bytes).subspan(0, bytes.size() - cut))) {
    return "truncated corpus bytes decoded";
  }
  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(rng.next_byte());
  if (feedback::Corpus::decode(padded)) {
    return "corpus bytes with trailing garbage decoded";
  }
  return std::nullopt;
}

// attack_config: the attack-scenario spec codec (attacks/config.hpp), the
// bytes that select and parameterise a campaign arm on any fleet worker.
// [M] arbitrary bytes are rejected cleanly; only canonical 22-byte
//     encodings decode.
// [S] whatever decodes satisfies the documented bounds (family/bus range,
//     11-bit id, period and burst windows, zero padding).
// [R] encode∘decode = id on accepted inputs and decode∘encode = id on the
//     resulting specs — the encoding is canonical, so a spec has exactly
//     one byte representation.
Verdict run_attack_config(Bytes input) {
  const auto spec = attacks::decode_attack_spec(input);
  if (!spec) return std::nullopt;
  if (!attacks::attack_spec_valid(*spec)) return "decoded spec violates its bounds";
  const std::vector<std::uint8_t> encoded = attacks::encode_attack_spec(*spec);
  if (encoded.size() != input.size() ||
      !std::equal(encoded.begin(), encoded.end(), input.begin())) {
    return "encode(decode(x)) != x";
  }
  const auto again = attacks::decode_attack_spec(encoded);
  if (!again || !(*again == *spec)) return "decode(encode(spec)) != spec";
  return std::nullopt;
}

std::vector<FuzzTarget> make_targets() {
  return {
      {"checkpoint", "CampaignCheckpoint::deserialize on arbitrary text", run_checkpoint},
      {"checkpoint_roundtrip",
       "serialize→deserialize identity for checkpoints built from input bytes",
       run_checkpoint_roundtrip},
      {"dbc", "dbc::parse_dbc + to_dbc_text print/parse identity", run_dbc},
      {"candump", "candump line reader print/parse fixed point", run_candump},
      {"asc", "ASC line reader print/parse fixed point", run_asc},
      {"replay", "trace::Replayer liveness on hostile traces", run_replay},
      {"isotp", "IsoTpChannel::handle_frame protocol state machine", run_isotp},
      {"uds", "UdsServer request decode response well-formedness", run_uds},
      {"wire", "classic-CAN wire codec round-trip + corruption rejection", run_wire},
      {"fleet_wire", "fleet campaign socket protocol framing + strict decode",
       run_fleet_wire},
      {"metrics_snapshot", "acf-metrics-v1 JSONL snapshot codec round-trip",
       run_metrics_snapshot},
      {"corpus_file", "feedback corpus disk format strict decode + round-trip",
       run_corpus_file},
      {"attack_config", "attack-scenario spec codec strict decode + round-trip",
       run_attack_config},
  };
}

}  // namespace

const std::vector<FuzzTarget>& all_targets() {
  static const std::vector<FuzzTarget> targets = make_targets();
  return targets;
}

const FuzzTarget* find_target(std::string_view name) {
  for (const FuzzTarget& target : all_targets()) {
    if (target.name == name) return &target;
  }
  return nullptr;
}

}  // namespace acf::selftest
