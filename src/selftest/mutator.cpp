#include "selftest/mutator.hpp"

#include "fuzzer/mutation_core.hpp"

namespace acf::selftest {

namespace {

// Format keywords from every in-repo input surface: checkpoint keys, DBC
// grammar, candump/ASC syntax, plus boundary numbers parsers tend to choke
// on.  Splicing these lets a structure-blind mutator cross token-level
// validation instead of dying in the first keyword comparison.
constexpr std::string_view kDictionary[] = {
    "ACF-CHECKPOINT", "frames_sent", "send_failures", "elapsed_ns", "generator",
    "state", "findings", "verdict", "time_ns", "detail", "at_frame", "seed", "gen",
    "recent", "window", "frame", "end", "D S", "R E", "F S",
    "BO_", "SG_", "BU_:", "BA_", "\"GenMsgCycleTime\"", "Vector__XXX", ":",
    "@1+", "@0-", "(1,0)", "[0|255]", "8|16",
    "Rx", "Tx", "d 8", "r 1", "can0", "#", "##1", "#R",
    "(0.000000)", "0", "1", "-1", "4095", "65535", "4294967295",
    "18446744073709551615", "99999999999999999999", "nan", "inf", "1e308", "-",
};

constexpr std::string_view kPrintable =
    "0123456789ABCDEFabcdef BO_SG_#R()[]|@+-.,:\"\n\t_xXDEFS ";

}  // namespace

ByteMutator::ByteMutator(std::uint64_t seed) : rng_(util::SplitMix64(seed).next()) {}

std::vector<std::uint8_t> ByteMutator::fresh(std::size_t max_len) {
  return fuzzer::mutcore::fresh(rng_, max_len, kPrintable);
}

void ByteMutator::mutate(std::vector<std::uint8_t>& data, std::size_t max_len) {
  fuzzer::mutcore::mutate(rng_, data, max_len, kDictionary);
}

}  // namespace acf::selftest
