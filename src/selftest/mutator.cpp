#include "selftest/mutator.hpp"

#include <algorithm>
#include <string_view>

namespace acf::selftest {

namespace {

// Format keywords from every in-repo input surface: checkpoint keys, DBC
// grammar, candump/ASC syntax, plus boundary numbers parsers tend to choke
// on.  Splicing these lets a structure-blind mutator cross token-level
// validation instead of dying in the first keyword comparison.
constexpr std::string_view kDictionary[] = {
    "ACF-CHECKPOINT", "frames_sent", "send_failures", "elapsed_ns", "generator",
    "state", "findings", "verdict", "time_ns", "detail", "at_frame", "seed", "gen",
    "recent", "window", "frame", "end", "D S", "R E", "F S",
    "BO_", "SG_", "BU_:", "BA_", "\"GenMsgCycleTime\"", "Vector__XXX", ":",
    "@1+", "@0-", "(1,0)", "[0|255]", "8|16",
    "Rx", "Tx", "d 8", "r 1", "can0", "#", "##1", "#R",
    "(0.000000)", "0", "1", "-1", "4095", "65535", "4294967295",
    "18446744073709551615", "99999999999999999999", "nan", "inf", "1e308", "-",
};

constexpr char kPrintable[] =
    "0123456789ABCDEFabcdef BO_SG_#R()[]|@+-.,:\"\n\t_xXDEFS ";

}  // namespace

ByteMutator::ByteMutator(std::uint64_t seed) : rng_(util::SplitMix64(seed).next()) {}

std::vector<std::uint8_t> ByteMutator::fresh(std::size_t max_len) {
  const std::size_t len = static_cast<std::size_t>(rng_.next_below(max_len + 1));
  std::vector<std::uint8_t> out(len);
  if (rng_.next_bool()) {
    rng_.fill(out);
  } else {
    for (auto& byte : out) {
      byte = static_cast<std::uint8_t>(kPrintable[rng_.next_below(sizeof kPrintable - 1)]);
    }
  }
  return out;
}

void ByteMutator::mutate(std::vector<std::uint8_t>& data, std::size_t max_len) {
  const auto rounds = 1 + rng_.next_below(4);
  for (std::uint64_t i = 0; i < rounds; ++i) mutate_once(data, max_len);
}

void ByteMutator::mutate_once(std::vector<std::uint8_t>& data, std::size_t max_len) {
  switch (rng_.next_below(7)) {
    case 0: {  // flip one bit
      if (data.empty()) break;
      const auto pos = rng_.next_below(data.size());
      data[pos] ^= static_cast<std::uint8_t>(1u << rng_.next_below(8));
      break;
    }
    case 1: {  // overwrite one byte
      if (data.empty()) break;
      data[rng_.next_below(data.size())] = rng_.next_byte();
      break;
    }
    case 2: {  // insert a byte
      if (data.size() >= max_len) break;
      const auto pos = rng_.next_below(data.size() + 1);
      data.insert(data.begin() + static_cast<std::ptrdiff_t>(pos), rng_.next_byte());
      break;
    }
    case 3: {  // erase a byte
      if (data.empty()) break;
      data.erase(data.begin() + static_cast<std::ptrdiff_t>(rng_.next_below(data.size())));
      break;
    }
    case 4: {  // truncate the tail
      if (data.empty()) break;
      data.resize(static_cast<std::size_t>(rng_.next_below(data.size())));
      break;
    }
    case 5: {  // duplicate a block onto a random position
      if (data.empty()) break;
      const auto from = rng_.next_below(data.size());
      const auto count = std::min<std::size_t>(
          static_cast<std::size_t>(1 + rng_.next_below(16)), data.size() - from);
      std::vector<std::uint8_t> block(data.begin() + static_cast<std::ptrdiff_t>(from),
                                      data.begin() + static_cast<std::ptrdiff_t>(from + count));
      const auto to = rng_.next_below(data.size() + 1);
      data.insert(data.begin() + static_cast<std::ptrdiff_t>(to), block.begin(), block.end());
      if (data.size() > max_len) data.resize(max_len);
      break;
    }
    default: {  // splice a dictionary token
      const std::string_view token =
          kDictionary[rng_.next_below(std::size(kDictionary))];
      const auto pos = rng_.next_below(data.size() + 1);
      data.insert(data.begin() + static_cast<std::ptrdiff_t>(pos), token.begin(), token.end());
      if (data.size() > max_len) data.resize(max_len);
      break;
    }
  }
}

}  // namespace acf::selftest
