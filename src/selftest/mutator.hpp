// Byte-level mutation engine for the self-fuzz harnesses.
//
// The toolchain's own input surfaces consume raw bytes (checkpoint files,
// DBC text, log lines, ISO-TP/UDS PDUs, wire bits), so the self-fuzz layer
// drives a structure-blind byte mutator.  The operators themselves live in
// the shared mutation core (fuzzer/mutation_core.hpp) — the same ops, with
// the same Rng-draw schedule, that the campaign frame mutators and the
// feedback loop's SequenceMutator apply; this class only binds them to the
// self-fuzz dictionary.  Same determinism contract as the rest of the
// fuzzer: everything flows from one SplitMix64-expanded seed.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace acf::selftest {

/// Applies 1..4 random byte-level mutations per call: bit flips, byte
/// overwrites, insertions, erasures, truncation, block duplication and
/// dictionary-token splices (the dictionary carries the keywords of every
/// in-repo format so blind mutation still reaches deep parser states).
class ByteMutator {
 public:
  explicit ByteMutator(std::uint64_t seed);

  /// Mutates `data` in place, keeping it within `max_len` bytes.
  void mutate(std::vector<std::uint8_t>& data, std::size_t max_len);

  /// Fresh random input of up to `max_len` bytes: half the time pure random
  /// bytes, half the time random printable text (the parsers are
  /// line-oriented, so printable noise penetrates further).
  std::vector<std::uint8_t> fresh(std::size_t max_len);

  util::Rng& rng() noexcept { return rng_; }

 private:
  util::Rng rng_;
};

}  // namespace acf::selftest
