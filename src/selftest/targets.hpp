// The registry of self-fuzz targets: one per byte-consuming surface in the
// toolchain.  Each target pairs the surface with its invariant set — see
// targets.cpp for the catalogue and DESIGN.md §13 for the rationale.
#pragma once

#include <string_view>
#include <vector>

#include "selftest/harness.hpp"

namespace acf::selftest {

/// Every registered target.  Names match tests/corpus/<name>/ and the
/// fuzz_<name> libFuzzer binaries.
const std::vector<FuzzTarget>& all_targets();

/// Lookup by name; nullptr when unknown.
const FuzzTarget* find_target(std::string_view name);

}  // namespace acf::selftest
