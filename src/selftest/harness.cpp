#include "selftest/harness.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "selftest/mutator.hpp"
#include "util/hex.hpp"

namespace acf::selftest {

namespace {

void record_failure(HarnessResult& result, const HarnessOptions& options,
                    const FuzzTarget& target, std::span<const std::uint8_t> input,
                    std::string message, std::uint64_t ordinal, bool from_corpus) {
  FuzzFailure failure;
  failure.input.assign(input.begin(), input.end());
  failure.message = std::move(message);
  failure.ordinal = ordinal;
  failure.from_corpus = from_corpus;
  if (!options.failure_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.failure_dir, ec);
    const auto path = std::filesystem::path(options.failure_dir) /
                      (target.name + "-" + std::to_string(result.failures.size()) + ".bin");
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(failure.input.data()),
              static_cast<std::streamsize>(failure.input.size()));
  }
  result.failures.push_back(std::move(failure));
}

}  // namespace

HarnessResult run_harness(const FuzzTarget& target,
                          std::span<const std::vector<std::uint8_t>> corpus,
                          const HarnessOptions& options) {
  HarnessResult result;

  // Corpus replay first: committed seeds include one reproducer per fixed
  // bug, so a regression fails deterministically before any random input.
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    ++result.corpus_inputs;
    if (auto error = target.run(corpus[i])) {
      record_failure(result, options, target, corpus[i], std::move(*error), i, true);
      if (result.failures.size() >= options.max_failures) return result;
    }
  }

  ByteMutator mutator(options.seed);
  for (std::uint64_t i = 0; i < options.iterations; ++i) {
    std::vector<std::uint8_t> input;
    // Three-way mix: mutate a corpus seed (structure-aware reach), mutate
    // the previous input (random walk), or start fresh (plain blind noise).
    const auto mode = mutator.rng().next_below(4);
    if (mode == 0 || corpus.empty()) {
      input = mutator.fresh(options.max_input_bytes);
    } else {
      const auto& seed_input =
          corpus[static_cast<std::size_t>(mutator.rng().next_below(corpus.size()))];
      input = seed_input;
      mutator.mutate(input, options.max_input_bytes);
    }
    ++result.generated_inputs;
    if (auto error = target.run(input)) {
      record_failure(result, options, target, input, std::move(*error), i, false);
      if (result.failures.size() >= options.max_failures) return result;
    }
  }
  return result;
}

std::vector<std::vector<std::uint8_t>> load_corpus_dir(const std::string& dir) {
  std::vector<std::filesystem::path> paths;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  std::vector<std::vector<std::uint8_t>> corpus;
  corpus.reserve(paths.size());
  for (const auto& path : paths) {
    std::ifstream in(path, std::ios::binary);
    std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                    std::istreambuf_iterator<char>());
    corpus.push_back(std::move(bytes));
  }
  return corpus;
}

std::string hex_preview(std::span<const std::uint8_t> bytes, std::size_t max_bytes) {
  const auto shown = bytes.subspan(0, std::min(bytes.size(), max_bytes));
  std::string out = util::hex_bytes(shown, '\0');
  if (bytes.size() > max_bytes) {
    out += "... (" + std::to_string(bytes.size()) + " bytes)";
  }
  return out;
}

}  // namespace acf::selftest
