// Deterministic in-repo fuzz harness: points the project's own mutation
// machinery at the project's own input surfaces.
//
// The paper's thesis is that blind malformed input finds real defects fast;
// a fuzzing toolchain that has never fuzzed itself is asking its users to
// trust parsers nobody hammered.  Each FuzzTarget wraps one byte-consuming
// surface together with its invariants (round-trip identity, "malformed
// input returns nullopt instead of throwing/UB", bounded allocation) and the
// harness drives it with a seeded, budgeted stream of corpus mutations —
// no external toolchain, reproducible from a single 64-bit seed.  Optional
// libFuzzer entrypoints (ACF_LIBFUZZER=ON) reuse the same targets for
// coverage-guided runs.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace acf::selftest {

struct FuzzTarget {
  /// Stable identifier; doubles as the corpus subdirectory name under
  /// tests/corpus/ and the fuzz_<name> libFuzzer binary suffix.
  std::string name;
  /// One-line description for --list output and reports.
  std::string description;
  /// Feeds one input through the surface and checks every invariant.
  /// Returns nullopt when all invariants held, an explanation otherwise.
  /// Must never throw and never crash, whatever the bytes.
  std::function<std::optional<std::string>(std::span<const std::uint8_t>)> run;
};

struct HarnessOptions {
  /// Generated (non-corpus) inputs to run.  The smoke budget is fixed in
  /// the ctest leg so CI time stays bounded; local runs crank it up.
  std::uint64_t iterations = 2000;
  std::uint64_t seed = 0xACF5EEDULL;
  std::size_t max_input_bytes = 1024;
  /// Stop after this many failures (each one is a bug; no point drowning).
  std::size_t max_failures = 8;
  /// When non-empty, each failing input is written here as
  /// <target>-<ordinal>.bin for artifact upload / local triage.
  std::string failure_dir;
};

struct FuzzFailure {
  std::vector<std::uint8_t> input;
  std::string message;
  /// Corpus index (when < corpus size) or generated-iteration ordinal.
  std::uint64_t ordinal = 0;
  bool from_corpus = false;
};

struct HarnessResult {
  std::uint64_t corpus_inputs = 0;
  std::uint64_t generated_inputs = 0;
  std::vector<FuzzFailure> failures;
  bool ok() const noexcept { return failures.empty(); }
};

/// Replays every corpus input, then runs the generated-input budget:
/// mutations of corpus seeds interleaved with fresh random inputs.
/// Deterministic for a fixed (corpus, options) pair.
HarnessResult run_harness(const FuzzTarget& target,
                          std::span<const std::vector<std::uint8_t>> corpus,
                          const HarnessOptions& options = {});

/// Loads every regular file in `dir`, sorted by filename for determinism.
/// Missing directory is an empty corpus, not an error.
std::vector<std::vector<std::uint8_t>> load_corpus_dir(const std::string& dir);

/// "DEADBEEF…" preview of an input for failure messages.
std::string hex_preview(std::span<const std::uint8_t> bytes, std::size_t max_bytes = 64);

}  // namespace acf::selftest
