#include "metrics/ckms.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace acf::metrics {

namespace {

// Buffered inserts amortize the O(s) merge over this many values; the batch
// is also the upper bound on how stale a query can observe the summary
// (queries flush first, so staleness is never visible — this only sizes the
// amortization).
constexpr std::size_t kBufferCapacity = 512;

}  // namespace

std::vector<CkmsTarget> default_ckms_targets() {
  return {
      {0.50, 0.010},
      {0.90, 0.005},
      {0.99, 0.001},
      {0.999, 0.0001},
  };
}

CkmsQuantiles::CkmsQuantiles(std::vector<CkmsTarget> targets)
    : targets_(std::move(targets)) {
  if (targets_.empty()) targets_ = default_ckms_targets();
  buffer_.reserve(kBufferCapacity);
}

double CkmsQuantiles::invariant(double r, std::uint64_t n) const noexcept {
  const double dn = static_cast<double>(n);
  double m = std::numeric_limits<double>::max();
  for (const CkmsTarget& t : targets_) {
    double f;
    if (t.quantile * dn <= r) {
      f = 2.0 * t.error * r / t.quantile;
    } else {
      f = 2.0 * t.error * (dn - r) / (1.0 - t.quantile);
    }
    m = std::min(m, f);
  }
  return std::max(m, 1.0);
}

void CkmsQuantiles::insert(double value) {
  buffer_.push_back(value);
  if (buffer_.size() >= kBufferCapacity) flush();
}

std::uint64_t CkmsQuantiles::count() const noexcept {
  return n_ + static_cast<std::uint64_t>(buffer_.size());
}

void CkmsQuantiles::flush() {
  if (buffer_.empty()) return;
  std::sort(buffer_.begin(), buffer_.end());
  std::vector<Sample> run;
  run.reserve(buffer_.size());
  for (const double v : buffer_) run.push_back(Sample{v, 1, 0});
  buffer_.clear();
  merge_sorted(run);
  compress();
}

void CkmsQuantiles::merge_sorted(std::span<const Sample> incoming) {
  if (incoming.empty()) return;
  std::vector<Sample> merged;
  merged.reserve(samples_.size() + incoming.size());
  std::size_t i = 0;   // cursor into samples_
  double r = 0.0;      // rank mass strictly before the insertion point
  for (const Sample& in : incoming) {
    while (i < samples_.size() && samples_[i].value <= in.value) {
      r += static_cast<double>(samples_[i].g);
      merged.push_back(samples_[i]);
      ++i;
    }
    n_ += in.g;
    Sample placed = in;
    if (!merged.empty() && i < samples_.size()) {
      // Mid-stream insertion may additionally absorb the local invariant
      // slack; edge insertions keep delta exact so min/max stay tight.
      const double slack = std::floor(invariant(r, n_)) - 1.0;
      if (slack > static_cast<double>(placed.delta)) {
        placed.delta = static_cast<std::uint64_t>(slack);
      }
    }
    r += static_cast<double>(placed.g);
    merged.push_back(placed);
  }
  for (; i < samples_.size(); ++i) merged.push_back(samples_[i]);
  samples_ = std::move(merged);
}

void CkmsQuantiles::compress() {
  if (samples_.size() < 3) return;
  // Rank mass strictly before each sample in the pre-compression list;
  // folding a sample into its right neighbour never moves mass to the left,
  // so these stay the correct invariant evaluation points throughout.
  std::vector<double> before(samples_.size());
  double acc = 0.0;
  for (std::size_t k = 0; k < samples_.size(); ++k) {
    before[k] = acc;
    acc += static_cast<double>(samples_[k].g);
  }
  // Sweep right-to-left, folding a sample into its right neighbour whenever
  // the combined weight still fits under the invariant at that rank.  The
  // first and last samples are never folded away, keeping min/max exact.
  std::vector<Sample> out;
  out.reserve(samples_.size());
  out.push_back(samples_.back());
  for (std::size_t i = samples_.size() - 1; i-- > 0;) {
    const Sample& c = samples_[i];
    Sample& x = out.back();
    if (i > 0 &&
        static_cast<double>(c.g + x.g + x.delta) <= invariant(before[i], n_)) {
      x.g += c.g;
    } else {
      out.push_back(c);
    }
  }
  std::reverse(out.begin(), out.end());
  samples_ = std::move(out);
}

double CkmsQuantiles::query(double q) {
  flush();
  if (samples_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Paper form: report the sample straddling rank φn + f(φn, n)/2.  No
  // rounding — ceiling the half-invariant (which clamps to >= 1) would push
  // the bound a full rank high and bias every answer toward larger values.
  const double dn = static_cast<double>(n_);
  const double target = q * dn;
  const double t = target + invariant(target, n_) / 2.0;
  const Sample* prev = &samples_[0];
  double r = 0.0;  // rank mass of samples strictly before `c`
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    const Sample& c = samples_[i];
    r += static_cast<double>(prev->g);
    if (r + static_cast<double>(c.g + c.delta) > t) return prev->value;
    prev = &c;
  }
  return prev->value;
}

void CkmsQuantiles::merge(const CkmsQuantiles& other) {
  CkmsQuantiles copy = other;
  absorb(copy.export_samples(), copy.n_);
}

void CkmsQuantiles::absorb(std::span<const Sample> samples, std::uint64_t n) {
  flush();
  // Source deltas ride along: each stream's rank-error budget is preserved,
  // so the concatenation keeps ε rank error over the combined count.
  std::vector<Sample> run(samples.begin(), samples.end());
  std::sort(run.begin(), run.end(),
            [](const Sample& a, const Sample& b) { return a.value < b.value; });
  std::uint64_t declared = 0;
  for (Sample& s : run) {
    if (s.g == 0) s.g = 1;  // defend against a hostile zero-width sample
    declared += s.g;
  }
  (void)n;  // the authoritative count is the sample weights themselves
  (void)declared;
  merge_sorted(run);
  compress();
}

std::vector<CkmsQuantiles::Sample> CkmsQuantiles::export_samples() {
  flush();
  return samples_;
}

std::size_t CkmsQuantiles::sample_count() {
  flush();
  return samples_.size();
}

}  // namespace acf::metrics
