// acf-metrics-v1: the versioned JSONL snapshot stream a campaign emits so a
// long-running fleet is observable live.  One self-contained JSON object per
// line, pure-ASCII (util::json_escape rules, shared with JsonlExporter),
// doubles printed shortest-round-trip so encode∘parse∘encode is a fixed
// point.  parse_snapshot_line is the repo's eleventh hand-rolled parser and
// is fuzzed like the other ten (metrics_snapshot self-fuzz target).
//
// Line shape (keys in this canonical order, maps sorted by name):
//   {"schema":"acf-metrics-v1","seq":3,"source":"coordinator",
//    "sim_seconds":120.5,
//    "counters":{"fleet.trial.completed":24,...},
//    "gauges":{"fleet.leases.outstanding":2,...},
//    "meters":{"fleet.progress.trials":{"count":24,"m1":1.5,"m5":0.4,
//              "m15":0.1,"mean":1.2},...},
//    "timers":{"ids.latency.timing-ewma":{"count":24,"sum":1.2,"min":0.001,
//              "max":0.5,"p50":0.01,"p90":0.2,"p99":0.4,"p999":0.5},...}}
//
// Raw CKMS samples never appear in the JSONL stream (quantiles suffice for
// observers); they travel only inside Heartbeat frames for merging.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>

#include "metrics/metrics.hpp"

namespace acf::metrics {

inline constexpr std::string_view kSnapshotSchema = "acf-metrics-v1";

/// One decoded snapshot line.  `registry.samples` stays empty: the line
/// format carries quantiles, not raw CKMS state.
struct SnapshotLine {
  std::uint64_t seq = 0;
  std::string source;
  double sim_seconds = 0.0;
  RegistrySnapshot registry;
};

/// Canonical single-line encoding (no trailing newline).  Non-finite
/// doubles render as 0 — upstream never produces them, and the parser
/// rejects non-finite spellings, so accepted lines round-trip exactly.
std::string encode_snapshot_line(const SnapshotLine& line);

/// Strict parse of one snapshot line: schema must match, all four
/// instrument maps and the header keys must be present exactly once,
/// unknown or duplicate keys reject, every number bounds-checked and
/// finite.  For every accepted line, encoding the result and parsing again
/// yields the same value (fixed point after one canonicalizing encode).
std::optional<SnapshotLine> parse_snapshot_line(std::string_view text);

/// One-shot operator-facing table of a snapshot (counters, gauges, meter
/// rates, timer quantiles), aligned and sorted by name.
std::string render_table(const RegistrySnapshot& snap);

/// Serializes snapshots to a JSONL stream with a monotonically increasing
/// sequence number.  Thread-safe; the stream must outlive the writer.
class SnapshotWriter {
 public:
  SnapshotWriter(std::ostream& out, std::string source)
      : out_(out), source_(std::move(source)) {}

  /// Writes one line and flushes (live observers tail the file).
  void write(const RegistrySnapshot& snap, double sim_seconds);

  std::uint64_t lines_written() const;

 private:
  mutable std::mutex mutex_;
  std::ostream& out_;
  std::string source_;
  std::uint64_t seq_ = 0;
};

}  // namespace acf::metrics
