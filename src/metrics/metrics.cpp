#include "metrics/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace acf::metrics {

namespace {

/// Counters named `*_max` carry bump_to (high-watermark) semantics: merging
/// across registries takes the max, not the sum, so a fleet-wide watermark
/// equals the largest single process's — same answer as one registry seeing
/// every bump_to.
bool is_watermark(std::string_view name) {
  return name.size() >= 4 && name.substr(name.size() - 4) == "_max";
}

}  // namespace

// -------------------------------------------------------------- meter -----

void Meter::tick_to(double now_seconds) {
  if (!primed_) {
    started_ = now_seconds;
    last_tick_ = now_seconds;
    now_ = now_seconds;
    primed_ = true;
    return;
  }
  if (now_seconds < now_) return;  // clock must not run backwards
  now_ = now_seconds;
  while (last_tick_ + kTickSeconds <= now_) {
    const std::uint64_t counted = count_.load(std::memory_order_relaxed);
    const double instant =
        static_cast<double>(counted - last_counted_) / kTickSeconds;
    last_counted_ = counted;
    last_tick_ += kTickSeconds;
    const auto fold = [instant](double& rate, double tau) {
      const double alpha = 1.0 - std::exp(-kTickSeconds / tau);
      rate += alpha * (instant - rate);
    };
    fold(m1_, 60.0);
    fold(m5_, 300.0);
    fold(m15_, 900.0);
  }
}

double Meter::mean_rate() const noexcept {
  if (!primed_ || now_ <= started_) return 0.0;
  return static_cast<double>(count_.load(std::memory_order_relaxed)) /
         (now_ - started_);
}

// -------------------------------------------------------------- timer -----

void Timer::record(double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ckms_.insert(value);
}

std::uint64_t Timer::count() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double Timer::sum() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

double Timer::min() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return min_;
}

double Timer::max() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_;
}

double Timer::quantile(double q) {
  std::lock_guard<std::mutex> lock(mutex_);
  return ckms_.query(q);
}

std::vector<CkmsQuantiles::Sample> Timer::export_samples() {
  std::lock_guard<std::mutex> lock(mutex_);
  return ckms_.export_samples();
}

void Timer::absorb(std::span<const CkmsQuantiles::Sample> samples,
                   std::uint64_t count, double sum, double min, double max) {
  if (count == 0 || samples.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) {
    min_ = min;
    max_ = max;
  } else {
    min_ = std::min(min_, min);
    max_ = std::max(max_, max);
  }
  count_ += count;
  sum_ += sum;
  ckms_.absorb(samples, count);
}

// ----------------------------------------------------------- registry -----

namespace {

template <typename Map, typename... Args>
auto& get_or_create(Map& map, std::mutex& mutex, std::string_view name,
                    Args&&... args) {
  std::lock_guard<std::mutex> lock(mutex);
  auto it = map.find(name);
  if (it == map.end()) {
    using Instrument = typename Map::mapped_type::element_type;
    it = map
             .emplace(std::string(name),
                      std::make_unique<Instrument>(std::forward<Args>(args)...))
             .first;
  }
  return *it->second;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  return get_or_create(counters_, mutex_, name);
}

Gauge& Registry::gauge(std::string_view name) {
  return get_or_create(gauges_, mutex_, name);
}

Meter& Registry::meter(std::string_view name) {
  return get_or_create(meters_, mutex_, name);
}

Timer& Registry::timer(std::string_view name) {
  return get_or_create(timers_, mutex_, name);
}

Timer& Registry::timer(std::string_view name, std::vector<CkmsTarget> targets) {
  return get_or_create(timers_, mutex_, name, std::move(targets));
}

RegistrySnapshot Registry::snapshot() {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->value()});
  }
  snap.meters.reserve(meters_.size());
  for (const auto& [name, meter] : meters_) {
    snap.meters.push_back({name, meter->count(), meter->rate1(), meter->rate5(),
                           meter->rate15(), meter->mean_rate()});
  }
  snap.timers.reserve(timers_.size());
  for (const auto& [name, timer] : timers_) {
    TimerSnap t;
    t.name = name;
    t.count = timer->count();
    t.sum = timer->sum();
    t.min = timer->min();
    t.max = timer->max();
    t.p50 = timer->quantile(0.50);
    t.p90 = timer->quantile(0.90);
    t.p99 = timer->quantile(0.99);
    t.p999 = timer->quantile(0.999);
    t.samples = timer->export_samples();
    snap.timers.push_back(std::move(t));
  }
  return snap;
}

void Registry::absorb(const RegistrySnapshot& snap) {
  for (const CounterSnap& c : snap.counters) {
    if (is_watermark(c.name)) {
      counter(c.name).bump_to(c.value);
    } else {
      counter(c.name).add(c.value);
    }
  }
  for (const GaugeSnap& g : snap.gauges) gauge(g.name).add(g.value);
  for (const TimerSnap& t : snap.timers) {
    timer(t.name).absorb(t.samples, t.count, t.sum, t.min, t.max);
  }
  // Meters are intentionally skipped: EWMA rates from different clocks do
  // not compose; the merged view recomputes nothing for them.
}

// ---------------------------------------------------- merge_snapshots -----

RegistrySnapshot merge_snapshots(std::span<const RegistrySnapshot> parts) {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  struct MeterAcc {
    std::uint64_t count = 0;
    double m1 = 0.0, m5 = 0.0, m15 = 0.0, mean = 0.0;
  };
  std::map<std::string, MeterAcc> meters;
  std::map<std::string, TimerSnap> timers;

  for (const RegistrySnapshot& part : parts) {
    for (const CounterSnap& c : part.counters) {
      if (is_watermark(c.name)) {
        std::uint64_t& slot = counters[c.name];
        slot = std::max(slot, c.value);
      } else {
        counters[c.name] += c.value;
      }
    }
    for (const GaugeSnap& g : part.gauges) gauges[g.name] += g.value;
    for (const MeterSnap& m : part.meters) {
      MeterAcc& acc = meters[m.name];
      // Count-weighted rate average: a stalled meter should not drag a busy
      // one to half speed.
      const double wa = static_cast<double>(acc.count);
      const double wb = static_cast<double>(m.count);
      const double total = wa + wb;
      if (total > 0.0) {
        acc.m1 = (acc.m1 * wa + m.m1 * wb) / total;
        acc.m5 = (acc.m5 * wa + m.m5 * wb) / total;
        acc.m15 = (acc.m15 * wa + m.m15 * wb) / total;
        acc.mean = (acc.mean * wa + m.mean * wb) / total;
      }
      acc.count += m.count;
    }
    for (const TimerSnap& t : part.timers) {
      auto [it, fresh] = timers.try_emplace(t.name);
      TimerSnap& out = it->second;
      if (fresh) {
        out = t;
        continue;
      }
      if (t.count == 0) continue;
      if (out.count == 0) {
        out.min = t.min;
        out.max = t.max;
      } else {
        out.min = std::min(out.min, t.min);
        out.max = std::max(out.max, t.max);
      }
      out.count += t.count;
      out.sum += t.sum;
      CkmsQuantiles merged;
      merged.absorb(out.samples, 0);
      merged.absorb(t.samples, 0);
      out.p50 = merged.query(0.50);
      out.p90 = merged.query(0.90);
      out.p99 = merged.query(0.99);
      out.p999 = merged.query(0.999);
      out.samples = merged.export_samples();
    }
  }

  RegistrySnapshot snap;
  snap.counters.reserve(counters.size());
  for (const auto& [name, value] : counters) snap.counters.push_back({name, value});
  snap.gauges.reserve(gauges.size());
  for (const auto& [name, value] : gauges) snap.gauges.push_back({name, value});
  snap.meters.reserve(meters.size());
  for (const auto& [name, acc] : meters) {
    snap.meters.push_back({name, acc.count, acc.m1, acc.m5, acc.m15, acc.mean});
  }
  snap.timers.reserve(timers.size());
  for (auto& [name, t] : timers) {
    t.name = name;
    snap.timers.push_back(std::move(t));
  }
  return snap;
}

}  // namespace acf::metrics
