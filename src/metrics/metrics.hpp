// metrics::Registry — named instruments for campaign observability.
//
//  * Counter  — monotonic relaxed-atomic u64; hot-loop safe (one fetch_add).
//  * Gauge    — last-written i64 level (leases outstanding, queue depth).
//  * Meter    — EWMA 1/5/15-interval rates.  The caller drives the clock via
//               tick_to(seconds): sim seconds on deterministic paths, wall
//               seconds only in operator-facing progress display.
//  * Timer    — count/sum/min/max plus a CKMS summary giving ε-accurate
//               p50/p90/p99/p99.9 in constant memory (see ckms.hpp).
//
// The registry hands out stable references: instruments are created under a
// mutex once, then the returned Counter&/Timer& is cached by the caller and
// used lock-free (counters) or under the instrument's own short lock
// (timers record at trial granularity, not per frame).
//
// Determinism contract (DESIGN.md §15): counter values in a final snapshot
// are byte-identical across --threads and --distributed because addition is
// order-independent and every increment is a deterministic function of the
// (plan, seed) trial matrix.  Timer quantiles are ε-accurate but their CKMS
// sample layout depends on completion order, so they are compared within ε,
// never byte-for-byte.  Wall-driven meters are display-only.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/ckms.hpp"

namespace acf::metrics {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Monotonic advance to an externally tracked total (CAS-max): safe to
  /// re-publish the same running total without double counting.  Name such
  /// counters `*_max`: absorb/merge_snapshots combine `*_max` counters with
  /// max (watermark semantics) instead of summing.
  void bump_to(std::uint64_t total) noexcept {
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < total &&
           !value_.compare_exchange_weak(cur, total, std::memory_order_relaxed)) {
    }
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { value_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// EWMA meter in the codahale style: rates decay over 1/5/15 "minutes" of
/// whatever clock the caller advances with tick_to().  Not thread-safe by
/// itself beyond the marked count; tick_to/rates are for a single driver.
class Meter {
 public:
  void mark(std::uint64_t n = 1) noexcept {
    count_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Advances the EWMA clock to `now_seconds` (monotonic per meter).
  void tick_to(double now_seconds);

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double rate1() const noexcept { return m1_; }
  double rate5() const noexcept { return m5_; }
  double rate15() const noexcept { return m15_; }
  /// Lifetime mean rate over the ticked interval (0 before the first tick).
  double mean_rate() const noexcept;

 private:
  static constexpr double kTickSeconds = 5.0;

  std::atomic<std::uint64_t> count_{0};
  std::uint64_t last_counted_ = 0;
  double started_ = 0.0;
  double last_tick_ = 0.0;
  double now_ = 0.0;
  bool primed_ = false;
  double m1_ = 0.0;
  double m5_ = 0.0;
  double m15_ = 0.0;
};

class Timer {
 public:
  explicit Timer(std::vector<CkmsTarget> targets = default_ckms_targets())
      : ckms_(std::move(targets)) {}

  /// Records one observation (seconds, latency, whatever the name says).
  void record(double value);

  std::uint64_t count() const noexcept;
  double sum() const noexcept;
  double min() const noexcept;  // 0 when empty
  double max() const noexcept;  // 0 when empty
  double quantile(double q);

  /// Exports the CKMS summary (for snapshots / the wire).
  std::vector<CkmsQuantiles::Sample> export_samples();
  /// Folds a wire summary back in (coordinator-side merge).
  void absorb(std::span<const CkmsQuantiles::Sample> samples, std::uint64_t count,
              double sum, double min, double max);

 private:
  mutable std::mutex mutex_;
  CkmsQuantiles ckms_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// ------------------------------------------------------------ snapshot ----

struct CounterSnap {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnap {
  std::string name;
  std::int64_t value = 0;
};

struct MeterSnap {
  std::string name;
  std::uint64_t count = 0;
  double m1 = 0.0;
  double m5 = 0.0;
  double m15 = 0.0;
  double mean = 0.0;
};

struct TimerSnap {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  /// Raw CKMS samples; carried on the wire so merges stay ε-accurate,
  /// omitted from JSONL snapshot lines (quantiles suffice there).
  std::vector<CkmsQuantiles::Sample> samples;
};

/// Plain-data view of a registry at one instant, sorted by name within each
/// instrument family.
struct RegistrySnapshot {
  std::vector<CounterSnap> counters;
  std::vector<GaugeSnap> gauges;
  std::vector<MeterSnap> meters;
  std::vector<TimerSnap> timers;

  bool empty() const noexcept {
    return counters.empty() && gauges.empty() && meters.empty() && timers.empty();
  }
};

/// Sums counters/gauges (`*_max` counters take the max — watermark
/// semantics), weight-averages meter rates, CKMS-merges timers.  Names
/// union; output sorted by name.
RegistrySnapshot merge_snapshots(std::span<const RegistrySnapshot> parts);

class Registry {
 public:
  /// Returns the named instrument, creating it on first use.  The reference
  /// stays valid for the registry's lifetime (node-stable storage).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Meter& meter(std::string_view name);
  Timer& timer(std::string_view name);
  Timer& timer(std::string_view name, std::vector<CkmsTarget> targets);

  /// Point-in-time snapshot (sorted by name).  Timers flush their buffers.
  RegistrySnapshot snapshot();

  /// Adds a snapshot into this registry: counters/gauges add, timers
  /// CKMS-merge, meters are skipped (rates do not add across clocks).
  void absorb(const RegistrySnapshot& snap);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Meter>, std::less<>> meters_;
  std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_;
};

}  // namespace acf::metrics
