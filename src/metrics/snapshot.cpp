#include "metrics/snapshot.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <span>
#include <vector>

#include "util/json.hpp"

namespace acf::metrics {

namespace {

using util::json_double;
using util::json_escape;

// ----------------------------------------------------------- encoding -----

void append_string(std::string& out, std::string_view s) {
  out += '"';
  out += json_escape(s);
  out += '"';
}

template <typename Items, typename Fn>
void append_map(std::string& out, std::string_view key, const Items& items,
                Fn&& emit_value) {
  append_string(out, key);
  out += ":{";
  bool first = true;
  for (const auto& item : items) {
    if (!first) out += ',';
    first = false;
    append_string(out, item.name);
    out += ':';
    emit_value(out, item);
  }
  out += '}';
}

// ------------------------------------------------------------ parsing -----

/// Tiny strict cursor over one line.  Whitespace between tokens is
/// tolerated (and normalized away by re-encoding); structure is not.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool peek(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool done() {
    skip_ws();
    return pos_ == text_.size();
  }

  /// Quoted string, unescaped.
  std::optional<std::string> string() {
    if (!eat('"')) return std::nullopt;
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        const std::string_view raw = text_.substr(start, pos_ - start);
        ++pos_;
        return util::json_unescape(raw);
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return std::nullopt;
      }
      ++pos_;
    }
    return std::nullopt;  // unterminated
  }

  std::optional<std::uint64_t> u64() {
    skip_ws();
    std::uint64_t value = 0;
    const auto result =
        std::from_chars(text_.data() + pos_, text_.data() + text_.size(), value);
    if (result.ec != std::errc{} || result.ptr == text_.data() + pos_) {
      return std::nullopt;
    }
    pos_ = static_cast<std::size_t>(result.ptr - text_.data());
    return value;
  }

  std::optional<std::int64_t> i64() {
    skip_ws();
    std::int64_t value = 0;
    const auto result =
        std::from_chars(text_.data() + pos_, text_.data() + text_.size(), value);
    if (result.ec != std::errc{} || result.ptr == text_.data() + pos_) {
      return std::nullopt;
    }
    pos_ = static_cast<std::size_t>(result.ptr - text_.data());
    return value;
  }

  std::optional<double> number() {
    skip_ws();
    // Reject the inf/nan spellings from_chars would accept: JSON has no
    // non-finite numbers and neither does an honest snapshot.
    if (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == 'i' || c == 'I' || c == 'n' || c == 'N' || c == '+') {
        return std::nullopt;
      }
      if ((c == '-') && pos_ + 1 < text_.size()) {
        const char d = text_[pos_ + 1];
        if (d == 'i' || d == 'I' || d == 'n' || d == 'N') return std::nullopt;
      }
    }
    double value = 0.0;
    const auto result =
        std::from_chars(text_.data() + pos_, text_.data() + text_.size(), value);
    if (result.ec != std::errc{} || result.ptr == text_.data() + pos_ ||
        !std::isfinite(value)) {
      return std::nullopt;
    }
    pos_ = static_cast<std::size_t>(result.ptr - text_.data());
    return value;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Parses `{"name":<value>,...}` with `parse_entry` consuming each value.
/// Rejects duplicate names; output ends up sorted by the caller.
template <typename Fn>
bool parse_named_map(Cursor& cur, Fn&& parse_entry) {
  if (!cur.eat('{')) return false;
  if (cur.eat('}')) return true;
  for (;;) {
    std::optional<std::string> name = cur.string();
    if (!name || !cur.eat(':')) return false;
    if (!parse_entry(std::move(*name))) return false;
    if (cur.eat(',')) continue;
    return cur.eat('}');
  }
}

/// Parses a fixed-key-set object of numeric fields: every key in `keys`
/// exactly once, no extras.  `slots[i]` receives the value for `keys[i]`.
bool parse_numeric_object(Cursor& cur, std::span<const std::string_view> keys,
                          std::span<double> slots,
                          std::span<std::uint64_t> u64_slots,
                          std::size_t u64_count) {
  // The first `u64_count` keys are u64 fields, the rest doubles.
  std::vector<bool> seen(keys.size(), false);
  if (!cur.eat('{')) return false;
  if (cur.eat('}')) return keys.empty();
  for (;;) {
    std::optional<std::string> key = cur.string();
    if (!key || !cur.eat(':')) return false;
    std::size_t idx = keys.size();
    for (std::size_t k = 0; k < keys.size(); ++k) {
      if (*key == keys[k]) {
        idx = k;
        break;
      }
    }
    if (idx == keys.size() || seen[idx]) return false;
    seen[idx] = true;
    if (idx < u64_count) {
      std::optional<std::uint64_t> v = cur.u64();
      if (!v) return false;
      u64_slots[idx] = *v;
    } else {
      std::optional<double> v = cur.number();
      if (!v) return false;
      slots[idx - u64_count] = *v;
    }
    if (cur.eat(',')) continue;
    if (!cur.eat('}')) return false;
    break;
  }
  return std::all_of(seen.begin(), seen.end(), [](bool b) { return b; });
}

}  // namespace

std::string encode_snapshot_line(const SnapshotLine& line) {
  std::string out;
  out.reserve(256);
  out += "{\"schema\":\"";
  out += kSnapshotSchema;
  out += "\",\"seq\":";
  out += std::to_string(line.seq);
  out += ",\"source\":";
  append_string(out, line.source);
  out += ",\"sim_seconds\":";
  out += json_double(line.sim_seconds);
  out += ',';
  append_map(out, "counters", line.registry.counters,
             [](std::string& o, const CounterSnap& c) {
               o += std::to_string(c.value);
             });
  out += ',';
  append_map(out, "gauges", line.registry.gauges,
             [](std::string& o, const GaugeSnap& g) {
               o += std::to_string(g.value);
             });
  out += ',';
  append_map(out, "meters", line.registry.meters,
             [](std::string& o, const MeterSnap& m) {
               o += "{\"count\":";
               o += std::to_string(m.count);
               o += ",\"m1\":";
               o += json_double(m.m1);
               o += ",\"m5\":";
               o += json_double(m.m5);
               o += ",\"m15\":";
               o += json_double(m.m15);
               o += ",\"mean\":";
               o += json_double(m.mean);
               o += '}';
             });
  out += ',';
  append_map(out, "timers", line.registry.timers,
             [](std::string& o, const TimerSnap& t) {
               o += "{\"count\":";
               o += std::to_string(t.count);
               o += ",\"sum\":";
               o += json_double(t.sum);
               o += ",\"min\":";
               o += json_double(t.min);
               o += ",\"max\":";
               o += json_double(t.max);
               o += ",\"p50\":";
               o += json_double(t.p50);
               o += ",\"p90\":";
               o += json_double(t.p90);
               o += ",\"p99\":";
               o += json_double(t.p99);
               o += ",\"p999\":";
               o += json_double(t.p999);
               o += '}';
             });
  out += '}';
  return out;
}

std::optional<SnapshotLine> parse_snapshot_line(std::string_view text) {
  // Hard ceiling: one line describes at most a few thousand instruments; a
  // multi-megabyte "line" is hostile input, not a snapshot.
  if (text.size() > (1u << 20)) return std::nullopt;
  Cursor cur(text);
  SnapshotLine line;
  bool saw_schema = false, saw_seq = false, saw_source = false, saw_sim = false;
  bool saw_counters = false, saw_gauges = false, saw_meters = false,
       saw_timers = false;

  if (!cur.eat('{')) return std::nullopt;
  for (;;) {
    std::optional<std::string> key = cur.string();
    if (!key || !cur.eat(':')) return std::nullopt;
    if (*key == "schema") {
      if (saw_schema) return std::nullopt;
      saw_schema = true;
      std::optional<std::string> schema = cur.string();
      if (!schema || *schema != kSnapshotSchema) return std::nullopt;
    } else if (*key == "seq") {
      if (saw_seq) return std::nullopt;
      saw_seq = true;
      std::optional<std::uint64_t> v = cur.u64();
      if (!v) return std::nullopt;
      line.seq = *v;
    } else if (*key == "source") {
      if (saw_source) return std::nullopt;
      saw_source = true;
      std::optional<std::string> v = cur.string();
      if (!v) return std::nullopt;
      line.source = std::move(*v);
    } else if (*key == "sim_seconds") {
      if (saw_sim) return std::nullopt;
      saw_sim = true;
      std::optional<double> v = cur.number();
      if (!v) return std::nullopt;
      line.sim_seconds = *v;
    } else if (*key == "counters") {
      if (saw_counters) return std::nullopt;
      saw_counters = true;
      const bool ok = parse_named_map(cur, [&](std::string name) {
        std::optional<std::uint64_t> v = cur.u64();
        if (!v) return false;
        line.registry.counters.push_back({std::move(name), *v});
        return true;
      });
      if (!ok) return std::nullopt;
    } else if (*key == "gauges") {
      if (saw_gauges) return std::nullopt;
      saw_gauges = true;
      const bool ok = parse_named_map(cur, [&](std::string name) {
        std::optional<std::int64_t> v = cur.i64();
        if (!v) return false;
        line.registry.gauges.push_back({std::move(name), *v});
        return true;
      });
      if (!ok) return std::nullopt;
    } else if (*key == "meters") {
      if (saw_meters) return std::nullopt;
      saw_meters = true;
      static constexpr std::string_view kKeys[] = {"count", "m1", "m5", "m15",
                                                   "mean"};
      const bool ok = parse_named_map(cur, [&](std::string name) {
        double d[4] = {};
        std::uint64_t u[1] = {};
        if (!parse_numeric_object(cur, kKeys, d, u, 1)) return false;
        line.registry.meters.push_back(
            {std::move(name), u[0], d[0], d[1], d[2], d[3]});
        return true;
      });
      if (!ok) return std::nullopt;
    } else if (*key == "timers") {
      if (saw_timers) return std::nullopt;
      saw_timers = true;
      static constexpr std::string_view kKeys[] = {
          "count", "sum", "min", "max", "p50", "p90", "p99", "p999"};
      const bool ok = parse_named_map(cur, [&](std::string name) {
        double d[7] = {};
        std::uint64_t u[1] = {};
        if (!parse_numeric_object(cur, kKeys, d, u, 1)) return false;
        TimerSnap t;
        t.name = std::move(name);
        t.count = u[0];
        t.sum = d[0];
        t.min = d[1];
        t.max = d[2];
        t.p50 = d[3];
        t.p90 = d[4];
        t.p99 = d[5];
        t.p999 = d[6];
        line.registry.timers.push_back(std::move(t));
        return true;
      });
      if (!ok) return std::nullopt;
    } else {
      return std::nullopt;  // unknown key: this is a versioned format
    }
    if (cur.eat(',')) continue;
    if (!cur.eat('}')) return std::nullopt;
    break;
  }
  if (!cur.done()) return std::nullopt;
  if (!(saw_schema && saw_seq && saw_source && saw_sim && saw_counters &&
        saw_gauges && saw_meters && saw_timers)) {
    return std::nullopt;
  }

  // Canonicalize: maps sorted by name, duplicates rejected (a duplicate
  // would silently drop data on re-encode).
  const auto sort_unique = [](auto& items) {
    std::sort(items.begin(), items.end(),
              [](const auto& a, const auto& b) { return a.name < b.name; });
    return std::adjacent_find(items.begin(), items.end(),
                              [](const auto& a, const auto& b) {
                                return a.name == b.name;
                              }) == items.end();
  };
  if (!sort_unique(line.registry.counters)) return std::nullopt;
  if (!sort_unique(line.registry.gauges)) return std::nullopt;
  if (!sort_unique(line.registry.meters)) return std::nullopt;
  if (!sort_unique(line.registry.timers)) return std::nullopt;
  return line;
}

// -------------------------------------------------------------- table -----

std::string render_table(const RegistrySnapshot& snap) {
  std::string out;
  const auto row = [&out](std::string_view name, const std::string& value) {
    char buffer[160];
    std::snprintf(buffer, sizeof buffer, "  %-40.*s %s\n",
                  static_cast<int>(name.size()), name.data(), value.c_str());
    out += buffer;
  };
  if (!snap.counters.empty()) {
    out += "counters:\n";
    for (const CounterSnap& c : snap.counters) {
      row(c.name, std::to_string(c.value));
    }
  }
  if (!snap.gauges.empty()) {
    out += "gauges:\n";
    for (const GaugeSnap& g : snap.gauges) row(g.name, std::to_string(g.value));
  }
  if (!snap.meters.empty()) {
    out += "meters:\n";
    for (const MeterSnap& m : snap.meters) {
      char buffer[120];
      std::snprintf(buffer, sizeof buffer,
                    "count=%llu m1=%.3f m5=%.3f m15=%.3f mean=%.3f",
                    static_cast<unsigned long long>(m.count), m.m1, m.m5, m.m15,
                    m.mean);
      row(m.name, buffer);
    }
  }
  if (!snap.timers.empty()) {
    out += "timers:\n";
    for (const TimerSnap& t : snap.timers) {
      char buffer[160];
      std::snprintf(buffer, sizeof buffer,
                    "count=%llu p50=%.6g p90=%.6g p99=%.6g p99.9=%.6g "
                    "min=%.6g max=%.6g",
                    static_cast<unsigned long long>(t.count), t.p50, t.p90,
                    t.p99, t.p999, t.min, t.max);
      row(t.name, buffer);
    }
  }
  if (out.empty()) out = "  (no instruments)\n";
  return out;
}

// ------------------------------------------------------------- writer -----

void SnapshotWriter::write(const RegistrySnapshot& snap, double sim_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  SnapshotLine line;
  // 1-based: the stamp on a line equals lines_written() as of that line, so
  // a reader can detect gaps and the final line's seq is the line count.
  line.seq = ++seq_;
  line.source = source_;
  line.sim_seconds = sim_seconds;
  // The JSONL stream carries quantiles, not raw CKMS samples; strip them
  // without copying the whole snapshot.
  line.registry.counters = snap.counters;
  line.registry.gauges = snap.gauges;
  line.registry.meters = snap.meters;
  line.registry.timers.reserve(snap.timers.size());
  for (const TimerSnap& t : snap.timers) {
    TimerSnap lean = t;
    lean.samples.clear();
    line.registry.timers.push_back(std::move(lean));
  }
  out_ << encode_snapshot_line(line) << '\n';
  out_.flush();
}

std::uint64_t SnapshotWriter::lines_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return seq_;
}

}  // namespace acf::metrics
