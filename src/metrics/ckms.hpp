// Targeted CKMS biased-quantile estimator (Cormode, Korn, Muthukrishnan,
// Srivastava, "Effective computation of biased quantiles over data streams").
// Keeps an ε-accurate summary of a value stream in constant memory: each
// target quantile φ gets a rank-error budget ε, and every reported quantile
// is guaranteed to sit within ±εn ranks of the exact sorted-array answer.
// Inserts are O(1) amortized (values buffer, then merge+compress in batches);
// space is O((1/ε)·log(εn)) samples regardless of stream length.
//
// Determinism: the summary is a pure function of the insertion sequence — no
// clock, no RNG — so sim-time-driven campaigns produce reproducible digests.
// Two summaries merge by concatenating their weighted samples (source error
// budgets are preserved, so the merged summary keeps the rank-error bound
// over the combined stream) — this is what the fleet coordinator does with
// per-worker timer snapshots.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace acf::metrics {

/// One quantile the summary promises to answer accurately: rank error at
/// `quantile` is at most `error` (a fraction of n, e.g. 0.001 = 0.1%).
struct CkmsTarget {
  double quantile = 0.5;
  double error = 0.01;
};

/// The classic p50/p90/p99/p99.9 ladder with tightening error budgets.
std::vector<CkmsTarget> default_ckms_targets();

class CkmsQuantiles {
 public:
  /// One weighted summary sample: `value` covers `g` ranks, with `delta`
  /// additional rank uncertainty.  Invariant: g + delta <= max(f(r,n), 1).
  struct Sample {
    double value = 0.0;
    std::uint64_t g = 0;
    std::uint64_t delta = 0;
  };

  explicit CkmsQuantiles(std::vector<CkmsTarget> targets = default_ckms_targets());

  /// O(1) amortized: buffers the value, merging into the summary in batches.
  void insert(double value);

  /// Total observations, including any still buffered.
  std::uint64_t count() const noexcept;

  /// ε-accurate quantile, q in [0,1].  Returns 0 for an empty summary.
  /// Flushes the insert buffer, hence non-const.
  double query(double q);

  /// Folds another summary in (weighted-sample concatenation + compress).
  void merge(const CkmsQuantiles& other);

  /// Folds a previously exported sample list covering `n` observations in —
  /// the coordinator-side path for summaries that crossed the wire.
  void absorb(std::span<const Sample> samples, std::uint64_t n);

  /// Flushes and exports the summary for a snapshot or the wire.
  std::vector<Sample> export_samples();

  const std::vector<CkmsTarget>& targets() const noexcept { return targets_; }

  /// Summary samples currently held (diagnostic; flushes first).
  std::size_t sample_count();

 private:
  /// The targeted-quantile invariant f(r, n): how much rank slack a sample
  /// at rank r may absorb while every target stays within its ε.
  double invariant(double r, std::uint64_t n) const noexcept;

  void flush();
  void compress();
  /// Merges a sorted run of weighted samples into samples_; deltas of the
  /// incoming run are preserved (0 for fresh single values).
  void merge_sorted(std::span<const Sample> incoming);

  std::vector<CkmsTarget> targets_;
  std::vector<Sample> samples_;  // sorted by value
  std::vector<double> buffer_;
  std::uint64_t n_ = 0;  // observations already merged into samples_
};

}  // namespace acf::metrics
