#include "fleet/executor.hpp"

#include <condition_variable>
#include <cstdio>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace acf::fleet {

namespace {

TrialOutcome run_one(const TrialSpec& spec, const WorldFactory& factory) {
  try {
    std::unique_ptr<World> world = factory(spec);
    if (!world) throw std::runtime_error("WorldFactory returned null");
    return outcome_from_result(spec, world->run());
  } catch (const std::exception& e) {
    TrialOutcome outcome;
    outcome.spec = spec;
    outcome.status = TrialStatus::kFailed;
    outcome.error = e.what();
    return outcome;
  } catch (...) {
    TrialOutcome outcome;
    outcome.spec = spec;
    outcome.status = TrialStatus::kFailed;
    outcome.error = "unknown exception";
    return outcome;
  }
}

}  // namespace

Executor::Executor(ExecutorConfig config) : config_(config) {}

unsigned Executor::effective_threads(std::size_t trial_count) const noexcept {
  unsigned threads = config_.threads;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  if (trial_count < threads) threads = static_cast<unsigned>(trial_count);
  return threads == 0 ? 1u : threads;
}

std::vector<TrialOutcome> Executor::run(const TrialPlan& plan, const WorldFactory& factory,
                                        ProgressReporter* progress) {
  const std::size_t total = plan.trial_count();
  // Pre-fill every slot with its skipped-state spec so a cancelled fleet
  // still reports a complete, index-ordered outcome vector.
  std::vector<TrialOutcome> outcomes(total);
  for (std::size_t i = 0; i < total; ++i) outcomes[i].spec = plan.spec(i);
  if (total == 0) return outcomes;

  if (progress) progress->begin(total);

  const unsigned thread_count = effective_threads(total);
  std::atomic<std::size_t> next{0};
  std::atomic<unsigned> active{thread_count};
  std::mutex coordinator_mutex;
  std::condition_variable coordinator_cv;

  auto worker = [&] {
    while (!cancelled()) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= total) break;
      TrialOutcome outcome = run_one(outcomes[index].spec, factory);
      if (progress) progress->record(outcome);
      outcomes[index] = std::move(outcome);
    }
    {
      // The lock pairs with the coordinator's predicate check, so the final
      // decrement can never slip between its check and its wait.
      std::lock_guard<std::mutex> lock(coordinator_mutex);
      active.fetch_sub(1, std::memory_order_release);
    }
    coordinator_cv.notify_all();
  };

  std::vector<std::thread> pool;
  pool.reserve(thread_count);
  for (unsigned t = 0; t < thread_count; ++t) pool.emplace_back(worker);

  const bool print = progress && config_.progress_period.count() > 0;
  {
    std::unique_lock<std::mutex> lock(coordinator_mutex);
    const auto finished = [&] { return active.load(std::memory_order_acquire) == 0; };
    while (!finished()) {
      if (print) {
        if (coordinator_cv.wait_for(lock, config_.progress_period, finished)) break;
        std::fprintf(stderr, "%s\n", progress->line().c_str());
      } else {
        coordinator_cv.wait(lock, finished);
      }
    }
  }
  for (std::thread& thread : pool) thread.join();
  if (print) std::fprintf(stderr, "%s\n", progress->line().c_str());
  return outcomes;
}

}  // namespace acf::fleet
