#include "fleet/executor.hpp"

#include <condition_variable>
#include <cstdio>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "metrics/metrics.hpp"
#include "metrics/snapshot.hpp"

namespace acf::fleet {

void record_trial_metrics(metrics::Registry& registry, const TrialOutcome& outcome) {
  switch (outcome.status) {
    case TrialStatus::kCompleted:
      registry.counter("fleet.trial.completed").add(1);
      break;
    case TrialStatus::kFailed:
      registry.counter("fleet.trial.errors").add(1);
      break;
    case TrialStatus::kSkipped:
      registry.counter("fleet.trial.skipped").add(1);
      return;  // never ran: no frames, no timings
  }
  registry.counter("fleet.trial.frames_sent").add(outcome.frames_sent);
  registry.counter("fleet.trial.send_failures").add(outcome.send_failures);
  if (outcome.status != TrialStatus::kCompleted) return;
  registry.timer("fleet.trial.sim_seconds").record(outcome.sim_seconds);
  if (outcome.failure_detected()) {
    registry.counter("fleet.trial.detected").add(1);
    registry.timer("fleet.trial.time_to_failure").record(outcome.time_to_failure);
  } else if (outcome.timed_out()) {
    registry.counter("fleet.trial.timeout").add(1);
  }
}

TrialOutcome run_one_trial(const TrialSpec& spec, const WorldFactory& factory) {
  try {
    std::unique_ptr<World> world = factory(spec);
    if (!world) throw std::runtime_error("WorldFactory returned null");
    return outcome_from_result(spec, world->run());
  } catch (const std::exception& e) {
    TrialOutcome outcome;
    outcome.spec = spec;
    outcome.status = TrialStatus::kFailed;
    outcome.error = e.what();
    return outcome;
  } catch (...) {
    TrialOutcome outcome;
    outcome.spec = spec;
    outcome.status = TrialStatus::kFailed;
    outcome.error = "unknown exception";
    return outcome;
  }
}

void run_trial_pool(const TrialPlan& plan, const WorldFactory& factory, TrialSource& source,
                    ResultSink& sink, const TrialPoolConfig& config,
                    const std::atomic<bool>* cancelled, ProgressReporter* progress) {
  const unsigned thread_count = config.threads == 0 ? 1 : config.threads;
  std::atomic<unsigned> active{thread_count};
  std::atomic<std::size_t> completed{0};
  std::mutex coordinator_mutex;
  std::condition_variable coordinator_cv;

  const bool snapshotting =
      config.registry && config.snapshot_writer && config.snapshot_interval > 0;

  auto worker = [&] {
    while (!(cancelled && cancelled->load(std::memory_order_relaxed))) {
      const std::optional<std::size_t> index = source.next();
      if (!index) break;
      TrialOutcome outcome = run_one_trial(plan.spec(*index), factory);
      if (progress) progress->record(outcome);
      if (config.registry) record_trial_metrics(*config.registry, outcome);
      sink.push(std::move(outcome));
      const std::size_t done = completed.fetch_add(1, std::memory_order_relaxed) + 1;
      if (snapshotting && done % config.snapshot_interval == 0) {
        // Deterministic trigger (every Nth completion), live content: the
        // snapshot reflects whatever has finished by now.  Only the final
        // end-of-campaign snapshot is part of the determinism contract.
        metrics::RegistrySnapshot snap = config.registry->snapshot();
        const double sim_seconds =
            config.registry->timer("fleet.trial.sim_seconds").sum();
        config.snapshot_writer->write(snap, sim_seconds);
      }
    }
    {
      // The lock pairs with the coordinator's predicate check, so the final
      // decrement can never slip between its check and its wait.
      std::lock_guard<std::mutex> lock(coordinator_mutex);
      active.fetch_sub(1, std::memory_order_release);
    }
    coordinator_cv.notify_all();
  };

  std::vector<std::thread> pool;
  pool.reserve(thread_count);
  for (unsigned t = 0; t < thread_count; ++t) pool.emplace_back(worker);

  const bool print = progress && config.progress_period.count() > 0;
  {
    std::unique_lock<std::mutex> lock(coordinator_mutex);
    const auto finished = [&] { return active.load(std::memory_order_acquire) == 0; };
    while (!finished()) {
      if (print) {
        if (coordinator_cv.wait_for(lock, config.progress_period, finished)) break;
        std::fprintf(stderr, "%s\n", progress->line().c_str());
      } else {
        coordinator_cv.wait(lock, finished);
      }
    }
  }
  for (std::thread& thread : pool) thread.join();
  if (print) std::fprintf(stderr, "%s\n", progress->line().c_str());
}

namespace {

/// Atomic cursor over [0, total): the local executor's dynamic sharding.
class CursorSource final : public TrialSource {
 public:
  explicit CursorSource(std::size_t total) : total_(total) {}
  std::optional<std::size_t> next() override {
    const std::size_t index = next_.fetch_add(1, std::memory_order_relaxed);
    if (index >= total_) return std::nullopt;
    return index;
  }

 private:
  std::size_t total_;
  std::atomic<std::size_t> next_{0};
};

/// Writes each outcome into the slot its trial index owns — no lock needed,
/// and the vector comes out index-ordered whatever the completion order.
class VectorSink final : public ResultSink {
 public:
  explicit VectorSink(std::vector<TrialOutcome>& outcomes) : outcomes_(outcomes) {}
  void push(TrialOutcome outcome) override {
    const std::size_t index = outcome.spec.trial_index;
    outcomes_[index] = std::move(outcome);
  }

 private:
  std::vector<TrialOutcome>& outcomes_;
};

}  // namespace

Executor::Executor(ExecutorConfig config) : config_(config) {}

unsigned Executor::effective_threads(std::size_t trial_count) const noexcept {
  unsigned threads = config_.threads;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  if (trial_count < threads) threads = static_cast<unsigned>(trial_count);
  return threads == 0 ? 1u : threads;
}

std::vector<TrialOutcome> Executor::run(const TrialPlan& plan, const WorldFactory& factory,
                                        ProgressReporter* progress) {
  const std::size_t total = plan.trial_count();
  // Pre-fill every slot with its skipped-state spec so a cancelled fleet
  // still reports a complete, index-ordered outcome vector.
  std::vector<TrialOutcome> outcomes(total);
  for (std::size_t i = 0; i < total; ++i) outcomes[i].spec = plan.spec(i);
  if (total == 0) return outcomes;

  if (progress) progress->begin(total);

  CursorSource source(total);
  VectorSink sink(outcomes);
  TrialPoolConfig pool_config;
  pool_config.threads = effective_threads(total);
  pool_config.progress_period = config_.progress_period;
  pool_config.registry = config_.registry;
  pool_config.snapshot_writer = config_.snapshot_writer;
  pool_config.snapshot_interval = config_.snapshot_interval;
  run_trial_pool(plan, factory, source, sink, pool_config, &cancelled_, progress);
  return outcomes;
}

}  // namespace acf::fleet
