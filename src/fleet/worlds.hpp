// Canned fleet worlds.  The unlock-testbench world reproduces the paper's
// Table V trial — bench-top rig (head unit + BCM), attacker node, blind
// random fuzz until the unlock oracle fires — packaged as a WorldFactory so
// benches, the fleet_run driver and the tests all shard the identical trial.
#pragma once

#include <vector>

#include "fleet/trial.hpp"
#include "fuzzer/config.hpp"
#include "vehicle/vehicle.hpp"

namespace acf::metrics {
class Registry;
}

namespace acf::fleet {

/// One arm of an unlock fleet: which predicate guards the unlock function,
/// what space the fuzzer draws from, and the fallback simulated-time budget
/// when the TrialPlan does not impose one.
struct UnlockArm {
  vehicle::UnlockPredicate predicate = vehicle::UnlockPredicate::single_id_and_byte();
  fuzzer::FuzzConfig fuzz = fuzzer::FuzzConfig::full_random();
  sim::Duration default_budget{std::chrono::hours(24)};
};

/// Factory building one isolated unlock-testbench world per trial; the
/// trial's arm index selects from `arms` and its seed drives the generator.
/// `arms` must line up with the TrialPlan's arm labels.
///
/// When `registry` is non-null every world publishes its scheduler and bus
/// totals (`sim.scheduler.*`, `can.bus.*`) into it at trial end — per-trial
/// deterministic sums, so the aggregate is order-independent.  The registry
/// must outlive every world the factory builds.
WorldFactory unlock_world_factory(std::vector<UnlockArm> arms,
                                  metrics::Registry* registry = nullptr);

}  // namespace acf::fleet
