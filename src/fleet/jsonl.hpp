// JsonlExporter: one self-contained JSON object per trial, written in
// trial-index order — the machine-readable campaign trajectory (arm, seed,
// stop reason, frames sent, time-to-failure, findings).  Output is a pure
// function of the outcomes, so two fleets with the same plan produce
// byte-identical files whatever their thread counts.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <string_view>

#include "fleet/trial.hpp"
#include "fleet/trial_plan.hpp"

namespace acf::fleet {

class JsonlExporter {
 public:
  /// The stream must outlive the exporter.
  explicit JsonlExporter(std::ostream& out) : out_(out) {}

  /// Writes one line for `outcome`; `plan` resolves the arm label.
  void write(const TrialPlan& plan, const TrialOutcome& outcome);

  /// Writes every outcome in the order given (pass the executor's
  /// index-ordered vector for deterministic files).
  void write_all(const TrialPlan& plan, std::span<const TrialOutcome> outcomes);

  /// JSON string escaping (quotes, backslashes, control characters).
  static std::string escape(std::string_view text);

 private:
  std::ostream& out_;
};

}  // namespace acf::fleet
