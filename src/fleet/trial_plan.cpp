#include "fleet/trial_plan.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace acf::fleet {

TrialPlan::TrialPlan(std::vector<std::string> arms, std::size_t replicas,
                     std::uint64_t base_seed, sim::Duration sim_budget)
    : arms_(std::move(arms)), replicas_(replicas), base_seed_(base_seed),
      sim_budget_(sim_budget) {
  if (arms_.empty()) throw std::invalid_argument("TrialPlan: at least one arm required");
}

TrialSpec TrialPlan::spec(std::size_t trial_index) const {
  if (trial_index >= trial_count()) throw std::out_of_range("TrialPlan: trial index");
  TrialSpec spec;
  spec.trial_index = trial_index;
  spec.arm = trial_index % arms_.size();
  spec.replica = trial_index / arms_.size();
  spec.seed = seed_for(base_seed_, trial_index);
  spec.sim_budget = sim_budget_;
  return spec;
}

std::uint64_t TrialPlan::seed_for(std::uint64_t base_seed, std::size_t trial_index) noexcept {
  // SplitMix64 advances its state by a fixed gamma per draw, so the state
  // before draw i is base + i*gamma; seeding there and drawing once yields
  // stream element i without walking the stream.
  constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;
  util::SplitMix64 mix(base_seed + kGamma * static_cast<std::uint64_t>(trial_index));
  return mix.next();
}

}  // namespace acf::fleet
