// TrialPlan: the trial matrix of a fleet campaign — arms (experimental
// conditions, e.g. Table V's two unlock predicates) × replicas — flattened
// into a single deterministic index space.
//
// Seeds are derived per trial with SplitMix64 keyed on (base seed, trial
// index), never on worker identity, so the seed of trial i is a pure
// function of the plan.  Trials are laid out round-robin across arms
// (trial i → arm i mod arms) so a partially run or cancelled fleet still
// covers every arm evenly, and heavy-tailed arms interleave across the
// worker pool instead of serialising at the end.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/trial.hpp"

namespace acf::fleet {

class TrialPlan {
 public:
  /// `arms` must be non-empty; one replica means one trial per arm.
  TrialPlan(std::vector<std::string> arms, std::size_t replicas, std::uint64_t base_seed,
            sim::Duration sim_budget = sim::Duration{0});

  std::size_t arm_count() const noexcept { return arms_.size(); }
  std::size_t replicas() const noexcept { return replicas_; }
  std::size_t trial_count() const noexcept { return arms_.size() * replicas_; }
  std::uint64_t base_seed() const noexcept { return base_seed_; }
  sim::Duration sim_budget() const noexcept { return sim_budget_; }

  const std::string& arm_label(std::size_t arm) const { return arms_.at(arm); }
  const std::vector<std::string>& arms() const noexcept { return arms_; }

  /// The fully resolved spec for trial `trial_index` (< trial_count()).
  TrialSpec spec(std::size_t trial_index) const;

  /// The seed of trial `trial_index` under `base_seed`: element of the
  /// SplitMix64 stream addressed in O(1) by advancing the state arithmetic
  /// rather than iterating.  Stable across platforms and thread counts.
  static std::uint64_t seed_for(std::uint64_t base_seed, std::size_t trial_index) noexcept;

 private:
  std::vector<std::string> arms_;
  std::size_t replicas_;
  std::uint64_t base_seed_;
  sim::Duration sim_budget_;
};

}  // namespace acf::fleet
