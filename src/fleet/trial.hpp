// Fleet trials: the unit of work of the parallel campaign orchestrator.
//
// Every trial is one fully isolated discrete-event world (scheduler, virtual
// bus, target, transport, generator, oracles) constructed on the worker
// thread that runs it — the world-isolation rule that makes the fleet
// embarrassingly parallel without a single lock in the simulation core.  A
// TrialSpec is pure data (arm, replica, derived seed); a TrialOutcome is the
// pure-data result the aggregator and exporter consume.  Neither carries
// wall-clock timestamps, so fleet output is a function of the plan alone,
// byte-identical regardless of thread count or scheduling order.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fuzzer/campaign.hpp"
#include "sim/time.hpp"

namespace acf::fleet {

/// Immutable description of one trial, derived from the TrialPlan.
struct TrialSpec {
  /// Global index in the plan; the sharding and aggregation key.
  std::size_t trial_index = 0;
  /// Index of the arm (experimental condition) this trial belongs to.
  std::size_t arm = 0;
  /// Replica number within the arm (0-based).
  std::size_t replica = 0;
  /// Generator seed, derived from the plan's base seed via SplitMix64 on
  /// trial_index — independent of which worker runs the trial.
  std::uint64_t seed = 0;
  /// Per-trial simulated-time budget the world must honour as its campaign
  /// max_duration (zero = the world's own default).
  sim::Duration sim_budget{0};
};

enum class TrialStatus : std::uint8_t {
  kCompleted,  // the world ran its campaign to a StopReason
  kFailed,     // the world threw; error holds the exception text
  kSkipped,    // cancelled before the trial started
};

const char* to_string(TrialStatus status) noexcept;

/// Result of one trial, reduced to what aggregation and export need.  All
/// times are simulated seconds; wall-clock never enters an outcome.
struct TrialOutcome {
  TrialSpec spec;
  TrialStatus status = TrialStatus::kSkipped;
  fuzzer::StopReason stop_reason = fuzzer::StopReason::kStillRunning;
  std::uint64_t frames_sent = 0;
  std::uint64_t send_failures = 0;
  /// Simulated time the campaign ran.
  double sim_seconds = 0.0;
  /// Simulated seconds until the first failure verdict; negative when the
  /// trial ended without one (timeout / frame limit / error).
  double time_to_failure = -1.0;
  /// One summary line per finding, in detection order.
  std::vector<std::string> findings;
  /// Exception text when status == kFailed.
  std::string error;

  bool completed() const noexcept { return status == TrialStatus::kCompleted; }
  bool failure_detected() const noexcept { return completed() && time_to_failure >= 0.0; }
  /// Completed without the oracle firing — the bench's "timeout" case that
  /// must never be folded into a time-to-failure mean as -1.
  bool timed_out() const noexcept { return completed() && time_to_failure < 0.0; }
};

/// Converts a finished campaign result into an outcome for `spec`.
TrialOutcome outcome_from_result(const TrialSpec& spec, const fuzzer::CampaignResult& result);

/// One isolated simulation world.  Constructed per trial on the worker
/// thread; destroyed there too.  Implementations own every piece of
/// simulation state they touch — sharing anything mutable across worlds
/// breaks both determinism and thread safety.
class World {
 public:
  virtual ~World() = default;

  /// Drives the world's campaign to completion and returns its result.
  virtual fuzzer::CampaignResult run() = 0;
};

/// Builds the world for one trial.  Called on the worker thread that will
/// run the trial; must not capture mutable state shared with other trials.
using WorldFactory = std::function<std::unique_ptr<World>(const TrialSpec&)>;

/// Adapts a plain callable `CampaignResult(const TrialSpec&)` into a
/// WorldFactory, for worlds simple enough not to warrant a class.
WorldFactory world_from(std::function<fuzzer::CampaignResult(const TrialSpec&)> run_trial);

}  // namespace acf::fleet
