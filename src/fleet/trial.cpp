#include "fleet/trial.hpp"

namespace acf::fleet {

const char* to_string(TrialStatus status) noexcept {
  switch (status) {
    case TrialStatus::kCompleted: return "completed";
    case TrialStatus::kFailed: return "failed";
    case TrialStatus::kSkipped: return "skipped";
  }
  return "?";
}

TrialOutcome outcome_from_result(const TrialSpec& spec, const fuzzer::CampaignResult& result) {
  TrialOutcome outcome;
  outcome.spec = spec;
  outcome.status = TrialStatus::kCompleted;
  outcome.stop_reason = result.reason;
  outcome.frames_sent = result.frames_sent;
  outcome.send_failures = result.send_failures;
  outcome.sim_seconds = sim::to_seconds(result.elapsed);
  if (const fuzzer::Finding* failure = result.first_failure()) {
    outcome.time_to_failure = sim::to_seconds(failure->observation.time);
  }
  outcome.findings.reserve(result.findings.size());
  for (const fuzzer::Finding& finding : result.findings) {
    outcome.findings.push_back(finding.summary());
  }
  return outcome;
}

WorldFactory world_from(std::function<fuzzer::CampaignResult(const TrialSpec&)> run_trial) {
  // The callable is shared across workers, so it must be stateless or
  // immutable — the same contract the WorldFactory itself carries.
  using TrialFn = std::function<fuzzer::CampaignResult(const TrialSpec&)>;
  class CallableWorld final : public World {
   public:
    CallableWorld(std::shared_ptr<const TrialFn> fn, const TrialSpec& spec)
        : fn_(std::move(fn)), spec_(spec) {}
    fuzzer::CampaignResult run() override { return (*fn_)(spec_); }

   private:
    std::shared_ptr<const TrialFn> fn_;
    TrialSpec spec_;
  };
  auto shared = std::make_shared<const TrialFn>(std::move(run_trial));
  return [shared](const TrialSpec& spec) -> std::unique_ptr<World> {
    return std::make_unique<CallableWorld>(shared, spec);
  };
}

}  // namespace acf::fleet
