#include "fleet/remote/checkpoint.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/hex.hpp"

namespace acf::fleet::remote {

namespace {

constexpr const char* kMagic = "ACF-FLEET-CAMPAIGN";

// A hostile header cannot demand unbounded memory: the trial count itself is
// capped (a campaign of 16M trials checkpoints fine; beyond that, shard),
// and declared per-trial counts only cap the up-front reserve — vectors
// still grow naturally as validated content parses.
constexpr std::uint64_t kMaxTrials = 1u << 24;
constexpr std::size_t kMaxAdvanceReserve = 4096;

constexpr std::uint8_t kMaxTrialStatus = static_cast<std::uint8_t>(TrialStatus::kSkipped);
constexpr std::uint8_t kMaxStopReason =
    static_cast<std::uint8_t>(fuzzer::StopReason::kTransportDead);

std::string hex_or_dash(const std::string& text) {
  if (text.empty()) return "-";
  return util::hex_bytes({reinterpret_cast<const std::uint8_t*>(text.data()), text.size()},
                         '\0');
}

bool read_hex_or_dash(std::istream& in, std::string& out) {
  std::string token;
  if (!(in >> token)) return false;
  if (token == "-") {
    out.clear();
    return true;
  }
  const auto bytes = util::parse_hex_bytes(token);
  if (!bytes) return false;
  out.assign(bytes->begin(), bytes->end());
  return true;
}

}  // namespace

void FleetCheckpoint::serialize(std::ostream& out) const {
  out << kMagic << ' ' << kVersion << '\n';
  out << "fingerprint " << fingerprint << '\n';
  out << "trials " << trial_count << '\n';
  out << "done " << completed.size() << '\n';
  for (const auto& [index, outcome] : completed) {
    out << "trial " << index << ' ' << static_cast<unsigned>(outcome.status) << ' '
        << static_cast<unsigned>(outcome.stop_reason) << ' ' << outcome.frames_sent << ' '
        << outcome.send_failures << ' ' << std::bit_cast<std::uint64_t>(outcome.sim_seconds)
        << ' ' << std::bit_cast<std::uint64_t>(outcome.time_to_failure) << ' '
        << outcome.findings.size() << '\n';
    for (const std::string& finding : outcome.findings) {
      out << "finding " << hex_or_dash(finding) << '\n';
    }
    out << "error " << hex_or_dash(outcome.error) << '\n';
  }
  out << "leased " << leased.size();
  for (const std::size_t index : leased) out << ' ' << index;
  out << '\n';
  out << "end\n";
}

std::optional<FleetCheckpoint> FleetCheckpoint::deserialize(std::istream& in) {
  std::string magic;
  std::uint32_t version = 0;
  if (!(in >> magic >> version) || magic != kMagic || version != kVersion) {
    return std::nullopt;
  }
  FleetCheckpoint checkpoint;
  std::string key;
  std::uint64_t done_count = 0;
  if (!(in >> key >> checkpoint.fingerprint) || key != "fingerprint") return std::nullopt;
  if (!(in >> key >> checkpoint.trial_count) || key != "trials") return std::nullopt;
  if (checkpoint.trial_count > kMaxTrials) return std::nullopt;
  if (!(in >> key >> done_count) || key != "done") return std::nullopt;
  if (done_count > checkpoint.trial_count) return std::nullopt;
  checkpoint.completed.reserve(
      std::min<std::uint64_t>(done_count, kMaxAdvanceReserve));
  std::size_t previous_index = 0;
  for (std::uint64_t i = 0; i < done_count; ++i) {
    std::size_t index = 0;
    unsigned status = 0;
    unsigned stop = 0;
    std::uint64_t sim_bits = 0;
    std::uint64_t ttf_bits = 0;
    std::size_t finding_count = 0;
    TrialOutcome outcome;
    if (!(in >> key >> index >> status >> stop >> outcome.frames_sent >>
          outcome.send_failures >> sim_bits >> ttf_bits >> finding_count) ||
        key != "trial") {
      return std::nullopt;
    }
    // Strictly ascending indices inside the plan: the canonical layout, and
    // it rejects duplicate records in one pass.
    if (index >= checkpoint.trial_count || (i > 0 && index <= previous_index)) {
      return std::nullopt;
    }
    previous_index = index;
    if (status > kMaxTrialStatus || stop > kMaxStopReason) return std::nullopt;
    outcome.status = static_cast<TrialStatus>(status);
    outcome.stop_reason = static_cast<fuzzer::StopReason>(stop);
    outcome.sim_seconds = std::bit_cast<double>(sim_bits);
    outcome.time_to_failure = std::bit_cast<double>(ttf_bits);
    outcome.findings.reserve(std::min(finding_count, kMaxAdvanceReserve));
    for (std::size_t f = 0; f < finding_count; ++f) {
      std::string finding;
      if (!(in >> key) || key != "finding" || !read_hex_or_dash(in, finding)) {
        return std::nullopt;
      }
      outcome.findings.push_back(std::move(finding));
    }
    if (!(in >> key) || key != "error" || !read_hex_or_dash(in, outcome.error)) {
      return std::nullopt;
    }
    checkpoint.completed.emplace_back(index, std::move(outcome));
  }
  std::uint64_t leased_count = 0;
  if (!(in >> key >> leased_count) || key != "leased") return std::nullopt;
  if (leased_count > checkpoint.trial_count) return std::nullopt;
  checkpoint.leased.reserve(std::min<std::uint64_t>(leased_count, kMaxAdvanceReserve));
  std::size_t previous_leased = 0;
  for (std::uint64_t i = 0; i < leased_count; ++i) {
    std::size_t index = 0;
    if (!(in >> index) || index >= checkpoint.trial_count) return std::nullopt;
    if (i > 0 && index <= previous_leased) return std::nullopt;  // ascending
    previous_leased = index;
    // A trial cannot be both finished and in flight.  `completed` is
    // strictly ascending, so this stays log-time even on hostile counts.
    const auto done_it = std::lower_bound(
        checkpoint.completed.begin(), checkpoint.completed.end(), index,
        [](const auto& entry, std::size_t value) { return entry.first < value; });
    if (done_it != checkpoint.completed.end() && done_it->first == index) {
      return std::nullopt;
    }
    checkpoint.leased.push_back(index);
  }
  if (!(in >> key) || key != "end") return std::nullopt;
  return checkpoint;
}

std::string FleetCheckpoint::to_string() const {
  std::ostringstream out;
  serialize(out);
  return out.str();
}

std::optional<FleetCheckpoint> FleetCheckpoint::from_string(const std::string& text) {
  std::istringstream in(text);
  return deserialize(in);
}

bool FleetCheckpoint::save(const std::string& path) const {
  // Write-then-rename: a coordinator SIGKILLed mid-save must leave the
  // previous checkpoint readable, or the crash the checkpoint exists to
  // survive would destroy it.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    serialize(out);
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

std::optional<FleetCheckpoint> FleetCheckpoint::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return deserialize(in);
}

}  // namespace acf::fleet::remote
