// Coordinator: the server side of the distributed campaign service.  One
// poll loop owns the listen socket, every worker connection, the lease
// table and the campaign checkpoint:
//
//   worker connects -> Hello (version + campaign fingerprint + capacity)
//     -> Welcome | Rejected
//   worker sends LeaseRequest -> LeaseGrant (batch of trial indices under
//     a lease id + deadline) when work is available, else queued until a
//     lease expires or another worker dies
//   worker streams LeaseResult per finished trial; results are validated
//     against the plan's spec for that index, deduplicated by trial index,
//     and merged in trial-index order at the end — identical bytes to the
//     in-process executor path
//   heartbeats (and results) renew the lease deadline; a silent worker's
//     leases expire and their unfinished trials are re-issued to whoever
//     asks next (work-stealing); a closed socket releases them immediately
//
// Progress persists through FleetCheckpoint (write-then-rename), so a
// coordinator killed mid-campaign resumes without recomputing finished
// trials and re-issues exactly the trials that were in flight.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fleet/progress.hpp"
#include "fleet/remote/lease.hpp"
#include "fleet/remote/wire.hpp"
#include "fleet/trial_plan.hpp"
#include "util/socket.hpp"

namespace acf::metrics {
class SnapshotWriter;
}

namespace acf::fleet::remote {

struct CoordinatorConfig {
  /// Listen port on 127.0.0.1; 0 picks an ephemeral port (see port()).
  std::uint16_t port = 0;
  /// Trials per lease, capped by the worker's advertised capacity.
  std::size_t max_batch = 8;
  /// Silence (no result, no heartbeat) after which a lease is stolen.
  std::chrono::milliseconds lease_ttl{10'000};
  /// A connection that never completes its handshake is dropped after this.
  std::chrono::milliseconds handshake_timeout{5'000};
  /// Poll-loop tick; bounds failure-detection and checkpoint latency.
  std::chrono::milliseconds poll_period{50};
  /// Progress line cadence on stderr (zero = silent).
  std::chrono::milliseconds progress_period{2000};
  /// Campaign checkpoint path; empty disables persistence.
  std::string checkpoint_path;
  /// Minimum interval between checkpoint writes (dirty state is also
  /// flushed on exit and on worker failure events).
  std::chrono::milliseconds checkpoint_period{1'000};
  /// Must match the workers' world tag: part of the campaign fingerprint.
  std::string world_tag = "unlock";
  /// Test/ops hook: save a checkpoint and return once this many trials have
  /// completed (0 = run to the end).  Models a coordinator crash for the
  /// resume path without actually calling abort().
  std::size_t stop_after_completed = 0;
  /// Coordinator-side registry (progress/lease instruments land here via
  /// the attached ProgressReporter); merged with the per-worker heartbeat
  /// blocks by merged_metrics().  Optional.
  metrics::Registry* registry = nullptr;
  /// When both are set, serve() writes a merged snapshot line every
  /// `snapshot_interval` accepted results, plus one final line after the
  /// linger window has drained the workers' last heartbeats.
  metrics::SnapshotWriter* snapshot_writer = nullptr;
  std::size_t snapshot_interval = 0;
};

struct CoordinatorStats {
  LeaseStats leases;
  std::uint64_t workers_connected = 0;
  std::uint64_t workers_disconnected = 0;
  std::uint64_t workers_rejected = 0;
  std::uint64_t protocol_errors = 0;   // poisoned framing / malformed payload
  std::uint64_t unknown_messages = 0;  // tolerated, skipped
  std::uint64_t forged_results = 0;    // spec mismatch vs the plan
  std::size_t resumed_done = 0;        // trials restored from the checkpoint
  std::size_t resumed_leased = 0;      // in-flight trials re-queued first
};

class Coordinator {
 public:
  /// Binds and listens immediately (so port() is valid before serve()) and
  /// loads the checkpoint when one exists at config.checkpoint_path.
  /// Throws std::runtime_error when the socket cannot be bound or the
  /// checkpoint belongs to a different campaign.
  Coordinator(const TrialPlan& plan, CoordinatorConfig config);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  std::uint16_t port() const noexcept { return listener_.port(); }

  /// Runs the campaign service until every trial completed (or the
  /// stop_after hook / cancel() fires).  Returns one outcome per trial in
  /// trial-index order; unfinished trials are TrialStatus::kSkipped.
  std::vector<TrialOutcome> serve(ProgressReporter* progress = nullptr);

  /// Requests an orderly stop from any thread: the loop checkpoints and
  /// returns with whatever completed.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  const CoordinatorStats& stats() const noexcept { return stats_; }
  std::size_t done_count() const noexcept { return table_.done_count(); }

  /// Observer invoked (on the serve() thread) after each accepted result —
  /// the worker-kill smoke uses it to injure the fleet at a precise point.
  void set_on_trial_done(std::function<void(std::size_t done)> hook) {
    on_trial_done_ = std::move(hook);
  }

  /// Fleet-wide metrics view: the coordinator's own registry merged with
  /// the latest full-totals block each worker shipped in its heartbeats
  /// (keyed by advertised worker name; replace-on-update, so reconnects and
  /// repeated totals never double count).  Call after serve() for the final
  /// campaign view.
  metrics::RegistrySnapshot merged_metrics();

 private:
  struct Connection;

  void load_checkpoint();
  void save_checkpoint(bool force);
  void handle_payload(Connection& conn, std::span<const std::uint8_t> payload);
  void grant_to(Connection& conn);
  void pump_pending_grants();
  void send_message(Connection& conn, const Message& message);
  void flush(Connection& conn);
  void drop(Connection& conn, bool count_disconnect);
  void note_worker_metrics(const Connection& conn, const HeartbeatMsg& heartbeat);
  void write_snapshot_line();

  const TrialPlan& plan_;
  CoordinatorConfig config_;
  std::uint64_t fingerprint_;
  util::TcpListener listener_;
  LeaseTable table_;
  std::vector<TrialOutcome> outcomes_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::uint64_t next_session_ = 1;
  std::atomic<bool> cancelled_{false};
  ProgressReporter* progress_ = nullptr;  // valid only inside serve()
  bool dirty_ = false;                    // progress not yet checkpointed
  WallClock::time_point last_checkpoint_{};
  CoordinatorStats stats_;
  std::function<void(std::size_t)> on_trial_done_;
  /// Latest full-totals metrics block per worker, keyed by the instance id
  /// from Hello (replace-on-update).  The id is unique per worker process
  /// and stable across its reconnects, so a reconnect replaces its own
  /// block while same-named workers never clobber each other.
  std::map<std::uint64_t, metrics::RegistrySnapshot> worker_metrics_;
  std::size_t results_since_snapshot_ = 0;
};

}  // namespace acf::fleet::remote
