// Worker: the client side of the distributed campaign service.  It rebuilds
// the trial plan and world factory from its own configuration (only the
// campaign fingerprint crosses the wire — worlds are code, not data),
// connects to the coordinator through a ReconnectGate (the PR 1
// retry/backoff + circuit-breaker machinery on the wall clock), and then
// pulls lease batches: request, receive a grant, run the batch on the
// shared run_trial_pool() seam, stream one LeaseResult per finished trial.
// A heartbeat side-thread keeps the lease alive through long trials; a lost
// connection sends the worker back through the gate, and trials whose
// results never reached the coordinator are simply re-leased — the
// coordinator deduplicates, the seed makes reruns byte-identical.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "fleet/trial.hpp"
#include "fleet/trial_plan.hpp"
#include "resilience/reconnect.hpp"

namespace acf::metrics {
class Registry;
}

namespace acf::fleet::remote {

struct WorkerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Trial pool threads; 0 = std::thread::hardware_concurrency().
  unsigned threads = 0;
  /// Advertised in Hello; shows up in coordinator diagnostics.
  std::string name = "worker";
  /// Must match the coordinator's world tag (campaign fingerprint input).
  std::string world_tag = "unlock";
  /// Reconnect policy for the coordinator link.
  transport::RetryPolicy retry{};
  transport::CircuitBreakerPolicy breaker{};
  /// Consecutive connection failures before run() gives up; 0 = never.
  std::uint32_t give_up_after = 30;
  /// Lease-liveness heartbeat cadence while a batch is running (and the
  /// idle keepalive cadence while waiting for a grant).
  std::chrono::milliseconds heartbeat_period{1'000};
  /// Handshake / single-frame wait bound; a coordinator silent this long
  /// counts as a connection failure.
  std::chrono::milliseconds io_timeout{10'000};
  /// When set, trials record into this registry and every batch heartbeat
  /// ships the FULL running totals to the coordinator (replace-on-update,
  /// so reconnects never double count).  Must outlive run().
  metrics::Registry* registry = nullptr;
};

enum class WorkerExit : std::uint8_t {
  kCampaignComplete,   // coordinator sent Shutdown(kCampaignComplete)
  kCoordinatorPaused,  // coordinator sent Shutdown(kCoordinatorPausing)
  kRejected,           // handshake refused: wrong version or campaign
  kGaveUp,             // reconnect gate exhausted
  kCancelled,          // cancel() observed
};

struct WorkerResult {
  WorkerExit exit = WorkerExit::kGaveUp;
  /// Trials this worker completed and reported (duplicates included: a
  /// stolen lease this worker finished late still ran here).
  std::size_t trials_run = 0;
  std::uint64_t leases_served = 0;
  resilience::ReconnectStats reconnect;
  std::string message;  // human-readable exit detail (Rejected reason etc.)
};

class Worker {
 public:
  Worker(const TrialPlan& plan, WorldFactory factory, WorkerConfig config);

  /// Runs until the coordinator ends the campaign, the handshake is
  /// refused, the reconnect gate gives up, or cancel() fires.
  WorkerResult run();

  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

 private:
  const TrialPlan& plan_;
  WorldFactory factory_;
  WorkerConfig config_;
  std::uint64_t fingerprint_;
  /// Sent in Hello; stable across reconnects (the Worker object and its
  /// registry survive the reconnect gate), unique across worker processes
  /// even when operators reuse `config.name`.
  std::uint64_t instance_id_;
  std::atomic<bool> cancelled_{false};
};

}  // namespace acf::fleet::remote
