#include "fleet/remote/lease.hpp"

#include <algorithm>

namespace acf::fleet::remote {

LeaseTable::LeaseTable(std::size_t trial_count)
    : states_(trial_count, TrialState::kUnissued), ever_leased_(trial_count, false) {
  for (std::size_t i = 0; i < trial_count; ++i) queue_.push_back(i);
}

void LeaseTable::mark_done(std::size_t index) {
  if (index >= states_.size() || states_[index] == TrialState::kDone) return;
  states_[index] = TrialState::kDone;
  ++done_;
  // Stale queue entries are skipped at grant time; no need to scrub here.
}

void LeaseTable::prioritise(std::size_t index) {
  if (index >= states_.size() || states_[index] != TrialState::kUnissued) return;
  queue_.push_front(index);
}

std::optional<GrantedLease> LeaseTable::grant(std::uint64_t worker, std::size_t max_trials,
                                              WallClock::time_point now,
                                              std::chrono::milliseconds ttl) {
  GrantedLease granted;
  while (granted.trials.size() < max_trials && !queue_.empty()) {
    const std::size_t index = queue_.front();
    queue_.pop_front();
    if (states_[index] != TrialState::kUnissued) continue;  // stale entry
    states_[index] = TrialState::kLeased;
    if (ever_leased_[index]) ++stats_.trials_stolen;
    ever_leased_[index] = true;
    granted.trials.push_back(index);
  }
  if (granted.trials.empty()) return std::nullopt;
  granted.lease_id = next_lease_id_++;
  Lease lease;
  lease.worker = worker;
  lease.ttl = ttl;
  lease.deadline = now + ttl;
  lease.remaining = granted.trials;
  leases_.emplace(granted.lease_id, std::move(lease));
  ++stats_.leases_issued;
  return granted;
}

CompletionResult LeaseTable::complete(std::uint64_t lease_id, std::size_t index) {
  if (index >= states_.size()) return CompletionResult::kBadIndex;
  // Shed the trial from its lease (when that lease is still alive) whatever
  // the outcome below; an emptied lease is retired.
  const auto it = leases_.find(lease_id);
  if (it != leases_.end()) {
    auto& remaining = it->second.remaining;
    remaining.erase(std::remove(remaining.begin(), remaining.end(), index),
                    remaining.end());
    if (remaining.empty()) leases_.erase(it);
  }
  if (states_[index] == TrialState::kDone) {
    ++stats_.duplicate_completions;
    return CompletionResult::kDuplicate;
  }
  states_[index] = TrialState::kDone;
  ++done_;
  return CompletionResult::kAccepted;
}

void LeaseTable::renew(std::uint64_t lease_id, WallClock::time_point now) {
  const auto it = leases_.find(lease_id);
  if (it != leases_.end()) it->second.deadline = now + it->second.ttl;
}

void LeaseTable::reclaim(Lease& lease, std::uint64_t& counter) {
  ++counter;
  // Reverse order keeps the reclaimed trials ascending at the queue front,
  // so the stealing worker receives them in trial-index order.
  for (auto it = lease.remaining.rbegin(); it != lease.remaining.rend(); ++it) {
    if (states_[*it] != TrialState::kLeased) continue;  // completed meanwhile
    states_[*it] = TrialState::kUnissued;
    queue_.push_front(*it);
  }
}

std::size_t LeaseTable::expire(WallClock::time_point now) {
  std::size_t expired = 0;
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (it->second.deadline <= now) {
      reclaim(it->second, stats_.leases_expired);
      it = leases_.erase(it);
      ++expired;
    } else {
      ++it;
    }
  }
  return expired;
}

std::size_t LeaseTable::release_worker(std::uint64_t worker) {
  std::size_t released = 0;
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (it->second.worker == worker) {
      reclaim(it->second, stats_.leases_released);
      it = leases_.erase(it);
      ++released;
    } else {
      ++it;
    }
  }
  return released;
}

std::vector<std::size_t> LeaseTable::leased_indices() const {
  std::vector<std::size_t> leased;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i] == TrialState::kLeased) leased.push_back(i);
  }
  return leased;
}

}  // namespace acf::fleet::remote
